open Bbx_detect
open Bbx_dpienc.Dpienc
open Bbx_tokenizer.Tokenizer

(* ---------- AVL property tests ---------- *)

let avl_props =
  let prop name ?(count = 300) arb f =
    QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)
  in
  let arb_ops =
    QCheck.(list (pair (int_bound 500) bool)) (* (key, insert?) sequence *)
  in
  [ prop "matches stdlib Map under random ops" arb_ops (fun ops ->
        let module M = Map.Make (Int) in
        let avl, map =
          List.fold_left
            (fun (avl, map) (k, ins) ->
               if ins then (Avl.insert k (k * 2) avl, M.add k (k * 2) map)
               else (Avl.remove k avl, M.remove k map))
            (Avl.empty, M.empty) ops
        in
        Avl.check_invariants avl
        && Avl.to_sorted_list avl = M.bindings map);
    prop "height is logarithmic" QCheck.(int_range 1 2000) (fun n ->
        let t = Avl.of_list (List.init n (fun i -> (i, i))) in
        Avl.check_invariants t
        && float_of_int (Avl.height t)
           <= 1.45 *. (log (float_of_int (n + 2)) /. log 2.0));
    prop "insert replaces" QCheck.(int_bound 100) (fun k ->
        let t = Avl.insert k "b" (Avl.insert k "a" Avl.empty) in
        Avl.find_opt k t = Some "b" && Avl.size t = 1);
    prop "update add/remove" QCheck.(int_bound 100) (fun k ->
        let t = Avl.update k (fun _ -> Some 1) Avl.empty in
        let t' = Avl.update k (fun _ -> None) t in
        Avl.mem k t && not (Avl.mem k t') && Avl.is_empty t');
    (let arb =
       QCheck.(triple (list_of_size (QCheck.Gen.int_range 1 40) (int_bound 500))
                 (int_bound 39) (int_bound 600))
     in
     prop "replace equals remove-then-insert" arb (fun (keys, pick, new_key) ->
         let t =
           List.fold_left (fun t k -> Avl.insert k (k * 3) t) Avl.empty keys
         in
         let old_key = List.nth keys (pick mod List.length keys) in
         let v = new_key * 7 in
         let fast = Avl.replace ~old_key new_key v t in
         let slow = Avl.insert new_key v (Avl.remove old_key t) in
         Avl.check_invariants fast
         && Avl.to_sorted_list fast = Avl.to_sorted_list slow));
    prop "replace with adjacent key keeps all other bindings"
      QCheck.(int_range 1 200) (fun n ->
        (* keys 0,2,4,...: bumping k to k+1 always fits the ordering gap,
           which is exactly Detect's salt-increment pattern *)
        let t = Avl.of_list (List.init n (fun i -> (2 * i, i))) in
        let k = 2 * (n / 2) in
        let t' = Avl.replace ~old_key:k (k + 1) ~-1 t in
        Avl.check_invariants t'
        && Avl.size t' = n
        && Avl.find_opt (k + 1) t' = Some ~-1
        && not (Avl.mem k t'));
  ]

(* ---------- Detect engine ---------- *)

let key = key_of_secret "shared-k"
let t8 = pad_short

(* Build a detect engine the way the middlebox would: from AES_k(token). *)
let mk_detect ?(mode = Exact) ?(salt0 = 0) kws =
  Detect.create ~mode ~salt0 (Array.of_list (List.map (fun k -> token_enc key (t8 k)) kws))

let mk_sender ?(mode = Exact) ?(salt0 = 0) () = sender_create mode key ~salt0

let stream sender ?k_ssl contents =
  sender_encrypt sender ?k_ssl (List.mapi (fun i c -> { content = t8 c; offset = 8 * i }) contents)

let detect_tests =
  [ Alcotest.test_case "single keyword match with offset" `Quick (fun () ->
        let d = mk_detect [ "attack" ] in
        let s = mk_sender () in
        let toks = stream s [ "hello"; "attack"; "world" ] in
        (match Detect.process_batch d toks with
         | [ ev ] ->
           Alcotest.(check int) "kw" 0 ev.Detect.kw_id;
           Alcotest.(check int) "offset" 8 ev.Detect.offset
         | evs -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs))));
    Alcotest.test_case "no match on clean traffic" `Quick (fun () ->
        let d = mk_detect [ "attack"; "malware" ] in
        let s = mk_sender () in
        Alcotest.(check int) "no events" 0
          (List.length (Detect.process_batch d (stream s [ "just"; "normal"; "words" ]))));
    Alcotest.test_case "repeated keyword matches every time" `Quick (fun () ->
        let d = mk_detect [ "attack" ] in
        let s = mk_sender () in
        let toks = stream s [ "attack"; "x"; "attack"; "attack" ] in
        Alcotest.(check int) "three matches" 3 (List.length (Detect.process_batch d toks)));
    Alcotest.test_case "interleaved keywords stay in sync" `Quick (fun () ->
        let d = mk_detect [ "aaa"; "bbb" ] in
        let s = mk_sender () in
        let toks = stream s [ "aaa"; "bbb"; "aaa"; "ccc"; "bbb"; "aaa" ] in
        let evs = Detect.process_batch d toks in
        Alcotest.(check (list int)) "ids" [ 0; 1; 0; 1; 0 ]
          (List.map (fun e -> e.Detect.kw_id) evs));
    Alcotest.test_case "out-of-sync counters do not match (semantic security)" `Quick (fun () ->
        (* A second sender starting fresh re-uses low salts; a detector that
           has already advanced past them must not match. *)
        let d = mk_detect [ "attack" ] in
        let s1 = mk_sender () in
        ignore (Detect.process_batch d (stream s1 [ "attack"; "attack" ]));
        let s2 = mk_sender () in
        let toks = stream s2 [ "attack" ] in
        Alcotest.(check int) "stale salt ignored" 0
          (List.length (Detect.process_batch d toks)));
    Alcotest.test_case "reset resynchronises" `Quick (fun () ->
        let d = mk_detect [ "attack" ] in
        let s = mk_sender () in
        ignore (Detect.process_batch d (stream s [ "attack"; "attack" ]));
        let new_salt0 = sender_reset s in
        Detect.reset d ~salt0:new_salt0;
        let toks = stream s [ "attack" ] in
        Alcotest.(check int) "matches again" 1 (List.length (Detect.process_batch d toks)));
    Alcotest.test_case "probable cause recovers k_ssl only on match" `Quick (fun () ->
        let d = mk_detect ~mode:Probable [ "attack" ] in
        let s = mk_sender ~mode:Probable () in
        let k_ssl = Bbx_crypto.Sha256.digest "ssl" |> fun x -> String.sub x 0 16 in
        let toks = stream s ~k_ssl [ "benign"; "attack" ] in
        let evs = Detect.process_batch d toks in
        (match evs with
         | [ ev ] ->
           let embed =
             match List.nth toks 1 with
             | { embed = Some e; _ } -> e
             | _ -> Alcotest.fail "missing embed"
           in
           Alcotest.(check string) "k_ssl recovered" k_ssl
             (Detect.recover_key d ~event:ev ~embed)
         | _ -> Alcotest.fail "expected exactly one event");
        (* the benign token's embed does not decrypt to k_ssl under any rule *)
        let benign_embed =
          match List.nth toks 0 with { embed = Some e; _ } -> e | _ -> assert false
        in
        Alcotest.(check bool) "benign embed useless" true
          (Detect.recover_key d
             ~event:{ Detect.kw_id = 0; offset = 0; salt = 0 }
             ~embed:benign_embed
           <> k_ssl));
    Alcotest.test_case "recover_key rejected in exact mode" `Quick (fun () ->
        let d = mk_detect [ "attack" ] in
        Alcotest.check_raises "raises"
          (Invalid_argument "Detect.recover_key: not in probable-cause mode")
          (fun () ->
             ignore
               (Detect.recover_key d ~event:{ Detect.kw_id = 0; offset = 0; salt = 0 }
                  ~embed:(String.make 16 'x'))));
    Alcotest.test_case "tree size equals keyword count" `Quick (fun () ->
        let d = mk_detect [ "a"; "b"; "c"; "d"; "e" ] in
        Alcotest.(check int) "size" 5 (Detect.size d);
        Alcotest.(check bool) "height sane" true (Detect.tree_height d <= 4));
    Alcotest.test_case "add_keyword extends a live detector" `Quick (fun () ->
        let d = mk_detect [ "first" ] in
        let s = mk_sender () in
        (* unknown keyword flows through *)
        Alcotest.(check int) "miss" 0 (List.length (Detect.process_batch d (stream s [ "second" ])));
        let id = Detect.add_keyword d (token_enc key (t8 "second")) in
        Alcotest.(check int) "id appended" 1 id;
        Alcotest.(check int) "size grew" 2 (Detect.size d);
        (* note: the live sender already used salt 0 for "second"; a fresh
           sender (as after the protocol's post-update salt reset) matches *)
        let s2 = mk_sender () in
        (match Detect.process_batch d (stream s2 [ "second" ]) with
         | [ ev ] -> Alcotest.(check int) "new id matches" id ev.Detect.kw_id
         | evs -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random streams: events match plaintext scan" ~count:50
         QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (QCheck.oneofl [ "atk"; "mal"; "ok"; "fine" ]))
         (fun words ->
            let d = mk_detect [ "atk"; "mal" ] in
            let s = mk_sender () in
            let evs = Detect.process_batch d (stream s words) in
            let expected =
              List.filteri (fun _ w -> w = "atk" || w = "mal") words |> List.length
            in
            List.length evs = expected));
    Alcotest.test_case "store grows across many add_keyword calls" `Quick (fun () ->
        let d = mk_detect [] in
        let kws = List.init 40 (Printf.sprintf "kw%d") in
        List.iteri
          (fun i kw ->
             Alcotest.(check int) "sequential id" i
               (Detect.add_keyword d (token_enc key (t8 kw))))
          kws;
        Alcotest.(check int) "size" 40 (Detect.size d);
        let s = mk_sender () in
        let evs = Detect.process_batch d (stream s kws) in
        Alcotest.(check (list int)) "every keyword matches" (List.init 40 Fun.id)
          (List.map (fun e -> e.Detect.kw_id) evs));
  ]

(* Streaming path vs batch path: same events from the same wire bytes. *)
let stream_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"process_stream equals process_batch" ~count:80
         QCheck.(pair (oneofl [ Exact; Probable ])
                   (list_of_size (QCheck.Gen.int_range 0 30)
                      (QCheck.oneofl [ "atk"; "mal"; "ok"; "fine" ])))
         (fun (mode, words) ->
            let k_ssl = if mode = Probable then Some (String.make 16 'S') else None in
            let d_batch = mk_detect ~mode [ "atk"; "mal" ] in
            let d_stream = mk_detect ~mode [ "atk"; "mal" ] in
            let s = mk_sender ~mode () in
            let toks = stream s ?k_ssl words in
            let wire = encode_tokens toks in
            let batch_evs = Detect.process_batch d_batch toks in
            let stream_evs = ref [] in
            let n =
              Detect.process_stream d_stream wire ~f:(fun ev ~embed_pos ->
                  stream_evs := (ev, embed_pos) :: !stream_evs)
            in
            let stream_evs = List.rev !stream_evs in
            n = List.length words
            && List.length batch_evs = List.length stream_evs
            && List.for_all2
              (fun b (sv, embed_pos) ->
                 b.Detect.kw_id = sv.Detect.kw_id
                 && b.Detect.offset = sv.Detect.offset
                 && b.Detect.salt = sv.Detect.salt
                 && (mode = Exact) = (embed_pos < 0))
              batch_evs stream_evs));
    Alcotest.test_case "embed_pos locates the matching record's embed" `Quick (fun () ->
        let d = mk_detect ~mode:Probable [ "attack" ] in
        let s = mk_sender ~mode:Probable () in
        let k_ssl = String.make 16 'Z' in
        let toks = stream s ~k_ssl [ "benign"; "attack" ] in
        let wire = encode_tokens toks in
        let hits = ref [] in
        ignore
          (Detect.process_stream d wire ~f:(fun ev ~embed_pos ->
               hits := (ev, String.sub wire embed_pos 16) :: !hits)
            : int);
        match !hits with
        | [ (ev, embed) ] ->
          Alcotest.(check string) "k_ssl via streamed embed" k_ssl
            (Detect.recover_key d ~event:ev ~embed)
        | l -> Alcotest.fail (Printf.sprintf "expected 1 hit, got %d" (List.length l)));
  ]

let () =
  Alcotest.run "detect"
    [ ("avl", avl_props); ("engine", detect_tests); ("streaming", stream_tests) ]
