open Bbx_circuit
open Bbx_crypto
open Bbx_garble

let bits_of_int n v = Array.init n (fun i -> (v lsr i) land 1 = 1)
let int_of_bits_lsb bits =
  snd (Array.fold_left (fun (i, acc) b -> (i + 1, if b then acc lor (1 lsl i) else acc)) (0, 0) bits)

let garble_eval ?scheme circuit inputs seed =
  let g, s = Garble.garble ?scheme (Drbg.create seed) circuit in
  Garble.eval circuit g (Garble.encode_inputs s inputs)

let tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"garbled adder matches plain eval (half-gates)" ~count:50
         QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
         (fun (x, y) ->
            let c = Samples.adder 16 in
            let inputs = Array.append (bits_of_int 16 x) (bits_of_int 16 y) in
            int_of_bits_lsb (garble_eval c inputs "seed") = x + y));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"garbled adder matches plain eval (classic)" ~count:50
         QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
         (fun (x, y) ->
            let c = Samples.adder 16 in
            let inputs = Array.append (bits_of_int 16 x) (bits_of_int 16 y) in
            int_of_bits_lsb (garble_eval ~scheme:Garble.Classic c inputs "seed") = x + y));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"garbled equality matches plain eval" ~count:50
         QCheck.(pair (int_bound 0xff) (int_bound 0xff))
         (fun (x, y) ->
            let c = Samples.equality 8 in
            let inputs = Array.append (bits_of_int 8 x) (bits_of_int 8 y) in
            (garble_eval c inputs "s2").(0) = (x = y)));
    Alcotest.test_case "half-gates tables are half the classic size" `Quick (fun () ->
        let c = Samples.adder 32 in
        let g_half, _ = Garble.garble (Drbg.create "sz") c in
        let g_classic, _ = Garble.garble ~scheme:Garble.Classic (Drbg.create "sz") c in
        Alcotest.(check bool) "roughly half" true
          (float_of_int (Garble.size_bytes g_half)
           < 0.55 *. float_of_int (Garble.size_bytes g_classic)));
    Alcotest.test_case "schemes do not cross-evaluate" `Quick (fun () ->
        (* serialisation tags the scheme so a mismatch is caught on decode *)
        let c = Samples.equality 8 in
        let g, _ = Garble.garble (Drbg.create "tag") c in
        let s = Garble.to_string g in
        let g' = Garble.of_string s in
        Alcotest.(check bool) "round trips with scheme" true (Garble.equal g g'));
    Alcotest.test_case "deterministic from seed" `Quick (fun () ->
        let c = Samples.adder 8 in
        let g1, _ = Garble.garble (Drbg.create "shared") c in
        let g2, _ = Garble.garble (Drbg.create "shared") c in
        Alcotest.(check bool) "equal" true (Garble.equal g1 g2);
        let g3, _ = Garble.garble (Drbg.create "other") c in
        Alcotest.(check bool) "differs" false (Garble.equal g1 g3));
    Alcotest.test_case "serialisation round trip" `Quick (fun () ->
        let c = Samples.mux 8 in
        let g, s = Garble.garble (Drbg.create "ser") c in
        let g' = Garble.of_string (Garble.to_string g) in
        Alcotest.(check bool) "equal" true (Garble.equal g g');
        let inputs = Array.concat [ bits_of_int 8 0xa5; bits_of_int 8 0x3c; [| true |] ] in
        Alcotest.(check int) "still evaluates" 0x3c
          (int_of_bits_lsb (Garble.eval c g' (Garble.encode_inputs s inputs))));
    Alcotest.test_case "label pair differs per wire and value" `Quick (fun () ->
        let c = Samples.equality 8 in
        let _, s = Garble.garble (Drbg.create "lbl") c in
        let l0, l1 = Garble.input_label_pair s ~wire:0 in
        Alcotest.(check bool) "0/1 labels differ" true (l0 <> l1);
        Alcotest.(check string) "encode 0" l0 (Garble.encode_input s ~wire:0 false);
        Alcotest.(check string) "encode 1" l1 (Garble.encode_input s ~wire:0 true);
        let l0', _ = Garble.input_label_pair s ~wire:1 in
        Alcotest.(check bool) "wires differ" true (l0 <> l0'));
    Alcotest.test_case "wrong label count rejected" `Quick (fun () ->
        let c = Samples.equality 8 in
        let g, s = Garble.garble (Drbg.create "cnt") c in
        let labels = Garble.encode_inputs s (Array.make 16 false) in
        Alcotest.check_raises "raises"
          (Invalid_argument "Garble.eval: wrong number of input labels")
          (fun () -> ignore (Garble.eval c g (Array.sub labels 0 15))));
    Alcotest.test_case "garbled AES-128 circuit is correct" `Slow (fun () ->
        let c = Aes_circuit.build () in
        let key = Util.of_hex "000102030405060708090a0b0c0d0e0f" in
        let msg = Util.of_hex "00112233445566778899aabbccddeeff" in
        let inputs = Array.append (Circuit.bits_of_string key) (Circuit.bits_of_string msg) in
        let g, s = Garble.garble (Drbg.create "aes-garble") c in
        let out = Garble.eval c g (Garble.encode_inputs s inputs) in
        Alcotest.(check string) "FIPS vector" "69c4e0d86a7b0430d8cdb78070b4c55a"
          (Util.to_hex (Circuit.string_of_bits out));
        Alcotest.(check bool) "non-trivial size" true (Garble.size_bytes g > 500_000));
  ]

let () = Alcotest.run "garble" [ ("garble", tests) ]
