(* Bbx_exec.Pool tests: the generic domain-pool executor extracted from
   the middlebox shard pool.  Unit coverage of the mailbox surface (exec
   FIFO, ticketed submit + ordered drain, quiesce, sticky failures,
   idempotent shutdown) plus qcheck determinism checks for [map] at
   several domain counts. *)

module Pool = Bbx_exec.Pool

let with_counters ~domains f =
  Pool.with_pool ~domains ~state:(fun i -> (i, ref 0)) f

let unit_tests =
  [ Alcotest.test_case "exec runs FIFO per worker, quiesce reads the result" `Quick
      (fun () ->
        with_counters ~domains:2 @@ fun pool ->
        for k = 1 to 100 do
          Pool.exec pool ~worker:(k mod 2) (fun (_, c) -> c := (10 * !c) + k mod 7)
        done;
        (* replay the same fold sequentially per worker *)
        let expect w =
          let c = ref 0 in
          for k = 1 to 100 do
            if k mod 2 = w then c := (10 * !c) + k mod 7
          done;
          !c
        in
        Alcotest.(check int) "worker 0" (expect 0)
          (Pool.quiesce pool ~worker:0 (fun (_, c) -> !c));
        Alcotest.(check int) "worker 1" (expect 1)
          (Pool.quiesce pool ~worker:1 (fun (_, c) -> !c)));
    Alcotest.test_case "drain returns ticketed results in submission order" `Quick
      (fun () ->
        with_counters ~domains:3 @@ fun pool ->
        let tickets =
          List.init 50 (fun k -> Pool.submit pool ~worker:(k mod 3) (fun _ -> Some (k * k)))
        in
        Alcotest.(check int) "pending" 50 (Pool.pending pool);
        let seen = ref [] in
        Pool.drain pool ~f:(fun ~seq r -> seen := (seq, r) :: !seen);
        let seen = List.rev !seen in
        Alcotest.(check (list int)) "seqs in submission order" tickets (List.map fst seen);
        Alcotest.(check (list int)) "results follow tickets"
          (List.init 50 (fun k -> k * k))
          (List.map snd seen);
        Alcotest.(check int) "pending reset" 0 (Pool.pending pool));
    Alcotest.test_case "submit returning None produces no drain callback" `Quick
      (fun () ->
        with_counters ~domains:2 @@ fun pool ->
        ignore (Pool.submit pool ~worker:0 (fun _ -> None) : int);
        let t = Pool.submit pool ~worker:1 (fun _ -> Some "kept") in
        Alcotest.(check (list (pair int string))) "only the Some survives"
          [ (t, "kept") ] (Pool.drain_list pool));
    Alcotest.test_case "worker exception is sticky and re-raised at drain" `Quick
      (fun () ->
        let pool = Pool.create ~domains:2 ~state:(fun i -> (i, ref 0)) () in
        Fun.protect ~finally:(fun () -> try Pool.shutdown pool with _ -> ()) @@ fun () ->
        Pool.exec pool ~worker:0 (fun _ -> failwith "boom");
        Alcotest.(check bool) "drain re-raises" true
          (match Pool.drain_list pool with
           | exception Failure msg -> msg = "boom"
           | _ -> false));
    Alcotest.test_case "map failure surfaces at the barrier" `Quick (fun () ->
        with_counters ~domains:2 @@ fun pool ->
        Alcotest.(check bool) "barrier re-raises" true
          (match Pool.map pool ~n:8 ~f:(fun i _ -> if i = 5 then failwith "mapboom" else i) with
           | exception Failure msg -> msg = "mapboom"
           | _ -> false));
    Alcotest.test_case "fold_workers visits workers in order" `Quick (fun () ->
        with_counters ~domains:4 @@ fun pool ->
        Alcotest.(check (list int)) "worker ids" [ 0; 1; 2; 3 ]
          (List.rev (Pool.fold_workers pool ~init:[] ~f:(fun acc (i, _) -> i :: acc))));
    Alcotest.test_case "shutdown is idempotent; use-after-shutdown raises" `Quick
      (fun () ->
        let pool = Pool.create ~domains:2 ~state:(fun i -> (i, ref 0)) () in
        Alcotest.(check bool) "live" true (Pool.live pool);
        Pool.shutdown pool;
        Pool.shutdown pool;
        Alcotest.(check bool) "dead" false (Pool.live pool);
        Alcotest.(check bool) "exec raises" true
          (match Pool.exec pool ~worker:0 (fun _ -> ()) with
           | exception Invalid_argument _ -> true
           | _ -> false);
        Alcotest.(check bool) "submit raises" true
          (match Pool.submit pool ~worker:0 (fun _ -> Some 0) with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "bad worker index raises" `Quick (fun () ->
        with_counters ~domains:2 @@ fun pool ->
        Alcotest.(check bool) "raises" true
          (match Pool.exec pool ~worker:2 (fun _ -> ()) with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "tiny capacity still completes (backpressure blocks, not drops)"
      `Quick (fun () ->
        Pool.with_pool ~domains:1 ~capacity:2 ~batch_max:1 ~state:(fun i -> (i, ref 0))
        @@ fun pool ->
        for _ = 1 to 64 do
          Pool.exec pool ~worker:0 (fun (_, c) -> incr c)
        done;
        Alcotest.(check int) "all tasks ran" 64
          (Pool.quiesce pool ~worker:0 (fun (_, c) -> !c)))
  ]

(* [map] must equal sequential [Array.init] at any domain count: results
   land in per-index slots, so scheduling cannot reorder them. *)
let map_differential =
  QCheck.Test.make ~name:"Pool.map equals Array.init at 1/2/4 domains" ~count:20
    QCheck.(pair (int_bound 60) (int_bound 1000))
    (fun (n, salt) ->
      let f i = Printf.sprintf "%d-%d" (i * 31 + salt) (i land 7) in
      let expect = Array.init n f in
      List.for_all
        (fun domains ->
          with_counters ~domains (fun pool ->
              Pool.map pool ~n ~f:(fun i _ -> f i) = expect))
        [ 1; 2; 4 ])

(* Interleaving exec / submit / map / drain arbitrarily must preserve the
   ticket ordering of drained results and the per-worker FIFO of execs. *)
let mixed_differential =
  QCheck.Test.make ~name:"interleaved exec/submit/drain keeps ticket order" ~count:20
    QCheck.(list_of_size Gen.(int_bound 40) (int_bound 5))
    (fun ops ->
      with_counters ~domains:2 @@ fun pool ->
      let submitted = ref [] and drained = ref [] in
      List.iteri
        (fun k op ->
          match op with
          | 0 | 1 | 2 ->
            let t = Pool.submit pool ~worker:(op mod 2) (fun _ -> Some k) in
            submitted := (t, k) :: !submitted
          | 3 -> Pool.exec pool ~worker:(k mod 2) (fun (_, c) -> incr c)
          | _ ->
            Pool.drain pool ~f:(fun ~seq r -> drained := (seq, r) :: !drained);
            submitted := [])
        ops;
      Pool.drain pool ~f:(fun ~seq r -> drained := (seq, r) :: !drained);
      (* drained seqs strictly increase overall (tickets are global) *)
      let seqs = List.rev_map fst !drained in
      let rec sorted = function
        | a :: (b :: _ as tl) -> a < b && sorted tl
        | _ -> true
      in
      sorted seqs)

let () =
  Alcotest.run "exec"
    [ ("pool", unit_tests);
      ( "differential",
        List.map QCheck_alcotest.to_alcotest [ map_differential; mixed_differential ] )
    ]
