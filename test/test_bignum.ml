open Bbx_bignum

(* Deterministic xorshift-based byte source for reproducible prime tests. *)
let make_rand seed =
  let state = ref (if seed = 0 then 0x9e3779b9 else seed) in
  fun n ->
    String.init n (fun _ ->
        let x = !state in
        let x = x lxor (x lsl 13) in
        let x = x lxor (x lsr 7) in
        let x = x lxor (x lsl 17) in
        state := x land max_int;
        Char.chr (!state land 0xff))

let nat = Alcotest.testable Nat.pp Nat.equal

let check_nat = Alcotest.check nat

let n = Nat.of_string

(* QCheck generator: random naturals up to ~512 bits, biased toward small. *)
let gen_nat =
  let open QCheck.Gen in
  let* nbytes = frequency [ (4, int_range 0 8); (3, int_range 9 32); (1, int_range 33 64) ] in
  let* s = string_size ~gen:char (return nbytes) in
  return (Nat.of_bytes_be s)

let arb_nat = QCheck.make ~print:Nat.to_string gen_nat

let arb_nat_pos =
  QCheck.make ~print:Nat.to_string
    QCheck.Gen.(map (fun x -> Nat.add x Nat.one) gen_nat)

let unit_tests =
  [ Alcotest.test_case "zero and one" `Quick (fun () ->
        Alcotest.(check bool) "zero is zero" true (Nat.is_zero Nat.zero);
        check_nat "0+1=1" Nat.one (Nat.add Nat.zero Nat.one);
        Alcotest.(check (option int)) "to_int one" (Some 1) (Nat.to_int Nat.one));
    Alcotest.test_case "decimal round trip" `Quick (fun () ->
        let s = "123456789012345678901234567890123456789" in
        Alcotest.(check string) "to_string" s (Nat.to_string (n s)));
    Alcotest.test_case "hex round trip" `Quick (fun () ->
        let h = "deadbeefcafebabe0123456789abcdef" in
        Alcotest.(check string) "to_hex" h (Nat.to_hex (Nat.of_hex h)));
    Alcotest.test_case "known product" `Quick (fun () ->
        check_nat "mul"
          (n "121932631137021795226185032733622923332237463801111263526900")
          (Nat.mul (n "123456789012345678901234567890") (n "987654321098765432109876543210")));
    Alcotest.test_case "known quotient" `Quick (fun () ->
        let a = n "123456789012345678901234567890123456789" in
        let b = n "9876543210987654321" in
        let q, r = Nat.divmod a b in
        check_nat "identity" a (Nat.add (Nat.mul q b) r);
        Alcotest.(check bool) "r < b" true (Nat.compare r b < 0);
        check_nat "q rebuilt" q (Nat.div (Nat.sub a r) b));
    Alcotest.test_case "division by larger" `Quick (fun () ->
        let q, r = Nat.divmod (n "5") (n "7") in
        check_nat "q=0" Nat.zero q;
        check_nat "r=5" (n "5") r);
    Alcotest.test_case "division by zero" `Quick (fun () ->
        Alcotest.check_raises "raises" Division_by_zero (fun () ->
            ignore (Nat.divmod Nat.one Nat.zero)));
    Alcotest.test_case "sub underflow" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Nat.sub: negative result")
          (fun () -> ignore (Nat.sub Nat.one Nat.two)));
    Alcotest.test_case "bit length" `Quick (fun () ->
        Alcotest.(check int) "bl 0" 0 (Nat.bit_length Nat.zero);
        Alcotest.(check int) "bl 1" 1 (Nat.bit_length Nat.one);
        Alcotest.(check int) "bl 255" 8 (Nat.bit_length (Nat.of_int 255));
        Alcotest.(check int) "bl 256" 9 (Nat.bit_length (Nat.of_int 256));
        Alcotest.(check int) "bl 2^100" 101 (Nat.bit_length (Nat.shift_left Nat.one 100)));
    Alcotest.test_case "mod_pow fermat" `Quick (fun () ->
        (* 2^(p-1) = 1 mod p for prime p *)
        let p = n "1000000007" in
        check_nat "fermat" Nat.one
          (Nat.mod_pow ~base:Nat.two ~exp:(Nat.sub p Nat.one) ~modulus:p));
    Alcotest.test_case "mod_inv known" `Quick (fun () ->
        let p = n "1000000007" in
        let a = n "123456789" in
        let inv = Nat.mod_inv a p in
        check_nat "a * a^-1 = 1" Nat.one (Nat.rem (Nat.mul a inv) p));
    Alcotest.test_case "mod_inv non-invertible" `Quick (fun () ->
        Alcotest.check_raises "raises" Not_found (fun () ->
            ignore (Nat.mod_inv (Nat.of_int 6) (Nat.of_int 9))));
    Alcotest.test_case "to_bytes_be padding" `Quick (fun () ->
        Alcotest.(check string) "padded" "\x00\x00\x01\x02"
          (Nat.to_bytes_be ~len:4 (Nat.of_int 258));
        Alcotest.check_raises "too small"
          (Invalid_argument "Nat.to_bytes_be: value too large for len") (fun () ->
              ignore (Nat.to_bytes_be ~len:1 (Nat.of_int 258))));
    Alcotest.test_case "pow" `Quick (fun () ->
        check_nat "2^10" (Nat.of_int 1024) (Nat.pow Nat.two 10);
        check_nat "x^0" Nat.one (Nat.pow (n "999") 0));
    Alcotest.test_case "2^255-19 is prime" `Slow (fun () ->
        let p = Nat.sub (Nat.shift_left Nat.one 255) (Nat.of_int 19) in
        let rand_bytes = make_rand 42 in
        Alcotest.(check bool) "prime" true (Prime.is_probable_prime ~rand_bytes p));
    Alcotest.test_case "carmichael number rejected" `Quick (fun () ->
        let rand_bytes = make_rand 7 in
        Alcotest.(check bool) "561" false
          (Prime.is_probable_prime ~rand_bytes (Nat.of_int 561));
        Alcotest.(check bool) "1105" false
          (Prime.is_probable_prime ~rand_bytes (Nat.of_int 1105)));
    Alcotest.test_case "gen_prime width" `Slow (fun () ->
        let rand_bytes = make_rand 99 in
        let p = Prime.gen_prime ~rand_bytes ~bits:128 in
        Alcotest.(check int) "128 bits" 128 (Nat.bit_length p);
        Alcotest.(check bool) "prime" true (Prime.is_probable_prime ~rand_bytes p));
  ]

let prop name ?(count = 200) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let property_tests =
  [ prop "add commutative" (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        Nat.equal (Nat.add a b) (Nat.add b a));
    prop "add associative" (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
        Nat.equal (Nat.add a (Nat.add b c)) (Nat.add (Nat.add a b) c));
    prop "sub inverts add" (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        Nat.equal a (Nat.sub (Nat.add a b) b));
    prop "mul commutative" (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        Nat.equal (Nat.mul a b) (Nat.mul b a));
    prop "mul distributes" (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
        Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
    prop "divmod identity" ~count:500 (QCheck.pair arb_nat arb_nat_pos) (fun (a, b) ->
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0);
    prop "shift left/right round trip" (QCheck.pair arb_nat QCheck.(int_range 0 200))
      (fun (a, k) -> Nat.equal a (Nat.shift_right (Nat.shift_left a k) k));
    prop "shift_left is mul by 2^k" (QCheck.pair arb_nat QCheck.(int_range 0 100))
      (fun (a, k) -> Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.pow Nat.two k)));
    prop "bytes round trip" arb_nat (fun a ->
        Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)));
    prop "decimal round trip" arb_nat (fun a ->
        Nat.equal a (Nat.of_string (Nat.to_string a)));
    prop "compare consistent with sub" (QCheck.pair arb_nat arb_nat) (fun (a, b) ->
        match Nat.compare a b with
        | 0 -> Nat.equal a b
        | c when c < 0 -> Nat.compare (Nat.add a Nat.one) (Nat.add b Nat.one) < 0
        | _ -> Nat.compare b a < 0);
    prop "mod_pow matches naive" ~count:50
      (QCheck.triple arb_nat QCheck.(int_range 0 40) arb_nat_pos)
      (fun (b, e, m) ->
         let naive = Nat.rem (Nat.pow b e) m in
         Nat.equal naive (Nat.mod_pow ~base:b ~exp:(Nat.of_int e) ~modulus:m));
    prop "mod_inv is inverse mod prime" ~count:100 arb_nat_pos (fun a ->
        let p = Nat.of_string "170141183460469231731687303715884105727" (* 2^127-1 *) in
        let a = Nat.rem a p in
        QCheck.assume (not (Nat.is_zero a));
        let inv = Nat.mod_inv a p in
        Nat.equal Nat.one (Nat.rem (Nat.mul a inv) p));
    prop "gcd divides both" (QCheck.pair arb_nat_pos arb_nat_pos) (fun (a, b) ->
        let g = Nat.gcd a b in
        Nat.is_zero (Nat.rem a g) && Nat.is_zero (Nat.rem b g));
    prop "testbit consistent with shift" (QCheck.pair arb_nat QCheck.(int_range 0 300))
      (fun (a, i) ->
         let expected = not (Nat.is_even (Nat.shift_right a i)) in
         Nat.testbit a i = expected);
  ]

let mont_tests =
  let odd n = if Nat.is_even n then Nat.add n Nat.one else n in
  let prop name ?(count = 200) arb f =
    QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)
  in
  [ Alcotest.test_case "known exponentiation" `Quick (fun () ->
        let p = n "1000000007" in
        let ctx = Mont.create p in
        check_nat "fermat" Nat.one (Mont.mod_pow ctx ~base:Nat.two ~exp:(Nat.sub p Nat.one));
        check_nat "2^10" (Nat.of_int 1024) (Mont.mod_pow ctx ~base:Nat.two ~exp:(Nat.of_int 10)));
    Alcotest.test_case "even modulus rejected" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Mont.create: modulus must be odd and > 1")
          (fun () -> ignore (Mont.create (Nat.of_int 100))));
    prop "mod_pow matches Nat.mod_pow" ~count:150
      (QCheck.triple arb_nat arb_nat arb_nat_pos)
      (fun (b, e, m) ->
         let m = odd (Nat.add m (Nat.of_int 2)) in
         Nat.equal (Mont.mod_pow (Mont.create m) ~base:b ~exp:e)
           (Nat.mod_pow ~base:b ~exp:e ~modulus:m));
    prop "mul matches rem(mul)" ~count:200 (QCheck.triple arb_nat arb_nat arb_nat_pos)
      (fun (a, b, m) ->
         let m = odd (Nat.add m (Nat.of_int 2)) in
         Nat.equal (Mont.mul (Mont.create m) a b) (Nat.rem (Nat.mul a b) m));
    prop "exponent edge cases" ~count:50 arb_nat_pos (fun m ->
        let m = odd (Nat.add m (Nat.of_int 2)) in
        let ctx = Mont.create m in
        Nat.equal (Mont.mod_pow ctx ~base:(n "12345") ~exp:Nat.zero) (Nat.rem Nat.one m)
        && Nat.equal (Mont.mod_pow ctx ~base:(n "12345") ~exp:Nat.one)
          (Nat.rem (n "12345") m));
  ]

let () =
  Alcotest.run "bignum"
    [ ("nat-unit", unit_tests); ("nat-props", property_tests); ("montgomery", mont_tests) ]
