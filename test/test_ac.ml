open Bbx_ac

let search_naive patterns payload =
  (* reference: for each pattern, all end offsets *)
  let hits = ref [] in
  Array.iteri
    (fun pi pat ->
       let np = String.length pat in
       for q = 0 to String.length payload - np do
         if String.sub payload q np = pat then hits := (pi, q + np) :: !hits
       done)
    patterns;
  List.sort compare !hits

let unit_tests =
  [ Alcotest.test_case "basic multi-pattern" `Quick (fun () ->
        let t = Aho_corasick.build [| "he"; "she"; "his"; "hers" |] in
        let hits = Aho_corasick.search t "ushers" in
        Alcotest.(check (list (pair int int))) "classic example"
          [ (1, 4); (0, 4); (3, 6) ] hits);
    Alcotest.test_case "overlapping matches all reported" `Quick (fun () ->
        let t = Aho_corasick.build [| "aa" |] in
        Alcotest.(check int) "three" 3 (List.length (Aho_corasick.search t "aaaa")));
    Alcotest.test_case "no match" `Quick (fun () ->
        let t = Aho_corasick.build [| "attack" |] in
        Alcotest.(check (list (pair int int))) "none" [] (Aho_corasick.search t "benign"));
    Alcotest.test_case "search_first stops early" `Quick (fun () ->
        let t = Aho_corasick.build [| "xx"; "yy" |] in
        Alcotest.(check (option (pair int int))) "first" (Some (1, 3))
          (Aho_corasick.search_first t "zyyxx"));
    Alcotest.test_case "count matches search" `Quick (fun () ->
        let t = Aho_corasick.build [| "ab"; "b" |] in
        let payload = "ababab" in
        Alcotest.(check int) "same count"
          (List.length (Aho_corasick.search t payload))
          (Aho_corasick.count_matches t payload));
    Alcotest.test_case "empty pattern rejected" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Aho_corasick.build: empty pattern")
          (fun () -> ignore (Aho_corasick.build [| "ok"; "" |])));
    Alcotest.test_case "binary patterns" `Quick (fun () ->
        let t = Aho_corasick.build [| "\x00\xff\x00"; "\xde\xad" |] in
        let hits = Aho_corasick.search t "xx\x00\xff\x00yy\xde\xadzz" in
        Alcotest.(check int) "two" 2 (List.length hits));
  ]

let property_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"matches naive scan" ~count:300
         (let ab_string lo hi =
            QCheck.Gen.(string_size ~gen:(map (fun b -> if b then 'a' else 'b') bool)
                          (int_range lo hi))
          in
          QCheck.make
            ~print:(fun (ps, s) -> String.concat "," (Array.to_list ps) ^ " on " ^ s)
            QCheck.Gen.(pair (array_size (return 4) (ab_string 1 4)) (ab_string 0 40)))
         (fun (patterns, payload) ->
            let t = Aho_corasick.build patterns in
            List.sort compare (Aho_corasick.search t payload)
            = search_naive patterns payload));
  ]

let () = Alcotest.run "ac" [ ("unit", unit_tests); ("props", property_tests) ]
