(* Differential and vector tests for the bitsliced AES kernel.

   The kernel is only ever used where its output must be byte-identical
   to the scalar path (DPIEnc wire bytes are consumed by a peer that may
   run either kernel), so everything here is equality against [Aes]:
   FIPS-197 vectors at every lane occupancy, random-key random-block
   differentials, transpose roundtrips, and a numeric re-derivation of
   the tower-field S-box circuit's defining property. *)

open Bbx_crypto

let hex s =
  let n = String.length s / 2 in
  String.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* FIPS-197 appendix C.1 *)
let fips_key = hex "000102030405060708090a0b0c0d0e0f"
let fips_pt = hex "00112233445566778899aabbccddeeff"
let fips_ct = hex "69c4e0d86a7b0430d8cdb78070b4c55a"

(* FIPS-197 appendix B *)
let b_key = hex "2b7e151628aed2a6abf7158809cf4f3c"
let b_pt = hex "3243f6a8885a308d313198a2e0370734"
let b_ct = hex "3925841d02dc09fbdc118597196a0b32"

let test_fips_all_occupancies () =
  let k = Aes_bs.expand fips_key in
  let b = Aes_bs.create_batch () in
  for n = 1 to Aes_bs.width do
    Aes_bs.reset b;
    for i = 0 to n - 1 do
      Aes_bs.set_block b i fips_pt 0
    done;
    Alcotest.(check int) "occupancy" n (Aes_bs.length b);
    Aes_bs.encrypt_blocks_into k b;
    for i = 0 to n - 1 do
      Alcotest.(check string)
        (Printf.sprintf "fips ct, n=%d lane=%d" n i)
        fips_ct (Aes_bs.get_block b i)
    done
  done

let test_fips_b () =
  let k = Aes_bs.expand b_key in
  let b = Aes_bs.create_batch () in
  Aes_bs.set_block b 0 b_pt 0;
  Aes_bs.encrypt_blocks_into k b;
  Alcotest.(check string) "appendix B" b_ct (Aes_bs.get_block b 0)

(* Each lane carries an independent block: encrypt 63 distinct blocks in
   one call and compare every lane to the scalar cipher. *)
let test_distinct_lanes () =
  let key = hex "8e73b0f7da0e6452c810f32b809079e5" in
  let k = Aes_bs.expand key in
  let sk = Aes.expand_key key in
  let b = Aes_bs.create_batch () in
  let blocks =
    Array.init Aes_bs.width (fun i ->
        String.init 16 (fun j -> Char.chr ((i * 31 + j * 7 + (i * j)) land 0xff)))
  in
  Array.iteri (fun i s -> Aes_bs.set_block b i s 0) blocks;
  Aes_bs.encrypt_blocks_into k b;
  Array.iteri
    (fun i s ->
      Alcotest.(check string)
        (Printf.sprintf "lane %d" i)
        (Aes.encrypt_block sk s) (Aes_bs.get_block b i))
    blocks

(* The S-box circuit inside the kernel must send byte v to Aes.sbox.(v)
   on every lane position.  Encrypting v||v||... through both paths at
   full occupancy already covers it, but pin the S-box property directly:
   a single-round trace is not exposed, so drive all 256 byte values
   through full encryptions under a key whose schedule we also feed the
   scalar path.  (Any mismatch in the 149-gate circuit flips at least one
   ciphertext byte; test_circuit additionally pins the tower algebra.) *)
let test_all_byte_values () =
  let key = hex "000102030405060708090a0b0c0d0e0f" in
  let k = Aes_bs.expand key in
  let sk = Aes.expand_key key in
  let b = Aes_bs.create_batch () in
  let n = Aes_bs.width in
  for base = 0 to 255 / n do
    Aes_bs.reset b;
    let cnt = min n (256 - (base * n)) in
    for i = 0 to cnt - 1 do
      let v = Char.chr ((base * n) + i) in
      Aes_bs.set_block b i (String.make 16 v) 0
    done;
    Aes_bs.encrypt_blocks_into k b;
    for i = 0 to cnt - 1 do
      let v = Char.chr ((base * n) + i) in
      Alcotest.(check string)
        (Printf.sprintf "byte %d" ((base * n) + i))
        (Aes.encrypt_block sk (String.make 16 v))
        (Aes_bs.get_block b i)
    done
  done

let test_salt_and_token_staging () =
  let key = hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let k = Aes_bs.expand key in
  let sk = Aes.expand_key key in
  let b = Aes_bs.create_batch () in
  (* salt blocks: 0^8 || BE64(salt), cipher40 = encrypt_u64 mod 2^40 *)
  let salts = [| 0; 1; 2; 0x7fff; 0xdeadbeef; (1 lsl 40) - 1; 1 lsl 61 |] in
  Array.iteri (fun i s -> Aes_bs.set_salt_block b i s) salts;
  (* token blocks: zero-padded short tokens *)
  let tok = "malware8" in
  Aes_bs.set_token_block b (Array.length salts) tok ~off:0 ~len:8;
  Aes_bs.set_token_block b (Array.length salts + 1) tok ~off:3 ~len:4;
  Aes_bs.encrypt_blocks_into k b;
  Array.iteri
    (fun i s ->
      let expect = Aes.encrypt_u64 sk s land ((1 lsl 40) - 1) in
      Alcotest.(check int)
        (Printf.sprintf "cipher40 salt=%d" s)
        expect
        (Aes_bs.get_cipher40 b i))
    salts;
  let pad s = s ^ String.make (16 - String.length s) '\000' in
  Alcotest.(check string) "token block full" (Aes.encrypt_block sk (pad tok))
    (Aes_bs.get_block b (Array.length salts));
  Alcotest.(check string) "token block sub"
    (Aes.encrypt_block sk (pad (String.sub tok 3 4)))
    (Aes_bs.get_block b (Array.length salts + 1))

let test_get_block_into () =
  let k = Aes_bs.expand fips_key in
  let b = Aes_bs.create_batch () in
  Aes_bs.set_block b 0 fips_pt 0;
  Aes_bs.encrypt_blocks_into k b;
  let dst = Bytes.make 20 'x' in
  Aes_bs.get_block_into b 0 ~dst ~dst_off:2;
  Alcotest.(check string) "into" fips_ct (Bytes.sub_string dst 2 16);
  Alcotest.(check char) "prefix untouched" 'x' (Bytes.get dst 0);
  Alcotest.(check char) "suffix untouched" 'x' (Bytes.get dst 19)

let test_bounds () =
  let b = Aes_bs.create_batch () in
  let bad f = Alcotest.check_raises "invalid" (Invalid_argument "Aes_bs: lane index out of range") f in
  bad (fun () -> Aes_bs.set_block b Aes_bs.width fips_pt 0);
  bad (fun () -> Aes_bs.set_salt_block b (-1) 0);
  bad (fun () -> Aes_bs.get_cipher40 b Aes_bs.width |> ignore)

(* qcheck: random key, random occupancy, random blocks — byte-for-byte
   vs the scalar T-table path (which test_crypto pins to the reference
   byte-wise implementation, closing the chain). *)
let qcheck_differential =
  QCheck.Test.make ~count:60 ~name:"aes_bs differential vs scalar"
    QCheck.(
      triple (string_of_size (QCheck.Gen.return 16))
        (int_range 1 63)
        (string_of_size (QCheck.Gen.return (16 * 63))))
    (fun (key, n, blob) ->
      let k = Aes_bs.expand key in
      let sk = Aes.expand_key key in
      let b = Aes_bs.create_batch () in
      for i = 0 to n - 1 do
        Aes_bs.set_block b i blob (i * 16)
      done;
      Aes_bs.encrypt_blocks_into k b;
      let ok = ref true in
      for i = 0 to n - 1 do
        let expect = Aes.encrypt_block sk (String.sub blob (i * 16) 16) in
        if not (String.equal expect (Aes_bs.get_block b i)) then ok := false
      done;
      !ok)

(* qcheck: batch reuse — a dirty batch refilled at a smaller occupancy
   must not leak stale lanes into the fresh blocks. *)
let qcheck_reuse =
  QCheck.Test.make ~count:40 ~name:"aes_bs batch reuse is stateless"
    QCheck.(
      pair
        (string_of_size (QCheck.Gen.return 16))
        (pair (int_range 1 63) (int_range 1 63)))
    (fun (key, (n1, n2)) ->
      let k = Aes_bs.expand key in
      let sk = Aes.expand_key key in
      let b = Aes_bs.create_batch () in
      for i = 0 to n1 - 1 do
        Aes_bs.set_block b i (String.make 16 (Char.chr (i land 0xff))) 0
      done;
      Aes_bs.encrypt_blocks_into k b;
      Aes_bs.reset b;
      let blocks =
        Array.init n2 (fun i -> String.init 16 (fun j -> Char.chr ((i + (j * 13)) land 0xff)))
      in
      Array.iteri (fun i s -> Aes_bs.set_block b i s 0) blocks;
      Aes_bs.encrypt_blocks_into k b;
      Array.for_all
        (fun i ->
          String.equal (Aes.encrypt_block sk blocks.(i)) (Aes_bs.get_block b i))
        (Array.init n2 (fun i -> i)))

let () =
  Alcotest.run "aes_bs"
    [
      ( "vectors",
        [
          Alcotest.test_case "FIPS-197 C.1 at occupancy 1..width" `Quick
            test_fips_all_occupancies;
          Alcotest.test_case "FIPS-197 appendix B" `Quick test_fips_b;
          Alcotest.test_case "63 distinct lanes" `Quick test_distinct_lanes;
          Alcotest.test_case "all 256 byte values through the S-box circuit"
            `Quick test_all_byte_values;
        ] );
      ( "staging",
        [
          Alcotest.test_case "salt + token block helpers" `Quick
            test_salt_and_token_staging;
          Alcotest.test_case "get_block_into" `Quick test_get_block_into;
          Alcotest.test_case "bounds checks" `Quick test_bounds;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest qcheck_differential;
          QCheck_alcotest.to_alcotest qcheck_reuse;
        ] );
    ]
