open Bbx_compress.Compress

let html_sample =
  let item i =
    Printf.sprintf
      "<div class=\"article\"><h2>Headline %d</h2><p>Lorem ipsum dolor sit amet, \
       consectetur adipiscing elit, sed do eiusmod tempor incididunt.</p></div>\n" i
  in
  "<!DOCTYPE html><html><head><title>News</title></head><body>"
  ^ String.concat "" (List.init 60 item)
  ^ "</body></html>"

let unit_tests =
  [ Alcotest.test_case "round trip on text" `Quick (fun () ->
        Alcotest.(check string) "same" html_sample (decompress (compress html_sample)));
    Alcotest.test_case "round trip on empty and tiny" `Quick (fun () ->
        List.iter
          (fun s -> Alcotest.(check string) "same" s (decompress (compress s)))
          [ ""; "a"; "ab"; "aaa"; "abcdefgh" ]);
    Alcotest.test_case "round trip on binary" `Quick (fun () ->
        let s = String.init 4096 (fun i -> Char.chr ((i * 37 + (i lsr 5)) land 0xff)) in
        Alcotest.(check string) "same" s (decompress (compress s)));
    Alcotest.test_case "html compresses in gzip's band" `Quick (fun () ->
        let r = ratio html_sample in
        Alcotest.(check bool) (Printf.sprintf "ratio %.2f in [2.5, 30]" r) true
          (r >= 2.5 && r <= 30.0));
    Alcotest.test_case "repetitive data compresses hard" `Quick (fun () ->
        let r = ratio (String.make 100_000 'x') in
        Alcotest.(check bool) (Printf.sprintf "ratio %.0f > 50" r) true (r > 50.0));
    Alcotest.test_case "random data falls back to stored" `Quick (fun () ->
        let drbg = Bbx_crypto.Drbg.create "incompressible" in
        let s = Bbx_crypto.Drbg.bytes drbg 10_000 in
        Alcotest.(check bool) "no blowup" true (compressed_size s <= String.length s + 1);
        Alcotest.(check string) "still round trips" s (decompress (compress s)));
    Alcotest.test_case "corrupt input rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (match decompress "\002garbage" with
           | exception Invalid_argument _ -> true
           | _ -> false);
        Alcotest.(check bool) "truncated" true
          (match decompress "\001abc" with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

let property_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"round trip on random strings" ~count:300 QCheck.string
         (fun s -> decompress (compress s) = s));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"round trip on structured strings" ~count:100
         QCheck.(list (oneofl [ "<div>"; "</div>"; "class="; "hello "; "x" ]))
         (fun parts ->
            let s = String.concat "" parts in
            decompress (compress s) = s));
  ]

let () = Alcotest.run "compress" [ ("unit", unit_tests); ("props", property_tests) ]
