open Bbx_crypto
open Bbx_ot

let base_tests =
  [ Alcotest.test_case "receiver gets chosen message" `Quick (fun () ->
        let sd = Drbg.create "ot-s" and rd = Drbg.create "ot-r" in
        let params = Base.setup sd in
        List.iter
          (fun b ->
             let st, pk0 = Base.receiver_choose rd params b in
             let resp = Base.sender_respond sd params ~pk0 ~m0:"message zero 0.." ~m1:"message one 1..." in
             Alcotest.(check string) "chosen"
               (if b then "message one 1..." else "message zero 0..")
               (Base.receiver_recover st resp))
          [ false; true ]);
    Alcotest.test_case "response reveals neither message in the clear" `Quick (fun () ->
        let sd = Drbg.create "ot-s2" and rd = Drbg.create "ot-r2" in
        let params = Base.setup sd in
        let _, pk0 = Base.receiver_choose rd params false in
        let m0 = "aaaaaaaaaaaaaaaa" and m1 = "bbbbbbbbbbbbbbbb" in
        let resp = Base.sender_respond sd params ~pk0 ~m0 ~m1 in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "m0 masked" false (contains resp m0);
        Alcotest.(check bool) "m1 masked" false (contains resp m1));
    Alcotest.test_case "length mismatch rejected" `Quick (fun () ->
        let sd = Drbg.create "ot-s3" and rd = Drbg.create "ot-r3" in
        let params = Base.setup sd in
        let _, pk0 = Base.receiver_choose rd params false in
        Alcotest.check_raises "raises"
          (Invalid_argument "Base.sender_respond: message length mismatch")
          (fun () -> ignore (Base.sender_respond sd params ~pk0 ~m0:"a" ~m1:"bb")));
    Alcotest.test_case "params serialisation" `Quick (fun () ->
        let sd = Drbg.create "ot-s4" in
        let params = Base.setup sd in
        let s = Base.params_to_string params in
        Alcotest.(check int) "32 bytes" 32 (String.length s);
        Alcotest.(check string) "round trip" s
          (Base.params_to_string (Base.params_of_string s)));
  ]

let ext_tests =
  [ Alcotest.test_case "extension transfers correctly (n=300)" `Quick (fun () ->
        let n = 300 in
        let drbg = Drbg.create "ext-msgs" in
        let messages =
          Array.init n (fun _ -> (Drbg.bytes drbg 16, Drbg.bytes drbg 16))
        in
        let choices = Array.init n (fun i -> i mod 3 = 0) in
        let out, transcript_bytes =
          Extension.run
            ~sender_drbg:(Drbg.create "ext-s") ~receiver_drbg:(Drbg.create "ext-r")
            ~messages ~choices
        in
        Array.iteri
          (fun j got ->
             let m0, m1 = messages.(j) in
             Alcotest.(check string) (Printf.sprintf "ot %d" j)
               (if choices.(j) then m1 else m0) got)
          out;
        Alcotest.(check bool) "transcript non-trivial" true (transcript_bytes > 0));
    Alcotest.test_case "extension with odd n and all-same choices" `Quick (fun () ->
        let n = 13 in
        let messages = Array.init n (fun i -> (Printf.sprintf "zero%012d" i, Printf.sprintf "one.%012d" i)) in
        List.iter
          (fun bit ->
             let out, _ =
               Extension.run
                 ~sender_drbg:(Drbg.create "s") ~receiver_drbg:(Drbg.create "r")
                 ~messages ~choices:(Array.make n bit)
             in
             Array.iteri
               (fun j got ->
                  let m0, m1 = messages.(j) in
                  Alcotest.(check string) "msg" (if bit then m1 else m0) got)
               out)
          [ false; true ]);
    Alcotest.test_case "amortisation: base OT count independent of n" `Quick (fun () ->
        (* Transcript size grows sub-linearly in n for 16-byte messages:
           base-OT cost (128 public-key OTs) is paid once. *)
        let mk n =
          let messages = Array.init n (fun _ -> (String.make 16 'a', String.make 16 'b')) in
          let _, bytes =
            Extension.run ~sender_drbg:(Drbg.create "s") ~receiver_drbg:(Drbg.create "r")
              ~messages ~choices:(Array.make n false)
          in
          bytes
        in
        let b100 = mk 100 and b1000 = mk 1000 in
        Alcotest.(check bool) "10x messages < 10x bytes" true
          (float_of_int b1000 < 9.0 *. float_of_int b100));
  ]

let () = Alcotest.run "ot" [ ("base", base_tests); ("extension", ext_tests) ]
