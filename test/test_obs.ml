(* bbx_obs unit tests: registration semantics, the enabled switch, bucket
   placement, span accumulation and both exposition formats. *)

module Obs = Bbx_obs.Obs

(* Each test names its metrics uniquely (the registry is process-wide),
   and re-enables instrumentation in case an earlier test disabled it. *)
let fresh =
  let n = ref 0 in
  fun base ->
    incr n;
    Printf.sprintf "test_%s_%d" base !n

let counter_tests =
  [ Alcotest.test_case "incr and add accumulate" `Quick (fun () ->
        Obs.set_enabled true;
        let c = Obs.counter (fresh "counter") in
        Obs.incr c;
        Obs.add c 41;
        Alcotest.(check int) "42" 42 (Obs.counter_value c));
    Alcotest.test_case "registration is idempotent by name" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "counter" in
        let a = Obs.counter name in
        let b = Obs.counter name in
        Obs.incr a;
        Obs.incr b;
        Alcotest.(check int) "same slot" 2 (Obs.counter_value a));
    Alcotest.test_case "name clash across types rejected" `Quick (fun () ->
        let name = fresh "clash" in
        let _ = Obs.counter name in
        Alcotest.(check bool) "raises" true
          (match Obs.gauge name with exception Invalid_argument _ -> true | _ -> false));
    Alcotest.test_case "disabled: bumps are dropped" `Quick (fun () ->
        let c = Obs.counter (fresh "counter") in
        Obs.set_enabled false;
        Obs.incr c;
        Obs.add c 10;
        Obs.set_enabled true;
        Alcotest.(check int) "still 0" 0 (Obs.counter_value c);
        Obs.incr c;
        Alcotest.(check int) "counts again" 1 (Obs.counter_value c));
    Alcotest.test_case "reset zeroes but keeps handles live" `Quick (fun () ->
        Obs.set_enabled true;
        let c = Obs.counter (fresh "counter") in
        Obs.add c 7;
        Obs.reset ();
        Alcotest.(check int) "zeroed" 0 (Obs.counter_value c);
        Obs.incr c;
        Alcotest.(check int) "live" 1 (Obs.counter_value c));
  ]

let gauge_tests =
  [ Alcotest.test_case "set overwrites" `Quick (fun () ->
        Obs.set_enabled true;
        let g = Obs.gauge (fresh "gauge") in
        Obs.set_gauge g 5;
        Obs.set_gauge g 3;
        Alcotest.(check int) "3" 3 (Obs.gauge_value g));
    Alcotest.test_case "add_gauge accumulates deltas" `Quick (fun () ->
        Obs.set_enabled true;
        let g = Obs.gauge (fresh "gauge") in
        Obs.add_gauge g 5;
        Obs.add_gauge g (-2);
        Alcotest.(check int) "3" 3 (Obs.gauge_value g));
  ]

(* Metric bumps must be domain-safe: concurrent increments from several
   domains may not lose updates (middlebox shards on separate domains
   share these process-wide slots). *)
let concurrency_tests =
  [ Alcotest.test_case "bumps from 4 domains lose nothing" `Quick (fun () ->
        Obs.set_enabled true;
        let c = Obs.counter (fresh "mt_counter") in
        let g = Obs.gauge (fresh "mt_gauge") in
        let h = Obs.histogram (fresh "mt_hist") ~buckets:[| 10; 100 |] in
        let n_domains = 4 and iters = 50_000 in
        let work () =
          for i = 1 to iters do
            Obs.incr c;
            Obs.add_gauge g 1;
            Obs.add_gauge g (-1);
            Obs.observe h (i land 127)
          done
        in
        let ds = List.init n_domains (fun _ -> Domain.spawn work) in
        List.iter Domain.join ds;
        Alcotest.(check int) "counter exact" (n_domains * iters) (Obs.counter_value c);
        Alcotest.(check int) "gauge deltas cancel" 0 (Obs.gauge_value g);
        Alcotest.(check int) "histogram count exact" (n_domains * iters)
          (Obs.histogram_count h));
  ]

let histogram_tests =
  [ Alcotest.test_case "values land in the right buckets" `Quick (fun () ->
        Obs.set_enabled true;
        let h = Obs.histogram (fresh "hist") ~buckets:[| 10; 100 |] in
        List.iter (Obs.observe h) [ 1; 10; 11; 1000 ];
        Alcotest.(check int) "count" 4 (Obs.histogram_count h);
        Alcotest.(check int) "sum" 1022 (Obs.histogram_sum h));
    Alcotest.test_case "non-ascending buckets rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (match Obs.histogram (fresh "hist") ~buckets:[| 5; 5 |] with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

let span_tests =
  [ Alcotest.test_case "span accumulates time and count" `Quick (fun () ->
        Obs.set_enabled true;
        let s = Obs.span (fresh "span") in
        for _ = 1 to 3 do
          Obs.span_enter s;
          ignore (Sys.opaque_identity (String.make 1024 'x') : string);
          Obs.span_exit s
        done;
        Alcotest.(check int) "3 entries" 3 (Obs.span_count s);
        Alcotest.(check bool) "time >= 0" true (Obs.span_seconds s >= 0.0);
        Alcotest.(check bool) "alloc > 0" true (Obs.span_alloc_bytes s > 0.0));
    Alcotest.test_case "exit without enter is a no-op" `Quick (fun () ->
        Obs.set_enabled true;
        let s = Obs.span (fresh "span") in
        Obs.span_exit s;
        Alcotest.(check int) "0" 0 (Obs.span_count s));
    Alcotest.test_case "time restores on raise" `Quick (fun () ->
        Obs.set_enabled true;
        let s = Obs.span (fresh "span") in
        (try Obs.time s (fun () -> failwith "boom") with Failure _ -> ());
        Alcotest.(check int) "recorded" 1 (Obs.span_count s));
    Alcotest.test_case "cross-domain enter is rejected, not corrupting" `Quick (fun () ->
        Obs.set_enabled true;
        let s = Obs.span (fresh "guarded") in
        let conflicts () =
          Obs.counter_value (Obs.counter "bbx_obs_span_conflicts_total")
        in
        let before = conflicts () in
        Obs.span_enter s;
        (* another domain fights over the open span: its enter must lose
           the owner CAS and its exit must be a no-op *)
        let d =
          Domain.spawn (fun () ->
              Obs.span_enter s;
              Obs.span_exit s)
        in
        Domain.join d;
        Obs.span_exit s;
        Alcotest.(check int) "exactly the owner's interval" 1 (Obs.span_count s);
        Alcotest.(check bool) "conflict counted" true (conflicts () > before);
        Alcotest.(check bool) "time sane" true
          (Obs.span_seconds s >= 0.0 && Obs.span_seconds s < 60.0));
    Alcotest.test_case "4 domains hammering one span never corrupt it" `Quick (fun () ->
        Obs.set_enabled true;
        let s = Obs.span (fresh "hammer") in
        let iters = 10_000 in
        let ds =
          List.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to iters do
                    Obs.span_enter s;
                    Obs.span_exit s
                  done))
        in
        List.iter Domain.join ds;
        Alcotest.(check bool) "count within attempts" true
          (Obs.span_count s > 0 && Obs.span_count s <= 4 * iters);
        Alcotest.(check bool) "seconds finite and sane" true
          (Float.is_finite (Obs.span_seconds s)
           && Obs.span_seconds s >= 0.0
           && Obs.span_seconds s < 60.0));
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let exposition_tests =
  [ Alcotest.test_case "prometheus exposition carries values and types" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "prom" in
        let c = Obs.counter name in
        Obs.add c 17;
        let out = Obs.render_prometheus () in
        Alcotest.(check bool) "TYPE line" true (contains out ("# TYPE " ^ name ^ " counter"));
        Alcotest.(check bool) "value line" true (contains out (name ^ " 17")));
    Alcotest.test_case "labelled names render with label syntax" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "labelled" in
        let c = Obs.counter (Printf.sprintf {|%s{kind="x"}|} name) in
        Obs.incr c;
        let out = Obs.render_prometheus () in
        Alcotest.(check bool) "TYPE on base name" true
          (contains out ("# TYPE " ^ name ^ " counter"));
        Alcotest.(check bool) "labels kept" true
          (contains out (Printf.sprintf {|%s{kind="x"} 1|} name)));
    Alcotest.test_case "histogram renders cumulative buckets" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "promhist" in
        let h = Obs.histogram name ~buckets:[| 10; 100 |] in
        List.iter (Obs.observe h) [ 1; 10; 11; 1000 ];
        let out = Obs.render_prometheus () in
        Alcotest.(check bool) "le=10 cum 2" true (contains out (name ^ {|_bucket{le="10"} 2|}));
        Alcotest.(check bool) "le=100 cum 3" true (contains out (name ^ {|_bucket{le="100"} 3|}));
        Alcotest.(check bool) "+Inf cum 4" true (contains out (name ^ {|_bucket{le="+Inf"} 4|}));
        Alcotest.(check bool) "sum" true (contains out (name ^ "_sum 1022"));
        Alcotest.(check bool) "count" true (contains out (name ^ "_count 4")));
    Alcotest.test_case "jsonl has one parseable-looking line per metric" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "jsonl" in
        let c = Obs.counter name in
        Obs.add c 3;
        let lines = String.split_on_char '\n' (Obs.dump_jsonl ()) in
        let line = List.find (fun l -> contains l name) lines in
        Alcotest.(check bool) "object shape" true
          (contains line (Printf.sprintf {|{"metric":"%s","type":"counter","value":3}|} name)));
    Alcotest.test_case "save picks format from extension" `Quick (fun () ->
        Obs.set_enabled true;
        let c = Obs.counter (fresh "save") in
        Obs.incr c;
        let json = Filename.temp_file "obs" ".json" in
        let prom = Filename.temp_file "obs" ".prom" in
        Obs.save ~path:json;
        Obs.save ~path:prom;
        let read p = let ic = open_in p in let s = really_input_string ic (in_channel_length ic) in close_in ic; s in
        Alcotest.(check bool) "jsonl body" true (contains (read json) {|"type":"counter"|});
        Alcotest.(check bool) "prom body" true (contains (read prom) "# TYPE");
        Sys.remove json; Sys.remove prom);
  ]

(* ---------- qcheck: the expositions stay machine-parseable ----------

   Random batches of metrics (every kind, occasionally labelled) land in
   the registry; afterwards [render_prometheus] must satisfy the format's
   structural invariants and every [dump_jsonl] line must be a valid JSON
   object.  The registry is process-wide and append-only across qcheck
   iterations — which is the point: validity must hold for the whole
   accumulated registry, not a curated one. *)

(* minimal JSON validity checker: objects, arrays, strings (with the
   escapes the emitter produces), numbers, true/false/null *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t') -> incr pos; skip_ws ()
    | _ -> ()
  in
  let lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then (pos := !pos + l; true)
    else false
  in
  let string_body () =
    (* opening quote consumed *)
    let rec go () =
      match peek () with
      | None -> false
      | Some '"' -> incr pos; true
      | Some '\\' ->
        incr pos;
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> incr pos; go ()
         | Some 'u' ->
           incr pos;
           let ok = ref true in
           for _ = 1 to 4 do
             (match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> incr pos
              | _ -> ok := false)
           done;
           !ok && go ()
         | _ -> false)
      | Some c when Char.code c < 0x20 -> false
      | Some _ -> incr pos; go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d = ref 0 in
      let rec go () =
        match peek () with
        | Some '0' .. '9' -> incr d; incr pos; go ()
        | _ -> ()
      in
      go (); !d > 0
    in
    if not (digits ()) then false
    else begin
      (if peek () = Some '.' then begin incr pos; ignore (digits () : bool) end);
      (match peek () with
       | Some ('e' | 'E') ->
         incr pos;
         (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
         ignore (digits () : bool)
       | _ -> ());
      !pos > start
    end
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> incr pos; members true
    | Some '[' -> incr pos; elements true
    | Some '"' -> incr pos; string_body ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | _ -> false
  and members first =
    skip_ws ();
    match peek () with
    | Some '}' -> incr pos; true
    | _ ->
      (if first then true
       else if peek () = Some ',' then (incr pos; skip_ws (); true)
       else false)
      && peek () = Some '"'
      && (incr pos; string_body ())
      && (skip_ws ();
          peek () = Some ':' && (incr pos; value () && members false))
  and elements first =
    skip_ws ();
    match peek () with
    | Some ']' -> incr pos; true
    | _ ->
      (if first then true
       else if peek () = Some ',' then (incr pos; true)
       else false)
      && value ()
      && elements false
  in
  value () && (skip_ws (); !pos = n)

(* structural invariants of the Prometheus text format over the whole
   exposition: line shapes, non-decreasing TYPE bases, and histogram
   family consistency for unlabelled histograms *)
let validate_prometheus out =
  let lines = List.filter (( <> ) "") (String.split_on_char '\n' out) in
  let sample_re line =
    (* name[{labels}] SP value *)
    match String.rindex_opt line ' ' with
    | None -> None
    | Some sp ->
      let name = String.sub line 0 sp in
      let v = String.sub line (sp + 1) (String.length line - sp - 1) in
      (match float_of_string_opt v with
       | Some f -> Some (name, f)
       | None -> None)
  in
  let type_bases = ref [] in
  let hist_bases = ref [] in
  let samples = ref [] in
  let shape_ok =
    List.for_all
      (fun line ->
        if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.split_on_char ' ' line with
          | [ "#"; "TYPE"; base; kind ] ->
            type_bases := base :: !type_bases;
            if kind = "histogram" then hist_bases := base :: !hist_bases;
            List.mem kind [ "counter"; "gauge"; "histogram" ]
          | _ -> false
        end
        else
          match sample_re line with
          | Some (name, v) ->
            samples := (name, v) :: !samples;
            true
          | None -> false)
      lines
  in
  let bases = List.rev !type_bases in
  (* span metrics derive three families (_seconds_sum, _alloc_bytes_sum,
     _count) emitted at the parent metric's position in the sorted walk,
     so sortedness holds for the normalized (suffix-stripped) bases *)
  let normalize b =
    List.fold_left
      (fun b suf -> if Filename.check_suffix b suf then Filename.chop_suffix b suf else b)
      b
      [ "_seconds_sum"; "_alloc_bytes_sum"; "_count" ]
  in
  let normalized = List.map normalize bases in
  let sorted_ok = List.sort compare normalized = normalized in
  let samples = List.rev !samples in
  let find name = List.assoc_opt name samples in
  let hist_ok =
    List.for_all
      (fun base ->
        (* only unlabelled histograms are checked in depth *)
        let prefix = base ^ "_bucket{le=\"" in
        let buckets =
          List.filter_map
            (fun (name, v) ->
              if
                String.length name > String.length prefix
                && String.sub name 0 (String.length prefix) = prefix
              then
                let le =
                  String.sub name (String.length prefix)
                    (String.length name - String.length prefix - 2)
                in
                Some (le, v)
              else None)
            samples
        in
        match buckets with
        | [] -> true (* labelled family; shape already checked *)
        | _ ->
          let les = List.map fst buckets in
          let counts = List.map snd buckets in
          let finite, inf = List.partition (( <> ) "+Inf") les in
          let le_values = List.filter_map float_of_string_opt finite in
          let ascending l = List.sort compare l = l && List.length (List.sort_uniq compare l) = List.length l in
          inf = [ "+Inf" ]
          && List.length le_values = List.length finite
          && ascending le_values
          && List.sort compare counts = counts  (* cumulative *)
          && (match (find (base ^ "_count"), List.rev counts) with
              | Some c, total :: _ -> c = total
              | _ -> false)
          && find (base ^ "_sum") <> None)
      (List.rev !hist_bases)
  in
  shape_ok && sorted_ok && hist_ok

let gen_spec =
  QCheck.Gen.(
    oneof
      [ map (fun v -> `Counter v) (int_bound 1_000_000);
        map (fun v -> `Labelled v) (int_bound 1000);
        map (fun v -> `Gauge (v - 500)) (int_bound 1000);
        map (fun vs -> `Hist vs) (list_size (int_bound 20) (int_bound 100_000));
        map (fun k -> `Span k) (int_bound 3) ])

let apply_spec spec =
  match spec with
  | `Counter v -> Obs.add (Obs.counter (fresh "qc_counter")) v
  | `Labelled v ->
    Obs.add (Obs.counter (Printf.sprintf {|%s{kind="q"}|} (fresh "qc_lab"))) v
  | `Gauge v -> Obs.set_gauge (Obs.gauge (fresh "qc_gauge")) v
  | `Hist vs ->
    let h = Obs.histogram (fresh "qc_hist") ~buckets:[| 10; 100; 1000 |] in
    List.iter (Obs.observe h) vs
  | `Span k ->
    let s = Obs.span (fresh "qc_span") in
    for _ = 1 to k do
      Obs.span_enter s;
      Obs.span_exit s
    done

let qcheck_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:50
         ~name:"prometheus exposition stays structurally valid"
         QCheck.(make Gen.(list_size (int_bound 6) gen_spec))
         (fun specs ->
           Obs.set_enabled true;
           List.iter apply_spec specs;
           validate_prometheus (Obs.render_prometheus ())));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:50 ~name:"every jsonl line is a valid JSON object"
         QCheck.(make Gen.(list_size (int_bound 6) gen_spec))
         (fun specs ->
           Obs.set_enabled true;
           List.iter apply_spec specs;
           String.split_on_char '\n' (Obs.dump_jsonl ())
           |> List.for_all (fun line -> line = "" || json_valid line))) ]

let () =
  Alcotest.run "obs"
    [ ("counters", counter_tests);
      ("gauges", gauge_tests);
      ("concurrency", concurrency_tests);
      ("histograms", histogram_tests);
      ("spans", span_tests);
      ("exposition", exposition_tests);
      ("qcheck", qcheck_tests) ]
