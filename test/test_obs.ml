(* bbx_obs unit tests: registration semantics, the enabled switch, bucket
   placement, span accumulation and both exposition formats. *)

module Obs = Bbx_obs.Obs

(* Each test names its metrics uniquely (the registry is process-wide),
   and re-enables instrumentation in case an earlier test disabled it. *)
let fresh =
  let n = ref 0 in
  fun base ->
    incr n;
    Printf.sprintf "test_%s_%d" base !n

let counter_tests =
  [ Alcotest.test_case "incr and add accumulate" `Quick (fun () ->
        Obs.set_enabled true;
        let c = Obs.counter (fresh "counter") in
        Obs.incr c;
        Obs.add c 41;
        Alcotest.(check int) "42" 42 (Obs.counter_value c));
    Alcotest.test_case "registration is idempotent by name" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "counter" in
        let a = Obs.counter name in
        let b = Obs.counter name in
        Obs.incr a;
        Obs.incr b;
        Alcotest.(check int) "same slot" 2 (Obs.counter_value a));
    Alcotest.test_case "name clash across types rejected" `Quick (fun () ->
        let name = fresh "clash" in
        let _ = Obs.counter name in
        Alcotest.(check bool) "raises" true
          (match Obs.gauge name with exception Invalid_argument _ -> true | _ -> false));
    Alcotest.test_case "disabled: bumps are dropped" `Quick (fun () ->
        let c = Obs.counter (fresh "counter") in
        Obs.set_enabled false;
        Obs.incr c;
        Obs.add c 10;
        Obs.set_enabled true;
        Alcotest.(check int) "still 0" 0 (Obs.counter_value c);
        Obs.incr c;
        Alcotest.(check int) "counts again" 1 (Obs.counter_value c));
    Alcotest.test_case "reset zeroes but keeps handles live" `Quick (fun () ->
        Obs.set_enabled true;
        let c = Obs.counter (fresh "counter") in
        Obs.add c 7;
        Obs.reset ();
        Alcotest.(check int) "zeroed" 0 (Obs.counter_value c);
        Obs.incr c;
        Alcotest.(check int) "live" 1 (Obs.counter_value c));
  ]

let gauge_tests =
  [ Alcotest.test_case "set overwrites" `Quick (fun () ->
        Obs.set_enabled true;
        let g = Obs.gauge (fresh "gauge") in
        Obs.set_gauge g 5;
        Obs.set_gauge g 3;
        Alcotest.(check int) "3" 3 (Obs.gauge_value g));
    Alcotest.test_case "add_gauge accumulates deltas" `Quick (fun () ->
        Obs.set_enabled true;
        let g = Obs.gauge (fresh "gauge") in
        Obs.add_gauge g 5;
        Obs.add_gauge g (-2);
        Alcotest.(check int) "3" 3 (Obs.gauge_value g));
  ]

(* Metric bumps must be domain-safe: concurrent increments from several
   domains may not lose updates (middlebox shards on separate domains
   share these process-wide slots). *)
let concurrency_tests =
  [ Alcotest.test_case "bumps from 4 domains lose nothing" `Quick (fun () ->
        Obs.set_enabled true;
        let c = Obs.counter (fresh "mt_counter") in
        let g = Obs.gauge (fresh "mt_gauge") in
        let h = Obs.histogram (fresh "mt_hist") ~buckets:[| 10; 100 |] in
        let n_domains = 4 and iters = 50_000 in
        let work () =
          for i = 1 to iters do
            Obs.incr c;
            Obs.add_gauge g 1;
            Obs.add_gauge g (-1);
            Obs.observe h (i land 127)
          done
        in
        let ds = List.init n_domains (fun _ -> Domain.spawn work) in
        List.iter Domain.join ds;
        Alcotest.(check int) "counter exact" (n_domains * iters) (Obs.counter_value c);
        Alcotest.(check int) "gauge deltas cancel" 0 (Obs.gauge_value g);
        Alcotest.(check int) "histogram count exact" (n_domains * iters)
          (Obs.histogram_count h));
  ]

let histogram_tests =
  [ Alcotest.test_case "values land in the right buckets" `Quick (fun () ->
        Obs.set_enabled true;
        let h = Obs.histogram (fresh "hist") ~buckets:[| 10; 100 |] in
        List.iter (Obs.observe h) [ 1; 10; 11; 1000 ];
        Alcotest.(check int) "count" 4 (Obs.histogram_count h);
        Alcotest.(check int) "sum" 1022 (Obs.histogram_sum h));
    Alcotest.test_case "non-ascending buckets rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (match Obs.histogram (fresh "hist") ~buckets:[| 5; 5 |] with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

let span_tests =
  [ Alcotest.test_case "span accumulates time and count" `Quick (fun () ->
        Obs.set_enabled true;
        let s = Obs.span (fresh "span") in
        for _ = 1 to 3 do
          Obs.span_enter s;
          ignore (Sys.opaque_identity (String.make 1024 'x') : string);
          Obs.span_exit s
        done;
        Alcotest.(check int) "3 entries" 3 (Obs.span_count s);
        Alcotest.(check bool) "time >= 0" true (Obs.span_seconds s >= 0.0);
        Alcotest.(check bool) "alloc > 0" true (Obs.span_alloc_bytes s > 0.0));
    Alcotest.test_case "exit without enter is a no-op" `Quick (fun () ->
        Obs.set_enabled true;
        let s = Obs.span (fresh "span") in
        Obs.span_exit s;
        Alcotest.(check int) "0" 0 (Obs.span_count s));
    Alcotest.test_case "time restores on raise" `Quick (fun () ->
        Obs.set_enabled true;
        let s = Obs.span (fresh "span") in
        (try Obs.time s (fun () -> failwith "boom") with Failure _ -> ());
        Alcotest.(check int) "recorded" 1 (Obs.span_count s));
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let exposition_tests =
  [ Alcotest.test_case "prometheus exposition carries values and types" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "prom" in
        let c = Obs.counter name in
        Obs.add c 17;
        let out = Obs.render_prometheus () in
        Alcotest.(check bool) "TYPE line" true (contains out ("# TYPE " ^ name ^ " counter"));
        Alcotest.(check bool) "value line" true (contains out (name ^ " 17")));
    Alcotest.test_case "labelled names render with label syntax" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "labelled" in
        let c = Obs.counter (Printf.sprintf {|%s{kind="x"}|} name) in
        Obs.incr c;
        let out = Obs.render_prometheus () in
        Alcotest.(check bool) "TYPE on base name" true
          (contains out ("# TYPE " ^ name ^ " counter"));
        Alcotest.(check bool) "labels kept" true
          (contains out (Printf.sprintf {|%s{kind="x"} 1|} name)));
    Alcotest.test_case "histogram renders cumulative buckets" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "promhist" in
        let h = Obs.histogram name ~buckets:[| 10; 100 |] in
        List.iter (Obs.observe h) [ 1; 10; 11; 1000 ];
        let out = Obs.render_prometheus () in
        Alcotest.(check bool) "le=10 cum 2" true (contains out (name ^ {|_bucket{le="10"} 2|}));
        Alcotest.(check bool) "le=100 cum 3" true (contains out (name ^ {|_bucket{le="100"} 3|}));
        Alcotest.(check bool) "+Inf cum 4" true (contains out (name ^ {|_bucket{le="+Inf"} 4|}));
        Alcotest.(check bool) "sum" true (contains out (name ^ "_sum 1022"));
        Alcotest.(check bool) "count" true (contains out (name ^ "_count 4")));
    Alcotest.test_case "jsonl has one parseable-looking line per metric" `Quick (fun () ->
        Obs.set_enabled true;
        let name = fresh "jsonl" in
        let c = Obs.counter name in
        Obs.add c 3;
        let lines = String.split_on_char '\n' (Obs.dump_jsonl ()) in
        let line = List.find (fun l -> contains l name) lines in
        Alcotest.(check bool) "object shape" true
          (contains line (Printf.sprintf {|{"metric":"%s","type":"counter","value":3}|} name)));
    Alcotest.test_case "save picks format from extension" `Quick (fun () ->
        Obs.set_enabled true;
        let c = Obs.counter (fresh "save") in
        Obs.incr c;
        let json = Filename.temp_file "obs" ".json" in
        let prom = Filename.temp_file "obs" ".prom" in
        Obs.save ~path:json;
        Obs.save ~path:prom;
        let read p = let ic = open_in p in let s = really_input_string ic (in_channel_length ic) in close_in ic; s in
        Alcotest.(check bool) "jsonl body" true (contains (read json) {|"type":"counter"|});
        Alcotest.(check bool) "prom body" true (contains (read prom) "# TYPE");
        Sys.remove json; Sys.remove prom);
  ]

let () =
  Alcotest.run "obs"
    [ ("counters", counter_tests);
      ("gauges", gauge_tests);
      ("concurrency", concurrency_tests);
      ("histograms", histogram_tests);
      ("spans", span_tests);
      ("exposition", exposition_tests) ]
