open Bbx_circuit
open Bbx_crypto

let bits_of_int n v = Array.init n (fun i -> (v lsr i) land 1 = 1)
let int_of_bits bits = Array.to_list bits |> List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0
let int_of_bits_lsb bits =
  snd (Array.fold_left (fun (i, acc) b -> (i + 1, if b then acc lor (1 lsl i) else acc)) (0, 0) bits)
let _ = int_of_bits

let builder_tests =
  [ Alcotest.test_case "inputs after gates rejected" `Quick (fun () ->
        let b = Circuit.Builder.create () in
        let w = Circuit.Builder.inputs b 2 in
        let _ = Circuit.Builder.bxor b w.(0) w.(1) in
        Alcotest.check_raises "raises"
          (Invalid_argument "Circuit.Builder.inputs: gates already added")
          (fun () -> ignore (Circuit.Builder.inputs b 1)));
    Alcotest.test_case "undefined wire rejected" `Quick (fun () ->
        let b = Circuit.Builder.create () in
        let w = Circuit.Builder.inputs b 1 in
        Alcotest.check_raises "raises" (Invalid_argument "Circuit.Builder: undefined wire")
          (fun () -> ignore (Circuit.Builder.band b w.(0) 99)));
    Alcotest.test_case "basic gates" `Quick (fun () ->
        let b = Circuit.Builder.create () in
        let w = Circuit.Builder.inputs b 2 in
        let a = Circuit.Builder.band b w.(0) w.(1) in
        let x = Circuit.Builder.bxor b w.(0) w.(1) in
        let n = Circuit.Builder.bnot b w.(0) in
        let c = Circuit.Builder.finish b [| a; x; n |] in
        List.iter
          (fun (i0, i1) ->
             let out = Circuit.eval c [| i0; i1 |] in
             Alcotest.(check (array bool)) "truth table"
               [| i0 && i1; i0 <> i1; not i0 |] out)
          [ (false, false); (false, true); (true, false); (true, true) ]);
    Alcotest.test_case "bits round trip" `Quick (fun () ->
        let s = "BlindBox!" in
        Alcotest.(check string) "round trip" s
          (Circuit.string_of_bits (Circuit.bits_of_string s)));
  ]

let sample_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"adder adds" ~count:200
         QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
         (fun (x, y) ->
            let c = Samples.adder 16 in
            let out = Circuit.eval c (Array.append (bits_of_int 16 x) (bits_of_int 16 y)) in
            int_of_bits_lsb out = x + y));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"equality compares" ~count:200
         QCheck.(pair (int_bound 0xff) (int_bound 0xff))
         (fun (x, y) ->
            let c = Samples.equality 8 in
            let out = Circuit.eval c (Array.append (bits_of_int 8 x) (bits_of_int 8 y)) in
            out.(0) = (x = y)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mux selects" ~count:200
         QCheck.(triple (int_bound 0xff) (int_bound 0xff) bool)
         (fun (x, y, s) ->
            let c = Samples.mux 8 in
            let inputs = Array.concat [ bits_of_int 8 x; bits_of_int 8 y; [| s |] ] in
            int_of_bits_lsb (Circuit.eval c inputs) = (if s then y else x)));
  ]

let aes_circuit = lazy (Aes_circuit.build ())
let aes_tower = lazy (Aes_circuit.build_tower ())

let aes_tests =
  [ Alcotest.test_case "matches FIPS-197 vector" `Quick (fun () ->
        let c = Lazy.force aes_circuit in
        let key = Util.of_hex "000102030405060708090a0b0c0d0e0f" in
        let msg = Util.of_hex "00112233445566778899aabbccddeeff" in
        let inputs = Array.append (Circuit.bits_of_string key) (Circuit.bits_of_string msg) in
        Alcotest.(check string) "ciphertext" "69c4e0d86a7b0430d8cdb78070b4c55a"
          (Util.to_hex (Circuit.string_of_bits (Circuit.eval c inputs))));
    Alcotest.test_case "and-gate budget" `Quick (fun () ->
        let c = Lazy.force aes_circuit in
        Alcotest.(check int) "21600 AND gates" 21600 (Circuit.and_count c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"circuit agrees with table AES" ~count:20
         QCheck.(pair (string_of_size (QCheck.Gen.return 16)) (string_of_size (QCheck.Gen.return 16)))
         (fun (key, msg) ->
            let c = Lazy.force aes_circuit in
            let inputs = Array.append (Circuit.bits_of_string key) (Circuit.bits_of_string msg) in
            let expected = Aes.encrypt_block (Aes.expand_key key) msg in
            Circuit.string_of_bits (Circuit.eval c inputs) = expected));
    Alcotest.test_case "tower circuit matches FIPS-197 vector" `Quick (fun () ->
        let c = Lazy.force aes_tower in
        let key = Util.of_hex "000102030405060708090a0b0c0d0e0f" in
        let msg = Util.of_hex "00112233445566778899aabbccddeeff" in
        let inputs = Array.append (Circuit.bits_of_string key) (Circuit.bits_of_string msg) in
        Alcotest.(check string) "ciphertext" "69c4e0d86a7b0430d8cdb78070b4c55a"
          (Util.to_hex (Circuit.string_of_bits (Circuit.eval c inputs))));
    Alcotest.test_case "tower circuit and-gate budget" `Quick (fun () ->
        let c = Lazy.force aes_tower in
        Alcotest.(check int) "9000 AND gates" 9000 (Circuit.and_count c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tower circuit agrees with table AES" ~count:20
         QCheck.(pair (string_of_size (QCheck.Gen.return 16)) (string_of_size (QCheck.Gen.return 16)))
         (fun (key, msg) ->
            let c = Lazy.force aes_tower in
            let inputs = Array.append (Circuit.bits_of_string key) (Circuit.bits_of_string msg) in
            let expected = Aes.encrypt_block (Aes.expand_key key) msg in
            Circuit.string_of_bits (Circuit.eval c inputs) = expected));
  ]

let () =
  Alcotest.run "circuit"
    [ ("builder", builder_tests); ("samples", sample_tests); ("aes-circuit", aes_tests) ]
