(* Ruleprep tests: parallel setup must be byte-identical to sequential at
   any domain count (every chunk's garbling DRBG derives from
   (generation, index) alone), and incremental [update] must agree with a
   from-scratch preparation of the union ruleset (AES_k(chunk) depends
   only on k and the chunk, not on which generation garbled it).

   Garbled preparation costs roughly a second per chunk, so every test
   touching real circuits keeps the chunk count tiny and runs as `Slow. *)

open Blindbox

let chunk s =
  if String.length s > 8 then invalid_arg "chunk";
  s ^ String.make (8 - String.length s) '_'

let prep_seq ~k ~k_rand chunks =
  fst (Ruleprep.prepare_unchecked ~k ~k_rand ~chunks ())

(* ---------- fast bookkeeping tests (no circuits) ---------- *)

let direct_enc c = "enc:" ^ c

let bookkeeping_tests =
  [ Alcotest.test_case "prepared + lookup" `Quick (fun () ->
        let chunks = [| chunk "aa"; chunk "bb" |] in
        let p = Ruleprep.prepared ~chunks ~encs:[| "ea"; "eb" |] in
        let look = Ruleprep.lookup p in
        Alcotest.(check string) "hit" "eb" (look (chunk "bb"));
        Alcotest.(check int) "generation 0" 0 p.Ruleprep.generation;
        Alcotest.(check bool) "miss raises" true
          (match look (chunk "zz") with exception Not_found -> true | _ -> false));
    Alcotest.test_case "prepared validates lengths" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (match Ruleprep.prepared ~chunks:[| chunk "aa" |] ~encs:[||] with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "update_direct applies the delta" `Quick (fun () ->
        let p0 =
          Ruleprep.prepared
            ~chunks:[| chunk "aa"; chunk "bb"; chunk "cc" |]
            ~encs:(Array.map direct_enc [| chunk "aa"; chunk "bb"; chunk "cc" |])
        in
        let p1 =
          Ruleprep.update_direct ~enc:direct_enc ~prev:p0
            ~add:[| chunk "dd"; chunk "bb"; chunk "dd" |]
            ~remove:[| chunk "cc" |]
        in
        Alcotest.(check (array string)) "kept first, fresh deduped after"
          [| chunk "aa"; chunk "bb"; chunk "dd" |] p1.Ruleprep.chunks;
        Alcotest.(check (array string)) "encs follow"
          (Array.map direct_enc [| chunk "aa"; chunk "bb"; chunk "dd" |])
          p1.Ruleprep.encs;
        Alcotest.(check int) "generation bumped" 1 p1.Ruleprep.generation;
        Alcotest.(check bool) "removed chunk gone" true
          (match Ruleprep.lookup p1 (chunk "cc") with
           | exception Not_found -> true
           | _ -> false));
    Alcotest.test_case "update requires signatures and rg_key together" `Quick
      (fun () ->
        let p0 = Ruleprep.prepared ~chunks:[||] ~encs:[||] in
        Alcotest.(check bool) "raises" true
          (match
             Ruleprep.update ~signatures:[||] ~k:"k" ~k_rand:"kr" ~prev:p0
               ~add:[||] ~remove:[||] ()
           with
           | exception Invalid_argument _ -> true
           | _ -> false))
  ]

(* ---------- real-circuit tests ---------- *)

let circuit_tests =
  [ Alcotest.test_case "update equals from-scratch prepare of the union" `Slow
      (fun () ->
        let k = "union-key" and k_rand = "union-seed" in
        let c0 = chunk "base" and c1 = chunk "added" in
        let encs0 = prep_seq ~k ~k_rand [| c0 |] in
        let prev = Ruleprep.prepared ~chunks:[| c0 |] ~encs:encs0 in
        let p1, stats =
          Ruleprep.update ~k ~k_rand ~prev ~add:[| c1 |] ~remove:[||] ()
        in
        Alcotest.(check int) "only the delta was garbled" 1 stats.Ruleprep.circuits;
        (* the union, prepared from scratch, must agree chunk-by-chunk:
           AES_k(chunk) is independent of the garbling generation *)
        let union = prep_seq ~k ~k_rand [| c0; c1 |] in
        let look = Ruleprep.lookup p1 in
        Alcotest.(check string) "kept chunk enc" union.(0) (look c0);
        Alcotest.(check string) "fresh chunk enc" union.(1) (look c1);
        Alcotest.(check int) "generation bumped" 1 p1.Ruleprep.generation);
    Alcotest.test_case "update drops removed chunks" `Slow (fun () ->
        let k = "rm-key" and k_rand = "rm-seed" in
        let c0 = chunk "keep" and c1 = chunk "drop" in
        let encs = prep_seq ~k ~k_rand [| c0; c1 |] in
        let prev = Ruleprep.prepared ~chunks:[| c0; c1 |] ~encs in
        let p1, stats =
          Ruleprep.update ~k ~k_rand ~prev ~add:[||] ~remove:[| c1 |] ()
        in
        Alcotest.(check int) "nothing fresh to garble" 0 stats.Ruleprep.circuits;
        Alcotest.(check (array string)) "kept only" [| c0 |] p1.Ruleprep.chunks;
        Alcotest.(check string) "kept enc unchanged" encs.(0) p1.Ruleprep.encs.(0))
  ]

(* Parallel preparation is byte-identical to sequential at every domain
   count: chunk i's DRBG depends only on (generation, i). *)
let parallel_differential =
  QCheck.Test.make ~name:"prepare at 1/2/4 domains is byte-identical" ~count:2
    QCheck.(pair small_printable_string (int_bound 1))
    (fun (seed, extra) ->
      let chunks = Array.init (1 + extra) (fun i -> chunk (Printf.sprintf "c%d" i)) in
      let k = "par-key-" ^ seed and k_rand = "par-seed-" ^ seed in
      let expect = prep_seq ~k ~k_rand chunks in
      List.for_all
        (fun domains ->
          fst (Ruleprep.prepare_unchecked ~domains ~k ~k_rand ~chunks ()) = expect)
        [ 2; 4 ])

let parallel_update_differential =
  QCheck.Test.make ~name:"parallel update equals sequential update" ~count:2
    QCheck.small_printable_string
    (fun seed ->
      let k = "pu-key-" ^ seed and k_rand = "pu-seed-" ^ seed in
      let c0 = chunk "have" and c1 = chunk "new" in
      let prev =
        Ruleprep.prepared ~chunks:[| c0 |] ~encs:(prep_seq ~k ~k_rand [| c0 |])
      in
      let seq, _ = Ruleprep.update ~k ~k_rand ~prev ~add:[| c1 |] ~remove:[||] () in
      let par, _ =
        Ruleprep.update ~domains:2 ~k ~k_rand ~prev ~add:[| c1 |] ~remove:[||] ()
      in
      seq.Ruleprep.chunks = par.Ruleprep.chunks && seq.Ruleprep.encs = par.Ruleprep.encs)

let () =
  Alcotest.run "ruleprep"
    [ ("bookkeeping", bookkeeping_tests);
      ("circuits", circuit_tests);
      ( "parallel",
        List.map QCheck_alcotest.to_alcotest
          [ parallel_differential; parallel_update_differential ] )
    ]
