open Bbx_net

let packet_tests =
  [ Alcotest.test_case "packetize/reassemble round trip" `Quick (fun () ->
        let stream = String.init 5000 (fun i -> Char.chr (i land 0xff)) in
        let packets = Packet.packetize ~flow:7 stream in
        Alcotest.(check int) "count" 4 (List.length packets);
        Alcotest.(check string) "round trip" stream (Packet.reassemble packets));
    Alcotest.test_case "mtu respected" `Quick (fun () ->
        let packets = Packet.packetize ~flow:0 ~mtu:100 (String.make 350 'x') in
        Alcotest.(check (list int)) "sizes" [ 100; 100; 100; 50 ]
          (List.map (fun p -> String.length p.Packet.payload) packets));
    Alcotest.test_case "missing packet detected" `Quick (fun () ->
        let packets = Packet.packetize ~flow:0 ~mtu:10 (String.make 50 'x') in
        let holey = List.filter (fun p -> p.Packet.seq <> 2 ) packets in
        Alcotest.(check bool) "raises" true
          (match Packet.reassemble holey with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "empty stream" `Quick (fun () ->
        Alcotest.(check int) "no packets" 0 (List.length (Packet.packetize ~flow:0 "")));
  ]

let page_tests =
  [ Alcotest.test_case "generate hits requested byte mix" `Quick (fun () ->
        let drbg = Bbx_crypto.Drbg.create "page" in
        let p = Page.generate drbg ~url:"https://x.example/" ~text_bytes:50_000 ~binary_bytes:100_000 in
        let tb = Page.text_bytes p and bb = Page.binary_bytes p in
        Alcotest.(check bool) (Printf.sprintf "text %d ~ 50k" tb) true
          (tb >= 45_000 && tb <= 60_000);
        Alcotest.(check bool) (Printf.sprintf "binary %d ~ 100k" bb) true
          (bb >= 90_000 && bb <= 110_000));
    Alcotest.test_case "html has delimiter structure" `Quick (fun () ->
        let drbg = Bbx_crypto.Drbg.create "html" in
        let html = Page.gen_html drbg ~bytes:10_000 in
        let delims = ref 0 in
        String.iter (fun c -> if Bbx_tokenizer.Tokenizer.is_delimiter c then incr delims) html;
        let frac = float_of_int !delims /. float_of_int (String.length html) in
        Alcotest.(check bool) (Printf.sprintf "delimiter fraction %.2f" frac) true
          (frac > 0.10 && frac < 0.45));
    Alcotest.test_case "binary is incompressible" `Quick (fun () ->
        let drbg = Bbx_crypto.Drbg.create "bin" in
        let blob = Page.gen_binary drbg ~bytes:20_000 in
        Alcotest.(check bool) "ratio ~1" true (Bbx_compress.Compress.ratio blob < 1.05));
    Alcotest.test_case "text body excludes binary" `Quick (fun () ->
        let drbg = Bbx_crypto.Drbg.create "tb" in
        let p = Page.generate drbg ~url:"u" ~text_bytes:10_000 ~binary_bytes:10_000 in
        Alcotest.(check int) "lengths agree" (Page.text_bytes p)
          (String.length (Page.text_body p)));
  ]

let corpus_tests =
  [ Alcotest.test_case "named sites ordered and shaped" `Quick (fun () ->
        Alcotest.(check (list string)) "names"
          [ "YouTube"; "AirBnB"; "CNN"; "NYTimes"; "Gutenberg" ]
          (List.map (fun p -> p.Corpus.site) Corpus.named_sites);
        let youtube = List.hd Corpus.named_sites in
        let gutenberg = List.nth Corpus.named_sites 4 in
        Alcotest.(check bool) "youtube binary-heavy" true
          (youtube.Corpus.binary_kb > 5 * youtube.Corpus.text_kb);
        Alcotest.(check int) "gutenberg pure text" 0 gutenberg.Corpus.binary_kb);
    Alcotest.test_case "top50 spans the text-fraction axis" `Quick (fun () ->
        let pages = Corpus.top50 () in
        Alcotest.(check int) "50 pages" 50 (List.length pages);
        let fraction p =
          float_of_int (Page.text_bytes p) /. float_of_int (max 1 (Page.total_bytes p))
        in
        let fractions = List.map fraction pages in
        Alcotest.(check bool) "low end" true (List.exists (fun f -> f < 0.10) fractions);
        Alcotest.(check bool) "high end" true (List.exists (fun f -> f > 0.90) fractions));
    Alcotest.test_case "deterministic" `Quick (fun () ->
        let a = Corpus.top50 ~seed:"s" () and b = Corpus.top50 ~seed:"s" () in
        List.iter2
          (fun x y -> Alcotest.(check int) "same size" (Page.total_bytes x) (Page.total_bytes y))
          a b);
  ]

let linksim_tests =
  [ Alcotest.test_case "broadband is network-bound" `Quick (fun () ->
        let model =
          { Linksim.tls_cpu_per_byte = 1e-8; bb_text_cpu_per_byte = 3e-7;
            token_wire_per_text_byte = 1.5 }
        in
        let tls = Linksim.page_load Linksim.broadband model Linksim.Tls
            ~text_bytes:200_000 ~binary_bytes:200_000 in
        let bb = Linksim.page_load Linksim.broadband model Linksim.Blindbox
            ~text_bytes:200_000 ~binary_bytes:200_000 in
        (* wire bytes grow by 1.5x on the text half: overhead < 2x *)
        Alcotest.(check bool) "bb slower" true (bb > tls);
        Alcotest.(check bool) "bounded" true (bb /. tls < 2.0));
    Alcotest.test_case "gigabit is cpu-bound" `Quick (fun () ->
        let model =
          { Linksim.tls_cpu_per_byte = 1e-8; bb_text_cpu_per_byte = 3e-7;
            token_wire_per_text_byte = 1.5 }
        in
        let tls = Linksim.page_load Linksim.gigabit model Linksim.Tls
            ~text_bytes:400_000 ~binary_bytes:0 in
        let bb = Linksim.page_load Linksim.gigabit model Linksim.Blindbox
            ~text_bytes:400_000 ~binary_bytes:0 in
        (* cpu ratio 30x dominates once the link stops being the bottleneck *)
        Alcotest.(check bool) (Printf.sprintf "ratio %.1f > 5" (bb /. tls)) true (bb /. tls > 5.0));
    Alcotest.test_case "binary bytes never pay token overhead" `Quick (fun () ->
        let model =
          { Linksim.tls_cpu_per_byte = 1e-8; bb_text_cpu_per_byte = 3e-7;
            token_wire_per_text_byte = 1.5 }
        in
        let tls = Linksim.page_load Linksim.broadband model Linksim.Tls
            ~text_bytes:0 ~binary_bytes:500_000 in
        let bb = Linksim.page_load Linksim.broadband model Linksim.Blindbox
            ~text_bytes:0 ~binary_bytes:500_000 in
        Alcotest.(check bool) "equal" true (Float.abs (bb -. tls) < 1e-9));
  ]

let trace_tests =
  [ Alcotest.test_case "planted keywords really appear" `Quick (fun () ->
        let rules = Bbx_rules.Datasets.generate Bbx_rules.Datasets.Snort_community ~n:30 in
        let flows = Trace.generate ~rules ~n_attacks:20 ~n_benign:20 () in
        Alcotest.(check int) "40 flows" 40 (List.length flows);
        List.iter
          (fun f ->
             match f.Trace.attack with
             | None -> ()
             | Some rule ->
               List.iter
                 (fun kw ->
                    Alcotest.(check bool) "keyword present" true
                      (Bbx_rules.Classify.keyword_match_positions ~nocase:false kw f.Trace.payload
                       <> []))
                 (Bbx_rules.Rule.keywords rule))
          flows);
    Alcotest.test_case "misaligned fraction controls boundary placement" `Quick (fun () ->
        let rules = [ Bbx_rules.Rule.make [ Bbx_rules.Rule.make_content "plantkw1" ] ] in
        let flows = Trace.generate ~misaligned_fraction:1.0 ~rules ~n_attacks:5 ~n_benign:0 () in
        List.iter
          (fun f ->
             Alcotest.(check bool) "glued inside word" true
               (Bbx_rules.Classify.keyword_match_positions ~nocase:false "zqplantkw1zq"
                  f.Trace.payload <> []))
          flows);
    Alcotest.test_case "benign flows match no rules" `Quick (fun () ->
        let rules = Bbx_rules.Datasets.generate Bbx_rules.Datasets.Watermarking ~n:20 in
        let flows = Trace.generate ~rules ~n_attacks:0 ~n_benign:30 () in
        List.iter
          (fun f ->
             Alcotest.(check bool) "clean" false
               (List.exists (fun r -> Bbx_rules.Classify.matches_plaintext r f.Trace.payload) rules))
          flows);
  ]

let http_tests =
  [ Alcotest.test_case "request round trip" `Quick (fun () ->
        let r = Http.post ~headers:[ ("Host", "x.example") ] ~body:"a=1&b=2" "/submit" in
        let r2 = Http.parse_request (Http.render_request r) in
        Alcotest.(check string) "meth" "POST" r2.Http.meth;
        Alcotest.(check string) "path" "/submit" r2.Http.path;
        Alcotest.(check string) "body" "a=1&b=2" r2.Http.body;
        Alcotest.(check (option string)) "host" (Some "x.example")
          (Http.header "host" r2.Http.headers);
        Alcotest.(check (option string)) "content-length added" (Some "7")
          (Http.header "Content-Length" r2.Http.headers));
    Alcotest.test_case "response round trip" `Quick (fun () ->
        let r = Http.ok ~headers:[ ("Server", "nginx/0.6") ] "<html></html>" in
        let r2 = Http.parse_response (Http.render_response r) in
        Alcotest.(check int) "status" 200 r2.Http.status;
        Alcotest.(check string) "body" "<html></html>" r2.Http.resp_body);
    Alcotest.test_case "malformed messages rejected" `Quick (fun () ->
        let bad s = match Http.parse_request s with
          | exception Http.Malformed _ -> true
          | _ -> false
        in
        Alcotest.(check bool) "no terminator" true (bad "GET / HTTP/1.1");
        Alcotest.(check bool) "bad request line" true (bad "GETONLY\r\n\r\n");
        Alcotest.(check bool) "bad header" true (bad "GET / HTTP/1.1\r\nnocolon\r\n\r\n");
        Alcotest.(check bool) "length mismatch" true
          (bad "GET / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"));
    Alcotest.test_case "header lookup is case-insensitive" `Quick (fun () ->
        let r = Http.get ~headers:[ ("X-Thing", "v") ] "/" in
        Alcotest.(check (option string)) "lookup" (Some "v") (Http.header "x-thing" r.Http.headers));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"render/parse round trip on random bodies" ~count:200
         QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
         (fun body ->
            let r = Http.post ~headers:[ ("Host", "h") ] ~body "/p" in
            (Http.parse_request (Http.render_request r)).Http.body = body));
  ]

let () =
  Alcotest.run "net"
    [ ("packet", packet_tests);
      ("http", http_tests);
      ("page", page_tests);
      ("corpus", corpus_tests);
      ("linksim", linksim_tests);
      ("trace", trace_tests);
    ]
