open Blindbox
open Bbx_rules

let rules_basic = [ Rule.make ~sid:1 [ Rule.make_content "attackkw" ] ]

let establish ?config ?rg rules = Session.establish ?config ?rg ~rules ()

let direct cfg = { cfg with Session.rule_prep = Session.Direct }

let cfg_exact = direct Session.default_config
let cfg_probable =
  { cfg_exact with Session.mode = Bbx_dpienc.Dpienc.Probable }

let session_tests =
  [ Alcotest.test_case "benign roundtrip delivers plaintext" `Quick (fun () ->
        let t, stats = establish ~config:cfg_exact rules_basic in
        Alcotest.(check int) "one chunk" 1 stats.Session.chunk_count;
        let d = Session.send t "GET /index.html HTTP/1.1\r\nHost: ok.example\r\n\r\n" in
        Alcotest.(check string) "delivered" "GET /index.html HTTP/1.1\r\nHost: ok.example\r\n\r\n"
          d.Session.plaintext;
        Alcotest.(check int) "no verdicts" 0 (List.length d.Session.verdicts);
        Alcotest.(check bool) "tokens on wire" true (d.Session.token_bytes > 0));
    Alcotest.test_case "attack detected end to end" `Quick (fun () ->
        let t, _ = establish ~config:cfg_exact rules_basic in
        let d = Session.send t "GET /?q=attackkw HTTP/1.1" in
        Alcotest.(check int) "one verdict" 1 (List.length d.Session.verdicts);
        Alcotest.(check (list (pair string int))) "keyword hit"
          [ ("attackkw", 8) ] (Session.mb_keyword_hits t));
    Alcotest.test_case "detection works across messages" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"alphakey\"; content:\"betakeyx\"; sid:2;)" in
        let t, _ = establish ~config:cfg_exact [ r ] in
        let d1 = Session.send t "part one has alphakey only" in
        Alcotest.(check int) "no verdict yet" 0 (List.length d1.Session.verdicts);
        let d2 = Session.send t "part two has betakeyx too" in
        Alcotest.(check int) "verdict" 1 (List.length d2.Session.verdicts));
    Alcotest.test_case "repeated payloads produce fresh ciphertexts" `Quick (fun () ->
        (* semantic security across identical messages: the token bytes on
           the wire must differ between two sends of the same payload *)
        let t, _ = establish ~config:cfg_exact rules_basic in
        let payload = "identical message with words" in
        let module D = Bbx_dpienc.Dpienc in
        let d1 = Session.send t payload and d2 = Session.send t payload in
        ignore d1; ignore d2;
        (* second occurrence of each token got a new salt; keyword hits
           stayed empty so the streams were not equal by construction *)
        Alcotest.(check int) "no false hits" 0 (List.length (Session.mb_keyword_hits t)));
    Alcotest.test_case "probable cause decrypts the stream at MB" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"suspect8\"; pcre:\"/suspect8=[0-9]+/\"; sid:3;)" in
        let t, _ = establish ~config:cfg_probable [ r ] in
        let benign = Session.send t "nothing to see here" in
        Alcotest.(check (option string)) "no key yet" None (Session.mb_recovered_key t);
        ignore benign;
        let d = Session.send t "GET /?suspect8=1234 HTTP/1.1" in
        Alcotest.(check bool) "key recovered" true (Session.mb_recovered_key t <> None);
        (match Session.mb_decrypted_stream t with
         | Some stream ->
           Alcotest.(check bool) "whole stream visible" true
             (String.length stream > String.length "GET /?suspect8=1234 HTTP/1.1")
         | None -> Alcotest.fail "expected decrypted stream");
        Alcotest.(check int) "pcre verdict" 1 (List.length d.Session.verdicts));
    Alcotest.test_case "exact mode never exposes the key" `Quick (fun () ->
        let t, _ = establish ~config:cfg_exact rules_basic in
        let _ = Session.send t "GET /?q=attackkw HTTP/1.1" in
        Alcotest.(check (option string)) "no key" None (Session.mb_recovered_key t));
    Alcotest.test_case "evading sender is caught by the receiver" `Quick (fun () ->
        let t, _ = establish ~config:cfg_exact rules_basic in
        Alcotest.(check bool) "raises" true
          (match Session.send_evading t "GET /?q=attackkw HTTP/1.1" ~drop_tokens:2 with
           | exception Session.Evasion_detected _ -> true
           | _ -> false));
    Alcotest.test_case "salt reset period crossed transparently" `Quick (fun () ->
        let config = { cfg_exact with Session.reset_period = 64 } in
        let t, _ = establish ~config rules_basic in
        for _ = 1 to 5 do
          let d = Session.send t "filler filler filler filler filler filler filler" in
          Alcotest.(check int) "clean" 0 (List.length d.Session.verdicts)
        done;
        let d = Session.send t "then q=attackkw arrives" in
        Alcotest.(check int) "still detected after resets" 1 (List.length d.Session.verdicts));
    Alcotest.test_case "binary sends skip tokenization" `Quick (fun () ->
        let t, _ = establish ~config:cfg_exact rules_basic in
        let blob = String.init 4096 (fun i -> Char.chr ((i * 31) land 0xff)) in
        let d = Session.send_binary t blob in
        Alcotest.(check string) "delivered intact" blob d.Session.plaintext;
        Alcotest.(check int) "no tokens" 0 d.Session.token_count;
        (* the keyword hidden in binary is invisible to the HTTP-only IDS *)
        let d2 = Session.send_binary t "....attackkw...." in
        Alcotest.(check int) "not inspected" 0 (List.length d2.Session.verdicts);
        (* while the same bytes sent as text are caught *)
        let d3 = Session.send t "q=attackkw" in
        Alcotest.(check int) "text inspected" 1 (List.length d3.Session.verdicts));
    Alcotest.test_case "probable-cause stream interleaves text and binary" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"suspect8\"; pcre:\"/suspect8/\"; sid:4;)" in
        let t, _ = establish ~config:cfg_probable [ r ] in
        let _ = Session.send t "hello text" in
        let _ = Session.send_binary t "BINARYBLOB" in
        let _ = Session.send t "q=suspect8" in
        (match Session.mb_decrypted_stream t with
         | Some stream ->
           Alcotest.(check string) "tags stripped, order kept"
             "hello textBINARYBLOBq=suspect8" stream
         | None -> Alcotest.fail "expected stream"));
    Alcotest.test_case "drop rule blocks the connection" `Quick (fun () ->
        let rules =
          [ Rule.make ~action:Rule.Drop ~sid:9 [ Rule.make_content "dropword" ] ]
        in
        let t, _ = establish ~config:cfg_exact rules in
        Alcotest.(check bool) "not blocked yet" false (Session.blocked t);
        let d = Session.send t "q=dropword" in
        Alcotest.(check int) "verdict delivered" 1 (List.length d.Session.verdicts);
        Alcotest.(check bool) "now blocked" true (Session.blocked t);
        Alcotest.(check bool) "further sends refused" true
          (match Session.send t "harmless" with
           | exception Session.Connection_blocked -> true
           | _ -> false));
    Alcotest.test_case "alert rule does not block" `Quick (fun () ->
        let t, _ = establish ~config:cfg_exact rules_basic in
        let _ = Session.send t "q=attackkw" in
        Alcotest.(check bool) "not blocked" false (Session.blocked t);
        ignore (Session.send t "still flows"));
    Alcotest.test_case "session resumption skips setup and still detects" `Quick (fun () ->
        let t, _ = establish ~config:cfg_exact rules_basic in
        let _ = Session.send t "warm up the connection" in
        let ticket = Session.resumption_ticket t in
        let t2 = Session.resume ticket ~rules:rules_basic () in
        let d = Session.send t2 "GET /?q=attackkw HTTP/1.1" in
        Alcotest.(check int) "detects on resumed session" 1 (List.length d.Session.verdicts);
        (* resumed record layer is re-keyed: streams are independent *)
        let t3 = Session.resume ticket ~rules:rules_basic () in
        let d3 = Session.send t3 "benign words here" in
        Alcotest.(check int) "clean" 0 (List.length d3.Session.verdicts));
    Alcotest.test_case "resume rejects a different ruleset" `Quick (fun () ->
        let t, _ = establish ~config:cfg_exact rules_basic in
        let ticket = Session.resumption_ticket t in
        let other = [ Rule.make [ Rule.make_content "different" ] ] in
        Alcotest.(check bool) "raises" true
          (match Session.resume ticket ~rules:other () with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "live rule update extends detection" `Quick (fun () ->
        let t, _ = establish ~config:cfg_exact rules_basic in
        (* not yet a rule: flows through *)
        let d0 = Session.send t "q=newthr8t" in
        Alcotest.(check int) "unknown keyword" 0 (List.length d0.Session.verdicts);
        (* RG ships an update *)
        let fresh, _ = Session.add_rules t [ Rule.make ~sid:50 [ Rule.make_content "newthr8t" ] ] in
        Alcotest.(check int) "one fresh chunk" 1 fresh;
        let d1 = Session.send t "q=newthr8t again" in
        Alcotest.(check int) "now detected" 1 (List.length d1.Session.verdicts);
        (* old rules still work *)
        let d2 = Session.send t "q=attackkw" in
        Alcotest.(check int) "old rule intact" 1 (List.length d2.Session.verdicts));
    Alcotest.test_case "rule update reuses existing chunks" `Quick (fun () ->
        let t, _ = establish ~config:cfg_exact rules_basic in
        (* a new rule sharing the existing keyword adds no chunks *)
        let fresh, _ =
          Session.add_rules t
            [ Rule.make ~sid:51 [ Rule.make_content "attackkw"; Rule.make_content "otherkey" ] ]
        in
        Alcotest.(check int) "only the new keyword" 1 fresh);
    Alcotest.test_case "rule removal stops detection, keeps the rest" `Quick (fun () ->
        let rules =
          [ Rule.make ~sid:60 [ Rule.make_content "oldrule1" ];
            Rule.make ~sid:61 [ Rule.make_content "survivor" ] ]
        in
        let t, _ = establish ~config:cfg_exact rules in
        let d0 = Session.send t "q=oldrule1" in
        Alcotest.(check int) "fires before removal" 1 (List.length d0.Session.verdicts);
        let added, _ = Session.update_rules t ~remove_sids:[ 60 ] [] in
        Alcotest.(check int) "nothing added" 0 added;
        let d1 = Session.send t "q=oldrule1 again" in
        Alcotest.(check int) "removed rule silent" 0 (List.length d1.Session.verdicts);
        (* the surviving rule's verdict bookkeeping survived the index
           remap: it fires once, and only once per connection *)
        let d2 = Session.send t "q=survivor" in
        Alcotest.(check int) "survivor fires" 1 (List.length d2.Session.verdicts);
        let d3 = Session.send t "q=survivor again" in
        Alcotest.(check int) "still deduped" 0 (List.length d3.Session.verdicts));
    Alcotest.test_case "removal after a verdict keeps dedup for survivors" `Quick
      (fun () ->
        let rules =
          [ Rule.make ~sid:62 [ Rule.make_content "firstone" ];
            Rule.make ~sid:63 [ Rule.make_content "secondkw" ] ]
        in
        let t, _ = establish ~config:cfg_exact rules in
        (* the survivor fires *before* the removal shifts its index *)
        let d0 = Session.send t "q=secondkw" in
        Alcotest.(check int) "fires" 1 (List.length d0.Session.verdicts);
        ignore (Session.update_rules t ~remove_sids:[ 62 ] []);
        let d1 = Session.send t "q=secondkw again" in
        Alcotest.(check int) "no duplicate verdict after remap" 0
          (List.length d1.Session.verdicts);
        (* and a rule added in the same update is live *)
        let added, _ =
          Session.update_rules t [ Rule.make ~sid:64 [ Rule.make_content "thirdkww" ] ]
        in
        Alcotest.(check int) "one added" 1 added;
        let d2 = Session.send t "q=thirdkww" in
        Alcotest.(check int) "new rule fires" 1 (List.length d2.Session.verdicts));
    Alcotest.test_case "window tokenization catches mid-word keywords" `Quick (fun () ->
        let cfg_window = { cfg_exact with Session.tokenization = Session.Window } in
        let t, _ = establish ~config:cfg_window rules_basic in
        (* keyword glued inside a word: invisible to delimiter tokenization *)
        let d = Session.send t "zzattackkwzz" in
        Alcotest.(check int) "window finds it" 1 (List.length d.Session.verdicts);
        let t2, _ = establish ~config:cfg_exact rules_basic in
        let d2 = Session.send t2 "zzattackkwzz" in
        Alcotest.(check int) "delimiter misses it" 0 (List.length d2.Session.verdicts));
  ]

let duplex_tests =
  [ Alcotest.test_case "directional rules fire only on their direction" `Quick (fun () ->
        let server_rule =
          Parser.parse_rule
            "alert tcp any any -> any any (flow:established,from_server; \
             content:\"Server: nginx/0.\"; sid:20;)"
        in
        let client_rule =
          Parser.parse_rule
            "alert tcp any any -> any any (flow:to_server; content:\"cmd.exe?\"; sid:21;)"
        in
        let d, stats =
          Session.Duplex.establish ~config:cfg_exact ~rules:[ server_rule; client_rule ] ()
        in
        Alcotest.(check bool) "chunks shared" true (stats.Session.chunk_count >= 3);
        (* the server-rule keyword in the *request* direction: no verdict *)
        let r1 = Session.Duplex.client_send d "q=Server: nginx/0.zz" in
        Alcotest.(check int) "wrong direction" 0 (List.length r1.Session.verdicts);
        (* same bytes in the response direction: fires *)
        let r2 = Session.Duplex.server_send d "HTTP/1.0 200 OK\r\nServer: nginx/0.6\r\n" in
        Alcotest.(check int) "right direction" 1 (List.length r2.Session.verdicts);
        (* the client rule fires on requests *)
        let r3 = Session.Duplex.client_send d "GET /cmd.exe?x HTTP/1.1" in
        Alcotest.(check int) "client rule" 1 (List.length r3.Session.verdicts));
    Alcotest.test_case "undirected rules fire on both directions" `Quick (fun () ->
        let rule = Rule.make ~sid:22 [ Rule.make_content "bothways" ] in
        let d, _ = Session.Duplex.establish ~config:cfg_exact ~rules:[ rule ] () in
        Alcotest.(check int) "c2s" 1
          (List.length (Session.Duplex.client_send d "q=bothways").Session.verdicts);
        Alcotest.(check int) "s2c" 1
          (List.length (Session.Duplex.server_send d "r=bothways").Session.verdicts));
    Alcotest.test_case "drop in one direction blocks both" `Quick (fun () ->
        let rule = Rule.make ~action:Rule.Drop ~sid:23 [ Rule.make_content "dropword" ] in
        let d, _ = Session.Duplex.establish ~config:cfg_exact ~rules:[ rule ] () in
        let _ = Session.Duplex.client_send d "q=dropword" in
        Alcotest.(check bool) "blocked" true (Session.Duplex.blocked d);
        Alcotest.(check bool) "server send refused" true
          (match Session.Duplex.server_send d "response" with
           | exception Session.Connection_blocked -> true
           | _ -> false));
    Alcotest.test_case "directions have independent crypto streams" `Quick (fun () ->
        let d, _ = Session.Duplex.establish ~config:cfg_exact ~rules:rules_basic () in
        let r1 = Session.Duplex.client_send d "identical words" in
        let r2 = Session.Duplex.server_send d "identical words" in
        Alcotest.(check string) "both delivered" r1.Session.plaintext r2.Session.plaintext);
  ]

(* Fleet-wide rule updates: every live connection of a sharded middlebox
   picks up the new ruleset through its mailbox, no re-handshake. *)
let fleet_tests =
  [ Alcotest.test_case "fleet update reaches every live connection" `Quick (fun () ->
        let rules = [ Rule.make ~sid:70 [ Rule.make_content "fleetkw1" ] ] in
        let fleet =
          Session.Fleet.establish ~config:cfg_exact ~domains:2 ~conns:2 ~rules ()
        in
        Fun.protect ~finally:(fun () -> Session.Fleet.shutdown fleet) @@ fun () ->
        let verdicts_of conn payload =
          let t = Session.Fleet.submit fleet ~conn payload in
          let got = ref (-1) in
          Session.Fleet.drain fleet ~f:(fun ~seq ~conn_id:_ vs ->
              if seq = t then got := List.length vs);
          !got
        in
        (* unknown keyword flows through on both connections *)
        Alcotest.(check int) "conn 0 before" 0 (verdicts_of 0 "q=addedkw2");
        Alcotest.(check int) "conn 1 before" 0 (verdicts_of 1 "q=addedkw2");
        Session.Fleet.update_rules fleet
          [ Rule.make ~sid:71 [ Rule.make_content "addedkw2" ] ];
        Alcotest.(check int) "conn 0 after" 1 (verdicts_of 0 "q=addedkw2");
        Alcotest.(check int) "conn 1 after" 1 (verdicts_of 1 "q=addedkw2");
        (* the original rule still works *)
        Alcotest.(check int) "old rule intact" 1 (verdicts_of 0 "q=fleetkw1"));
    Alcotest.test_case "fleet removal withdraws a rule everywhere" `Quick (fun () ->
        let rules =
          [ Rule.make ~sid:72 [ Rule.make_content "remove77" ];
            Rule.make ~sid:73 [ Rule.make_content "keeper88" ] ]
        in
        let fleet =
          Session.Fleet.establish ~config:cfg_exact ~domains:2 ~conns:2 ~rules ()
        in
        Fun.protect ~finally:(fun () -> Session.Fleet.shutdown fleet) @@ fun () ->
        let verdicts_of conn payload =
          let t = Session.Fleet.submit fleet ~conn payload in
          let got = ref (-1) in
          Session.Fleet.drain fleet ~f:(fun ~seq ~conn_id:_ vs ->
              if seq = t then got := List.length vs);
          !got
        in
        Alcotest.(check int) "fires before" 1 (verdicts_of 0 "q=remove77");
        Session.Fleet.update_rules fleet ~remove_sids:[ 72 ] [];
        Alcotest.(check int) "silent after on conn 0" 0 (verdicts_of 0 "q=remove77 x");
        Alcotest.(check int) "silent after on conn 1" 0 (verdicts_of 1 "q=remove77 y");
        Alcotest.(check int) "survivor fires" 1 (verdicts_of 1 "q=keeper88"));
  ]

(* Fleet-scale state: shared rule prep is O(1) in connection count,
   single-connection removal returns memory gauges to baseline, and live
   migration/rebalancing never changes verdicts or stats. *)
let fleet_state_tests =
  let obs_prep = Bbx_obs.Obs.span "bbx_session_rule_prep" in
  let obs_conns = Bbx_obs.Obs.gauge "bbx_mbox_connections" in
  let obs_bytes = Bbx_obs.Obs.gauge "bbx_conn_bytes" in
  let verdicts_of fleet conn payload =
    let t = Session.Fleet.submit fleet ~conn payload in
    let got = ref (-1) in
    Session.Fleet.drain fleet ~f:(fun ~seq ~conn_id:_ vs ->
        if seq = t then got := List.length vs);
    !got
  in
  [ Alcotest.test_case "establish runs rule prep once at any size" `Quick (fun () ->
        List.iter
          (fun conns ->
             let before = Bbx_obs.Obs.span_count obs_prep in
             Session.Fleet.with_fleet ~config:cfg_exact ~domains:2 ~conns
               ~rules:rules_basic (fun fleet ->
                 Alcotest.(check int)
                   (Printf.sprintf "one prep for %d conns" conns)
                   1
                   (Bbx_obs.Obs.span_count obs_prep - before);
                 (* every connection still detects *)
                 Alcotest.(check int) "conn detects" 1
                   (verdicts_of fleet (conns - 1) "q=attackkw")))
          [ 1; 5 ]);
    Alcotest.test_case "remove returns memory gauges to baseline" `Quick (fun () ->
        let base = Bbx_obs.Obs.gauge_value obs_conns in
        Session.Fleet.with_fleet ~config:cfg_exact ~domains:2 ~conns:4
          ~rules:rules_basic (fun fleet ->
            ignore (verdicts_of fleet 0 "traffic on conn 0" : int);
            Alcotest.(check int) "gauge counts the fleet" (base + 4)
              (Bbx_obs.Obs.gauge_value obs_conns);
            Alcotest.(check bool) "fleet occupies bytes" true
              (Session.Fleet.conn_bytes fleet > 0);
            for conn = 0 to 3 do
              Session.Fleet.remove fleet ~conn
            done;
            Session.Fleet.remove fleet ~conn:0;  (* idempotent *)
            Alcotest.(check int) "connection gauge back to baseline" base
              (Bbx_obs.Obs.gauge_value obs_conns);
            Alcotest.(check int) "footprint back to zero" 0
              (Session.Fleet.conn_bytes fleet);
            Alcotest.(check int) "bbx_conn_bytes gauge refreshed" 0
              (Bbx_obs.Obs.gauge_value obs_bytes);
            Alcotest.(check bool) "removed conn unknown" true
              (match Session.Fleet.submit fleet ~conn:1 "x" with
               | exception Invalid_argument _ -> true
               | _ -> false)));
    Alcotest.test_case "migrate and rebalance preserve verdict accounting" `Quick
      (fun () ->
        Session.Fleet.with_fleet ~config:cfg_exact ~domains:2 ~conns:3
          ~rules:rules_basic (fun fleet ->
            Alcotest.(check int) "verdict before" 1 (verdicts_of fleet 0 "q=attackkw");
            let from = Session.Fleet.conn_shard fleet ~conn:0 in
            Session.Fleet.migrate fleet ~conn:0 ~shard:((from + 1) mod 2);
            Alcotest.(check bool) "shard changed" true
              (Session.Fleet.conn_shard fleet ~conn:0 <> from);
            (* sticky dedup travelled: same keyword, no fresh verdict *)
            Alcotest.(check int) "no re-report after migrate" 0
              (verdicts_of fleet 0 "again q=attackkw");
            ignore (Session.Fleet.rebalance fleet : int);
            Alcotest.(check int) "still one alert" 1
              (Session.Fleet.stats fleet).Bbx_mbox.Middlebox.alerts;
            let fs = Session.Fleet.flow_stats fleet ~conn:0 in
            Alcotest.(check int) "verdict count travelled" 1
              fs.Bbx_mbox.Middlebox.flow_verdicts));
  ]

(* The real rule-preparation pipeline: garbled AES circuits + OT.  Slow
   (~1s per chunk), so rulesets are kept tiny. *)
let garbled_tests =
  [ Alcotest.test_case "garbled rule prep yields working detection" `Slow (fun () ->
        let config = { cfg_exact with Session.rule_prep = Session.Garbled } in
        let t, stats = establish ~config rules_basic in
        (match stats.Session.rule_prep_stats with
         | Some s ->
           Alcotest.(check int) "one circuit" 1 s.Ruleprep.circuits;
           Alcotest.(check bool) "circuit bytes > 200KB" true (s.Ruleprep.circuit_bytes > 200_000);
           Alcotest.(check bool) "ot ran" true (s.Ruleprep.ot_bytes > 0)
         | None -> Alcotest.fail "expected rule prep stats");
        let d = Session.send t "GET /?q=attackkw HTTP/1.1" in
        Alcotest.(check int) "verdict through garbled prep" 1 (List.length d.Session.verdicts));
    Alcotest.test_case "garbled prep with RG signatures" `Slow (fun () ->
        let drbg = Bbx_crypto.Drbg.create "rg-keys" in
        let rg = Bbx_sig.Rsa.generate ~rand_bytes:(Bbx_crypto.Drbg.bytes drbg) ~bits:512 in
        let config = { cfg_exact with Session.rule_prep = Session.Garbled } in
        let t, _ = establish ~config ~rg rules_basic in
        let d = Session.send t "GET /?q=attackkw HTTP/1.1" in
        Alcotest.(check int) "verdict" 1 (List.length d.Session.verdicts));
    Alcotest.test_case "bad RG signature rejected" `Slow (fun () ->
        let drbg = Bbx_crypto.Drbg.create "rg-keys-2" in
        let rg = Bbx_sig.Rsa.generate ~rand_bytes:(Bbx_crypto.Drbg.bytes drbg) ~bits:512 in
        let chunks = [| "attackkw" |] in
        let signatures = [| Bbx_sig.Rsa.sign rg.Bbx_sig.Rsa.private_ "something else" |] in
        Alcotest.(check bool) "raises" true
          (match
             Ruleprep.prepare ~k:"k" ~k_rand:"kr" ~chunks ~signatures
               ~rg_key:rg.Bbx_sig.Rsa.public ()
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "cheating endpoint's garbling rejected" `Slow (fun () ->
        (* a malicious endpoint that deviates from the shared k_rand
           produces a different circuit; the middlebox's byte-equality
           check refuses the exchange *)
        Alcotest.(check bool) "raises" true
          (match
             Ruleprep.prepare_distrusting ~k:"k" ~k_rand_sender:"honest-seed"
               ~k_rand_receiver:"evil-seed" ~chunks:[| "attackkw" |]
           with
           | exception Invalid_argument _ -> true
           | _ -> false);
        (* and agreeing endpoints pass *)
        let encs, _ =
          Ruleprep.prepare_distrusting ~k:"k" ~k_rand_sender:"same-seed"
            ~k_rand_receiver:"same-seed" ~chunks:[| "attackkw" |]
        in
        Alcotest.(check int) "one enc" 1 (Array.length encs));
    Alcotest.test_case "ruleprep output equals direct AES_k(chunk)" `Slow (fun () ->
        let chunks = [| "attackkw"; "otherkw\x00" |] in
        let encs, _ = Ruleprep.prepare_unchecked ~k:"secret-k" ~k_rand:"seed" ~chunks () in
        let key = Bbx_dpienc.Dpienc.key_of_secret "secret-k" in
        Array.iteri
          (fun i chunk ->
             Alcotest.(check string) (Printf.sprintf "chunk %d" i)
               (Bbx_dpienc.Dpienc.token_enc key chunk) encs.(i))
          chunks);
  ]

let () =
  Alcotest.run "session"
    [ ("end-to-end", session_tests);
      ("duplex", duplex_tests);
      ("fleet-updates", fleet_tests);
      ("fleet-state", fleet_state_tests);
      ("garbled-rule-prep", garbled_tests) ]
