(* Differential test for the token pipeline: the streaming path
   (sender_encrypt_into -> decode_iter -> process_stream) must be
   observationally identical to the legacy list path
   (tokenize -> sender_encrypt -> encode_tokens -> decode_tokens ->
   process_batch): byte-identical wire output and identical match events,
   in both Exact and Probable modes, under both tokenizers. *)

open Bbx_dpienc.Dpienc
open Bbx_tokenizer.Tokenizer

let key = key_of_secret "pipeline-diff-k"

(* Payloads that exercise both tokenizers: random printable text with an
   attack keyword planted on a delimiter boundary, so both the window and
   the delimiter tokenizer emit its chunks. *)
let planted = "attackers"

let arb_payload =
  QCheck.make ~print:Fun.id
    QCheck.Gen.(
      let* left = string_size ~gen:(char_range 'a' 'z') (int_range 0 60) in
      let* right = string_size ~gen:(oneofl [ 'a'; 'b'; ' '; '/'; '.'; '=' ]) (int_range 0 60) in
      return (left ^ " " ^ planted ^ " " ^ right))

let tokenize = function
  | Window -> window
  | Delimiter { short_units } -> delimiter ~short_units

let mk_detect mode =
  Bbx_detect.Detect.create ~mode ~salt0:0
    (Array.of_list
       (List.map (fun (c, _) -> token_enc key c) (keyword_chunks planted)))

let same_events mode batch stream =
  List.length batch = List.length stream
  && List.for_all2
    (fun b (s, embed_pos) ->
       b.Bbx_detect.Detect.kw_id = s.Bbx_detect.Detect.kw_id
       && b.Bbx_detect.Detect.offset = s.Bbx_detect.Detect.offset
       && b.Bbx_detect.Detect.salt = s.Bbx_detect.Detect.salt
       && (mode = Exact) = (embed_pos < 0))
    batch stream

(* One sender/detector pair per path; [packets] flow through both so the
   differential also covers counter-table state carried across packets. *)
let run_both mode tokenization packets =
  let k_ssl = if mode = Probable then Some (String.make 16 'L') else None in
  let s_legacy = sender_create mode key ~salt0:0 in
  let s_stream = sender_create mode key ~salt0:0 in
  let d_legacy = mk_detect mode and d_stream = mk_detect mode in
  let buf = Buffer.create 1024 in
  List.for_all
    (fun payload ->
       let wire_legacy =
         encode_tokens (sender_encrypt s_legacy ?k_ssl (tokenize tokenization payload))
       in
       Buffer.clear buf;
       let n =
         sender_encrypt_into s_stream ?k_ssl ~tokenization payload buf
       in
       let wire_stream = Buffer.contents buf in
       let batch_evs =
         Bbx_detect.Detect.process_batch d_legacy (decode_tokens wire_legacy)
       in
       let stream_evs = ref [] in
       let n' =
         Bbx_detect.Detect.process_stream d_stream wire_stream
           ~f:(fun ev ~embed_pos -> stream_evs := (ev, embed_pos) :: !stream_evs)
       in
       String.equal wire_legacy wire_stream
       && n = n'
       && n = wire_token_count wire_stream
       && batch_evs <> []  (* the planted keyword must actually fire *)
       && same_events mode batch_evs (List.rev !stream_evs))
    packets

let diff_tests =
  let prop name mode tokenization =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name ~count:60
         QCheck.(pair arb_payload arb_payload)
         (fun (p1, p2) -> run_both mode tokenization [ p1; p2 ]))
  in
  [ prop "exact + window" Exact Window;
    prop "exact + delimiter" Exact (Delimiter { short_units = false });
    prop "exact + delimiter w/ short units" Exact (Delimiter { short_units = true });
    prop "probable + window" Probable Window;
    prop "probable + delimiter" Probable (Delimiter { short_units = false });
  ]

(* Engine-level differential on a generated ruleset: feeding the wire
   stream must produce the same keyword hits and verdicts as feeding the
   token list. *)
let engine_tests =
  [ Alcotest.test_case "process_wire equals process on an ET ruleset" `Quick (fun () ->
        let rules =
          List.filter
            (fun r -> r.Bbx_rules.Rule.pcre = None)
            (Bbx_rules.Datasets.generate Bbx_rules.Datasets.Emerging_threats ~n:80)
        in
        let enc_chunk = token_enc key in
        let kw =
          match List.concat_map Bbx_rules.Rule.keywords rules with
          | kw :: _ -> kw
          | [] -> Alcotest.fail "ruleset has no keywords"
        in
        let payload = "GET /index.html?q=" ^ kw ^ " HTTP/1.1\r\nHost: a.example\r\n\r\n" in
        let e_list = Bbx_mbox.Engine.create ~mode:Exact ~salt0:0 ~rules ~enc_chunk () in
        let e_wire = Bbx_mbox.Engine.create ~mode:Exact ~salt0:0 ~rules ~enc_chunk () in
        let s1 = sender_create Exact key ~salt0:0 in
        let s2 = sender_create Exact key ~salt0:0 in
        Bbx_mbox.Engine.process e_list (sender_encrypt s1 (delimiter payload));
        let buf = Buffer.create 1024 in
        let n =
          sender_encrypt_into s2
            ~tokenization:(Delimiter { short_units = false }) payload buf
        in
        Alcotest.(check int) "token count" (delimiter_count payload)
          (Bbx_mbox.Engine.process_wire e_wire (Buffer.contents buf));
        Alcotest.(check int) "same count both paths" n (delimiter_count payload);
        Alcotest.(check (list (pair string int))) "keyword hits"
          (Bbx_mbox.Engine.keyword_hits e_list)
          (Bbx_mbox.Engine.keyword_hits e_wire);
        let idxs e =
          List.map (fun v -> v.Bbx_mbox.Engine.rule_idx) (Bbx_mbox.Engine.verdicts e)
        in
        Alcotest.(check (list int)) "verdicts" (idxs e_list) (idxs e_wire));
  ]

let () =
  Alcotest.run "pipeline"
    [ ("differential", diff_tests); ("engine", engine_tests) ]
