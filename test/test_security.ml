(* Executable security properties: statistical and structural checks of
   the privacy models (the indistinguishability proofs live in the
   paper's extended version; these tests rule out the *observable*
   failure modes — frequency leakage, salt reuse, key exposure without
   probable cause, trivially biased ciphertexts). *)

open Bbx_dpienc.Dpienc
open Bbx_tokenizer.Tokenizer

let key = key_of_secret "security-suite-k"

let mk_tokens contents = List.mapi (fun i c -> { content = pad_short c; offset = 8 * i }) contents

(* ---------- exact match privacy ---------- *)

let exact_match_tests =
  [ Alcotest.test_case "no equality pattern leaks across a long stream" `Quick (fun () ->
        (* two streams with very different repetition structure produce
           ciphertext multisets that are both all-distinct: an observer
           cannot tell "aaaa..." from "abcd..." by repetitions *)
        let s1 = sender_create Exact key ~salt0:0 in
        let s2 = sender_create Exact key ~salt0:0 in
        let repeated = mk_tokens (List.init 500 (fun _ -> "same")) in
        let distinct = mk_tokens (List.init 500 (fun i -> Printf.sprintf "w%05d" i)) in
        let c1 = List.map (fun e -> e.cipher) (sender_encrypt s1 repeated) in
        let c2 = List.map (fun e -> e.cipher) (sender_encrypt s2 distinct) in
        Alcotest.(check int) "stream 1 all distinct" 500
          (List.length (List.sort_uniq compare c1));
        Alcotest.(check int) "stream 2 all distinct" 500
          (List.length (List.sort_uniq compare c2)));
    Alcotest.test_case "ciphertext bits are balanced" `Quick (fun () ->
        (* ~40 bits x 2000 samples; each bit position should be ~50% ones *)
        let s = sender_create Exact key ~salt0:0 in
        let toks = mk_tokens (List.init 2000 (fun i -> Printf.sprintf "t%05d" i)) in
        let ciphers = List.map (fun e -> e.cipher) (sender_encrypt s toks) in
        for bit = 0 to 39 do
          let ones = List.length (List.filter (fun c -> (c lsr bit) land 1 = 1) ciphers) in
          Alcotest.(check bool)
            (Printf.sprintf "bit %d balance (%d/2000)" bit ones)
            true
            (ones > 850 && ones < 1150)
        done);
    Alcotest.test_case "ciphertexts unlinkable across salt resets" `Quick (fun () ->
        let s = sender_create Exact key ~salt0:0 in
        let before = sender_encrypt s (mk_tokens [ "token" ]) in
        let _ = sender_reset s in
        let after = sender_encrypt s (mk_tokens [ "token" ]) in
        Alcotest.(check bool) "differ" true
          ((List.hd before).cipher <> (List.hd after).cipher));
  ]

(* ---------- probable cause privacy ---------- *)

let probable_cause_tests =
  [ Alcotest.test_case "embeds from non-matching tokens do not combine to the key" `Quick
      (fun () ->
         (* The mask of token t at salt s is AES_{AES_k(t)}(s+1); without
            AES_k(t) (i.e. without a rule for t) no embed equals k_ssl, and
            masks derived from *other* rules do not unmask it. *)
         let k_ssl = String.init 16 (fun i -> Char.chr (0x40 + i)) in
         let s = sender_create Probable key ~salt0:0 in
         let out = sender_encrypt s ~k_ssl (mk_tokens [ "private1"; "private2" ]) in
         let wrong_rule_tk = token_key key (pad_short "ruleword") in
         List.iter
           (fun e ->
              match e.embed with
              | None -> Alcotest.fail "expected embeds"
              | Some c2 ->
                Alcotest.(check bool) "embed is not the key itself" true (c2 <> k_ssl);
                let mask = encrypt_full wrong_rule_tk ~salt:1 in
                Alcotest.(check bool) "wrong rule cannot unmask" true
                  (Bbx_crypto.Util.xor c2 mask <> k_ssl))
           out);
    Alcotest.test_case "c1/c2 salt separation (even/odd) holds" `Quick (fun () ->
        (* if c1 and c2 ever shared a salt, c1's mask XOR c2 would expose
           k_ssl; verify the parity discipline on a long stream *)
        let k_ssl = String.make 16 '\xaa' in
        let s = sender_create Probable key ~salt0:0 in
        let toks = mk_tokens (List.init 50 (fun _ -> "reptoken")) in
        let out = sender_encrypt s ~k_ssl toks in
        let tk = token_key key (pad_short "reptoken") in
        List.iteri
          (fun i e ->
             (* c1 uses salt 2i; its 40-bit value must never let c2's mask
                at the same salt leak: check c2 = mask(2i+1) XOR k_ssl and
                mask(2i) <> mask(2i+1) *)
             let c2 = Option.get e.embed in
             Alcotest.(check string) "c2 uses odd salt"
               (Bbx_crypto.Util.xor (encrypt_full tk ~salt:((2 * i) + 1)) k_ssl) c2;
             Alcotest.(check bool) "masks differ" true
               (encrypt_full tk ~salt:(2 * i) <> encrypt_full tk ~salt:((2 * i) + 1)))
          out);
  ]

(* ---------- garbled circuits ---------- *)

let garble_tests =
  [ Alcotest.test_case "one evaluation reveals only the output" `Quick (fun () ->
        (* the evaluator's labels for input x carry no colour pattern that
           depends on x: colour bits of delivered labels look random;
           concretely, two different inputs yield label sets that differ in
           every position (labels are per-wire pairs, not per-value) *)
        let open Bbx_circuit in
        let open Bbx_crypto in
        let c = Samples.adder 16 in
        let _, s = Bbx_garble.Garble.garble (Drbg.create "sec") c in
        let bits_of_int n v = Array.init n (fun i -> (v lsr i) land 1 = 1) in
        let l1 = Bbx_garble.Garble.encode_inputs s (Array.append (bits_of_int 16 7) (bits_of_int 16 9)) in
        let l2 = Bbx_garble.Garble.encode_inputs s (Array.append (bits_of_int 16 7) (bits_of_int 16 8)) in
        (* inputs differ only in one bit -> exactly one label differs *)
        let diffs = ref 0 in
        Array.iteri (fun i a -> if a <> l2.(i) then incr diffs) l1;
        Alcotest.(check int) "one label differs" 1 !diffs;
        (* and the two labels of that wire are unrelated beyond the global
           offset (never equal, never zero) *)
        let w = ref 0 in
        Array.iteri (fun i a -> if a <> l2.(i) then w := i) l1;
        Alcotest.(check bool) "labels distinct" true (l1.(!w) <> l2.(!w)));
    Alcotest.test_case "garbled tables leak nothing recognisable" `Quick (fun () ->
        (* byte-level sanity: table rows are not trivially structured *)
        let open Bbx_crypto in
        let c = Bbx_circuit.Samples.adder 32 in
        let g, _ = Bbx_garble.Garble.garble (Drbg.create "sec2") c in
        let bytes = Bbx_garble.Garble.to_string g in
        let zeros = ref 0 in
        String.iter (fun ch -> if ch = '\000' then incr zeros) bytes;
        let frac = float_of_int !zeros /. float_of_int (String.length bytes) in
        Alcotest.(check bool) (Printf.sprintf "zero-byte fraction %.3f" frac) true
          (frac < 0.02));
  ]

(* ---------- record layer ---------- *)

let record_tests =
  [ Alcotest.test_case "identical plaintexts never repeat on the wire" `Quick (fun () ->
        let w = Bbx_tls.Record.create ~key:"k" ~direction:"d" () in
        let a = Bbx_tls.Record.seal w "same message" in
        let b = Bbx_tls.Record.seal w "same message" in
        (* strip length+seq header; compare ciphertext bodies *)
        Alcotest.(check bool) "bodies differ" true
          (String.sub a 12 12 <> String.sub b 12 12));
  ]

let () =
  Alcotest.run "security"
    [ ("exact-match-privacy", exact_match_tests);
      ("probable-cause-privacy", probable_cause_tests);
      ("garbling", garble_tests);
      ("record-layer", record_tests);
    ]
