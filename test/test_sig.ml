open Bbx_sig

let drbg = Bbx_crypto.Drbg.create "test-sig-seed"
let rand_bytes n = Bbx_crypto.Drbg.bytes drbg n

(* One shared keypair: generation is the slow part. *)
let kp = lazy (Rsa.generate ~rand_bytes ~bits:512)

let tests =
  [ Alcotest.test_case "sign/verify round trip" `Quick (fun () ->
        let kp = Lazy.force kp in
        let signature = Rsa.sign kp.private_ "attack keyword" in
        Alcotest.(check bool) "verifies" true
          (Rsa.verify kp.public ~signature "attack keyword"));
    Alcotest.test_case "verify rejects tampered message" `Quick (fun () ->
        let kp = Lazy.force kp in
        let signature = Rsa.sign kp.private_ "msg" in
        Alcotest.(check bool) "rejects" false (Rsa.verify kp.public ~signature "msG"));
    Alcotest.test_case "verify rejects tampered signature" `Quick (fun () ->
        let kp = Lazy.force kp in
        let signature = Rsa.sign kp.private_ "msg" in
        let bad =
          String.mapi (fun i c -> if i = 5 then Char.chr (Char.code c lxor 1) else c) signature
        in
        Alcotest.(check bool) "rejects" false (Rsa.verify kp.public ~signature:bad "msg"));
    Alcotest.test_case "verify rejects wrong length" `Quick (fun () ->
        let kp = Lazy.force kp in
        Alcotest.(check bool) "rejects" false (Rsa.verify kp.public ~signature:"short" "msg"));
    Alcotest.test_case "public key serialisation" `Quick (fun () ->
        let kp = Lazy.force kp in
        let s = Rsa.public_to_string kp.public in
        let back = Rsa.public_of_string s in
        Alcotest.(check bool) "n" true (Bbx_bignum.Nat.equal back.Rsa.n kp.public.Rsa.n);
        Alcotest.(check bool) "e" true (Bbx_bignum.Nat.equal back.Rsa.e kp.public.Rsa.e));
    Alcotest.test_case "signatures from another key rejected" `Slow (fun () ->
        let kp = Lazy.force kp in
        let other = Rsa.generate ~rand_bytes ~bits:512 in
        let signature = Rsa.sign other.private_ "msg" in
        Alcotest.(check bool) "rejects" false (Rsa.verify kp.public ~signature "msg"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"round trip on random messages" ~count:20 QCheck.string
         (fun msg ->
            let kp = Lazy.force kp in
            Rsa.verify kp.public ~signature:(Rsa.sign kp.private_ msg) msg));
  ]

let () = Alcotest.run "sig" [ ("rsa", tests) ]
