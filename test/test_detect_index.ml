(* Differential tests for the flat open-addressing cipher index.

   Three layers of the same claim — the Hash backend is observationally
   identical to the AVL reference:

   - [Cindex] against a stdlib [Hashtbl] under random insert/remove/clear
     sequences drawn from a tiny key space (forced probe chains and
     backward-shift deletions), with [check_invariants] after every op;
   - [Detect] with [Hash] against [Detect] with [Avl]: same encrypted
     keyword set (duplicate ciphers included), same token streams, both
     modes, interleaved [add_keyword]/[reset] — event-for-event equal,
     and [recover_key] byte-equal in probable-cause mode;
   - the same random multi-connection trace through [Shardpool ~index:Hash]
     at 1/2/4 domains and the sequential [Middlebox ~index:Avl]. *)

open Bbx_detect
open Bbx_dpienc.Dpienc
open Bbx_tokenizer.Tokenizer

(* ---------- Cindex vs Hashtbl ---------- *)

type cop = Insert of int * int | Remove of int | Clear

let arb_cops =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 400)
        (frequency
           [ (6, map2 (fun k v -> Insert (k, v)) (int_bound 60) (int_bound 1000));
             (3, map (fun k -> Remove k) (int_bound 60));
             (1, return Clear) ]))
  in
  let print ops =
    String.concat ";"
      (List.map
         (function
           | Insert (k, v) -> Printf.sprintf "i%d=%d" k v
           | Remove k -> Printf.sprintf "r%d" k
           | Clear -> "c")
         ops)
  in
  QCheck.make ~print gen

let cindex_agrees ops =
  let c = Cindex.create ~capacity:4 () in
  let h = Hashtbl.create 16 in
  List.for_all
    (fun op ->
       (match op with
        | Insert (k, v) ->
          Cindex.insert c k v;
          Hashtbl.replace h k v
        | Remove k ->
          Cindex.remove c k;
          Hashtbl.remove h k
        | Clear ->
          Cindex.clear c;
          Hashtbl.reset h);
       Cindex.check_invariants c
       && Cindex.size c = Hashtbl.length h
       && Hashtbl.fold (fun k v ok -> ok && Cindex.find c k = v) h true
       (* a key outside the op range is never present *)
       && Cindex.find c 1_000_003 = -1)
    ops

let cindex_tests =
  let prop name ?(count = 200) arb f =
    QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)
  in
  [ prop "matches Hashtbl under random ops (forced collisions)" arb_cops
      cindex_agrees;
    prop "find_probe agrees with find and counts >= 1 step"
      QCheck.(list_of_size (QCheck.Gen.int_range 1 80) (int_bound 40))
      (fun keys ->
        let c = Cindex.create () in
        List.iteri (fun i k -> Cindex.insert c k i) keys;
        List.for_all
          (fun k ->
            let steps = ref 0 in
            Cindex.find_probe c k ~steps = Cindex.find c k && !steps >= 1)
          (List.init 60 Fun.id));
    Alcotest.test_case "grows past any initial capacity" `Quick (fun () ->
        let c = Cindex.create ~capacity:1 () in
        for i = 0 to 999 do
          Cindex.insert c (i * 7919) i
        done;
        Alcotest.(check int) "size" 1000 (Cindex.size c);
        Alcotest.(check bool) "invariants" true (Cindex.check_invariants c);
        for i = 0 to 999 do
          Alcotest.(check int) "find" i (Cindex.find c (i * 7919))
        done);
    Alcotest.test_case "insert replaces, remove is idempotent" `Quick (fun () ->
        let c = Cindex.create () in
        Cindex.insert c 5 1;
        Cindex.insert c 5 2;
        Alcotest.(check int) "last id wins" 2 (Cindex.find c 5);
        Alcotest.(check int) "one entry" 1 (Cindex.size c);
        Cindex.remove c 5;
        Cindex.remove c 5;
        Alcotest.(check int) "gone" (-1) (Cindex.find c 5);
        Alcotest.(check int) "empty" 0 (Cindex.size c));
  ]

(* ---------- Detect: Hash vs Avl ---------- *)

let key = key_of_secret "index-diff-k"
let t8 = pad_short

let word_pool =
  [| "atk"; "mal"; "worm"; "ok"; "fine"; "noise"; "benign"; "xyz" |]

(* keyword sets may repeat a word: both backends must keep only the last
   id for a duplicated cipher *)
let arb_scenario =
  let gen =
    QCheck.Gen.(
      let* mode = oneofl [ Exact; Probable ] in
      let* kws = list_size (int_range 1 6) (int_bound 4) in
      let* ops =
        list_size (int_range 1 12)
          (frequency
             [ (6,
                map
                  (fun ws -> `Stream ws)
                  (list_size (int_range 0 12)
                     (int_bound (Array.length word_pool - 1))));
               (2, map (fun w -> `Add w) (int_bound (Array.length word_pool - 1)));
               (1, map (fun n -> `Reset (2 * n)) (int_bound 50)) ])
      in
      return (mode, kws, ops))
  in
  let print (mode, kws, ops) =
    Printf.sprintf "%s kws=[%s] ops=[%s]"
      (match mode with Exact -> "exact" | Probable -> "probable")
      (String.concat "," (List.map string_of_int kws))
      (String.concat ";"
         (List.map
            (function
              | `Stream ws ->
                "s:" ^ String.concat "," (List.map string_of_int ws)
              | `Add w -> Printf.sprintf "a%d" w
              | `Reset n -> Printf.sprintf "r%d" n)
            ops))
  in
  QCheck.make ~print gen

let k_ssl = String.init 16 (fun i -> Char.chr (0x40 + i))

(* Replay one scenario against a detector; returns the observed events
   (full records) and every recovered key, in order. *)
let replay det mode kws ops =
  ignore (kws : int list);
  let sender = ref (sender_create mode key ~salt0:0) in
  let events = ref [] and keys = ref [] in
  List.iter
    (function
      | `Stream ws ->
        let toks =
          sender_encrypt !sender
            ?k_ssl:(if mode = Probable then Some k_ssl else None)
            (List.mapi
               (fun i w -> { content = t8 word_pool.(w); offset = 8 * i })
               ws)
        in
        let wire = encode_tokens toks in
        ignore
          (Detect.process_stream det wire ~f:(fun ev ~embed_pos ->
               events := ev :: !events;
               if embed_pos >= 0 then
                 keys :=
                   Detect.recover_key det ~event:ev
                     ~embed:(String.sub wire embed_pos 16)
                   :: !keys)
            : int)
      | `Add w -> ignore (Detect.add_keyword det (token_enc key (t8 word_pool.(w))) : int)
      | `Reset salt0 ->
        Detect.reset det ~salt0;
        sender := sender_create mode key ~salt0)
    ops;
  (List.rev !events, List.rev !keys)

let detect_diff_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"Hash and Avl emit identical events and recovered keys"
         ~count:300 arb_scenario
         (fun (mode, kws, ops) ->
           let encs =
             Array.of_list
               (List.map (fun w -> token_enc key (t8 word_pool.(w))) kws)
           in
           let mk index = Detect.create ~index ~mode ~salt0:0 encs in
           let d_hash = mk Detect.Hash and d_avl = mk Detect.Avl in
           let ev_h, keys_h = replay d_hash mode kws ops in
           let ev_a, keys_a = replay d_avl mode kws ops in
           ev_h = ev_a && keys_h = keys_a
           && Detect.size d_hash = Detect.size d_avl
           && List.for_all (String.equal k_ssl) keys_h));
    Alcotest.test_case "duplicate cipher: last id wins on both backends" `Quick
      (fun () ->
        let enc = token_enc key (t8 "twice") in
        let mk index =
          Detect.create ~index ~mode:Exact ~salt0:0 [| enc; enc |]
        in
        let check d =
          Alcotest.(check int) "one entry" 1 (Detect.size d);
          let s = sender_create Exact key ~salt0:0 in
          let toks = sender_encrypt s [ { content = t8 "twice"; offset = 0 } ] in
          match Detect.process_batch d toks with
          | [ ev ] -> Alcotest.(check int) "last id" 1 ev.Detect.kw_id
          | evs ->
            Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs))
        in
        check (mk Detect.Hash);
        check (mk Detect.Avl));
    Alcotest.test_case "backend accessor and tree_height" `Quick (fun () ->
        let encs = [| token_enc key (t8 "a"); token_enc key (t8 "b") |] in
        let h = Detect.create ~index:Detect.Hash ~mode:Exact ~salt0:0 encs in
        let a = Detect.create ~index:Detect.Avl ~mode:Exact ~salt0:0 encs in
        Alcotest.(check bool) "hash" true (Detect.backend h = Detect.Hash);
        Alcotest.(check bool) "avl" true (Detect.backend a = Detect.Avl);
        Alcotest.(check int) "hash height is 0" 0 (Detect.tree_height h);
        Alcotest.(check bool) "avl height > 0" true (Detect.tree_height a > 0));
  ]

(* ---------- Shardpool with the Hash index vs sequential Avl ---------- *)

open Bbx_mbox

let rules =
  [ Bbx_rules.Rule.make ~sid:1 [ Bbx_rules.Rule.make_content "alertkw1" ];
    Bbx_rules.Rule.make ~sid:2 [ Bbx_rules.Rule.make_content "otherkw2" ];
    Bbx_rules.Rule.make ~action:Bbx_rules.Rule.Drop ~sid:3
      [ Bbx_rules.Rule.make_content "dropkw33" ] ]

let key_for conn = key_of_secret (Printf.sprintf "idx-conn-%d" conn)

let map_in_order f l = List.rev (List.fold_left (fun acc x -> f x :: acc) [] l)

let payload_pool =
  [| "GET /index.html HTTP/1.1";
     "x=alertkw1&noise=1";
     "benign hello world";
     "y=otherkw2 z=alertkw1";
     "q=dropkw33";
     "tail traffic after things" |]

let wires_for conn payloads =
  let s = sender_create Exact (key_for conn) ~salt0:0 in
  map_in_order (fun p -> encode_tokens (sender_encrypt s (delimiter p))) payloads

let wires_of_trace trace =
  let per_conn = Hashtbl.create 8 in
  List.iter
    (fun (conn, p) ->
       let l = Option.value (Hashtbl.find_opt per_conn conn) ~default:[] in
       Hashtbl.replace per_conn conn (payload_pool.(p) :: l))
    trace;
  let streams = Hashtbl.create 8 in
  Hashtbl.iter
    (fun conn payloads ->
       Hashtbl.replace streams conn (ref (wires_for conn (List.rev payloads))))
    per_conn;
  map_in_order
    (fun (conn, _) ->
       let s = Hashtbl.find streams conn in
       match !s with
       | w :: rest ->
         s := rest;
         (conn, w)
       | [] -> assert false)
    trace

let conns_of_trace trace = List.sort_uniq compare (List.map fst trace)

let obs_of_verdicts vs = List.map (fun v -> (v.Engine.rule_idx, v.Engine.via)) vs

let run_sequential_avl trace =
  let mb = Middlebox.create ~index:Detect.Avl ~mode:Exact ~rules () in
  List.iter
    (fun conn ->
       Middlebox.register mb ~conn_id:conn ~salt0:0 ~enc_chunk:(token_enc (key_for conn)))
    (conns_of_trace trace);
  let results =
    map_in_order
      (fun (conn, wire) ->
         match Middlebox.process_wire mb ~conn_id:conn wire with
         | vs -> Some (obs_of_verdicts vs)
         | exception Invalid_argument _ -> None)
      (wires_of_trace trace)
  in
  let flows =
    List.map
      (fun conn ->
         (conn, Middlebox.flow_stats mb ~conn_id:conn, Middlebox.is_blocked mb ~conn_id:conn))
      (conns_of_trace trace)
  in
  (results, Middlebox.stats mb, flows)

let run_pool_hash ~domains trace =
  Shardpool.with_pool ~domains ~index:Detect.Hash ~mode:Exact ~rules
  @@ fun pool ->
  List.iter
    (fun conn ->
       Shardpool.register pool ~conn_id:conn ~salt0:0 ~enc_chunk:(token_enc (key_for conn)))
    (conns_of_trace trace);
  let seqs =
    map_in_order (fun (conn, wire) -> Shardpool.submit pool ~conn_id:conn wire)
      (wires_of_trace trace)
  in
  let by_seq = Hashtbl.create 64 in
  Shardpool.drain pool ~f:(fun ~seq ~conn_id:_ vs ->
      Hashtbl.replace by_seq seq (obs_of_verdicts vs));
  let results = List.map (Hashtbl.find_opt by_seq) seqs in
  let flows =
    List.map
      (fun conn ->
         (conn, Shardpool.flow_stats pool ~conn_id:conn, Shardpool.is_blocked pool ~conn_id:conn))
      (conns_of_trace trace)
  in
  (results, Shardpool.stats pool, flows)

let arb_trace =
  let print trace =
    String.concat ";" (List.map (fun (c, p) -> Printf.sprintf "%d:%d" c p) trace)
  in
  QCheck.make ~print
    QCheck.Gen.(
      let* n_conns = int_range 1 5 in
      let* len = int_range 1 25 in
      list_size (return len)
        (let* c = int_range 0 (n_conns - 1) in
         let* p = int_range 0 (Array.length payload_pool - 1) in
         return (3 + (c * 5), p)))

let pool_diff_tests =
  let prop domains =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:(Printf.sprintf "pool(Hash)@%d matches sequential Avl middlebox" domains)
         ~count:8 arb_trace
         (fun trace ->
            run_sequential_avl trace = run_pool_hash ~domains trace))
  in
  [ prop 1; prop 2; prop 4 ]

let () =
  Alcotest.run "detect_index"
    [ ("cindex", cindex_tests);
      ("detect-differential", detect_diff_tests);
      ("shardpool-differential", pool_diff_tests) ]
