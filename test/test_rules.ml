open Bbx_rules

let paper_rule_2003296 =
  "alert tcp $EXTERNAL_NET $HTTP_PORTS -> $HOME_NET 1025:5000 ( \
   flow: established,from_server; \
   content: \"Server|3a| nginx/0.\"; offset: 17; depth: 19; \
   content: \"Content-Type|3a| text/html\"; \
   content: \"|3a|80|3b|255.255.255.255\"; sid:2003296; )"

let parser_tests =
  [ Alcotest.test_case "parses the paper's example rule" `Quick (fun () ->
        let r = Parser.parse_rule paper_rule_2003296 in
        Alcotest.(check int) "three contents" 3 (List.length r.Rule.contents);
        let c1 = List.nth r.Rule.contents 0 in
        Alcotest.(check string) "hex decoded" "Server: nginx/0." c1.Rule.pattern;
        Alcotest.(check (option int)) "offset" (Some 17) c1.Rule.offset;
        Alcotest.(check (option int)) "depth" (Some 19) c1.Rule.depth;
        Alcotest.(check string) "binary content" ":80;255.255.255.255"
          (List.nth r.Rule.contents 2).Rule.pattern;
        Alcotest.(check (option int)) "sid" (Some 2003296) r.Rule.sid;
        Alcotest.(check (option string)) "flow" (Some "established,from_server") r.Rule.flow);
    Alcotest.test_case "render/parse round trip" `Quick (fun () ->
        let r = Parser.parse_rule paper_rule_2003296 in
        let r2 = Parser.parse_rule (Rule.to_string r) in
        Alcotest.(check string) "stable" (Rule.to_string r) (Rule.to_string r2));
    Alcotest.test_case "pcre option" `Quick (fun () ->
        let r =
          Parser.parse_rule
            "alert tcp any any -> any any (content:\"login\"; pcre:\"/user=[^&]{50,}/i\"; sid:7;)"
        in
        Alcotest.(check (option string)) "pcre" (Some "/user=[^&]{50,}/i") r.Rule.pcre);
    Alcotest.test_case "semicolons inside quotes" `Quick (fun () ->
        let r =
          Parser.parse_rule "alert tcp any any -> any any (msg:\"a;b\"; content:\"x;y;z;abc\";)"
        in
        Alcotest.(check (option string)) "msg" (Some "a;b") r.Rule.msg;
        Alcotest.(check string) "content" "x;y;z;abc" (List.hd r.Rule.contents).Rule.pattern);
    Alcotest.test_case "nocase attaches to preceding content" `Quick (fun () ->
        let r =
          Parser.parse_rule
            "alert tcp any any -> any any (content:\"AAA\"; content:\"BBB\"; nocase;)"
        in
        Alcotest.(check bool) "first not nocase" false (List.nth r.Rule.contents 0).Rule.nocase;
        Alcotest.(check bool) "second nocase" true (List.nth r.Rule.contents 1).Rule.nocase);
    Alcotest.test_case "syntax errors" `Quick (fun () ->
        let bad s = match Parser.parse_rule s with
          | exception Parser.Syntax_error _ -> true
          | _ -> false
        in
        Alcotest.(check bool) "no paren" true (bad "alert tcp any any -> any any");
        Alcotest.(check bool) "bad action" true (bad "alart tcp any any -> any any ()");
        Alcotest.(check bool) "short header" true (bad "alert tcp any -> any ()");
        Alcotest.(check bool) "modifier before content" true
          (bad "alert tcp any any -> any any (offset:3; content:\"x\";)"));
    Alcotest.test_case "ruleset skips comments and blanks" `Quick (fun () ->
        let rules = Parser.parse_ruleset
            ("# comment\n\n" ^ paper_rule_2003296 ^ "\n# another\n") in
        Alcotest.(check int) "one rule" 1 (List.length rules));
  ]

let classify_tests =
  [ Alcotest.test_case "single keyword = Protocol I" `Quick (fun () ->
        let r = Rule.make [ Rule.make_content "watermark-xyz" ] in
        Alcotest.(check bool) "I" true (Classify.classify r = Classify.Protocol_I));
    Alcotest.test_case "offsets push to Protocol II" `Quick (fun () ->
        let r = Rule.make [ Rule.make_content ~offset:4 "keyword1" ] in
        Alcotest.(check bool) "II" true (Classify.classify r = Classify.Protocol_II));
    Alcotest.test_case "multiple keywords = Protocol II" `Quick (fun () ->
        let r = Rule.make [ Rule.make_content "aaaa"; Rule.make_content "bbbb" ] in
        Alcotest.(check bool) "II" true (Classify.classify r = Classify.Protocol_II));
    Alcotest.test_case "pcre = Protocol III" `Quick (fun () ->
        let r = Rule.make ~pcre:"/x+/" [ Rule.make_content "selector" ] in
        Alcotest.(check bool) "III" true (Classify.classify r = Classify.Protocol_III));
    Alcotest.test_case "support is cumulative" `Quick (fun () ->
        let r1 = Rule.make [ Rule.make_content "k" ] in
        Alcotest.(check bool) "II supports I" true (Classify.supported_by Classify.Protocol_II r1);
        Alcotest.(check bool) "III supports I" true (Classify.supported_by Classify.Protocol_III r1));
  ]

let eval_tests =
  [ Alcotest.test_case "paper rule matches its own traffic" `Quick (fun () ->
        let r = Parser.parse_rule paper_rule_2003296 in
        let payload =
          "HTTP/1.0 200 OK\r\nServer: nginx/0.6.31\r\nContent-Type: text/html\r\n\
           X-Pad: :80;255.255.255.255\r\n\r\n<html></html>"
        in
        (* "Server: nginx/0." starts at offset 17 in this payload *)
        Alcotest.(check bool) "matches" true (Classify.matches_plaintext r payload));
    Alcotest.test_case "offset constraint rejects shifted match" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"needle\"; offset:10; depth:6;)" in
        Alcotest.(check bool) "at 10" true
          (Classify.matches_plaintext r ("0123456789" ^ "needle"));
        Alcotest.(check bool) "at 0" false (Classify.matches_plaintext r "needle0123456789"));
    Alcotest.test_case "distance/within relative constraints" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"AB\"; content:\"CD\"; distance:2; within:4;)" in
        Alcotest.(check bool) "AB..CD ok" true (Classify.matches_plaintext r "ABxxCDzz");
        Alcotest.(check bool) "too close" false (Classify.matches_plaintext r "ABCDzzzz");
        Alcotest.(check bool) "too far" false (Classify.matches_plaintext r "ABxxxxxxxxCD"));
    Alcotest.test_case "backtracks over candidate positions" `Quick (fun () ->
        (* first "AB" is too close to CD; the second works *)
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"AB\"; content:\"CD\"; distance:2;)" in
        Alcotest.(check bool) "matches via later candidate" true
          (Classify.matches_plaintext r "ABCD AB..CD"));
    Alcotest.test_case "nocase content" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"select\"; nocase;)" in
        Alcotest.(check bool) "matches" true (Classify.matches_plaintext r "UNION SELECT"));
    Alcotest.test_case "pcre gates the match" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"id=\"; pcre:\"/id=[0-9]+'/\";)" in
        Alcotest.(check bool) "sqli" true (Classify.matches_plaintext r "GET /?id=42'--");
        Alcotest.(check bool) "benign" false (Classify.matches_plaintext r "GET /?id=42"));
  ]

let dataset_tests =
  let check_fractions ds n tol =
    let rules = Datasets.generate ds ~n in
    let f1, f2, f3 = Classify.fractions rules in
    let p1, p2, p3 = Datasets.paper_fractions ds in
    let close a b = Float.abs (a -. b) <= tol in
    Alcotest.(check bool)
      (Printf.sprintf "%s I: got %.3f want %.3f" (Datasets.name ds) f1 p1) true (close f1 p1);
    Alcotest.(check bool)
      (Printf.sprintf "%s II: got %.3f want %.3f" (Datasets.name ds) f2 p2) true (close f2 p2);
    Alcotest.(check bool)
      (Printf.sprintf "%s III: got %.3f want %.3f" (Datasets.name ds) f3 p3) true (close f3 p3)
  in
  List.map
    (fun ds ->
       Alcotest.test_case (Datasets.name ds) `Quick (fun () -> check_fractions ds 500 0.01))
    Datasets.all
  @ [ Alcotest.test_case "deterministic given seed" `Quick (fun () ->
        let a = Datasets.generate ~seed:"s" Datasets.Snort_community ~n:50 in
        let b = Datasets.generate ~seed:"s" Datasets.Snort_community ~n:50 in
        Alcotest.(check (list string)) "same"
          (List.map Rule.to_string a) (List.map Rule.to_string b));
      Alcotest.test_case "generated rules re-parse" `Quick (fun () ->
          List.iter
            (fun ds ->
               List.iter
                 (fun r ->
                    let r2 = Parser.parse_rule (Rule.to_string r) in
                    Alcotest.(check string) "round trip" (Rule.to_string r) (Rule.to_string r2))
                 (Datasets.generate ds ~n:30))
            Datasets.all);
      Alcotest.test_case "3k rules yield ~9-10k keywords (paper)" `Quick (fun () ->
          let rules = Datasets.generate Datasets.Emerging_threats ~n:3000 in
          let kws = List.length (Datasets.distinct_keywords rules) in
          Alcotest.(check bool) (Printf.sprintf "got %d" kws) true
            (kws >= 7000 && kws <= 12000));
    ]

let () =
  Alcotest.run "rules"
    [ ("parser", parser_tests);
      ("classify", classify_tests);
      ("plaintext-eval", eval_tests);
      ("datasets", dataset_tests);
    ]
