open Bbx_rules

let paper_rule_2003296 =
  "alert tcp $EXTERNAL_NET $HTTP_PORTS -> $HOME_NET 1025:5000 ( \
   flow: established,from_server; \
   content: \"Server|3a| nginx/0.\"; offset: 17; depth: 19; \
   content: \"Content-Type|3a| text/html\"; \
   content: \"|3a|80|3b|255.255.255.255\"; sid:2003296; )"

let parser_tests =
  [ Alcotest.test_case "parses the paper's example rule" `Quick (fun () ->
        let r = Parser.parse_rule paper_rule_2003296 in
        Alcotest.(check int) "three contents" 3 (List.length r.Rule.contents);
        let c1 = List.nth r.Rule.contents 0 in
        Alcotest.(check string) "hex decoded" "Server: nginx/0." c1.Rule.pattern;
        Alcotest.(check (option int)) "offset" (Some 17) c1.Rule.offset;
        Alcotest.(check (option int)) "depth" (Some 19) c1.Rule.depth;
        Alcotest.(check string) "binary content" ":80;255.255.255.255"
          (List.nth r.Rule.contents 2).Rule.pattern;
        Alcotest.(check (option int)) "sid" (Some 2003296) r.Rule.sid;
        Alcotest.(check (option string)) "flow" (Some "established,from_server") r.Rule.flow);
    Alcotest.test_case "render/parse round trip" `Quick (fun () ->
        let r = Parser.parse_rule paper_rule_2003296 in
        let r2 = Parser.parse_rule (Rule.to_string r) in
        Alcotest.(check string) "stable" (Rule.to_string r) (Rule.to_string r2));
    Alcotest.test_case "pcre option" `Quick (fun () ->
        let r =
          Parser.parse_rule
            "alert tcp any any -> any any (content:\"login\"; pcre:\"/user=[^&]{50,}/i\"; sid:7;)"
        in
        Alcotest.(check (option string)) "pcre" (Some "/user=[^&]{50,}/i") r.Rule.pcre);
    Alcotest.test_case "semicolons inside quotes" `Quick (fun () ->
        let r =
          Parser.parse_rule "alert tcp any any -> any any (msg:\"a;b\"; content:\"x;y;z;abc\";)"
        in
        Alcotest.(check (option string)) "msg" (Some "a;b") r.Rule.msg;
        Alcotest.(check string) "content" "x;y;z;abc" (List.hd r.Rule.contents).Rule.pattern);
    Alcotest.test_case "nocase attaches to preceding content" `Quick (fun () ->
        let r =
          Parser.parse_rule
            "alert tcp any any -> any any (content:\"AAA\"; content:\"BBB\"; nocase;)"
        in
        Alcotest.(check bool) "first not nocase" false (List.nth r.Rule.contents 0).Rule.nocase;
        Alcotest.(check bool) "second nocase" true (List.nth r.Rule.contents 1).Rule.nocase);
    Alcotest.test_case "syntax errors" `Quick (fun () ->
        let bad s = match Parser.parse_rule s with
          | exception Parser.Syntax_error _ -> true
          | _ -> false
        in
        Alcotest.(check bool) "no paren" true (bad "alert tcp any any -> any any");
        Alcotest.(check bool) "bad action" true (bad "alart tcp any any -> any any ()");
        Alcotest.(check bool) "short header" true (bad "alert tcp any -> any ()");
        Alcotest.(check bool) "modifier before content" true
          (bad "alert tcp any any -> any any (offset:3; content:\"x\";)"));
    Alcotest.test_case "ruleset skips comments and blanks" `Quick (fun () ->
        let rules = Parser.parse_ruleset
            ("# comment\n\n" ^ paper_rule_2003296 ^ "\n# another\n") in
        Alcotest.(check int) "one rule" 1 (List.length rules));
  ]

let classify_tests =
  [ Alcotest.test_case "single keyword = Protocol I" `Quick (fun () ->
        let r = Rule.make [ Rule.make_content "watermark-xyz" ] in
        Alcotest.(check bool) "I" true (Classify.classify r = Classify.Protocol_I));
    Alcotest.test_case "offsets push to Protocol II" `Quick (fun () ->
        let r = Rule.make [ Rule.make_content ~offset:4 "keyword1" ] in
        Alcotest.(check bool) "II" true (Classify.classify r = Classify.Protocol_II));
    Alcotest.test_case "multiple keywords = Protocol II" `Quick (fun () ->
        let r = Rule.make [ Rule.make_content "aaaa"; Rule.make_content "bbbb" ] in
        Alcotest.(check bool) "II" true (Classify.classify r = Classify.Protocol_II));
    Alcotest.test_case "pcre = Protocol III" `Quick (fun () ->
        let r = Rule.make ~pcre:"/x+/" [ Rule.make_content "selector" ] in
        Alcotest.(check bool) "III" true (Classify.classify r = Classify.Protocol_III));
    Alcotest.test_case "support is cumulative" `Quick (fun () ->
        let r1 = Rule.make [ Rule.make_content "k" ] in
        Alcotest.(check bool) "II supports I" true (Classify.supported_by Classify.Protocol_II r1);
        Alcotest.(check bool) "III supports I" true (Classify.supported_by Classify.Protocol_III r1));
  ]

let eval_tests =
  [ Alcotest.test_case "paper rule matches its own traffic" `Quick (fun () ->
        let r = Parser.parse_rule paper_rule_2003296 in
        let payload =
          "HTTP/1.0 200 OK\r\nServer: nginx/0.6.31\r\nContent-Type: text/html\r\n\
           X-Pad: :80;255.255.255.255\r\n\r\n<html></html>"
        in
        (* "Server: nginx/0." starts at offset 17 in this payload *)
        Alcotest.(check bool) "matches" true (Classify.matches_plaintext r payload));
    Alcotest.test_case "offset constraint rejects shifted match" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"needle\"; offset:10; depth:6;)" in
        Alcotest.(check bool) "at 10" true
          (Classify.matches_plaintext r ("0123456789" ^ "needle"));
        Alcotest.(check bool) "at 0" false (Classify.matches_plaintext r "needle0123456789"));
    Alcotest.test_case "distance/within relative constraints" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"AB\"; content:\"CD\"; distance:2; within:4;)" in
        Alcotest.(check bool) "AB..CD ok" true (Classify.matches_plaintext r "ABxxCDzz");
        Alcotest.(check bool) "too close" false (Classify.matches_plaintext r "ABCDzzzz");
        Alcotest.(check bool) "too far" false (Classify.matches_plaintext r "ABxxxxxxxxCD"));
    Alcotest.test_case "backtracks over candidate positions" `Quick (fun () ->
        (* first "AB" is too close to CD; the second works *)
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"AB\"; content:\"CD\"; distance:2;)" in
        Alcotest.(check bool) "matches via later candidate" true
          (Classify.matches_plaintext r "ABCD AB..CD"));
    Alcotest.test_case "nocase content" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"select\"; nocase;)" in
        Alcotest.(check bool) "matches" true (Classify.matches_plaintext r "UNION SELECT"));
    Alcotest.test_case "pcre gates the match" `Quick (fun () ->
        let r = Parser.parse_rule
            "alert tcp any any -> any any (content:\"id=\"; pcre:\"/id=[0-9]+'/\";)" in
        Alcotest.(check bool) "sqli" true (Classify.matches_plaintext r "GET /?id=42'--");
        Alcotest.(check bool) "benign" false (Classify.matches_plaintext r "GET /?id=42"));
  ]

let dataset_tests =
  let check_fractions ds n tol =
    let rules = Datasets.generate ds ~n in
    let f1, f2, f3 = Classify.fractions rules in
    let p1, p2, p3 = Datasets.paper_fractions ds in
    let close a b = Float.abs (a -. b) <= tol in
    Alcotest.(check bool)
      (Printf.sprintf "%s I: got %.3f want %.3f" (Datasets.name ds) f1 p1) true (close f1 p1);
    Alcotest.(check bool)
      (Printf.sprintf "%s II: got %.3f want %.3f" (Datasets.name ds) f2 p2) true (close f2 p2);
    Alcotest.(check bool)
      (Printf.sprintf "%s III: got %.3f want %.3f" (Datasets.name ds) f3 p3) true (close f3 p3)
  in
  List.map
    (fun ds ->
       Alcotest.test_case (Datasets.name ds) `Quick (fun () -> check_fractions ds 500 0.01))
    Datasets.all
  @ [ Alcotest.test_case "deterministic given seed" `Quick (fun () ->
        let a = Datasets.generate ~seed:"s" Datasets.Snort_community ~n:50 in
        let b = Datasets.generate ~seed:"s" Datasets.Snort_community ~n:50 in
        Alcotest.(check (list string)) "same"
          (List.map Rule.to_string a) (List.map Rule.to_string b));
      Alcotest.test_case "generated rules re-parse" `Quick (fun () ->
          List.iter
            (fun ds ->
               List.iter
                 (fun r ->
                    let r2 = Parser.parse_rule (Rule.to_string r) in
                    Alcotest.(check string) "round trip" (Rule.to_string r) (Rule.to_string r2))
                 (Datasets.generate ds ~n:30))
            Datasets.all);
      Alcotest.test_case "3k rules yield ~9-10k keywords (paper)" `Quick (fun () ->
          let rules = Datasets.generate Datasets.Emerging_threats ~n:3000 in
          let kws = List.length (Datasets.distinct_keywords rules) in
          Alcotest.(check bool) (Printf.sprintf "got %d" kws) true
            (kws >= 7000 && kws <= 12000));
    ]

(* ---------- real-shape mixed ruleset (tiered-engine corpus) ---------- *)

let real_shape_tests =
  let rules = Datasets.real_shape ~n:200 () in
  [ Alcotest.test_case "class mix pinned to real_shape_mix" `Quick (fun () ->
        let f1, f2, f3 = Classify.fractions rules in
        let m1, m2 = Datasets.real_shape_mix in
        (* fractions are cumulative (II supports I, III supports all) *)
        let close a b = Float.abs (a -. b) <= 0.01 in
        Alcotest.(check bool) (Printf.sprintf "I: got %.3f want %.3f" f1 m1)
          true (close f1 m1);
        Alcotest.(check bool)
          (Printf.sprintf "II: got %.3f want %.3f" f2 (m1 +. m2))
          true (close f2 (m1 +. m2));
        Alcotest.(check bool) (Printf.sprintf "III: got %.3f want 1.0" f3)
          true (close f3 1.0));
    Alcotest.test_case "deterministic given seed" `Quick (fun () ->
        let a = Datasets.real_shape ~seed:"s" ~n:50 () in
        let b = Datasets.real_shape ~seed:"s" ~n:50 () in
        Alcotest.(check (list string)) "same"
          (List.map Rule.to_string a) (List.map Rule.to_string b));
    Alcotest.test_case "rules re-parse with class preserved" `Quick (fun () ->
        List.iter
          (fun r ->
             let r2 = Parser.parse_rule (Rule.to_string r) in
             Alcotest.(check string) "round trip" (Rule.to_string r)
               (Rule.to_string r2);
             Alcotest.(check bool) "class preserved" true
               (Classify.classify r = Classify.classify r2))
          rules);
    Alcotest.test_case "every pcre ships a witness that matches it" `Quick
      (fun () ->
        let seen = ref 0 in
        List.iter
          (fun r ->
             match r.Rule.pcre with
             | None -> ()
             | Some p ->
               incr seen;
               (match Datasets.pcre_witness p with
                | None -> Alcotest.fail ("no witness for pcre " ^ p)
                | Some w ->
                  (* witness must match mid-stream, not only anchored *)
                  Alcotest.(check bool)
                    (Printf.sprintf "%s matches its witness %S" p w)
                    true
                    (Bbx_regex.Regex.matches (Bbx_regex.Regex.parse_pcre p)
                       ("GET /?q=" ^ w ^ " HTTP/1.1"))))
          rules;
        Alcotest.(check bool) "decrypt-class rules present" true (!seen > 0));
  ]

(* ---------- differential: backtracking solver vs exhaustive tuples ----------

   [Classify.contents_satisfiable] prunes with incremental backtracking;
   the reference below enumerates every full tuple of candidate positions
   (cartesian product) and checks the constraint chain on each, so any
   pruning bug shows up as a disagreement.  Inputs stay tiny (payload
   <= 24 bytes, <= 3 one/two-byte contents) to keep the product small. *)

let reference_satisfiable ~candidates contents =
  let rec tuples = function
    | [] -> [ [] ]
    | l :: rest ->
      List.concat_map (fun q -> List.map (fun t -> q :: t) (tuples rest)) l
  in
  let rec chain_ok cs qs prev_end =
    match (cs, qs) with
    | [], [] -> true
    | (c : Rule.content) :: cs', q :: qs' ->
      let len = String.length c.Rule.pattern in
      let abs_ok =
        (match c.Rule.offset with None -> true | Some o -> q >= o)
        && (match c.Rule.depth with
            | None -> true
            | Some d -> q + len <= Option.value c.Rule.offset ~default:0 + d)
      in
      let rel_ok =
        match (c.Rule.distance, c.Rule.within) with
        | None, None -> true
        | dist, w ->
          (match prev_end with
           | None -> true (* relative modifier on the first content: no anchor *)
           | Some pe ->
             let dist = Option.value dist ~default:0 in
             q >= pe + dist
             && (match w with None -> true | Some w -> q + len <= pe + dist + w))
      in
      abs_ok && rel_ok && chain_ok cs' qs' (Some (q + len))
    | _ -> false
  in
  List.exists
    (fun qs -> chain_ok contents qs None)
    (tuples (List.map candidates contents))

let gen_case =
  let open QCheck.Gen in
  let gen_char = oneofl [ 'a'; 'b'; 'A'; ' ' ] in
  let gen_payload = map (fun l -> String.init (List.length l) (List.nth l))
      (list_size (int_bound 24) gen_char) in
  let gen_pattern =
    map (fun l -> String.init (List.length l) (List.nth l))
      (list_size (int_range 1 2) (oneofl [ 'a'; 'b' ]))
  in
  let gen_opt g = oneof [ return None; map Option.some g ] in
  let gen_content =
    gen_pattern >>= fun pattern ->
    bool >>= fun nocase ->
    gen_opt (int_bound 5) >>= fun offset ->
    gen_opt (int_range 1 6) >>= fun depth ->
    gen_opt (int_bound 4) >>= fun distance ->
    gen_opt (int_range 1 8) >>= fun within ->
    return (Rule.make_content ~nocase ?offset ?depth ?distance ?within pattern)
  in
  pair (list_size (int_range 1 3) gen_content) gen_payload

let print_case (contents, payload) =
  Printf.sprintf "rule: %s payload: %S"
    (Rule.to_string (Rule.make contents)) payload

let differential_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500
         ~name:"solver agrees with exhaustive tuple enumeration"
         (QCheck.make ~print:print_case gen_case)
         (fun (contents, payload) ->
            let candidates (c : Rule.content) =
              Classify.keyword_match_positions ~nocase:c.Rule.nocase
                c.Rule.pattern payload
            in
            Classify.contents_satisfiable ~candidates contents
            = reference_satisfiable ~candidates contents));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500
         ~name:"matches_plaintext is the solver on pcre-free rules"
         (QCheck.make ~print:print_case gen_case)
         (fun (contents, payload) ->
            let candidates (c : Rule.content) =
              Classify.keyword_match_positions ~nocase:c.Rule.nocase
                c.Rule.pattern payload
            in
            Classify.matches_plaintext (Rule.make contents) payload
            = Classify.contents_satisfiable ~candidates contents));
  ]

let () =
  Alcotest.run "rules"
    [ ("parser", parser_tests);
      ("classify", classify_tests);
      ("plaintext-eval", eval_tests);
      ("datasets", dataset_tests);
      ("real-shape", real_shape_tests);
      ("differential", differential_tests);
    ]
