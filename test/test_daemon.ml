(* blindboxd loopback tests.

   The core is a differential: the same pre-encrypted wire deliveries go
   through a daemon over a real Unix-domain socket and through an
   in-process reference middlebox under the same connection key, and the
   two must agree verdict for verdict — including blocked-connection
   semantics (the daemon answers [Dropped] where the in-process API
   raises [Invalid_argument]) and a mid-stream rule update + salt reset.
   The rest is hardening: malformed frames must kill at most their own
   connection, never the daemon. *)

module Daemon = Bbx_daemon.Daemon
module Client = Bbx_daemon.Client
module Loadgen = Bbx_daemon.Loadgen
module Wire = Bbx_wire.Wire
module Dpienc = Bbx_dpienc.Dpienc
module Rule = Bbx_rules.Rule
module Middlebox = Bbx_mbox.Middlebox
module Shardpool = Bbx_mbox.Shardpool

let rules =
  [ Rule.make ~sid:1 ~msg:"kw one" [ Rule.make_content "alertkw1" ];
    Rule.make ~sid:2 [ Rule.make_content "otherkw2" ];
    Rule.make ~action:Rule.Drop ~sid:3 [ Rule.make_content "dropkw33" ] ]

let temp_endpoint =
  let n = ref 0 in
  fun () ->
    incr n;
    Daemon.Unix_path
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "bbxd-test-%d-%d.sock" (Unix.getpid ()) !n))

let with_daemon ?(rules = rules) ?(mode = Dpienc.Exact) ?(domains = 2) ?tier f =
  let endpoint = temp_endpoint () in
  let handle =
    Daemon.start (Daemon.config ~mode ~domains ~endpoint ~rules ?tier ())
  in
  Fun.protect ~finally:(fun () -> Daemon.stop handle) (fun () -> f endpoint)

(* (sid, via) pairs, the daemon's view and the engine's view *)
let wire_sigs verdicts =
  List.map (fun v -> (v.Wire.v_sid, v.Wire.v_via)) verdicts

let engine_sigs verdicts =
  List.map
    (fun v ->
      (Option.value v.Bbx_mbox.Engine.rule.Rule.sid ~default:0,
       v.Bbx_mbox.Engine.via))
    verdicts

let sig_list = Alcotest.(list (pair int (testable
  (fun fmt v -> Format.pp_print_string fmt
     (match v with `Exact_match -> "exact" | `Probable_cause -> "probable"))
  ( = ))))

(* pre-encrypt one connection's deliveries so the identical wire bytes
   replay against both middleboxes *)
let wires_for sender payloads =
  List.rev
    (List.fold_left
       (fun acc p -> Dpienc.encode_tokens (Dpienc.sender_encrypt sender (Bbx_tokenizer.Tokenizer.delimiter p)) :: acc)
       [] payloads)

let differential_vs_middlebox () =
  with_daemon @@ fun endpoint ->
  let s = Client.establish endpoint ~mode:Dpienc.Exact ~salt0:0 ~seed:"diff" in
  Fun.protect ~finally:(fun () -> Client.close s.Client.sc_client)
  @@ fun () ->
  let reference = Middlebox.create ~mode:Dpienc.Exact ~rules () in
  Middlebox.register reference ~conn_id:0 ~salt0:0
    ~enc_chunk:(Dpienc.token_enc s.Client.sc_key);
  let sender = Dpienc.sender_create Dpienc.Exact s.Client.sc_key ~salt0:0 in
  let payloads =
    [ "GET / HTTP/1.1 benign";
      "q=alertkw1 in the middle";
      "alertkw1 twice alertkw1 and otherkw2";
      "still benign traffic";
      "now trip the drop rule dropkw33 here";   (* blocks the connection *)
      "after the block: alertkw1";               (* daemon: Dropped *)
      "and again" ]
  in
  let wires = wires_for sender payloads in
  List.iteri
    (fun i wire ->
      Client.send_records s.Client.sc_client ~seq:i wire;
      let seq, status, verdicts = Client.recv_verdict s.Client.sc_client in
      Alcotest.(check int) "seq echo" i seq;
      match Middlebox.process_wire reference ~conn_id:0 wire with
      | ref_verdicts ->
        Alcotest.(check bool) "not dropped" true (status <> Wire.Dropped);
        Alcotest.check sig_list
          (Printf.sprintf "verdicts for delivery %d" i)
          (engine_sigs ref_verdicts) (wire_sigs verdicts)
      | exception Invalid_argument _ ->
        (* in-process: blocked connections raise; daemon: Dropped *)
        Alcotest.(check bool)
          (Printf.sprintf "delivery %d dropped on both" i)
          true (status = Wire.Dropped && verdicts = []))
    wires;
  Alcotest.(check bool) "reference blocked" true
    (Middlebox.is_blocked reference ~conn_id:0);
  (* aggregate stats agree field for field *)
  let ms = Middlebox.stats reference in
  let ds = Client.stats s.Client.sc_client in
  Alcotest.(check int) "tokens" ms.Middlebox.total_tokens ds.Wire.s_total_tokens;
  Alcotest.(check int) "hits" ms.Middlebox.total_keyword_hits ds.Wire.s_total_keyword_hits;
  Alcotest.(check int) "alerts" ms.Middlebox.alerts ds.Wire.s_alerts;
  Alcotest.(check int) "blocked" ms.Middlebox.blocked ds.Wire.s_blocked

(* Mid-stream rule update + salt reset, against a 1-domain Shardpool
   reference (Middlebox's ruleset is fixed; Shardpool.process_wire has
   identical per-delivery semantics and supports live updates). *)
let differential_update_and_reset () =
  with_daemon @@ fun endpoint ->
  let s = Client.establish endpoint ~mode:Dpienc.Exact ~salt0:0 ~seed:"upd" in
  Fun.protect ~finally:(fun () -> Client.close s.Client.sc_client)
  @@ fun () ->
  Shardpool.with_pool ~domains:1 ~mode:Dpienc.Exact ~rules
  @@ fun reference ->
  Shardpool.register reference ~conn_id:0 ~salt0:0
    ~enc_chunk:(Dpienc.token_enc s.Client.sc_key);
  let sender = Dpienc.sender_create Dpienc.Exact s.Client.sc_key ~salt0:0 in
  let both i wire =
    Client.send_records s.Client.sc_client ~seq:i wire;
    let _, _, verdicts = Client.recv_verdict s.Client.sc_client in
    let ref_verdicts = Shardpool.process_wire reference ~conn_id:0 wire in
    Alcotest.check sig_list
      (Printf.sprintf "verdicts for delivery %d" i)
      (engine_sigs ref_verdicts) (wire_sigs verdicts)
  in
  List.iteri both (wires_for sender [ "hello alertkw1"; "and otherkw2 too" ]);
  (* live update: drop sid 2, add sid 4; then reset salts on both sides *)
  let added_rule = Rule.make ~sid:4 [ Rule.make_content "newkw444" ] in
  let new_rules =
    List.filter (fun r -> r.Rule.sid <> Some 2) rules @ [ added_rule ]
  in
  let added, outstanding =
    Client.update_rules s.Client.sc_client ~remove_sids:[ 2 ]
      ~add:[ added_rule ]
      ~pairs:(Client.pairs_for ~key:s.Client.sc_key new_rules)
  in
  Alcotest.(check int) "added" 1 added;
  Alcotest.(check int) "no outstanding verdicts" 0 (List.length outstanding);
  Shardpool.update_rules reference ~conn_id:0 ~remove_sids:[ 2 ]
    ~add:[ added_rule ] ~rules:new_rules
    ~enc_chunk:(Dpienc.token_enc s.Client.sc_key);
  let salt0' = Dpienc.sender_reset sender in
  Client.salt_reset s.Client.sc_client ~salt0:salt0';
  Shardpool.reset_conn reference ~conn_id:0 ~salt0:salt0';
  List.iteri
    (fun i w -> both (100 + i) w)
    (wires_for sender
       [ "newkw444 must now alert";
         "otherkw2 must now be clean";
         "alertkw1 still alerts" ])

(* ---------- tiered escalation over the wire ----------

   A feature_tiered client ships each delivery's sealed SSL record
   (RECORD_STREAM) before its token stream and gets VERDICT_TIERED
   frames back, whose detail byte says which protocol fired.  The same
   deliveries replay against an in-process Middlebox at the same tier,
   and a legacy client (features = 0) on the same daemon must keep
   getting legacy VERDICT frames with via-inferred details. *)

module Classify = Bbx_rules.Classify
module Record = Bbx_tls.Record

let tiered_rules =
  [ Rule.make ~sid:1 ~msg:"exact" [ Rule.make_content "alertkw1" ];
    Rule.make ~sid:2 ~msg:"composite"
      [ Rule.make_content "firstkey"; Rule.make_content "secondkey" ];
    Bbx_rules.Parser.parse_rule
      "alert tcp any any -> any any (msg:\"decrypt\"; content:\"userquery\"; \
       pcre:\"/userquery=[0-9]+'/\"; sid:3;)" ]

let tiered_payloads =
  [ "x=alertkw1 benign";
    "y=firstkey then z=secondkey";
    "GET /?userquery=42' HTTP/1.1";
    "plain benign traffic" ]

let detail_testable =
  Alcotest.testable
    (fun fmt d -> Format.pp_print_string fmt (Bbx_mbox.Engine.detail_name d))
    ( = )

let detail_list = Alcotest.(list (pair int detail_testable))

let wire_details verdicts =
  List.map (fun v -> (v.Wire.v_sid, v.Wire.v_detail)) verdicts

let engine_details verdicts =
  List.map
    (fun v ->
      (Option.value v.Bbx_mbox.Engine.rule.Rule.sid ~default:0,
       v.Bbx_mbox.Engine.detail))
    verdicts

let tiered_differential () =
  List.iter
    (fun tier ->
      with_daemon ~rules:tiered_rules ~mode:Dpienc.Probable ~tier
      @@ fun endpoint ->
      let s =
        Client.establish ~features:Wire.feature_tiered endpoint
          ~mode:Dpienc.Probable ~salt0:0
          ~seed:(Printf.sprintf "tiered-%d" (Classify.rank tier))
      in
      Fun.protect ~finally:(fun () -> Client.close s.Client.sc_client)
      @@ fun () ->
      let reference =
        Middlebox.create ~tier ~mode:Dpienc.Probable ~rules:tiered_rules ()
      in
      Middlebox.register reference ~conn_id:0 ~salt0:0
        ~enc_chunk:(Dpienc.token_enc s.Client.sc_key);
      let sender = Dpienc.sender_create Dpienc.Probable s.Client.sc_key ~salt0:0 in
      (* two same-keyed writers so daemon and reference each get a
         well-sequenced copy of the record stream *)
      let writer_d = Record.create ~key:s.Client.sc_k_ssl ~direction:"client->server" () in
      let writer_r = Record.create ~key:s.Client.sc_k_ssl ~direction:"client->server" () in
      let all = ref [] in
      List.iteri
        (fun i payload ->
          let wire =
            Dpienc.encode_tokens
              (Dpienc.sender_encrypt sender ~k_ssl:s.Client.sc_k_ssl
                 (Bbx_tokenizer.Tokenizer.delimiter payload))
          in
          (* record first, tokens second: same FIFO, stream order *)
          Client.send_record s.Client.sc_client ~seq:i
            (Record.seal writer_d ("T" ^ payload));
          Client.send_records s.Client.sc_client ~seq:i wire;
          let seq, _status, verdicts = Client.recv_verdict s.Client.sc_client in
          Alcotest.(check int) "seq echo" i seq;
          Middlebox.record_stream reference ~conn_id:0
            (Record.seal writer_r ("T" ^ payload));
          let ref_verdicts = Middlebox.process_wire reference ~conn_id:0 wire in
          Alcotest.check detail_list
            (Printf.sprintf "tier %d delivery %d" (Classify.rank tier) i)
            (engine_details ref_verdicts)
            (wire_details verdicts);
          all := !all @ wire_details verdicts)
        tiered_payloads;
      (* absolute expectation per tier, not just reference parity *)
      let expected =
        match Classify.rank tier with
        | 1 -> [ (1, `Exact_hit) ]
        | 2 -> [ (1, `Exact_hit); (2, `Composite_match) ]
        | _ -> [ (1, `Exact_hit); (2, `Composite_match); (3, `Regex_match) ]
      in
      Alcotest.check detail_list
        (Printf.sprintf "tier %d fired classes" (Classify.rank tier))
        expected
        (List.sort compare !all))
    [ Classify.Protocol_I; Classify.Protocol_II; Classify.Protocol_III ]

(* A features=0 client on the same daemon: verdicts arrive as legacy
   VERDICT frames, so the decoded detail is via-inferred — the composite
   rule reads back as [`Exact_hit], never [`Composite_match], which is
   exactly what distinguishes the frame types on the client side. *)
let tiered_legacy_fallback () =
  with_daemon ~rules:tiered_rules ~mode:Dpienc.Probable @@ fun endpoint ->
  let s = Client.establish endpoint ~mode:Dpienc.Probable ~salt0:0 ~seed:"leg" in
  Fun.protect ~finally:(fun () -> Client.close s.Client.sc_client)
  @@ fun () ->
  Alcotest.(check int) "legacy HELLO carries no feature bits" 0
    s.Client.sc_features;
  let sender = Dpienc.sender_create Dpienc.Probable s.Client.sc_key ~salt0:0 in
  let all = ref [] in
  List.iteri
    (fun i payload ->
      Client.send_records s.Client.sc_client ~seq:i
        (Dpienc.encode_tokens
           (Dpienc.sender_encrypt sender ~k_ssl:s.Client.sc_k_ssl
              (Bbx_tokenizer.Tokenizer.delimiter payload)));
      let _, _, verdicts = Client.recv_verdict s.Client.sc_client in
      all := !all @ wire_details verdicts)
    [ "x=alertkw1 benign"; "y=firstkey then z=secondkey" ];
  Alcotest.check detail_list "details inferred from via, not carried"
    [ (1, `Exact_hit); (2, `Exact_hit) ]
    (List.sort compare !all)

(* Two clients; one dies mid-stream, the other must be unaffected. *)
let isolation () =
  with_daemon @@ fun endpoint ->
  let a = Client.establish endpoint ~mode:Dpienc.Exact ~salt0:0 ~seed:"a" in
  let b = Client.establish endpoint ~mode:Dpienc.Exact ~salt0:0 ~seed:"b" in
  Fun.protect
    ~finally:(fun () ->
      Client.close a.Client.sc_client;
      Client.close b.Client.sc_client)
  @@ fun () ->
  let sender_b = Dpienc.sender_create Dpienc.Exact b.Client.sc_key ~salt0:0 in
  (* a sends garbage records — its connection must die with an ERROR *)
  Client.send_records a.Client.sc_client ~seq:0 "garbage that is no record";
  Alcotest.(check bool) "a killed" true
    (match Client.recv_verdict a.Client.sc_client with
     | exception Client.Server_error _ -> true
     | exception End_of_file -> true
     | _ -> false);
  (* b still works end to end *)
  List.iteri
    (fun i wire ->
      Client.send_records b.Client.sc_client ~seq:i wire;
      let _, status, verdicts = Client.recv_verdict b.Client.sc_client in
      if i = 0 then
        Alcotest.(check bool) "b alerts" true
          (status = Wire.Alerts && wire_sigs verdicts = [ (1, `Exact_match) ])
      else Alcotest.(check bool) "b clean" true (status = Wire.Clean))
    (wires_for sender_b [ "alertkw1 here"; "benign" ])

(* Malformed-frame fuzz: every one of these byte strings goes to a fresh
   connection; the daemon must answer with an ERROR frame (or close that
   socket) and still serve a healthy client afterwards. *)
let malformed_fuzz () =
  with_daemon @@ fun endpoint ->
  let oversized =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 0x7FFFFFFFl;
    Bytes.to_string b
  in
  let frame_of_payload p =
    let b = Buffer.create 16 in
    let len = Bytes.create 4 in
    Bytes.set_int32_be len 0 (Int32.of_int (String.length p));
    Buffer.add_bytes b len; Buffer.add_string b p;
    Buffer.contents b
  in
  let drbg = Bbx_crypto.Drbg.create "daemon-fuzz" in
  let cases =
    [ "";                                        (* close without a byte *)
      "\x00";                                    (* truncated length *)
      "\x00\x00\x00\x00";                        (* zero-length payload *)
      oversized;                                 (* 2 GiB length prefix *)
      frame_of_payload "\x63";                   (* unknown type byte *)
      frame_of_payload "\x05\x00\x00\x00\x01";   (* truncated TOKEN_STREAM *)
      frame_of_payload "\x01\x01\x07\x00\x00\x00\x00"; (* bad HELLO mode *)
      (* TOKEN_STREAM before HELLO: well-formed, illegal state *)
      String.sub (Wire.encode_frame_string (Wire.Token_stream { seq = 0; records = "" })) 0 9
      ^ "";
      Wire.encode_frame_string (Wire.Token_stream { seq = 0; records = "" });
      Wire.encode_frame_string Wire.Setup_ok;    (* server-only message *)
      Wire.encode_frame_string
        (Wire.Hello { version = 99; mode = Dpienc.Exact; salt0 = 0; features = 0 }) ]
    @ List.init 12 (fun i ->
          Bbx_crypto.Drbg.bytes drbg (8 + (i * 13)))  (* raw random bytes *)
  in
  List.iter
    (fun bytes ->
      let t = Client.connect endpoint in
      let fd = Client.fd t in
      (try
         if String.length bytes > 0 then
           ignore (Unix.write_substring fd bytes 0 (String.length bytes));
         (* half-close so the daemon sees EOF even when the bytes alone
            don't provoke a reply (e.g. a truncated length prefix) *)
         Unix.shutdown fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ -> ());
      (* daemon must reply ERROR or close; it must never hang or crash *)
      Alcotest.(check bool) "connection rejected" true
        (match Client.recv_verdict t with
         | exception Client.Server_error _ -> true
         | exception End_of_file -> true
         | exception Client.Protocol_error _ -> true
         | _ -> false);
      Client.close t)
    cases;
  (* the daemon survived all of it *)
  let s = Client.establish endpoint ~mode:Dpienc.Exact ~salt0:0 ~seed:"ok" in
  Fun.protect ~finally:(fun () -> Client.close s.Client.sc_client)
  @@ fun () ->
  let sender = Dpienc.sender_create Dpienc.Exact s.Client.sc_key ~salt0:0 in
  List.iteri
    (fun i wire ->
      Client.send_records s.Client.sc_client ~seq:i wire;
      let _, status, _ = Client.recv_verdict s.Client.sc_client in
      Alcotest.(check bool) "healthy after fuzz" true (status <> Wire.Dropped))
    (wires_for sender [ "alertkw1"; "benign" ])

(* the loadgen's own pipeline over a real daemon, exact + probable *)
let loadgen_smoke mode () =
  with_daemon ~mode @@ fun endpoint ->
  let report =
    Loadgen.run
      (Loadgen.cfg ~conns:3 ~sends:20 ~payload_bytes:256 ~hit_rate:0.1 ~mode
         ~seed:"lg-test" endpoint)
  in
  Alcotest.(check int) "all frames answered" 60 report.Loadgen.rp_sends;
  Alcotest.(check int) "nothing dropped" 0 report.Loadgen.rp_dropped;
  (* 10% of 20 sends per conn = 2 alert frames per conn *)
  Alcotest.(check int) "alert frames" 6 report.Loadgen.rp_alert_frames;
  Alcotest.(check bool) "tokens flowed" true (report.Loadgen.rp_tokens > 0);
  (* client-side inspected tokens equal the daemon's aggregate *)
  let t = Client.connect endpoint in
  let stats = Fun.protect ~finally:(fun () -> Client.close t)
      (fun () -> Client.stats t) in
  Alcotest.(check int) "token parity" report.Loadgen.rp_tokens
    stats.Wire.s_total_tokens

(* ---------- live migration across daemons ---------- *)

(* CONN_EXPORT / CONN_STATE / CONN_IMPORT over real sockets: a session
   established on daemon A moves to daemon B mid-stream via
   [Client.migrate].  The sender's key material and salt counters carry
   over unchanged, the reported-verdict bitset travels with the snapshot
   (no re-report on B), and history stays where it was earned — stats on
   A are untouched by the move.  Both daemons live in this process, so
   [bbx_daemon_conns_active] is the shared registry's view of the pair:
   it must net out to the same value after export (-1) + import (+1). *)
let migrate_between_daemons () =
  let obs_active = Bbx_obs.Obs.gauge "bbx_daemon_conns_active" in
  with_daemon @@ fun endpoint_a ->
  with_daemon @@ fun endpoint_b ->
  let base = Bbx_obs.Obs.gauge_value obs_active in
  let s =
    Client.establish ~features:Wire.feature_migrate endpoint_a
      ~mode:Dpienc.Exact ~salt0:0 ~seed:"mig"
  in
  let sender = Dpienc.sender_create Dpienc.Exact s.Client.sc_key ~salt0:0 in
  let wires =
    wires_for sender
      [ "before the move: alertkw1";
        "after the move: alertkw1 again";   (* dedup evidence *)
        "and a fresh rule otherkw2" ]
  in
  Alcotest.(check int) "one active conn" (base + 1)
    (Bbx_obs.Obs.gauge_value obs_active);
  Client.send_records s.Client.sc_client ~seq:0 (List.nth wires 0);
  let _, status0, v0 = Client.recv_verdict s.Client.sc_client in
  Alcotest.(check bool) "alert on A before the move" true
    (status0 = Wire.Alerts && wire_sigs v0 = [ (1, `Exact_match) ]);
  let stats_of endpoint =
    let t = Client.connect endpoint in
    Fun.protect ~finally:(fun () -> Client.close t) (fun () -> Client.stats t)
  in
  let stats_a0 = stats_of endpoint_a in
  let s2, pending = Client.migrate s endpoint_b in
  Fun.protect ~finally:(fun () -> Client.close s2.Client.sc_client)
  @@ fun () ->
  Alcotest.(check int) "no verdicts were in flight" 0 (List.length pending);
  Alcotest.(check bool) "session rebound" true
    (s2.Client.sc_key = s.Client.sc_key && s2.Client.sc_mode = Dpienc.Exact);
  Alcotest.(check int) "gauge nets out across the pair" (base + 1)
    (Bbx_obs.Obs.gauge_value obs_active);
  (* the same sender keeps streaming against B: salt counters carried *)
  Client.send_records s2.Client.sc_client ~seq:1 (List.nth wires 1);
  let _, status1, v1 = Client.recv_verdict s2.Client.sc_client in
  Alcotest.(check bool) "sid 1 not re-reported on B" true
    (status1 = Wire.Clean && v1 = []);
  Client.send_records s2.Client.sc_client ~seq:2 (List.nth wires 2);
  let _, status2, v2 = Client.recv_verdict s2.Client.sc_client in
  Alcotest.(check bool) "fresh rule still fires on B" true
    (status2 = Wire.Alerts && wire_sigs v2 = [ (2, `Exact_match) ]);
  (* migration moves the future, not the history *)
  let stats_a1 = stats_of endpoint_a in
  Alcotest.(check int) "A keeps its token history"
    stats_a0.Wire.s_total_tokens stats_a1.Wire.s_total_tokens;
  Alcotest.(check int) "A keeps its alert" 1 stats_a1.Wire.s_alerts;
  let stats_b = stats_of endpoint_b in
  Alcotest.(check bool) "B accrues only post-move tokens" true
    (stats_b.Wire.s_total_tokens > 0);
  Alcotest.(check int) "deduped re-report is not an alert on B" 1
    stats_b.Wire.s_alerts

(* CONN_EXPORT without feature_migrate in the HELLO is a protocol error
   that kills only that connection — the daemon keeps serving. *)
let export_requires_feature () =
  with_daemon @@ fun endpoint ->
  let s = Client.establish endpoint ~mode:Dpienc.Exact ~salt0:0 ~seed:"nof" in
  Alcotest.(check bool) "export rejected without the feature bit" true
    (match Client.export_conn s.Client.sc_client with
     | exception Client.Server_error _ -> true
     | exception End_of_file -> true
     | _ -> false);
  Client.close s.Client.sc_client;
  let s2 =
    Client.establish ~features:Wire.feature_migrate endpoint ~mode:Dpienc.Exact
      ~salt0:0 ~seed:"yesf"
  in
  Fun.protect ~finally:(fun () -> Client.close s2.Client.sc_client)
  @@ fun () ->
  let sender = Dpienc.sender_create Dpienc.Exact s2.Client.sc_key ~salt0:0 in
  List.iteri
    (fun i wire ->
      Client.send_records s2.Client.sc_client ~seq:i wire;
      let _, status, verdicts = Client.recv_verdict s2.Client.sc_client in
      Alcotest.(check bool) "daemon healthy after the rejection" true
        (status = Wire.Alerts && wire_sigs verdicts = [ (1, `Exact_match) ]))
    (wires_for sender [ "alertkw1 still inspected" ])

(* A corrupted snapshot must be refused at CONN_IMPORT without harming
   the daemon, and a genuine export must round-trip back into the same
   daemon (self-migration: the degenerate rebalance case). *)
let import_rejects_garbage () =
  with_daemon @@ fun endpoint ->
  let s =
    Client.establish ~features:Wire.feature_migrate endpoint ~mode:Dpienc.Exact
      ~salt0:0 ~seed:"self"
  in
  let sender = Dpienc.sender_create Dpienc.Exact s.Client.sc_key ~salt0:0 in
  let wires = wires_for sender [ "alertkw1 first"; "then otherkw2" ] in
  Client.send_records s.Client.sc_client ~seq:0 (List.nth wires 0);
  ignore (Client.recv_verdict s.Client.sc_client);
  let state, _pending = Client.export_conn s.Client.sc_client in
  Client.close s.Client.sc_client;
  (* truncated blob: refused with an ERROR, connection dies, daemon lives *)
  let t = Client.connect endpoint in
  Alcotest.(check bool) "garbage snapshot refused" true
    (match
       ignore
         (Client.hello ~features:Wire.feature_migrate t ~mode:Dpienc.Exact
            ~salt0:0);
       Client.import_conn t ~state:(String.sub state 0 (String.length state / 2))
     with
     | exception Client.Server_error _ -> true
     | exception End_of_file -> true
     | _ -> false);
  Client.close t;
  (* the intact blob resumes on the very same daemon *)
  let t2 = Client.connect endpoint in
  Fun.protect ~finally:(fun () -> Client.close t2)
  @@ fun () ->
  ignore
    (Client.hello ~features:Wire.feature_migrate t2 ~mode:Dpienc.Exact ~salt0:0);
  Client.import_conn t2 ~state;
  Client.send_records t2 ~seq:1 (List.nth wires 1);
  let _, status, verdicts = Client.recv_verdict t2 in
  Alcotest.(check bool) "resumed stream alerts on sid 2" true
    (status = Wire.Alerts && wire_sigs verdicts = [ (2, `Exact_match) ])

(* ---------- observability plane ---------- *)

module Trace = Bbx_obs.Trace

(* METRICS_REQ works on a fresh connection without any handshake, like
   STATS_REQ, and each scope renders the registry in its format. *)
let metrics_over_wire () =
  with_daemon @@ fun endpoint ->
  (* push one inspected frame through so the pipeline metrics exist *)
  let s = Client.establish endpoint ~mode:Dpienc.Exact ~salt0:0 ~seed:"met" in
  Fun.protect ~finally:(fun () -> Client.close s.Client.sc_client)
  @@ fun () ->
  let sender = Dpienc.sender_create Dpienc.Exact s.Client.sc_key ~salt0:0 in
  List.iteri
    (fun i wire ->
      Client.send_records s.Client.sc_client ~seq:i wire;
      ignore (Client.recv_verdict s.Client.sc_client))
    (wires_for sender [ "alertkw1 lives here"; "benign" ]);
  let t = Client.connect endpoint in
  Fun.protect ~finally:(fun () -> Client.close t)
  @@ fun () ->
  let prom = Client.metrics t Wire.Prometheus in
  Alcotest.(check bool) "prometheus has stage histogram" true
    (let sub = "# TYPE bbx_daemon_queue_wait_us histogram" in
     let rec find i =
       i + String.length sub <= String.length prom
       && (String.sub prom i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  let jsonl = Client.metrics t Wire.Jsonl in
  String.split_on_char '\n' jsonl
  |> List.iter (fun line ->
         if line <> "" then
           Alcotest.(check bool) "jsonl line is an object" true
             (line.[0] = '{' && line.[String.length line - 1] = '}'));
  let trace = Client.metrics t Wire.Trace in
  Alcotest.(check bool) "trace scope is chrome json" true
    (String.length trace >= 15 && String.sub trace 0 15 = "{\"traceEvents\":")

(* The flight recorder must decompose each frame's round trip into the
   five pipeline phases, all keyed by (conn, seq), with the phase
   durations summing to no more than the client-observed RTT (plus
   scheduling slack — phases exclude select sleeps, so less is fine). *)
let trace_decomposition () =
  Trace.reset ();
  let was = Trace.enabled () in
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled was)
  @@ fun () ->
  let endpoint = temp_endpoint () in
  let trace_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bbxd-test-%d.trace.json" (Unix.getpid ()))
  in
  let handle =
    Daemon.start (Daemon.config ~endpoint ~rules ~trace_out:trace_path ())
  in
  let n = 5 in
  let rtts = Array.make n 0.0 in
  let conn_id =
    Fun.protect
      ~finally:(fun () -> Daemon.stop handle)
      (fun () ->
        let s = Client.establish endpoint ~mode:Dpienc.Exact ~salt0:0 ~seed:"tr" in
        Fun.protect ~finally:(fun () -> Client.close s.Client.sc_client)
        @@ fun () ->
        let sender = Dpienc.sender_create Dpienc.Exact s.Client.sc_key ~salt0:0 in
        List.iteri
          (fun i wire ->
            let t0 = Unix.gettimeofday () in
            Client.send_records s.Client.sc_client ~seq:i wire;
            ignore (Client.recv_verdict s.Client.sc_client);
            rtts.(i) <- Unix.gettimeofday () -. t0)
          (wires_for sender
             (List.init n (fun i -> Printf.sprintf "payload %d alertkw1" i)));
        s.Client.sc_conn_id)
  in
  (* daemon stopped: every domain joined, rings quiescent and complete *)
  let evs = Trace.events () in
  let expected = [ "read"; "validate"; "queue_wait"; "service"; "write" ] in
  for seq = 0 to n - 1 do
    let mine =
      List.filter (fun e -> e.Trace.e_id = seq && e.Trace.e_conn = conn_id) evs
    in
    List.iter
      (fun ph ->
        Alcotest.(check bool)
          (Printf.sprintf "seq %d has phase %s" seq ph)
          true
          (List.exists (fun e -> Trace.phase_name e.Trace.e_phase = ph) mine))
      expected;
    List.iter
      (fun e ->
        Alcotest.(check bool) "duration non-negative" true (e.Trace.e_dur_ns >= 0))
      mine;
    let sum_ns =
      List.fold_left
        (fun acc e ->
          if List.mem (Trace.phase_name e.Trace.e_phase) expected then
            acc + e.Trace.e_dur_ns
          else acc)
        0 mine
    in
    let rtt_ns = rtts.(seq) *. 1e9 in
    Alcotest.(check bool)
      (Printf.sprintf "seq %d phases sum within RTT (sum %d ns, rtt %.0f ns)"
         seq sum_ns rtt_ns)
      true
      (float_of_int sum_ns <= (rtt_ns *. 1.5) +. 2e6)
  done;
  (* --trace-out wrote a Chrome trace on teardown *)
  let ic = open_in trace_path in
  let head = really_input_string ic (min 15 (in_channel_length ic)) in
  close_in ic;
  Sys.remove trace_path;
  Alcotest.(check string) "trace file is chrome json" "{\"traceEvents\":" head

(* GET /metrics over the plain-HTTP scrape plane *)
let http_scrape () =
  let port = 35000 + (Unix.getpid () mod 20000) in
  let endpoint = temp_endpoint () in
  let handle =
    Daemon.start
      (Daemon.config ~endpoint ~rules ~metrics:(Daemon.Tcp ("127.0.0.1", port)) ())
  in
  Fun.protect ~finally:(fun () -> Daemon.stop handle)
  @@ fun () ->
  let get path =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
    ignore (Unix.write_substring fd req 0 (String.length req));
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec drain () =
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
      end
    in
    drain ();
    Buffer.contents buf
  in
  let resp = get "/metrics" in
  Alcotest.(check bool) "200 with prometheus body" true
    (String.length resp > 17
     && String.sub resp 0 15 = "HTTP/1.0 200 OK"
     && (let has_sub sub =
           let rec find i =
             i + String.length sub <= String.length resp
             && (String.sub resp i (String.length sub) = sub || find (i + 1))
           in
           find 0
         in
         has_sub "bbx_" && has_sub "Content-Length:"));
  let missing = get "/nope" in
  Alcotest.(check bool) "404 for unknown path" true
    (String.length missing > 16 && String.sub missing 0 16 = "HTTP/1.0 404 Not")

let stop_unlinks_socket () =
  let endpoint = temp_endpoint () in
  let path = match endpoint with Daemon.Unix_path p -> p | _ -> assert false in
  let handle = Daemon.start (Daemon.config ~endpoint ~rules ()) in
  Alcotest.(check bool) "socket exists" true (Sys.file_exists path);
  Daemon.stop handle;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let () =
  Alcotest.run "daemon"
    [ ( "loopback",
        [ Alcotest.test_case "differential vs Middlebox.process_wire" `Quick
            differential_vs_middlebox;
          Alcotest.test_case "differential: live rule update + salt reset" `Quick
            differential_update_and_reset;
          Alcotest.test_case "tiered differential: detail bytes at tiers 1/2/3"
            `Quick tiered_differential;
          Alcotest.test_case "legacy client falls back to VERDICT frames" `Quick
            tiered_legacy_fallback;
          Alcotest.test_case "stop unlinks the socket" `Quick stop_unlinks_socket ] );
      ( "hardening",
        [ Alcotest.test_case "a poisoned connection leaves others alone" `Quick
            isolation;
          Alcotest.test_case "malformed-frame fuzz never kills the daemon" `Quick
            malformed_fuzz ] );
      ( "loadgen",
        [ Alcotest.test_case "exact mode" `Quick (loadgen_smoke Dpienc.Exact);
          Alcotest.test_case "probable-cause mode" `Quick
            (loadgen_smoke Dpienc.Probable) ] );
      ( "migration",
        [ Alcotest.test_case "live migration between two daemons" `Quick
            migrate_between_daemons;
          Alcotest.test_case "CONN_EXPORT gated on feature_migrate" `Quick
            export_requires_feature;
          Alcotest.test_case "corrupt snapshot refused, intact one resumes"
            `Quick import_rejects_garbage ] );
      ( "observability",
        [ Alcotest.test_case "METRICS_REQ over the wire, all scopes" `Quick
            metrics_over_wire;
          Alcotest.test_case "flight recorder decomposes frame RTT" `Quick
            trace_decomposition;
          Alcotest.test_case "HTTP GET /metrics scrape plane" `Quick http_scrape ] ) ]
