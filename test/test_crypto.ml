open Bbx_crypto

let hex = Util.of_hex

let check_hex msg expected got = Alcotest.(check string) msg expected (Util.to_hex got)

let aes_tests =
  [ Alcotest.test_case "FIPS-197 appendix C.1" `Quick (fun () ->
        let key = Aes.expand_key (hex "000102030405060708090a0b0c0d0e0f") in
        let ct = Aes.encrypt_block key (hex "00112233445566778899aabbccddeeff") in
        check_hex "ciphertext" "69c4e0d86a7b0430d8cdb78070b4c55a" ct;
        check_hex "decrypt" "00112233445566778899aabbccddeeff" (Aes.decrypt_block key ct));
    Alcotest.test_case "NIST SP800-38A ECB vector" `Quick (fun () ->
        let key = Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
        check_hex "block 1" "3ad77bb40d7a3660a89ecaf32466ef97"
          (Aes.encrypt_block key (hex "6bc1bee22e409f96e93d7e117393172a")));
    Alcotest.test_case "sbox spot values" `Quick (fun () ->
        Alcotest.(check int) "S(0x00)" 0x63 Aes.sbox.(0x00);
        Alcotest.(check int) "S(0x01)" 0x7c Aes.sbox.(0x01);
        Alcotest.(check int) "S(0x53)" 0xed Aes.sbox.(0x53);
        Alcotest.(check int) "S(0xff)" 0x16 Aes.sbox.(0xff));
    Alcotest.test_case "bad key length" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Aes.expand_key: key must be 16 bytes")
          (fun () -> ignore (Aes.expand_key "short")));
    Alcotest.test_case "ctr round trip" `Quick (fun () ->
        let key = Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
        let nonce = hex "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
        let msg = "the quick brown fox jumps over the lazy dog, twice over" in
        let ct = Aes.ctr_transform key ~nonce msg in
        Alcotest.(check bool) "differs" true (ct <> msg);
        Alcotest.(check string) "round trip" msg (Aes.ctr_transform key ~nonce ct));
    Alcotest.test_case "ctr known vector SP800-38A F.5.1" `Quick (fun () ->
        let key = Aes.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
        let nonce = hex "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
        check_hex "ct" "874d6191b620e3261bef6864990db6ce"
          (Aes.ctr_transform key ~nonce (hex "6bc1bee22e409f96e93d7e117393172a")));
    Alcotest.test_case "encrypt_u64 consistent with encrypt_block" `Quick (fun () ->
        let key = Aes.expand_key (hex "000102030405060708090a0b0c0d0e0f") in
        let salt = 0x123456789ab in
        let block = String.make 8 '\000' ^ Util.u64_be salt in
        let full = Aes.encrypt_block key block in
        Alcotest.(check int) "prefix" (Util.read_u64_be full 0) (Aes.encrypt_u64 key salt));
  ]

let sha_tests =
  [ Alcotest.test_case "empty string" `Quick (fun () ->
        Alcotest.(check string) "digest"
          "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
          (Sha256.hexdigest ""));
    Alcotest.test_case "abc" `Quick (fun () ->
        Alcotest.(check string) "digest"
          "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
          (Sha256.hexdigest "abc"));
    Alcotest.test_case "two-block message" `Quick (fun () ->
        Alcotest.(check string) "digest"
          "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
          (Sha256.hexdigest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
    Alcotest.test_case "million a's (streaming)" `Slow (fun () ->
        let ctx = Sha256.init () in
        for _ = 1 to 10_000 do Sha256.update ctx (String.make 100 'a') done;
        Alcotest.(check string) "digest"
          "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
          (Util.to_hex (Sha256.final ctx)));
    Alcotest.test_case "streaming equals one-shot at odd boundaries" `Quick (fun () ->
        let msg = String.init 200 (fun i -> Char.chr (i land 0xff)) in
        List.iter
          (fun cut ->
             let ctx = Sha256.init () in
             Sha256.update ctx (String.sub msg 0 cut);
             Sha256.update ctx (String.sub msg cut (200 - cut));
             Alcotest.(check string) (Printf.sprintf "cut=%d" cut)
               (Sha256.hexdigest msg) (Util.to_hex (Sha256.final ctx)))
          [ 0; 1; 55; 56; 63; 64; 65; 127; 128; 199 ]);
  ]

let hmac_tests =
  [ Alcotest.test_case "RFC 4231 case 1" `Quick (fun () ->
        let key = String.make 20 '\x0b' in
        check_hex "tag" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
          (Hmac.mac ~key "Hi There"));
    Alcotest.test_case "RFC 4231 case 2" `Quick (fun () ->
        check_hex "tag" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
          (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
    Alcotest.test_case "long key is hashed" `Quick (fun () ->
        let key = String.make 131 '\xaa' in
        check_hex "tag" "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
          (Hmac.mac ~key "Test Using Larger Than Block-Size Key - Hash Key First"));
    Alcotest.test_case "verify accepts and rejects" `Quick (fun () ->
        let tag = Hmac.mac ~key:"k" "data" in
        Alcotest.(check bool) "good" true (Hmac.verify ~key:"k" ~tag "data");
        Alcotest.(check bool) "bad data" false (Hmac.verify ~key:"k" ~tag "datb");
        Alcotest.(check bool) "bad key" false (Hmac.verify ~key:"K" ~tag "data"));
  ]

let kdf_tests =
  [ Alcotest.test_case "RFC 5869 test case 1" `Quick (fun () ->
        let ikm = String.make 22 '\x0b' in
        let salt = hex "000102030405060708090a0b0c" in
        let prk = Kdf.extract ~salt ikm in
        check_hex "prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" prk;
        check_hex "okm"
          "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
          (Kdf.expand ~prk ~info:(hex "f0f1f2f3f4f5f6f7f8f9") 42));
    Alcotest.test_case "derive labels independent" `Quick (fun () ->
        let a = Kdf.derive ~secret:"s" ~label:"a" 32 in
        let b = Kdf.derive ~secret:"s" ~label:"b" 32 in
        Alcotest.(check bool) "differ" true (a <> b));
    Alcotest.test_case "expand length cap" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Kdf.expand: output too long")
          (fun () -> ignore (Kdf.expand ~prk:"p" ~info:"" (255 * 32 + 1))));
  ]

let drbg_tests =
  [ Alcotest.test_case "deterministic" `Quick (fun () ->
        let a = Drbg.create "seed" and b = Drbg.create "seed" in
        Alcotest.(check string) "same stream" (Drbg.bytes a 100) (Drbg.bytes b 100));
    Alcotest.test_case "seed sensitivity" `Quick (fun () ->
        let a = Drbg.create "seed1" and b = Drbg.create "seed2" in
        Alcotest.(check bool) "differ" true (Drbg.bytes a 32 <> Drbg.bytes b 32));
    Alcotest.test_case "chunking does not matter" `Quick (fun () ->
        let a = Drbg.create "s" and b = Drbg.create "s" in
        let big = Drbg.bytes a 50 in
        let p1 = Drbg.bytes b 7 in
        let p2 = Drbg.bytes b 13 in
        let p3 = Drbg.bytes b 30 in
        let parts = p1 ^ p2 ^ p3 in
        Alcotest.(check string) "same" big parts);
    Alcotest.test_case "fork independence" `Quick (fun () ->
        let a = Drbg.create "s" in
        let f1 = Drbg.fork a "x" and f2 = Drbg.fork a "y" in
        Alcotest.(check bool) "forks differ" true (Drbg.bytes f1 32 <> Drbg.bytes f2 32);
        let b = Drbg.create "s" in
        Alcotest.(check string) "parent undisturbed" (Drbg.bytes b 32) (Drbg.bytes a 32));
    Alcotest.test_case "uniform in range" `Quick (fun () ->
        let d = Drbg.create "u" in
        for _ = 1 to 1000 do
          let v = Drbg.uniform d 17 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
        done);
    Alcotest.test_case "uniform covers range" `Quick (fun () ->
        let d = Drbg.create "cover" in
        let seen = Array.make 5 false in
        for _ = 1 to 200 do seen.(Drbg.uniform d 5) <- true done;
        Alcotest.(check bool) "all hit" true (Array.for_all Fun.id seen));
  ]

let util_props =
  let prop name ?(count = 200) arb f =
    QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)
  in
  [ prop "hex round trip" QCheck.string (fun s -> Util.of_hex (Util.to_hex s) = s);
    prop "xor self-inverse" QCheck.(pair string string) (fun (a, b) ->
        let n = min (String.length a) (String.length b) in
        let a = String.sub a 0 n and b = String.sub b 0 n in
        Util.xor (Util.xor a b) b = a);
    prop "ct_equal is equality" QCheck.(pair string string) (fun (a, b) ->
        Util.ct_equal a b = (a = b));
    prop "u64 round trip" QCheck.(int_bound max_int) (fun v ->
        let v = v land ((1 lsl 62) - 1) in
        Util.read_u64_be (Util.u64_be v) 0 = v);
    prop "aes enc/dec round trip" ~count:100 QCheck.(pair string string) (fun (ks, bs) ->
        let pad s = (s ^ String.make 16 '\000') |> fun s -> String.sub s 0 16 in
        let key = Aes.expand_key (pad ks) in
        let block = pad bs in
        Aes.decrypt_block key (Aes.encrypt_block key block) = block);
    prop "sha256 distinct on distinct inputs" QCheck.(pair string string) (fun (a, b) ->
        a = b || Sha256.digest a <> Sha256.digest b);
    prop "T-table AES equals reference AES" ~count:300 QCheck.(pair string string)
      (fun (ks, bs) ->
         let pad s = (s ^ String.make 16 '\000') |> fun s -> String.sub s 0 16 in
         let key = Aes.expand_key (pad ks) in
         Aes.encrypt_block key (pad bs) = Aes.encrypt_block_reference key (pad bs));
  ]

let () =
  Alcotest.run "crypto"
    [ ("aes", aes_tests);
      ("sha256", sha_tests);
      ("hmac", hmac_tests);
      ("kdf", kdf_tests);
      ("drbg", drbg_tests);
      ("util-props", util_props);
    ]
