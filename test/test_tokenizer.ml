open Bbx_tokenizer.Tokenizer

let token = Alcotest.testable
    (fun fmt t -> Format.fprintf fmt "%S@%d" t.content t.offset)
    (fun a b -> a.content = b.content && a.offset = b.offset)

let window_tests =
  [ Alcotest.test_case "paper example" `Quick (fun () ->
        (* "alice apple" -> "alice ap", "lice app", "ice appl", ... *)
        let toks = window "alice apple" in
        Alcotest.(check int) "count" 4 (List.length toks);
        Alcotest.check token "first" { content = "alice ap"; offset = 0 } (List.nth toks 0);
        Alcotest.check token "second" { content = "lice app"; offset = 1 } (List.nth toks 1);
        Alcotest.check token "third" { content = "ice appl"; offset = 2 } (List.nth toks 2));
    Alcotest.test_case "short payload" `Quick (fun () ->
        Alcotest.(check int) "empty" 0 (List.length (window "short"));
        Alcotest.(check int) "exact" 1 (List.length (window "12345678")));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"one token per offset" ~count:100
         QCheck.(string_of_size (QCheck.Gen.int_range 8 200))
         (fun s ->
            let toks = window s in
            List.length toks = String.length s - token_len + 1
            && List.for_all
              (fun t -> t.content = String.sub s t.offset token_len)
              toks));
  ]

let keyword_tests =
  [ Alcotest.test_case "paper example maliciously" `Quick (fun () ->
        Alcotest.(check (list (pair string int)))
          "chunks" [ ("maliciou", 0); ("iciously", 3) ] (keyword_chunks "maliciously"));
    Alcotest.test_case "exact token length" `Quick (fun () ->
        Alcotest.(check (list (pair string int))) "single" [ ("exactly8", 0) ]
          (keyword_chunks "exactly8"));
    Alcotest.test_case "short keyword padded" `Quick (fun () ->
        Alcotest.(check (list (pair string int))) "padded" [ ("cmd\000\000\000\000\000", 0) ]
          (keyword_chunks "cmd"));
    Alcotest.test_case "long keyword has stride chunks plus tail" `Quick (fun () ->
        let kw = "0123456789abcdefghij" (* 20 bytes *) in
        Alcotest.(check (list (pair string int))) "chunks"
          [ ("01234567", 0); ("89abcdef", 8); ("cdefghij", 12) ]
          (keyword_chunks kw));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"chunks cover whole keyword" ~count:200
         QCheck.(string_of_size (QCheck.Gen.int_range 8 64))
         (fun kw ->
            let chunks = keyword_chunks kw in
            let covered = Array.make (String.length kw) false in
            List.iter
              (fun (c, off) ->
                 String.iteri (fun i ch ->
                     if ch = kw.[off + i] then covered.(off + i) <- true) c)
              chunks;
            Array.for_all Fun.id covered
            && List.for_all (fun (c, off) -> c = String.sub kw off token_len) chunks));
  ]

(* Every keyword chunk the middlebox searches for must be emitted by the
   delimiter tokenizer when the keyword appears on a delimiter boundary. *)
let delimiter_covers payload kw =
  let toks = delimiter payload in
  let find_at content offset =
    List.exists (fun t -> t.content = content && t.offset = offset) toks
  in
  (* keyword starts right after "GET /" etc. — locate it *)
  let rec index_of i =
    if i + String.length kw > String.length payload then None
    else if String.sub payload i (String.length kw) = kw then Some i
    else index_of (i + 1)
  in
  match index_of 0 with
  | None -> Alcotest.fail "keyword not in payload"
  | Some base ->
    List.for_all (fun (c, off) -> find_at c (base + off)) (keyword_chunks kw)

let delimiter_tests =
  [ Alcotest.test_case "covers boundary keyword (long)" `Quick (fun () ->
        Alcotest.(check bool) "covered" true
          (delimiter_covers "GET /login.php?user=maliciouspayload HTTP/1.1" "maliciouspayload"));
    Alcotest.test_case "covers keyword containing delimiters" `Quick (fun () ->
        Alcotest.(check bool) "covered" true
          (delimiter_covers "GET /login.php?user=alice HTTP/1.1" "login.php"));
    Alcotest.test_case "covers short keyword as padded unit (opt-in)" `Quick (fun () ->
        let toks = delimiter ~short_units:true "run cmd now" in
        Alcotest.(check bool) "padded cmd present" true
          (List.exists (fun t -> t.content = pad_short "cmd" && t.offset = 4) toks);
        Alcotest.(check bool) "off by default" false
          (List.exists (fun t -> t.content = pad_short "cmd")
             (delimiter "run cmd now")));
    Alcotest.test_case "emits fewer tokens than window on text" `Quick (fun () ->
        let payload =
          "The quick brown fox jumps over the lazy dog while reading the news at example.com today"
        in
        let w = List.length (window payload) and d = List.length (delimiter payload) in
        Alcotest.(check bool) (Printf.sprintf "d=%d < w=%d" d w) true (d < w));
    Alcotest.test_case "offsets valid and contents consistent" `Quick (fun () ->
        let payload = "POST /submit?q=hello&lang=en HTTP/1.1\r\nHost: x.org\r\n\r\nbody=42" in
        List.iter
          (fun t ->
             Alcotest.(check int) "len" token_len (String.length t.content);
             Alcotest.(check bool) "offset in range" true
               (t.offset >= 0 && t.offset <= String.length payload - 1);
             (* unpadded tokens must be substrings at their offset *)
             if not (String.contains t.content '\000') then
               Alcotest.(check string) "substring" (String.sub payload t.offset token_len)
                 t.content)
          (delimiter payload));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"delimiter tokens subset of window tokens (unpadded)" ~count:100
         QCheck.(string_of_size (QCheck.Gen.int_range 8 120))
         (fun s ->
            let w = window s in
            List.for_all
              (fun t ->
                 String.contains t.content '\000'
                 || List.exists (fun u -> u.offset = t.offset && u.content = t.content) w)
              (delimiter s)));
  ]

let count_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"window_count equals list length" ~count:200
         QCheck.(string_of_size (QCheck.Gen.int_range 0 150))
         (fun s -> window_count s = List.length (window s)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"delimiter_count equals list length" ~count:200
         QCheck.(string_of_size (QCheck.Gen.int_range 0 150))
         (fun s ->
            delimiter_count s = List.length (delimiter s)
            && delimiter_count ~short_units:true s
               = List.length (delimiter ~short_units:true s)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"delimiter never exceeds window on full tokens" ~count:200
         QCheck.(string_of_size (QCheck.Gen.int_range 8 150))
         (fun s -> delimiter_count s <= window_count s + String.length s / token_len));
  ]

(* The list API is a shim over the streaming folds; these properties pin
   the two views together: every fold visit, materialised through
   [slice_token], must reproduce the list tokens in emission order. *)
let streaming_tests =
  let collect fold s =
    List.rev (fold s ~init:[] ~f:(fun acc ~off ~len -> slice_token s ~off ~len :: acc))
  in
  let same_tokens a b =
    List.length a = List.length b
    && List.for_all2 (fun x y -> x.content = y.content && x.offset = y.offset) a b
  in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"fold_window agrees with window" ~count:200
         QCheck.(string_of_size (QCheck.Gen.int_range 0 150))
         (fun s -> same_tokens (collect fold_window s) (window s)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"fold_delimiter agrees with delimiter" ~count:200
         QCheck.(string_of_size (QCheck.Gen.int_range 0 150))
         (fun s ->
            same_tokens (collect (fun s -> fold_delimiter s) s) (delimiter s)
            && same_tokens
                 (collect (fold_delimiter ~short_units:true) s)
                 (delimiter ~short_units:true s)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"fold visit counts equal the count API" ~count:200
         QCheck.(string_of_size (QCheck.Gen.int_range 0 150))
         (fun s ->
            let visits fold s = fold s ~init:0 ~f:(fun n ~off:_ ~len:_ -> n + 1) in
            visits fold_window s = window_count s
            && visits (fun s -> fold_delimiter s) s = delimiter_count s
            && visits (fold_delimiter ~short_units:true) s
               = delimiter_count ~short_units:true s));
    Alcotest.test_case "slice_token pads short slices" `Quick (fun () ->
        let t = slice_token "run cmd now" ~off:4 ~len:3 in
        Alcotest.(check string) "padded" (pad_short "cmd") t.content;
        Alcotest.(check int) "offset" 4 t.offset);
  ]

let () =
  Alcotest.run "tokenizer"
    [ ("window", window_tests);
      ("keyword-chunks", keyword_tests);
      ("delimiter", delimiter_tests);
      ("counts", count_tests);
      ("streaming", streaming_tests);
    ]
