open Bbx_regex

let m pat s = Regex.matches (Regex.compile pat) s

let unit_tests =
  [ Alcotest.test_case "literals" `Quick (fun () ->
        Alcotest.(check bool) "hit" true (m "abc" "xxabcxx");
        Alcotest.(check bool) "miss" false (m "abc" "ab c"));
    Alcotest.test_case "dot" `Quick (fun () ->
        Alcotest.(check bool) "any" true (m "a.c" "abc");
        Alcotest.(check bool) "not newline" false (m "a.c" "a\nc");
        Alcotest.(check bool) "dotall" true
          (Regex.matches (Regex.compile ~dotall:true "a.c") "a\nc"));
    Alcotest.test_case "classes" `Quick (fun () ->
        Alcotest.(check bool) "range" true (m "[a-f]+" "zzzdzz");
        Alcotest.(check bool) "negated" true (m "[^0-9]" "7a7");
        Alcotest.(check bool) "negated miss" false (m "[^0-9]" "777");
        Alcotest.(check bool) "escapes in class" true (m "[\\d_]+" "__42__"));
    Alcotest.test_case "escapes" `Quick (fun () ->
        Alcotest.(check bool) "digit" true (m "\\d\\d" "ab12cd");
        Alcotest.(check bool) "word" true (m "\\w+" "!!x!!");
        Alcotest.(check bool) "space" true (m "a\\sb" "a b");
        Alcotest.(check bool) "hex" true (m "\\x41" "A");
        Alcotest.(check bool) "meta" true (m "\\." "a.b");
        Alcotest.(check bool) "meta miss" false (m "\\." "ab"));
    Alcotest.test_case "quantifiers" `Quick (fun () ->
        Alcotest.(check bool) "star empty" true (m "ab*c" "ac");
        Alcotest.(check bool) "star many" true (m "ab*c" "abbbbc");
        Alcotest.(check bool) "plus needs one" false (m "ab+c" "ac");
        Alcotest.(check bool) "plus" true (m "ab+c" "abc");
        Alcotest.(check bool) "opt" true (m "colou?r" "color");
        Alcotest.(check bool) "opt 2" true (m "colou?r" "colour"));
    Alcotest.test_case "bounded repeats" `Quick (fun () ->
        Alcotest.(check bool) "exact" true (m "a{3}" "xaaax");
        Alcotest.(check bool) "exact miss" false (m "^a{3}$" "aa");
        Alcotest.(check bool) "range hit" true (m "^a{2,4}$" "aaa");
        Alcotest.(check bool) "range miss high" false (m "^a{2,4}$" "aaaaa");
        Alcotest.(check bool) "open" true (m "^a{2,}$" "aaaaaaa"));
    Alcotest.test_case "alternation and groups" `Quick (fun () ->
        Alcotest.(check bool) "alt" true (m "cat|dog" "hotdog");
        Alcotest.(check bool) "group" true (m "(ab)+" "xababx");
        Alcotest.(check bool) "nested" true (m "a(b|c(d|e))f" "acef");
        Alcotest.(check bool) "non-capturing" true (m "(?:ab)+c" "ababc"));
    Alcotest.test_case "anchors" `Quick (fun () ->
        Alcotest.(check bool) "bol" true (m "^GET" "GET /x");
        Alcotest.(check bool) "bol miss" false (m "^GET" " GET /x");
        Alcotest.(check bool) "eol" true (m "html$" "index.html");
        Alcotest.(check bool) "eol miss" false (m "html$" "html.index");
        Alcotest.(check bool) "both" true (m "^$" ""));
    Alcotest.test_case "caseless" `Quick (fun () ->
        Alcotest.(check bool) "hit" true
          (Regex.matches (Regex.compile ~caseless:true "select") "SeLeCt * from");
        Alcotest.(check bool) "class" true
          (Regex.matches (Regex.compile ~caseless:true "[a-z]+!") "ABC!"));
    Alcotest.test_case "pcre syntax" `Quick (fun () ->
        let r = Regex.parse_pcre "/union.+select/i" in
        Alcotest.(check bool) "sqli" true (Regex.matches r "x UNION ALL SELECT y");
        Alcotest.(check string) "pattern" "union.+select" (Regex.pattern r));
    Alcotest.test_case "search offsets" `Quick (fun () ->
        Alcotest.(check (option (pair int int))) "found" (Some (2, 5))
          (Regex.search (Regex.compile "b+") "aabbbaa");
        Alcotest.(check (option (pair int int))) "missing" None
          (Regex.search (Regex.compile "zz") "aabbbaa");
        Alcotest.(check (option (pair int int))) "empty match" (Some (0, 0))
          (Regex.search (Regex.compile "x*") "aaa"));
    Alcotest.test_case "parse errors" `Quick (fun () ->
        let bad p =
          match Regex.compile p with
          | exception Regex.Parse_error _ -> true
          | _ -> false
        in
        Alcotest.(check bool) "unbalanced" true (bad "a)b");
        Alcotest.(check bool) "unterminated class" true (bad "[abc");
        Alcotest.(check bool) "dangling star" true (bad "*a");
        Alcotest.(check bool) "trailing backslash" true (bad "a\\");
        Alcotest.(check bool) "huge repeat" true (bad "a{1,9999}");
        Alcotest.(check bool) "bad pcre" true
          (match Regex.parse_pcre "no-slashes" with
           | exception Regex.Parse_error _ -> true
           | _ -> false));
    Alcotest.test_case "no catastrophic backtracking" `Quick (fun () ->
        (* (a+)+b against a^40 — exponential for backtrackers, linear here. *)
        let r = Regex.compile "(a+)+b" in
        let t0 = Unix.gettimeofday () in
        Alcotest.(check bool) "no match" false (Regex.matches r (String.make 40 'a'));
        Alcotest.(check bool) "fast" true (Unix.gettimeofday () -. t0 < 1.0));
  ]

(* Differential test: random small regexes over {a,b}, compared against an
   independent backtracking matcher defined on the generated AST. *)
type oracle =
  | OChar of char
  | OCat of oracle * oracle
  | OAlt of oracle * oracle
  | OStar of oracle
  | OOpt of oracle

let rec render = function
  | OChar c -> String.make 1 c
  | OCat (a, b) -> render a ^ render b
  | OAlt (a, b) -> "(" ^ render a ^ "|" ^ render b ^ ")"
  | OStar a -> "(" ^ render a ^ ")*"
  | OOpt a -> "(" ^ render a ^ ")?"

(* match oracle at position i, calling k on every end position *)
let rec omatch o s i k =
  match o with
  | OChar c -> if i < String.length s && s.[i] = c then k (i + 1)
  | OCat (a, b) -> omatch a s i (fun j -> omatch b s j k)
  | OAlt (a, b) -> omatch a s i k; omatch b s i k
  | OOpt a -> k i; omatch a s i k
  | OStar a ->
    k i;
    (* bounded unrolling to avoid infinite loops on nullable bodies *)
    let rec star i depth =
      if depth < String.length s + 1 then
        omatch a s i (fun j -> if j > i then begin k j; star j (depth + 1) end)
    in
    star i 0

let oracle_matches o s =
  let exception Hit in
  try
    for i = 0 to String.length s do
      omatch o s i (fun _ -> raise Hit)
    done;
    false
  with Hit -> true

let gen_oracle =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
           if n <= 1 then map (fun b -> OChar (if b then 'a' else 'b')) bool
           else
             frequency
               [ (3, map2 (fun a b -> OCat (a, b)) (self (n / 2)) (self (n / 2)));
                 (2, map2 (fun a b -> OAlt (a, b)) (self (n / 2)) (self (n / 2)));
                 (1, map (fun a -> OStar a) (self (n - 1)));
                 (1, map (fun a -> OOpt a) (self (n - 1)));
                 (1, map (fun b -> OChar (if b then 'a' else 'b')) bool) ])
        (min n 12))

let gen_input = QCheck.Gen.(string_size ~gen:(map (fun b -> if b then 'a' else 'b') bool) (int_range 0 12))

let differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"agrees with backtracking oracle" ~count:1000
       (QCheck.make ~print:(fun (o, s) -> render o ^ " on " ^ s)
          (QCheck.Gen.pair gen_oracle gen_input))
       (fun (o, s) -> Regex.matches (Regex.compile (render o)) s = oracle_matches o s))

let () =
  Alcotest.run "regex" [ ("unit", unit_tests); ("differential", [ differential ]) ]
