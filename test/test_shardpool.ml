(* Shardpool tests: unit coverage of the pool API plus a qcheck
   differential — the same random interleaved multi-connection delivery
   trace through the sequential Middlebox and through Shardpool at 1, 2
   and 4 worker domains must produce identical per-delivery verdicts,
   aggregate stats, flow stats and blocked flags.  Connection routing is
   by id and each connection's deliveries stay FIFO on one shard, so
   parallelism must not be observable in the results. *)

open Bbx_dpienc.Dpienc
open Bbx_mbox
open Bbx_tokenizer.Tokenizer

let rules =
  [ Bbx_rules.Rule.make ~sid:1 [ Bbx_rules.Rule.make_content "alertkw1" ];
    Bbx_rules.Rule.make ~sid:2 [ Bbx_rules.Rule.make_content "otherkw2" ];
    Bbx_rules.Rule.make ~action:Bbx_rules.Rule.Drop ~sid:3
      [ Bbx_rules.Rule.make_content "dropkw33" ] ]

let key_for conn = key_of_secret (Printf.sprintf "pool-conn-%d" conn)

let register_pool pool conn =
  Shardpool.register pool ~conn_id:conn ~salt0:0 ~enc_chunk:(token_enc (key_for conn))

let register_seq mb conn =
  Middlebox.register mb ~conn_id:conn ~salt0:0 ~enc_chunk:(token_enc (key_for conn))

(* List.map with a guaranteed left-to-right application order (the tests
   map side-effecting functions — sender encryption, submissions,
   sequential processing — where order is the point). *)
let map_in_order f l = List.rev (List.fold_left (fun acc x -> f x :: acc) [] l)

(* Wires for one connection's deliveries, in order (each advances the
   sender's salt counters, so the list is computed once and replayed
   verbatim against every middlebox variant). *)
let wires_for conn payloads =
  let s = sender_create Exact (key_for conn) ~salt0:0 in
  map_in_order (fun p -> encode_tokens (sender_encrypt s (delimiter p))) payloads

let with_pool ~domains f = Shardpool.with_pool ~domains ~mode:Exact ~rules f

(* ---------- unit tests ---------- *)

let unit_tests =
  [ Alcotest.test_case "sync process_wire matches Middlebox semantics" `Quick (fun () ->
        with_pool ~domains:2 @@ fun pool ->
        register_pool pool 1;
        register_pool pool 2;
        let w1 = wires_for 1 [ "x=alertkw1"; "q=dropkw33"; "after" ] in
        let w2 = wires_for 2 [ "benign hello" ] in
        (match (w1, w2) with
         | [ a; d; after ], [ b ] ->
           Alcotest.(check int) "alert" 1
             (List.length (Shardpool.process_wire pool ~conn_id:1 a));
           Alcotest.(check int) "clean" 0
             (List.length (Shardpool.process_wire pool ~conn_id:2 b));
           ignore (Shardpool.process_wire pool ~conn_id:1 d : Engine.verdict list);
           Alcotest.(check bool) "blocked" true (Shardpool.is_blocked pool ~conn_id:1);
           Alcotest.(check bool) "blocked conn raises" true
             (match Shardpool.process_wire pool ~conn_id:1 after with
              | exception Invalid_argument _ -> true
              | _ -> false)
         | _ -> Alcotest.fail "wire setup");
        Alcotest.(check int) "blocked count" 1 (Shardpool.stats pool).Shard.blocked);
    Alcotest.test_case "drain replays verdicts in submission order" `Quick (fun () ->
        with_pool ~domains:4 @@ fun pool ->
        let conns = [ 0; 1; 2; 3; 4; 5 ] in
        List.iter (register_pool pool) conns;
        let seqs =
          List.concat_map
            (fun conn ->
               map_in_order
                 (fun w -> Shardpool.submit pool ~conn_id:conn w)
                 (wires_for conn [ "x=alertkw1"; "benign" ]))
            conns
        in
        let seen = ref [] in
        Shardpool.drain pool ~f:(fun ~seq ~conn_id:_ _ -> seen := seq :: !seen);
        Alcotest.(check (list int)) "all seqs, ascending" seqs (List.rev !seen));
    Alcotest.test_case "deliveries after a drop rule are dropped silently" `Quick (fun () ->
        with_pool ~domains:1 @@ fun pool ->
        register_pool pool 7;
        let wires = wires_for 7 [ "q=dropkw33"; "late one"; "even later" ] in
        let seqs = map_in_order (Shardpool.submit pool ~conn_id:7) wires in
        let got = ref [] in
        Shardpool.drain pool ~f:(fun ~seq ~conn_id:_ _ -> got := seq :: !got);
        (* only the blocking delivery itself reports *)
        Alcotest.(check (list int)) "one callback" [ List.hd seqs ] (List.rev !got);
        Alcotest.(check bool) "blocked" true (Shardpool.is_blocked pool ~conn_id:7));
    Alcotest.test_case "registration rules match Middlebox" `Quick (fun () ->
        with_pool ~domains:2 @@ fun pool ->
        register_pool pool 1;
        Alcotest.(check bool) "duplicate raises" true
          (match register_pool pool 1 with
           | exception Invalid_argument _ -> true
           | _ -> false);
        Alcotest.(check bool) "unknown submit raises" true
          (match Shardpool.submit pool ~conn_id:99 "" with
           | exception Invalid_argument _ -> true
           | _ -> false);
        Shardpool.unregister pool ~conn_id:1;
        Shardpool.unregister pool ~conn_id:1;  (* idempotent *)
        register_pool pool 1;                  (* id reusable *)
        Alcotest.(check int) "one connection" 1 (Shardpool.stats pool).Shard.connections);
    Alcotest.test_case "worker exceptions surface at drain" `Quick (fun () ->
        let pool = Shardpool.create ~domains:2 ~mode:Exact ~rules () in
        Fun.protect ~finally:(fun () -> Shardpool.shutdown pool) @@ fun () ->
        Shardpool.register pool ~conn_id:1 ~salt0:0
          ~enc_chunk:(fun _ -> failwith "oracle exploded");
        Alcotest.(check bool) "raises" true
          (match Shardpool.drain pool ~f:(fun ~seq:_ ~conn_id:_ _ -> ()) with
           | exception Failure _ -> true
           | _ -> false));
    Alcotest.test_case "shutdown is idempotent and poisons the pool" `Quick (fun () ->
        let pool = Shardpool.create ~domains:2 ~mode:Exact ~rules () in
        Shardpool.shutdown pool;
        Shardpool.shutdown pool;
        Alcotest.(check bool) "use after shutdown raises" true
          (match register_pool pool 1 with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

(* ---------- differential: pool vs sequential middlebox ---------- *)

let payload_pool =
  [| "GET /index.html HTTP/1.1";
     "x=alertkw1&noise=1";
     "benign hello world";
     "y=otherkw2 z=alertkw1";
     "more benign filler text";
     "q=dropkw33";
     "tail traffic after things" |]

(* A trace is a list of (conn, payload index) deliveries.  Per-connection
   wires are pre-encrypted in that connection's delivery order and shared
   by the sequential run and every pool run. *)
let wires_of_trace trace =
  let per_conn = Hashtbl.create 8 in
  List.iter
    (fun (conn, p) ->
       let l = Option.value (Hashtbl.find_opt per_conn conn) ~default:[] in
       Hashtbl.replace per_conn conn (payload_pool.(p) :: l))
    trace;
  let streams = Hashtbl.create 8 in
  Hashtbl.iter
    (fun conn payloads ->
       Hashtbl.replace streams conn (ref (wires_for conn (List.rev payloads))))
    per_conn;
  map_in_order
    (fun (conn, _) ->
       let s = Hashtbl.find streams conn in
       match !s with
       | w :: rest ->
         s := rest;
         (conn, w)
       | [] -> assert false)
    trace

let conns_of_trace trace = List.sort_uniq compare (List.map fst trace)

(* verdict lists compared by (rule index, via) *)
let obs_of_verdicts vs = List.map (fun v -> (v.Engine.rule_idx, v.Engine.via)) vs

let run_sequential trace =
  let mb = Middlebox.create ~mode:Exact ~rules () in
  List.iter (register_seq mb) (conns_of_trace trace);
  let results =
    map_in_order
      (fun (conn, wire) ->
         match Middlebox.process_wire mb ~conn_id:conn wire with
         | vs -> Some (obs_of_verdicts vs)
         | exception Invalid_argument _ -> None)
      (wires_of_trace trace)
  in
  let flows =
    List.map
      (fun conn ->
         (conn, Middlebox.flow_stats mb ~conn_id:conn, Middlebox.is_blocked mb ~conn_id:conn))
      (conns_of_trace trace)
  in
  (results, Middlebox.stats mb, flows)

let run_pool ~domains trace =
  with_pool ~domains @@ fun pool ->
  List.iter (register_pool pool) (conns_of_trace trace);
  let seqs =
    map_in_order (fun (conn, wire) -> Shardpool.submit pool ~conn_id:conn wire)
      (wires_of_trace trace)
  in
  let by_seq = Hashtbl.create 64 in
  Shardpool.drain pool ~f:(fun ~seq ~conn_id:_ vs ->
      Hashtbl.replace by_seq seq (obs_of_verdicts vs));
  let results = List.map (Hashtbl.find_opt by_seq) seqs in
  let flows =
    List.map
      (fun conn ->
         (conn, Shardpool.flow_stats pool ~conn_id:conn, Shardpool.is_blocked pool ~conn_id:conn))
      (conns_of_trace trace)
  in
  (results, Shardpool.stats pool, flows)

let arb_trace =
  let print trace =
    String.concat ";" (List.map (fun (c, p) -> Printf.sprintf "%d:%d" c p) trace)
  in
  QCheck.make ~print
    QCheck.Gen.(
      let* n_conns = int_range 1 6 in
      let* len = int_range 1 30 in
      list_size (return len)
        (let* c = int_range 0 (n_conns - 1) in
         let* p = int_range 0 (Array.length payload_pool - 1) in
         (* scattered, non-dense ids so routing exercises the modulo *)
         return (3 + (c * 5), p)))

let diff_tests =
  let prop domains =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:(Printf.sprintf "pool@%d matches sequential middlebox" domains)
         ~count:10 arb_trace
         (fun trace ->
            let r_seq, s_seq, f_seq = run_sequential trace in
            let r_pool, s_pool, f_pool = run_pool ~domains trace in
            r_seq = r_pool && s_seq = s_pool && f_seq = f_pool))
  in
  [ prop 1; prop 2; prop 4 ]

(* ---------- migration: verdict/stats invariance ---------- *)

(* Like [run_pool], but with live migrations injected: after every
   [every]-th submission the delivering connection is moved to the next
   shard (its pending deliveries drain through the FIFO mailbox first,
   so mid-stream migration must be invisible in the results). *)
let run_pool_migrating ~domains ~every trace =
  with_pool ~domains @@ fun pool ->
  List.iter (register_pool pool) (conns_of_trace trace);
  let i = ref 0 in
  let seqs =
    map_in_order
      (fun (conn, wire) ->
         let seq = Shardpool.submit pool ~conn_id:conn wire in
         incr i;
         if !i mod every = 0 then
           Shardpool.migrate pool ~conn_id:conn
             ~shard:((Shardpool.conn_shard pool ~conn_id:conn + 1) mod domains);
         seq)
      (wires_of_trace trace)
  in
  let by_seq = Hashtbl.create 64 in
  Shardpool.drain pool ~f:(fun ~seq ~conn_id:_ vs ->
      Hashtbl.replace by_seq seq (obs_of_verdicts vs));
  let results = List.map (Hashtbl.find_opt by_seq) seqs in
  let flows =
    List.map
      (fun conn ->
         (conn, Shardpool.flow_stats pool ~conn_id:conn, Shardpool.is_blocked pool ~conn_id:conn))
      (conns_of_trace trace)
  in
  (results, Shardpool.stats pool, flows)

let migration_diff_tests =
  let prop (domains, every) =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:(Printf.sprintf "pool@%d migrating every %d matches sequential"
                  domains every)
         ~count:10 arb_trace
         (fun trace ->
            let r_seq, s_seq, f_seq = run_sequential trace in
            let r_mig, s_mig, f_mig = run_pool_migrating ~domains ~every trace in
            r_seq = r_mig && s_seq = s_mig && f_seq = f_mig))
  in
  List.map prop [ (2, 1); (2, 3); (4, 2) ]

(* Probable-mode tier-3 rules for the escalation migration tests. *)
let t3_rules =
  [ Bbx_rules.Parser.parse_rule
      "alert tcp any any -> any any (content:\"userquery\"; \
       pcre:\"/userquery=[0-9]+'/\"; sid:9;)" ]

let t3_details vs =
  List.map (fun v -> (v.Engine.rule_idx, Engine.detail_name v.Engine.detail)) vs

let migration_unit_tests =
  [ Alcotest.test_case "mid-escalation tier-3 migration" `Quick (fun () ->
        (* the sealed record is retained on shard A, the unlocking tokens
           arrive on shard B: escalation state (pending records, record
           sequence) must travel with the connection *)
        let k_ssl = String.make 16 'S' in
        let key = key_for 3 in
        Shardpool.with_pool ~domains:2 ~mode:Probable ~rules:t3_rules @@ fun pool ->
        Shardpool.register pool ~conn_id:3 ~salt0:0 ~enc_chunk:(token_enc key)
          ~direction:"client->server";
        let s = sender_create Probable key ~salt0:0 in
        let writer = Bbx_tls.Record.create ~key:k_ssl ~direction:"client->server" () in
        let p = "GET /?userquery=42' HTTP/1.1" in
        Shardpool.record_stream pool ~conn_id:3
          (Bbx_tls.Record.seal writer ("T" ^ p));
        let from = Shardpool.conn_shard pool ~conn_id:3 in
        Shardpool.migrate pool ~conn_id:3 ~shard:((from + 1) mod 2);
        Alcotest.(check bool) "shard changed" true
          (Shardpool.conn_shard pool ~conn_id:3 <> from);
        let wire = encode_tokens (sender_encrypt s ~k_ssl (delimiter p)) in
        let vs = Shardpool.process_wire pool ~conn_id:3 wire in
        Alcotest.(check (list (pair int string))) "regex verdict after migration"
          [ (0, "regex-match") ] (t3_details vs));
    Alcotest.test_case "migration between salt reset and next batch" `Quick (fun () ->
        let key = key_for 4 in
        let rules_kw = rules in
        let mk_wires () =
          let s = sender_create Exact key ~salt0:0 in
          let w1 = encode_tokens (sender_encrypt s (delimiter "x=alertkw1")) in
          let salt0 = sender_reset s in
          let w2 = encode_tokens (sender_encrypt s (delimiter "y=otherkw2")) in
          (w1, salt0, w2)
        in
        let w1, salt0, w2 = mk_wires () in
        (* reference: never migrated *)
        let mb = Middlebox.create ~mode:Exact ~rules:rules_kw () in
        Middlebox.register mb ~conn_id:4 ~salt0:0 ~enc_chunk:(token_enc key);
        let r1 = Middlebox.process_wire mb ~conn_id:4 w1 in
        Middlebox.engine mb ~conn_id:4 |> fun e -> Engine.reset e ~salt0;
        let r2 = Middlebox.process_wire mb ~conn_id:4 w2 in
        (* subject: migrated in the reset window, before the next batch *)
        Shardpool.with_pool ~domains:2 ~mode:Exact ~rules:rules_kw @@ fun pool ->
        Shardpool.register pool ~conn_id:4 ~salt0:0 ~enc_chunk:(token_enc key);
        let m1 = Shardpool.process_wire pool ~conn_id:4 w1 in
        Shardpool.reset_conn pool ~conn_id:4 ~salt0;
        Shardpool.migrate pool ~conn_id:4
          ~shard:((Shardpool.conn_shard pool ~conn_id:4 + 1) mod 2);
        let m2 = Shardpool.process_wire pool ~conn_id:4 w2 in
        Alcotest.(check (list (pair int string))) "pre-reset batch"
          (t3_details r1) (t3_details m1);
        Alcotest.(check (list (pair int string))) "post-reset batch"
          (t3_details r2) (t3_details m2));
    Alcotest.test_case "rebalance evens out a skewed pool" `Quick (fun () ->
        with_pool ~domains:4 @@ fun pool ->
        let conns = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
        List.iter (register_pool pool) conns;
        (* skew everything onto shard 0 *)
        List.iter (fun c -> Shardpool.migrate pool ~conn_id:c ~shard:0) conns;
        Alcotest.(check int) "skewed" 8 (Shardpool.conns_per_shard pool).(0);
        let moved = Shardpool.rebalance pool in
        Alcotest.(check bool) "some moved" true (moved > 0);
        Array.iter
          (fun n -> Alcotest.(check int) "even after rebalance" 2 n)
          (Shardpool.conns_per_shard pool);
        (* still routable and processable everywhere *)
        List.iter
          (fun c ->
             ignore (Shardpool.flow_stats pool ~conn_id:c : Shard.flow_stats))
          conns);
    Alcotest.test_case "export removes, import restores, errors reject" `Quick
      (fun () ->
        with_pool ~domains:2 @@ fun pool ->
        register_pool pool 6;
        match wires_for 6 [ "x=alertkw1"; "x=alertkw1 again" ] with
        | [ w1; w2 ] ->
          Alcotest.(check int) "first report" 1
            (List.length (Shardpool.process_wire pool ~conn_id:6 w1));
          let blob = Shardpool.export_conn pool ~conn_id:6 in
          Alcotest.(check bool) "unknown after export" true
            (match Shardpool.submit pool ~conn_id:6 w2 with
             | exception Invalid_argument _ -> true
             | _ -> false);
          Alcotest.(check bool) "corrupt blob rejected" true
            (match Shardpool.import_conn pool ~conn_id:6 (blob ^ "x") with
             | exception Invalid_argument _ -> true
             | _ -> false);
          Shardpool.import_conn pool ~conn_id:6 ~shard:1 blob;
          Alcotest.(check int) "pinned to requested shard" 1
            (Shardpool.conn_shard pool ~conn_id:6);
          Alcotest.(check bool) "duplicate import rejected" true
            (match Shardpool.import_conn pool ~conn_id:6 blob with
             | exception Invalid_argument _ -> true
             | _ -> false);
          (* the reported-rule bitset travelled: same keyword, no re-report *)
          Alcotest.(check int) "no re-report after import" 0
            (List.length (Shardpool.process_wire pool ~conn_id:6 w2));
          Alcotest.(check int) "one alert total" 1 (Shardpool.stats pool).Shard.alerts
        | _ -> Alcotest.fail "wire setup");
  ]

let () =
  Alcotest.run "shardpool"
    [ ("unit", unit_tests);
      ("differential", diff_tests);
      ("migration", migration_unit_tests @ migration_diff_tests) ]
