open Bbx_strawman
open Bbx_crypto

let t8 = Bbx_tokenizer.Tokenizer.pad_short

let song_tests =
  [ Alcotest.test_case "trapdoor finds its keyword" `Quick (fun () ->
        let key = Song.key_of_secret "k" in
        let s = Song.sender_create key in
        let td = Song.trapdoor key (t8 "attack") in
        let c1 = Song.encrypt s (t8 "benign") in
        let c2 = Song.encrypt s (t8 "attack") in
        Alcotest.(check bool) "miss" false (Song.test td c1);
        Alcotest.(check bool) "hit" true (Song.test td c2));
    Alcotest.test_case "randomized: repeats differ on the wire" `Quick (fun () ->
        let key = Song.key_of_secret "k" in
        let s = Song.sender_create key in
        let c1 = Song.encrypt s (t8 "same") in
        let c2 = Song.encrypt s (t8 "same") in
        Alcotest.(check bool) "ciphertexts differ" true (c1 <> c2);
        let td = Song.trapdoor key (t8 "same") in
        Alcotest.(check bool) "both match" true (Song.test td c1 && Song.test td c2));
    Alcotest.test_case "detect scans linearly and finds the index" `Quick (fun () ->
        let key = Song.key_of_secret "k" in
        let s = Song.sender_create key in
        let tds = Array.of_list (List.map (fun w -> Song.trapdoor key (t8 w)) [ "aa"; "bb"; "cc" ]) in
        let c = Song.encrypt s (t8 "bb") in
        Alcotest.(check (option int)) "index 1" (Some 1) (Song.detect tds c);
        Alcotest.(check (option int)) "no match" None
          (Song.detect tds (Song.encrypt s (t8 "dd"))));
    Alcotest.test_case "different keys do not cross-match" `Quick (fun () ->
        let k1 = Song.key_of_secret "k1" and k2 = Song.key_of_secret "k2" in
        let s = Song.sender_create k1 in
        let td = Song.trapdoor k2 (t8 "attack") in
        Alcotest.(check bool) "miss" false (Song.test td (Song.encrypt s (t8 "attack"))));
  ]

let fe_tests =
  [ Alcotest.test_case "predicate matches equal tokens" `Quick (fun () ->
        let key = Fe.key_of_secret "k" in
        let drbg = Drbg.create "fe" in
        let c = Fe.encrypt key drbg (t8 "attack") in
        Alcotest.(check bool) "hit" true (Fe.test (Fe.rule_key key (t8 "attack")) c);
        Alcotest.(check bool) "miss" false (Fe.test (Fe.rule_key key (t8 "benign")) c));
    Alcotest.test_case "randomized ciphertexts" `Quick (fun () ->
        let key = Fe.key_of_secret "k" in
        let drbg = Drbg.create "fe2" in
        let c1 = Fe.encrypt key drbg (t8 "same") in
        let c2 = Fe.encrypt key drbg (t8 "same") in
        Alcotest.(check bool) "differ" true (c1 <> c2);
        let rk = Fe.rule_key key (t8 "same") in
        Alcotest.(check bool) "both match" true (Fe.test rk c1 && Fe.test rk c2));
    Alcotest.test_case "detect linear scan" `Quick (fun () ->
        let key = Fe.key_of_secret "k" in
        let drbg = Drbg.create "fe3" in
        let rks = Array.of_list (List.map (fun w -> Fe.rule_key key (t8 w)) [ "x"; "y" ]) in
        Alcotest.(check (option int)) "found" (Some 1)
          (Fe.detect rks (Fe.encrypt key drbg (t8 "y")));
        Alcotest.(check (option int)) "absent" None
          (Fe.detect rks (Fe.encrypt key drbg (t8 "z"))));
  ]

(* The headline relative-performance claim (Table 2's shape): DPIEnc
   encryption is orders of magnitude faster than the FE strawman and the
   Song scheme's detection is linear while BlindBox's is logarithmic. *)
let shape_tests =
  [ Alcotest.test_case "FE encryption is >100x slower than DPIEnc" `Slow (fun () ->
        let time f =
          let t0 = Unix.gettimeofday () in
          f ();
          Unix.gettimeofday () -. t0
        in
        let dpi_key = Bbx_dpienc.Dpienc.key_of_secret "k" in
        let tk = Bbx_dpienc.Dpienc.token_key dpi_key (t8 "word") in
        let dpi_t =
          time (fun () -> for salt = 0 to 999 do ignore (Bbx_dpienc.Dpienc.encrypt tk ~salt) done)
          /. 1000.0
        in
        let fe_key = Fe.key_of_secret "k" in
        let drbg = Drbg.create "shape" in
        let fe_t = time (fun () -> for _ = 1 to 10 do ignore (Fe.encrypt fe_key drbg (t8 "word")) done) /. 10.0 in
        Alcotest.(check bool)
          (Printf.sprintf "fe %.1fus vs dpi %.3fus" (fe_t *. 1e6) (dpi_t *. 1e6))
          true (fe_t > 100.0 *. dpi_t));
  ]

let () =
  Alcotest.run "strawman"
    [ ("song", song_tests); ("fe", fe_tests); ("shape", shape_tests) ]
