open Bbx_dpienc.Dpienc
open Bbx_mbox
open Bbx_rules
open Bbx_tokenizer.Tokenizer

let key = key_of_secret "mbox-k"
let enc_chunk chunk = token_enc key chunk

let mk_engine ?(mode = Exact) rules = Engine.create ~mode ~salt0:0 ~rules ~enc_chunk ()

let sender ?(mode = Exact) () = sender_create mode key ~salt0:0

(* Encrypt a payload exactly as the BlindBox sender would (delimiter
   tokenization). *)
let encrypt_payload ?k_ssl s payload =
  sender_encrypt s ?k_ssl (delimiter payload)

let rule_of_string = Parser.parse_rule

module Record = Bbx_tls.Record

let engine_tests =
  [ Alcotest.test_case "distinct chunks dedup across rules" `Quick (fun () ->
        let rules =
          [ Rule.make [ Rule.make_content "keyword1" ];
            Rule.make [ Rule.make_content "keyword1"; Rule.make_content "keyword2" ] ]
        in
        Alcotest.(check int) "two chunks" 2 (Array.length (Engine.distinct_chunks rules)));
    Alcotest.test_case "protocol I: single keyword fires" `Quick (fun () ->
        let rules = [ Rule.make ~sid:1 [ Rule.make_content "evilword" ] ] in
        let e = mk_engine rules in
        let s = sender () in
        Engine.process e (encrypt_payload s "GET /?q=evilword HTTP/1.1");
        (match Engine.verdicts e with
         | [ v ] ->
           Alcotest.(check int) "rule 0" 0 v.Engine.rule_idx;
           Alcotest.(check bool) "exact" true (v.Engine.via = `Exact_match)
         | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs))));
    Alcotest.test_case "protocol I: long keyword needs all chunks" `Quick (fun () ->
        let kw = "maliciouspayload" (* 16 bytes = 2 chunks *) in
        let rules = [ Rule.make ~sid:2 [ Rule.make_content kw ] ] in
        let e = mk_engine rules in
        let s = sender () in
        (* only the first half appears: no rule verdict *)
        Engine.process e (encrypt_payload s "GET /?q=maliciou HTTP/1.1");
        Alcotest.(check int) "no verdict" 0 (List.length (Engine.verdicts e));
        let e2 = mk_engine rules in
        let s2 = sender () in
        Engine.process e2 (encrypt_payload s2 ("GET /?q=" ^ kw ^ " HTTP/1.1"));
        Alcotest.(check int) "fires" 1 (List.length (Engine.verdicts e2)));
    Alcotest.test_case "benign traffic: no verdicts, no hits" `Quick (fun () ->
        let rules = [ Rule.make [ Rule.make_content "evilword" ] ] in
        let e = mk_engine rules in
        let s = sender () in
        Engine.process e (encrypt_payload s "GET /index.html HTTP/1.1\r\nHost: ok.example");
        Alcotest.(check int) "no hits" 0 (List.length (Engine.keyword_hits e));
        Alcotest.(check int) "no verdicts" 0 (List.length (Engine.verdicts e)));
    Alcotest.test_case "protocol II: multiple keywords all required" `Quick (fun () ->
        let r = rule_of_string
            "alert tcp any any -> any any (content:\"firstkey\"; content:\"secondkey\"; sid:3;)" in
        let e = mk_engine [ r ] in
        let s = sender () in
        Engine.process e (encrypt_payload s "x=firstkey&y=unrelated");
        Alcotest.(check int) "half: no verdict" 0 (List.length (Engine.verdicts e));
        Engine.process e (encrypt_payload s "z=secondkey&w=1");
        Alcotest.(check int) "both: fires" 1 (List.length (Engine.verdicts e)));
    Alcotest.test_case "protocol II: offset constraint enforced" `Quick (fun () ->
        let r = rule_of_string
            "alert tcp any any -> any any (content:\"needle88\"; offset:10; depth:8; sid:4;)" in
        (* window tokenization so alignment is exact *)
        let e = mk_engine [ r ] in
        let s = sender () in
        let payload_match = "0123456789needle88 trailer" (* at offset 10 *) in
        Engine.process e (sender_encrypt s (window payload_match));
        Alcotest.(check int) "fires at 10" 1 (List.length (Engine.verdicts e));
        let e2 = mk_engine [ r ] in
        let s2 = sender () in
        Engine.process e2 (sender_encrypt s2 (window "needle88 at start instead"));
        Alcotest.(check int) "no fire at 0" 0 (List.length (Engine.verdicts e2)));
    Alcotest.test_case "protocol II agrees with plaintext reference" `Quick (fun () ->
        let r = rule_of_string
            "alert tcp any any -> any any (content:\"alphakey\"; content:\"betakeyx\"; distance:4; within:20; sid:5;)" in
        let payloads =
          [ "alphakey....betakeyx";          (* distance 4: ok *)
            "alphakey..betakeyx";            (* too close *)
            "alphakey.........................betakeyx" (* too far *) ]
        in
        List.iter
          (fun payload ->
             let reference = Classify.matches_plaintext r payload in
             let e = mk_engine [ r ] in
             let s = sender () in
             Engine.process e (sender_encrypt s (window payload));
             let got = Engine.verdicts e <> [] in
             Alcotest.(check bool) (Printf.sprintf "agrees on %S" payload) reference got)
          payloads);
    Alcotest.test_case "protocol III: pcre needs plaintext" `Quick (fun () ->
        let r = rule_of_string
            "alert tcp any any -> any any (content:\"userquery\"; pcre:\"/userquery=[0-9]+'/\"; sid:6;)" in
        let payload = "GET /?userquery=42' HTTP/1.1" in
        let e = mk_engine ~mode:Probable [ r ] in
        let s = sender ~mode:Probable () in
        let k_ssl = String.make 16 'S' in
        Engine.process e (encrypt_payload ~k_ssl s payload);
        (* without plaintext, pcre rules cannot fire *)
        Alcotest.(check int) "encrypted only: no verdict" 0 (List.length (Engine.verdicts e));
        (* the keyword match recovered the key *)
        Alcotest.(check (option string)) "key recovered" (Some k_ssl) (Engine.recovered_key e);
        (match Engine.verdicts ~plaintext:payload e with
         | [ v ] -> Alcotest.(check bool) "probable cause" true (v.Engine.via = `Probable_cause)
         | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs))));
    Alcotest.test_case "probable cause does not fire on benign pcre" `Quick (fun () ->
        let r = rule_of_string
            "alert tcp any any -> any any (content:\"userquery\"; pcre:\"/userquery=[0-9]+'/\"; sid:7;)" in
        let payload = "GET /?userquery=42 HTTP/1.1" (* keyword yes, pcre no *) in
        let e = mk_engine ~mode:Probable [ r ] in
        let s = sender ~mode:Probable () in
        Engine.process e (encrypt_payload ~k_ssl:(String.make 16 'S') s payload);
        Alcotest.(check bool) "key recovered (probable cause)" true (Engine.recovered_key e <> None);
        Alcotest.(check int) "but no verdict" 0
          (List.length (Engine.verdicts ~plaintext:payload e)));
    Alcotest.test_case "no keyword match leaves key unrecoverable" `Quick (fun () ->
        let r = rule_of_string
            "alert tcp any any -> any any (content:\"userquery\"; pcre:\"/x/\"; sid:8;)" in
        let e = mk_engine ~mode:Probable [ r ] in
        let s = sender ~mode:Probable () in
        Engine.process e (encrypt_payload ~k_ssl:(String.make 16 'S') s "GET /benign HTTP/1.1");
        Alcotest.(check (option string)) "no key" None (Engine.recovered_key e));
    Alcotest.test_case "reset keeps matching working" `Quick (fun () ->
        let rules = [ Rule.make [ Rule.make_content "evilword" ] ] in
        let e = mk_engine rules in
        let s = sender () in
        Engine.process e (encrypt_payload s "q=evilword");
        let new_salt0 = sender_reset s in
        Engine.reset e ~salt0:new_salt0;
        Engine.process e (encrypt_payload s "q=evilword");
        Alcotest.(check int) "hit after reset" 1 (List.length (Engine.keyword_hits e));
        Alcotest.(check int) "verdict" 1 (List.length (Engine.verdicts e)));
    Alcotest.test_case "reset preserves recovered key and monotonic hits" `Quick (fun () ->
        (* Engine.reset clears salt counters and the per-rule match state,
           but deliberately keeps [recovered_key] (probable cause already
           fired; forgetting it would un-ring the bell) and the monotonic
           [hit_count] that flow stats report. *)
        let r = rule_of_string
            "alert tcp any any -> any any (content:\"userquery\"; pcre:\"/userquery=[0-9]+'/\"; sid:9;)" in
        let e = mk_engine ~mode:Probable [ r ] in
        let s = sender ~mode:Probable () in
        let k_ssl = String.make 16 'S' in
        let payload = "GET /?userquery=42' HTTP/1.1" in
        Engine.process e (encrypt_payload ~k_ssl s payload);
        Alcotest.(check (option string)) "key recovered" (Some k_ssl) (Engine.recovered_key e);
        let hits_before = Engine.hit_count e in
        Alcotest.(check bool) "hits seen" true (hits_before > 0);
        let new_salt0 = sender_reset s in
        Engine.reset e ~salt0:new_salt0;
        Alcotest.(check (option string)) "key survives reset" (Some k_ssl)
          (Engine.recovered_key e);
        Alcotest.(check int) "hit_count survives reset" hits_before (Engine.hit_count e);
        Alcotest.(check int) "hit list cleared" 0 (List.length (Engine.keyword_hits e));
        (* matching still works after the reset: the same keyword refires *)
        Engine.process e (encrypt_payload ~k_ssl s payload);
        Alcotest.(check bool) "rematch counted" true (Engine.hit_count e > hits_before);
        (match Engine.verdicts ~plaintext:payload e with
         | [ v ] -> Alcotest.(check bool) "probable cause" true (v.Engine.via = `Probable_cause)
         | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs))));
    Alcotest.test_case "keyword hits carry stream offsets" `Quick (fun () ->
        let rules = [ Rule.make [ Rule.make_content "evilword" ] ] in
        let e = mk_engine rules in
        let s = sender () in
        let payload = "aa bb=evilword" in
        Engine.process e (encrypt_payload s payload);
        (match Engine.keyword_hits e with
         | [ (chunk, off) ] ->
           Alcotest.(check string) "chunk" "evilword" chunk;
           Alcotest.(check int) "offset" 6 off
         | l -> Alcotest.fail (Printf.sprintf "expected 1 hit, got %d" (List.length l))));
  ]

(* ---------- multi-connection middlebox ---------- *)

let middlebox_tests =
  let rules =
    [ Rule.make ~sid:1 [ Rule.make_content "alertkw1" ];
      Rule.make ~action:Rule.Drop ~sid:2 [ Rule.make_content "dropkw22" ] ]
  in
  let key_for conn = key_of_secret (Printf.sprintf "conn-%d" conn) in
  let register mb conn =
    let key = key_for conn in
    Engine.(ignore distinct_chunks);
    Middlebox.register mb ~conn_id:conn ~salt0:0 ~enc_chunk:(token_enc key)
  in
  let tokens conn payload =
    let s = sender_create Exact (key_for conn) ~salt0:0 in
    sender_encrypt s (delimiter payload)
  in
  [ Alcotest.test_case "connections are isolated" `Quick (fun () ->
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        register mb 2;
        (* conn 1 attacks; conn 2 stays clean *)
        let v1 = Middlebox.process mb ~conn_id:1 (tokens 1 "x=alertkw1") in
        let v2 = Middlebox.process mb ~conn_id:2 (tokens 2 "hello clean world") in
        Alcotest.(check int) "conn 1 alert" 1 (List.length v1);
        Alcotest.(check int) "conn 2 clean" 0 (List.length v2);
        let st = Middlebox.stats mb in
        Alcotest.(check int) "2 conns" 2 st.Middlebox.connections;
        Alcotest.(check int) "1 alert" 1 st.Middlebox.alerts);
    Alcotest.test_case "cross-connection tokens never match" `Quick (fun () ->
        (* per-connection keys: conn 2's attack tokens are noise to conn 1 *)
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        let foreign = tokens 2 "x=alertkw1" in
        Alcotest.(check int) "no match" 0
          (List.length (Middlebox.process mb ~conn_id:1 foreign)));
    Alcotest.test_case "drop rule blocks only that connection" `Quick (fun () ->
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        register mb 2;
        let _ = Middlebox.process mb ~conn_id:1 (tokens 1 "x=dropkw22") in
        Alcotest.(check bool) "1 blocked" true (Middlebox.is_blocked mb ~conn_id:1);
        Alcotest.(check bool) "2 fine" false (Middlebox.is_blocked mb ~conn_id:2);
        Alcotest.(check bool) "processing blocked conn raises" true
          (match Middlebox.process mb ~conn_id:1 (tokens 1 "more") with
           | exception Invalid_argument _ -> true
           | _ -> false);
        Alcotest.(check int) "blocked count" 1 (Middlebox.stats mb).Middlebox.blocked);
    Alcotest.test_case "duplicate registration rejected" `Quick (fun () ->
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        Alcotest.(check bool) "raises" true
          (match register mb 1 with exception Invalid_argument _ -> true | _ -> false));
    Alcotest.test_case "unregister frees the id" `Quick (fun () ->
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        Middlebox.unregister mb ~conn_id:1;
        Alcotest.(check int) "0 conns" 0 (Middlebox.stats mb).Middlebox.connections;
        register mb 1 (* re-usable *));
    Alcotest.test_case "verdicts reported once per connection" `Quick (fun () ->
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        let v1 = Middlebox.process mb ~conn_id:1 (tokens 1 "x=alertkw1") in
        (* same rule again in later traffic: no duplicate report *)
        let s = sender_create Exact (key_for 1) ~salt0:0 in
        let _ = sender_encrypt s (delimiter "x=alertkw1") in
        let later = sender_encrypt s (delimiter "y=alertkw1") in
        let v2 = Middlebox.process mb ~conn_id:1 later in
        Alcotest.(check int) "first" 1 (List.length v1);
        Alcotest.(check int) "second" 0 (List.length v2));
  ]

(* ---------- middlebox stats accounting ---------- *)

let stats_tests =
  let rules =
    [ Rule.make ~sid:1 [ Rule.make_content "alertkw1" ];
      Rule.make ~sid:2 [ Rule.make_content "otherkw2" ];
      Rule.make ~action:Rule.Drop ~sid:3 [ Rule.make_content "dropkw33" ] ]
  in
  let key_for conn = key_of_secret (Printf.sprintf "stats-conn-%d" conn) in
  let register mb conn =
    Middlebox.register mb ~conn_id:conn ~salt0:0 ~enc_chunk:(token_enc (key_for conn))
  in
  let check_stats msg (expect : Middlebox.stats) (got : Middlebox.stats) =
    Alcotest.(check int) (msg ^ ": connections") expect.Middlebox.connections got.Middlebox.connections;
    Alcotest.(check int) (msg ^ ": tokens") expect.Middlebox.total_tokens got.Middlebox.total_tokens;
    Alcotest.(check int) (msg ^ ": hits") expect.Middlebox.total_keyword_hits got.Middlebox.total_keyword_hits;
    Alcotest.(check int) (msg ^ ": alerts") expect.Middlebox.alerts got.Middlebox.alerts;
    Alcotest.(check int) (msg ^ ": blocked") expect.Middlebox.blocked got.Middlebox.blocked
  in
  [ Alcotest.test_case "list and wire paths account identically" `Quick (fun () ->
        let traffic =
          [ "x=alertkw1&noise=1"; "benign hello world"; "y=otherkw2 z=alertkw1";
            "more benign filler"; "q=dropkw33" ]
        in
        let mb_list = Middlebox.create ~mode:Exact ~rules () in
        let mb_wire = Middlebox.create ~mode:Exact ~rules () in
        register mb_list 1;
        register mb_wire 1;
        let s_list = sender_create Exact (key_for 1) ~salt0:0 in
        let s_wire = sender_create Exact (key_for 1) ~salt0:0 in
        List.iter
          (fun payload ->
             let toks = sender_encrypt s_list (delimiter payload) in
             let wire = encode_tokens (sender_encrypt s_wire (delimiter payload)) in
             let run_list () = Middlebox.process mb_list ~conn_id:1 toks in
             let run_wire () = Middlebox.process_wire mb_wire ~conn_id:1 wire in
             match (run_list (), run_wire ()) with
             | v1, v2 -> Alcotest.(check int) "same verdicts" (List.length v1) (List.length v2)
             | exception Invalid_argument _ ->
               (* blocked on both paths or the test is broken; assert parity *)
               Alcotest.(check bool) "wire also blocked" true
                 (match run_wire () with exception Invalid_argument _ -> true | _ -> false))
          traffic;
        check_stats "parity" (Middlebox.stats mb_list) (Middlebox.stats mb_wire);
        Alcotest.(check bool) "hits non-zero" true
          ((Middlebox.stats mb_list).Middlebox.total_keyword_hits > 0));
    Alcotest.test_case "repeated alerts counted once per rule per connection" `Quick (fun () ->
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        let s = sender_create Exact (key_for 1) ~salt0:0 in
        let send payload = Middlebox.process mb ~conn_id:1 (sender_encrypt s (delimiter payload)) in
        ignore (send "a=alertkw1" : Engine.verdict list);
        ignore (send "b=alertkw1" : Engine.verdict list);
        ignore (send "c=alertkw1" : Engine.verdict list);
        let st = Middlebox.stats mb in
        Alcotest.(check int) "one alert" 1 st.Middlebox.alerts;
        (* every occurrence still counts as a keyword hit *)
        Alcotest.(check int) "three hits" 3 st.Middlebox.total_keyword_hits);
    Alcotest.test_case "flow stats track per-connection activity" `Quick (fun () ->
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        register mb 2;
        let s1 = sender_create Exact (key_for 1) ~salt0:0 in
        let t1 = sender_encrypt s1 (delimiter "x=alertkw1 pad") in
        ignore (Middlebox.process mb ~conn_id:1 t1 : Engine.verdict list);
        let f1 = Middlebox.flow_stats mb ~conn_id:1 in
        let f2 = Middlebox.flow_stats mb ~conn_id:2 in
        Alcotest.(check int) "conn 1 tokens" (List.length t1) f1.Middlebox.flow_tokens;
        Alcotest.(check int) "conn 1 hits" 1 f1.Middlebox.flow_hits;
        Alcotest.(check int) "conn 1 verdicts" 1 f1.Middlebox.flow_verdicts;
        Alcotest.(check bool) "conn 1 not blocked" false f1.Middlebox.flow_blocked;
        Alcotest.(check int) "conn 2 idle" 0 f2.Middlebox.flow_tokens;
        let total =
          Middlebox.fold_flows mb ~init:0 ~f:(fun acc _ f -> acc + f.Middlebox.flow_tokens)
        in
        Alcotest.(check int) "fold sums tokens" (List.length t1) total);
    Alcotest.test_case "blocked connections accounted exactly once" `Quick (fun () ->
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        register mb 2;
        let s1 = sender_create Exact (key_for 1) ~salt0:0 in
        ignore (Middlebox.process mb ~conn_id:1 (sender_encrypt s1 (delimiter "q=dropkw33"))
                : Engine.verdict list);
        let st = Middlebox.stats mb in
        Alcotest.(check int) "blocked 1" 1 st.Middlebox.blocked;
        Alcotest.(check bool) "flow blocked" true
          (Middlebox.flow_stats mb ~conn_id:1).Middlebox.flow_blocked;
        (* the blocked count survives further traffic on other connections *)
        let s2 = sender_create Exact (key_for 2) ~salt0:0 in
        ignore (Middlebox.process mb ~conn_id:2 (sender_encrypt s2 (delimiter "benign"))
                : Engine.verdict list);
        Alcotest.(check int) "still 1" 1 (Middlebox.stats mb).Middlebox.blocked);
    Alcotest.test_case "unregister drops the connection but keeps totals" `Quick (fun () ->
        let mb = Middlebox.create ~mode:Exact ~rules () in
        register mb 1;
        let s = sender_create Exact (key_for 1) ~salt0:0 in
        let toks = sender_encrypt s (delimiter "x=alertkw1") in
        ignore (Middlebox.process mb ~conn_id:1 toks : Engine.verdict list);
        let before = Middlebox.stats mb in
        Middlebox.unregister mb ~conn_id:1;
        let after = Middlebox.stats mb in
        Alcotest.(check int) "0 connections" 0 after.Middlebox.connections;
        Alcotest.(check int) "tokens kept" before.Middlebox.total_tokens after.Middlebox.total_tokens;
        Alcotest.(check int) "hits kept" before.Middlebox.total_keyword_hits after.Middlebox.total_keyword_hits;
        Alcotest.(check int) "alerts kept" before.Middlebox.alerts after.Middlebox.alerts;
        Alcotest.(check bool) "flow stats gone" true
          (match Middlebox.flow_stats mb ~conn_id:1 with
           | exception Invalid_argument _ -> true
           | _ -> false);
        (* re-registering restarts the flow from zero *)
        register mb 1;
        Alcotest.(check int) "fresh flow" 0
          (Middlebox.flow_stats mb ~conn_id:1).Middlebox.flow_tokens);
  ]

(* ---------- tiered escalation over recovered record streams ---------- *)

let tiered_tests =
  let k_ssl = String.make 16 'K' in
  let pcre_rule sid =
    rule_of_string
      (Printf.sprintf
         "alert tcp any any -> any any (content:\"userquery\"; \
          pcre:\"/userquery=[0-9]+'/\"; sid:%d;)"
         sid)
  in
  let mk_writer () = Record.create ~key:k_ssl ~direction:"client->server" () in
  (* Ship one delivery the way Session does: the sealed record first (the
     escalation pump decrypts in stream order), then the token stream. *)
  let deliver e s writer payload =
    Engine.record_stream e (Record.seal writer ("T" ^ payload));
    Engine.process e (encrypt_payload ~k_ssl s payload)
  in
  [ Alcotest.test_case "records escalate to a regex verdict, no caller plaintext"
      `Quick (fun () ->
        let e = mk_engine ~mode:Probable [ pcre_rule 31 ] in
        let s = sender ~mode:Probable () in
        let writer = mk_writer () in
        let payload = "GET /?userquery=42' HTTP/1.1" in
        deliver e s writer payload;
        Alcotest.(check bool) "unlocked" true (Engine.escalation e = `Unlocked);
        Alcotest.(check (option string)) "stream recovered" (Some payload)
          (Engine.decrypted_stream e);
        (match Engine.verdicts e with
         | [ v ] ->
           Alcotest.(check bool) "probable cause" true (v.Engine.via = `Probable_cause);
           Alcotest.(check string) "regex-match detail" "regex-match"
             (Engine.detail_name v.Engine.detail)
         | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs))));
    Alcotest.test_case "budget exhaustion flags, never matches" `Quick (fun () ->
        let budget = { Engine.max_plain_bytes = 32; max_scan_ms = 0 } in
        let e =
          Engine.create ~budget ~mode:Probable ~salt0:0
            ~rules:[ pcre_rule 32 ] ~enc_chunk ()
        in
        let s = sender ~mode:Probable () in
        let writer = mk_writer () in
        let payload = "GET /?userquery=42' HTTP/1.1 " ^ String.make 400 'z' in
        deliver e s writer payload;
        Alcotest.(check bool) "exhausted" true (Engine.escalation e = `Exhausted);
        (match Engine.verdicts e with
         | [ v ] ->
           Alcotest.(check string) "flagged, not matched" "budget-exceeded"
             (Engine.detail_name v.Engine.detail)
         | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs))));
    Alcotest.test_case "escalated state survives reset" `Quick (fun () ->
        let e = mk_engine ~mode:Probable [ pcre_rule 33 ] in
        let s = sender ~mode:Probable () in
        let writer = mk_writer () in
        let p1 = "GET /?userquery=42' HTTP/1.1" in
        deliver e s writer p1;
        Alcotest.(check int) "verdict before reset" 1
          (List.length (Engine.verdicts e));
        let new_salt0 = sender_reset s in
        Engine.reset e ~salt0:new_salt0;
        (* the whole escalation state downstream of probable cause is a
           connection-lifetime fact: a salt rotation must not forget it *)
        Alcotest.(check (option string)) "key survives" (Some k_ssl)
          (Engine.recovered_key e);
        Alcotest.(check bool) "still unlocked" true (Engine.escalation e = `Unlocked);
        Alcotest.(check (option string)) "stream survives" (Some p1)
          (Engine.decrypted_stream e);
        (match Engine.verdicts e with
         | [ v ] ->
           Alcotest.(check string) "sticky decision re-emitted" "regex-match"
             (Engine.detail_name v.Engine.detail)
         | vs -> Alcotest.fail (Printf.sprintf "expected 1 verdict, got %d" (List.length vs)));
        (* the record layer keeps decrypting across the reset: sequence
           numbers continue, so a post-reset record still opens *)
        let p2 = " and more userquery=7' data" in
        deliver e s writer p2;
        Alcotest.(check (option string)) "stream extends" (Some (p1 ^ p2))
          (Engine.decrypted_stream e));
    Alcotest.test_case "tier gates which rules execute" `Quick (fun () ->
        let rules =
          [ rule_of_string
              "alert tcp any any -> any any (content:\"alertkw1\"; sid:41;)";
            rule_of_string
              "alert tcp any any -> any any (content:\"firstkey\"; content:\"secondkey\"; sid:42;)";
            pcre_rule 43 ]
        in
        let payload = "x=alertkw1 y=firstkey z=secondkey GET /?userquery=42' q" in
        let run tier =
          let e =
            Engine.create ~tier ~mode:Probable ~salt0:0 ~rules ~enc_chunk ()
          in
          let s = sender ~mode:Probable () in
          let writer = mk_writer () in
          deliver e s writer payload;
          ( List.sort_uniq compare
              (List.map
                 (fun v -> Option.value v.Engine.rule.Rule.sid ~default:0)
                 (Engine.verdicts e)),
            e )
        in
        let sids1, e1 = run Classify.Protocol_I in
        Alcotest.(check (list int)) "tier 1: exact only" [ 41 ] sids1;
        Alcotest.(check bool) "tier getter" true
          (Engine.tier e1 = Classify.Protocol_I);
        let sids2, e2 = run Classify.Protocol_II in
        Alcotest.(check (list int)) "tier 2: no decrypt rules" [ 41; 42 ] sids2;
        (* below tier 3 the engine never retains records *)
        Alcotest.(check (option string)) "no stream at tier 2" None
          (Engine.decrypted_stream e2);
        let sids3, _ = run Classify.Protocol_III in
        Alcotest.(check (list int)) "tier 3: everything" [ 41; 42; 43 ] sids3);
    Alcotest.test_case "verdict details name the protocol that fired" `Quick
      (fun () ->
        let rules =
          [ rule_of_string
              "alert tcp any any -> any any (content:\"alertkw1\"; sid:51;)";
            rule_of_string
              "alert tcp any any -> any any (content:\"firstkey\"; content:\"secondkey\"; sid:52;)";
            pcre_rule 53 ]
        in
        let e = mk_engine ~mode:Probable rules in
        let s = sender ~mode:Probable () in
        let writer = mk_writer () in
        deliver e s writer "x=alertkw1 y=firstkey z=secondkey GET /?userquery=42' q";
        let details =
          List.sort compare
            (List.map
               (fun v ->
                  ( Option.value v.Engine.rule.Rule.sid ~default:0,
                    Engine.detail_name v.Engine.detail ))
               (Engine.verdicts e))
        in
        Alcotest.(check (list (pair int string))) "per-class details"
          [ (51, "exact-hit"); (52, "composite-match"); (53, "regex-match") ]
          details);
  ]

(* ---------- probable-cause analysis scripts ---------- *)

let script_tests =
  let http_post ?(headers = []) ~body path =
    Bbx_net.Http.render_request (Bbx_net.Http.post ~headers ~body path)
  in
  [ Alcotest.test_case "large upload flagged" `Quick (fun () ->
        let s = Scripts.large_upload ~threshold:1000 () in
        let big = http_post ~body:(String.make 2000 'x') "/upload" in
        let small = http_post ~body:"tiny" "/upload" in
        Alcotest.(check bool) "big" true (Scripts.run s big <> None);
        Alcotest.(check bool) "small" false (Scripts.run s small <> None);
        (* GETs never flagged *)
        let get = Bbx_net.Http.render_request (Bbx_net.Http.get "/x") in
        Alcotest.(check bool) "get" false (Scripts.run s get <> None));
    Alcotest.test_case "high entropy body flagged" `Quick (fun () ->
        let s = Scripts.high_entropy_body () in
        let drbg = Bbx_crypto.Drbg.create "entropy" in
        let random_blob = http_post ~body:(Bbx_crypto.Drbg.bytes drbg 4096) "/exfil" in
        let text = http_post ~body:(String.concat " " (List.init 200 (fun _ -> "word"))) "/ok" in
        Alcotest.(check bool) "blob" true (Scripts.run s random_blob <> None);
        Alcotest.(check bool) "text" false (Scripts.run s text <> None));
    Alcotest.test_case "sql injection grammar flagged" `Quick (fun () ->
        let s = Scripts.sql_injection () in
        let evil = Bbx_net.Http.render_request (Bbx_net.Http.get "/item?id=1' union select password from users--") in
        let fine = Bbx_net.Http.render_request (Bbx_net.Http.get "/item?id=union station") in
        Alcotest.(check bool) "evil" true (Scripts.run s evil <> None);
        Alcotest.(check bool) "fine" false (Scripts.run s fine <> None));
    Alcotest.test_case "nop sled flagged" `Quick (fun () ->
        let s = Scripts.nop_sled () in
        let sled = "prefix" ^ String.make 32 '\x90' ^ "suffix" in
        Alcotest.(check bool) "sled" true (Scripts.run s sled <> None);
        Alcotest.(check bool) "short run" false
          (Scripts.run s (String.make 8 '\x90') <> None));
    Alcotest.test_case "run_all aggregates" `Quick (fun () ->
        let payload =
          http_post ~body:(String.make 200_000 '\x90') "/upload"
        in
        let findings = Scripts.run_all Scripts.defaults payload in
        let names = List.map (fun f -> f.Scripts.script) findings in
        Alcotest.(check bool) "large-upload" true (List.mem "large-upload" names);
        Alcotest.(check bool) "nop-sled" true (List.mem "nop-sled" names));
  ]

(* Snapshot/restore (connection migration) and the fleet-shared prefilter.
   The contract under test: [restore (snapshot e)] is observably identical
   to [e] — same verdicts now and on every future delivery — and a shared
   prefilter prep changes footprint, never behaviour. *)
let snapshot_tests =
  let k_ssl = String.make 16 'K' in
  let pcre_rule sid =
    rule_of_string
      (Printf.sprintf
         "alert tcp any any -> any any (content:\"userquery\"; \
          pcre:\"/userquery=[0-9]+'/\"; sid:%d;)"
         sid)
  in
  let mk_writer () = Record.create ~key:k_ssl ~direction:"client->server" () in
  let details e =
    List.map (fun v -> (v.Engine.rule_idx, Engine.detail_name v.Engine.detail))
      (Engine.verdicts e)
  in
  [ Alcotest.test_case "restore is observably identical (exact mode)" `Quick (fun () ->
        let rules =
          [ Rule.make ~sid:1 [ Rule.make_content "evilword" ];
            Rule.make ~sid:2 [ Rule.make_content "otherkw2" ] ]
        in
        let e = mk_engine rules in
        let s = sender () in
        Engine.process e (encrypt_payload s "x=evilword tail");
        let r = Engine.restore (Engine.snapshot e) in
        Alcotest.(check (list (pair int string))) "verdicts travel" (details e) (details r);
        Alcotest.(check int) "hit count travels" (Engine.hit_count e) (Engine.hit_count r);
        (* identical future: the same post-snapshot wires land the same *)
        let toks = encrypt_payload s "y=otherkw2 and evilword again" in
        Engine.process e toks;
        Engine.process r toks;
        Alcotest.(check (list (pair int string))) "future verdicts agree"
          (details e) (details r);
        Alcotest.(check int) "future hits agree" (Engine.hit_count e) (Engine.hit_count r);
        (* and across a salt reset *)
        let salt0 = sender_reset s in
        Engine.reset e ~salt0;
        Engine.reset r ~salt0;
        let toks = encrypt_payload s "post-reset evilword" in
        Engine.process e toks;
        Engine.process r toks;
        Alcotest.(check int) "post-reset hits agree" (Engine.hit_count e)
          (Engine.hit_count r));
    Alcotest.test_case "mid-escalation snapshot carries the sealed stream" `Quick
      (fun () ->
        let e = mk_engine ~mode:Probable [ pcre_rule 41 ] in
        let s = sender ~mode:Probable () in
        let writer = mk_writer () in
        let p1 = "GET /?userquery=42' HTTP/1.1" in
        (* record shipped, tokens not yet processed: the snapshot must
           carry the still-sealed pending record and the record-layer
           sequence so escalation completes on the restored side *)
        Engine.record_stream e (Record.seal writer ("T" ^ p1));
        let r = Engine.restore (Engine.snapshot e) in
        let toks = encrypt_payload ~k_ssl s p1 in
        Engine.process e toks;
        Engine.process r toks;
        List.iter
          (fun (name, x) ->
             Alcotest.(check bool) (name ^ " unlocked") true
               (Engine.escalation x = `Unlocked);
             Alcotest.(check (option string)) (name ^ " stream") (Some p1)
               (Engine.decrypted_stream x);
             Alcotest.(check (list (pair int string))) (name ^ " verdicts")
               [ (0, "regex-match") ] (details x))
          [ ("original", e); ("restored", r) ]);
    Alcotest.test_case "post-escalation snapshot keeps decrypting" `Quick (fun () ->
        let e = mk_engine ~mode:Probable [ pcre_rule 42 ] in
        let s = sender ~mode:Probable () in
        let writer = mk_writer () in
        let p1 = "GET /?userquery=42' HTTP/1.1" in
        Engine.record_stream e (Record.seal writer ("T" ^ p1));
        Engine.process e (encrypt_payload ~k_ssl s p1);
        Alcotest.(check bool) "unlocked before" true (Engine.escalation e = `Unlocked);
        let r = Engine.restore (Engine.snapshot e) in
        Alcotest.(check (option string)) "key travels" (Some k_ssl)
          (Engine.recovered_key r);
        (* the record-layer sequence travels: the next sealed record still
           opens on the restored engine *)
        let p2 = " more userquery=7' data" in
        Engine.record_stream r (Record.seal writer ("T" ^ p2));
        Engine.process r (encrypt_payload ~k_ssl s p2);
        Alcotest.(check (option string)) "stream extends after restore"
          (Some (p1 ^ p2)) (Engine.decrypted_stream r));
    Alcotest.test_case "malformed snapshots are rejected" `Quick (fun () ->
        let e = mk_engine [ Rule.make ~sid:1 [ Rule.make_content "evilword" ] ] in
        let s = sender () in
        Engine.process e (encrypt_payload s "x=evilword");
        let blob = Engine.snapshot e in
        let rejects what b =
          Alcotest.(check bool) what true
            (match Engine.restore b with
             | exception Invalid_argument _ -> true
             | _ -> false)
        in
        rejects "empty" "";
        rejects "truncated" (String.sub blob 0 (String.length blob - 1));
        rejects "bad version" ("\xff" ^ String.sub blob 1 (String.length blob - 1));
        rejects "trailing garbage" (blob ^ "x"));
    Alcotest.test_case "middlebox export/import: reporting and blocking travel"
      `Quick (fun () ->
        let rules =
          [ Rule.make ~sid:1 [ Rule.make_content "alertkw1" ];
            Rule.make ~action:Rule.Drop ~sid:3 [ Rule.make_content "dropkw33" ] ]
        in
        let src = Middlebox.create ~mode:Exact ~rules () in
        let s = sender () in
        Middlebox.register src ~conn_id:5 ~salt0:0 ~enc_chunk;
        Alcotest.(check int) "first report" 1
          (List.length (Middlebox.process src ~conn_id:5 (encrypt_payload s "x=alertkw1")));
        let blob = Middlebox.export_conn src ~conn_id:5 in
        Alcotest.(check bool) "gone from source" true
          (match Middlebox.flow_stats src ~conn_id:5 with
           | exception Invalid_argument _ -> true
           | _ -> false);
        Alcotest.(check int) "source totals stay" 1 (Middlebox.stats src).alerts;
        let dst = Middlebox.create ~mode:Exact ~rules () in
        Middlebox.import_conn dst ~conn_id:5 blob;
        (* the reported-rule bitset travelled: no re-report of sid 1 *)
        Alcotest.(check int) "no re-report after import" 0
          (List.length (Middlebox.process dst ~conn_id:5 (encrypt_payload s "x=alertkw1 again")));
        ignore (Middlebox.process dst ~conn_id:5 (encrypt_payload s "q=dropkw33")
                : Engine.verdict list);
        Alcotest.(check bool) "drop rule blocks after import" true
          (Middlebox.is_blocked dst ~conn_id:5);
        (* duplicate and mode-mismatch imports are rejected *)
        Alcotest.(check bool) "duplicate id rejected" true
          (match Middlebox.import_conn dst ~conn_id:5 blob with
           | exception Invalid_argument _ -> true
           | _ -> false);
        let wrong = Middlebox.create ~mode:Probable ~rules () in
        let blob2 = Middlebox.export_conn dst ~conn_id:5 in
        Alcotest.(check bool) "mode mismatch rejected" true
          (match Middlebox.import_conn wrong ~conn_id:5 blob2 with
           | exception Invalid_argument _ -> true
           | _ -> false));
    Alcotest.test_case "shared prefilter: same verdicts, flat footprint" `Quick
      (fun () ->
        let rules = [ pcre_rule 51; Rule.make ~sid:52 [ Rule.make_content "evilword" ] ] in
        let pp = Engine.prepare_prefilter rules in
        let own = mk_engine ~mode:Probable rules in
        let shared =
          Engine.create ~prefilter:pp ~mode:Probable ~salt0:0 ~rules ~enc_chunk ()
        in
        Alcotest.(check bool) "borrowed automaton is charged to its owner" true
          (Engine.footprint_bytes shared < Engine.footprint_bytes own);
        let s = sender ~mode:Probable () in
        let w_own = mk_writer () and w_shared = mk_writer () in
        List.iter
          (fun p ->
             Engine.record_stream own (Record.seal w_own ("T" ^ p));
             Engine.record_stream shared (Record.seal w_shared ("T" ^ p));
             let toks = encrypt_payload ~k_ssl s p in
             Engine.process own toks;
             Engine.process shared toks;
             Alcotest.(check (list (pair int string))) ("verdicts for " ^ p)
               (details own) (details shared))
          [ "benign first"; "x=evilword"; "GET /?userquery=42' HTTP/1.1" ];
        (* a prep over a different ruleset must not install *)
        let other = Engine.prepare_prefilter [ pcre_rule 51 ] in
        Alcotest.(check bool) "rule count mismatch rejected" true
          (match
             Engine.create ~prefilter:other ~mode:Probable ~salt0:0 ~rules ~enc_chunk ()
           with
           | exception Invalid_argument _ -> true
           | _ -> false));
  ]

let () =
  Alcotest.run "mbox"
    [ ("engine", engine_tests);
      ("tiered", tiered_tests);
      ("middlebox", middlebox_tests);
      ("stats", stats_tests);
      ("snapshot", snapshot_tests);
      ("scripts", script_tests) ]
