open Bbx_crypto
open Bbx_tls

let handshake_tests =
  [ Alcotest.test_case "both sides derive identical keys" `Quick (fun () ->
        let st, client_share = Handshake.initiate (Drbg.create "client") in
        let server_keys, server_share = Handshake.respond (Drbg.create "server") ~peer_share:client_share in
        let client_keys = Handshake.complete st ~peer_share:server_share in
        Alcotest.(check string) "k_ssl" server_keys.Handshake.k_ssl client_keys.Handshake.k_ssl;
        Alcotest.(check string) "k" server_keys.Handshake.k client_keys.Handshake.k;
        Alcotest.(check string) "k_rand" server_keys.Handshake.k_rand client_keys.Handshake.k_rand);
    Alcotest.test_case "three keys are independent" `Quick (fun () ->
        let keys = Handshake.derive_keys "master" in
        Alcotest.(check bool) "ssl<>dpi" true (keys.Handshake.k_ssl <> keys.Handshake.k);
        Alcotest.(check int) "k_ssl 16" 16 (String.length keys.Handshake.k_ssl);
        Alcotest.(check int) "k 16" 16 (String.length keys.Handshake.k);
        Alcotest.(check int) "k_rand 32" 32 (String.length keys.Handshake.k_rand));
    Alcotest.test_case "sessions with different peers differ" `Quick (fun () ->
        let _, share1 = Handshake.initiate (Drbg.create "c1") in
        let k1, _ = Handshake.respond (Drbg.create "s") ~peer_share:share1 in
        let _, share2 = Handshake.initiate (Drbg.create "c2") in
        let k2, _ = Handshake.respond (Drbg.create "s") ~peer_share:share2 in
        Alcotest.(check bool) "differ" true (k1.Handshake.k_ssl <> k2.Handshake.k_ssl));
    Alcotest.test_case "bad share length rejected" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Handshake: bad key-share length")
          (fun () -> ignore (Handshake.respond (Drbg.create "s") ~peer_share:"short")));
  ]

let record_tests =
  [ Alcotest.test_case "seal/open round trip" `Quick (fun () ->
        let w = Record.create ~key:"k" ~direction:"c2s" () in
        let r = Record.create ~key:"k" ~direction:"c2s" () in
        List.iter
          (fun msg -> Alcotest.(check string) "msg" msg (Record.open_ r (Record.seal w msg)))
          [ "hello"; ""; String.make 5000 'x'; "final" ]);
    Alcotest.test_case "directions are independent" `Quick (fun () ->
        let w = Record.create ~key:"k" ~direction:"c2s" () in
        let r = Record.create ~key:"k" ~direction:"s2c" () in
        Alcotest.check_raises "raises" Record.Auth_failure
          (fun () -> ignore (Record.open_ r (Record.seal w "x"))));
    Alcotest.test_case "tamper detected" `Quick (fun () ->
        let w = Record.create ~key:"k" ~direction:"d" () in
        let r = Record.create ~key:"k" ~direction:"d" () in
        let rec_ = Record.seal w "attack at dawn" in
        let bad = String.mapi (fun i c -> if i = 14 then Char.chr (Char.code c lxor 1) else c) rec_ in
        Alcotest.check_raises "raises" Record.Auth_failure
          (fun () -> ignore (Record.open_ r bad)));
    Alcotest.test_case "replay detected" `Quick (fun () ->
        let w = Record.create ~key:"k" ~direction:"d" () in
        let r = Record.create ~key:"k" ~direction:"d" () in
        let rec_ = Record.seal w "once" in
        Alcotest.(check string) "first ok" "once" (Record.open_ r rec_);
        Alcotest.check_raises "raises" Record.Auth_failure
          (fun () -> ignore (Record.open_ r rec_)));
    Alcotest.test_case "reorder detected" `Quick (fun () ->
        let w = Record.create ~key:"k" ~direction:"d" () in
        let r = Record.create ~key:"k" ~direction:"d" () in
        let r1 = Record.seal w "one" in
        let r2 = Record.seal w "two" in
        Alcotest.check_raises "raises" Record.Auth_failure
          (fun () -> ignore (Record.open_ r r2));
        Alcotest.(check string) "in order still fine" "one" (Record.open_ r r1));
    Alcotest.test_case "wrong key detected" `Quick (fun () ->
        let w = Record.create ~key:"k1" ~direction:"d" () in
        let r = Record.create ~key:"k2" ~direction:"d" () in
        Alcotest.check_raises "raises" Record.Auth_failure
          (fun () -> ignore (Record.open_ r (Record.seal w "x"))));
    Alcotest.test_case "ciphertext hides plaintext" `Quick (fun () ->
        let w = Record.create ~key:"k" ~direction:"d" () in
        let rec_ = Record.seal w "supersecretpayload" in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "hidden" false (contains rec_ "supersecret"));
    Alcotest.test_case "bitsliced kernel seals byte-identical records" `Quick
      (fun () ->
        (* same key + direction, one writer per kernel: every sealed record
           must match byte for byte — including payloads longer than one
           bitsliced sweep (63 blocks = 1008 bytes) and the empty record *)
        let ws = Record.create ~kernel:Aes_bs.Scalar ~key:"k" ~direction:"d" () in
        let wb = Record.create ~kernel:Aes_bs.Bitsliced ~key:"k" ~direction:"d" () in
        List.iter
          (fun msg ->
            Alcotest.(check string) "sealed bytes" (Record.seal ws msg)
              (Record.seal wb msg))
          [ "hello"; ""; String.make 1009 'x'; String.make 4096 '\x7f';
            String.init 2000 (fun i -> Char.chr (i land 0xff)); "tail" ]);
    Alcotest.test_case "kernels interoperate across the wire" `Quick (fun () ->
        (* scalar writer -> bitsliced reader and the reverse: the kernel is
           a per-host choice, not a protocol parameter *)
        let ws = Record.create ~kernel:Aes_bs.Scalar ~key:"k" ~direction:"d" () in
        let rb = Record.create ~kernel:Aes_bs.Bitsliced ~key:"k" ~direction:"d" () in
        let wb = Record.create ~kernel:Aes_bs.Bitsliced ~key:"k" ~direction:"d" () in
        let rs = Record.create ~kernel:Aes_bs.Scalar ~key:"k" ~direction:"d" () in
        List.iter
          (fun msg ->
            Alcotest.(check string) "s->b" msg (Record.open_ rb (Record.seal ws msg));
            Alcotest.(check string) "b->s" msg (Record.open_ rs (Record.seal wb msg)))
          [ "one"; String.make 3000 'y'; "three" ]);
  ]

let ssldump_tests =
  [ Alcotest.test_case "decrypts a recorded stream" `Quick (fun () ->
        let keys = Handshake.derive_keys "master" in
        let w = Record.create ~key:keys.Handshake.k_ssl ~direction:"c2s" () in
        let records = List.map (Record.seal w) [ "GET /a"; "GET /b"; "GET /c" ] in
        Alcotest.(check string) "stream" "GET /aGET /bGET /c"
          (Ssldump.decrypt_stream ~k_ssl:keys.Handshake.k_ssl ~direction:"c2s" records));
    Alcotest.test_case "wrong key fails" `Quick (fun () ->
        let keys = Handshake.derive_keys "master" in
        let w = Record.create ~key:keys.Handshake.k_ssl ~direction:"c2s" () in
        let records = [ Record.seal w "data" ] in
        Alcotest.check_raises "raises" Record.Auth_failure
          (fun () ->
             ignore (Ssldump.decrypt_stream ~k_ssl:(String.make 16 'z') ~direction:"c2s" records)));
  ]

let () =
  Alcotest.run "tls"
    [ ("handshake", handshake_tests); ("record", record_tests); ("ssldump", ssldump_tests) ]
