(* Robustness: attacker-facing decoders must fail cleanly (documented
   exceptions only), never crash or loop, on arbitrary bytes.  The
   middlebox parses rules from its vendor and tokens from untrusted
   senders; the receiver parses records off the wire. *)

let no_crash ~name ~expected f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:500 QCheck.string (fun s ->
         match f s with
         | _ -> true
         | exception e -> expected e))

let mutate_prop ~name ~count gen_good ~expected f =
  (* flip one byte of a well-formed input *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count
       QCheck.(pair small_nat (int_bound 255))
       (fun (pos, byte) ->
          let good = gen_good () in
          if good = "" then true
          else begin
            let pos = pos mod String.length good in
            let bad =
              String.mapi (fun i c -> if i = pos then Char.chr byte else c) good
            in
            match f bad with
            | _ -> true
            | exception e -> expected e
          end))

let is_invalid_arg = function Invalid_argument _ -> true | _ -> false

let rule_parser_fuzz =
  [ no_crash ~name:"rule parser on random bytes"
      ~expected:(function Bbx_rules.Parser.Syntax_error _ -> true | _ -> false)
      Bbx_rules.Parser.parse_rule;
    mutate_prop ~name:"rule parser on mutated valid rules" ~count:300
      (fun () ->
         "alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:\"m\"; \
          content:\"Server|3a| x\"; offset:3; depth:20; pcre:\"/a+b/i\"; sid:1;)")
      ~expected:(function
          | Bbx_rules.Parser.Syntax_error _ | Bbx_regex.Regex.Parse_error _ -> true
          | _ -> false)
      Bbx_rules.Parser.parse_rule;
  ]

let regex_fuzz =
  [ no_crash ~name:"regex compiler on random bytes"
      ~expected:(function Bbx_regex.Regex.Parse_error _ -> true | _ -> false)
      (fun s -> Bbx_regex.Regex.compile s);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"compiled regexes never crash on random input" ~count:300
         QCheck.(pair (oneofl [ "a+(b|c)*"; "[x-z]{2,4}$"; "^\\d+\\.\\d+"; "(ab)+c?" ]) string)
         (fun (pat, input) ->
            let r = Bbx_regex.Regex.compile pat in
            let _ = Bbx_regex.Regex.matches r input in
            let _ = Bbx_regex.Regex.search r input in
            true));
  ]

let token_fuzz =
  [ no_crash ~name:"token decoder on random bytes" ~expected:is_invalid_arg
      Bbx_dpienc.Dpienc.decode_tokens;
    mutate_prop ~name:"token decoder on mutated valid streams" ~count:300
      (fun () ->
         let key = Bbx_dpienc.Dpienc.key_of_secret "fuzz" in
         let s = Bbx_dpienc.Dpienc.sender_create Bbx_dpienc.Dpienc.Exact key ~salt0:0 in
         let toks =
           Bbx_dpienc.Dpienc.sender_encrypt s
             (Bbx_tokenizer.Tokenizer.window "some payload bytes here")
         in
         Bbx_dpienc.Dpienc.encode_tokens toks)
      ~expected:is_invalid_arg
      Bbx_dpienc.Dpienc.decode_tokens;
  ]

let compress_fuzz =
  [ no_crash ~name:"decompressor on random bytes" ~expected:is_invalid_arg
      Bbx_compress.Compress.decompress;
    mutate_prop ~name:"decompressor on mutated archives" ~count:200
      (fun () -> Bbx_compress.Compress.compress "the quick brown fox the quick brown fox")
      ~expected:is_invalid_arg
      Bbx_compress.Compress.decompress;
  ]

let garble_fuzz =
  [ no_crash ~name:"garbled-circuit decoder on random bytes" ~expected:is_invalid_arg
      Bbx_garble.Garble.of_string;
  ]

let record_fuzz =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"record layer rejects every mutation" ~count:300
         QCheck.(pair small_nat (int_range 1 255))
         (fun (pos, delta) ->
            let w = Bbx_tls.Record.create ~key:"fz" ~direction:"d" () in
            let r = Bbx_tls.Record.create ~key:"fz" ~direction:"d" () in
            let sealed = Bbx_tls.Record.seal w "authentic payload" in
            let pos = pos mod String.length sealed in
            let bad =
              String.mapi
                (fun i c -> if i = pos then Char.chr (Char.code c lxor delta) else c)
                sealed
            in
            match Bbx_tls.Record.open_ r bad with
            | _ -> false (* every single-byte change must be caught *)
            | exception Bbx_tls.Record.Auth_failure -> true));
  ]

let () =
  Alcotest.run "fuzz"
    [ ("rules", rule_parser_fuzz);
      ("regex", regex_fuzz);
      ("tokens", token_fuzz);
      ("compress", compress_fuzz);
      ("garble", garble_fuzz);
      ("record", record_fuzz);
    ]
