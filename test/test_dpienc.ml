open Bbx_dpienc.Dpienc
open Bbx_tokenizer.Tokenizer

let key = key_of_secret "session-key-k"

let mk_tokens contents = List.mapi (fun i c -> { content = c; offset = 8 * i }) contents

let t8 s = pad_short s

let unit_tests =
  [ Alcotest.test_case "ciphertext is 40 bits" `Quick (fun () ->
        let tk = token_key key (t8 "attack") in
        for salt = 0 to 100 do
          let c = encrypt tk ~salt in
          Alcotest.(check bool) "fits" true (c >= 0 && c < 1 lsl 40)
        done);
    Alcotest.test_case "deterministic given key, token, salt" `Quick (fun () ->
        let tk = token_key key (t8 "attack") in
        Alcotest.(check int) "equal" (encrypt tk ~salt:7) (encrypt tk ~salt:7));
    Alcotest.test_case "different salts give different ciphertexts" `Quick (fun () ->
        let tk = token_key key (t8 "attack") in
        Alcotest.(check bool) "differ" true (encrypt tk ~salt:0 <> encrypt tk ~salt:1));
    Alcotest.test_case "middlebox path equals sender path" `Quick (fun () ->
        (* MB builds the token key from AES_k(t) without knowing k. *)
        let enc = token_enc key (t8 "attack") in
        let mb_tk = token_key_of_enc enc in
        let sender_tk = token_key key (t8 "attack") in
        Alcotest.(check int) "same cipher" (encrypt sender_tk ~salt:42) (encrypt mb_tk ~salt:42));
    Alcotest.test_case "equal tokens never share a ciphertext (salt counters)" `Quick (fun () ->
        let s = sender_create Exact key ~salt0:0 in
        let toks = mk_tokens [ t8 "dup"; t8 "dup"; t8 "dup"; t8 "other"; t8 "dup" ] in
        let out = sender_encrypt s toks in
        let ciphers = List.map (fun e -> e.cipher) out in
        let sorted = List.sort_uniq compare ciphers in
        Alcotest.(check int) "all distinct" (List.length ciphers) (List.length sorted));
    Alcotest.test_case "salt0 must be even in probable mode" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Dpienc.sender_create: salt0 must be even")
          (fun () -> ignore (sender_create Probable key ~salt0:1));
        (* exact mode has no parity constraint *)
        ignore (sender_create Exact key ~salt0:1));
    Alcotest.test_case "probable mode requires k_ssl" `Quick (fun () ->
        let s = sender_create Probable key ~salt0:0 in
        Alcotest.check_raises "raises"
          (Invalid_argument "Dpienc.sender_encrypt: Probable mode needs ~k_ssl")
          (fun () -> ignore (sender_encrypt s (mk_tokens [ t8 "x" ]))));
    Alcotest.test_case "probable mode embeds recoverable key" `Quick (fun () ->
        let s = sender_create Probable key ~salt0:0 in
        let k_ssl = String.init 16 Char.chr in
        let out = sender_encrypt s ~k_ssl (mk_tokens [ t8 "attack" ]) in
        match out with
        | [ { embed = Some c2; _ } ] ->
          (* With AES_k(t), the mask at salt+1 recovers k_ssl. *)
          let tk = token_key key (t8 "attack") in
          let mask = encrypt_full tk ~salt:1 in
          Alcotest.(check string) "recovered" k_ssl (Bbx_crypto.Util.xor c2 mask)
        | _ -> Alcotest.fail "expected one embedded token");
    Alcotest.test_case "exact mode has no embed" `Quick (fun () ->
        let s = sender_create Exact key ~salt0:0 in
        match sender_encrypt s (mk_tokens [ t8 "x" ]) with
        | [ { embed = None; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected embed");
    Alcotest.test_case "reset advances salt0 past every used salt" `Quick (fun () ->
        let s = sender_create Exact key ~salt0:0 in
        let _ = sender_encrypt s (mk_tokens [ t8 "a"; t8 "a"; t8 "a"; t8 "b" ]) in
        let new_salt0 = sender_reset s in
        Alcotest.(check bool) "advanced" true (new_salt0 > 3);
        (* After the reset the same token restarts from the new salt. *)
        let out = sender_encrypt s (mk_tokens [ t8 "a" ]) in
        let tk = token_key key (t8 "a") in
        Alcotest.(check int) "fresh salt" (encrypt tk ~salt:new_salt0)
          (List.hd out).cipher);
    Alcotest.test_case "different keys give different ciphertexts" `Quick (fun () ->
        let tk1 = token_key (key_of_secret "k1") (t8 "attack") in
        let tk2 = token_key (key_of_secret "k2") (t8 "attack") in
        Alcotest.(check bool) "differ" true (encrypt tk1 ~salt:0 <> encrypt tk2 ~salt:0));
    Alcotest.test_case "wire encoding round trip" `Quick (fun () ->
        let s = sender_create Probable key ~salt0:0 in
        let k_ssl = String.make 16 'K' in
        let toks = sender_encrypt s ~k_ssl (mk_tokens [ t8 "a"; t8 "b"; t8 "c" ]) in
        let decoded = decode_tokens (encode_tokens toks) in
        Alcotest.(check int) "count" (List.length toks) (List.length decoded);
        List.iter2
          (fun a b ->
             Alcotest.(check int) "cipher" a.cipher b.cipher;
             Alcotest.(check int) "offset" a.offset b.offset;
             Alcotest.(check (option string)) "embed" a.embed b.embed)
          toks decoded);
    Alcotest.test_case "decode rejects truncation" `Quick (fun () ->
        let s = sender_create Exact key ~salt0:0 in
        let enc = encode_tokens (sender_encrypt s (mk_tokens [ t8 "a" ])) in
        Alcotest.check_raises "raises" (Invalid_argument "Dpienc.decode_tokens: truncated")
          (fun () -> ignore (decode_tokens (String.sub enc 0 (String.length enc - 1)))));
  ]

(* Frequency-analysis resistance: the histogram of ciphertexts of a stream
   with many repeats is flat (all ciphertexts distinct), unlike
   deterministic encryption where repeats leak. *)
let security_tests =
  [ Alcotest.test_case "no frequency leakage" `Quick (fun () ->
        let s = sender_create Exact key ~salt0:0 in
        let toks = mk_tokens (List.init 200 (fun i -> t8 (if i mod 2 = 0 then "yes" else "no"))) in
        let out = sender_encrypt s toks in
        let ciphers = List.map (fun e -> e.cipher) out in
        Alcotest.(check int) "all distinct" 200 (List.length (List.sort_uniq compare ciphers)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"streams with same histogram are indistinguishable by count"
         ~count:50
         QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 20) (string_of_size (QCheck.Gen.return 8)))
                  (list_of_size (QCheck.Gen.int_range 1 20) (string_of_size (QCheck.Gen.return 8))))
         (fun (xs, ys) ->
            (* Whatever the token values, #ciphertexts = #tokens and all are
               in range; ciphertext values alone don't reveal equality. *)
            let s = sender_create Exact key ~salt0:0 in
            let out = sender_encrypt s (mk_tokens (xs @ ys)) in
            List.length out = List.length xs + List.length ys
            && List.for_all (fun e -> e.cipher >= 0 && e.cipher < 1 lsl 40) out));
  ]

(* ---------- wire format: round trip, streaming decode, truncation ---------- *)

let arb_contents =
  QCheck.(list_of_size (QCheck.Gen.int_range 1 12) (string_of_size (QCheck.Gen.int_range 1 8)))

let encrypt_stream mode contents =
  let s = sender_create mode key ~salt0:0 in
  let k_ssl = if mode = Probable then Some (String.make 16 'K') else None in
  sender_encrypt s ?k_ssl (mk_tokens (List.map t8 contents))

let wire_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"encode/decode round trip (both modes)" ~count:100
         arb_contents
         (fun contents ->
            List.for_all
              (fun mode ->
                 let toks = encrypt_stream mode contents in
                 let decoded = decode_tokens (encode_tokens toks) in
                 List.length toks = List.length decoded
                 && List.for_all2
                   (fun a b ->
                      a.cipher = b.cipher && a.offset = b.offset && a.embed = b.embed)
                   toks decoded)
              [ Exact; Probable ]));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"decode_iter agrees with decode_tokens" ~count:100
         arb_contents
         (fun contents ->
            List.for_all
              (fun mode ->
                 let wire = encode_tokens (encrypt_stream mode contents) in
                 let via_iter = ref [] in
                 decode_iter wire ~f:(fun ~cipher ~offset ~embed_pos ->
                     let embed =
                       if embed_pos < 0 then None else Some (String.sub wire embed_pos 16)
                     in
                     via_iter := { cipher; offset; embed } :: !via_iter);
                 let via_iter = List.rev !via_iter in
                 let via_list = decode_tokens wire in
                 List.length via_iter = List.length via_list
                 && wire_token_count wire = List.length via_list
                 && List.for_all2
                   (fun a b ->
                      a.cipher = b.cipher && a.offset = b.offset && a.embed = b.embed)
                   via_iter via_list)
              [ Exact; Probable ]));
    Alcotest.test_case "record sizes match the wire" `Quick (fun () ->
        Alcotest.(check int) "exact" exact_record_bytes
          (String.length (encode_tokens (encrypt_stream Exact [ "a" ])));
        Alcotest.(check int) "probable" probable_record_bytes
          (String.length (encode_tokens (encrypt_stream Probable [ "a" ]))));
    Alcotest.test_case "truncation rejected at every byte boundary" `Quick (fun () ->
        (* one full record then a partial one, cut at every possible point:
           the decoder must raise, never return a short read or crash *)
        List.iter
          (fun mode ->
             let wire = encode_tokens (encrypt_stream mode [ "a"; "b" ]) in
             let record = String.length wire / 2 in
             for cut = 1 to String.length wire - 1 do
               if cut mod record <> 0 then begin
                 let truncated = String.sub wire 0 cut in
                 match decode_tokens truncated with
                 | _ -> Alcotest.failf "decode accepted a %d-byte cut" cut
                 | exception Invalid_argument msg ->
                   Alcotest.(check bool)
                     (Printf.sprintf "cut %d names the decoder" cut)
                     true
                     (String.length msg >= 19 && String.sub msg 0 19 = "Dpienc.decode_token")
               end
             done)
          [ Exact; Probable ]);
  ]

(* ---- bitsliced sender differentials ----

   The [Bitsliced] kernel replaces the counter hashtable, defers first-seen
   token encryption into batched kernel sweeps and stages wire records —
   none of which may change a single wire byte.  Drive a scalar and a
   bitsliced sender through identical payload sequences (both modes, both
   tokenizations, across salt resets and with the legacy per-token API
   interleaved) and require byte equality. *)

let drive_pair ~mode ~tokenization ~payloads ~resets_at ~interleave_at =
  let salt0 = 100 in
  let k_ssl = if mode = Probable then Some (String.init 16 Char.chr) else None in
  let s_sc = sender_create ~kernel:Scalar mode key ~salt0 in
  let s_bs = sender_create ~kernel:Bitsliced mode key ~salt0 in
  let out_sc = Buffer.create 256 and out_bs = Buffer.create 256 in
  List.iteri
    (fun i payload ->
       if List.mem i interleave_at then begin
         (* legacy per-token API on both senders: shares the counter table
            with the streaming path *)
         let toks = mk_tokens [ t8 "mix"; t8 "mix" ] in
         Buffer.add_string out_sc (encode_tokens (sender_encrypt s_sc ?k_ssl toks));
         Buffer.add_string out_bs (encode_tokens (sender_encrypt s_bs ?k_ssl toks))
       end;
       let n_sc = sender_encrypt_into s_sc ?k_ssl ~base:(i * 1000) ~tokenization payload out_sc in
       let n_bs = sender_encrypt_into s_bs ?k_ssl ~base:(i * 1000) ~tokenization payload out_bs in
       Alcotest.(check int) "token count" n_sc n_bs;
       if List.mem i resets_at then begin
         let r_sc = sender_reset s_sc and r_bs = sender_reset s_bs in
         Alcotest.(check int) "reset salt0" r_sc r_bs
       end)
    payloads;
  Alcotest.(check string) "wire bytes" (Buffer.contents out_sc) (Buffer.contents out_bs)

let repeat_heavy =
  (* few distinct tokens, deep counters *)
  String.concat "" (List.init 40 (fun i -> if i mod 3 = 0 then "attackXY" else "zzzzzzzz"))

let kernel_payloads =
  [ "the quick brown fox jumps over the lazy dog";
    repeat_heavy;
    "malware attack vector with, delimiters. and short, bits";
    String.init 700 (fun i -> Char.chr (((i * 37) land 63) + 48));
    "ab" (* shorter than a token *) ]

let kernel_tests =
  let case name mode tokenization =
    Alcotest.test_case name `Quick (fun () ->
        drive_pair ~mode ~tokenization ~payloads:kernel_payloads
          ~resets_at:[ 1; 3 ] ~interleave_at:[ 2 ])
  in
  [ case "wire equality: exact / window" Exact Window;
    case "wire equality: exact / delimiter" Exact (Delimiter { short_units = true });
    case "wire equality: probable / window" Probable Window;
    case "wire equality: probable / delimiter" Probable (Delimiter { short_units = false });
    Alcotest.test_case "token_enc_batch equals token_enc" `Quick (fun () ->
        let toks =
          Array.init 150 (fun i -> t8 (Printf.sprintf "t%06d" i))
        in
        let batch = token_enc_batch key toks in
        Array.iteri
          (fun i t ->
             Alcotest.(check string) "enc" (token_enc key t) batch.(i))
          toks;
        Alcotest.(check int) "empty" 0 (Array.length (token_enc_batch key [||])));
    Alcotest.test_case "packed table growth survives (many distinct tokens)" `Quick (fun () ->
        (* >2048 distinct tokens forces several in-sweep grows; equality
           with the scalar sender proves no sweep entry went stale *)
        let payload =
          String.concat ""
            (List.init 3000 (fun i -> Printf.sprintf "%08d" i))
        in
        drive_pair ~mode:Exact ~tokenization:Window ~payloads:[ payload ]
          ~resets_at:[] ~interleave_at:[]);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"qcheck wire equality scalar vs bitsliced" ~count:60
         QCheck.(
           triple bool
             (list_of_size (QCheck.Gen.int_range 1 6)
                (string_of_size (QCheck.Gen.int_range 0 200)))
             (small_list (int_bound 5)))
         (fun (probable, payloads, resets) ->
            let mode = if probable then Probable else Exact in
            drive_pair ~mode ~tokenization:Window ~payloads
              ~resets_at:resets ~interleave_at:[];
            true));
  ]

let () =
  Alcotest.run "dpienc"
    [ ("dpienc", unit_tests); ("security", security_tests); ("wire", wire_tests);
      ("kernel", kernel_tests) ]
