(* Wire-protocol codec tests: encode/decode roundtrips for every message
   type (unit + qcheck-random payloads), incremental Framer extraction
   (split points chosen adversarially, down to byte-at-a-time feeding),
   and rejection of malformed input — truncated bodies, trailing bytes,
   unknown type bytes, bad enum bytes and over-limit length prefixes. *)

open Bbx_wire

let token_len = Bbx_tokenizer.Tokenizer.token_len

let chunk c = String.make token_len c
let enc16 c = String.make 16 c

let samples : Wire.msg list =
  [ Wire.Hello
      { version = Wire.version; mode = Bbx_dpienc.Dpienc.Exact; salt0 = 42; features = 0 };
    Wire.Hello { version = 7; mode = Bbx_dpienc.Dpienc.Probable; salt0 = 0; features = 0 };
    Wire.Hello
      { version = Wire.version; mode = Bbx_dpienc.Dpienc.Exact; salt0 = 1;
        features = Wire.feature_metrics };
    Wire.Hello
      { version = Wire.version; mode = Bbx_dpienc.Dpienc.Probable; salt0 = 2; features = 255 };
    Wire.Hello_ok { conn_id = 12345; mode = Bbx_dpienc.Dpienc.Exact;
                    rules_text = "alert tcp any any -> any any (content:\"attackkw\"; sid:1;)" };
    Wire.Rule_setup { pairs = [||] };
    Wire.Rule_setup { pairs = [| (chunk 'a', enc16 'A'); (chunk 'b', enc16 'B') |] };
    Wire.Setup_ok;
    Wire.Token_stream { seq = 0; records = "" };
    Wire.Token_stream { seq = max_int land 0xFFFFFFFF; records = String.init 30 Char.chr };
    Wire.Verdict { seq = 9; status = Wire.Clean; verdicts = [] };
    (* legacy VERDICT carries no detail byte: it only roundtrips when
       each detail is exactly what decode infers from the via *)
    Wire.Verdict
      { seq = 10; status = Wire.Alerts;
        verdicts =
          [ { Wire.v_sid = 1; v_via = `Exact_match; v_detail = `Exact_hit;
              v_msg = "hit" };
            { Wire.v_sid = 0; v_via = `Probable_cause; v_detail = `Regex_match;
              v_msg = "" } ] };
    Wire.Verdict { seq = 11; status = Wire.Dropped; verdicts = [] };
    Wire.Verdict_tiered { seq = 12; status = Wire.Clean; verdicts = [] };
    (* VERDICT_TIERED carries the detail explicitly, so details the legacy
       frame cannot express roundtrip here *)
    Wire.Verdict_tiered
      { seq = 13; status = Wire.Alerts;
        verdicts =
          [ { Wire.v_sid = 7; v_via = `Exact_match; v_detail = `Composite_match;
              v_msg = "composite" };
            { Wire.v_sid = 8; v_via = `Probable_cause; v_detail = `Budget_exceeded;
              v_msg = "flagged" };
            { Wire.v_sid = 9; v_via = `Probable_cause; v_detail = `Regex_match;
              v_msg = "" } ] };
    Wire.Record_stream { seq = 0; record = "" };
    Wire.Record_stream { seq = 77; record = String.init 45 Char.chr };
    Wire.Salt_reset { salt0 = 1 lsl 30 };
    Wire.Rule_update
      { remove_sids = [ 3; 1; 4 ]; add_text = "alert tcp ...";
        pairs = [| (chunk 'z', enc16 'Z') |] };
    Wire.Rule_update { remove_sids = []; add_text = ""; pairs = [||] };
    Wire.Update_ok { added = 2 };
    Wire.Stats_req;
    Wire.Stats
      { s_connections = 1; s_total_tokens = 999999; s_total_keyword_hits = 5;
        s_alerts = 2; s_blocked = 1 };
    Wire.Bye;
    Wire.Error { code = Wire.err_protocol; message = "nope" };
    Wire.Metrics_req { scope = Wire.Prometheus };
    Wire.Metrics_req { scope = Wire.Jsonl };
    Wire.Metrics_req { scope = Wire.Trace };
    Wire.Metrics { scope = Wire.Prometheus; body = "bbx_x_total 1\n" };
    Wire.Metrics { scope = Wire.Jsonl; body = "" };
    Wire.Metrics { scope = Wire.Trace; body = "{\"traceEvents\":[]}" };
    Wire.Conn_export;
    Wire.Conn_state { state = "" };
    Wire.Conn_state { state = String.init 64 Char.chr };
    Wire.Conn_import { state = "opaque snapshot bytes \x00\xff" } ]

(* strip the 4-byte length prefix *)
let payload_of msg =
  let framed = Wire.encode_frame_string msg in
  String.sub framed 4 (String.length framed - 4)

let roundtrip msg = Wire.decode (payload_of msg)

let check_roundtrip msg =
  Alcotest.(check bool) "roundtrip" true (roundtrip msg = msg)

let feed_in_pieces framer s piece =
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    let n = min piece (Bytes.length b - !off) in
    Wire.Framer.feed framer b !off n;
    off := !off + n
  done

let drain framer =
  let rec go acc =
    match Wire.Framer.next framer with
    | Some p -> go (p :: acc)
    | None -> List.rev acc
  in
  go []

let rejects what payload =
  Alcotest.(check bool) what true
    (match Wire.decode payload with
     | exception Wire.Malformed _ -> true
     | _ -> false)

let unit_tests =
  [ Alcotest.test_case "every message type roundtrips" `Quick (fun () ->
        List.iter check_roundtrip samples);
    Alcotest.test_case "framer: all samples, byte at a time" `Quick (fun () ->
        let stream = String.concat "" (List.map Wire.encode_frame_string samples) in
        List.iter
          (fun piece ->
            let framer = Wire.Framer.create () in
            feed_in_pieces framer stream piece;
            let payloads = drain framer in
            Alcotest.(check int) "frame count" (List.length samples)
              (List.length payloads);
            List.iter2
              (fun msg p ->
                Alcotest.(check bool) "frame decodes back" true
                  (Wire.decode p = msg))
              samples payloads;
            Alcotest.(check int) "nothing buffered" 0 (Wire.Framer.buffered framer))
          [ 1; 2; 3; 7; 64; max_int ]);
    Alcotest.test_case "framer: partial frame stays buffered" `Quick (fun () ->
        let framer = Wire.Framer.create () in
        let framed = Wire.encode_frame_string Wire.Setup_ok in
        let b = Bytes.of_string framed in
        Wire.Framer.feed framer b 0 (Bytes.length b - 1);
        Alcotest.(check bool) "no frame yet" true (Wire.Framer.next framer = None);
        Wire.Framer.feed framer b (Bytes.length b - 1) 1;
        Alcotest.(check bool) "now complete" true
          (Wire.Framer.next framer = Some (payload_of Wire.Setup_ok)));
    Alcotest.test_case "framer: over-limit length prefix raises early" `Quick (fun () ->
        let framer = Wire.Framer.create () in
        let b = Bytes.create 4 in
        Bytes.set_uint8 b 0 0xFF; Bytes.set_uint8 b 1 0xFF;
        Bytes.set_uint8 b 2 0xFF; Bytes.set_uint8 b 3 0xFF;
        Wire.Framer.feed framer b 0 4;
        Alcotest.(check bool) "raises without the body" true
          (match Wire.Framer.next framer with
           | exception Wire.Malformed _ -> true
           | _ -> false));
    Alcotest.test_case "decode rejects malformed payloads" `Quick (fun () ->
        rejects "empty payload" "";
        rejects "unknown type byte" "\x00";
        rejects "unknown type byte 99" (String.make 1 (Char.chr 99));
        rejects "hello truncated" "\x01\x01";
        List.iter
          (fun msg ->
            match msg with
            (* rules_text / records / metrics / record bodies are
               rest-encoded and HELLO's features byte is optional: any
               suffix length is a valid (different) message, so skip the
               mutation checks *)
            | Wire.Hello_ok _ | Wire.Token_stream _ | Wire.Hello _
            | Wire.Metrics _ | Wire.Record_stream _ | Wire.Conn_state _
            | Wire.Conn_import _ -> ()
            | _ ->
              let p = payload_of msg in
              if String.length p > 1 then
                rejects "truncated body" (String.sub p 0 (String.length p - 1));
              rejects "trailing byte" (p ^ "\x00"))
          samples;
        (* bad enum bytes inside otherwise-valid messages *)
        let hello = Bytes.of_string (payload_of
          (Wire.Hello
             { version = Wire.version; mode = Bbx_dpienc.Dpienc.Exact; salt0 = 0;
               features = 0 })) in
        Bytes.set hello 2 '\x07';      (* mode byte *)
        rejects "bad mode byte" (Bytes.to_string hello);
        let mreq = Bytes.of_string (payload_of (Wire.Metrics_req { scope = Wire.Prometheus })) in
        Bytes.set mreq 1 '\x07';       (* scope byte *)
        rejects "bad metrics scope byte" (Bytes.to_string mreq);
        let verdict = Bytes.of_string (payload_of
          (Wire.Verdict { seq = 1; status = Wire.Clean; verdicts = [] })) in
        Bytes.set verdict 5 '\x09';    (* status byte *)
        rejects "bad status byte" (Bytes.to_string verdict);
        let vt = Bytes.of_string (payload_of
          (Wire.Verdict_tiered
             { seq = 1; status = Wire.Alerts;
               verdicts =
                 [ { Wire.v_sid = 1; v_via = `Exact_match;
                     v_detail = `Exact_hit; v_msg = "" } ] })) in
        (* per-verdict layout: u32 sid, via byte, detail byte, str16 msg *)
        Bytes.set vt (5 + 1 + 2 + 4 + 1) '\x09';
        rejects "bad detail byte" (Bytes.to_string vt));
    Alcotest.test_case "legacy VERDICT infers detail from via" `Quick (fun () ->
        (* the legacy frame drops the detail byte on encode; decode must
           restore the canonical via->detail mapping, so a tiered verdict
           downgraded to VERDICT comes back with the inferred detail *)
        let downgraded =
          Wire.Verdict
            { seq = 3; status = Wire.Alerts;
              verdicts =
                [ { Wire.v_sid = 8; v_via = `Probable_cause;
                    v_detail = `Budget_exceeded; v_msg = "m" } ] }
        in
        match roundtrip downgraded with
        | Wire.Verdict { verdicts = [ v ]; _ } ->
          Alcotest.(check bool) "via preserved" true (v.Wire.v_via = `Probable_cause);
          Alcotest.(check bool) "detail inferred from via" true
            (v.Wire.v_detail = Wire.detail_of_via `Probable_cause)
        | _ -> Alcotest.fail "expected VERDICT with one verdict");
    Alcotest.test_case "hello feature negotiation stays wire-compatible" `Quick (fun () ->
        (* features = 0 must encode as the legacy 11-byte body, so old
           daemons keep accepting new clients *)
        let legacy =
          payload_of
            (Wire.Hello
               { version = Wire.version; mode = Bbx_dpienc.Dpienc.Exact; salt0 = 9;
                 features = 0 })
        in
        Alcotest.(check int) "legacy body length" 11 (String.length legacy);
        (* and a legacy 11-byte body must decode to features = 0, so new
           daemons keep accepting old clients *)
        Alcotest.(check bool) "legacy decodes features=0" true
          (Wire.decode legacy
           = Wire.Hello
               { version = Wire.version; mode = Bbx_dpienc.Dpienc.Exact; salt0 = 9;
                 features = 0 });
        let featured =
          payload_of
            (Wire.Hello
               { version = Wire.version; mode = Bbx_dpienc.Dpienc.Exact; salt0 = 9;
                 features = Wire.feature_metrics })
        in
        Alcotest.(check int) "featured body length" 12 (String.length featured);
        rejects "hello with two trailing bytes" (featured ^ "\x00");
        rejects "hello truncated below legacy" (String.sub legacy 0 10));
    Alcotest.test_case "rule_setup enforces pair lengths at encode" `Quick (fun () ->
        Alcotest.(check bool) "short chunk" true
          (match Wire.encode_frame_string (Wire.Rule_setup { pairs = [| ("ab", enc16 'x') |] }) with
           | exception Invalid_argument _ -> true
           | _ -> false);
        Alcotest.(check bool) "short enc" true
          (match Wire.encode_frame_string (Wire.Rule_setup { pairs = [| (chunk 'a', "xy") |] }) with
           | exception Invalid_argument _ -> true
           | _ -> false)) ]

(* ---------- qcheck ---------- *)

(* legacy VERDICT drops the detail byte, so its verdicts only roundtrip
   with the canonical via->detail inference baked in *)
let gen_verdict =
  QCheck.Gen.(
    map3
      (fun sid via msg ->
        { Wire.v_sid = sid; v_via = via; v_detail = Wire.detail_of_via via;
          v_msg = msg })
      (int_bound 0xFFFF)
      (oneofl [ `Exact_match; `Probable_cause ])
      (string_size (int_bound 40)))

(* VERDICT_TIERED carries the detail explicitly: any combination goes *)
let gen_verdict_tiered =
  QCheck.Gen.(
    map2
      (fun (sid, via) (detail, msg) ->
        { Wire.v_sid = sid; v_via = via; v_detail = detail; v_msg = msg })
      (pair (int_bound 0xFFFF) (oneofl [ `Exact_match; `Probable_cause ]))
      (pair
         (oneofl [ `Exact_hit; `Composite_match; `Regex_match; `Budget_exceeded ])
         (string_size (int_bound 40))))

let gen_msg =
  QCheck.Gen.(
    oneof
      [ map3
          (fun v (m, f) s -> Wire.Hello { version = v; mode = m; salt0 = s; features = f })
          (int_bound 255)
          (pair
             (oneofl [ Bbx_dpienc.Dpienc.Exact; Bbx_dpienc.Dpienc.Probable ])
             (int_bound 255))
          (int_bound 0xFFFFFF);
        map
          (fun scope -> Wire.Metrics_req { scope })
          (oneofl [ Wire.Prometheus; Wire.Jsonl; Wire.Trace ]);
        map2
          (fun scope body -> Wire.Metrics { scope; body })
          (oneofl [ Wire.Prometheus; Wire.Jsonl; Wire.Trace ])
          (string_size (int_bound 200));
        map
          (fun pairs -> Wire.Rule_setup { pairs })
          (array_size (int_bound 20)
             (pair (string_size (return token_len)) (string_size (return 16))));
        map2
          (fun seq records -> Wire.Token_stream { seq; records })
          (int_bound 0xFFFFFF)
          (string_size (int_bound 200));
        map3
          (fun seq status verdicts -> Wire.Verdict { seq; status; verdicts })
          (int_bound 0xFFFFFF)
          (oneofl [ Wire.Clean; Wire.Alerts; Wire.Dropped ])
          (list_size (int_bound 8) gen_verdict);
        map3
          (fun seq status verdicts -> Wire.Verdict_tiered { seq; status; verdicts })
          (int_bound 0xFFFFFF)
          (oneofl [ Wire.Clean; Wire.Alerts; Wire.Dropped ])
          (list_size (int_bound 8) gen_verdict_tiered);
        map2
          (fun seq record -> Wire.Record_stream { seq; record })
          (int_bound 0xFFFFFF)
          (string_size (int_bound 200));
        map2
          (fun sids text ->
            Wire.Rule_update { remove_sids = sids; add_text = text; pairs = [||] })
          (list_size (int_bound 10) (int_bound 0xFFFF))
          (string_size (int_bound 100)) ])

let qcheck_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500 ~name:"random message roundtrips"
         (QCheck.make gen_msg)
         (fun msg -> roundtrip msg = msg));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"framer reassembles random split points"
         QCheck.(pair (make gen_msg) small_nat)
         (fun (msg, split) ->
           let framed = Wire.encode_frame_string msg in
           let framer = Wire.Framer.create () in
           let cut = 1 + (split mod max 1 (String.length framed - 1)) in
           let b = Bytes.of_string framed in
           Wire.Framer.feed framer b 0 cut;
           let early = Wire.Framer.next framer in
           Wire.Framer.feed framer b cut (Bytes.length b - cut);
           (match early with
            | Some p -> Wire.decode p = msg
            | None ->
              (match Wire.Framer.next framer with
               | Some p -> Wire.decode p = msg
               | None -> false))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500 ~name:"random garbage never escapes Malformed"
         QCheck.string
         (fun s ->
           match Wire.decode s with
           | _ -> true                    (* parsed: fine *)
           | exception Wire.Malformed _ -> true
           | exception _ -> false)) ]

let () =
  Alcotest.run "wire"
    [ ("unit", unit_tests); ("qcheck", qcheck_tests) ]
