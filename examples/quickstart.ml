(* Quickstart: a BlindBox connection in ~30 lines.

   A sender and receiver talk HTTPS through a middlebox loaded with two
   IDS rules.  The middlebox inspects the encrypted traffic and flags the
   message containing an attack keyword — without ever holding the session
   key.

   Run with: dune exec examples/quickstart.exe *)

open Blindbox

let () =
  let rules =
    Bbx_rules.Parser.parse_ruleset
      {|alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"shell download"; content:"cmd.exe?download"; sid:1;)
        alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"path traversal"; content:"../../etc/passwd"; sid:2;)|}
  in
  let session, stats = Session.establish ~rules () in
  Printf.printf "connection established: %d rule-keyword chunks prepared in %.1f ms\n\n"
    stats.Session.chunk_count (1000.0 *. stats.Session.setup_seconds);
  let messages =
    [ "GET /index.html HTTP/1.1\r\nHost: shop.example\r\n\r\n";
      "POST /search?q=holiday+gifts HTTP/1.1\r\nHost: shop.example\r\n\r\n";
      "GET /cgi-bin/cmd.exe?download=implant HTTP/1.1\r\nHost: victim.example\r\n\r\n";
    ]
  in
  List.iter
    (fun payload ->
       let d = Session.send session payload in
       let status =
         match d.Session.verdicts with
         | [] -> "forwarded (clean)"
         | vs ->
           String.concat "; "
             (List.map
                (fun v ->
                   Printf.sprintf "ALERT sid:%d %s"
                     (Option.value v.Bbx_mbox.Engine.rule.Bbx_rules.Rule.sid ~default:0)
                     (Option.value v.Bbx_mbox.Engine.rule.Bbx_rules.Rule.msg ~default:""))
                vs)
       in
       Printf.printf "%-70s -> %s\n"
         (String.sub payload 0 (min 68 (String.index payload '\r'))) status)
    messages;
  Printf.printf "\nmiddlebox keyword observations: %s\n"
    (String.concat ", "
       (List.map (fun (kw, off) -> Printf.sprintf "%S@%d" kw off)
          (Session.mb_keyword_hits session)));
  print_endline "everything else in the stream stayed opaque to the middlebox."
