(* Parental filtering (paper §2.1, example #2).

   Bob registers for filtering with his ISP but does not want the ISP
   reading his browsing.  The Electronic Filtering Foundation (the rule
   generator he trusts) publishes a domain blacklist; the ISP's middlebox
   can enforce it over Bob's encrypted traffic and learns nothing else —
   in particular it cannot build a browsing profile to sell.

   Run with: dune exec examples/parental_filter.exe *)

open Blindbox
open Bbx_rules

(* index of the first occurrence of [needle] in [hay] *)
let find hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then raise Not_found
    else if String.sub hay i nn = needle then i
    else go (i + 1)
  in
  go 0

let () =
  let blacklist = [ "blocked-casino.example"; "blocked-adult.example"; "blocked-guns.example" ] in
  let rules =
    List.mapi
      (fun i domain ->
         Rule.make ~action:Rule.Drop ~msg:("blacklisted: " ^ domain) ~sid:(200 + i)
           [ Rule.make_content domain ])
      blacklist
  in
  let session, _ = Session.establish ~rules () in
  let browse =
    [ "GET / HTTP/1.1\r\nHost: news.example\r\n\r\n";
      "GET /watch?v=cats HTTP/1.1\r\nHost: videos.example\r\n\r\n";
      "GET /signup HTTP/1.1\r\nHost: blocked-casino.example\r\n\r\n";
      "GET /medical?q=embarrassing+question HTTP/1.1\r\nHost: doctor.example\r\n\r\n";
    ]
  in
  let blocked = ref 0 and forwarded = ref 0 in
  let current = ref session in
  let reconnects = ref 0 in
  List.iter
    (fun payload ->
       let host =
         let i = find payload "Host: " in
         let rest = String.sub payload (i + 6) (String.length payload - i - 6) in
         String.sub rest 0 (String.index rest '\r')
       in
       (* a drop rule tears the connection down; the browser reconnects *)
       if Session.blocked !current then begin
         incr reconnects;
         current := fst (Session.establish ~seed:(Printf.sprintf "reconnect-%d" !reconnects) ~rules ())
       end;
       match (Session.send !current payload).Session.verdicts with
       | [] -> incr forwarded; Printf.printf "  %-28s forwarded\n" host
       | _ -> incr blocked; Printf.printf "  %-28s DROPPED (blacklist hit)\n" host)
    browse;
  Printf.printf "\n%d forwarded, %d blocked.\n" !forwarded !blocked;
  Printf.printf
    "what the ISP's middlebox learned about Bob's browsing: %s\n"
    (match Session.mb_keyword_hits session with
     | [] -> "(nothing)"
     | hits -> String.concat ", " (List.map fst hits));
  print_endline "the clean requests' hosts, paths and queries were never visible to it."
