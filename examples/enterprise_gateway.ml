(* An enterprise gateway: one middlebox, many monitored connections.

   This is the deployment of the paper's Fig. 1 and university example
   (§2.1 #1): every employee's HTTPS session passes through a single
   appliance loaded with the corporate IDS ruleset.  Each connection has
   its own session key, so the appliance holds one set of encrypted rules
   per connection — but one shared ruleset, one shared policy, and
   aggregate statistics.

   Run with: dune exec examples/enterprise_gateway.exe *)

open Bbx_dpienc.Dpienc
open Bbx_mbox
open Bbx_rules

let rules =
  Parser.parse_ruleset
    {|alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"known C2 beacon"; content:"beacon-7f3a2c91"; sid:1;)
      drop tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"exploit kit download"; content:"download.exe?killchain"; sid:2;)
      alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"SQLi probe"; content:"union+select"; content:"from+users"; sid:3;)|}

(* Employee endpoints: each has its own session key; for this demo rule
   preparation is Direct (the garbled exchange is shown in
   exfiltration_watermark.ml). *)
type employee = {
  name : string;
  key : key;
  sender : sender;
}

let employee name =
  let key = key_of_secret ("session-key:" ^ name) in
  { name; key; sender = sender_create Exact key ~salt0:0 }

let () =
  let mb = Middlebox.create ~mode:Exact ~rules () in
  let staff = List.map employee [ "alice"; "bob"; "carol"; "dave" ] in
  List.iteri
    (fun i e ->
       Middlebox.register mb ~conn_id:i ~salt0:0 ~enc_chunk:(token_enc e.key))
    staff;
  Printf.printf "gateway up: %d rules, %d connections\n\n" (List.length rules)
    (List.length staff);
  let browse conn (e : employee) payload =
    if Middlebox.is_blocked mb ~conn_id:conn then
      Printf.printf "  [%s] connection is blocked; traffic refused\n" e.name
    else begin
      let tokens = sender_encrypt e.sender (Bbx_tokenizer.Tokenizer.delimiter payload) in
      match Middlebox.process mb ~conn_id:conn tokens with
      | [] -> Printf.printf "  [%s] ok      %s\n" e.name payload
      | vs ->
        List.iter
          (fun v ->
             Printf.printf "  [%s] %-7s %s  (rule: %s)\n" e.name
               (match v.Engine.rule.Rule.action with Rule.Drop -> "DROP" | _ -> "ALERT")
               payload
               (Option.value v.Engine.rule.Rule.msg ~default:""))
          vs
    end
  in
  let alice = List.nth staff 0 and bob = List.nth staff 1 in
  let carol = List.nth staff 2 and dave = List.nth staff 3 in
  browse 0 alice "GET /news/today HTTP/1.1";
  browse 1 bob "GET /search?q=lunch+nearby HTTP/1.1";
  browse 2 carol "GET /c2/beacon-7f3a2c91?host=carol-laptop HTTP/1.1";
  browse 3 dave "GET /kit/download.exe?killchain=1 HTTP/1.1";
  browse 3 dave "GET /anything-after-the-drop HTTP/1.1";
  browse 1 bob "GET /item?id=9+union+select+passwd+from+users HTTP/1.1";
  let st = Middlebox.stats mb in
  Printf.printf
    "\ngateway stats: %d connections, %d tokens inspected, %d keyword hits, %d alerts, %d blocked\n"
    st.Middlebox.connections st.Middlebox.total_tokens st.Middlebox.total_keyword_hits
    st.Middlebox.alerts st.Middlebox.blocked;
  print_endline
    "the gateway never held a session key and saw nothing of alice's or bob's clean browsing."
