(* Exfiltration detection via document watermarking (paper §1, ref [45]).

   An enterprise embeds confidentiality watermarks in sensitive documents;
   the egress middlebox watches outbound HTTPS for those watermarks.  With
   BlindBox, employees' ordinary traffic stays private: the middlebox only
   learns when a watermark crosses the wire.

   This example runs the *real* obfuscated rule encryption (garbled AES
   circuits + oblivious transfer) for a small watermark ruleset, with the
   rule generator's RSA signatures verified during setup.

   Run with: dune exec examples/exfiltration_watermark.exe *)

open Blindbox
open Bbx_rules

let () =
  (* The rule generator (e.g. the org's DLP vendor) signs its watermark
     rules. *)
  let rg_drbg = Bbx_crypto.Drbg.create "dlp-vendor-keys" in
  let rg = Bbx_sig.Rsa.generate ~rand_bytes:(Bbx_crypto.Drbg.bytes rg_drbg) ~bits:512 in
  let watermarks = [ "WM-7f3a9c51"; "WM-d4e8b200" ] in
  let rules =
    List.mapi
      (fun i wm -> Rule.make ~msg:(Printf.sprintf "confidential watermark %d" i) ~sid:(100 + i)
          [ Rule.make_content wm ])
      watermarks
  in
  Printf.printf "preparing %d watermark rules with garbled circuits + OT...\n%!"
    (List.length rules);
  let config = { Session.default_config with Session.rule_prep = Session.Garbled } in
  let session, stats = Session.establish ~config ~rg ~rules () in
  (match stats.Session.rule_prep_stats with
   | Some s ->
     Printf.printf
       "  %d circuits garbled in %.0f ms (%.1f MB shipped), OT moved %.1f KB, MB evaluated in %.0f ms\n\n"
       s.Ruleprep.circuits (1000.0 *. s.Ruleprep.garble_seconds)
       (float_of_int s.Ruleprep.circuit_bytes /. 1e6)
       (float_of_int s.Ruleprep.ot_bytes /. 1e3)
       (1000.0 *. s.Ruleprep.eval_seconds)
   | None -> ());
  let uploads =
    [ ("weekly-report.txt", "POST /upload HTTP/1.1\r\n\r\nQ3 sales grew 14% across regions.");
      ("meeting-notes.txt", "POST /upload HTTP/1.1\r\n\r\nAction items: ship v2, hire an SRE.");
      ("roadmap-CONFIDENTIAL.txt",
       "POST /upload HTTP/1.1\r\n\r\nInternal only WM-d4e8b200 : acquisition target list...");
    ]
  in
  List.iter
    (fun (name, payload) ->
       let d = Session.send session payload in
       (match d.Session.verdicts with
        | [] -> Printf.printf "%-28s left the network (middlebox saw nothing)\n" name
        | v :: _ ->
          Printf.printf "%-28s BLOCKED: %s\n" name
            (Option.value v.Bbx_mbox.Engine.rule.Rule.msg ~default:"watermark")))
    uploads
