(* Full IDS with probable-cause privacy (paper §5 / Protocol III).

   Regular-expression rules cannot run over encrypted tokens.  Under
   probable cause, every token additionally carries
   [Enc*(salt,t) XOR k_ssl]: if — and only if — a suspicious keyword
   matches, the middlebox reconstructs the mask, recovers the session key,
   hands the recorded stream to its ssldump element, and runs the full
   rule (pcre included) over the plaintext.  Flows that never match stay
   encrypted end-to-end.

   Run with: dune exec examples/ids_probable_cause.exe *)

open Blindbox

let sqli_rule =
  Bbx_rules.Parser.parse_rule
    "alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:\"SQL injection\"; \
     content:\"userquery\"; pcre:\"/userquery=[0-9]*('|%27)/\"; sid:9001;)"

let show_key t =
  match Session.mb_recovered_key t with
  | None -> "middlebox holds NO session key"
  | Some k -> Printf.sprintf "middlebox RECOVERED k_ssl = %s..." (Bbx_crypto.Util.to_hex (String.sub k 0 4))

let () =
  let config =
    { Session.default_config with Session.mode = Bbx_dpienc.Dpienc.Probable }
  in
  print_endline "--- flow 1: benign traffic (uses the suspicious keyword innocently) ---";
  let t1, _ = Session.establish ~config ~seed:"flow-1" ~rules:[ sqli_rule ] () in
  let d = Session.send t1 "GET /search?userquery=12345 HTTP/1.1\r\n\r\n" in
  Printf.printf "verdicts: %d; %s\n" (List.length d.Session.verdicts) (show_key t1);
  print_endline "  (keyword matched -> probable cause -> stream decrypted, pcre did not confirm)\n";

  print_endline "--- flow 2: actual SQL injection ---";
  let t2, _ = Session.establish ~config ~seed:"flow-2" ~rules:[ sqli_rule ] () in
  let _ = Session.send t2 "GET /search?lang=en HTTP/1.1\r\n\r\n" in
  let d = Session.send t2 "GET /search?userquery=42'--+OR+1=1 HTTP/1.1\r\n\r\n" in
  Printf.printf "verdicts: %d; %s\n" (List.length d.Session.verdicts) (show_key t2);
  (match Session.mb_decrypted_stream t2 with
   | Some stream ->
     Printf.printf "  decrypted stream handed to the regexp stage (%d bytes, both messages)\n"
       (String.length stream)
   | None -> ());

  (* Bro-style scripts on the decrypted stream (the "scripting" half of
     Protocol III's full-IDS claim) *)
  (match Session.mb_decrypted_stream t2 with
   | Some stream ->
     List.iter
       (fun f ->
          Printf.printf "  script %-18s -> %s\n" f.Bbx_mbox.Scripts.script
            f.Bbx_mbox.Scripts.detail)
       (Bbx_mbox.Scripts.run_all Bbx_mbox.Scripts.defaults stream)
   | None -> ());

  print_endline "\n--- flow 3: entirely unsuspicious traffic ---";
  let t3, _ = Session.establish ~config ~seed:"flow-3" ~rules:[ sqli_rule ] () in
  let _ = Session.send t3 "GET /weather?city=london HTTP/1.1\r\n\r\n" in
  let _ = Session.send t3 "POST /love-letter HTTP/1.1\r\n\r\ndearest..." in
  Printf.printf "verdicts: 0; %s\n" (show_key t3);
  print_endline "  (no keyword match -> cryptographically, the middlebox cannot decrypt)"
