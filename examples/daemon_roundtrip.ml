(* blindboxd roundtrip: the whole deployment story in one program.

   An in-process daemon comes up on a temp Unix-domain socket (in a real
   deployment this is `blindbox serve`), a client establishes a monitored
   connection over it — local S/R handshake, HELLO, per-connection rule
   encryption, RULE_SETUP — then streams encrypted records and reads
   verdicts, updates the ruleset live, and finally asks the daemon for
   its aggregate statistics.  The middlebox side never sees a key. *)

module Daemon = Bbx_daemon.Daemon
module Client = Bbx_daemon.Client
module Wire = Bbx_wire.Wire
module Dpienc = Bbx_dpienc.Dpienc
module Rule = Bbx_rules.Rule

let rules =
  [ Rule.make ~sid:1 ~msg:"credit card exfil" [ Rule.make_content "4111-1111" ];
    Rule.make ~sid:2 ~msg:"c2 beacon" [ Rule.make_content "beacon:7" ] ]

let () =
  let endpoint =
    Daemon.Unix_path
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "blindboxd-example-%d.sock" (Unix.getpid ())))
  in
  let handle = Daemon.start (Daemon.config ~endpoint ~rules ()) in
  Fun.protect ~finally:(fun () -> Daemon.stop handle) @@ fun () ->
  Printf.printf "daemon up on %s\n" (Daemon.endpoint_to_string endpoint);

  let s = Client.establish endpoint ~mode:Dpienc.Exact ~salt0:0 ~seed:"example" in
  Fun.protect ~finally:(fun () -> Client.close s.Client.sc_client) @@ fun () ->
  Printf.printf "connection %d established (%d rules announced)\n"
    s.Client.sc_conn_id (List.length s.Client.sc_rules);

  (* stream traffic: the sender encrypts, the daemon only ever sees
     DPIEnc records *)
  let sender = Dpienc.sender_create Dpienc.Exact s.Client.sc_key ~salt0:0 in
  let send_payload seq payload =
    let buf = Buffer.create 256 in
    ignore (Dpienc.sender_encrypt_into sender payload buf : int);
    Client.send_records s.Client.sc_client ~seq (Buffer.contents buf);
    let _, status, verdicts = Client.recv_verdict s.Client.sc_client in
    Printf.printf "  %-44s -> %s\n"
      (String.sub payload 0 (min 44 (String.length payload)))
      (match status with
       | Wire.Clean -> "clean"
       | Wire.Dropped -> "dropped"
       | Wire.Alerts ->
         String.concat "; "
           (List.map
              (fun v -> Printf.sprintf "ALERT sid:%d %s" v.Wire.v_sid v.Wire.v_msg)
              verdicts))
  in
  send_payload 0 "GET /index.html HTTP/1.1";
  send_payload 1 "POST /pay card=4111-1111 HTTP/1.1";
  send_payload 2 "nothing to see here";

  (* live rule update: drop the c2 rule, add a new watchword *)
  let added = Rule.make ~sid:3 ~msg:"watchword" [ Rule.make_content "tetraodon" ] in
  let rules' =
    List.filter (fun r -> r.Rule.sid <> Some 2) s.Client.sc_rules @ [ added ]
  in
  let n, _ =
    Client.update_rules s.Client.sc_client ~remove_sids:[ 2 ] ~add:[ added ]
      ~pairs:(Client.pairs_for ~key:s.Client.sc_key rules')
  in
  let salt0' = Dpienc.sender_reset sender in
  Client.salt_reset s.Client.sc_client ~salt0:salt0';
  Printf.printf "ruleset updated live (+%d rule), salts reset\n" n;
  send_payload 3 "the tetraodon swims at dawn";

  let stats = Client.stats s.Client.sc_client in
  Printf.printf "daemon stats: %d tokens inspected, %d keyword hits, %d alerts\n"
    stats.Wire.s_total_tokens stats.Wire.s_total_keyword_hits stats.Wire.s_alerts
