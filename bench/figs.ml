(* Figures 3-6: page-load times and bandwidth overheads.

   Figs. 3-4 combine a link model with per-byte CPU costs measured on the
   real sender pipeline (Record.seal + tokenize + DPIEnc); Figs. 5-6 count
   real token emissions over the synthetic top-50 corpus. *)

open Bbx_crypto
open Bbx_dpienc
open Bbx_net
open Bbx_tokenizer

let cipher_bytes_per_token = 5 (* the 40-bit DPIEnc ciphertext, paper §3.1 *)

(* ---- measured cost model ------------------------------------------- *)

let sample_bytes = 128 * 1024

let measure_cost_model () =
  let text = Page.gen_html (Drbg.create "figs-html") ~bytes:sample_bytes in
  let text = String.sub text 0 sample_bytes in
  let writer = Bbx_tls.Record.create ~key:"figs" ~direction:"d" () in
  let tls_s = Bench_util.time_per ~min_time:0.5 (fun () -> ignore (Bbx_tls.Record.seal writer text)) in
  let dpi_key = Dpienc.key_of_secret "figs-k" in
  let toks = Tokenizer.delimiter text in
  let n_tokens = List.length toks in
  let bb_s =
    let sender = Dpienc.sender_create Dpienc.Exact dpi_key ~salt0:0 in
    Bench_util.time_per ~min_time:0.5 (fun () ->
        ignore (Bbx_tls.Record.seal writer text);
        ignore (Dpienc.sender_encrypt sender (Tokenizer.delimiter text)))
  in
  let fb = float_of_int sample_bytes in
  { Linksim.tls_cpu_per_byte = tls_s /. fb;
    bb_text_cpu_per_byte = bb_s /. fb;
    token_wire_per_text_byte =
      float_of_int (n_tokens * cipher_bytes_per_token) /. fb }

let model = lazy (measure_cost_model ())

let page_load_fig link ~label ~paper_note =
  let model = Lazy.force model in
  Bench_util.section label;
  Printf.printf "  measured cost model: TLS %.1f ns/B, BlindBox text %.1f ns/B, +%.2f wire B/text B\n"
    (model.Linksim.tls_cpu_per_byte *. 1e9) (model.Linksim.bb_text_cpu_per_byte *. 1e9)
    model.Linksim.token_wire_per_text_byte;
  Printf.printf "%-12s %14s %14s %8s %14s %14s %8s\n" "Site"
    "whole TLS" "whole BB+TLS" "ratio" "text TLS" "text BB+TLS" "ratio";
  List.iter
    (fun p ->
       let text = p.Corpus.text_kb * 1024 and binary = p.Corpus.binary_kb * 1024 in
       (* per-site token density: prose (Gutenberg) tokenizes far lighter
          than markup-heavy pages *)
       let body = Page.text_body (Corpus.page_of_profile p) in
       let model =
         { model with
           Linksim.token_wire_per_text_byte =
             float_of_int (Tokenizer.delimiter_count body * cipher_bytes_per_token)
             /. float_of_int (max 1 (String.length body)) }
       in
       let t_whole_tls = Linksim.page_load link model Linksim.Tls ~text_bytes:text ~binary_bytes:binary in
       let t_whole_bb = Linksim.page_load link model Linksim.Blindbox ~text_bytes:text ~binary_bytes:binary in
       let t_text_tls = Linksim.page_load link model Linksim.Tls ~text_bytes:text ~binary_bytes:0 in
       let t_text_bb = Linksim.page_load link model Linksim.Blindbox ~text_bytes:text ~binary_bytes:0 in
       Printf.printf "%-12s %14s %14s %7.2fx %14s %14s %7.2fx\n" p.Corpus.site
         (Bench_util.fmt_seconds t_whole_tls) (Bench_util.fmt_seconds t_whole_bb)
         (t_whole_bb /. t_whole_tls)
         (Bench_util.fmt_seconds t_text_tls) (Bench_util.fmt_seconds t_text_bb)
         (t_text_bb /. t_text_tls))
    Corpus.named_sites;
  Bench_util.note "%s" paper_note

let run_fig3 () =
  page_load_fig Linksim.broadband ~label:"Fig 3: page load time, 20 Mbps x 10 ms (scaled testbed)"
    ~paper_note:
      "paper: whole-page overhead <= 2x (10-13%% on video-heavy sites), text/code up to ~3x"

let run_fig4 () =
  page_load_fig Linksim.gigabit ~label:"Fig 4: page load time, 1 Gbps x 10 ms"
    ~paper_note:"paper: CPU-bound regime; text-heavy overhead up to ~16x vs TLS"

(* ---- Fig 5: bandwidth overhead over the top-50 corpus --------------- *)

type page_overhead = {
  site : string;
  text : int;
  binary : int;
  window_tokens : int;
  delim_tokens : int;
}

let corpus_overheads =
  lazy
    (List.mapi
       (fun i page ->
          let body = Page.text_body page in
          { site = Printf.sprintf "site%02d" i;
            text = Page.text_bytes page;
            binary = Page.binary_bytes page;
            window_tokens = Tokenizer.window_count body;
            delim_tokens = Tokenizer.delimiter_count body })
       (Corpus.top50 ()))

let overhead_ratio p tokens =
  let total = p.text + p.binary in
  float_of_int (total + (tokens * cipher_bytes_per_token)) /. float_of_int total

let run_fig5 () =
  let pages = Lazy.force corpus_overheads in
  Bench_util.section "Fig 5a/5b: bytes and overhead across the top-50 corpus";
  Printf.printf "%-8s %10s %10s | %12s %8s | %12s %8s\n" "page" "text" "binary"
    "window toks" "ovh" "delim toks" "ovh";
  List.iter
    (fun p ->
       Printf.printf "%-8s %10s %10s | %12d %7.2fx | %12d %7.2fx\n" p.site
         (Bench_util.fmt_bytes p.text) (Bench_util.fmt_bytes p.binary)
         p.window_tokens (overhead_ratio p p.window_tokens)
         p.delim_tokens (overhead_ratio p p.delim_tokens))
    pages;
  let summarize name f =
    let l = List.map f pages in
    let a = Array.of_list l in
    Array.sort compare a;
    Printf.printf "  %-22s median %.2fx  min %.2fx  max %.2fx\n" name
      (Bench_util.percentile a 0.5) a.(0) a.(Array.length a - 1)
  in
  summarize "window overhead" (fun p -> overhead_ratio p p.window_tokens);
  summarize "delimiter overhead" (fun p -> overhead_ratio p p.delim_tokens);
  Bench_util.note "paper: window median 4x (worst 24x); delimiter median 2.5x (best 1.1x, worst 14x)"

(* ---- Fig 6: CDF vs plaintext and vs gzip ---------------------------- *)

let run_fig6 () =
  let pages = Lazy.force corpus_overheads in
  Bench_util.section "Fig 6: CDF of transmitted bytes, BlindBox : SSL baseline";
  (* compressed text sizes (binary assumed already compressed) *)
  let corpus = Corpus.top50 () in
  let compressed =
    List.map (fun page -> Bbx_compress.Compress.compressed_size (Page.text_body page)) corpus
  in
  let series =
    [ ("delim : plaintext", List.map (fun p -> overhead_ratio p p.delim_tokens) pages);
      ("window : plaintext", List.map (fun p -> overhead_ratio p p.window_tokens) pages);
      ("delim : gzip",
       List.map2
         (fun p ctext ->
            let base = ctext + p.binary in
            float_of_int (base + (p.delim_tokens * cipher_bytes_per_token)) /. float_of_int base)
         pages compressed);
      ("window : gzip",
       List.map2
         (fun p ctext ->
            let base = ctext + p.binary in
            float_of_int (base + (p.window_tokens * cipher_bytes_per_token)) /. float_of_int base)
         pages compressed);
    ]
  in
  Printf.printf "%-20s %8s %8s %8s %8s %8s %8s\n" "series (ratio)" "p10" "p25" "p50" "p75" "p90" "max";
  List.iter
    (fun (name, values) ->
       let a = Array.of_list values in
       Array.sort compare a;
       Printf.printf "%-20s %7.2fx %7.2fx %7.2fx %7.2fx %7.2fx %7.2fx\n" name
         (Bench_util.percentile a 0.10) (Bench_util.percentile a 0.25)
         (Bench_util.percentile a 0.50) (Bench_util.percentile a 0.75)
         (Bench_util.percentile a 0.90) a.(Array.length a - 1))
    series;
  Bench_util.note
    "paper's CDF ordering: delim:plain < window:plain < delim:gzip < window:gzip (gzip shrinks the baseline, tokens don't compress)"
