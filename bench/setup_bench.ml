(* §7.2.2: connection-setup cost — obfuscated rule encryption scales
   linearly with the number of keywords (garbling + transmission + OT +
   evaluation per keyword chunk).

   Paper (AES-NI + JustGarble): 1042 us garbling per circuit, 599 KB per
   circuit; client setup 650 ms @ 10 keywords, 1.6 s @ 100, 9.5 s @ 1k,
   97 s @ 10k.  Software AES and our algebraic S-box move the constants
   (~1.4 MB, hundreds of ms per circuit) but not the scaling. *)

open Bbx_crypto
open Bbx_ot

let run () =
  Bench_util.section "Connection setup: obfuscated rule encryption scaling";
  (* handshake alone *)
  let hs =
    Bench_util.time_per ~min_time:0.3 (fun () ->
        let st, share = Bbx_tls.Handshake.initiate (Drbg.create "su-c") in
        let _, share_s = Bbx_tls.Handshake.respond (Drbg.create "su-s") ~peer_share:share in
        ignore (Bbx_tls.Handshake.complete st ~peer_share:share_s))
  in
  Printf.printf "  SSL handshake alone: %s\n" (Bench_util.fmt_seconds hs);

  (* per-circuit costs, measured on real batches *)
  let drbg = Drbg.create "su-chunks" in
  let measure n =
    let chunks = Array.init n (fun _ -> Drbg.bytes drbg 8) in
    let t0 = Unix.gettimeofday () in
    let _, stats = Blindbox.Ruleprep.prepare_unchecked ~k:"k" ~k_rand:"kr" ~chunks () in
    (Unix.gettimeofday () -. t0, stats)
  in
  let t1, s1 = measure 1 in
  let t4, s4 = measure 4 in
  let per_chunk = (t4 -. t1) /. 3.0 in
  Printf.printf "  per-circuit: garble %s, MB eval %s, %s shipped per endpoint\n"
    (Bench_util.fmt_seconds (s4.Blindbox.Ruleprep.garble_seconds /. 4.0))
    (Bench_util.fmt_seconds (s4.Blindbox.Ruleprep.eval_seconds /. 4.0))
    (Bench_util.fmt_bytes (s4.Blindbox.Ruleprep.circuit_bytes / 4));
  Printf.printf "  (paper per-circuit: 1042 us garbling, 599 KB — AES-NI + a 9k-AND S-box circuit)\n";
  Printf.printf "  measured setup: 1 keyword = %s, 4 keywords = %s; OT bytes @4 = %s\n"
    (Bench_util.fmt_seconds t1) (Bench_util.fmt_seconds t4)
    (Bench_util.fmt_bytes s4.Blindbox.Ruleprep.ot_bytes);
  ignore s1;
  Printf.printf "\n  %-14s %16s %16s\n" "keywords" "extrapolated" "paper";
  List.iter
    (fun (n, paper) ->
       Printf.printf "  %-14d %16s %16s\n" n
         (Bench_util.fmt_seconds (t1 +. (per_chunk *. float_of_int (n - 1))))
         paper)
    [ (10, "650 ms"); (100, "1.6 s"); (1000, "9.5 s"); (10_000, "97 s") ];

  (* The paper's deployment argument (§7.2): setup is tolerable exactly
     when connections are long-lived.  Compute the connection volume at
     which setup falls below 10% of total time on the broadband link. *)
  Bench_util.subsection "setup amortisation over connection lifetime";
  let bw_bytes_per_s = 20e6 /. 8.0 in
  List.iter
    (fun (kws, paper) ->
       let setup = t1 +. (per_chunk *. float_of_int (kws - 1)) in
       let bytes = setup /. 0.1 *. bw_bytes_per_s in
       Printf.printf
         "  %6d keywords: setup %s -> <10%% of a 20 Mbps connection after %s transferred (paper setup: %s)\n"
         kws (Bench_util.fmt_seconds setup)
         (Bench_util.fmt_bytes (int_of_float bytes)) paper)
    [ (10, "650 ms"); (1000, "9.5 s"); (10_000, "97 s") ];
  Bench_util.note
    "hence the paper's conclusion: practical for persistent (SPDY-like/tunneled) connections, \
     not for short flows against large rulesets; Session.resume amortises setup across \
     connections entirely";

  (* OT extension amortisation: transcript bytes per transfer *)
  Bench_util.subsection "IKNP OT extension amortisation";
  List.iter
    (fun n ->
       let messages = Array.init n (fun _ -> (Drbg.bytes drbg 16, Drbg.bytes drbg 16)) in
       let choices = Array.init n (fun i -> i land 1 = 0) in
       let t0 = Unix.gettimeofday () in
       let _, bytes =
         Extension.run ~sender_drbg:(Drbg.create "su-ot-s") ~receiver_drbg:(Drbg.create "su-ot-r")
           ~messages ~choices
       in
       let dt = Unix.gettimeofday () -. t0 in
       Printf.printf "  %6d transfers: %s total, %s, %.1f us and %.0f B per transfer\n" n
         (Bench_util.fmt_seconds dt) (Bench_util.fmt_bytes bytes)
         (dt /. float_of_int n *. 1e6) (float_of_int bytes /. float_of_int n))
    [ 64; 512; 4096 ]
