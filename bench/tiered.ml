(* Tiered-inspection accuracy gate: drive a real-shape ruleset (mixed
   Protocol I/II/III with nocase and pcre) through full in-process
   BlindBox connections at every --tier setting and compare the engine's
   verdicts against the plaintext [Classify.matches_plaintext] oracle.

   Each planted connection carries a payload constructed to satisfy one
   rule exactly: contents laid down token-aligned (delimiter-separated)
   at positions honouring their offset/depth/distance/within modifiers,
   plus the rule's pcre witness for Protocol III rules.  The gate demands
   exact parity at every tier — engine verdict set == oracle set
   restricted to rules the tier supports — with one carve-out: verdicts
   whose detail is budget-exceeded are counted separately (flagged, not
   matched), never as mismatches.  A dedicated tiny-budget scenario
   checks that exhaustion produces exactly that flag.

   Results land in BENCH_tiered.json. *)

open Bbx_rules
module Engine = Bbx_mbox.Engine
module Session = Blindbox.Session
module Drbg = Bbx_crypto.Drbg

(* ---- constraint-satisfying planting ---- *)

(* [g] filler bytes between the previous keyword's end and the next
   keyword's start.  The first and last filler byte are delimiters so
   both keywords stay token-aligned under delimiter tokenization. *)
let add_gap buf g =
  if g <= 0 then invalid_arg "add_gap";
  if g = 1 then Buffer.add_char buf ' '
  else begin
    Buffer.add_char buf ' ';
    Buffer.add_string buf (String.make (g - 2) 'z');
    Buffer.add_char buf ' '
  end

(* Append [r]'s contents in order, each at a position satisfying its
   modifiers (see Classify.contents_satisfiable: offset/depth absolute,
   distance/within relative to the previous match's end), then the pcre
   witness when the rule carries one.  Chosen positions:
     first content   s = offset (or 0)
     later contents  s = prev_end + max(1, distance)
   which always fits: depth >= len+2 and within >= len+5 in the
   real-shape generator, and a gap of max(1,distance) never overshoots
   distance + (within - len). *)
let plant_rule r =
  let buf = Buffer.create 256 in
  let first = ref true in
  List.iter
    (fun (c : Rule.content) ->
       let cur = Buffer.length buf in
       if !first then begin
         first := false;
         let s = Option.value c.Rule.offset ~default:0 in
         if s > 0 then add_gap buf s
       end
       else add_gap buf (max 1 (Option.value c.Rule.distance ~default:0));
       ignore cur;
       Buffer.add_string buf c.Rule.pattern)
    r.Rule.contents;
  (match r.Rule.pcre with
   | None -> ()
   | Some p ->
     let w =
       match Datasets.pcre_witness p with
       | Some w -> w
       | None -> failwith ("no witness for pcre " ^ p)
     in
     Buffer.add_char buf ' ';
     Buffer.add_string buf w);
  Buffer.add_string buf " trailingfiller";
  Buffer.contents buf

let benign_payload drbg i =
  let word () =
    String.init (4 + Drbg.uniform drbg 6)
      (fun _ -> Char.chr (Char.code 'a' + Drbg.uniform drbg 26))
  in
  let words = List.init (20 + (i mod 7)) (fun _ -> word ()) in
  String.concat " " words

(* ---- one connection through the session pipeline ---- *)

let run_conn ~config ~rules payload =
  let session, _ = Session.establish ~config ~rules () in
  (try ignore (Session.send session payload : Session.delivery)
   with Session.Connection_blocked -> ());
  (Session.mb_verdicts session, Session.mb_escalation session)

let sid v = Option.value v.Engine.rule.Rule.sid ~default:0

let detail_of_class = function
  | Classify.Protocol_I -> `Exact_hit
  | Classify.Protocol_II -> `Composite_match
  | Classify.Protocol_III -> `Regex_match

let run () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "Tiered inspection vs plaintext oracle (smoke)"
     else "Tiered inspection vs plaintext oracle");
  let n = if smoke then 24 else 60 in
  let n_benign = if smoke then 4 else 10 in
  let rules = Datasets.real_shape ~n () in
  let tiers = Classify.partition rules in
  Printf.printf "  ruleset: %d rules (%d exact / %d composite / %d decrypt)\n"
    n (List.length tiers.Classify.exact)
    (List.length tiers.Classify.composite)
    (List.length tiers.Classify.decrypt);
  let drbg = Drbg.create "tiered-bench" in
  let planted = List.map (fun r -> (r, plant_rule r)) rules in
  let benign = List.init n_benign (benign_payload drbg) in
  let mismatches = ref 0 in
  let detail_wrong = ref 0 in
  let verdict_count = Hashtbl.create 8 in
  let bump d = Hashtbl.replace verdict_count d (1 + Option.value (Hashtbl.find_opt verdict_count d) ~default:0) in
  let tier_results = ref [] in
  List.iter
    (fun tier ->
       let config =
         { Session.default_config with
           Session.mode = Bbx_dpienc.Dpienc.Probable;
           rule_prep = Session.Direct;
           tier }
       in
       let conns = ref 0 and hits = ref 0 and tier_mismatch = ref 0 in
       let check payload planted_rule =
         incr conns;
         let verdicts, _ = run_conn ~config ~rules payload in
         let flagged, matched =
           List.partition (fun v -> v.Engine.detail = `Budget_exceeded) verdicts
         in
         assert (flagged = []);   (* default budget: nothing exhausts *)
         List.iter (fun v -> bump v.Engine.detail) matched;
         let engine_sids =
           List.sort_uniq compare (List.map sid matched)
         in
         let oracle_sids =
           List.sort_uniq compare
             (List.filter_map
                (fun r ->
                   if Classify.supported_by tier r
                      && Classify.matches_plaintext r payload
                   then r.Rule.sid
                   else None)
                rules)
         in
         if engine_sids <> oracle_sids then begin
           incr tier_mismatch;
           Printf.printf
             "  MISMATCH tier %d: engine=[%s] oracle=[%s]\n"
             (Classify.rank tier)
             (String.concat ";" (List.map string_of_int engine_sids))
             (String.concat ";" (List.map string_of_int oracle_sids))
         end;
         (match planted_rule with
          | Some r when Classify.supported_by tier r ->
            incr hits;
            let expect = detail_of_class (Classify.classify r) in
            let got =
              List.find_opt (fun v -> Some (sid v) = r.Rule.sid) matched
            in
            (match got with
             | Some v when v.Engine.detail = expect -> ()
             | _ -> incr detail_wrong)
          | _ -> ())
       in
       List.iter (fun (r, payload) -> check payload (Some r)) planted;
       List.iter (fun payload -> check payload None) benign;
       mismatches := !mismatches + !tier_mismatch;
       Printf.printf
         "  tier %d: %d connections, %d planted hits, %d parity mismatches\n"
         (Classify.rank tier) !conns !hits !tier_mismatch;
       tier_results :=
         (Classify.rank tier, !conns, !hits, !tier_mismatch) :: !tier_results)
    [ Classify.Protocol_I; Classify.Protocol_II; Classify.Protocol_III ];
  (* ---- budget exhaustion: flagged, not matched, never a mismatch ---- *)
  let budget_flagged = ref 0 and budget_wrong = ref 0 in
  let tiny =
    { Session.default_config with
      Session.mode = Bbx_dpienc.Dpienc.Probable;
      rule_prep = Session.Direct;
      tier = Classify.Protocol_III;
      tier_budget = { Engine.max_plain_bytes = 48; max_scan_ms = 0 } }
  in
  List.iter
    (fun (idx, r) ->
       let payload = plant_rule r ^ " " ^ String.make 400 'z' in
       let verdicts, escalation = run_conn ~config:tiny ~rules payload in
       ignore idx;
       (match
          List.find_opt (fun v -> Some (sid v) = r.Rule.sid) verdicts
        with
        | Some v when v.Engine.detail = `Budget_exceeded ->
          incr budget_flagged;
          if escalation <> `Exhausted then incr budget_wrong
        | Some _ | None -> incr budget_wrong))
    (match tiers.Classify.decrypt with
     | a :: b :: _ -> [ a; b ]
     | l -> l);
  Printf.printf
    "  tiny budget (48 B plaintext cap): %d/%d flows flagged budget-exceeded\n"
    !budget_flagged (min 2 (List.length tiers.Classify.decrypt));
  let pass = !mismatches = 0 && !detail_wrong = 0 && !budget_wrong = 0 in
  Printf.printf "  gate: parity %s (%d mismatches, %d wrong details, %d budget anomalies)\n"
    (if pass then "OK" else "FAILED") !mismatches !detail_wrong !budget_wrong;
  (* ---- machine-readable snapshot ---- *)
  let oc = open_out "BENCH_tiered.json" in
  let detail_json =
    String.concat ","
      (List.map
         (fun (name, d) ->
            Printf.sprintf "\"%s\":%d" name
              (Option.value (Hashtbl.find_opt verdict_count d) ~default:0))
         [ ("exact_hit", `Exact_hit); ("composite_match", `Composite_match);
           ("regex_match", `Regex_match) ])
  in
  let tiers_json =
    String.concat ","
      (List.rev_map
         (fun (rank, conns, hits, mism) ->
            Printf.sprintf
              "{\"tier\":%d,\"connections\":%d,\"planted_hits\":%d,\"mismatches\":%d}"
              rank conns hits mism)
         !tier_results)
  in
  Printf.fprintf oc
    "{\"experiment\":\"tiered\",\"smoke\":%b,\"rules\":%d,\"class_counts\":[%d,%d,%d],\
     \"tiers\":[%s],\"verdict_details\":{%s},\"budget_flagged\":%d,\
     \"mismatches\":%d,\"detail_wrong\":%d,\"budget_anomalies\":%d,\"pass\":%b}\n"
    smoke n
    (List.length tiers.Classify.exact)
    (List.length tiers.Classify.composite)
    (List.length tiers.Classify.decrypt)
    tiers_json detail_json !budget_flagged !mismatches !detail_wrong
    !budget_wrong pass;
  close_out oc;
  Printf.printf "  wrote BENCH_tiered.json\n";
  if not pass then exit 1
