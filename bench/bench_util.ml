(* Timing helpers shared by all experiments.

   Fast operations (ns-us) go through Bechamel's OLS estimator; slow ones
   (ms-minutes) are timed directly with enough repetitions for stability. *)

open Bechamel
open Bechamel.Toolkit

(* ns per run, estimated by Bechamel (monotonic clock, OLS on run count). *)
let bechamel_ns ~name ?(quota = 0.5) f =
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimate = ref nan in
  Hashtbl.iter
    (fun _ v ->
       match Analyze.OLS.estimates v with
       | Some (e :: _) -> estimate := e
       | _ -> ())
    results;
  !estimate

(* Direct wall-clock timing: seconds for one call, averaged over reps. *)
let time_direct ?(reps = 1) f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do f () done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

(* Repeat until ~min_time total, return seconds per call. *)
let time_per ?(min_time = 0.2) f =
  f (); (* warmup *)
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  while Unix.gettimeofday () -. t0 < min_time do
    f ();
    incr reps
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int !reps

let fmt_seconds s =
  if Float.is_nan s then "n/a"
  else if s < 0.0 then "??"
  else if s < 1e-6 then Printf.sprintf "%.0f ns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.2f us" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else if s < 120.0 then Printf.sprintf "%.2f s" s
  else Printf.sprintf "%.1f min" (s /. 60.0)

let fmt_bytes b =
  if b < 1024 then Printf.sprintf "%d B" b
  else if b < 1024 * 1024 then Printf.sprintf "%.1f KB" (float_of_int b /. 1024.0)
  else Printf.sprintf "%.1f MB" (float_of_int b /. (1024.0 *. 1024.0))

let fmt_rate bytes seconds =
  Printf.sprintf "%.0f Mbps" (float_of_int bytes *. 8.0 /. seconds /. 1e6)

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let subsection title = Printf.printf "\n--- %s ---\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n%!" s) fmt

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let idx = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(idx)
  end

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  percentile a 0.5
