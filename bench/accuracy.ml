(* §7.1 accuracy experiment: replay an ICTF-like trace against an
   Emerging-Threats-like ruleset (regex rules removed, as in the paper)
   and compare BlindBox's delimiter-tokenization detection with the
   plaintext "Snort" ground truth.

   Paper: 97.1% of attack keywords and 99% of attack rules detected. *)

open Bbx_dpienc
open Bbx_net
open Bbx_rules
open Bbx_tokenizer

let run () =
  Bench_util.section "Detection accuracy vs plaintext Snort (ICTF-like trace)";
  let all_rules = Datasets.generate Datasets.Emerging_threats ~n:500 in
  let rules = List.filter (fun r -> r.Rule.pcre = None) all_rules in
  Printf.printf "  ruleset: %d rules after dropping pcre rules (of %d)\n"
    (List.length rules) (List.length all_rules);
  let flows = Trace.generate ~misaligned_fraction:0.03 ~rules ~n_attacks:600 ~n_benign:200 () in
  let dpi_key = Dpienc.key_of_secret "accuracy-k" in
  let enc_chunk = Dpienc.token_enc dpi_key in
  (* ground truth and BlindBox detection, flow by flow (fresh connection
     state per flow, as the middlebox would have) *)
  let kw_truth = ref 0 and kw_detected = ref 0 in
  let rule_truth = ref 0 and rule_detected = ref 0 in
  let false_alarms = ref 0 in
  (* unique coverage across the whole trace (the paper's aggregation:
     which of the keywords/rules Snort flags anywhere does BlindBox also
     flag somewhere?) *)
  let uniq_kw_truth = Hashtbl.create 256 and uniq_kw_det = Hashtbl.create 256 in
  let uniq_rule_truth = Hashtbl.create 256 and uniq_rule_det = Hashtbl.create 256 in
  List.iter
    (fun flow ->
       let payload = flow.Trace.payload in
       (* plaintext Snort reference *)
       let truth_rules =
         List.filter (fun r -> Classify.matches_plaintext r payload) rules
       in
       let truth_kws =
         List.sort_uniq compare
           (List.concat_map
              (fun r ->
                 List.filter
                   (fun kw -> Classify.keyword_match_positions ~nocase:false kw payload <> [])
                   (Rule.keywords r))
              truth_rules)
       in
       (* BlindBox over the encrypted token stream *)
       let engine =
         Bbx_mbox.Engine.create ~mode:Dpienc.Exact ~salt0:0 ~rules ~enc_chunk ()
       in
       let sender = Dpienc.sender_create Dpienc.Exact dpi_key ~salt0:0 in
       let buf = Buffer.create 4096 in
       ignore
         (Dpienc.sender_encrypt_into sender
            ~tokenization:(Dpienc.Delimiter { short_units = false }) payload buf : int);
       ignore (Bbx_mbox.Engine.process_wire engine (Buffer.contents buf) : int);
       let verdict_rules =
         List.map (fun v -> v.Bbx_mbox.Engine.rule) (Bbx_mbox.Engine.verdicts engine)
       in
       let hits = Bbx_mbox.Engine.keyword_hits engine in
       (* a keyword counts as detected when all its chunks were seen at
          consistent offsets, i.e. some hit covers its first chunk *)
       let kw_found kw =
         match Tokenizer.keyword_chunks kw with
         | [] -> false
         | (first, _) :: _ -> List.exists (fun (c, _) -> c = first) hits
       in
       kw_truth := !kw_truth + List.length truth_kws;
       kw_detected := !kw_detected + List.length (List.filter kw_found truth_kws);
       rule_truth := !rule_truth + List.length truth_rules;
       rule_detected :=
         !rule_detected
         + List.length (List.filter (fun r -> List.memq r verdict_rules) truth_rules);
       List.iter
         (fun kw ->
            Hashtbl.replace uniq_kw_truth kw ();
            if kw_found kw then Hashtbl.replace uniq_kw_det kw ())
         truth_kws;
       List.iter
         (fun r ->
            let sid = Option.value r.Rule.sid ~default:0 in
            Hashtbl.replace uniq_rule_truth sid ();
            if List.memq r verdict_rules then Hashtbl.replace uniq_rule_det sid ())
         truth_rules;
       if flow.Trace.attack = None && verdict_rules <> [] then incr false_alarms)
    flows;
  let pct a b = 100.0 *. float_of_int a /. float_of_int (max 1 b) in
  Printf.printf "  unique keywords detected: %d / %d = %.1f%%   (paper: 97.1%%)\n"
    (Hashtbl.length uniq_kw_det) (Hashtbl.length uniq_kw_truth)
    (pct (Hashtbl.length uniq_kw_det) (Hashtbl.length uniq_kw_truth));
  Printf.printf "  unique rules detected:    %d / %d = %.1f%%   (paper: 99%%)\n"
    (Hashtbl.length uniq_rule_det) (Hashtbl.length uniq_rule_truth)
    (pct (Hashtbl.length uniq_rule_det) (Hashtbl.length uniq_rule_truth));
  Printf.printf "  per-instance: keywords %.1f%%, rules %.1f%%\n"
    (pct !kw_detected !kw_truth) (pct !rule_detected !rule_truth);
  Printf.printf "  false alarms on benign flows: %d\n" !false_alarms
