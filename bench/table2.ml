(* Table 2: connection and detection micro-benchmarks for Vanilla HTTPS,
   the functional-encryption strawman, the Song-et-al searchable strawman,
   and BlindBox HTTPS.

   Absolute numbers shift relative to the paper (software AES here,
   AES-NI + JustGarble there; see DESIGN.md §2); what must reproduce is
   the *relative* structure: BlindBox within small factors of vanilla
   HTTPS, the searchable strawman slower by the ruleset factor (linear
   scan), the FE strawman slower by orders of magnitude, and rule-setup
   time linear in the number of keywords. *)

open Bbx_crypto
open Bbx_dpienc
open Bbx_strawman
open Bbx_tokenizer

let packet_bytes = 1500
let tokens_per_packet = packet_bytes - Tokenizer.token_len + 1 (* window: 1493 *)

(* keyword population for detection trees *)
let keywords n =
  let drbg = Drbg.create "table2-keywords" in
  Array.init n (fun _ -> Drbg.bytes drbg Tokenizer.token_len)

let html_packet =
  lazy (String.sub (Bbx_net.Page.gen_html (Drbg.create "t2html") ~bytes:packet_bytes) 0 packet_bytes)

type row = {
  label : string;
  vanilla : float;  (* seconds; nan = not measured, -1 = not possible *)
  fe : float;
  song : float;
  blindbox : float;
  paper : string;   (* the paper's row for side-by-side reading *)
}

let np = -1.0

let print_row r =
  let cell v = if v = np then "NP" else Bench_util.fmt_seconds v in
  Printf.printf "%-28s %12s %12s %12s %12s   | %s\n" r.label (cell r.vanilla) (cell r.fe)
    (cell r.song) (cell r.blindbox) r.paper

let run () =
  Bench_util.section "Table 2: micro-benchmarks (vanilla / FE / searchable / BlindBox)";
  Printf.printf "%-28s %12s %12s %12s %12s   | %s\n" "" "Vanilla" "FE" "Searchable" "BlindBox"
    "paper (vanilla/FE/searchable/BlindBox)";

  (* --- client-side encryption ------------------------------------- *)
  let aes_key = Aes.expand_key (Drbg.bytes (Drbg.create "t2k") 16) in
  let block = Drbg.bytes (Drbg.create "t2b") 16 in
  let vanilla_block = Bench_util.bechamel_ns ~name:"vanilla-block" (fun () -> Aes.encrypt_block aes_key block) *. 1e-9 in

  let fe_key = Fe.key_of_secret "t2-fe" in
  let fe_drbg = Drbg.create "t2-fe-drbg" in
  let fe_token = Bench_util.time_direct ~reps:5 (fun () -> ignore (Fe.encrypt fe_key fe_drbg "tokentok")) in

  let song_key = Song.key_of_secret "t2-song" in
  let song_sender = Song.sender_create song_key in
  let song_token =
    Bench_util.bechamel_ns ~name:"song-token" (fun () -> Song.encrypt song_sender "tokentok") *. 1e-9
  in

  let dpi_key = Dpienc.key_of_secret "t2-bb" in
  let packet = Lazy.force html_packet in
  let bb_tokens = Tokenizer.window packet in
  let bb_token =
    (* amortized per token over a realistic packet, counter tables warm *)
    let sender = Dpienc.sender_create Dpienc.Exact dpi_key ~salt0:0 in
    ignore (Dpienc.sender_encrypt sender bb_tokens);
    Bench_util.time_per (fun () -> ignore (Dpienc.sender_encrypt sender bb_tokens))
    /. float_of_int (List.length bb_tokens)
  in
  print_row
    { label = "Encrypt (128 bits)"; vanilla = vanilla_block; fe = fe_token; song = song_token;
      blindbox = bb_token; paper = "13ns / 70ms / 2.7us / 69ns" };

  let writer = Bbx_tls.Record.create ~key:"t2-rec" ~direction:"d" () in
  let vanilla_packet = Bench_util.time_per (fun () -> ignore (Bbx_tls.Record.seal writer packet)) in
  let fe_packet = fe_token *. float_of_int tokens_per_packet in
  let song_packet =
    Bench_util.time_per ~min_time:0.5 (fun () ->
        List.iter (fun t -> ignore (Song.encrypt song_sender t.Tokenizer.content)) bb_tokens)
  in
  let bb_packet =
    let sender = Dpienc.sender_create Dpienc.Exact dpi_key ~salt0:0 in
    ignore (Dpienc.sender_encrypt sender bb_tokens);
    Bench_util.time_per (fun () ->
        ignore (Bbx_tls.Record.seal writer packet);
        ignore (Dpienc.sender_encrypt sender bb_tokens))
  in
  print_row
    { label = "Encrypt (1500 bytes)"; vanilla = vanilla_packet; fe = fe_packet;
      song = song_packet; blindbox = bb_packet; paper = "3us / 15s / 257us / 90us" };

  (* --- setup -------------------------------------------------------- *)
  let vanilla_setup =
    Bench_util.time_per ~min_time:0.3 (fun () ->
        let st, share = Bbx_tls.Handshake.initiate (Drbg.create "hs-c") in
        let _, share_s = Bbx_tls.Handshake.respond (Drbg.create "hs-s") ~peer_share:share in
        ignore (Bbx_tls.Handshake.complete st ~peer_share:share_s))
  in
  let chunks1 = [| "keyword1" |] in
  let setup_1kw =
    Bench_util.time_direct (fun () ->
        ignore (Blindbox.Ruleprep.prepare_unchecked ~k:"k" ~k_rand:"kr" ~chunks:chunks1 ()))
  in
  print_row
    { label = "Setup (1 keyword)"; vanilla = vanilla_setup; fe = nan; song = nan;
      blindbox = setup_1kw; paper = "73ms / - / - / 588ms" };

  (* 3k rules ~ 9-10k keywords; per-chunk cost measured on a 4-chunk batch
     then extrapolated (the real run is linear in chunks by construction) *)
  let rules3k = Bbx_rules.Datasets.generate Bbx_rules.Datasets.Emerging_threats ~n:3000 in
  let n_chunks_3k = Array.length (Bbx_mbox.Engine.distinct_chunks rules3k) in
  let chunks4 =
    let drbg = Drbg.create "t2-chunks" in
    Array.init 4 (fun _ -> Drbg.bytes drbg Tokenizer.token_len)
  in
  let setup_4 =
    Bench_util.time_direct (fun () ->
        ignore (Blindbox.Ruleprep.prepare_unchecked ~k:"k" ~k_rand:"kr" ~chunks:chunks4 ()))
  in
  let setup_3k = setup_4 /. 4.0 *. float_of_int n_chunks_3k in
  print_row
    { label = "Setup (3K rules)"; vanilla = vanilla_setup; fe = nan; song = nan;
      blindbox = setup_3k; paper = "73ms / - / - / 97s" };
  Bench_util.note "3K-rule setup extrapolated from a measured 4-circuit batch; %d distinct chunks"
    n_chunks_3k;

  (* --- middlebox detection ------------------------------------------ *)
  let kw_per_rule = 3 in
  let detect_row ~rules_label ~n_keywords ~paper =
    let kws = keywords n_keywords in
    (* FE: linear scan, one modexp per keyword *)
    let fe_rks = Array.map (fun k -> Fe.rule_key fe_key k) (Array.sub kws 0 (min 3 n_keywords)) in
    let fe_cipher = Fe.encrypt fe_key fe_drbg "misstokn" in
    let fe_test = Bench_util.time_direct ~reps:5 (fun () -> ignore (Fe.detect fe_rks fe_cipher)) in
    let fe_token = fe_test /. float_of_int (Array.length fe_rks) *. float_of_int n_keywords in
    (* Searchable: linear scan, one AES per keyword *)
    let song_tds = Array.map (fun k -> Song.trapdoor song_key k) kws in
    let song_cipher = Song.encrypt song_sender "misstokn" in
    let song_tok =
      if n_keywords <= 100 then
        Bench_util.bechamel_ns ~name:"song-detect" (fun () -> Song.detect song_tds song_cipher) *. 1e-9
      else Bench_util.time_per (fun () -> ignore (Song.detect song_tds song_cipher))
    in
    (* BlindBox: one tree lookup *)
    let dpi = Dpienc.key_of_secret "t2-bb" in
    let encs = Array.map (fun k -> Dpienc.token_enc dpi k) kws in
    let det = Bbx_detect.Detect.create ~mode:Dpienc.Exact ~salt0:0 encs in
    let miss = { Dpienc.cipher = 0x123456789a; embed = None; offset = 0 } in
    let bb_tok =
      Bench_util.bechamel_ns ~name:"bb-detect" (fun () -> Bbx_detect.Detect.process det miss)
      *. 1e-9
    in
    print_row
      { label = Printf.sprintf "Detect: %s, 1 token" rules_label; vanilla = np;
        fe = fe_token; song = song_tok; blindbox = bb_tok; paper = fst paper };
    print_row
      { label = Printf.sprintf "Detect: %s, 1 packet" rules_label; vanilla = np;
        fe = fe_token *. float_of_int tokens_per_packet;
        song = song_tok *. float_of_int tokens_per_packet;
        blindbox = bb_tok *. float_of_int tokens_per_packet; paper = snd paper }
  in
  detect_row ~rules_label:"1 rule" ~n_keywords:kw_per_rule
    ~paper:("NP / 170ms / 1.9us / 20ns", "NP / 36s / 52us / 5us");
  detect_row ~rules_label:"3K rules" ~n_keywords:9600
    ~paper:("NP / 8.3min / 5.6ms / 137ns", "NP / 5.7days / 157ms / 33us");
  Bench_util.note "FE detection extrapolated from a 3-keyword scan (linear by construction)"
