(* Table 1: fraction of rules in each dataset implementable with
   Protocols I, II and III.

   Rulesets are produced by the statistical generators (DESIGN.md §2,
   substitution 4) and the fractions are then *measured* by classifying
   every generated rule. *)

open Bbx_rules

let run () =
  Bench_util.section "Table 1: rules addressable with Protocols I / II / III";
  Printf.printf "%-34s %23s %23s\n" "" "measured (n=1000)" "paper";
  Printf.printf "%-34s %7s %7s %7s %7s %7s %7s\n" "Dataset" "I" "II" "III" "I" "II" "III";
  List.iter
    (fun ds ->
       let rules = Datasets.generate ds ~n:1000 in
       let f1, f2, f3 = Classify.fractions rules in
       let p1, p2, p3 = Datasets.paper_fractions ds in
       let pct v = Printf.sprintf "%.1f%%" (100.0 *. v) in
       Printf.printf "%-34s %7s %7s %7s %7s %7s %7s\n"
         (Datasets.name ds) (pct f1) (pct f2) (pct f3) (pct p1) (pct p2) (pct p3))
    Datasets.all;
  Bench_util.note "generators target the paper's class mix; fractions above are re-measured by the classifier"
