(* Detection-index bench: the same token streams pushed through
   BlindBox Detect with the flat open-addressing cipher index (Hash, the
   default) and the reference AVL tree, across a hit-rate sweep.

   Streams are generated against salt0 = 0 with the exact per-keyword salt
   progression the detector expects, so a hit-bearing stream can be
   replayed only against a freshly reset detector — hit configurations
   reset before every timed pass (the reset is O(keywords), noted below),
   while the miss-dominated stream leaves detection state untouched and is
   replayed in place.

   Gates (ISSUE 5 acceptance):
     - miss-dominated stream: Hash >= 2x AVL tokens/s
     - hit-heavy stream:      Hash strictly fewer GC bytes/token than AVL
   plus an event-for-event parity check per configuration (same events,
   same order, from both backends).

   Results land in BENCH_detect.json for the CI artifact. *)

open Bbx_crypto
open Bbx_dpienc
module Detect = Bbx_detect.Detect

let gate_speedup = 2.0

type config_result = {
  cr_hit_rate : float;
  cr_hits : int;
  cr_avl_tps : float;
  cr_hash_tps : float;
  cr_avl_alloc : float;   (* GC bytes/token *)
  cr_hash_alloc : float;
}

(* Deterministic stream generator: a splitmix-style LCG decides hit/miss
   and picks keywords; hit tokens carry the keyword's next-salt cipher
   (salt = occurrence count, Exact stride), misses a random 40-bit value
   (spurious index collisions are ~n/2^40 per token — both backends see
   the identical stream either way). *)
let make_wire ~tkeys ~n_tok ~hit_rate ~seed =
  let n_kw = Array.length tkeys in
  let counts = Array.make n_kw 0 in
  let state = ref (seed lor 1) in
  let rand () =
    state := ((!state * 0x2545F4914F6CDD1D) + 1442695040888963407) land max_int;
    !state lsr 17
  in
  let toks = ref [] in
  for i = 0 to n_tok - 1 do
    let hit = float_of_int (rand () land 0xffff) /. 65536.0 < hit_rate in
    let cipher =
      if hit then begin
        let j = rand () mod n_kw in
        let c = Dpienc.encrypt tkeys.(j) ~salt:counts.(j) in
        counts.(j) <- counts.(j) + 1;
        c
      end
      else rand () land ((1 lsl Dpienc.rs_bits) - 1)
    in
    toks := { Dpienc.cipher; embed = None; offset = i } :: !toks
  done;
  Dpienc.encode_tokens (List.rev !toks)

let run () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "Detection index (smoke): flat hash vs AVL"
     else "Detection index: flat open-addressing hash vs AVL tree");
  let n_kw = if smoke then 200 else 2000 in
  let n_tok = if smoke then 20_000 else 200_000 in
  let dpi = Dpienc.key_of_secret "bench-detect-k" in
  let drbg = Drbg.create "bench-detect-kws" in
  let encs =
    Array.init n_kw (fun _ ->
        Dpienc.token_enc dpi (Drbg.bytes drbg Bbx_tokenizer.Tokenizer.token_len))
  in
  let tkeys = Array.map Dpienc.token_key_of_enc encs in
  Printf.printf "  workload: %d keywords, %d-token streams, Exact mode\n%!" n_kw n_tok;

  let fresh index = Detect.create ~index ~mode:Dpienc.Exact ~salt0:0 encs in
  let det_hash = fresh Detect.Hash and det_avl = fresh Detect.Avl in

  (* Event-for-event parity: both backends must report identical
     (kw_id, offset, salt) sequences on every stream. *)
  let events det wire =
    Detect.reset det ~salt0:0;
    let acc = ref [] in
    ignore
      (Detect.process_stream det wire ~f:(fun ev ~embed_pos:_ ->
           acc := (ev.Detect.kw_id, ev.Detect.offset, ev.Detect.salt) :: !acc)
        : int);
    List.rev !acc
  in

  let run_config hit_rate =
    let wire = make_wire ~tkeys ~n_tok ~hit_rate ~seed:(0x9e3779b9 + int_of_float (hit_rate *. 1e4)) in
    let ev_hash = events det_hash wire and ev_avl = events det_avl wire in
    if ev_hash <> ev_avl then begin
      Printf.printf "  FAIL: backends disagree at hit rate %.2f (%d vs %d events)\n"
        hit_rate (List.length ev_hash) (List.length ev_avl);
      exit 1
    end;
    let hits = List.length ev_hash in
    let needs_reset = hits > 0 in
    let pass det () =
      if needs_reset then Detect.reset det ~salt0:0;
      ignore (Detect.process_stream det wire ~f:(fun _ ~embed_pos:_ -> ()) : int)
    in
    (* interleaved best-of rounds so drift cancels instead of biasing one
       backend *)
    let rounds = if smoke then 3 else 5 in
    let min_time = if smoke then 0.1 else 0.3 in
    let best_hash = ref infinity and best_avl = ref infinity in
    for round = 1 to rounds do
      let order =
        if round land 1 = 0 then [ (det_hash, best_hash); (det_avl, best_avl) ]
        else [ (det_avl, best_avl); (det_hash, best_hash) ]
      in
      List.iter
        (fun (det, best) ->
           let t = Bench_util.time_per ~min_time (pass det) in
           best := min !best t)
        order
    done;
    (* allocation per token, min of 3 (minor-GC noise does not survive a
       min); the reset outside the measured window *)
    let alloc det =
      let best = ref infinity in
      for _ = 1 to 3 do
        if needs_reset then Detect.reset det ~salt0:0;
        let a0 = Gc.allocated_bytes () in
        ignore (Detect.process_stream det wire ~f:(fun _ ~embed_pos:_ -> ()) : int);
        let a1 = Gc.allocated_bytes () in
        best := min !best ((a1 -. a0) /. float_of_int n_tok)
      done;
      !best
    in
    let avl_alloc = alloc det_avl and hash_alloc = alloc det_hash in
    let tps t = float_of_int n_tok /. t in
    let r =
      { cr_hit_rate = hit_rate;
        cr_hits = hits;
        cr_avl_tps = tps !best_avl;
        cr_hash_tps = tps !best_hash;
        cr_avl_alloc = avl_alloc;
        cr_hash_alloc = hash_alloc }
    in
    Printf.printf
      "  hit %4.0f%% (%6d hits): avl %9.0f tok/s %6.1f B/tok | hash %9.0f tok/s %6.1f B/tok | %4.2fx\n%!"
      (100.0 *. hit_rate) hits r.cr_avl_tps avl_alloc r.cr_hash_tps hash_alloc
      (r.cr_hash_tps /. r.cr_avl_tps);
    r
  in

  let results = List.map run_config [ 0.0; 0.01; 0.5 ] in
  (match results with
   | { cr_hits; _ } :: _ when cr_hits <> 0 ->
     Printf.printf "  note: miss stream unexpectedly carries hits\n"
   | _ -> ());
  Bench_util.note
    "hit configurations pay one O(keywords) detector reset per pass (outside the alloc window, inside the timed one)";

  let miss = List.nth results 0 and heavy = List.nth results 2 in
  let speedup_miss = miss.cr_hash_tps /. miss.cr_avl_tps in

  let oc = open_out "BENCH_detect.json" in
  Printf.fprintf oc
    "{\"experiment\":\"detect\",\"smoke\":%b,\"keywords\":%d,\"tokens\":%d,\"configs\":["
    smoke n_kw n_tok;
  List.iteri
    (fun i r ->
       Printf.fprintf oc
         "%s{\"hit_rate\":%.2f,\"hits\":%d,\"avl_tokens_per_sec\":%.0f,\"hash_tokens_per_sec\":%.0f,\"speedup\":%.3f,\"avl_alloc_bytes_per_token\":%.2f,\"hash_alloc_bytes_per_token\":%.2f}"
         (if i > 0 then "," else "") r.cr_hit_rate r.cr_hits r.cr_avl_tps
         r.cr_hash_tps
         (r.cr_hash_tps /. r.cr_avl_tps)
         r.cr_avl_alloc r.cr_hash_alloc)
    results;
  Printf.fprintf oc "],\"gate_speedup_miss\":%.3f,\"gate_alloc_hit_heavy\":[%.2f,%.2f]}\n"
    speedup_miss heavy.cr_hash_alloc heavy.cr_avl_alloc;
  close_out oc;
  Printf.printf "  wrote BENCH_detect.json\n";

  (* gates *)
  let failed = ref false in
  if speedup_miss < gate_speedup then begin
    Printf.printf "  FAIL: hash %.2fx AVL on the miss-dominated stream (need >= %.1fx)\n"
      speedup_miss gate_speedup;
    failed := true
  end;
  if heavy.cr_hash_alloc >= heavy.cr_avl_alloc then begin
    Printf.printf
      "  FAIL: hash allocates %.1f B/token on the hit-heavy stream, AVL %.1f (need strictly fewer)\n"
      heavy.cr_hash_alloc heavy.cr_avl_alloc;
    failed := true
  end;
  Bench_util.note
    "acceptance: hash >= %.1fx AVL tokens/s at 0%% hits; strictly fewer GC bytes/token at 50%% hits"
    gate_speedup;
  if !failed then exit 1
