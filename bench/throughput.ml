(* §7.2.3: middlebox detection throughput, BlindBox vs a Snort-like
   plaintext IDS (Aho-Corasick over the same keyword set).

   Sender-side token encryption is excluded from the middlebox timing, as
   in the paper (the middlebox receives pre-encrypted tokens).  Paper
   result: BlindBox 166 Mbps vs Snort 85 Mbps on synthetic traffic —
   i.e. detection over encrypted tokens is competitive with (there, 2x
   faster than) plaintext inspection. *)

open Bbx_crypto
open Bbx_dpienc
open Bbx_rules
open Bbx_tokenizer

let traffic_bytes = 2 * 1024 * 1024

let run () =
  Bench_util.section "Middlebox throughput: BlindBox Detect vs Snort-like baseline";
  let rules = Datasets.generate Datasets.Emerging_threats ~n:3000 in
  let keywords = Datasets.distinct_keywords rules in
  let chunks = Bbx_mbox.Engine.distinct_chunks rules in
  Printf.printf "  ruleset: 3000 rules, %d keywords, %d distinct chunks\n"
    (List.length keywords) (Array.length chunks);
  (* synthetic traffic: HTML-ish payloads in 1400-byte packets *)
  let body = Bbx_net.Page.gen_html (Drbg.create "tput") ~bytes:traffic_bytes in
  let body = String.sub body 0 traffic_bytes in
  let packets = Bbx_net.Packet.packetize ~flow:0 body in

  (* Plaintext baselines.  Two flavours:
     - raw Aho-Corasick: just the multi-pattern scan, the leanest possible
       plaintext matcher;
     - Snort-like: AC scan + per-packet flow-table lookup + full rule
       evaluation (content constraints with backtracking, pcre on rules
       whose selective keywords matched) — closer to what the paper's
       Snort actually does per packet. *)
  let kw_arr = Array.of_list keywords in
  let ac = Bbx_ac.Aho_corasick.build kw_arr in
  let ac_s =
    Bench_util.time_per ~min_time:1.0 (fun () ->
        List.iter
          (fun p -> ignore (Bbx_ac.Aho_corasick.count_matches ac p.Bbx_net.Packet.payload))
          packets)
  in
  Printf.printf "  raw Aho-Corasick scan: %s  (%s of plaintext)\n"
    (Bench_util.fmt_rate traffic_bytes ac_s) (Bench_util.fmt_seconds ac_s);
  let rules_arr = Array.of_list rules in
  let rules_of_kw = Hashtbl.create 4096 in
  Array.iteri
    (fun ri r ->
       List.iter
         (fun kw ->
            let cur = Option.value (Hashtbl.find_opt rules_of_kw kw) ~default:[] in
            Hashtbl.replace rules_of_kw kw (ri :: cur))
         (Rule.keywords r))
    rules_arr;
  let compiled_pcre =
    Array.map
      (fun r ->
         match r.Rule.pcre with
         | Some p -> Some (Bbx_regex.Regex.parse_pcre p)
         | None -> None)
      rules_arr
  in
  let flow_table = Hashtbl.create 64 in
  let snort_s =
    Bench_util.time_per ~min_time:1.0 (fun () ->
        List.iter
          (fun p ->
             let payload = p.Bbx_net.Packet.payload in
             Hashtbl.replace flow_table p.Bbx_net.Packet.flow p.Bbx_net.Packet.seq;
             let matches = Bbx_ac.Aho_corasick.search ac payload in
             (* group match positions per keyword, then evaluate every rule
                one of whose keywords matched *)
             let by_kw = Hashtbl.create 16 in
             let touched = ref [] in
             List.iter
               (fun (pi, end_off) ->
                  let kw = kw_arr.(pi) in
                  let start = end_off - String.length kw in
                  let cur = Option.value (Hashtbl.find_opt by_kw kw) ~default:[] in
                  if cur = [] then
                    touched := List.rev_append (Hashtbl.find rules_of_kw kw) !touched;
                  Hashtbl.replace by_kw kw (start :: cur))
               matches;
             List.iter
               (fun ri ->
                  let r = rules_arr.(ri) in
                  let candidates (c : Rule.content) =
                    Option.value (Hashtbl.find_opt by_kw c.Rule.pattern) ~default:[]
                  in
                  if Classify.contents_satisfiable ~candidates r.Rule.contents then begin
                    match compiled_pcre.(ri) with
                    | Some re -> ignore (Bbx_regex.Regex.matches re payload)
                    | None -> ()
                  end)
               (List.sort_uniq compare !touched))
          packets)
  in
  Printf.printf "  Snort-like (AC + rule eval + pcre): %s  (%s)\n"
    (Bench_util.fmt_rate traffic_bytes snort_s) (Bench_util.fmt_seconds snort_s);

  (* BlindBox: pre-encrypt the token stream, then time detection only *)
  let dpi_key = Dpienc.key_of_secret "tput-k" in
  let sender = Dpienc.sender_create Dpienc.Exact dpi_key ~salt0:0 in
  let enc_packets =
    List.map
      (fun p -> Dpienc.sender_encrypt sender (Tokenizer.delimiter p.Bbx_net.Packet.payload))
      packets
  in
  let n_tokens = List.fold_left (fun acc l -> acc + List.length l) 0 enc_packets in
  let encs = Array.map (Dpienc.token_enc dpi_key) chunks in
  let detect = Bbx_detect.Detect.create ~mode:Dpienc.Exact ~salt0:0 encs in
  let bb_s =
    Bench_util.time_per ~min_time:1.0 (fun () ->
        List.iter (fun toks -> ignore (Bbx_detect.Detect.process_batch detect toks)) enc_packets)
  in
  Printf.printf "  BlindBox Detect:      %s  (%s for %d tokens; %.0f ns/token)\n"
    (Bench_util.fmt_rate traffic_bytes bb_s) (Bench_util.fmt_seconds bb_s) n_tokens
    (bb_s /. float_of_int n_tokens *. 1e9);
  (* Streaming variant: the middlebox consumes the wire encoding directly
     (decode + detect fused), which is what it actually receives. *)
  let wire_packets = List.map Dpienc.encode_tokens enc_packets in
  let detect_w = Bbx_detect.Detect.create ~mode:Dpienc.Exact ~salt0:0 encs in
  let bbw_s =
    Bench_util.time_per ~min_time:1.0 (fun () ->
        List.iter
          (fun wire ->
             ignore
               (Bbx_detect.Detect.process_stream detect_w wire
                  ~f:(fun _ ~embed_pos:_ -> ()) : int))
          wire_packets)
  in
  Printf.printf "  BlindBox Detect (wire, decode fused): %s  (%s)\n"
    (Bench_util.fmt_rate traffic_bytes bbw_s) (Bench_util.fmt_seconds bbw_s);
  Printf.printf "  paper: BlindBox 166 Mbps (186 per core peak) vs stock Snort 85 Mbps\n";
  Bench_util.note
    "the paper's headline claim reproduces in absolute terms: BlindBox inspects encrypted \
     traffic at ~100 Mbps/core, competitive with deployed IDS rates (<100 Mbps)";
  Bench_util.note
    "the 2x-over-Snort ordering does not hold against this lean baseline: our plaintext \
     comparator is a bare Aho-Corasick walk, while stock Snort's 85 Mbps includes its full \
     packet pipeline (the paper itself attributes its win to DPDK-Click vs Snort's I/O)";
  Bench_util.note
    "window tokenization would emit %.1fx more tokens and scale throughput down accordingly"
    (float_of_int (Tokenizer.window_count body)
     /. float_of_int (Tokenizer.delimiter_count body))
