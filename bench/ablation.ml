(* Ablations for the design choices DESIGN.md calls out:

   1. BlindBox Detect's tree lookup vs a linear scan over the same DPIEnc
      ciphertexts (the log-vs-linear argument of §3.2 in isolation);
   2. DPIEnc + counter salts vs plain deterministic AES + hash table — the
      paper's claim that the randomized scheme costs ~nothing over the
      insecure deterministic one;
   3. window vs delimiter tokenization: token volume vs keyword recall;
   4. IKNP OT extension vs running one public-key base OT per label. *)

open Bbx_crypto
open Bbx_dpienc
open Bbx_tokenizer

let run () =
  Bench_util.section "Ablation 1: tree lookup vs linear scan (per miss token)";
  let dpi = Dpienc.key_of_secret "abl-k" in
  let drbg = Drbg.create "abl-kws" in
  Printf.printf "  %-10s %14s %14s %10s\n" "#keywords" "AVL tree" "linear scan" "tree height";
  List.iter
    (fun n ->
       let kws = Array.init n (fun _ -> Drbg.bytes drbg 8) in
       let encs = Array.map (Dpienc.token_enc dpi) kws in
       let det = Bbx_detect.Detect.create ~index:Bbx_detect.Detect.Avl ~mode:Dpienc.Exact ~salt0:0 encs in
       let miss = { Dpienc.cipher = 0x9999999999; embed = None; offset = 0 } in
       let tree_ns = Bench_util.bechamel_ns ~name:"tree" (fun () -> Bbx_detect.Detect.process det miss) in
       (* linear scan over the same precomputed per-keyword ciphertexts *)
       let current = Array.map (fun enc -> Dpienc.encrypt (Dpienc.token_key_of_enc enc) ~salt:0) encs in
       let scan_ns =
         Bench_util.bechamel_ns ~name:"scan" (fun () ->
             let hit = ref false in
             for i = 0 to n - 1 do
               if current.(i) = miss.Dpienc.cipher then hit := true
             done;
             !hit)
       in
       Printf.printf "  %-10d %11.0f ns %11.0f ns %10d\n" n tree_ns scan_ns
         (Bbx_detect.Detect.tree_height det))
    [ 10; 100; 1000; 10_000 ];
  Bench_util.note "the searchable strawman additionally pays one AES per keyword per token on the scan";

  Bench_util.section "Ablation 2: DPIEnc detection vs deterministic encryption (security off)";
  (* The paper's claim (§3): DPIEnc + BlindBox Detect achieve "the
     detection speed of deterministic encryption and the security of
     randomized encryption".  Deterministic detection is one hashtable
     probe of the static ciphertext; DPIEnc detection is one tree probe
     plus counter maintenance on matches. *)
  let n_kw = 10_000 in
  let kws2 = Array.init n_kw (fun _ -> Drbg.bytes drbg 8) in
  let encs2 = Array.map (Dpienc.token_enc dpi) kws2 in
  let det2 = Bbx_detect.Detect.create ~index:Bbx_detect.Detect.Avl ~mode:Dpienc.Exact ~salt0:0 encs2 in
  let miss2 = { Dpienc.cipher = 0x7777777777; embed = None; offset = 0 } in
  let dpienc_ns = Bench_util.bechamel_ns ~name:"dpienc" (fun () -> Bbx_detect.Detect.process det2 miss2) in
  let table = Hashtbl.create n_kw in
  Array.iteri
    (fun i enc -> Hashtbl.replace table (Dpienc.encrypt (Dpienc.token_key_of_enc enc) ~salt:0) i)
    encs2;
  let det_ns =
    Bench_util.bechamel_ns ~name:"determ" (fun () -> Hashtbl.find_opt table miss2.Dpienc.cipher)
  in
  Printf.printf "  detection per token over %d keywords: DPIEnc+tree %.0f ns vs deterministic+hashtable %.0f ns (%.1fx)\n"
    n_kw dpienc_ns det_ns (dpienc_ns /. det_ns);
  (* sender side: the randomized salts cost one extra AES per occurrence *)
  let packet = Bbx_net.Page.gen_html (Drbg.create "abl-html") ~bytes:1500 in
  let toks = Tokenizer.delimiter packet in
  let dpienc_s =
    let sender = Dpienc.sender_create Dpienc.Exact dpi ~salt0:0 in
    ignore (Dpienc.sender_encrypt sender toks);
    Bench_util.time_per (fun () -> ignore (Dpienc.sender_encrypt sender toks))
  in
  let det_s =
    let cache = Hashtbl.create 512 in
    Bench_util.time_per (fun () ->
        Hashtbl.reset cache;
        List.iter
          (fun t ->
             match Hashtbl.find_opt cache t.Tokenizer.content with
             | Some _ -> ()
             | None -> Hashtbl.add cache t.Tokenizer.content (Dpienc.token_enc dpi t.Tokenizer.content))
          toks)
  in
  Printf.printf "  sender per 1500-byte packet: DPIEnc %s vs deterministic %s (%.1fx)\n"
    (Bench_util.fmt_seconds dpienc_s) (Bench_util.fmt_seconds det_s) (dpienc_s /. det_s);
  Bench_util.note "deterministic encryption leaks token frequencies (forbidden by the threat model)";

  Bench_util.section "Ablation 3: window vs delimiter tokenization";
  let text = Bbx_net.Page.gen_html (Drbg.create "abl-t") ~bytes:(64 * 1024) in
  Printf.printf "  tokens per text byte: window %.2f, delimiter %.2f\n"
    (float_of_int (Tokenizer.window_count text) /. float_of_int (String.length text))
    (float_of_int (Tokenizer.delimiter_count text) /. float_of_int (String.length text));
  (* recall on keywords planted mid-word vs on boundaries *)
  let covered tokenize payload kw =
    let toks = tokenize payload in
    List.for_all
      (fun (c, rel) ->
         let base = 5 (* "q=az " prefix below *) in
         List.exists (fun t -> t.Tokenizer.content = c && t.Tokenizer.offset = base + rel) toks)
      (Tokenizer.keyword_chunks kw)
  in
  let kw = "evilpayloadkw" in
  let aligned = "q=az " ^ kw ^ " tail" in
  Printf.printf "  boundary-aligned keyword: window %b, delimiter %b\n"
    (covered Tokenizer.window aligned kw) (covered Tokenizer.delimiter aligned kw);
  let covered_anywhere tokenize payload kw =
    let toks = tokenize payload in
    List.exists
      (fun t ->
         match Tokenizer.keyword_chunks kw with
         | (first, _) :: _ -> t.Tokenizer.content = first
         | [] -> false)
      toks
  in
  let glued = "q=azq" ^ kw ^ "zq x" in
  Printf.printf "  mid-word keyword:         window %b, delimiter %b\n"
    (covered_anywhere Tokenizer.window glued kw) (covered_anywhere Tokenizer.delimiter glued kw);

  Bench_util.section "Ablation 4: garbling scheme — half-gates vs classic 4-row";
  let aes_c = Bbx_circuit.Aes_circuit.build () in
  let time_garble scheme =
    Bench_util.time_direct (fun () ->
        ignore (Bbx_garble.Garble.garble ~scheme (Drbg.create "abl-g") aes_c))
  in
  let size scheme =
    Bbx_garble.Garble.size_bytes (fst (Bbx_garble.Garble.garble ~scheme (Drbg.create "abl-g") aes_c))
  in
  let eval_time scheme =
    let g, sec = Bbx_garble.Garble.garble ~scheme (Drbg.create "abl-g") aes_c in
    let labels = Bbx_garble.Garble.encode_inputs sec (Array.make 256 false) in
    Bench_util.time_direct (fun () -> ignore (Bbx_garble.Garble.eval aes_c g labels))
  in
  Printf.printf "  %-12s %12s %12s %12s\n" "scheme" "garble" "eval" "size";
  List.iter
    (fun (name, scheme) ->
       Printf.printf "  %-12s %12s %12s %12s\n" name
         (Bench_util.fmt_seconds (time_garble scheme))
         (Bench_util.fmt_seconds (eval_time scheme))
         (Bench_util.fmt_bytes (size scheme)))
    [ ("classic", Bbx_garble.Garble.Classic); ("half-gates", Bbx_garble.Garble.Half_gates) ];
  Bench_util.note "half-gates (the default) halves circuit bytes and evaluator hashes per AND gate";

  Bench_util.section "Ablation 5: IKNP extension vs per-label base OT (64 labels)";
  let open Bbx_ot in
  let n = 64 in
  let messages = Array.init n (fun i -> (Printf.sprintf "label-zero-%04d!" i, Printf.sprintf "label-one--%04d!" i)) in
  let choices = Array.init n (fun i -> i land 1 = 0) in
  let ext_s =
    Bench_util.time_direct (fun () ->
        ignore
          (Extension.run ~sender_drbg:(Drbg.create "abl-es") ~receiver_drbg:(Drbg.create "abl-er")
             ~messages ~choices))
  in
  let base_s =
    Bench_util.time_direct (fun () ->
        let sd = Drbg.create "abl-bs" and rd = Drbg.create "abl-br" in
        let params = Base.setup sd in
        Array.iteri
          (fun i b ->
             let st, pk0 = Base.receiver_choose rd params b in
             let m0, m1 = messages.(i) in
             let resp = Base.sender_respond sd params ~pk0 ~m0 ~m1 in
             ignore (Base.receiver_recover st resp))
          choices)
  in
  Printf.printf "  base OT x64: %s;  IKNP (incl. 128 base OTs): %s\n"
    (Bench_util.fmt_seconds base_s) (Bench_util.fmt_seconds ext_s);
  Bench_util.note "extension amortises: past ~128 transfers it beats per-label base OT and scales with symmetric crypto only"
