(* Observability-overhead gate: the streaming pipeline (tokenize ->
   DPIEnc -> wire -> decode -> detect) timed with instrumentation enabled
   vs disabled.  bbx_obs promises a near-zero hot path (one flag load and
   branch per bump); this experiment enforces it — enabling metrics may
   cost at most [max_overhead] of throughput, or the bench exits 1.
   Observability that taxes the hot path is caught by the harness, not by
   a reviewer.

   Timing uses interleaved rounds and takes the best (minimum) time per
   configuration, so one background hiccup cannot fail the gate; a
   measurement that still lands over budget is re-taken up to
   [max_attempts] times before failing, since a genuine instrumentation
   regression is systematic and fails every attempt while scheduler
   noise does not survive a repeat. *)

open Bbx_crypto
open Bbx_dpienc
open Bbx_rules

module Obs = Bbx_obs.Obs
module Trace = Bbx_obs.Trace

let packet_bytes = 1500
let max_overhead = 0.05

let run () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "Observability overhead (smoke)" else "Observability overhead: obs on vs off");
  let packet =
    let html = Bbx_net.Page.gen_html (Drbg.create "obs-overhead") ~bytes:(2 * packet_bytes) in
    String.sub html 0 packet_bytes
  in
  let n_rules = if smoke then 50 else 1000 in
  let rules = Datasets.generate Datasets.Emerging_threats ~n:n_rules in
  let chunks = Bbx_mbox.Engine.distinct_chunks rules in
  let dpi_key = Dpienc.key_of_secret "obs-overhead-k" in
  let encs = Array.map (Dpienc.token_enc dpi_key) chunks in
  let tokens = Bbx_tokenizer.Tokenizer.window_count packet in
  Printf.printf "  workload: %d-byte packet, window tokenization (%d tokens), %d chunks\n"
    packet_bytes tokens (Array.length chunks);

  let sender = Dpienc.sender_create Dpienc.Exact dpi_key ~salt0:0 in
  let detect = Bbx_detect.Detect.create ~mode:Dpienc.Exact ~salt0:0 encs in
  let buf = Buffer.create (Dpienc.exact_record_bytes * tokens) in
  let one_pass () =
    Buffer.clear buf;
    ignore (Dpienc.sender_encrypt_into sender ~tokenization:Dpienc.Window packet buf : int);
    ignore
      (Bbx_detect.Detect.process_stream detect (Buffer.contents buf)
         ~f:(fun _ ~embed_pos:_ -> ()) : int)
  in

  let was_enabled = Obs.enabled () in
  let timed enabled min_time =
    Obs.set_enabled enabled;
    let t = Bench_util.time_per ~min_time one_pass in
    Obs.set_enabled was_enabled;
    t
  in
  (* interleaved rounds, best-of per configuration; the order within a
     round alternates so clock/cache drift cancels instead of biasing one
     configuration *)
  let rounds = if smoke then 4 else 6 in
  let min_time = if smoke then 0.15 else 0.5 in
  let measure () =
    let best_off = ref infinity and best_on = ref infinity in
    for round = 1 to rounds do
      let on_first = round land 1 = 0 in
      let a = timed on_first min_time in
      let b = timed (not on_first) min_time in
      let t_on, t_off = if on_first then (a, b) else (b, a) in
      best_on := min !best_on t_on;
      best_off := min !best_off t_off
    done;
    (!best_on, !best_off)
  in
  let tps s = float_of_int tokens /. s in
  let max_attempts = 3 in
  let rec attempt n =
    let best_on, best_off = measure () in
    let overhead = (best_on -. best_off) /. best_off in
    Printf.printf "  obs off: %8.0f tokens/s  (%s/packet)\n" (tps best_off)
      (Bench_util.fmt_seconds best_off);
    Printf.printf "  obs on:  %8.0f tokens/s  (%s/packet)\n" (tps best_on)
      (Bench_util.fmt_seconds best_on);
    Printf.printf "  overhead: %+.2f%% throughput\n" (100.0 *. overhead);
    if overhead > max_overhead && n < max_attempts then begin
      Printf.printf "  over budget; re-measuring (attempt %d/%d)\n" (n + 1) max_attempts;
      attempt (n + 1)
    end
    else overhead
  in
  (* one untimed pass with instrumentation on, so first-touch effects
     (code paths, caches) never land inside a timed window *)
  Obs.set_enabled true;
  one_pass ();
  Obs.set_enabled was_enabled;
  let overhead = attempt 1 in
  Bench_util.note "acceptance: instrumentation may cost at most %.0f%% throughput"
    (100.0 *. max_overhead);
  if overhead > max_overhead then begin
    Printf.printf "  FAIL: observability overhead exceeds the %.0f%% budget\n"
      (100.0 *. max_overhead);
    exit 1
  end

(* ---------- flight-recorder overhead ---------- *)

(* Same contract, for Obs.Trace: disabled [Trace.record] must stay a
   load-and-branch (in particular it must NOT read the clock), and
   enabling tracing through the full daemon (loadgen over a real socket,
   every pipeline stage recording events) may cost at most
   [max_overhead] of end-to-end throughput. *)

module Daemon = Bbx_daemon.Daemon
module Loadgen = Bbx_daemon.Loadgen

let run_trace () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "Trace overhead (smoke)"
     else "Trace overhead: flight recorder on vs off through blindboxd");

  (* 1. micro gate: a disabled record is a branch, not a clock read.
     The threshold is relative to an actual clock read on this host, so
     the gate is robust to slow CI hardware: if [record] accidentally
     grew a [gettimeofday], the ratio lands near 1 and fails. *)
  let ph = Trace.phase "bench_micro" in
  let was_trace = Trace.enabled () in
  Trace.set_enabled false;
  let disabled_ns =
    Bench_util.bechamel_ns ~name:"trace-record-disabled" (fun () ->
        Trace.record ph ~id:0 ~conn:0 ~start_ns:0 ~dur_ns:0)
  in
  let clock_ns =
    Bench_util.bechamel_ns ~name:"trace-now-ns" (fun () ->
        ignore (Trace.now_ns () : int))
  in
  Trace.set_enabled was_trace;
  Printf.printf "  disabled Trace.record: %5.1f ns/call   (clock read: %5.1f ns)\n"
    disabled_ns clock_ns;
  let micro_ok = disabled_ns <= 5.0 || disabled_ns < 0.5 *. clock_ns in
  if not micro_ok then begin
    Printf.printf
      "  FAIL: disabled Trace.record costs %.1f ns (budget: 5 ns or half a clock read)\n"
      disabled_ns;
    exit 1
  end;

  (* 2. end-to-end: one in-process daemon on a temp Unix socket, driven
     closed-loop by the loadgen; the trace switch flips between runs so
     both configurations hit the same daemon, same rules, same engine
     state.  Best-of interleaved rounds, re-measured on a miss, exactly
     like the Obs gate above. *)
  let rules = Datasets.generate Datasets.Emerging_threats ~n:50 in
  let endpoint =
    Daemon.Unix_path
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "bbxd-trace-%d.sock" (Unix.getpid ())))
  in
  let cores = Domain.recommended_domain_count () in
  let domains = if cores >= 4 then 2 else 1 in
  (* closed-loop socket ping-pong on a single core is pure scheduler
     rhythm — loadgen, select front and shard worker time-slice one CPU
     and a nanosecond-scale perturbation can shift the batching pattern
     by double digits either way.  The throughput gate therefore needs
     real parallelism, like the daemon bench's scaling gate (the
     standing CI caveat, see ROADMAP.md); the micro gate above is the
     regression catcher that runs everywhere. *)
  let gate_enforced = cores >= 2 in
  let conns = 2 in
  let sends = if smoke then 100 else 300 in
  Printf.printf "  workload: %d conns x %d frames of 1024 bytes, %d rules, %d pool domain(s)\n%!"
    conns sends (List.length rules) domains;
  let handle = Daemon.start (Daemon.config ~domains ~endpoint ~rules ()) in
  let best_on, best_off, overhead, attempts =
    Fun.protect
      ~finally:(fun () ->
        Daemon.stop handle;
        Trace.set_enabled was_trace)
    @@ fun () ->
    let one enabled =
      Trace.set_enabled enabled;
      let r =
        Loadgen.run
          (Loadgen.cfg ~conns ~sends ~payload_bytes:1024 ~hit_rate:0.02
             ~seed:"trace-overhead" endpoint)
      in
      Trace.set_enabled was_trace;
      r.Loadgen.rp_tokens_per_s
    in
    (* untimed warm pass with tracing on: rings allocated, code paths hot *)
    ignore (one true : float);
    let rounds = if smoke then 3 else 5 in
    let measure () =
      let best_off = ref 0.0 and best_on = ref 0.0 in
      for round = 1 to rounds do
        let on_first = round land 1 = 0 in
        let a = one on_first in
        let b = one (not on_first) in
        let t_on, t_off = if on_first then (a, b) else (b, a) in
        best_on := Float.max !best_on t_on;
        best_off := Float.max !best_off t_off
      done;
      (!best_on, !best_off)
    in
    let max_attempts = 3 in
    let rec attempt n =
      let best_on, best_off = measure () in
      let overhead = (best_off -. best_on) /. best_off in
      Printf.printf "  trace off: %9.0f tokens/s\n" best_off;
      Printf.printf "  trace on:  %9.0f tokens/s\n" best_on;
      Printf.printf "  overhead: %+.2f%% throughput\n" (100.0 *. overhead);
      if gate_enforced && overhead > max_overhead && n < max_attempts then begin
        Printf.printf "  over budget; re-measuring (attempt %d/%d)\n" (n + 1)
          max_attempts;
        attempt (n + 1)
      end
      else (best_on, best_off, overhead, n)
    in
    attempt 1
  in
  let oc = open_out "BENCH_trace.json" in
  Printf.fprintf oc
    "{\"experiment\":\"trace-overhead\",\"smoke\":%b,\"cores\":%d,\"gate_enforced\":%b,\"record_disabled_ns\":%.2f,\"clock_ns\":%.2f,\"tokens_per_s_off\":%.0f,\"tokens_per_s_on\":%.0f,\"overhead\":%.4f,\"attempts\":%d,\"max_overhead\":%.2f}\n"
    smoke cores gate_enforced disabled_ns clock_ns best_off best_on overhead attempts
    max_overhead;
  close_out oc;
  Printf.printf "  wrote BENCH_trace.json\n";
  Bench_util.note "acceptance: tracing may cost at most %.0f%% end-to-end throughput"
    (100.0 *. max_overhead);
  if not gate_enforced then
    Bench_util.note
      "%d core(s): end-to-end trace gate skipped (needs >= 2; micro gate enforced)"
      cores
  else if overhead > max_overhead then begin
    Printf.printf "  FAIL: trace overhead exceeds the %.0f%% budget\n"
      (100.0 *. max_overhead);
    exit 1
  end
