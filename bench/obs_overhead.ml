(* Observability-overhead gate: the streaming pipeline (tokenize ->
   DPIEnc -> wire -> decode -> detect) timed with instrumentation enabled
   vs disabled.  bbx_obs promises a near-zero hot path (one flag load and
   branch per bump); this experiment enforces it — enabling metrics may
   cost at most [max_overhead] of throughput, or the bench exits 1.
   Observability that taxes the hot path is caught by the harness, not by
   a reviewer.

   Timing uses interleaved rounds and takes the best (minimum) time per
   configuration, so one background hiccup cannot fail the gate; a
   measurement that still lands over budget is re-taken up to
   [max_attempts] times before failing, since a genuine instrumentation
   regression is systematic and fails every attempt while scheduler
   noise does not survive a repeat. *)

open Bbx_crypto
open Bbx_dpienc
open Bbx_rules

module Obs = Bbx_obs.Obs

let packet_bytes = 1500
let max_overhead = 0.05

let run () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "Observability overhead (smoke)" else "Observability overhead: obs on vs off");
  let packet =
    let html = Bbx_net.Page.gen_html (Drbg.create "obs-overhead") ~bytes:(2 * packet_bytes) in
    String.sub html 0 packet_bytes
  in
  let n_rules = if smoke then 50 else 1000 in
  let rules = Datasets.generate Datasets.Emerging_threats ~n:n_rules in
  let chunks = Bbx_mbox.Engine.distinct_chunks rules in
  let dpi_key = Dpienc.key_of_secret "obs-overhead-k" in
  let encs = Array.map (Dpienc.token_enc dpi_key) chunks in
  let tokens = Bbx_tokenizer.Tokenizer.window_count packet in
  Printf.printf "  workload: %d-byte packet, window tokenization (%d tokens), %d chunks\n"
    packet_bytes tokens (Array.length chunks);

  let sender = Dpienc.sender_create Dpienc.Exact dpi_key ~salt0:0 in
  let detect = Bbx_detect.Detect.create ~mode:Dpienc.Exact ~salt0:0 encs in
  let buf = Buffer.create (Dpienc.exact_record_bytes * tokens) in
  let one_pass () =
    Buffer.clear buf;
    ignore (Dpienc.sender_encrypt_into sender ~tokenization:Dpienc.Window packet buf : int);
    ignore
      (Bbx_detect.Detect.process_stream detect (Buffer.contents buf)
         ~f:(fun _ ~embed_pos:_ -> ()) : int)
  in

  let was_enabled = Obs.enabled () in
  let timed enabled min_time =
    Obs.set_enabled enabled;
    let t = Bench_util.time_per ~min_time one_pass in
    Obs.set_enabled was_enabled;
    t
  in
  (* interleaved rounds, best-of per configuration; the order within a
     round alternates so clock/cache drift cancels instead of biasing one
     configuration *)
  let rounds = if smoke then 4 else 6 in
  let min_time = if smoke then 0.15 else 0.5 in
  let measure () =
    let best_off = ref infinity and best_on = ref infinity in
    for round = 1 to rounds do
      let on_first = round land 1 = 0 in
      let a = timed on_first min_time in
      let b = timed (not on_first) min_time in
      let t_on, t_off = if on_first then (a, b) else (b, a) in
      best_on := min !best_on t_on;
      best_off := min !best_off t_off
    done;
    (!best_on, !best_off)
  in
  let tps s = float_of_int tokens /. s in
  let max_attempts = 3 in
  let rec attempt n =
    let best_on, best_off = measure () in
    let overhead = (best_on -. best_off) /. best_off in
    Printf.printf "  obs off: %8.0f tokens/s  (%s/packet)\n" (tps best_off)
      (Bench_util.fmt_seconds best_off);
    Printf.printf "  obs on:  %8.0f tokens/s  (%s/packet)\n" (tps best_on)
      (Bench_util.fmt_seconds best_on);
    Printf.printf "  overhead: %+.2f%% throughput\n" (100.0 *. overhead);
    if overhead > max_overhead && n < max_attempts then begin
      Printf.printf "  over budget; re-measuring (attempt %d/%d)\n" (n + 1) max_attempts;
      attempt (n + 1)
    end
    else overhead
  in
  (* one untimed pass with instrumentation on, so first-touch effects
     (code paths, caches) never land inside a timed window *)
  Obs.set_enabled true;
  one_pass ();
  Obs.set_enabled was_enabled;
  let overhead = attempt 1 in
  Bench_util.note "acceptance: instrumentation may cost at most %.0f%% throughput"
    (100.0 *. max_overhead);
  if overhead > max_overhead then begin
    Printf.printf "  FAIL: observability overhead exceeds the %.0f%% budget\n"
      (100.0 *. max_overhead);
    exit 1
  end
