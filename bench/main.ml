(* BlindBox benchmark harness: regenerates every table and figure of the
   paper's evaluation (§7).  See DESIGN.md §3 for the experiment index and
   EXPERIMENTS.md for recorded paper-vs-measured results.

   Usage: dune exec bench/main.exe [experiment ...] [--smoke] [--metrics FILE]
   Experiments: table1 table2 fig3 fig4 fig5 fig6 accuracy tiered throughput
                setup ablation detect pipeline obs-overhead trace-overhead
                aes parallel fleet setup-parallel daemon all (default: all)

   After the requested experiments run, the full bbx_obs metric registry is
   written to BENCH_obs.json (override with --metrics FILE) so every bench
   run leaves a machine-readable snapshot of where tokens, bytes and time
   went — the perf trajectory is self-recording. *)

let experiments =
  [ ("table1", "Table 1: protocol coverage per ruleset", Table1.run);
    ("table2", "Table 2: encryption/setup/detection micro-benchmarks", Table2.run);
    ("fig3", "Fig 3: page load times at broadband (20 Mbps x 10 ms)", Figs.run_fig3);
    ("fig4", "Fig 4: page load times at 1 Gbps x 10 ms", Figs.run_fig4);
    ("fig5", "Fig 5: bandwidth overhead across the top-50 corpus", Figs.run_fig5);
    ("fig6", "Fig 6: CDF of transmitted-byte ratios (vs plaintext and gzip)", Figs.run_fig6);
    ("accuracy", "Sec 7.1: detection accuracy vs Snort on an ICTF-like trace", Accuracy.run);
    ("tiered", "Tiered engine: verdict parity vs the plaintext oracle at tiers 1/2/3", Tiered.run);
    ("throughput", "Sec 7.2.3: middlebox throughput, BlindBox vs Snort-like baseline", Throughput.run);
    ("setup", "Sec 7.2.2: connection setup scaling with ruleset size", Setup_bench.run);
    ("ablation", "Ablations: tree vs scan, DPIEnc vs deterministic, tokenizers, OT", Ablation.run);
    ("detect", "Detection index: flat open-addressing hash vs AVL tree (2x miss gate)", Detect.run);
    ("aes", "AES kernel: scalar vs bitsliced, wire equality + 2x sender gate", Aes.run);
    ("pipeline", "Token pipeline: legacy list path vs streaming path", Pipeline.run);
    ("obs-overhead", "Observability: instrumented vs uninstrumented hot path (<=5% gate)", Obs_overhead.run);
    ("trace-overhead", "Flight recorder: tracing on vs off through blindboxd (<=5% gate)", Obs_overhead.run_trace);
    ("parallel", "Middlebox scaling across OCaml domains (Shardpool at 1/2/4 workers)", Parallel.run);
    ("fleet", "Fleet-scale state: shared rule prep, bytes/conn, migration under load", Fleet.run);
    ("setup-parallel", "Rule-setup scaling across OCaml domains (Ruleprep at 1/2/4 workers)", Setup_parallel.run);
    ("daemon", "blindboxd end to end: loadgen over Unix sockets at 1/2/4/8 connections", Daemon_bench.run);
  ]

let () =
  (* flags like --smoke are read by the experiments themselves;
     --metrics takes a value, which must not be mistaken for a name *)
  let rec parse names metrics = function
    | [] -> (List.rev names, metrics)
    | "--metrics" :: path :: rest -> parse names (Some path) rest
    | a :: rest when String.length a > 0 && a.[0] = '-' -> parse names metrics rest
    | a :: rest -> parse (a :: names) metrics rest
  in
  let args, metrics_path = parse [] None (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match args with
    | [] | [ "all" ] -> List.map (fun (n, _, _) -> n) experiments
    | args -> args
  in
  List.iter
    (fun name ->
       match List.find_opt (fun (n, _, _) -> n = name) experiments with
       | Some (_, descr, run) ->
         Printf.printf "\n>>> %s\n%!" descr;
         let t0 = Unix.gettimeofday () in
         run ();
         Printf.printf "    [%s done in %.1f s]\n%!" name (Unix.gettimeofday () -. t0)
       | None ->
         Printf.eprintf "unknown experiment %S; available: %s all\n" name
           (String.concat " " (List.map (fun (n, _, _) -> n) experiments));
         exit 2)
    requested;
  let path = Option.value metrics_path ~default:"BENCH_obs.json" in
  Bbx_obs.Obs.save ~path;
  Printf.printf "\nmetric snapshot written to %s\n%!" path
