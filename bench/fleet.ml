(* Fleet-scale connection state: one tenant, many connections.

   Measures what the shared-rule-preparation refactor is for:

   - {b setup}: [Session.Fleet.establish] must run rule preparation
     exactly once regardless of connection count — pinned by the
     [bbx_session_rule_prep] span count (enforced gate at every size);
   - {b footprint}: resident bytes per connection, measured two ways —
     a GC live-words delta around [establish] (whole-process truth:
     sender state + shard state + table overhead) and the middlebox's
     own accounting ([Fleet.conn_bytes], the [bbx_conn_bytes] gauge).
     The GC number gates at <= 64 KiB/conn (enforced, exit 1);
   - {b steady state}: tokens/s over a sampled subset of connections
     once the fleet is up (floor gate skipped with a note on a 1-core
     host, like every throughput gate in this suite);
   - {b migration}: a live connection is migrated across shards and the
     fleet rebalanced mid-run — verdict accounting must not change
     (stats are invariant under migration).

   Sizes: 1k connections in --smoke (the CI gate), 1k/10k/100k in full
   mode.  Results land in BENCH_fleet.json for the CI artifact. *)

open Bbx_crypto
open Bbx_rules
module Session = Blindbox.Session

let bytes_per_conn_gate = 64 * 1024
let tokens_per_sec_floor = 50_000.0
let packet_bytes = 1500
let sample_min = 256
let wires_per_sample = 8

let cfg =
  { Session.default_config with Session.rule_prep = Session.Direct }

let obs_rule_prep = Bbx_obs.Obs.span "bbx_session_rule_prep"

type size_result = {
  sr_conns : int;
  sr_establish_s : float;
  sr_prep_spans : int;            (* rule preparations during establish *)
  sr_bytes_per_conn : int;        (* GC live delta / conns *)
  sr_accounted_per_conn : int;    (* Fleet.conn_bytes / conns *)
  sr_tokens : int;
  sr_steady_s : float;
  sr_tokens_per_sec : float;
}

let live_bytes () =
  Gc.full_major ();
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words * (Sys.word_size / 8)

(* One fleet size: establish, weigh, drive a sampled steady state, then
   migrate + rebalance under load. *)
let run_size ~rules ~conns =
  let drbg = Drbg.create (Printf.sprintf "bench-fleet-%d" conns) in
  let payloads =
    Array.init wires_per_sample (fun _ ->
        String.sub (Bbx_net.Page.gen_html drbg ~bytes:(2 * packet_bytes)) 0 packet_bytes)
  in
  let base = live_bytes () in
  let spans0 = Bbx_obs.Obs.span_count obs_rule_prep in
  let t0 = Unix.gettimeofday () in
  let fleet = Session.Fleet.establish ~config:cfg ~domains:2 ~conns ~rules () in
  let establish_s = Unix.gettimeofday () -. t0 in
  let prep_spans = Bbx_obs.Obs.span_count obs_rule_prep - spans0 in
  Fun.protect ~finally:(fun () -> Session.Fleet.shutdown fleet) @@ fun () ->
  let accounted = Session.Fleet.conn_bytes fleet in
  let resident = live_bytes () - base in
  let bytes_per_conn = max 0 resident / conns in

  (* steady state over a sample: big fleets are weighed in full, driven
     in sample (driving 100k connections measures the driver, not the
     middlebox) *)
  let sample = min conns sample_min in
  let stats0 = Session.Fleet.stats fleet in
  let t0 = Unix.gettimeofday () in
  for w = 0 to wires_per_sample - 1 do
    for c = 0 to sample - 1 do
      ignore (Session.Fleet.submit fleet ~conn:c payloads.(w) : int)
    done
  done;
  Session.Fleet.drain fleet ~f:(fun ~seq:_ ~conn_id:_ _ -> ());
  let steady_s = Unix.gettimeofday () -. t0 in
  let stats1 = Session.Fleet.stats fleet in
  let tokens =
    stats1.Bbx_mbox.Middlebox.total_tokens - stats0.Bbx_mbox.Middlebox.total_tokens
  in

  (* migration under load: move a driven connection to the other shard,
     rebalance, keep driving — totals must keep accruing on the moved
     connection and nothing may double-count *)
  let flow0 = Session.Fleet.flow_stats fleet ~conn:0 in
  let dst = (Session.Fleet.conn_shard fleet ~conn:0 + 1) mod Session.Fleet.domains fleet in
  Session.Fleet.migrate fleet ~conn:0 ~shard:dst;
  ignore (Session.Fleet.rebalance fleet : int);
  ignore (Session.Fleet.submit fleet ~conn:0 payloads.(0) : int);
  Session.Fleet.drain fleet ~f:(fun ~seq:_ ~conn_id:_ _ -> ());
  let flow1 = Session.Fleet.flow_stats fleet ~conn:0 in
  if flow1.Bbx_mbox.Middlebox.flow_tokens <= flow0.Bbx_mbox.Middlebox.flow_tokens then begin
    Printf.printf "  FAIL: migrated connection stopped accruing flow tokens\n";
    exit 1
  end;

  { sr_conns = conns;
    sr_establish_s = establish_s;
    sr_prep_spans = prep_spans;
    sr_bytes_per_conn = bytes_per_conn;
    sr_accounted_per_conn = accounted / conns;
    sr_tokens = tokens;
    sr_steady_s = steady_s;
    sr_tokens_per_sec = float_of_int tokens /. steady_s }

let run () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "Fleet-scale connection state (smoke: 1k conns)"
     else "Fleet-scale connection state: 1k/10k/100k connections");
  let cores = Domain.recommended_domain_count () in
  let rules = Datasets.generate Datasets.Emerging_threats ~n:8 in
  let sizes = if smoke then [ 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  Printf.printf "  workload: %d rules, %d-byte packets, %d cores\n%!"
    (List.length rules) packet_bytes cores;

  let results = List.map (fun conns -> run_size ~rules ~conns) sizes in
  List.iter
    (fun r ->
       Printf.printf
         "  %6d conns: establish %s (%d rule prep), %5d B/conn (GC) %5d B/conn \
          (accounted), steady %8.0f tokens/s\n"
         r.sr_conns
         (Bench_util.fmt_seconds r.sr_establish_s)
         r.sr_prep_spans r.sr_bytes_per_conn r.sr_accounted_per_conn
         r.sr_tokens_per_sec)
    results;

  let oc = open_out "BENCH_fleet.json" in
  Printf.fprintf oc
    "{\"experiment\":\"fleet\",\"smoke\":%b,\"cores\":%d,\"rules\":%d,\"bytes_per_conn_gate\":%d,\"sizes\":["
    smoke cores (List.length rules) bytes_per_conn_gate;
  List.iteri
    (fun i r ->
       Printf.fprintf oc
         "%s{\"conns\":%d,\"establish_seconds\":%.6f,\"rule_preps\":%d,\"bytes_per_conn\":%d,\"accounted_bytes_per_conn\":%d,\"tokens\":%d,\"steady_seconds\":%.6f,\"tokens_per_sec\":%.0f}"
         (if i > 0 then "," else "")
         r.sr_conns r.sr_establish_s r.sr_prep_spans r.sr_bytes_per_conn
         r.sr_accounted_per_conn r.sr_tokens r.sr_steady_s r.sr_tokens_per_sec)
    results;
  Printf.fprintf oc "]}\n";
  close_out oc;
  Printf.printf "  wrote BENCH_fleet.json\n";

  (* gates *)
  let failed = ref false in
  List.iter
    (fun r ->
       if r.sr_prep_spans <> 1 then begin
         Printf.printf
           "  FAIL: %d rule preparations for %d conns (shared prep must be O(1): exactly 1)\n"
           r.sr_prep_spans r.sr_conns;
         failed := true
       end;
       if r.sr_bytes_per_conn > bytes_per_conn_gate then begin
         Printf.printf "  FAIL: %d B/conn at %d conns (gate: <= %d B/conn)\n"
           r.sr_bytes_per_conn r.sr_conns bytes_per_conn_gate;
         failed := true
       end)
    results;
  if not !failed then begin
    Bench_util.note "acceptance: 1 rule prep per establish at every size";
    List.iter
      (fun r ->
         Bench_util.note "acceptance: %d B/conn at %d conns (<= %d gate)"
           r.sr_bytes_per_conn r.sr_conns bytes_per_conn_gate)
      results
  end;
  (match results with
   | r :: _ when cores >= 2 ->
     if r.sr_tokens_per_sec >= tokens_per_sec_floor then
       Bench_util.note "acceptance: %.0f tokens/s steady state (>= %.0f floor)"
         r.sr_tokens_per_sec tokens_per_sec_floor
     else begin
       Printf.printf "  FAIL: %.0f tokens/s steady state (floor: %.0f on %d cores)\n"
         r.sr_tokens_per_sec tokens_per_sec_floor cores;
       failed := true
     end
   | r :: _ ->
     Bench_util.note "1-core machine: throughput floor skipped (measured %.0f tokens/s)"
       r.sr_tokens_per_sec
   | [] -> ());
  if !failed then exit 1
