(* Middlebox scaling across OCaml domains: the same interleaved
   multi-connection delivery trace pushed through Shardpool at 1, 2 and 4
   worker domains.  Senders are pre-run — every wire is encrypted before
   the clock starts — so the timed region is exactly the middlebox side:
   mailbox hand-off + per-shard BlindBox Detect.

   Determinism check rides along: every domain count must produce
   identical aggregate stats (connections route by id, salts replay from
   the same wires), so parallelism cannot change detection results.

   Gates (skipped with a note when the machine lacks the cores —
   `Domain.recommended_domain_count` on a 1-core container makes any
   speedup target unmeetable):
     - >= 2 cores:              2 domains must beat 1 by > 1.2x
     - >= 4 cores, full mode:   4 domains must beat 1 by >= 1.8x

   Results land in BENCH_parallel.json for the CI artifact. *)

open Bbx_crypto
open Bbx_dpienc
open Bbx_rules

let packet_bytes = 1500
let gate_2 = 1.2
let gate_4 = 1.8

type conn_setup = {
  cs_id : int;
  cs_enc_chunk : string -> string;
  cs_wires : string array;   (* pre-encrypted deliveries, in order *)
}

let build_conns ~conns ~wires_per_conn ~chunks =
  let drbg = Drbg.create "bench-parallel-traffic" in
  Array.init conns (fun i ->
      let key = Dpienc.key_of_secret (Printf.sprintf "bench-parallel-conn-%d" i) in
      let encs = Array.map (Dpienc.token_enc key) chunks in
      let tbl = Hashtbl.create (Array.length chunks) in
      Array.iteri (fun j c -> Hashtbl.replace tbl c encs.(j)) chunks;
      let sender = Dpienc.sender_create Dpienc.Exact key ~salt0:0 in
      let off = ref 0 in
      let wires =
        Array.init wires_per_conn (fun _ ->
            let html = Bbx_net.Page.gen_html drbg ~bytes:(2 * packet_bytes) in
            let packet = String.sub html 0 packet_bytes in
            let buf = Buffer.create (Dpienc.exact_record_bytes * packet_bytes) in
            ignore
              (Dpienc.sender_encrypt_into sender ~base:!off
                 ~tokenization:Dpienc.Window packet buf : int);
            off := !off + packet_bytes;
            Buffer.contents buf)
      in
      { cs_id = i; cs_enc_chunk = (fun c -> Hashtbl.find tbl c); cs_wires = wires })

(* One measured run: fresh pool (register untimed), timed submit+drain of
   the round-robin interleaved trace, stats for the determinism check. *)
let run_once ~domains ~rules ~conns ~wires_per_conn =
  Bbx_mbox.Shardpool.with_pool ~domains ~mode:Dpienc.Exact ~rules (fun pool ->
      Array.iter
        (fun c ->
           Bbx_mbox.Shardpool.register pool ~conn_id:c.cs_id ~salt0:0
             ~enc_chunk:c.cs_enc_chunk)
        conns;
      ignore (Bbx_mbox.Shardpool.stats pool : Bbx_mbox.Shardpool.stats); (* quiesce *)
      let t0 = Unix.gettimeofday () in
      for w = 0 to wires_per_conn - 1 do
        Array.iter
          (fun c ->
             ignore (Bbx_mbox.Shardpool.submit pool ~conn_id:c.cs_id c.cs_wires.(w) : int))
          conns
      done;
      Bbx_mbox.Shardpool.drain pool ~f:(fun ~seq:_ ~conn_id:_ _ -> ());
      let dt = Unix.gettimeofday () -. t0 in
      (dt, Bbx_mbox.Shardpool.stats pool))

let run () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "Middlebox domain scaling (smoke)"
     else "Middlebox domain scaling: Shardpool at 1/2/4 domains");
  let cores = Domain.recommended_domain_count () in
  let n_conns = if smoke then 4 else 8 in
  let wires_per_conn = if smoke then 64 else 128 in
  let rules =
    Datasets.generate Datasets.Emerging_threats ~n:(if smoke then 50 else 200)
  in
  let chunks = Bbx_mbox.Engine.distinct_chunks rules in
  let conns = build_conns ~conns:n_conns ~wires_per_conn ~chunks in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let rounds = 3 in
  Printf.printf
    "  workload: %d conns x %d wires of %d bytes (window tokens), %d chunks, %d cores\n%!"
    n_conns wires_per_conn packet_bytes (Array.length chunks) cores;

  (* interleaved best-of rounds: each round measures every domain count,
     so machine-wide drift hits all configurations alike *)
  let best = Hashtbl.create 4 in
  let stats_ref = ref None in
  for _round = 1 to rounds do
    List.iter
      (fun d ->
         let dt, stats = run_once ~domains:d ~rules ~conns ~wires_per_conn in
         (match !stats_ref with
          | None -> stats_ref := Some stats
          | Some s0 ->
            if stats <> s0 then begin
              Printf.printf
                "  FAIL: stats diverge at %d domains (parallelism changed detection)\n" d;
              exit 1
            end);
         match Hashtbl.find_opt best d with
         | Some t when t <= dt -> ()
         | _ -> Hashtbl.replace best d dt)
      domain_counts
  done;

  let stats = Option.get !stats_ref in
  let tokens = stats.Bbx_mbox.Shard.total_tokens in
  let t1 = Hashtbl.find best 1 in
  let configs =
    List.map
      (fun d ->
         let t = Hashtbl.find best d in
         (d, t, float_of_int tokens /. t))
      domain_counts
  in
  List.iter
    (fun (d, t, rate) ->
       Printf.printf "  %d domain(s): %8.0f tokens/s  (%s, %.2fx)\n" d rate
         (Bench_util.fmt_seconds t) (t1 /. t))
    configs;
  let speedup d =
    Option.map (fun (_, t, _) -> t1 /. t)
      (List.find_opt (fun (d', _, _) -> d' = d) configs)
  in
  let s2 = speedup 2 and s4 = speedup 4 in

  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\"experiment\":\"parallel\",\"smoke\":%b,\"cores\":%d,\"conns\":%d,\"tokens\":%d,\"configs\":["
    smoke cores n_conns tokens;
  List.iteri
    (fun i (d, t, rate) ->
       Printf.fprintf oc "%s{\"domains\":%d,\"seconds\":%.6f,\"tokens_per_sec\":%.0f}"
         (if i > 0 then "," else "") d t rate)
    configs;
  Printf.fprintf oc "]";
  Option.iter (Printf.fprintf oc ",\"speedup_2\":%.3f") s2;
  Option.iter (Printf.fprintf oc ",\"speedup_4\":%.3f") s4;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "  wrote BENCH_parallel.json\n";

  (* gates *)
  let failed = ref false in
  (match s2 with
   | Some s when cores >= 2 ->
     if s > gate_2 then
       Bench_util.note "acceptance: %.2fx at 2 domains (> %.1fx gate)" s gate_2
     else begin
       Printf.printf "  FAIL: %.2fx at 2 domains (gate: > %.1fx on %d cores)\n" s gate_2 cores;
       failed := true
     end
   | Some s -> Bench_util.note "1-core machine: 2-domain gate skipped (measured %.2fx)" s
   | None -> ());
  (match s4 with
   | Some s when cores >= 4 ->
     if s >= gate_4 then
       Bench_util.note "acceptance: %.2fx at 4 domains (>= %.1fx gate)" s gate_4
     else begin
       Printf.printf "  FAIL: %.2fx at 4 domains (gate: >= %.1fx on %d cores)\n" s gate_4 cores;
       failed := true
     end
   | Some s ->
     Bench_util.note "%d-core machine: 4-domain gate skipped (measured %.2fx)" cores s
   | None -> ());
  if !failed then exit 1
