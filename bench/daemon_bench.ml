(* blindboxd end-to-end bench: a fresh daemon on a temp Unix-domain
   socket per concurrency level, driven closed-loop by the Loadgen over
   real sockets — so the measured path is the deployed one: framing,
   kernel socket hops, the select front, shard-pool hand-off, detection,
   verdict framing back.

   Correctness gates always run: every frame must come back, nothing may
   be dropped, and the client's count of inspected tokens must equal the
   daemon's aggregate (socket transport cannot change detection).
   Latency/throughput expectations are only meaningful with real
   parallelism, so on a 1-core host they are skipped with a note (the
   standing CI caveat, see ROADMAP.md).

   Results land in BENCH_daemon.json for the CI artifact: p50/p95/p99
   round-trip latency and tokens/s per concurrency level. *)

module Daemon = Bbx_daemon.Daemon
module Loadgen = Bbx_daemon.Loadgen
module Client = Bbx_daemon.Client

let temp_endpoint tag =
  Daemon.Unix_path
    (Filename.concat (Filename.get_temp_dir_name ())
       (Printf.sprintf "bbxd-bench-%d-%s.sock" (Unix.getpid ()) tag))

(* one fresh daemon + one loadgen run; returns (report, daemon_tokens) *)
let run_level ~rules ~domains ~conns ~sends =
  let endpoint = temp_endpoint (string_of_int conns) in
  let handle = Daemon.start (Daemon.config ~domains ~endpoint ~rules ()) in
  Fun.protect ~finally:(fun () -> Daemon.stop handle) @@ fun () ->
  let report =
    Loadgen.run
      (Loadgen.cfg ~conns ~sends ~payload_bytes:1024 ~hit_rate:0.02
         ~seed:"bench-daemon" endpoint)
  in
  let t = Client.connect endpoint in
  let stats =
    Fun.protect ~finally:(fun () -> Client.close t) (fun () -> Client.stats t)
  in
  (report, stats.Bbx_wire.Wire.s_total_tokens)

let run () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "blindboxd over Unix sockets (smoke)"
     else "blindboxd over Unix sockets: loadgen at 1/2/4/8 connections");
  let cores = Domain.recommended_domain_count () in
  let rules = Bbx_rules.Datasets.generate Bbx_rules.Datasets.Emerging_threats ~n:50 in
  let sends = if smoke then 100 else 400 in
  let levels = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let domains = if cores >= 4 then 2 else 1 in
  Printf.printf
    "  workload: %d frames/conn of 1024 plaintext bytes, %d rules, %d pool domain(s), %d cores\n%!"
    sends (List.length rules) domains cores;

  (* metrics on, so the daemon-side stage histograms populate and the
     loadgen's METRICS_REQ snapshots yield queue-wait/service
     percentiles; the obs-overhead gate bounds the tax at <= 5%, and
     every level pays it equally, so the scaling gate stays fair *)
  let obs_was = Bbx_obs.Obs.enabled () in
  Bbx_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Bbx_obs.Obs.set_enabled obs_was) @@ fun () ->
  let results =
    List.map
      (fun conns ->
        let r, daemon_tokens = run_level ~rules ~domains ~conns ~sends in
        Printf.printf
          "  %d conn(s): %7.0f frames/s  %9.0f tokens/s  rtt p50/p95/p99 %5.0f/%5.0f/%5.0f us\n%!"
          conns r.Loadgen.rp_sends_per_s r.Loadgen.rp_tokens_per_s
          r.Loadgen.rp_rtt_p50_us r.Loadgen.rp_rtt_p95_us r.Loadgen.rp_rtt_p99_us;
        if r.Loadgen.rp_qwait_p99_us > 0.0 || r.Loadgen.rp_service_p99_us > 0.0
        then
          Printf.printf
            "            queue-wait p50/p95/p99 %5.0f/%5.0f/%5.0f us  service %5.0f/%5.0f/%5.0f us\n%!"
            r.Loadgen.rp_qwait_p50_us r.Loadgen.rp_qwait_p95_us
            r.Loadgen.rp_qwait_p99_us r.Loadgen.rp_service_p50_us
            r.Loadgen.rp_service_p95_us r.Loadgen.rp_service_p99_us;
        (* correctness gates: full delivery + token parity, every level *)
        if r.Loadgen.rp_sends <> conns * sends then begin
          Printf.printf "  FAIL: %d of %d frames answered\n" r.Loadgen.rp_sends
            (conns * sends);
          exit 1
        end;
        if r.Loadgen.rp_dropped <> 0 then begin
          Printf.printf "  FAIL: %d frames dropped\n" r.Loadgen.rp_dropped;
          exit 1
        end;
        if r.Loadgen.rp_tokens <> daemon_tokens then begin
          Printf.printf
            "  FAIL: token parity broken (client inspected %d, daemon counted %d)\n"
            r.Loadgen.rp_tokens daemon_tokens;
          exit 1
        end;
        (conns, r))
      levels
  in
  Printf.printf "  token parity client/daemon holds at every level\n";

  (* scaling expectation needs real cores; the CI host has one *)
  (match (results, List.rev results) with
   | (1, r1) :: _, (cmax, rmax) :: _ when cmax > 1 ->
     if cores < 2 then
       Bench_util.note
         "%d core(s): concurrency throughput gate skipped (needs >= 2)" cores
     else if rmax.Loadgen.rp_tokens_per_s < 0.8 *. r1.Loadgen.rp_tokens_per_s
     then begin
       Printf.printf
         "  FAIL: tokens/s collapsed under concurrency (%d conns: %.0f vs 1 conn: %.0f)\n"
         cmax rmax.Loadgen.rp_tokens_per_s r1.Loadgen.rp_tokens_per_s;
       exit 1
     end
     else
       Printf.printf "  throughput holds up under concurrency (>= 0.8x of 1 conn)\n"
   | _ -> ());

  let oc = open_out "BENCH_daemon.json" in
  Printf.fprintf oc
    "{\"experiment\":\"daemon\",\"smoke\":%b,\"cores\":%d,\"pool_domains\":%d,\"sends_per_conn\":%d,\"levels\":[%s]}\n"
    smoke cores domains sends
    (String.concat ","
       (List.map (fun (_, r) -> Loadgen.report_json r) results));
  close_out oc;
  Printf.printf "  wrote BENCH_daemon.json\n"
