(* Token-pipeline micro-bench: the legacy list-of-records path vs the
   streaming buffer-backed path, end to end (tokenize -> DPIEnc -> wire
   -> decode -> detect) on a 1500-byte packet under window tokenization —
   the paper's worst case of one token per payload byte.

   Reports tokens/sec and GC-allocated bytes per token for both paths
   (Gc.allocated_bytes deltas), so the streaming refactor's win is
   measured, not asserted.  `--smoke` runs a quick sanity pass (streaming
   and legacy paths must produce identical wire bytes) for CI. *)

open Bbx_crypto
open Bbx_dpienc
open Bbx_rules
open Bbx_tokenizer

let packet_bytes = 1500

let alloc_per_token ~reps ~tokens f =
  f ();
  (* warmup: first call populates counter tables / token keys *)
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to reps do f () done;
  let a1 = Gc.allocated_bytes () in
  (a1 -. a0) /. float_of_int (reps * tokens)

let run () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "Token pipeline (smoke)" else "Token pipeline: legacy list path vs streaming path");
  let packet =
    let html = Bbx_net.Page.gen_html (Drbg.create "pipeline") ~bytes:(2 * packet_bytes) in
    String.sub html 0 packet_bytes
  in
  let n_rules = if smoke then 50 else 1000 in
  let rules = Datasets.generate Datasets.Emerging_threats ~n:n_rules in
  let chunks = Bbx_mbox.Engine.distinct_chunks rules in
  let dpi_key = Dpienc.key_of_secret "pipeline-k" in
  let encs = Array.map (Dpienc.token_enc dpi_key) chunks in
  let tokens = Tokenizer.window_count packet in
  Printf.printf "  workload: %d-byte packet, window tokenization (%d tokens), %d chunks\n"
    packet_bytes tokens (Array.length chunks);

  (* Two isolated sender/detector pairs so the paths cannot share counter
     state; both consume the identical packet stream. *)
  let sender_legacy = Dpienc.sender_create Dpienc.Exact dpi_key ~salt0:0 in
  let detect_legacy = Bbx_detect.Detect.create ~mode:Dpienc.Exact ~salt0:0 encs in
  let legacy () =
    let toks = Tokenizer.window packet in
    let enc = Dpienc.sender_encrypt sender_legacy toks in
    let wire = Dpienc.encode_tokens enc in
    ignore (Bbx_detect.Detect.process_batch detect_legacy (Dpienc.decode_tokens wire) : _ list);
    wire
  in

  let sender_stream = Dpienc.sender_create Dpienc.Exact dpi_key ~salt0:0 in
  let detect_stream = Bbx_detect.Detect.create ~mode:Dpienc.Exact ~salt0:0 encs in
  let buf = Buffer.create (Dpienc.exact_record_bytes * tokens) in
  let streaming () =
    Buffer.clear buf;
    ignore (Dpienc.sender_encrypt_into sender_stream ~tokenization:Dpienc.Window packet buf : int);
    let wire = Buffer.contents buf in
    ignore
      (Bbx_detect.Detect.process_stream detect_stream wire ~f:(fun _ ~embed_pos:_ -> ()) : int);
    wire
  in

  (* Both senders advance their counters identically per call, so the two
     paths stay byte-comparable on every iteration. *)
  let w_legacy = legacy () and w_stream = streaming () in
  if not (String.equal w_legacy w_stream) then begin
    Printf.printf "  FAIL: streaming wire differs from legacy wire\n";
    exit 1
  end;
  Printf.printf "  wire equivalence: OK (%d bytes per packet)\n" (String.length w_stream);
  if smoke then begin
    for _ = 1 to 5 do
      if not (String.equal (legacy ()) (streaming ())) then begin
        Printf.printf "  FAIL: paths diverged under counter advance\n";
        exit 1
      end
    done;
    Printf.printf "  smoke OK\n"
  end
  else begin
    let reps = 200 in
    let alloc_legacy = alloc_per_token ~reps ~tokens (fun () -> ignore (legacy () : string)) in
    let alloc_stream = alloc_per_token ~reps ~tokens (fun () -> ignore (streaming () : string)) in
    let s_legacy = Bench_util.time_per ~min_time:1.0 (fun () -> ignore (legacy () : string)) in
    let s_stream = Bench_util.time_per ~min_time:1.0 (fun () -> ignore (streaming () : string)) in
    let tps s = float_of_int tokens /. s in
    Printf.printf "  legacy list path:  %8.0f tokens/s  %7.1f B allocated/token  (%s/packet)\n"
      (tps s_legacy) alloc_legacy (Bench_util.fmt_seconds s_legacy);
    Printf.printf "  streaming path:    %8.0f tokens/s  %7.1f B allocated/token  (%s/packet)\n"
      (tps s_stream) alloc_stream (Bench_util.fmt_seconds s_stream);
    Printf.printf "  speedup: %.2fx tokens/s, %.1fx fewer allocated bytes/token\n"
      (s_legacy /. s_stream) (alloc_legacy /. alloc_stream);
    Bench_util.note
      "acceptance: streaming must allocate >= 3x less per token and run faster";
    if alloc_legacy < 3.0 *. alloc_stream || s_stream > s_legacy then begin
      Printf.printf "  FAIL: streaming path does not meet the acceptance bar\n";
      exit 1
    end
  end
