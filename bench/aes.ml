(* Bitsliced AES kernel: scalar vs bitsliced, micro and end to end.

   Two layers, both measured best-of-N on the same binary (the ratio is
   what matters, and best-of-N is how a ratio survives a noisy shared
   host):

   - {b kernel}: raw same-key AES-128 blocks/s — one scalar
     [Aes.encrypt_block_into] loop vs one full-width
     [Aes_bs.encrypt_blocks_into] sweep over identical inputs;
   - {b sender}: end-to-end DPIEnc [sender_encrypt_into] tokens/s over an
     HTML corpus, scalar vs bitsliced senders, Exact and Probable.

   Correctness is part of the run, not a separate test: before timing
   anything, both senders encrypt the identical payload sequence and the
   wire bytes must match exactly (Exact and Probable).  Gates (exit 1):

   - wire-byte equality between the kernels in both modes;
   - bitsliced Exact sender throughput >= 2x scalar (the refactor's
     reason to exist; ratio of best-of-N rates from one binary).  A
     sub-gate reading earns up to two fresh measurements and the best
     attempt is reported: a whole measurement can land in a noisy host
     phase, and noise only ever subtracts from both kernels.

   Results land in BENCH_aes.json for the CI artifact. *)

open Bbx_crypto
open Bbx_dpienc

let sender_gate = 2.0
let best_of = 7
let max_attempts = 3
let corpus_payloads = 48
let payload_bytes = 1400
let salt0 = 0

let tokenization = Dpienc.Window

(* ---- kernel micro: same-key blocks/s ---- *)

let kernel_blocks_per_sec () =
  let key = Aes.expand_key "aes-bench-key-16" in
  let bs_key = Aes_bs.key_of_aes key in
  let batch = Aes_bs.create_batch () in
  let drbg = Drbg.create "bench-aes-blocks" in
  let blob = Drbg.bytes drbg (Aes_bs.width * 16) in
  let blob_b = Bytes.of_string blob in
  let dst = Bytes.create 16 in
  let scalar () =
    for i = 0 to Aes_bs.width - 1 do
      Aes.encrypt_block_into key ~src:blob_b ~src_off:(i * 16) ~dst ~dst_off:0
    done
  in
  let bitsliced () =
    Aes_bs.reset batch;
    for i = 0 to Aes_bs.width - 1 do
      Aes_bs.set_block batch i blob (i * 16)
    done;
    Aes_bs.encrypt_blocks_into bs_key batch
  in
  let rate f =
    let best = ref infinity in
    for _ = 1 to best_of do
      let s = Bench_util.time_per ~min_time:0.2 f in
      if s < !best then best := s
    done;
    float_of_int Aes_bs.width /. !best
  in
  (rate scalar, rate bitsliced)

(* ---- end-to-end sender ---- *)

let corpus () =
  let drbg = Drbg.create "bench-aes-corpus" in
  Array.init corpus_payloads (fun _ ->
      let html = Bbx_net.Page.gen_html drbg ~bytes:(2 * payload_bytes) in
      String.sub html 0 payload_bytes)

let k_ssl_of = function
  | Dpienc.Exact -> None
  | Dpienc.Probable -> Some (String.make 16 's')

let fresh_sender ~kernel ~mode =
  Dpienc.sender_create ~kernel mode (Dpienc.key_of_secret "bench-aes-dpi")
    ~salt0

(* One full corpus pass through a fresh sender; returns (tokens, wire). *)
let drive ~kernel ~mode payloads =
  let s = fresh_sender ~kernel ~mode in
  let buf = Buffer.create (1 lsl 20) in
  let tokens = ref 0 in
  Array.iter
    (fun p ->
       tokens :=
         !tokens
         + Dpienc.sender_encrypt_into s ?k_ssl:(k_ssl_of mode) ~tokenization p
             buf)
    payloads;
  (!tokens, Buffer.contents buf)

(* Wire-byte differential: the whole point of the knob is that it is
   invisible on the wire. *)
let check_wire_equality ~mode payloads =
  let tok_s, wire_s = drive ~kernel:Dpienc.Scalar ~mode payloads in
  let tok_b, wire_b = drive ~kernel:Dpienc.Bitsliced ~mode payloads in
  if tok_s <> tok_b || not (String.equal wire_s wire_b) then begin
    Printf.printf
      "  FAIL: %s wire mismatch (scalar %d tokens / %d bytes, bitsliced %d \
       tokens / %d bytes)\n"
      (match mode with Dpienc.Exact -> "Exact" | Dpienc.Probable -> "Probable")
      tok_s (String.length wire_s) tok_b (String.length wire_b);
    false
  end
  else true

(* Steady-state tokens/s for both kernels at once: repeated corpus passes
   over one warm sender per kernel (the counter table reaches its
   mostly-hit shape), with the two kernels' timing rounds interleaved —
   scalar, bitsliced, scalar, bitsliced — so both sample the same phase
   of a drifting shared host.  The order within a pair alternates each
   round (scalar first, then bitsliced first) so monotonic drift inside
   a round cancels across rounds instead of biasing the ratio one way.
   The gate reads the ratio of best-of-N rates: noise on a shared host
   is one-sided (a round can only be slowed down, never sped up), so
   each kernel's best round is its least-contaminated sample and their
   ratio the steadiest estimator.  The median of per-round paired ratios
   rides along in the JSON as a cross-check. *)
let sender_tokens_per_sec ~mode payloads =
  let k_ssl = k_ssl_of mode in
  let mk kernel =
    let s = fresh_sender ~kernel ~mode in
    let buf = Buffer.create (1 lsl 20) in
    fun () ->
      Buffer.clear buf;
      let t = ref 0 in
      Array.iter
        (fun p ->
           t := !t + Dpienc.sender_encrypt_into s ?k_ssl ~tokenization p buf)
        payloads;
      !t
  in
  let pass_s = mk Dpienc.Scalar and pass_b = mk Dpienc.Bitsliced in
  let tokens_per_pass = pass_s () in (* warm both tables *)
  ignore (pass_b () : int);
  let best_s = ref infinity and best_b = ref infinity in
  let ratios = Array.make best_of 0.0 in
  let time f = Bench_util.time_per ~min_time:0.2 (fun () -> ignore (f () : int)) in
  for round = 0 to best_of - 1 do
    let ts, tb =
      if round land 1 = 0 then
        let ts = time pass_s in
        (ts, time pass_b)
      else
        let tb = time pass_b in
        (time pass_s, tb)
    in
    if ts < !best_s then best_s := ts;
    if tb < !best_b then best_b := tb;
    ratios.(round) <- ts /. tb
  done;
  Array.sort compare ratios;
  let rate best = float_of_int tokens_per_pass /. best in
  (rate !best_s, rate !best_b, ratios.(best_of / 2))

type mode_result = {
  mr_mode : Dpienc.mode;
  mr_scalar : float;
  mr_bitsliced : float;
  mr_speedup : float; (* ratio of best-of-N rates *)
  mr_ratio_median : float; (* median of per-round paired ratios *)
}

let run () =
  Bench_util.section
    "Bitsliced AES kernel: scalar vs bitsliced, micro + end-to-end sender";
  let payloads = corpus () in

  let wire_ok =
    check_wire_equality ~mode:Dpienc.Exact payloads
    && check_wire_equality ~mode:Dpienc.Probable payloads
  in
  if wire_ok then
    Bench_util.note "acceptance: wire bytes identical across kernels (Exact + Probable)";

  let scalar_bps, bs_bps = kernel_blocks_per_sec () in
  Printf.printf
    "  kernel:  scalar %10.0f blocks/s   bitsliced %10.0f blocks/s   (%.2fx)\n"
    scalar_bps bs_bps (bs_bps /. scalar_bps);

  let measure mode =
    let scalar, bitsliced, rmedian = sender_tokens_per_sec ~mode payloads in
    let r =
      { mr_mode = mode; mr_scalar = scalar; mr_bitsliced = bitsliced;
        mr_speedup = bitsliced /. scalar; mr_ratio_median = rmedian }
    in
    Printf.printf
      "  %-8s scalar %10.0f tokens/s   bitsliced %10.0f tokens/s   (%.2fx, %.2fx median)\n"
      (match mode with Dpienc.Exact -> "Exact:" | Dpienc.Probable -> "Probable:")
      r.mr_scalar r.mr_bitsliced r.mr_speedup r.mr_ratio_median;
    r
  in
  (* Exact is gated: a below-gate attempt re-measures (the whole
     interleaved round set) up to [max_attempts] times and keeps the
     best, since a depressed reading means the measurement — not the
     code — hit a bad host phase. *)
  let rec measure_exact attempt best =
    let r = measure Dpienc.Exact in
    let best =
      match best with
      | Some b when b.mr_speedup >= r.mr_speedup -> b
      | _ -> r
    in
    if best.mr_speedup >= sender_gate || attempt >= max_attempts then best
    else begin
      Bench_util.note "below gate; re-measuring (attempt %d/%d)" (attempt + 1)
        max_attempts;
      measure_exact (attempt + 1) (Some best)
    end
  in
  let exact = measure_exact 1 None in
  let probable = measure Dpienc.Probable in
  let results = [ exact; probable ] in

  let oc = open_out "BENCH_aes.json" in
  Printf.fprintf oc
    "{\"experiment\":\"aes\",\"width\":%d,\"sender_gate\":%.1f,\"wire_equal\":%b,\"kernel_blocks_per_sec\":{\"scalar\":%.0f,\"bitsliced\":%.0f},\"sender_tokens_per_sec\":["
    Aes_bs.width sender_gate wire_ok scalar_bps bs_bps;
  List.iteri
    (fun i r ->
       Printf.fprintf oc
         "%s{\"mode\":\"%s\",\"scalar\":%.0f,\"bitsliced\":%.0f,\"speedup\":%.3f,\"ratio_median\":%.3f}"
         (if i > 0 then "," else "")
         (match r.mr_mode with Dpienc.Exact -> "exact" | Dpienc.Probable -> "probable")
         r.mr_scalar r.mr_bitsliced r.mr_speedup r.mr_ratio_median
    )
    results;
  Printf.fprintf oc "]}\n";
  close_out oc;
  Printf.printf "  wrote BENCH_aes.json\n";

  let failed = ref (not wire_ok) in
  (match List.find_opt (fun r -> r.mr_mode = Dpienc.Exact) results with
   | Some r ->
     let speedup = r.mr_speedup in
     if speedup >= sender_gate then
       Bench_util.note "acceptance: %.2fx Exact sender speedup (>= %.1fx gate)"
         speedup sender_gate
     else begin
       Printf.printf "  FAIL: %.2fx Exact sender speedup (gate: >= %.1fx)\n"
         speedup sender_gate;
       failed := true
     end
   | None -> ());
  if !failed then exit 1
