(* Parallel obfuscated rule encryption: the same chunk set prepared
   through Ruleprep at 1, 2 and 4 worker domains.  The timed region is
   one full preparation round — sender-side garbling, receiver
   re-derivation + equality check, batched IKNP OT and middlebox circuit
   evaluation — i.e. exactly the paper's §7.2.2 setup cost.

   Determinism check rides along: every domain count must produce
   byte-identical encryptions (chunk i's garbling DRBG derives from
   (generation, i) alone), so parallelism cannot change the exchange.

   Gate (skipped with a note when the machine lacks the cores —
   `Domain.recommended_domain_count` on a 1-core container makes any
   speedup target unmeetable):
     - >= 2 cores: 2 domains must beat 1 by > 1.2x

   Results land in BENCH_setup_parallel.json for the CI artifact. *)

open Blindbox

let gate_2 = 1.2

let run_once ~domains ~chunks =
  let t0 = Unix.gettimeofday () in
  let encs, _ =
    Ruleprep.prepare_unchecked ~domains ~k:"bench-setup-k" ~k_rand:"bench-setup-seed"
      ~chunks ()
  in
  (Unix.gettimeofday () -. t0, encs)

let run () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  Bench_util.section
    (if smoke then "Rule-setup domain scaling (smoke)"
     else "Rule-setup domain scaling: Ruleprep at 1/2/4 domains");
  let cores = Domain.recommended_domain_count () in
  let n_chunks = if smoke then 4 else 16 in
  let chunks =
    Array.init n_chunks (fun i ->
        let s = Printf.sprintf "kw%05d" i in
        s ^ String.make (8 - String.length s) '_')
  in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let rounds = if smoke then 1 else 2 in
  Printf.printf "  workload: %d chunks (one garbled AES circuit + OT each), %d cores\n%!"
    n_chunks cores;

  (* interleaved best-of rounds: each round measures every domain count,
     so machine-wide drift hits all configurations alike *)
  let best = Hashtbl.create 4 in
  let encs_ref = ref None in
  for _round = 1 to rounds do
    List.iter
      (fun d ->
         let dt, encs = run_once ~domains:d ~chunks in
         (match !encs_ref with
          | None -> encs_ref := Some encs
          | Some e0 ->
            if encs <> e0 then begin
              Printf.printf
                "  FAIL: encryptions diverge at %d domains (parallelism changed the exchange)\n"
                d;
              exit 1
            end);
         match Hashtbl.find_opt best d with
         | Some t when t <= dt -> ()
         | _ -> Hashtbl.replace best d dt)
      domain_counts
  done;

  let t1 = Hashtbl.find best 1 in
  let configs =
    List.map
      (fun d ->
         let t = Hashtbl.find best d in
         (d, t, float_of_int n_chunks /. t))
      domain_counts
  in
  List.iter
    (fun (d, t, rate) ->
       Printf.printf "  %d domain(s): %6.2f chunks/s  (%s, %.2fx)\n" d rate
         (Bench_util.fmt_seconds t) (t1 /. t))
    configs;
  let speedup d =
    Option.map (fun (_, t, _) -> t1 /. t)
      (List.find_opt (fun (d', _, _) -> d' = d) configs)
  in
  let s2 = speedup 2 and s4 = speedup 4 in

  let oc = open_out "BENCH_setup_parallel.json" in
  Printf.fprintf oc
    "{\"experiment\":\"setup_parallel\",\"smoke\":%b,\"cores\":%d,\"chunks\":%d,\"configs\":["
    smoke cores n_chunks;
  List.iteri
    (fun i (d, t, rate) ->
       Printf.fprintf oc "%s{\"domains\":%d,\"seconds\":%.6f,\"chunks_per_sec\":%.2f}"
         (if i > 0 then "," else "") d t rate)
    configs;
  Printf.fprintf oc "]";
  Option.iter (Printf.fprintf oc ",\"speedup_2\":%.3f") s2;
  Option.iter (Printf.fprintf oc ",\"speedup_4\":%.3f") s4;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "  wrote BENCH_setup_parallel.json\n";

  (* gate *)
  (match s2 with
   | Some s when cores >= 2 ->
     if s > gate_2 then
       Bench_util.note "acceptance: %.2fx at 2 domains (> %.1fx gate)" s gate_2
     else begin
       Printf.printf "  FAIL: %.2fx at 2 domains (gate: > %.1fx on %d cores)\n" s gate_2
         cores;
       exit 1
     end
   | Some s -> Bench_util.note "1-core machine: 2-domain gate skipped (measured %.2fx)" s
   | None -> ());
  match s4 with
  | Some s -> Bench_util.note "4-domain speedup: %.2fx (informational)" s
  | None -> ()
