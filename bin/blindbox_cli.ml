(* The blindbox command-line tool.

   Subcommands:
     classify   parse a Snort-dialect ruleset and report Protocol I/II/III coverage
     generate   emit a synthetic ruleset with a named dataset's statistics
     tokenize   show the tokens the sender would emit for a payload
     inspect    run payloads through a full in-process BlindBox connection *)

open Cmdliner
open Bbx_rules

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_stdin () =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf stdin 1
     done
   with End_of_file -> ());
  Buffer.contents buf

(* ---- classify ---- *)

let classify_cmd =
  let run path =
    match Parser.parse_ruleset (read_file path) with
    | exception Parser.Syntax_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
    | rules ->
      let f1, f2, f3 = Classify.fractions rules in
      Printf.printf "%d rules\n" (List.length rules);
      Printf.printf "Protocol I   (single exact keyword): %5.1f%%\n" (100. *. f1);
      Printf.printf "Protocol II  (multi-keyword+offsets): %5.1f%%\n" (100. *. f2);
      Printf.printf "Protocol III (full IDS, pcre):        %5.1f%%\n" (100. *. f3);
      Printf.printf "distinct keywords: %d\n" (List.length (Datasets.distinct_keywords rules));
      Printf.printf "distinct 8-byte chunks to prepare: %d\n"
        (Array.length (Bbx_mbox.Engine.distinct_chunks rules))
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"RULES" ~doc:"Snort-dialect rules file.") in
  Cmd.v (Cmd.info "classify" ~doc:"Classify a ruleset into BlindBox protocols")
    Term.(const run $ path)

(* ---- generate ---- *)

let dataset_conv =
  let parse s =
    match
      List.find_opt
        (fun ds -> String.lowercase_ascii (Datasets.name ds) |> fun n ->
          n = String.lowercase_ascii s
          || String.concat "-" (String.split_on_char ' ' n) = String.lowercase_ascii s)
        Datasets.all
    with
    | Some ds -> Ok ds
    | None ->
      Error (`Msg (Printf.sprintf "unknown dataset %S; one of: %s" s
                     (String.concat ", " (List.map Datasets.name Datasets.all))))
  in
  Arg.conv (parse, fun fmt ds -> Format.pp_print_string fmt (Datasets.name ds))

let generate_cmd =
  let run ds n seed =
    List.iter (fun r -> print_endline (Rule.to_string r)) (Datasets.generate ~seed ds ~n)
  in
  let ds =
    Arg.(required & pos 0 (some dataset_conv) None
         & info [] ~docv:"DATASET" ~doc:"Dataset name (e.g. 'Lastline', 'parental-filtering').")
  in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of rules.") in
  let seed = Arg.(value & opt string "blindbox-dataset" & info [ "seed" ] ~doc:"Generator seed.") in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic ruleset with a dataset's statistics")
    Term.(const run $ ds $ n $ seed)

(* ---- tokenize ---- *)

let tokenize_cmd =
  let run window short_units =
    let payload = read_stdin () in
    let toks =
      if window then Bbx_tokenizer.Tokenizer.window payload
      else Bbx_tokenizer.Tokenizer.delimiter ~short_units payload
    in
    List.iter
      (fun t ->
         Printf.printf "%6d  %s\n" t.Bbx_tokenizer.Tokenizer.offset
           (String.concat ""
              (List.map
                 (fun c ->
                    if c >= ' ' && c <= '~' then String.make 1 c
                    else Printf.sprintf "\\x%02x" (Char.code c))
                 (List.init 8 (String.get t.Bbx_tokenizer.Tokenizer.content)))))
      toks;
    Printf.printf "-- %d tokens for %d bytes\n" (List.length toks) (String.length payload)
  in
  let window = Arg.(value & flag & info [ "window" ] ~doc:"Window-based tokenization (default: delimiter).") in
  let shorts = Arg.(value & flag & info [ "short-units" ] ~doc:"Also emit padded short units.") in
  Cmd.v (Cmd.info "tokenize" ~doc:"Tokenize stdin as the BlindBox sender would")
    Term.(const run $ window $ shorts)

(* ---- inspect ---- *)

let inspect_cmd =
  let run rules_path probable window =
    let rules =
      match Parser.parse_ruleset (read_file rules_path) with
      | exception Parser.Syntax_error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 1
      | rules -> rules
    in
    let open Blindbox in
    let config =
      { Session.default_config with
        Session.mode = (if probable then Bbx_dpienc.Dpienc.Probable else Bbx_dpienc.Dpienc.Exact);
        tokenization = (if window then Session.Window else Session.Delimiter) }
    in
    let session, stats = Session.establish ~config ~rules () in
    Printf.printf "# connection up: %d rules, %d chunks\n%!"
      (List.length rules) stats.Session.chunk_count;
    (try
       while true do
         let line = input_line stdin in
         let d = Session.send session line in
         if d.Session.verdicts = [] then
           Printf.printf "clean   (%d tokens, %d token bytes)\n%!"
             d.Session.token_count d.Session.token_bytes
         else
           List.iter
             (fun v ->
                Printf.printf "ALERT   sid:%d %s (%s)\n%!"
                  (Option.value v.Bbx_mbox.Engine.rule.Rule.sid ~default:0)
                  (Option.value v.Bbx_mbox.Engine.rule.Rule.msg ~default:"")
                  (match v.Bbx_mbox.Engine.via with
                   | `Exact_match -> "exact match"
                   | `Probable_cause -> "probable cause"))
             d.Session.verdicts
       done
     with End_of_file -> ());
    match Session.mb_recovered_key session with
    | Some _ -> Printf.printf "# middlebox recovered the session key (probable cause fired)\n"
    | None -> Printf.printf "# middlebox never held the session key\n"
  in
  let rules = Arg.(required & pos 0 (some file) None & info [] ~docv:"RULES" ~doc:"Rules file.") in
  let probable = Arg.(value & flag & info [ "probable-cause" ] ~doc:"Protocol III mode.") in
  let window = Arg.(value & flag & info [ "window" ] ~doc:"Window tokenization.") in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Run stdin lines through a sender->middlebox->receiver BlindBox connection")
    Term.(const run $ rules $ probable $ window)

let () =
  let info = Cmd.info "blindbox" ~version:"1.0.0" ~doc:"Deep packet inspection over encrypted traffic" in
  exit (Cmd.eval (Cmd.group info [ classify_cmd; generate_cmd; tokenize_cmd; inspect_cmd ]))
