(* The blindbox command-line tool.

   Subcommands:
     classify   parse a Snort-dialect ruleset and report Protocol I/II/III coverage
     generate   emit a synthetic ruleset with a named dataset's statistics
     tokenize   show the tokens the sender would emit for a payload
     inspect    run payloads through a full in-process BlindBox connection
     stats      drive a sample trace and render the bbx_obs metric registry
                (or, with --socket, query a running blindboxd)
     serve      run blindboxd: the middlebox as a network daemon
     loadgen    drive a running blindboxd with N concurrent senders
     migrate    move a live monitored connection between two daemons

   Every subcommand takes [--metrics FILE] to dump the metric registry on
   exit (JSONL for .json/.jsonl paths, Prometheus text otherwise). *)

open Cmdliner
open Bbx_rules
module Obs = Bbx_obs.Obs

(* [--metrics FILE]: shared by all subcommands; wraps each command's body
   so the snapshot is written after the run. *)
let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the bbx_obs metric snapshot to $(docv) on exit \
               (JSONL when $(docv) ends in .json/.jsonl, Prometheus text otherwise).")

let with_metrics metrics f =
  let r = f () in
  (match metrics with None -> () | Some path -> Obs.save ~path);
  r

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_stdin () =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf stdin 1
     done
   with End_of_file -> ());
  Buffer.contents buf

(* ---- classify ---- *)

let classify_cmd =
  let run path metrics =
    with_metrics metrics @@ fun () ->
    match Parser.parse_ruleset (read_file path) with
    | exception Parser.Syntax_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
    | rules ->
      let f1, f2, f3 = Classify.fractions rules in
      Printf.printf "%d rules\n" (List.length rules);
      Printf.printf "Protocol I   (single exact keyword): %5.1f%%\n" (100. *. f1);
      Printf.printf "Protocol II  (multi-keyword+offsets): %5.1f%%\n" (100. *. f2);
      Printf.printf "Protocol III (full IDS, pcre):        %5.1f%%\n" (100. *. f3);
      Printf.printf "distinct keywords: %d\n" (List.length (Datasets.distinct_keywords rules));
      Printf.printf "distinct 8-byte chunks to prepare: %d\n"
        (Array.length (Bbx_mbox.Engine.distinct_chunks rules))
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"RULES" ~doc:"Snort-dialect rules file.") in
  Cmd.v (Cmd.info "classify" ~doc:"Classify a ruleset into BlindBox protocols")
    Term.(const run $ path $ metrics_arg)

(* ---- generate ---- *)

let dataset_conv =
  let parse s =
    match
      List.find_opt
        (fun ds -> String.lowercase_ascii (Datasets.name ds) |> fun n ->
          n = String.lowercase_ascii s
          || String.concat "-" (String.split_on_char ' ' n) = String.lowercase_ascii s)
        Datasets.all
    with
    | Some ds -> Ok ds
    | None ->
      Error (`Msg (Printf.sprintf "unknown dataset %S; one of: %s" s
                     (String.concat ", " (List.map Datasets.name Datasets.all))))
  in
  Arg.conv (parse, fun fmt ds -> Format.pp_print_string fmt (Datasets.name ds))

let generate_cmd =
  let run ds n seed metrics =
    with_metrics metrics @@ fun () ->
    List.iter (fun r -> print_endline (Rule.to_string r)) (Datasets.generate ~seed ds ~n)
  in
  let ds =
    Arg.(required & pos 0 (some dataset_conv) None
         & info [] ~docv:"DATASET" ~doc:"Dataset name (e.g. 'Lastline', 'parental-filtering').")
  in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of rules.") in
  let seed = Arg.(value & opt string "blindbox-dataset" & info [ "seed" ] ~doc:"Generator seed.") in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic ruleset with a dataset's statistics")
    Term.(const run $ ds $ n $ seed $ metrics_arg)

(* ---- tokenize ---- *)

let tokenize_cmd =
  let run window short_units metrics =
    with_metrics metrics @@ fun () ->
    let payload = read_stdin () in
    let toks =
      if window then Bbx_tokenizer.Tokenizer.window payload
      else Bbx_tokenizer.Tokenizer.delimiter ~short_units payload
    in
    List.iter
      (fun t ->
         Printf.printf "%6d  %s\n" t.Bbx_tokenizer.Tokenizer.offset
           (String.concat ""
              (List.map
                 (fun c ->
                    if c >= ' ' && c <= '~' then String.make 1 c
                    else Printf.sprintf "\\x%02x" (Char.code c))
                 (List.init 8 (String.get t.Bbx_tokenizer.Tokenizer.content)))))
      toks;
    Printf.printf "-- %d tokens for %d bytes\n" (List.length toks) (String.length payload)
  in
  let window = Arg.(value & flag & info [ "window" ] ~doc:"Window-based tokenization (default: delimiter).") in
  let shorts = Arg.(value & flag & info [ "short-units" ] ~doc:"Also emit padded short units.") in
  Cmd.v (Cmd.info "tokenize" ~doc:"Tokenize stdin as the BlindBox sender would")
    Term.(const run $ window $ shorts $ metrics_arg)

(* ---- inspect ---- *)

let print_alert v =
  Printf.printf "ALERT   sid:%d %s (%s, %s)\n%!"
    (Option.value v.Bbx_mbox.Engine.rule.Rule.sid ~default:0)
    (Option.value v.Bbx_mbox.Engine.rule.Rule.msg ~default:"")
    (match v.Bbx_mbox.Engine.via with
     | `Exact_match -> "exact match"
     | `Probable_cause -> "probable cause")
    (Bbx_mbox.Engine.detail_name v.Bbx_mbox.Engine.detail)

(* shared tier/budget arguments: which BlindBox protocol the middlebox
   engines may escalate to, and the per-flow Protocol III budget *)
let tier_arg =
  Arg.(value
       & opt
           (enum
              [ ("1", Classify.Protocol_I);
                ("2", Classify.Protocol_II);
                ("3", Classify.Protocol_III) ])
           Classify.Protocol_III
       & info [ "tier" ] ~docv:"N"
         ~doc:"Highest BlindBox protocol the middlebox engines execute: \
               $(b,1) (exact keyword match only), $(b,2) (+ composite \
               multi-keyword/offset rules), $(b,3) (+ full regex rules over \
               the probable-cause-recovered stream, the default).  Rules \
               needing a higher protocol than $(docv) are ignored.")

let budget_bytes_arg =
  Arg.(value & opt int Bbx_mbox.Engine.default_budget.Bbx_mbox.Engine.max_plain_bytes
       & info [ "budget-bytes" ] ~docv:"BYTES"
         ~doc:"Per-flow cap on recovered plaintext retained for Protocol III \
               escalation (0 = unlimited).  A flow past its budget is flagged \
               (budget-exceeded verdict), not matched.")

let budget_ms_arg =
  Arg.(value & opt int 0
       & info [ "budget-ms" ] ~docv:"MS"
         ~doc:"Per-flow cap on regex-confirmation scan time in milliseconds \
               (0 = unlimited, the default).")

let budget_of ~budget_bytes ~budget_ms =
  { Bbx_mbox.Engine.max_plain_bytes = budget_bytes; max_scan_ms = budget_ms }

(* shared --detect-index argument: cipher-index backend for the middlebox
   engines (hash = flat open-addressing index, avl = reference tree) *)
let detect_index_arg =
  Arg.(value
       & opt (enum [ ("hash", Bbx_detect.Detect.Hash); ("avl", Bbx_detect.Detect.Avl) ])
         Bbx_detect.Detect.Hash
       & info [ "detect-index" ] ~docv:"BACKEND"
         ~doc:"Cipher-index backend for detection: $(b,hash) (flat \
               open-addressing index, the default) or $(b,avl) (the \
               reference balanced tree).  Both produce identical verdicts.")

(* shared --aes-kernel argument: AES path for the hot loops (sender token
   encryption, Direct rule prep, tier-3 record decryption).  Bitsliced is
   the production default; scalar is the single-block differential
   oracle. *)
let aes_kernel_arg =
  Arg.(value
       & opt (enum [ ("bitsliced", Bbx_crypto.Aes_bs.Bitsliced);
                     ("scalar", Bbx_crypto.Aes_bs.Scalar) ])
         Bbx_crypto.Aes_bs.Bitsliced
       & info [ "aes-kernel" ] ~docv:"KERNEL"
         ~doc:"AES implementation for the hot paths: $(b,bitsliced) \
               (batched same-key kernel, the default) or $(b,scalar) \
               (single-block reference path).  Both produce byte-identical \
               traffic and verdicts.")

let inspect_cmd =
  let run rules_path probable window domains garbled setup_domains detect_index
      aes_kernel tier budget_bytes budget_ms metrics =
    with_metrics metrics @@ fun () ->
    let rules =
      match Parser.parse_ruleset (read_file rules_path) with
      | exception Parser.Syntax_error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 1
      | rules -> rules
    in
    let open Blindbox in
    let config =
      { Session.default_config with
        Session.mode = (if probable then Bbx_dpienc.Dpienc.Probable else Bbx_dpienc.Dpienc.Exact);
        tokenization = (if window then Session.Window else Session.Delimiter);
        rule_prep = (if garbled then Session.Garbled else Session.Direct);
        setup_domains = max 1 setup_domains;
        detect_index;
        aes_kernel;
        tier;
        tier_budget = budget_of ~budget_bytes ~budget_ms }
    in
    if domains > 0 then begin
      (* sharded middlebox: the connection lives on a pool worker domain;
         in Probable mode at tier 3 the submitting side also ships the
         sealed record stream, so probable-cause escalation runs there *)
      Session.Fleet.with_fleet ~config ~domains ~conns:1 ~rules @@ fun fleet ->
      Printf.printf "# sharded middlebox up: %d rules, %d worker domain(s)\n%!"
        (List.length rules) (Session.Fleet.domains fleet);
      try
        while true do
          let line = input_line stdin in
          let seq = Session.Fleet.submit fleet ~conn:0 line in
          let got = ref false in
          Session.Fleet.drain fleet ~f:(fun ~seq:s ~conn_id:_ verdicts ->
              if s = seq then begin
                got := true;
                if verdicts = [] then Printf.printf "clean\n%!"
                else List.iter print_alert verdicts
              end);
          if not !got then Printf.printf "dropped (connection blocked)\n%!"
        done
      with End_of_file -> ()
    end
    else begin
      let session, stats = Session.establish ~config ~rules () in
      Printf.printf "# connection up: %d rules, %d chunks\n%!"
        (List.length rules) stats.Session.chunk_count;
      (try
         while true do
           let line = input_line stdin in
           let d = Session.send session line in
           if d.Session.verdicts = [] then
             Printf.printf "clean   (%d tokens, %d token bytes)\n%!"
               d.Session.token_count d.Session.token_bytes
           else List.iter print_alert d.Session.verdicts
         done
       with End_of_file -> ());
      match Session.mb_recovered_key session with
      | Some _ -> Printf.printf "# middlebox recovered the session key (probable cause fired)\n"
      | None -> Printf.printf "# middlebox never held the session key\n"
    end
  in
  let rules = Arg.(required & pos 0 (some file) None & info [] ~docv:"RULES" ~doc:"Rules file.") in
  let probable = Arg.(value & flag & info [ "probable-cause" ] ~doc:"Protocol III mode.") in
  let window = Arg.(value & flag & info [ "window" ] ~doc:"Window tokenization.") in
  let domains =
    Arg.(value & opt int 0
         & info [ "domains" ] ~docv:"N"
           ~doc:"Run the middlebox sharded across $(docv) OCaml domains \
                 (0 = sequential in-process connection, the default).")
  in
  let garbled =
    Arg.(value & flag
         & info [ "garbled-setup" ]
           ~doc:"Run real obfuscated rule encryption (garbled circuits + OT) \
                 during connection setup instead of the trusted-simulation \
                 shortcut.  Expect roughly a second per distinct chunk.")
  in
  let setup_domains =
    Arg.(value & opt int 1
         & info [ "setup-domains" ] ~docv:"N"
           ~doc:"Worker domains for the parallel stages of rule preparation \
                 (garbling, equality check, circuit evaluation); only \
                 meaningful with $(b,--garbled-setup).  Output is \
                 byte-identical at any count.")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Run stdin lines through a sender->middlebox->receiver BlindBox connection")
    Term.(const run $ rules $ probable $ window $ domains $ garbled $ setup_domains $ detect_index_arg $ aes_kernel_arg $ tier_arg $ budget_bytes_arg $ budget_ms_arg $ metrics_arg)

(* ---- stats ---- *)

(* Drive a sample trace through a full connection so every pipeline stage
   (tokenizer, DPIEnc, detect, engine, session) registers activity, then
   render the registry.  The trace mixes benign HTML-ish lines with
   payloads carrying actual rule keywords, so hit/match counters are
   non-zero in both Exact and Probable modes. *)
(* shared --socket argument for the daemon-aware subcommands *)
let endpoint_conv =
  Arg.conv
    ( (fun s -> Ok (Bbx_daemon.Daemon.endpoint_of_string s)),
      fun fmt e ->
        Format.pp_print_string fmt (Bbx_daemon.Daemon.endpoint_to_string e) )

let stats_cmd =
  let run socket rules_path probable window sends domains conns garbled setup_domains detect_index aes_kernel format metrics =
    with_metrics metrics @@ fun () ->
    match socket with
    | Some endpoint ->
      (* query a running blindboxd instead of driving a local trace *)
      let client = Bbx_daemon.Client.connect endpoint in
      let s, daemon_metrics =
        Fun.protect
          ~finally:(fun () -> Bbx_daemon.Client.close client)
          (fun () ->
             let s = Bbx_daemon.Client.stats client in
             (* METRICS_REQ postdates the stats record: an old daemon
                answers ERROR (and closes this connection), so degrade to
                the fixed record alone *)
             let m =
               match Bbx_daemon.Client.metrics client Bbx_wire.Wire.Prometheus with
               | body -> Some body
               | exception Bbx_daemon.Client.Server_error _ -> None
               | exception Bbx_daemon.Client.Protocol_error _ -> None
               | exception End_of_file -> None
             in
             (s, m))
      in
      let open Bbx_wire.Wire in
      Printf.printf "connections         %d\n" s.s_connections;
      Printf.printf "total tokens        %d\n" s.s_total_tokens;
      Printf.printf "total keyword hits  %d\n" s.s_total_keyword_hits;
      Printf.printf "alerts              %d\n" s.s_alerts;
      Printf.printf "blocked             %d\n" s.s_blocked;
      (match daemon_metrics with
       | None ->
         Printf.printf "# daemon predates METRICS_REQ; pipeline counters unavailable\n"
       | Some body ->
         (* the daemon-side pipeline slice of the registry *)
         let wanted line =
           let has_prefix p =
             String.length line >= String.length p && String.sub line 0 (String.length p) = p
           in
           (* histograms render a dozen bucket lines each; keep _sum/_count *)
           let is_bucket =
             match String.index_opt line '{' with
             | Some i -> i >= 7 && String.sub line (i - 7) 7 = "_bucket"
             | None -> false
           in
           (has_prefix "bbx_daemon_" || has_prefix "bbx_shard" || has_prefix "bbx_exec_"
            || has_prefix "bbx_tier_"
            || has_prefix "# TYPE bbx_daemon_" || has_prefix "# TYPE bbx_shard"
            || has_prefix "# TYPE bbx_exec_" || has_prefix "# TYPE bbx_tier_")
           && not is_bucket
         in
         Printf.printf "-- daemon pipeline metrics --\n";
         List.iter
           (fun line -> if line <> "" && wanted line then print_endline line)
           (String.split_on_char '\n' body))
    | None ->
    let rules =
      match rules_path with
      | Some path ->
        (match Parser.parse_ruleset (read_file path) with
         | exception Parser.Syntax_error msg ->
           Printf.eprintf "parse error: %s\n" msg;
           exit 1
         | rules -> rules)
      | None -> Datasets.generate Datasets.Emerging_threats ~n:50
    in
    let open Blindbox in
    let config =
      { Session.default_config with
        Session.mode = (if probable then Bbx_dpienc.Dpienc.Probable else Bbx_dpienc.Dpienc.Exact);
        tokenization = (if window then Session.Window else Session.Delimiter);
        rule_prep = (if garbled then Session.Garbled else Session.Direct);
        setup_domains = max 1 setup_domains;
        detect_index;
        aes_kernel }
    in
    (* one keyword per rule woven into otherwise benign traffic *)
    let keywords =
      List.filter_map
        (fun r -> match Rule.keywords r with kw :: _ -> Some kw | [] -> None)
        rules
    in
    let drbg = Bbx_crypto.Drbg.create "blindbox-stats-trace" in
    let payload_for i =
      let benign = Bbx_net.Page.gen_html drbg ~bytes:512 in
      match keywords with
      | [] -> benign
      | kws ->
        let kw = List.nth kws (i mod List.length kws) in
        Printf.sprintf "GET /trace-%d?q=%s HTTP/1.1\r\n%s" i kw benign
    in
    if domains > 0 then begin
      (* same trace, spread round-robin over [conns] connections through a
         domain-sharded middlebox *)
      Session.Fleet.with_fleet ~config ~domains ~conns ~rules @@ fun fleet ->
      for i = 1 to sends do
        ignore (Session.Fleet.submit fleet ~conn:(i mod conns) (payload_for i) : int)
      done;
      Session.Fleet.drain fleet ~f:(fun ~seq:_ ~conn_id:_ _ -> ())
    end
    else begin
      let session, _ = Session.establish ~config ~rules () in
      for i = 1 to sends do
        (try ignore (Session.send session (payload_for i) : Session.delivery)
         with Session.Connection_blocked -> ())
      done
    end;
    match format with
    | `Prometheus -> print_string (Obs.render_prometheus ())
    | `Jsonl -> print_string (Obs.dump_jsonl ())
  in
  let rules =
    Arg.(value & opt (some file) None
         & info [ "rules" ] ~docv:"RULES"
           ~doc:"Snort-dialect rules file (default: 50 synthetic Emerging-Threats rules).")
  in
  let probable = Arg.(value & flag & info [ "probable-cause" ] ~doc:"Protocol III mode.") in
  let window = Arg.(value & flag & info [ "window" ] ~doc:"Window tokenization.") in
  let sends =
    Arg.(value & opt int 20 & info [ "sends" ] ~doc:"Number of payloads in the sample trace.")
  in
  let domains =
    Arg.(value & opt int 0
         & info [ "domains" ] ~docv:"N"
           ~doc:"Drive the trace through a middlebox sharded across $(docv) \
                 OCaml domains (0 = one sequential connection, the default).")
  in
  let conns =
    Arg.(value & opt int 4
         & info [ "conns" ] ~docv:"C"
           ~doc:"Connections to spread the trace over in sharded mode.")
  in
  let garbled =
    Arg.(value & flag
         & info [ "garbled-setup" ]
           ~doc:"Run real obfuscated rule encryption during setup so the \
                 bbx_ruleprep_* counters (circuits, circuit bytes, OT bytes, \
                 garble/eval seconds) are populated.  Expect roughly a second \
                 per distinct chunk; pair with a small $(b,--rules) file.")
  in
  let setup_domains =
    Arg.(value & opt int 1
         & info [ "setup-domains" ] ~docv:"N"
           ~doc:"Worker domains for the parallel stages of rule preparation; \
                 only meaningful with $(b,--garbled-setup).")
  in
  let format =
    Arg.(value
         & opt (enum [ ("prometheus", `Prometheus); ("jsonl", `Jsonl) ]) `Prometheus
         & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: prometheus or jsonl.")
  in
  let socket =
    Arg.(value & opt (some endpoint_conv) None
         & info [ "socket" ] ~docv:"ENDPOINT"
           ~doc:"Query a running blindboxd at $(docv) (a Unix-socket path \
                 or tcp:HOST:PORT) instead of driving a local trace.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Drive a sample trace through a BlindBox connection and render the metric registry")
    Term.(const run $ socket $ rules $ probable $ window $ sends $ domains $ conns $ garbled $ setup_domains $ detect_index_arg $ aes_kernel_arg $ format $ metrics_arg)

(* ---- serve ---- *)

let serve_cmd =
  let run socket rules_path probable domains detect_index aes_kernel tier
      budget_bytes budget_ms high_water rebalance metrics_port trace_out
      metrics =
    with_metrics metrics @@ fun () ->
    let rules =
      match rules_path with
      | Some path ->
        (match Parser.parse_ruleset (read_file path) with
         | exception Parser.Syntax_error msg ->
           Printf.eprintf "parse error: %s\n" msg;
           exit 1
         | rules -> rules)
      | None -> Datasets.generate Datasets.Emerging_threats ~n:50
    in
    let endpoint = Bbx_daemon.Daemon.endpoint_of_string socket in
    let mode =
      if probable then Bbx_dpienc.Dpienc.Probable else Bbx_dpienc.Dpienc.Exact
    in
    let metrics_ep =
      Option.map (fun p -> Bbx_daemon.Daemon.Tcp ("127.0.0.1", p)) metrics_port
    in
    let cfg =
      Bbx_daemon.Daemon.config ~mode ?domains ~index:detect_index
        ~kernel:aes_kernel ~tier
        ~budget:(budget_of ~budget_bytes ~budget_ms) ~high_water
        ?rebalance_every:rebalance ?metrics:metrics_ep ?trace_out ~endpoint
        ~rules ()
    in
    let stopping = Atomic.make false in
    let on_signal _ = Atomic.set stopping true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Printf.printf "# blindboxd listening on %s (%d rules, %s mode, tier %d)\n%!"
      (Bbx_daemon.Daemon.endpoint_to_string endpoint)
      (List.length rules)
      (if probable then "probable-cause" else "exact")
      (Classify.rank tier);
    (match metrics_port with
     | Some p -> Printf.printf "# metrics on http://127.0.0.1:%d/metrics\n%!" p
     | None -> ());
    (match trace_out with
     | Some f -> Printf.printf "# flight recorder on; dumping to %s at exit\n%!" f
     | None -> ());
    Bbx_daemon.Daemon.run ~stop:(fun () -> Atomic.get stopping) cfg;
    Printf.printf "# blindboxd stopped\n%!"
  in
  let socket =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ENDPOINT"
           ~doc:"Where to listen: a Unix-socket path or tcp:HOST:PORT.")
  in
  let rules =
    Arg.(value & opt (some file) None
         & info [ "rules" ] ~docv:"RULES"
           ~doc:"Snort-dialect rules file (default: 50 synthetic Emerging-Threats rules).")
  in
  let probable = Arg.(value & flag & info [ "probable-cause" ] ~doc:"Protocol III mode.") in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N" ~doc:"Shard-pool worker domains.")
  in
  let high_water =
    Arg.(value & opt int (1 lsl 20)
         & info [ "high-water" ] ~docv:"BYTES"
           ~doc:"Per-connection output-buffer bytes before reads from a \
                 slow consumer pause.")
  in
  let rebalance =
    Arg.(value & opt (some float) None
         & info [ "rebalance" ] ~docv:"SECS"
           ~doc:"Rebalance monitored connections across shard domains every \
                 $(docv) seconds (live migration through each connection's \
                 FIFO mailbox; verdicts are unaffected).  Off by default.")
  in
  let metrics_port =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve live metrics over HTTP/1.0 on 127.0.0.1:$(docv): \
                 GET /metrics (Prometheus text), /metrics.jsonl (JSONL), \
                 /trace (Chrome trace-event JSON).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Enable the flight recorder and dump its window to $(docv) \
                 at shutdown (JSONL when $(docv) ends in .jsonl, Chrome \
                 trace-event JSON otherwise).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run blindboxd: the BlindBox middlebox as a network daemon")
    Term.(const run $ socket $ rules $ probable $ domains $ detect_index_arg $ aes_kernel_arg $ tier_arg $ budget_bytes_arg $ budget_ms_arg $ high_water $ rebalance $ metrics_port $ trace_out $ metrics_arg)

(* ---- trace ---- *)

let trace_cmd =
  let run socket out scope metrics =
    with_metrics metrics @@ fun () ->
    let endpoint = Bbx_daemon.Daemon.endpoint_of_string socket in
    let client = Bbx_daemon.Client.connect endpoint in
    let body =
      Fun.protect
        ~finally:(fun () -> Bbx_daemon.Client.close client)
        (fun () ->
           match Bbx_daemon.Client.metrics client scope with
           | body -> body
           | exception Bbx_daemon.Client.Server_error { code; message } ->
             Printf.eprintf
               "daemon error %d: %s (daemon predates METRICS_REQ?)\n" code message;
             exit 1)
    in
    match out with
    | None -> print_string body
    | Some path ->
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      Printf.eprintf "# wrote %d bytes to %s\n" (String.length body) path
  in
  let socket =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ENDPOINT"
           ~doc:"Daemon endpoint: a Unix-socket path or tcp:HOST:PORT.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  let scope =
    Arg.(value
         & opt
             (enum
                [ ("chrome", Bbx_wire.Wire.Trace);
                  ("prometheus", Bbx_wire.Wire.Prometheus);
                  ("jsonl", Bbx_wire.Wire.Jsonl) ])
             Bbx_wire.Wire.Trace
         & info [ "format" ] ~docv:"FORMAT"
           ~doc:"$(b,chrome) (flight-recorder window as Chrome trace-event \
                 JSON, the default — load in chrome://tracing or Perfetto), \
                 or the metric registry as $(b,prometheus)/$(b,jsonl).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Capture a running blindboxd's flight-recorder window (or metric registry)")
    Term.(const run $ socket $ out $ scope $ metrics_arg)

(* ---- migrate ---- *)

(* Live-migration demo: stream stdin lines through a monitored connection
   on SRC, move the connection to DST halfway (export -> import, engine
   state and all), and keep streaming — sender-side keys and salt
   counters carry over untouched.  Sticky verdicts from the first half
   re-report identically on DST, demonstrating state continuity. *)
let migrate_cmd =
  let run src dst probable seed metrics =
    with_metrics metrics @@ fun () ->
    let module Client = Bbx_daemon.Client in
    let module Dpienc = Bbx_dpienc.Dpienc in
    let module Wire = Bbx_wire.Wire in
    let mode = if probable then Dpienc.Probable else Dpienc.Exact in
    let features =
      Wire.feature_migrate lor (if probable then Wire.feature_tiered else 0)
    in
    let lines = ref [] in
    (try
       while true do lines := input_line stdin :: !lines done
     with End_of_file -> ());
    let lines = Array.of_list (List.rev !lines) in
    let n = Array.length lines in
    if n = 0 then begin
      Printf.eprintf "migrate: no stdin lines to stream\n";
      exit 1
    end;
    let s =
      Client.establish ~features
        (Bbx_daemon.Daemon.endpoint_of_string src) ~mode ~salt0:0 ~seed
    in
    let sender = Dpienc.sender_create mode s.Client.sc_key ~salt0:0 in
    let writer =
      if probable then
        Some (Bbx_tls.Record.create ~key:s.Client.sc_k_ssl ~direction:"client->server" ())
      else None
    in
    let k_ssl = if probable then Some s.Client.sc_k_ssl else None in
    let base = ref 0 in
    let send_line s i line =
      let buf = Buffer.create (4 * String.length line) in
      ignore
        (Dpienc.sender_encrypt_into sender ?k_ssl ~base:!base
           ~tokenization:(Dpienc.Delimiter { short_units = false }) line buf
         : int);
      base := !base + String.length line;
      (match writer with
       | Some w ->
         Client.send_record s.Client.sc_client ~seq:i
           (Bbx_tls.Record.seal w ("T" ^ line))
       | None -> ());
      Client.send_records s.Client.sc_client ~seq:i (Buffer.contents buf);
      let _seq, status, verdicts = Client.recv_verdict s.Client.sc_client in
      (match status with
       | Wire.Clean -> Printf.printf "clean   #%d\n%!" i
       | Wire.Dropped -> Printf.printf "dropped #%d (connection blocked)\n%!" i
       | Wire.Alerts ->
         List.iter
           (fun v ->
              Printf.printf "ALERT   #%d sid:%d %s\n%!" i v.Wire.v_sid v.Wire.v_msg)
           verdicts)
    in
    let half = (n + 1) / 2 in
    Printf.printf "# streaming %d/%d lines to %s\n%!" half n src;
    for i = 0 to half - 1 do send_line s i lines.(i) done;
    let s, pending = Client.migrate s (Bbx_daemon.Daemon.endpoint_of_string dst) in
    List.iter
      (fun (seq, _status, vs) ->
         List.iter
           (fun v ->
              Printf.printf "ALERT   #%d sid:%d %s (in flight at export)\n%!"
                seq v.Wire.v_sid v.Wire.v_msg)
           vs)
      pending;
    Printf.printf "# migrated connection to %s (conn_id %d there)\n%!" dst
      s.Client.sc_conn_id;
    for i = half to n - 1 do send_line s i lines.(i) done;
    Client.close s.Client.sc_client;
    Printf.printf "# done: %d lines, migrated after %d\n%!" n half
  in
  let src =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SRC" ~doc:"Source daemon endpoint.")
  in
  let dst =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"DST" ~doc:"Destination daemon endpoint.")
  in
  let probable = Arg.(value & flag & info [ "probable-cause" ] ~doc:"Protocol III mode.") in
  let seed = Arg.(value & opt string "blindbox-migrate" & info [ "seed" ] ~doc:"Handshake seed.") in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Stream stdin through a monitored connection, live-migrating it \
             between two blindboxd daemons halfway")
    Term.(const run $ src $ dst $ probable $ seed $ metrics_arg)

(* ---- loadgen ---- *)

let loadgen_cmd =
  let run socket conns sends rate inflight payload_bytes hit_rate probable seed json metrics =
    with_metrics metrics @@ fun () ->
    let mode =
      if probable then Bbx_dpienc.Dpienc.Probable else Bbx_dpienc.Dpienc.Exact
    in
    let cfg =
      Bbx_daemon.Loadgen.cfg ~conns ~sends ~rate ~inflight ~payload_bytes
        ~hit_rate ~mode ~seed
        (Bbx_daemon.Daemon.endpoint_of_string socket)
    in
    let report = Bbx_daemon.Loadgen.run cfg in
    if json then print_endline (Bbx_daemon.Loadgen.report_json report)
    else Bbx_daemon.Loadgen.print_report stdout report
  in
  let socket =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ENDPOINT"
           ~doc:"Daemon endpoint: a Unix-socket path or tcp:HOST:PORT.")
  in
  let conns = Arg.(value & opt int 4 & info [ "conns" ] ~doc:"Concurrent connections.") in
  let sends = Arg.(value & opt int 200 & info [ "sends" ] ~doc:"TOKEN_STREAM frames per connection.") in
  let rate =
    Arg.(value & opt float 0.
         & info [ "rate" ] ~docv:"FPS"
           ~doc:"Aggregate target rate in frames/s (0 = closed loop, the default).")
  in
  let inflight = Arg.(value & opt int 4 & info [ "inflight" ] ~doc:"Max outstanding frames per connection.") in
  let payload_bytes = Arg.(value & opt int 1024 & info [ "payload-bytes" ] ~doc:"Plaintext bytes per frame.") in
  let hit_rate =
    Arg.(value & opt float 0.02
         & info [ "hit-rate" ] ~doc:"Fraction of frames carrying an alert-rule keyword.")
  in
  let probable = Arg.(value & flag & info [ "probable-cause" ] ~doc:"Protocol III mode.") in
  let seed = Arg.(value & opt string "loadgen" & info [ "seed" ] ~doc:"Payload/handshake seed.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running blindboxd with N concurrent senders and report latency")
    Term.(const run $ socket $ conns $ sends $ rate $ inflight $ payload_bytes $ hit_rate $ probable $ seed $ json $ metrics_arg)

let () =
  let info = Cmd.info "blindbox" ~version:"1.0.0" ~doc:"Deep packet inspection over encrypted traffic" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ classify_cmd; generate_cmd; tokenize_cmd; inspect_cmd; stats_cmd;
            serve_cmd; loadgen_cmd; trace_cmd; migrate_cmd ]))
