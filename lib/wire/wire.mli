(** The blindboxd wire protocol: a compact length-prefixed binary framing
    of the BlindBox connection lifecycle.

    Every frame on the socket is

    {v u32_be payload_length | payload v}

    where [payload.[0]] is the message type byte and the rest is the
    message body ({!decode} / {!encode} work on whole payloads; the
    4-byte length prefix is handled by {!encode_frame} on the way out and
    {!Framer} on the way in).  All integers are big-endian and unsigned
    unless noted.  A connection's lifecycle is

    {v client                         server (blindboxd)
       HELLO{version,mode,salt0}  ->
                                  <-  HELLO_OK{conn_id,mode,rules text}
       RULE_SETUP{chunk,enc pairs}->
                                  <-  SETUP_OK
       TOKEN_STREAM{seq,records}  ->
                                  <-  VERDICT{seq,status,verdicts}
       SALT_RESET{salt0}          ->                       (no reply)
       RULE_UPDATE{...}           ->
                                  <-  UPDATE_OK{added}
       STATS_REQ                  ->
                                  <-  STATS{...}
       BYE                        ->                       (server closes) v}

    [RULE_SETUP] carries the per-connection obfuscated rule encryptions
    — the [(chunk, AES_k(chunk))] pairs {!Blindbox.Ruleprep} produces on
    the endpoint — so the middlebox never holds [k].  [TOKEN_STREAM]
    bodies are the existing {!Bbx_dpienc.Dpienc} 10/26-byte records,
    verbatim.  [STATS_REQ] is honoured in any connection state, so a
    monitoring client can query a daemon without a handshake.

    {b Feature negotiation}: [HELLO] may carry one trailing feature-bits
    byte.  [features = 0] encodes as the legacy 11-byte body, so old
    daemons keep accepting new clients with no feature needs; a daemon
    that parses the byte implicitly supports every feature it echoes no
    error for.  [METRICS_REQ]/[METRICS] ({!feature_metrics}) expose the
    full {!Bbx_obs} registry — Prometheus text, JSONL, or a flight-recorder
    trace window — from a running daemon; like [STATS_REQ] it is honoured
    in any connection state.  Against an old daemon a [METRICS_REQ] draws
    an [ERROR{err_malformed}] (unknown type byte), which clients treat as
    "not supported".  [RECORD_STREAM]/[VERDICT_TIERED] ({!feature_tiered})
    carry the tiered-inspection extension: a client that advertised the
    bit may ship sealed SSL records ahead of each token delivery (so the
    daemon's engines can run Protocol III probable-cause escalation) and
    receives its verdicts as [VERDICT_TIERED] — identical to [VERDICT]
    plus one {!detail} byte per verdict.  Clients that did not advertise
    it keep receiving legacy [VERDICT] frames.
    [CONN_EXPORT]/[CONN_STATE]/[CONN_IMPORT] ({!feature_migrate}) carry
    live connection migration: a streaming client asks the daemon to
    drain and serialise its connection ([CONN_EXPORT] -> [CONN_STATE]),
    then resumes it on another daemon by sending [CONN_IMPORT] in place
    of [RULE_SETUP] — skipping rule setup entirely, since the snapshot
    carries the prepared rule encryptions and every counter.

    Anything the decoder cannot parse raises {!Malformed}; servers answer
    with an [ERROR] frame and close that one connection. *)

(** Raised on any frame the decoder rejects: bad length, unknown type
    byte, truncated body, trailing bytes, or an over-limit frame. *)
exception Malformed of string

(** Hard upper bound on a frame payload (16 MiB): anything longer is
    rejected before buffering, so a garbage length prefix cannot make the
    server allocate unboundedly. *)
val max_frame_bytes : int

(** Protocol version spoken by this implementation. *)
val version : int

(** How a verdict was reached (the tiered engine's
    {!Bbx_mbox.Engine.detail}): Protocol I exact hit, Protocol II
    composite match, Protocol III regex confirmation over the recovered
    stream, or escalation-budget exhaustion ("flagged, not matched"). *)
type detail = [ `Exact_hit | `Composite_match | `Regex_match | `Budget_exceeded ]

(** One rule-level verdict as reported over the wire. *)
type verdict = {
  v_sid : int;                               (** rule sid (0 when absent) *)
  v_via : [ `Exact_match | `Probable_cause ];
  v_detail : detail;
  (** carried explicitly by [VERDICT_TIERED]; inferred from [v_via] when
      decoding a legacy [VERDICT] ([`Exact_match] -> [`Exact_hit],
      [`Probable_cause] -> [`Regex_match]) *)
  v_msg : string;                            (** rule msg (may be empty) *)
}

(** The legacy-inference mapping above, exposed for encoders. *)
val detail_of_via : [ `Exact_match | `Probable_cause ] -> detail

(** Reply status of a [VERDICT] frame. *)
type status =
  | Clean    (** delivery inspected, no new rule verdicts *)
  | Alerts   (** delivery inspected, fresh verdicts attached *)
  | Dropped  (** the connection is blocked; the delivery was not inspected *)

(** Aggregate middlebox statistics (mirrors {!Bbx_mbox.Shard.stats}). *)
type stats = {
  s_connections : int;
  s_total_tokens : int;
  s_total_keyword_hits : int;
  s_alerts : int;
  s_blocked : int;
}

(** Feature bit advertised in the [HELLO] trailing byte: the client
    understands [METRICS]/[METRICS_REQ]. *)
val feature_metrics : int

(** Feature bit advertised in the [HELLO] trailing byte: the client
    speaks the tiered-inspection extension — it may ship [RECORD_STREAM]
    frames and wants its verdicts as [VERDICT_TIERED] (explicit detail
    byte) instead of legacy [VERDICT]. *)
val feature_tiered : int

(** Feature bit advertised in the [HELLO] trailing byte: the client
    speaks live connection migration ([CONN_EXPORT]/[CONN_STATE]/
    [CONN_IMPORT]). *)
val feature_migrate : int

(** What a [METRICS_REQ] asks for: the metric registry as Prometheus text
    ({!Bbx_obs.Obs.render_prometheus}) or JSONL ({!Bbx_obs.Obs.dump_jsonl}),
    or the flight-recorder window as Chrome-trace JSON
    ({!Bbx_obs.Trace.dump_chrome}). *)
type metrics_scope = Prometheus | Jsonl | Trace

type msg =
  | Hello of {
      version : int;
      mode : Bbx_dpienc.Dpienc.mode;
      salt0 : int;
      features : int;  (** feature bits; [0] encodes as the legacy body *)
    }
  | Hello_ok of { conn_id : int; mode : Bbx_dpienc.Dpienc.mode; rules_text : string }
  | Rule_setup of { pairs : (string * string) array }
      (** [(chunk, enc)] pairs: chunk is [Tokenizer.token_len] bytes, enc
          is the 16-byte [AES_k(chunk)] *)
  | Setup_ok
  | Token_stream of { seq : int; records : string }
      (** [records] is a {!Bbx_dpienc.Dpienc} wire encoding, verbatim *)
  | Verdict of { seq : int; status : status; verdicts : verdict list }
  | Salt_reset of { salt0 : int }
  | Rule_update of {
      remove_sids : int list;
      add_text : string;                  (** added rules, Snort syntax *)
      pairs : (string * string) array;    (** full post-update enc table *)
    }
  | Update_ok of { added : int }
  | Stats_req
  | Stats of stats
  | Bye
  | Error of { code : int; message : string }
  | Metrics_req of { scope : metrics_scope }
  | Metrics of { scope : metrics_scope; body : string }
      (** [body] is the rendered registry/trace, verbatim (rest of frame) *)
  | Record_stream of { seq : int; record : string }
      (** one sealed SSL record of the connection's stream, shipped ahead
          of the [TOKEN_STREAM] carrying the matching tokens so the
          middlebox can run Protocol III probable-cause escalation
          ({!feature_tiered}).  No reply; an old daemon answers
          [ERROR{err_malformed}] (unknown type byte), like [METRICS_REQ]. *)
  | Verdict_tiered of { seq : int; status : status; verdicts : verdict list }
      (** [VERDICT] with an explicit per-verdict {!detail} byte; sent in
          place of [VERDICT] to clients that advertised {!feature_tiered}. *)
  | Conn_export
      (** drain my connection through its shard mailbox, serialise it and
          send it back ({!feature_migrate}).  The daemon replies with any
          still-pending [VERDICT]s, then one [CONN_STATE]; the connection
          is gone from this daemon afterwards (further traffic frames
          draw [ERROR{err_protocol}]). *)
  | Conn_state of { state : string }
      (** the serialised connection ({!Bbx_mbox.Shard.export_conn} blob,
          rest of frame, verbatim) *)
  | Conn_import of { state : string }
      (** resume a previously exported connection on this daemon; legal
          exactly where [RULE_SETUP] is (after [HELLO_OK]), replacing it.
          The daemon validates the blob (mode must match, state must
          parse) and replies [SETUP_OK], or [ERROR{err_setup}]. *)

(** [ERROR] codes: unparseable frame, message illegal in this connection
    state, version/mode mismatch at HELLO, rule setup/update rejected,
    server-side failure. *)

val err_malformed : int

val err_protocol : int

val err_version : int

val err_setup : int

val err_internal : int

(** [encode_frame buf msg] appends the framed encoding (length prefix
    included) to [buf]. *)
val encode_frame : Buffer.t -> msg -> unit

(** [encode_frame_string msg] — the framed encoding as a fresh string. *)
val encode_frame_string : msg -> string

(** [decode payload] parses one frame payload (without its length
    prefix).  Raises {!Malformed}. *)
val decode : string -> msg

(** Incremental frame extraction from a byte stream: {!Framer.feed}
    whatever the socket produced, then {!Framer.next} until it returns
    [None].  Raises {!Malformed} as soon as a length prefix exceeds
    {!max_frame_bytes} (without waiting for the body). *)
module Framer : sig
  type t

  val create : ?max_frame:int -> unit -> t

  val feed : t -> bytes -> int -> int -> unit

  (** Next complete frame payload, length prefix stripped. *)
  val next : t -> string option

  (** Bytes buffered but not yet returned as frames. *)
  val buffered : t -> int
end
