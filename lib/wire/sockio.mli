(** Socket-robustness basics shared by the daemon, the load generator and
    the tests: SIGPIPE is turned off once per process, every blocking
    primitive retries [EINTR], and exact-length read/write loops handle
    partial I/O.

    These are the boring invariants a network daemon must hold: a peer
    closing mid-write must surface as [EPIPE] (an exception we can catch
    per-connection), not kill the process; a signal must never make a
    half-finished frame look like a short read. *)

(** [ignore_sigpipe ()] — idempotent; a write to a closed peer then
    raises [Unix.Unix_error (EPIPE, _, _)] instead of killing the
    process.  No-op on platforms without [SIGPIPE]. *)
val ignore_sigpipe : unit -> unit

(** [retry f] runs [f ()], retrying as long as it raises
    [Unix.Unix_error (EINTR, _, _)]. *)
val retry : (unit -> 'a) -> 'a

(** [read fd buf off len] — [Unix.read] with [EINTR] retry (returns 0 at
    EOF, like the primitive). *)
val read : Unix.file_descr -> Bytes.t -> int -> int -> int

(** [write fd buf off len] — [Unix.write] with [EINTR] retry. *)
val write : Unix.file_descr -> Bytes.t -> int -> int -> int

(** [really_read fd buf off len] reads exactly [len] bytes, looping over
    short reads.  Raises [End_of_file] if the peer closes first. *)
val really_read : Unix.file_descr -> Bytes.t -> int -> int -> unit

(** [really_write fd buf off len] writes exactly [len] bytes, looping
    over short writes. *)
val really_write : Unix.file_descr -> Bytes.t -> int -> int -> unit

(** [write_string fd s] — {!really_write} the whole string. *)
val write_string : Unix.file_descr -> string -> unit

(** [accept ?cloexec fd] — [Unix.accept] with [EINTR] retry. *)
val accept : ?cloexec:bool -> Unix.file_descr -> Unix.file_descr * Unix.sockaddr
