module Dpienc = Bbx_dpienc.Dpienc
module Tokenizer = Bbx_tokenizer.Tokenizer

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let max_frame_bytes = 16 * 1024 * 1024

let version = 1

let chunk_len = Tokenizer.token_len
let enc_len = 16

type detail = [ `Exact_hit | `Composite_match | `Regex_match | `Budget_exceeded ]

type verdict = {
  v_sid : int;
  v_via : [ `Exact_match | `Probable_cause ];
  v_detail : detail;
  v_msg : string;
}

type status = Clean | Alerts | Dropped

type stats = {
  s_connections : int;
  s_total_tokens : int;
  s_total_keyword_hits : int;
  s_alerts : int;
  s_blocked : int;
}

(* HELLO feature bits *)
let feature_metrics = 1
let feature_tiered = 2
let feature_migrate = 4

type metrics_scope = Prometheus | Jsonl | Trace

type msg =
  | Hello of { version : int; mode : Dpienc.mode; salt0 : int; features : int }
  | Hello_ok of { conn_id : int; mode : Dpienc.mode; rules_text : string }
  | Rule_setup of { pairs : (string * string) array }
  | Setup_ok
  | Token_stream of { seq : int; records : string }
  | Verdict of { seq : int; status : status; verdicts : verdict list }
  | Salt_reset of { salt0 : int }
  | Rule_update of {
      remove_sids : int list;
      add_text : string;
      pairs : (string * string) array;
    }
  | Update_ok of { added : int }
  | Stats_req
  | Stats of stats
  | Bye
  | Error of { code : int; message : string }
  | Metrics_req of { scope : metrics_scope }
  | Metrics of { scope : metrics_scope; body : string }
  | Record_stream of { seq : int; record : string }
  | Verdict_tiered of { seq : int; status : status; verdicts : verdict list }
  | Conn_export
  | Conn_state of { state : string }
  | Conn_import of { state : string }

let err_malformed = 1
let err_protocol = 2
let err_version = 3
let err_setup = 4
let err_internal = 5

(* type bytes *)
let t_hello = 1
let t_hello_ok = 2
let t_rule_setup = 3
let t_setup_ok = 4
let t_token_stream = 5
let t_verdict = 6
let t_salt_reset = 7
let t_rule_update = 8
let t_update_ok = 9
let t_stats_req = 10
let t_stats = 11
let t_bye = 12
let t_error = 13
let t_metrics_req = 14
let t_metrics = 15
let t_record_stream = 16
let t_verdict_tiered = 17
let t_conn_export = 18
let t_conn_state = 19
let t_conn_import = 20

let mode_byte = function Dpienc.Exact -> 0 | Dpienc.Probable -> 1

let mode_of_byte = function
  | 0 -> Dpienc.Exact
  | 1 -> Dpienc.Probable
  | b -> malformed "bad mode byte %d" b

let via_byte = function `Exact_match -> 0 | `Probable_cause -> 1

let via_of_byte = function
  | 0 -> `Exact_match
  | 1 -> `Probable_cause
  | b -> malformed "bad via byte %d" b

let detail_byte = function
  | `Exact_hit -> 0
  | `Composite_match -> 1
  | `Regex_match -> 2
  | `Budget_exceeded -> 3

let detail_of_byte = function
  | 0 -> `Exact_hit
  | 1 -> `Composite_match
  | 2 -> `Regex_match
  | 3 -> `Budget_exceeded
  | b -> malformed "bad detail byte %d" b

(* What a legacy (detail-less) VERDICT entry implies: exact-path verdicts
   are at least an exact hit, probable-cause ones a regex match. *)
let detail_of_via = function
  | `Exact_match -> `Exact_hit
  | `Probable_cause -> `Regex_match

let status_byte = function Clean -> 0 | Alerts -> 1 | Dropped -> 2

let status_of_byte = function
  | 0 -> Clean
  | 1 -> Alerts
  | 2 -> Dropped
  | b -> malformed "bad status byte %d" b

let scope_byte = function Prometheus -> 0 | Jsonl -> 1 | Trace -> 2

let scope_of_byte = function
  | 0 -> Prometheus
  | 1 -> Jsonl
  | 2 -> Trace
  | b -> malformed "bad metrics scope byte %d" b

(* ---------- writer ---------- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  if v < 0 || v > 0xffff then invalid_arg "Wire.put_u16";
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Wire.put_u32";
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let put_i64 buf v =
  let v64 = Int64.of_int v in
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v64 (8 * i)) 0xffL)))
  done

let put_str16 buf s =
  put_u16 buf (String.length s);
  Buffer.add_string buf s

let put_str32 buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_pairs buf pairs =
  put_u32 buf (Array.length pairs);
  Array.iter
    (fun (chunk, enc) ->
       if String.length chunk <> chunk_len then
         invalid_arg "Wire: rule chunk must be token_len bytes";
       if String.length enc <> enc_len then
         invalid_arg "Wire: rule encryption must be 16 bytes";
       Buffer.add_string buf chunk;
       Buffer.add_string buf enc)
    pairs

(* ---------- reader ---------- *)

type cursor = { src : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.src then
    malformed "truncated frame (need %d bytes at %d of %d)" n c.pos
      (String.length c.src)

let get_u8 c =
  need c 1;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  need c 2;
  let v = (Char.code c.src.[c.pos] lsl 8) lor Char.code c.src.[c.pos + 1] in
  c.pos <- c.pos + 2;
  v

let get_u32 c =
  need c 4;
  let v =
    (Char.code c.src.[c.pos] lsl 24)
    lor (Char.code c.src.[c.pos + 1] lsl 16)
    lor (Char.code c.src.[c.pos + 2] lsl 8)
    lor Char.code c.src.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let get_i64 c =
  need c 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.src.[c.pos]));
    c.pos <- c.pos + 1
  done;
  (* salts are OCaml ints on both sides; 63 bits is plenty *)
  Int64.to_int !v

let get_bytes c n =
  need c n;
  let s = String.sub c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_str16 c = get_bytes c (get_u16 c)

let get_str32 c = get_bytes c (get_u32 c)

let get_rest c =
  let s = String.sub c.src c.pos (String.length c.src - c.pos) in
  c.pos <- String.length c.src;
  s

let get_pairs c =
  let n = get_u32 c in
  (* each pair is chunk_len + enc_len bytes: reject counts the body cannot
     hold before allocating the array *)
  if n * (chunk_len + enc_len) > String.length c.src - c.pos then
    malformed "rule table count %d exceeds frame body" n;
  Array.init n (fun _ ->
      let chunk = get_bytes c chunk_len in
      let enc = get_bytes c enc_len in
      (chunk, enc))

let finish c msg_name =
  if c.pos <> String.length c.src then
    malformed "%s: %d trailing bytes" msg_name (String.length c.src - c.pos)

(* ---------- codec ---------- *)

let encode_payload buf = function
  | Hello { version; mode; salt0; features } ->
    put_u8 buf t_hello;
    put_u8 buf version;
    put_u8 buf (mode_byte mode);
    put_i64 buf salt0;
    (* the features byte is a trailing extension: [features = 0] encodes
       as the legacy 11-byte body, so a new client with no feature needs
       stays acceptable to a pre-features daemon *)
    if features <> 0 then put_u8 buf features
  | Hello_ok { conn_id; mode; rules_text } ->
    put_u8 buf t_hello_ok;
    put_u32 buf conn_id;
    put_u8 buf (mode_byte mode);
    Buffer.add_string buf rules_text
  | Rule_setup { pairs } ->
    put_u8 buf t_rule_setup;
    put_pairs buf pairs
  | Setup_ok -> put_u8 buf t_setup_ok
  | Token_stream { seq; records } ->
    put_u8 buf t_token_stream;
    put_u32 buf seq;
    Buffer.add_string buf records
  | Verdict { seq; status; verdicts } ->
    put_u8 buf t_verdict;
    put_u32 buf seq;
    put_u8 buf (status_byte status);
    put_u16 buf (List.length verdicts);
    List.iter
      (fun v ->
         put_u32 buf v.v_sid;
         put_u8 buf (via_byte v.v_via);
         put_str16 buf v.v_msg)
      verdicts
  | Salt_reset { salt0 } ->
    put_u8 buf t_salt_reset;
    put_i64 buf salt0
  | Rule_update { remove_sids; add_text; pairs } ->
    put_u8 buf t_rule_update;
    put_u16 buf (List.length remove_sids);
    List.iter (put_u32 buf) remove_sids;
    put_str32 buf add_text;
    put_pairs buf pairs
  | Update_ok { added } ->
    put_u8 buf t_update_ok;
    put_u32 buf added
  | Stats_req -> put_u8 buf t_stats_req
  | Stats s ->
    put_u8 buf t_stats;
    put_i64 buf s.s_connections;
    put_i64 buf s.s_total_tokens;
    put_i64 buf s.s_total_keyword_hits;
    put_i64 buf s.s_alerts;
    put_i64 buf s.s_blocked
  | Bye -> put_u8 buf t_bye
  | Error { code; message } ->
    put_u8 buf t_error;
    put_u16 buf code;
    put_str16 buf message
  | Metrics_req { scope } ->
    put_u8 buf t_metrics_req;
    put_u8 buf (scope_byte scope)
  | Metrics { scope; body } ->
    put_u8 buf t_metrics;
    put_u8 buf (scope_byte scope);
    Buffer.add_string buf body
  | Record_stream { seq; record } ->
    put_u8 buf t_record_stream;
    put_u32 buf seq;
    Buffer.add_string buf record
  | Verdict_tiered { seq; status; verdicts } ->
    put_u8 buf t_verdict_tiered;
    put_u32 buf seq;
    put_u8 buf (status_byte status);
    put_u16 buf (List.length verdicts);
    List.iter
      (fun v ->
         put_u32 buf v.v_sid;
         put_u8 buf (via_byte v.v_via);
         put_u8 buf (detail_byte v.v_detail);
         put_str16 buf v.v_msg)
      verdicts
  | Conn_export -> put_u8 buf t_conn_export
  | Conn_state { state } ->
    put_u8 buf t_conn_state;
    Buffer.add_string buf state
  | Conn_import { state } ->
    put_u8 buf t_conn_import;
    Buffer.add_string buf state

let encode_frame buf msg =
  let body = Buffer.create 64 in
  encode_payload body msg;
  let n = Buffer.length body in
  if n > max_frame_bytes then invalid_arg "Wire.encode_frame: frame too large";
  put_u32 buf n;
  Buffer.add_buffer buf body

let encode_frame_string msg =
  let buf = Buffer.create 64 in
  encode_frame buf msg;
  Buffer.contents buf

let decode payload =
  if String.length payload = 0 then malformed "empty frame";
  let c = { src = payload; pos = 0 } in
  let ty = get_u8 c in
  let msg =
    if ty = t_hello then begin
      let version = get_u8 c in
      let mode = mode_of_byte (get_u8 c) in
      let salt0 = get_i64 c in
      let features = if c.pos < String.length c.src then get_u8 c else 0 in
      Hello { version; mode; salt0; features }
    end
    else if ty = t_hello_ok then begin
      let conn_id = get_u32 c in
      let mode = mode_of_byte (get_u8 c) in
      let rules_text = get_rest c in
      Hello_ok { conn_id; mode; rules_text }
    end
    else if ty = t_rule_setup then Rule_setup { pairs = get_pairs c }
    else if ty = t_setup_ok then Setup_ok
    else if ty = t_token_stream then begin
      let seq = get_u32 c in
      let records = get_rest c in
      Token_stream { seq; records }
    end
    else if ty = t_verdict then begin
      let seq = get_u32 c in
      let status = status_of_byte (get_u8 c) in
      let n = get_u16 c in
      let verdicts =
        List.init n (fun _ ->
            let v_sid = get_u32 c in
            let v_via = via_of_byte (get_u8 c) in
            let v_msg = get_str16 c in
            { v_sid; v_via; v_detail = detail_of_via v_via; v_msg })
      in
      Verdict { seq; status; verdicts }
    end
    else if ty = t_salt_reset then Salt_reset { salt0 = get_i64 c }
    else if ty = t_rule_update then begin
      let n = get_u16 c in
      let remove_sids = List.init n (fun _ -> get_u32 c) in
      let add_text = get_str32 c in
      let pairs = get_pairs c in
      Rule_update { remove_sids; add_text; pairs }
    end
    else if ty = t_update_ok then Update_ok { added = get_u32 c }
    else if ty = t_stats_req then Stats_req
    else if ty = t_stats then begin
      let s_connections = get_i64 c in
      let s_total_tokens = get_i64 c in
      let s_total_keyword_hits = get_i64 c in
      let s_alerts = get_i64 c in
      let s_blocked = get_i64 c in
      Stats { s_connections; s_total_tokens; s_total_keyword_hits; s_alerts; s_blocked }
    end
    else if ty = t_bye then Bye
    else if ty = t_metrics_req then Metrics_req { scope = scope_of_byte (get_u8 c) }
    else if ty = t_metrics then begin
      let scope = scope_of_byte (get_u8 c) in
      let body = get_rest c in
      Metrics { scope; body }
    end
    else if ty = t_record_stream then begin
      let seq = get_u32 c in
      let record = get_rest c in
      Record_stream { seq; record }
    end
    else if ty = t_verdict_tiered then begin
      let seq = get_u32 c in
      let status = status_of_byte (get_u8 c) in
      let n = get_u16 c in
      let verdicts =
        List.init n (fun _ ->
            let v_sid = get_u32 c in
            let v_via = via_of_byte (get_u8 c) in
            let v_detail = detail_of_byte (get_u8 c) in
            let v_msg = get_str16 c in
            { v_sid; v_via; v_detail; v_msg })
      in
      Verdict_tiered { seq; status; verdicts }
    end
    else if ty = t_conn_export then Conn_export
    else if ty = t_conn_state then Conn_state { state = get_rest c }
    else if ty = t_conn_import then Conn_import { state = get_rest c }
    else if ty = t_error then begin
      let code = get_u16 c in
      let message = get_str16 c in
      Error { code; message }
    end
    else malformed "unknown message type %d" ty
  in
  finish c "frame";
  msg

(* ---------- incremental framer ---------- *)

module Framer = struct
  type t = {
    mutable buf : Bytes.t;
    mutable len : int;  (* valid bytes in [buf] *)
    mutable pos : int;  (* consumed prefix *)
    max_frame : int;
  }

  let create ?(max_frame = max_frame_bytes) () =
    { buf = Bytes.create 4096; len = 0; pos = 0; max_frame }

  let compact t =
    if t.pos > 0 then begin
      let live = t.len - t.pos in
      Bytes.blit t.buf t.pos t.buf 0 live;
      t.len <- live;
      t.pos <- 0
    end

  let feed t src off n =
    if off < 0 || n < 0 || off + n > Bytes.length src then
      invalid_arg "Framer.feed";
    if t.len + n > Bytes.length t.buf then begin
      compact t;
      if t.len + n > Bytes.length t.buf then begin
        let cap = ref (max 4096 (Bytes.length t.buf)) in
        while t.len + n > !cap do cap := !cap * 2 done;
        let bigger = Bytes.create !cap in
        Bytes.blit t.buf 0 bigger 0 t.len;
        t.buf <- bigger
      end
    end;
    Bytes.blit src off t.buf t.len n;
    t.len <- t.len + n

  let buffered t = t.len - t.pos

  let peek_len t =
    let b i = Char.code (Bytes.get t.buf (t.pos + i)) in
    (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

  let next t =
    if t.len - t.pos < 4 then None
    else begin
      let n = peek_len t in
      if n <= 0 then malformed "frame length %d" n;
      if n > t.max_frame then
        malformed "frame length %d exceeds limit %d" n t.max_frame;
      if t.len - t.pos < 4 + n then None
      else begin
        let payload = Bytes.sub_string t.buf (t.pos + 4) n in
        t.pos <- t.pos + 4 + n;
        if t.pos = t.len then begin
          t.pos <- 0;
          t.len <- 0
        end;
        Some payload
      end
    end
end
