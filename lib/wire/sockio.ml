let sigpipe_ignored = ref false

let ignore_sigpipe () =
  if not !sigpipe_ignored then begin
    sigpipe_ignored := true;
    (* not all platforms have SIGPIPE (and set_signal raises there) *)
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
    | Invalid_argument _ | Sys_error _ -> ()
  end

let rec retry f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry f

let read fd buf off len = retry (fun () -> Unix.read fd buf off len)

let write fd buf off len = retry (fun () -> Unix.write fd buf off len)

let really_read fd buf off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let n = read fd buf !off !len in
    if n = 0 then raise End_of_file;
    off := !off + n;
    len := !len - n
  done

let really_write fd buf off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    let n = write fd buf !off !len in
    off := !off + n;
    len := !len - n
  done

let write_string fd s = really_write fd (Bytes.unsafe_of_string s) 0 (String.length s)

let accept ?cloexec fd = retry (fun () -> Unix.accept ?cloexec fd)
