(** 1-out-of-2 oblivious transfer (Bellare–Micali construction over
    {!Group}).

    The sender holds two equal-length messages [m0], [m1]; the receiver
    holds a choice bit [b] and learns [m_b] and nothing about [m_{1-b}],
    while the sender learns nothing about [b] (paper §3.3).

    The protocol is exposed move-by-move with string-serialised messages so
    the session layer can count handshake bytes, and the composition is
    tested in-process. *)

type sender_params

(** [setup drbg] creates sender parameters; the serialised form is the
    first protocol message (sender -> receiver). *)
val setup : Bbx_crypto.Drbg.t -> sender_params
val params_to_string : sender_params -> string
val params_of_string : string -> sender_params

type receiver_state

(** [receiver_choose drbg params b] is move 2 (receiver -> sender): commits
    to the choice bit, returning the public key to send. *)
val receiver_choose : Bbx_crypto.Drbg.t -> sender_params -> bool -> receiver_state * string

(** [sender_respond drbg params ~pk0 ~m0 ~m1] is move 3 (sender ->
    receiver).  [m0] and [m1] must have equal length. *)
val sender_respond :
  Bbx_crypto.Drbg.t -> sender_params -> pk0:string -> m0:string -> m1:string -> string

(** [receiver_recover st response] decrypts the chosen message. *)
val receiver_recover : receiver_state -> string -> string
