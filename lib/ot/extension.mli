(** IKNP oblivious-transfer extension.

    Rule preparation needs one OT per input bit of every garbled AES
    circuit — hundreds of thousands for a full ruleset — far too many to run
    at one public-key operation each.  IKNP amortises: 128 base OTs (on
    16-byte PRG seeds, with the roles of the two parties swapped) extend to
    any number of transfers using only symmetric primitives.

    Moves (R = extension receiver holding choice bits, S = extension sender
    holding message pairs):
    + move 0, R->S: base-OT parameters;
    + move 1, S->R: base-OT public keys committing to S's random column
      selection [sigma];
    + move 2, R->S: base-OT responses carrying seed pairs, plus the
      correction columns [u^i = PRG(s_i^0) XOR PRG(s_i^1) XOR r];
    + move 3, S->R: masked message pairs
      [y_j^b = m_j^b XOR H(j, q_j XOR b.sigma)];
    + R recovers [m_j^{r_j} = y_j^{r_j} XOR H(j, t_j)].

    All messages are opaque strings so callers can count setup bandwidth
    (Table 2 / §7.2.2). *)

val security : int
(** Number of base OTs (128). *)

type receiver_state
type sender_state

(** [receiver_init drbg ~choices ~msg_len] starts the protocol; returns the
    move-0 message. *)
val receiver_init :
  Bbx_crypto.Drbg.t -> choices:bool array -> msg_len:int -> receiver_state * string

(** [sender_init drbg ~n ~msg_len move0] processes move 0; returns move 1.
    [n] is the number of transfers (must equal [Array.length choices]). *)
val sender_init :
  Bbx_crypto.Drbg.t -> n:int -> msg_len:int -> string -> sender_state * string

(** [receiver_correct st move1] processes move 1; returns move 2. *)
val receiver_correct : receiver_state -> string -> receiver_state * string

(** [sender_transfer st ~messages move2] processes move 2; returns move 3.
    Every pair must consist of [msg_len]-byte strings. *)
val sender_transfer : sender_state -> messages:(string * string) array -> string -> string

(** [receiver_recover st move3] yields the chosen messages. *)
val receiver_recover : receiver_state -> string -> string array

(** [run ~sender_drbg ~receiver_drbg ~messages ~choices] composes the whole
    protocol in-process; returns the received messages and the total
    transcript size in bytes. *)
val run :
  sender_drbg:Bbx_crypto.Drbg.t ->
  receiver_drbg:Bbx_crypto.Drbg.t ->
  messages:(string * string) array ->
  choices:bool array ->
  string array * int
