(** The Diffie-Hellman group used by the base oblivious transfers and the
    TLS-like handshake: the multiplicative group modulo p = 2^255 - 19 with
    generator 2.  Elements serialise to 32 big-endian bytes. *)

val p : Bbx_bignum.Nat.t
val g : Bbx_bignum.Nat.t

(** [exp base e] is [base^e mod p]. *)
val exp : Bbx_bignum.Nat.t -> Bbx_bignum.Nat.t -> Bbx_bignum.Nat.t

(** [mul a b] / [inv a]: group operations mod p. *)
val mul : Bbx_bignum.Nat.t -> Bbx_bignum.Nat.t -> Bbx_bignum.Nat.t
val inv : Bbx_bignum.Nat.t -> Bbx_bignum.Nat.t

(** [random_exponent drbg] samples a uniform exponent in [[1, p-1)]. *)
val random_exponent : Bbx_crypto.Drbg.t -> Bbx_bignum.Nat.t

val to_bytes : Bbx_bignum.Nat.t -> string
val of_bytes : string -> Bbx_bignum.Nat.t

(** Byte width of a serialised element (32). *)
val element_size : int
