open Bbx_bignum

let p = Nat.sub (Nat.shift_left Nat.one 255) (Nat.of_int 19)
let g = Nat.two

let element_size = 32

(* Montgomery context for the fixed prime modulus. *)
let ctx = Mont.create p

let exp base e = Mont.mod_pow ctx ~base ~exp:e
let mul a b = Nat.rem (Nat.mul a b) p
let inv a = Nat.mod_inv a p

let random_exponent drbg =
  let bound = Nat.sub p Nat.two in
  let rec draw () =
    let raw = Nat.of_bytes_be (Bbx_crypto.Drbg.bytes drbg 32) in
    let v = Nat.rem raw p in
    if Nat.compare v Nat.one > 0 && Nat.compare v bound < 0 then v else draw ()
  in
  draw ()

let to_bytes v = Nat.to_bytes_be ~len:element_size v
let of_bytes s = Nat.of_bytes_be s
