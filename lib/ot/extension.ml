open Bbx_crypto

let security = 128
let seed_len = 16

(* PRG used to stretch base-OT seeds into matrix columns. *)
let prg seed n = Drbg.bytes (Drbg.create ("iknp-prg:" ^ seed)) n

(* Row hash: correlation-robust H(j, v) stretched to the message length. *)
let row_hash j v len =
  Kdf.expand ~prk:(Sha256.digest (Util.u64_be j ^ v)) ~info:"iknp-row" len

let get_bit s j = (Char.code s.[j / 8] lsr (7 - (j mod 8))) land 1 = 1

let pack_bits bits =
  let n = Array.length bits in
  String.init ((n + 7) / 8) (fun byte ->
      let v = ref 0 in
      for j = 0 to 7 do
        let idx = (8 * byte) + j in
        v := (!v lsl 1) lor (if idx < n && bits.(idx) then 1 else 0)
      done;
      Char.chr !v)

(* Row j of a k-column matrix stored as column strings. *)
let row_of_columns columns j =
  let k = Array.length columns in
  String.init ((k + 7) / 8) (fun byte ->
      let v = ref 0 in
      for i = 0 to 7 do
        let col = (8 * byte) + i in
        v := (!v lsl 1) lor (if col < k && get_bit columns.(col) j then 1 else 0)
      done;
      Char.chr !v)

type receiver_state = {
  r_drbg : Drbg.t;
  choices : bool array;
  r_msg_len : int;
  r_params : Base.sender_params;
  mutable seed_pairs : (string * string) array;
  mutable t_columns : string array;
}

type sender_state = {
  s_drbg : Drbg.t;
  n : int;
  s_msg_len : int;
  sigma : bool array;
  base_states : Base.receiver_state array;
  mutable q_columns : string array;
}

let receiver_init drbg ~choices ~msg_len =
  let params = Base.setup drbg in
  ( { r_drbg = drbg; choices; r_msg_len = msg_len; r_params = params;
      seed_pairs = [||]; t_columns = [||] },
    Base.params_to_string params )

let sender_init drbg ~n ~msg_len move0 =
  let params = Base.params_of_string move0 in
  let sigma = Array.init security (fun _ -> Drbg.uniform drbg 2 = 1) in
  let buf = Buffer.create (security * Group.element_size) in
  let base_states =
    Array.init security (fun i ->
        let st, pk0 = Base.receiver_choose drbg params sigma.(i) in
        Buffer.add_string buf pk0;
        st)
  in
  ( { s_drbg = drbg; n; s_msg_len = msg_len; sigma; base_states; q_columns = [||] },
    Buffer.contents buf )

let receiver_correct st move1 =
  if String.length move1 <> security * Group.element_size then
    invalid_arg "Extension.receiver_correct: bad move-1 length";
  let m = Array.length st.choices in
  let m8 = (m + 7) / 8 in
  let r_packed = pack_bits st.choices in
  let seed_pairs =
    Array.init security (fun _ -> (Drbg.bytes st.r_drbg seed_len, Drbg.bytes st.r_drbg seed_len))
  in
  let t_columns = Array.map (fun (s0, _) -> prg s0 m8) seed_pairs in
  let buf = Buffer.create (security * 256) in
  Array.iteri
    (fun i (s0, s1) ->
       let pk0 = String.sub move1 (i * Group.element_size) Group.element_size in
       let resp = Base.sender_respond st.r_drbg st.r_params ~pk0 ~m0:s0 ~m1:s1 in
       if i = 0 then Buffer.add_string buf (Util.u32_be (String.length resp));
       Buffer.add_string buf resp)
    seed_pairs;
  Array.iteri
    (fun i (_, s1) ->
       let u = Util.xor (Util.xor t_columns.(i) (prg s1 m8)) r_packed in
       Buffer.add_string buf u)
    seed_pairs;
  st.seed_pairs <- seed_pairs;
  st.t_columns <- t_columns;
  (st, Buffer.contents buf)

let sender_transfer st ~messages move2 =
  if Array.length messages <> st.n then
    invalid_arg "Extension.sender_transfer: message count mismatch";
  Array.iter
    (fun (m0, m1) ->
       if String.length m0 <> st.s_msg_len || String.length m1 <> st.s_msg_len then
         invalid_arg "Extension.sender_transfer: bad message length")
    messages;
  let m8 = (st.n + 7) / 8 in
  let resp_len = Util.read_u32_be move2 0 in
  let expected = 4 + (security * resp_len) + (security * m8) in
  if String.length move2 <> expected then
    invalid_arg "Extension.sender_transfer: bad move-2 length";
  let q_columns =
    Array.init security (fun i ->
        let resp = String.sub move2 (4 + (i * resp_len)) resp_len in
        let seed = Base.receiver_recover st.base_states.(i) resp in
        let col = prg seed m8 in
        if st.sigma.(i) then
          Util.xor col (String.sub move2 (4 + (security * resp_len) + (i * m8)) m8)
        else col)
  in
  st.q_columns <- q_columns;
  let sigma_packed = pack_bits st.sigma in
  let buf = Buffer.create (2 * st.n * st.s_msg_len) in
  Array.iteri
    (fun j (m0, m1) ->
       let qj = row_of_columns q_columns j in
       Buffer.add_string buf (Util.xor m0 (row_hash j qj st.s_msg_len));
       Buffer.add_string buf (Util.xor m1 (row_hash j (Util.xor qj sigma_packed) st.s_msg_len)))
    messages;
  Buffer.contents buf

let receiver_recover st move3 =
  let m = Array.length st.choices in
  if String.length move3 <> 2 * m * st.r_msg_len then
    invalid_arg "Extension.receiver_recover: bad move-3 length";
  Array.init m (fun j ->
      let tj = row_of_columns st.t_columns j in
      let which = if st.choices.(j) then 1 else 0 in
      let y = String.sub move3 (((2 * j) + which) * st.r_msg_len) st.r_msg_len in
      Util.xor y (row_hash j tj st.r_msg_len))

let run ~sender_drbg ~receiver_drbg ~messages ~choices =
  let msg_len = match messages with
    | [||] -> invalid_arg "Extension.run: no messages"
    | _ -> String.length (fst messages.(0))
  in
  let rs, move0 = receiver_init receiver_drbg ~choices ~msg_len in
  let ss, move1 = sender_init sender_drbg ~n:(Array.length messages) ~msg_len move0 in
  let rs, move2 = receiver_correct rs move1 in
  let move3 = sender_transfer ss ~messages move2 in
  let out = receiver_recover rs move3 in
  let bytes =
    String.length move0 + String.length move1 + String.length move2 + String.length move3
  in
  (out, bytes)
