open Bbx_bignum
open Bbx_crypto

type sender_params = { c : Nat.t }

let setup drbg =
  (* c is a random group element with discrete log unknown to both parties
     (derived from g^x for throwaway x). *)
  { c = Group.exp Group.g (Group.random_exponent drbg) }

let params_to_string { c } = Group.to_bytes c

let params_of_string s =
  if String.length s <> Group.element_size then invalid_arg "Base.params_of_string";
  { c = Group.of_bytes s }

type receiver_state = { k : Nat.t; b : bool }

let receiver_choose drbg { c } b =
  let k = Group.random_exponent drbg in
  let pk_b = Group.exp Group.g k in
  (* pk_{1-b} = c / pk_b, so the receiver knows the discrete log of exactly
     one of the two keys while their product relation is fixed by c. *)
  let pk0 = if b then Group.mul c (Group.inv pk_b) else pk_b in
  ({ k; b }, Group.to_bytes pk0)

let mask ~point ~which ~len =
  Kdf.expand
    ~prk:(Sha256.digest (Group.to_bytes point))
    ~info:(Printf.sprintf "ot-base-%d" which)
    len

let sender_respond drbg { c } ~pk0 ~m0 ~m1 =
  if String.length m0 <> String.length m1 then
    invalid_arg "Base.sender_respond: message length mismatch";
  let len = String.length m0 in
  let pk0 = Group.of_bytes pk0 in
  let pk1 = Group.mul c (Group.inv pk0) in
  let encrypt which pk m =
    let r = Group.random_exponent drbg in
    let gr = Group.exp Group.g r in
    let masked = Util.xor m (mask ~point:(Group.exp pk r) ~which ~len) in
    Group.to_bytes gr ^ masked
  in
  Util.u32_be len ^ encrypt 0 pk0 m0 ^ encrypt 1 pk1 m1

let receiver_recover { k; b } response =
  if String.length response < 4 then invalid_arg "Base.receiver_recover: truncated";
  let len = Util.read_u32_be response 0 in
  let part = Group.element_size + len in
  if String.length response <> 4 + (2 * part) then
    invalid_arg "Base.receiver_recover: length mismatch";
  let which = if b then 1 else 0 in
  let off = 4 + (which * part) in
  let gr = Group.of_bytes (String.sub response off Group.element_size) in
  let masked = String.sub response (off + Group.element_size) len in
  Util.xor masked (mask ~point:(Group.exp gr k) ~which ~len)
