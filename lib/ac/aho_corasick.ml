(* Classic goto/fail/output construction with the fail links flattened into
   a dense 256-way transition table per node (so the search loop is a pure
   table walk, one load per input byte). *)

type t = {
  next : int array array;     (* node -> byte -> node *)
  outputs : int list array;   (* node -> pattern indices ending here *)
  n_patterns : int;
}

let build patterns =
  Array.iter (fun p -> if p = "" then invalid_arg "Aho_corasick.build: empty pattern") patterns;
  (* Trie construction. *)
  let cap = ref 16 in
  let goto = ref (Array.init !cap (fun _ -> Array.make 256 (-1))) in
  let outputs = ref (Array.make !cap []) in
  let n_nodes = ref 1 in
  let ensure_cap () =
    if !n_nodes >= !cap then begin
      let ncap = 2 * !cap in
      let g = Array.init ncap (fun i -> if i < !cap then !goto.(i) else Array.make 256 (-1)) in
      let o = Array.init ncap (fun i -> if i < !cap then !outputs.(i) else []) in
      cap := ncap; goto := g; outputs := o
    end
  in
  Array.iteri
    (fun idx pat ->
       let node = ref 0 in
       String.iter
         (fun c ->
            let b = Char.code c in
            if !goto.(!node).(b) = -1 then begin
              ensure_cap ();
              !goto.(!node).(b) <- !n_nodes;
              incr n_nodes;
              ensure_cap ()
            end;
            node := !goto.(!node).(b))
         pat;
       !outputs.(!node) <- idx :: !outputs.(!node))
    patterns;
  let goto = Array.sub !goto 0 !n_nodes in
  let outputs = Array.sub !outputs 0 !n_nodes in
  (* BFS to compute fail links, merging outputs, and flatten transitions. *)
  let fail = Array.make !n_nodes 0 in
  let queue = Queue.create () in
  for b = 0 to 255 do
    let v = goto.(0).(b) in
    if v = -1 then goto.(0).(b) <- 0
    else begin
      fail.(v) <- 0;
      Queue.add v queue
    end
  done;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    outputs.(u) <- outputs.(u) @ outputs.(fail.(u));
    for b = 0 to 255 do
      let v = goto.(u).(b) in
      if v = -1 then goto.(u).(b) <- goto.(fail.(u)).(b)
      else begin
        fail.(v) <- goto.(fail.(u)).(b);
        Queue.add v queue
      end
    done
  done;
  { next = goto; outputs; n_patterns = Array.length patterns }

let search t payload =
  let acc = ref [] in
  let node = ref 0 in
  String.iteri
    (fun i c ->
       node := t.next.(!node).(Char.code c);
       List.iter (fun p -> acc := (p, i + 1) :: !acc) t.outputs.(!node))
    payload;
  List.rev !acc

let search_first t payload =
  let n = String.length payload in
  let rec go node i =
    if i >= n then None
    else begin
      let node = t.next.(node).(Char.code payload.[i]) in
      match t.outputs.(node) with
      | p :: _ -> Some (p, i + 1)
      | [] -> go node (i + 1)
    end
  in
  go 0 0

let count_matches t payload =
  let count = ref 0 in
  let node = ref 0 in
  String.iter
    (fun c ->
       node := t.next.(!node).(Char.code c);
       match t.outputs.(!node) with
       | [] -> ()
       | l -> count := !count + List.length l)
    payload;
  !count

let pattern_count t = t.n_patterns
let node_count t = Array.length t.next

let footprint_bytes t =
  let word = Sys.word_size / 8 in
  let nodes = Array.length t.next in
  (* dense 256-way row + header per node, plus the output lists (3 words
     per cons cell) *)
  let outputs =
    Array.fold_left (fun acc l -> acc + (3 * List.length l)) 0 t.outputs
  in
  (nodes * 258 + outputs + 8) * word
