(** Aho–Corasick multi-pattern string matching.

    This is the engine of the plaintext-IDS baseline ("Snort" in the
    paper's §7.2.3 throughput comparison): all rule keywords are matched
    against cleartext in a single pass, independent of the number of
    patterns.  BlindBox's claim is that DPIEnc + BlindBox Detect achieve
    comparable per-byte cost on {e encrypted} traffic. *)

type t

(** [build patterns] compiles the automaton.  Empty patterns are rejected.
    Pattern indices in match results refer to positions in this array. *)
val build : string array -> t

(** [search t payload] returns [(pattern_index, end_offset)] for every
    occurrence (end offset = index one past the last byte), in stream
    order. *)
val search : t -> string -> (int * int) list

(** [search_first t payload] stops at the first hit. *)
val search_first : t -> string -> (int * int) option

(** [count_matches t payload] — number of occurrences, without building the
    list (for the throughput bench). *)
val count_matches : t -> string -> int

val pattern_count : t -> int
val node_count : t -> int

(** Approximate resident bytes of the automaton (the dense transition
    tables dominate: ~2 KiB per node). *)
val footprint_bytes : t -> int
