(** The DPIEnc encryption scheme (paper §3.1) and the sender-side salt
    machinery of BlindBox Detect (§3.2).

    A token [t] encrypts to

    {v salt, AES_{AES_k(t)}(salt) mod RS v}

    with [RS = 2^40] (5-byte ciphertexts).  Salts are never transmitted:
    both ends derive them from a shared initial salt and per-token counters
    — the i-th occurrence of the same token value gets salt [salt0 + i]
    (stride 2 under probable-cause mode), so equal tokens never share a salt
    and the scheme stays semantically secure while the middlebox can still
    precompute one tree node per rule keyword.

    Protocol III ({!mode} [Probable]) additionally emits
    [c2 = AES_{AES_k(t)}(salt + 1) XOR k_ssl]: a keyword match lets the
    middlebox reconstruct the mask and recover the session key (§5). *)

(** Width of the ciphertext after reduction: 40 bits = 5 bytes. *)
val rs_bits : int

type key

(** [key_of_secret s] derives the DPIEnc key from the handshake secret [k]
    (any length). *)
val key_of_secret : string -> key

(** [raw_key_of_secret s] — the same derived key as raw bytes; obfuscated
    rule encryption hard-codes these 16 bytes into the garbled AES
    circuit. *)
val raw_key_of_secret : string -> string

(** The AES kernel knob (re-export of {!Bbx_crypto.Aes_bs.kernel}):
    [Scalar] is the single-block T-table path, kept as the differential
    oracle; [Bitsliced] routes same-key batch work — first-seen token
    encryption on the sender, rule-prep chunk sweeps — through
    {!Bbx_crypto.Aes_bs}.  Both produce byte-identical wire output. *)
type aes_kernel = Bbx_crypto.Aes_bs.kernel = Scalar | Bitsliced

(** [token_enc key t] is [AES_k(t)] for a [Tokenizer.token_len]-byte token —
    the "encrypted rule" the middlebox obtains through obfuscated rule
    encryption.  Raises [Invalid_argument] on wrong token length. *)
val token_enc : key -> string -> string

(** [token_enc_batch key toks] = [Array.map (token_enc key) toks], swept
    through the bitsliced kernel [Aes_bs.width] blocks at a time (every
    chunk of a ruleset is encrypted under the one session key — the
    same-key batch that dominates rule preparation at fleet scale). *)
val token_enc_batch : key -> string array -> string array

(** A token key is the expanded [AES_{AES_k(t)}] cipher; building one is the
    expensive step so both sides cache it per token value. *)
type token_key

val token_key : key -> string -> token_key

(** [token_key_of_enc e] builds a token key directly from [AES_k(t)] — this
    is what the middlebox does with encrypted rules, never holding [k]. *)
val token_key_of_enc : string -> token_key

(** [encrypt tk ~salt] is [AES_{AES_k(t)}(salt) mod RS] as a 40-bit int. *)
val encrypt : token_key -> salt:int -> int

(** [encrypt_full tk ~salt] is the unreduced 16-byte block, used as the
    probable-cause mask. *)
val encrypt_full : token_key -> salt:int -> string

(** [embed_into tk ~salt ~k_ssl ~dst ~dst_off] writes the probable-cause
    embedding [c2 = AES_tk(salt) XOR k_ssl] (16 bytes) into [dst] at
    [dst_off] without allocating — the mask never materialises as a
    string.  Raises [Invalid_argument] if [k_ssl] is not 16 bytes or the
    destination range is out of bounds. *)
val embed_into :
  token_key -> salt:int -> k_ssl:string -> dst:Bytes.t -> dst_off:int -> unit

type mode = Exact | Probable

(** An encrypted token on the wire. *)
type enc_token = {
  cipher : int;            (** 40-bit detection ciphertext [c1] *)
  embed : string option;   (** [c2] (16 bytes), present in [Probable] mode *)
  offset : int;            (** stream offset, used by Protocol II *)
}

(** Sender-side encryptor with the counter table of §3.2. *)
type sender

(** [sender_create ?kernel mode key ~salt0] — [salt0] must be even in
    probable-cause mode (odd salts are reserved for the embedding
    ciphertext).  [kernel] (default [Scalar]) picks the hot-path
    implementation: [Bitsliced] replaces the counter hashtable with a
    packed open-addressing table (tokens as two 32-bit ints), defers
    first-seen [AES_k(t)] into bitsliced same-key sweeps, and stages wire
    records in a sweep buffer — byte-identical output, same counter
    semantics, both modes. *)
val sender_create : ?kernel:aes_kernel -> mode -> key -> salt0:int -> sender

val sender_kernel : sender -> aes_kernel

(** [sender_encrypt sender ?k_ssl tokens] encrypts a batch.  [k_ssl]
    (16 bytes) is required in [Probable] mode and ignored in [Exact]. *)
val sender_encrypt : sender -> ?k_ssl:string -> Bbx_tokenizer.Tokenizer.token list -> enc_token list

(** [sender_reset sender] implements the periodic counter-table reset: the
    table is cleared and the new [salt0] (to announce to the middlebox) is
    returned. *)
val sender_reset : sender -> int

val sender_salt0 : sender -> int

(** [salt_stride mode] is 1 for [Exact], 2 for [Probable] — exposed for the
    middlebox, which must walk its rule counters at the same stride. *)
val salt_stride : mode -> int

(** {2 Streaming pipeline}

    The streaming API tokenizes, encrypts and serialises in one pass, with
    no per-token records or strings: the counter table is consulted with
    [(payload, off)] slices through a reused probe key (a seeded FNV hash
    over the logical token bytes), and wire bytes go straight into the
    caller's [Buffer].  It shares the counter table with the legacy list
    API, so the two may be mixed on one [sender] and produce the identical
    byte stream for the identical payload sequence. *)

(** Which tokenizer drives {!sender_encrypt_into}. *)
type tokenization = Window | Delimiter of { short_units : bool }

(** [sender_encrypt_into sender ?k_ssl ?base ?tokenization payload buf]
    appends the wire encoding of [payload]'s encrypted token stream to
    [buf] and returns the number of tokens emitted.  [base] (default 0) is
    added to every token's stream offset.  Byte-identical to
    [encode_tokens (sender_encrypt sender (tokenize payload))]. *)
val sender_encrypt_into :
  sender -> ?k_ssl:string -> ?base:int -> ?tokenization:tokenization ->
  string -> Buffer.t -> int

(** [encrypt_slice_into sender ~k_ssl ~src ~off ~len ~stream_off buf]
    encrypts one token slice ([src.[off..off+len-1]], zero-padded when
    [len < Tokenizer.token_len]) and appends its wire record to [buf].
    [k_ssl] must already be validated ([Some] iff the sender is in
    [Probable] mode) — this is the raw building block under
    {!sender_encrypt_into}. *)
val encrypt_slice_into :
  sender -> k_ssl:string option -> src:string -> off:int -> len:int ->
  stream_off:int -> Buffer.t -> unit

(** Wire encoding of a batch of encrypted tokens: per token a flag byte,
    5-byte cipher and 4-byte offset, plus the 16-byte embed in [Probable]
    mode (10 or 26 bytes per record). *)
val encode_tokens : enc_token list -> string
val decode_tokens : string -> enc_token list

(** [decode_iter s ~f] walks the wire format without building a list:
    [f ~cipher ~offset ~embed_pos] once per record, where [embed_pos] is
    the position of the record's 16-byte embed inside [s], or [-1] when
    absent.  Raises the same [Invalid_argument] as {!decode_tokens} on
    truncated input. *)
val decode_iter :
  string -> f:(cipher:int -> offset:int -> embed_pos:int -> unit) -> unit

(** [wire_token_count s] — number of records in a wire encoding. *)
val wire_token_count : string -> int

(** Wire record sizes (without / with embed), exposed for sizing buffers
    and for the truncation tests. *)
val exact_record_bytes : int
val probable_record_bytes : int
