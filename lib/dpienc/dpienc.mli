(** The DPIEnc encryption scheme (paper §3.1) and the sender-side salt
    machinery of BlindBox Detect (§3.2).

    A token [t] encrypts to

    {v salt, AES_{AES_k(t)}(salt) mod RS v}

    with [RS = 2^40] (5-byte ciphertexts).  Salts are never transmitted:
    both ends derive them from a shared initial salt and per-token counters
    — the i-th occurrence of the same token value gets salt [salt0 + i]
    (stride 2 under probable-cause mode), so equal tokens never share a salt
    and the scheme stays semantically secure while the middlebox can still
    precompute one tree node per rule keyword.

    Protocol III ({!mode} [Probable]) additionally emits
    [c2 = AES_{AES_k(t)}(salt + 1) XOR k_ssl]: a keyword match lets the
    middlebox reconstruct the mask and recover the session key (§5). *)

(** Width of the ciphertext after reduction: 40 bits = 5 bytes. *)
val rs_bits : int

type key

(** [key_of_secret s] derives the DPIEnc key from the handshake secret [k]
    (any length). *)
val key_of_secret : string -> key

(** [raw_key_of_secret s] — the same derived key as raw bytes; obfuscated
    rule encryption hard-codes these 16 bytes into the garbled AES
    circuit. *)
val raw_key_of_secret : string -> string

(** [token_enc key t] is [AES_k(t)] for a [Tokenizer.token_len]-byte token —
    the "encrypted rule" the middlebox obtains through obfuscated rule
    encryption.  Raises [Invalid_argument] on wrong token length. *)
val token_enc : key -> string -> string

(** A token key is the expanded [AES_{AES_k(t)}] cipher; building one is the
    expensive step so both sides cache it per token value. *)
type token_key

val token_key : key -> string -> token_key

(** [token_key_of_enc e] builds a token key directly from [AES_k(t)] — this
    is what the middlebox does with encrypted rules, never holding [k]. *)
val token_key_of_enc : string -> token_key

(** [encrypt tk ~salt] is [AES_{AES_k(t)}(salt) mod RS] as a 40-bit int. *)
val encrypt : token_key -> salt:int -> int

(** [encrypt_full tk ~salt] is the unreduced 16-byte block, used as the
    probable-cause mask. *)
val encrypt_full : token_key -> salt:int -> string

type mode = Exact | Probable

(** An encrypted token on the wire. *)
type enc_token = {
  cipher : int;            (** 40-bit detection ciphertext [c1] *)
  embed : string option;   (** [c2] (16 bytes), present in [Probable] mode *)
  offset : int;            (** stream offset, used by Protocol II *)
}

(** Sender-side encryptor with the counter table of §3.2. *)
type sender

(** [sender_create mode key ~salt0] — [salt0] must be even in probable-cause
    mode (odd salts are reserved for the embedding ciphertext). *)
val sender_create : mode -> key -> salt0:int -> sender

(** [sender_encrypt sender ?k_ssl tokens] encrypts a batch.  [k_ssl]
    (16 bytes) is required in [Probable] mode and ignored in [Exact]. *)
val sender_encrypt : sender -> ?k_ssl:string -> Bbx_tokenizer.Tokenizer.token list -> enc_token list

(** [sender_reset sender] implements the periodic counter-table reset: the
    table is cleared and the new [salt0] (to announce to the middlebox) is
    returned. *)
val sender_reset : sender -> int

val sender_salt0 : sender -> int

(** [salt_stride mode] is 1 for [Exact], 2 for [Probable] — exposed for the
    middlebox, which must walk its rule counters at the same stride. *)
val salt_stride : mode -> int

(** Wire encoding of a batch of encrypted tokens (5 bytes + optional
    16 bytes + 4-byte offset each). *)
val encode_tokens : enc_token list -> string
val decode_tokens : string -> enc_token list
