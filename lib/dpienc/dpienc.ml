open Bbx_crypto
open Bbx_tokenizer
module Obs = Bbx_obs.Obs

(* Sender-side encryption accounting: payload bytes in, wire bytes out and
   tokens emitted are added once per [sender_encrypt_into] call; the salt
   counter table's occupancy and deepest counter are sampled as gauges at
   the same cadence — never inside the per-token loop. *)
let obs_bytes_in = Obs.counter "bbx_dpienc_sender_bytes_in_total"
let obs_wire_bytes = Obs.counter "bbx_dpienc_sender_wire_bytes_total"
let obs_tokens = Obs.counter "bbx_dpienc_sender_tokens_total"
let obs_table_entries = Obs.gauge "bbx_dpienc_counter_table_entries"
let obs_max_count = Obs.gauge "bbx_dpienc_counter_max"
let obs_resets = Obs.counter "bbx_dpienc_sender_resets_total"

let rs_bits = 40
let rs_mask = (1 lsl rs_bits) - 1

type key = Aes.key

type aes_kernel = Aes_bs.kernel = Scalar | Bitsliced

let raw_key_of_secret s = Kdf.derive ~secret:s ~label:"dpienc-key" 16

let key_of_secret s = Aes.expand_key (raw_key_of_secret s)

(* Constant pad, hoisted off the hot path (one shared string instead of a
   fresh [String.make] per call). *)
let salt_pad = String.make 8 '\000'

(* The padded token block [t || 0^(16 - token_len)] is built in a reused
   per-domain scratch: [token_enc] runs per *distinct* token on the sender
   but per chunk in rule preparation, where the old [t ^ pad] concat was a
   measurable slice of fleet establish.  Bytes past [token_len] are zeroed
   at creation and never written, so only the token bytes are blitted per
   call.  Domain-local because rule prep runs on the setup worker pool. *)
let token_block_scratch =
  Domain.DLS.new_key (fun () -> (Bytes.make 16 '\000', Bytes.create 16))

let token_enc key t =
  if String.length t <> Tokenizer.token_len then
    invalid_arg "Dpienc: token must be Tokenizer.token_len bytes";
  let src, dst = Domain.DLS.get token_block_scratch in
  Bytes.blit_string t 0 src 0 Tokenizer.token_len;
  Aes.encrypt_block_into key ~src ~src_off:0 ~dst ~dst_off:0;
  Bytes.to_string dst

(* Same-key batch of [AES_k(t)]: all chunks of a ruleset are encrypted
   under the one session key, so rule preparation (fleet establish's
   per-generation cost) sweeps them through the bitsliced kernel
   [Aes_bs.width] at a time instead of one T-table call each. *)
let token_enc_batch key toks =
  let n = Array.length toks in
  Array.iter
    (fun t ->
      if String.length t <> Tokenizer.token_len then
        invalid_arg "Dpienc: token must be Tokenizer.token_len bytes")
    toks;
  let out = Array.make n "" in
  if n > 0 then begin
    let bk = Aes_bs.key_of_aes key in
    let b = Aes_bs.create_batch () in
    let start = ref 0 in
    while !start < n do
      let cnt = min Aes_bs.width (n - !start) in
      Aes_bs.reset b;
      for j = 0 to cnt - 1 do
        Aes_bs.set_token_block b j toks.(!start + j) ~off:0
          ~len:Tokenizer.token_len
      done;
      Aes_bs.encrypt_blocks_into bk b;
      for j = 0 to cnt - 1 do
        out.(!start + j) <- Aes_bs.get_block b j
      done;
      start := !start + cnt
    done
  end;
  out

type token_key = Aes.key

let token_key_of_enc e = Aes.expand_key e
let token_key key t = token_key_of_enc (token_enc key t)

(* Placeholder schedule for unresolved packed-table slots; compared with
   physical equality, so any freshly expanded key is distinct from it. *)
let dummy_tkey : token_key = Aes.expand_key (String.make 16 '\000')

let encrypt tk ~salt = Aes.encrypt_u64 tk salt land rs_mask

let encrypt_full tk ~salt = Aes.encrypt_block tk (salt_pad ^ Util.u64_be salt)

(* [encrypt_full] xor k_ssl, written straight into [dst]: the mask block
   0^8 || BE64(salt) is produced by [Aes.encrypt_u64_into] (which bounds-
   checks the 16-byte range once) and k_ssl is folded over it in place. *)
let embed_into tk ~salt ~k_ssl ~dst ~dst_off =
  if String.length k_ssl <> 16 then
    invalid_arg "Dpienc.embed_into: k_ssl must be 16 bytes";
  Aes.encrypt_u64_into tk salt ~dst ~dst_off;
  for i = 0 to 15 do
    Bytes.unsafe_set dst (dst_off + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (dst_off + i))
          lxor Char.code (String.unsafe_get k_ssl i)))
  done

type mode = Exact | Probable

let salt_stride = function Exact -> 1 | Probable -> 2

type enc_token = {
  cipher : int;
  embed : string option;
  offset : int;
}

(* Wire record sizes (defined ahead of the sender, whose scratch buffer is
   sized by the larger one): per token a flag byte, 5-byte big-endian
   cipher, 4-byte big-endian stream offset, then the 16-byte embed iff the
   flag is 1 — 10 bytes in Exact mode, 26 in Probable. *)
let exact_record_bytes = 10
let probable_record_bytes = 26

type counter_entry = { mutable count : int; tkey : token_key }

(* Counter table keyed by token *value* but consulted with [(src, off, len)]
   slices: the probe key is a single mutable record reused for every lookup,
   so the hot path never calls [String.sub].  Stored keys materialise the
   (padded) token bytes exactly once, on first occurrence.  [len <
   token_len] slices hash/compare as if zero-padded to [token_len]. *)
module Slice_key = struct
  type t = { mutable src : string; mutable off : int; mutable len : int }

  let logical_byte k i = if i < k.len then Char.code k.src.[k.off + i] else 0

  let equal a b =
    let rec go i =
      i = Tokenizer.token_len || (logical_byte a i = logical_byte b i && go (i + 1))
    in
    go 0

  (* FNV-1a over the logical token bytes, seeded with the FNV offset
     basis; masked to stay a positive OCaml int. *)
  let hash k =
    let h = ref 0x811c9dc5 in
    for i = 0 to Tokenizer.token_len - 1 do
      h := (!h lxor logical_byte k i) * 0x01000193 land max_int
    done;
    !h
end

module Counter_tbl = Hashtbl.Make (Slice_key)

(* ---- the packed counter table + sweep state of the batched sender ----

   The bitsliced sender keeps its counters in a flat open-addressing table
   instead of the functorized [Counter_tbl]: token values are at most 8
   bytes ([Tokenizer.token_len]) and pack losslessly into two 32-bit ints
   (big-endian halves of the zero-padded token), so a lookup is an integer
   hash, a linear probe and two compares — no [logical_byte] loop, no
   closure dispatch through [Hashtbl.Make], no key string.  The two key
   words and the counter of a slot are interleaved in ONE int array
   ([ptab], three words per slot) so the steady-state hit touches a
   single cache line where parallel arrays would touch three.  Per-token
   wire output is staged in [wire] and appended with one
   [Buffer.add_subbytes] per sweep.

   [ptkeys] is resolved lazily: a first-seen token's [AES_k(t)] is NOT
   computed at insert — the slot is queued on [pending] and all first-seen
   token blocks of the sweep go through the bitsliced kernel in one
   [encrypt_blocks_into] call at flush (they all share the session key [k],
   the one batchable step; per-occurrence [AES_tkey(salt)] ciphers use
   per-token keys, which a bitsliced batch cannot share — see DESIGN.md).

   Invariant: [sw_n = pending_n = 0] except inside a
   [sender_encrypt_into] call — every public entry point flushes before
   returning, so the legacy per-token APIs may interleave freely and the
   table may grow safely on their path. *)

let sweep_cap = 256
let packed_init_slots = 256 (* power of two; grows at load 1/2 *)

type packed = {
  bs_key : Aes_bs.key;            (* session key, spread for the kernel *)
  batch : Aes_bs.batch;
  (* slot i at 3i: token bytes 0-3 big-endian (-1 = empty), bytes 4-7,
     occurrence count *)
  mutable ptab : int array;
  (* physically [dummy_tkey] until resolved — flat array, no option box *)
  mutable ptkeys : token_key array;
  mutable pmask : int;            (* slot count - 1 *)
  mutable poccupied : int;
  (* sweep state, collected per fold pass over a payload.  Warm tokens
     (tkey already resolved) write their wire record eagerly into [wire];
     only tokens whose slot is still pending its kernel sweep are
     deferred — [sw_*.(d)] records the d-th deferred token's slot, salt,
     stream offset and wire-record position for back-fill at flush. *)
  sw_slot : int array;
  sw_salt : int array;
  sw_off : int array;
  sw_pos : int array;
  mutable sw_defer : int;         (* deferred (unfilled) records in [wire] *)
  mutable sw_n : int;             (* total records staged in [wire] *)
  pending : int array;            (* first-seen slots awaiting their tkey *)
  mutable pending_n : int;
  wire : Bytes.t;                 (* sweep_cap wire records *)
  tok16 : Bytes.t;                (* token-block staging; bytes 8.. stay 0 *)
}

type backend = Tbl of counter_entry Counter_tbl.t | Packed of packed

type sender = {
  mode : mode;
  key : key;
  kernel : aes_kernel;
  mutable salt0 : int;
  backend : backend;
  probe : Slice_key.t;  (* reused for lookups; never stored *)
  scratch : Bytes.t;    (* one wire record, rebuilt in place per token *)
  mutable max_count : int;
}

let sender_create ?(kernel = Scalar) mode key ~salt0 =
  if mode = Probable && salt0 land 1 <> 0 then
    invalid_arg "Dpienc.sender_create: salt0 must be even";
  let backend =
    match kernel with
    | Scalar ->
      (* start small: the table grows with distinct tokens actually sent,
         so a busy sender reaches its working size within one page while an
         idle fleet connection stays at ~2 KiB instead of 32 KiB *)
      Tbl (Counter_tbl.create 256)
    | Bitsliced ->
      if Tokenizer.token_len > 8 then
        invalid_arg "Dpienc.sender_create: packed table needs token_len <= 8";
      Packed
        { bs_key = Aes_bs.key_of_aes key;
          batch = Aes_bs.create_batch ();
          ptab = Array.make (3 * packed_init_slots) (-1);
          ptkeys = Array.make packed_init_slots dummy_tkey;
          pmask = packed_init_slots - 1;
          poccupied = 0;
          sw_slot = Array.make sweep_cap 0;
          sw_salt = Array.make sweep_cap 0;
          sw_off = Array.make sweep_cap 0;
          sw_pos = Array.make sweep_cap 0;
          sw_defer = 0;
          sw_n = 0;
          pending = Array.make sweep_cap 0;
          pending_n = 0;
          wire = Bytes.create (sweep_cap * probable_record_bytes);
          tok16 = Bytes.make 16 '\000' }
  in
  { mode; key; kernel; salt0; backend;
    probe = { Slice_key.src = ""; off = 0; len = 0 };
    scratch = Bytes.create probable_record_bytes;
    max_count = 0 }

let sender_salt0 s = s.salt0
let sender_kernel s = s.kernel

(* Materialise the (padded) token value of a slice — first occurrence of a
   distinct token value only. *)
let materialize src off len =
  if len = Tokenizer.token_len then String.sub src off len
  else Tokenizer.pad_short (String.sub src off len)

let entry_for s tbl src off len =
  s.probe.Slice_key.src <- src;
  s.probe.Slice_key.off <- off;
  s.probe.Slice_key.len <- len;
  (* exception-style lookup: [find_opt] would allocate a [Some] per token *)
  match Counter_tbl.find tbl s.probe with
  | e -> e
  | exception Not_found ->
    let content = materialize src off len in
    let stored =
      { Slice_key.src = content; off = 0; len = Tokenizer.token_len }
    in
    let e = { count = 0; tkey = token_key s.key content } in
    Counter_tbl.add tbl stored e;
    e

let next_salt s entry =
  let salt = s.salt0 + (salt_stride s.mode * entry.count) in
  entry.count <- entry.count + 1;
  if entry.count > s.max_count then s.max_count <- entry.count;
  salt

(* ---- packed-table primitives ---- *)

(* The zero-padded token as two big-endian 32-bit words: the same logical
   bytes [Slice_key] hashes, so both backends agree on token identity.
   Two scalar results rather than one pair — the tuple would be a
   per-token minor-heap allocation on the fold path (no flambda to erase
   it). *)
let[@inline] pad_byte src off len i =
  if i < len then Char.code (String.unsafe_get src (off + i)) else 0

let[@inline] slice_hi src off len =
  if len >= 4 then
    (Char.code (String.unsafe_get src off) lsl 24)
    lor (Char.code (String.unsafe_get src (off + 1)) lsl 16)
    lor (Char.code (String.unsafe_get src (off + 2)) lsl 8)
    lor Char.code (String.unsafe_get src (off + 3))
  else
    (pad_byte src off len 0 lsl 24)
    lor (pad_byte src off len 1 lsl 16)
    lor (pad_byte src off len 2 lsl 8)
    lor pad_byte src off len 3

let[@inline] slice_lo src off len =
  if len >= 8 then
    (Char.code (String.unsafe_get src (off + 4)) lsl 24)
    lor (Char.code (String.unsafe_get src (off + 5)) lsl 16)
    lor (Char.code (String.unsafe_get src (off + 6)) lsl 8)
    lor Char.code (String.unsafe_get src (off + 7))
  else
    (pad_byte src off len 4 lsl 24)
    lor (pad_byte src off len 5 lsl 16)
    lor (pad_byte src off len 6 lsl 8)
    lor pad_byte src off len 7

let[@inline] slice_words src off len = (slice_hi src off len, slice_lo src off len)

let[@inline] phash h1 h2 =
  let h = (h1 * 0x9e3779b1) lxor (h2 * 0x85ebca77) in
  (h lxor (h lsr 31)) land max_int

(* Slot holding (h1, h2), or the first empty slot of its probe chain. *)
let[@inline] pfind p h1 h2 =
  let mask = p.pmask in
  let t = p.ptab in
  let i = ref (phash h1 h2 land mask) in
  while
    (let b = 3 * !i in
     let v = Array.unsafe_get t b in
     v >= 0 && not (v = h1 && Array.unsafe_get t (b + 1) = h2))
  do
    i := (!i + 1) land mask
  done;
  !i

(* Double the table.  Every slot index changes — callers must complete all
   slot-index-dependent work (sweep flush, pending resolution, the
   insert's own writes) BEFORE calling this. *)
let pgrow p =
  let ncap = 2 * (p.pmask + 1) in
  let nmask = ncap - 1 in
  let ntab = Array.make (3 * ncap) (-1) in
  let nt = Array.make ncap dummy_tkey in
  for i = 0 to p.pmask do
    let h1 = p.ptab.(3 * i) in
    if h1 >= 0 then begin
      let h2 = p.ptab.((3 * i) + 1) in
      let j = ref (phash h1 h2 land nmask) in
      while ntab.(3 * !j) >= 0 do
        j := (!j + 1) land nmask
      done;
      ntab.(3 * !j) <- h1;
      ntab.((3 * !j) + 1) <- h2;
      ntab.((3 * !j) + 2) <- p.ptab.((3 * i) + 2);
      nt.(!j) <- p.ptkeys.(i)
    end
  done;
  p.ptab <- ntab;
  p.ptkeys <- nt;
  p.pmask <- nmask

(* Rebuild the padded token bytes of a slot from its packed key words and
   stage them as kernel lane [j].  [tok16] bytes 8..15 are zero since
   creation and never written ([token_len <= 8]). *)
let[@inline] stage_token_block p j slot =
  let h1 = Array.unsafe_get p.ptab (3 * slot)
  and h2 = Array.unsafe_get p.ptab ((3 * slot) + 1) in
  let b = p.tok16 in
  Bytes.unsafe_set b 0 (Char.unsafe_chr (h1 lsr 24));
  Bytes.unsafe_set b 1 (Char.unsafe_chr ((h1 lsr 16) land 0xff));
  Bytes.unsafe_set b 2 (Char.unsafe_chr ((h1 lsr 8) land 0xff));
  Bytes.unsafe_set b 3 (Char.unsafe_chr (h1 land 0xff));
  Bytes.unsafe_set b 4 (Char.unsafe_chr (h2 lsr 24));
  Bytes.unsafe_set b 5 (Char.unsafe_chr ((h2 lsr 16) land 0xff));
  Bytes.unsafe_set b 6 (Char.unsafe_chr ((h2 lsr 8) land 0xff));
  Bytes.unsafe_set b 7 (Char.unsafe_chr (h2 land 0xff));
  Aes_bs.set_block p.batch j (Bytes.unsafe_to_string b) 0

let resolve_pending p =
  if p.pending_n > 0 then begin
    let start = ref 0 in
    while !start < p.pending_n do
      let cnt = min Aes_bs.width (p.pending_n - !start) in
      Aes_bs.reset p.batch;
      for j = 0 to cnt - 1 do
        stage_token_block p j (Array.unsafe_get p.pending (!start + j))
      done;
      Aes_bs.encrypt_blocks_into p.bs_key p.batch;
      for j = 0 to cnt - 1 do
        let slot = Array.unsafe_get p.pending (!start + j) in
        p.ptkeys.(slot) <- token_key_of_enc (Aes_bs.get_block p.batch j)
      done;
      start := !start + cnt
    done;
    p.pending_n <- 0
  end

(* ---- wire format ----

   Record sizes are defined above the sender type.  Records are built in a
   fixed-size scratch [Bytes.t] and appended with one [Buffer.add_subbytes]
   — the old per-character [Buffer.add_char] loops paid a bounds check and
   a potential resize per byte.  The writers are unsafe because every call
   site writes a statically in-range span of its (private, fixed-size)
   scratch. *)

external set_64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external bswap_64 : int64 -> int64 = "%bswap_int64"

(* Flag byte, top cipher byte, then the low 32 cipher bits and the 32-bit
   stream offset as ONE byte-swapped 64-bit store over pos+2..pos+9 — the
   unboxed-primitive chain replaces eight char stores on the per-token
   path.  Every caller writes into a private scratch with at least 10
   bytes headroom at [pos]. *)
let[@inline] put_record_at b pos flag cipher stream_off =
  Bytes.unsafe_set b pos flag;
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((cipher lsr 32) land 0xff));
  set_64u b (pos + 2)
    (bswap_64
       (Int64.logor
          (Int64.shift_left (Int64.of_int (cipher land 0xffffffff)) 32)
          (Int64.of_int (stream_off land 0xffffffff))))

let[@inline] put_record_head b flag cipher stream_off =
  put_record_at b 0 flag cipher stream_off

(* Flush the collected sweep: resolve first-seen token keys through the
   kernel, back-fill the deferred records (scalar per-occurrence ciphers —
   each token has its own key), then append the whole wire block in one
   piece.  Warm records were already written eagerly by the fold. *)
let packed_flush p ~k_ssl rec_bytes buf =
  resolve_pending p;
  if p.sw_defer > 0 then begin
    let wire = p.wire in
    let flag = if k_ssl = None then '\000' else '\001' in
    for d = 0 to p.sw_defer - 1 do
      let slot = Array.unsafe_get p.sw_slot d in
      (* resolve_pending replaced every pending dummy with its real key *)
      let tkey = Array.unsafe_get p.ptkeys slot in
      let salt = Array.unsafe_get p.sw_salt d in
      let cipher = Aes.encrypt_u64 tkey salt land rs_mask in
      let pos = Array.unsafe_get p.sw_pos d * rec_bytes in
      put_record_at wire pos flag cipher (Array.unsafe_get p.sw_off d);
      match k_ssl with
      | None -> ()
      | Some k ->
        embed_into tkey ~salt:(salt + 1) ~k_ssl:k ~dst:wire ~dst_off:(pos + 10)
    done;
    p.sw_defer <- 0
  end;
  if p.sw_n > 0 then begin
    Buffer.add_subbytes buf p.wire 0 (p.sw_n * rec_bytes);
    p.sw_n <- 0
  end

(* One token on the packed table, resolved immediately (scalar tkey on
   first sight) — the building block of the legacy per-token APIs, which
   run with an empty sweep (see the invariant above), so growing here
   never invalidates sweep state. *)
let packed_entry_scalar s p src off len =
  let h1, h2 = slice_words src off len in
  let i = pfind p h1 h2 in
  let i =
    if Array.unsafe_get p.ptab (3 * i) >= 0 then i
    else begin
      p.ptab.(3 * i) <- h1;
      p.ptab.((3 * i) + 1) <- h2;
      p.ptab.((3 * i) + 2) <- 0;
      p.ptkeys.(i) <- token_key s.key (materialize src off len);
      p.poccupied <- p.poccupied + 1;
      if 2 * p.poccupied > p.pmask + 1 then begin
        pgrow p;
        pfind p h1 h2
      end
      else i
    end
  in
  let tkey = Array.unsafe_get p.ptkeys i in
  let count = Array.unsafe_get p.ptab ((3 * i) + 2) in
  let salt = s.salt0 + (salt_stride s.mode * count) in
  p.ptab.((3 * i) + 2) <- count + 1;
  if count + 1 > s.max_count then s.max_count <- count + 1;
  (tkey, salt)

(* Token key + salt for one slice on either backend, bumping the counter. *)
let resolve_slice s src off len =
  match s.backend with
  | Tbl tbl ->
    let e = entry_for s tbl src off len in
    (e.tkey, next_salt s e)
  | Packed p -> packed_entry_scalar s p src off len

let check_k_ssl s k_ssl =
  match s.mode with
  | Exact -> None
  | Probable ->
    (match k_ssl with
     | None -> invalid_arg "Dpienc.sender_encrypt: Probable mode needs ~k_ssl"
     | Some k ->
       if String.length k <> 16 then
         invalid_arg "Dpienc.sender_encrypt: k_ssl must be 16 bytes";
       Some k)

let encrypt_one s ~k_ssl (tok : Tokenizer.token) =
  let k_ssl = check_k_ssl s k_ssl in
  let tkey, salt = resolve_slice s tok.Tokenizer.content 0 Tokenizer.token_len in
  let cipher = encrypt tkey ~salt in
  let embed =
    match k_ssl with
    | None -> None
    | Some k -> Some (Util.xor (encrypt_full tkey ~salt:(salt + 1)) k)
  in
  { cipher; embed; offset = tok.Tokenizer.offset }

let sender_encrypt s ?k_ssl tokens = List.map (encrypt_one s ~k_ssl) tokens

let sender_reset s =
  let stride = salt_stride s.mode in
  s.salt0 <- s.salt0 + (stride * (s.max_count + 1));
  s.max_count <- 0;
  (match s.backend with
   | Tbl tbl -> Counter_tbl.reset tbl
   | Packed p ->
     Array.fill p.ptab 0 (3 * (p.pmask + 1)) (-1);
     (* drop the expanded schedules so a reset returns the memory *)
     Array.fill p.ptkeys 0 (p.pmask + 1) dummy_tkey;
     p.poccupied <- 0);
  Obs.incr obs_resets;
  s.salt0

(* Streaming serialisation of one token slice: counter lookup, DPIEnc,
   wire bytes — no intermediate token or enc_token records, and (with the
   embed mask written in place by [embed_into]) no per-token heap
   allocation at all. *)
let encrypt_slice_into s ~k_ssl ~src ~off ~len ~stream_off buf =
  let tkey, salt = resolve_slice s src off len in
  let cipher = encrypt tkey ~salt in
  let scratch = s.scratch in
  match k_ssl with
  | None ->
    put_record_head scratch '\000' cipher stream_off;
    Buffer.add_subbytes buf scratch 0 exact_record_bytes
  | Some k ->
    put_record_head scratch '\001' cipher stream_off;
    embed_into tkey ~salt:(salt + 1) ~k_ssl:k ~dst:scratch ~dst_off:10;
    Buffer.add_subbytes buf scratch 0 probable_record_bytes

type tokenization = Window | Delimiter of { short_units : bool }

(* The batched fold pass.  Warm tokens (the steady state: tkey already in
   the table) compute their cipher on the spot and write their wire record
   straight into the sweep's wire block; first-seen tokens queue their
   slot for the kernel and defer the record for back-fill at flush.
   Counter semantics are identical to the scalar path — salts are
   assigned in token order, and record order is wire-position order. *)
let packed_encrypt_into s p ~k_ssl ~base ~tokenization payload buf =
  let rec_bytes =
    if k_ssl = None then exact_record_bytes else probable_record_bytes
  in
  let flag = if k_ssl = None then '\000' else '\001' in
  let stride = salt_stride s.mode in
  let salt0 = s.salt0 in
  let wire = p.wire in
  (* running max of the per-token counts, folded back into [s.max_count]
     once per call instead of once per token *)
  let cmax = ref s.max_count in
  (* Insert (h1, h2) at probe-terminal slot [i]: fill the slot, queue the
     tkey for the kernel, and only then (maybe) grow — the flush inside
     the grow branch still sees valid slot indices.  [ptkeys.(i)] is
     already the dummy sentinel (fresh or reset).  Returns the slot
     (re-probed if the table was rehashed). *)
  let insert_at i h1 h2 =
    p.ptab.(3 * i) <- h1;
    p.ptab.((3 * i) + 1) <- h2;
    p.ptab.((3 * i) + 2) <- 0;
    p.pending.(p.pending_n) <- i;
    p.pending_n <- p.pending_n + 1;
    p.poccupied <- p.poccupied + 1;
    if 2 * p.poccupied > p.pmask + 1 then begin
      packed_flush p ~k_ssl rec_bytes buf;
      pgrow p;
      pfind p h1 h2
    end
    else i
  in
  (* Counter bookkeeping for slot [i]; returns this occurrence's salt. *)
  let[@inline] take_salt i =
    let t = p.ptab in
    let b = (3 * i) + 2 in
    let c = Array.unsafe_get t b in
    Array.unsafe_set t b (c + 1);
    if c + 1 > !cmax then cmax := c + 1;
    salt0 + (stride * c)
  in
  (* Emit one token: warm slots encrypt scalar and write their record at
     the sweep position now; unresolved slots defer.  [tkey] is the
     caller's read of [ptkeys.(i)] — possibly a stale dummy if a flush
     resolved the slot after the read, which only costs a redundant
     defer (the back-fill reads the resolved key). *)
  let[@inline] emit i tkey salt off =
    let j = p.sw_n in
    (if tkey != dummy_tkey then begin
       let pos = j * rec_bytes in
       let cipher = Aes.encrypt_u64 tkey salt land rs_mask in
       put_record_at wire pos flag cipher off;
       match k_ssl with
       | None -> ()
       | Some k ->
         embed_into tkey ~salt:(salt + 1) ~k_ssl:k ~dst:wire
           ~dst_off:(pos + 10)
     end
     else begin
       let d = p.sw_defer in
       Array.unsafe_set p.sw_slot d i;
       Array.unsafe_set p.sw_salt d salt;
       Array.unsafe_set p.sw_off d off;
       Array.unsafe_set p.sw_pos d j;
       p.sw_defer <- d + 1
     end);
    p.sw_n <- j + 1;
    if p.sw_n = sweep_cap then packed_flush p ~k_ssl rec_bytes buf
  in
  (* Window tokenization, specialized: windows are always [token_len]
     bytes at stride 1, so the halves ROLL one byte per step instead of
     re-reading eight, and the next window's probe runs before the
     current token's encryption — its cache misses (slot line, tkey
     pointer) resolve under the ~140-lookup T-table chain instead of in
     front of it.  The look-ahead probe runs after the current
     token's insert (so it always sees the current table shape, even
     when the insert occupies the very slot the probe would stop at, or
     grows the table); flushes never move slots, so a
     resolved-after-preload tkey is at worst a benign stale dummy that
     costs one redundant defer. *)
  let window_pass () =
    let last = String.length payload - Tokenizer.token_len in
    if last < 0 then 0
    else begin
      let h1 = ref (slice_hi payload 0 8) and h2 = ref (slice_lo payload 0 8) in
      let ni = ref 0 and ntk = ref dummy_tkey and nvalid = ref false in
      for off = 0 to last do
        let ch1 = !h1 and ch2 = !h2 in
        let i = if !nvalid then !ni else pfind p ch1 ch2 in
        let fresh = Array.unsafe_get p.ptab (3 * i) < 0 in
        let i = if fresh then insert_at i ch1 ch2 else i in
        let tk =
          if fresh then dummy_tkey
          else if !nvalid then !ntk
          else Array.unsafe_get p.ptkeys i
        in
        let salt = take_salt i in
        (* look ahead one window before the encrypt below *)
        if off < last then begin
          let b = Char.code (String.unsafe_get payload (off + 8)) in
          let nh1 = ((ch1 lsl 8) lor (ch2 lsr 24)) land 0xffffffff in
          let nh2 = ((ch2 lsl 8) lor b) land 0xffffffff in
          h1 := nh1;
          h2 := nh2;
          let k = pfind p nh1 nh2 in
          ni := k;
          ntk := Array.unsafe_get p.ptkeys k;
          nvalid := true
        end;
        emit i tk salt (base + off)
      done;
      last + 1
    end
  in
  let f count ~off ~len =
    let h1 = slice_hi payload off len in
    let h2 = slice_lo payload off len in
    let i = pfind p h1 h2 in
    let i =
      if Array.unsafe_get p.ptab (3 * i) >= 0 then i else insert_at i h1 h2
    in
    let salt = take_salt i in
    emit i (Array.unsafe_get p.ptkeys i) salt (base + off);
    count + 1
  in
  let count =
    match tokenization with
    | Window ->
      let c = window_pass () in
      Tokenizer.note_window_scan payload;
      c
    | Delimiter { short_units } ->
      Tokenizer.fold_delimiter ~short_units payload ~init:0 ~f
  in
  if !cmax > s.max_count then s.max_count <- !cmax;
  packed_flush p ~k_ssl rec_bytes buf;
  count

let sender_encrypt_into s ?k_ssl ?(base = 0) ?(tokenization = Window) payload buf =
  let k_ssl = check_k_ssl s k_ssl in
  let wire0 = Buffer.length buf in
  let count =
    match s.backend with
    | Packed p -> packed_encrypt_into s p ~k_ssl ~base ~tokenization payload buf
    | Tbl _ ->
      let f count ~off ~len =
        encrypt_slice_into s ~k_ssl ~src:payload ~off ~len
          ~stream_off:(base + off) buf;
        count + 1
      in
      (match tokenization with
       | Window -> Tokenizer.fold_window payload ~init:0 ~f
       | Delimiter { short_units } ->
         Tokenizer.fold_delimiter ~short_units payload ~init:0 ~f)
  in
  Obs.add obs_bytes_in (String.length payload);
  Obs.add obs_wire_bytes (Buffer.length buf - wire0);
  Obs.add obs_tokens count;
  Obs.set_gauge obs_table_entries
    (match s.backend with
     | Tbl tbl -> Counter_tbl.length tbl
     | Packed p -> p.poccupied);
  Obs.set_gauge obs_max_count s.max_count;
  count

let encode_tokens toks =
  let per_token =
    match toks with
    | { embed = Some _; _ } :: _ -> probable_record_bytes
    | _ -> exact_record_bytes
  in
  let buf = Buffer.create (per_token * List.length toks) in
  let scratch = Bytes.create exact_record_bytes in
  List.iter
    (fun { cipher; embed; offset } ->
       put_record_head scratch (if embed = None then '\000' else '\001') cipher offset;
       Buffer.add_subbytes buf scratch 0 exact_record_bytes;
       match embed with None -> () | Some e -> Buffer.add_string buf e)
    toks;
  Buffer.contents buf

let[@inline] u8 s i = Char.code (String.unsafe_get s i)

(* Streaming decode: one callback per record, no list, no substrings.
   [embed_pos] is the byte position of the 16-byte embed inside [s], or
   [-1] when the record carries none.  The truncation check at the top of
   each iteration covers the whole 10-byte record head, so the field reads
   use unsafe indexing. *)
let decode_iter s ~f =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    let p = !pos in
    if p + exact_record_bytes > n then invalid_arg "Dpienc.decode_tokens: truncated";
    let has_embed = String.unsafe_get s p = '\001' in
    let cipher =
      (u8 s (p + 1) lsl 32) lor (u8 s (p + 2) lsl 24) lor (u8 s (p + 3) lsl 16)
      lor (u8 s (p + 4) lsl 8) lor u8 s (p + 5)
    in
    let offset =
      (u8 s (p + 6) lsl 24) lor (u8 s (p + 7) lsl 16) lor (u8 s (p + 8) lsl 8)
      lor u8 s (p + 9)
    in
    let p = p + exact_record_bytes in
    if has_embed then begin
      if p + 16 > n then invalid_arg "Dpienc.decode_tokens: truncated embed";
      f ~cipher ~offset ~embed_pos:p;
      pos := p + 16
    end
    else begin
      f ~cipher ~offset ~embed_pos:(-1);
      pos := p
    end
  done

let decode_tokens s =
  let acc = ref [] in
  decode_iter s ~f:(fun ~cipher ~offset ~embed_pos ->
      let embed = if embed_pos < 0 then None else Some (String.sub s embed_pos 16) in
      acc := { cipher; embed; offset } :: !acc);
  List.rev !acc

let wire_token_count s =
  let count = ref 0 in
  decode_iter s ~f:(fun ~cipher:_ ~offset:_ ~embed_pos:_ -> incr count);
  !count
