open Bbx_crypto
open Bbx_tokenizer

let rs_bits = 40
let rs_mask = (1 lsl rs_bits) - 1

type key = Aes.key

let raw_key_of_secret s = Kdf.derive ~secret:s ~label:"dpienc-key" 16

let key_of_secret s = Aes.expand_key (raw_key_of_secret s)

let token_block t =
  if String.length t <> Tokenizer.token_len then
    invalid_arg "Dpienc: token must be Tokenizer.token_len bytes";
  t ^ String.make (16 - Tokenizer.token_len) '\000'

let token_enc key t = Aes.encrypt_block key (token_block t)

type token_key = Aes.key

let token_key_of_enc e = Aes.expand_key e
let token_key key t = token_key_of_enc (token_enc key t)

let encrypt tk ~salt = Aes.encrypt_u64 tk salt land rs_mask

let encrypt_full tk ~salt = Aes.encrypt_block tk (String.make 8 '\000' ^ Util.u64_be salt)

type mode = Exact | Probable

let salt_stride = function Exact -> 1 | Probable -> 2

type enc_token = {
  cipher : int;
  embed : string option;
  offset : int;
}

type counter_entry = { mutable count : int; tkey : token_key }

type sender = {
  mode : mode;
  key : key;
  mutable salt0 : int;
  counters : (string, counter_entry) Hashtbl.t;
  mutable max_count : int;
}

let sender_create mode key ~salt0 =
  if mode = Probable && salt0 land 1 <> 0 then
    invalid_arg "Dpienc.sender_create: salt0 must be even";
  { mode; key; salt0; counters = Hashtbl.create 4096; max_count = 0 }

let sender_salt0 s = s.salt0

let encrypt_one s ~k_ssl (tok : Tokenizer.token) =
  let entry =
    match Hashtbl.find_opt s.counters tok.Tokenizer.content with
    | Some e -> e
    | None ->
      let e = { count = 0; tkey = token_key s.key tok.Tokenizer.content } in
      Hashtbl.add s.counters tok.Tokenizer.content e;
      e
  in
  let stride = salt_stride s.mode in
  let salt = s.salt0 + (stride * entry.count) in
  entry.count <- entry.count + 1;
  if entry.count > s.max_count then s.max_count <- entry.count;
  let cipher = encrypt entry.tkey ~salt in
  let embed =
    match s.mode with
    | Exact -> None
    | Probable ->
      (match k_ssl with
       | None -> invalid_arg "Dpienc.sender_encrypt: Probable mode needs ~k_ssl"
       | Some k ->
         if String.length k <> 16 then
           invalid_arg "Dpienc.sender_encrypt: k_ssl must be 16 bytes";
         Some (Util.xor (encrypt_full entry.tkey ~salt:(salt + 1)) k))
  in
  { cipher; embed; offset = tok.Tokenizer.offset }

let sender_encrypt s ?k_ssl tokens = List.map (encrypt_one s ~k_ssl) tokens

let sender_reset s =
  let stride = salt_stride s.mode in
  s.salt0 <- s.salt0 + (stride * (s.max_count + 1));
  s.max_count <- 0;
  Hashtbl.reset s.counters;
  s.salt0

(* Wire format per token: 1 flag byte, 5-byte cipher, 4-byte offset,
   then 16-byte embed iff the flag is 1. *)
let encode_tokens toks =
  let buf = Buffer.create (16 * List.length toks) in
  List.iter
    (fun { cipher; embed; offset } ->
       Buffer.add_char buf (if embed = None then '\000' else '\001');
       for i = 4 downto 0 do
         Buffer.add_char buf (Char.chr ((cipher lsr (8 * i)) land 0xff))
       done;
       Buffer.add_string buf (Util.u32_be offset);
       match embed with None -> () | Some e -> Buffer.add_string buf e)
    toks;
  Buffer.contents buf

let decode_tokens s =
  let n = String.length s in
  let rec go pos acc =
    if pos = n then List.rev acc
    else begin
      if pos + 10 > n then invalid_arg "Dpienc.decode_tokens: truncated";
      let has_embed = s.[pos] = '\001' in
      let cipher = ref 0 in
      for i = 0 to 4 do cipher := (!cipher lsl 8) lor Char.code s.[pos + 1 + i] done;
      let offset = Util.read_u32_be s (pos + 6) in
      let pos = pos + 10 in
      if has_embed then begin
        if pos + 16 > n then invalid_arg "Dpienc.decode_tokens: truncated embed";
        go (pos + 16) ({ cipher = !cipher; embed = Some (String.sub s pos 16); offset } :: acc)
      end
      else go pos ({ cipher = !cipher; embed = None; offset } :: acc)
    end
  in
  go 0 []
