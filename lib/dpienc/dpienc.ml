open Bbx_crypto
open Bbx_tokenizer
module Obs = Bbx_obs.Obs

(* Sender-side encryption accounting: payload bytes in, wire bytes out and
   tokens emitted are added once per [sender_encrypt_into] call; the salt
   counter table's occupancy and deepest counter are sampled as gauges at
   the same cadence — never inside the per-token loop. *)
let obs_bytes_in = Obs.counter "bbx_dpienc_sender_bytes_in_total"
let obs_wire_bytes = Obs.counter "bbx_dpienc_sender_wire_bytes_total"
let obs_tokens = Obs.counter "bbx_dpienc_sender_tokens_total"
let obs_table_entries = Obs.gauge "bbx_dpienc_counter_table_entries"
let obs_max_count = Obs.gauge "bbx_dpienc_counter_max"
let obs_resets = Obs.counter "bbx_dpienc_sender_resets_total"

let rs_bits = 40
let rs_mask = (1 lsl rs_bits) - 1

type key = Aes.key

let raw_key_of_secret s = Kdf.derive ~secret:s ~label:"dpienc-key" 16

let key_of_secret s = Aes.expand_key (raw_key_of_secret s)

(* Constant pads, hoisted off the hot path (one shared string each instead
   of a fresh [String.make] per call). *)
let block_pad = String.make (16 - Tokenizer.token_len) '\000'
let salt_pad = String.make 8 '\000'

let token_block t =
  if String.length t <> Tokenizer.token_len then
    invalid_arg "Dpienc: token must be Tokenizer.token_len bytes";
  t ^ block_pad

let token_enc key t = Aes.encrypt_block key (token_block t)

type token_key = Aes.key

let token_key_of_enc e = Aes.expand_key e
let token_key key t = token_key_of_enc (token_enc key t)

let encrypt tk ~salt = Aes.encrypt_u64 tk salt land rs_mask

let encrypt_full tk ~salt = Aes.encrypt_block tk (salt_pad ^ Util.u64_be salt)

(* [encrypt_full] xor k_ssl, written straight into [dst]: the mask block
   0^8 || BE64(salt) is produced by [Aes.encrypt_u64_into] (which bounds-
   checks the 16-byte range once) and k_ssl is folded over it in place. *)
let embed_into tk ~salt ~k_ssl ~dst ~dst_off =
  if String.length k_ssl <> 16 then
    invalid_arg "Dpienc.embed_into: k_ssl must be 16 bytes";
  Aes.encrypt_u64_into tk salt ~dst ~dst_off;
  for i = 0 to 15 do
    Bytes.unsafe_set dst (dst_off + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (dst_off + i))
          lxor Char.code (String.unsafe_get k_ssl i)))
  done

type mode = Exact | Probable

let salt_stride = function Exact -> 1 | Probable -> 2

type enc_token = {
  cipher : int;
  embed : string option;
  offset : int;
}

(* Wire record sizes (defined ahead of the sender, whose scratch buffer is
   sized by the larger one): per token a flag byte, 5-byte big-endian
   cipher, 4-byte big-endian stream offset, then the 16-byte embed iff the
   flag is 1 — 10 bytes in Exact mode, 26 in Probable. *)
let exact_record_bytes = 10
let probable_record_bytes = 26

type counter_entry = { mutable count : int; tkey : token_key }

(* Counter table keyed by token *value* but consulted with [(src, off, len)]
   slices: the probe key is a single mutable record reused for every lookup,
   so the hot path never calls [String.sub].  Stored keys materialise the
   (padded) token bytes exactly once, on first occurrence.  [len <
   token_len] slices hash/compare as if zero-padded to [token_len]. *)
module Slice_key = struct
  type t = { mutable src : string; mutable off : int; mutable len : int }

  let logical_byte k i = if i < k.len then Char.code k.src.[k.off + i] else 0

  let equal a b =
    let rec go i =
      i = Tokenizer.token_len || (logical_byte a i = logical_byte b i && go (i + 1))
    in
    go 0

  (* FNV-1a over the logical token bytes, seeded with the FNV offset
     basis; masked to stay a positive OCaml int. *)
  let hash k =
    let h = ref 0x811c9dc5 in
    for i = 0 to Tokenizer.token_len - 1 do
      h := (!h lxor logical_byte k i) * 0x01000193 land max_int
    done;
    !h
end

module Counter_tbl = Hashtbl.Make (Slice_key)

type sender = {
  mode : mode;
  key : key;
  mutable salt0 : int;
  counters : counter_entry Counter_tbl.t;
  probe : Slice_key.t;  (* reused for lookups; never stored *)
  scratch : Bytes.t;    (* one wire record, rebuilt in place per token *)
  mutable max_count : int;
}

let sender_create mode key ~salt0 =
  if mode = Probable && salt0 land 1 <> 0 then
    invalid_arg "Dpienc.sender_create: salt0 must be even";
  { mode; key; salt0;
    (* start small: the table grows with distinct tokens actually sent,
       so a busy sender reaches its working size within one page while an
       idle fleet connection stays at ~2 KiB instead of 32 KiB *)
    counters = Counter_tbl.create 256;
    probe = { Slice_key.src = ""; off = 0; len = 0 };
    scratch = Bytes.create probable_record_bytes;
    max_count = 0 }

let sender_salt0 s = s.salt0

(* Materialise the (padded) token value of a slice — first occurrence of a
   distinct token value only. *)
let materialize src off len =
  if len = Tokenizer.token_len then String.sub src off len
  else Tokenizer.pad_short (String.sub src off len)

let entry_for s src off len =
  s.probe.Slice_key.src <- src;
  s.probe.Slice_key.off <- off;
  s.probe.Slice_key.len <- len;
  (* exception-style lookup: [find_opt] would allocate a [Some] per token *)
  match Counter_tbl.find s.counters s.probe with
  | e -> e
  | exception Not_found ->
    let content = materialize src off len in
    let stored =
      { Slice_key.src = content; off = 0; len = Tokenizer.token_len }
    in
    let e = { count = 0; tkey = token_key s.key content } in
    Counter_tbl.add s.counters stored e;
    e

let next_salt s entry =
  let salt = s.salt0 + (salt_stride s.mode * entry.count) in
  entry.count <- entry.count + 1;
  if entry.count > s.max_count then s.max_count <- entry.count;
  salt

let check_k_ssl s k_ssl =
  match s.mode with
  | Exact -> None
  | Probable ->
    (match k_ssl with
     | None -> invalid_arg "Dpienc.sender_encrypt: Probable mode needs ~k_ssl"
     | Some k ->
       if String.length k <> 16 then
         invalid_arg "Dpienc.sender_encrypt: k_ssl must be 16 bytes";
       Some k)

let encrypt_one s ~k_ssl (tok : Tokenizer.token) =
  let k_ssl = check_k_ssl s k_ssl in
  let entry = entry_for s tok.Tokenizer.content 0 Tokenizer.token_len in
  let salt = next_salt s entry in
  let cipher = encrypt entry.tkey ~salt in
  let embed =
    match k_ssl with
    | None -> None
    | Some k -> Some (Util.xor (encrypt_full entry.tkey ~salt:(salt + 1)) k)
  in
  { cipher; embed; offset = tok.Tokenizer.offset }

let sender_encrypt s ?k_ssl tokens = List.map (encrypt_one s ~k_ssl) tokens

let sender_reset s =
  let stride = salt_stride s.mode in
  s.salt0 <- s.salt0 + (stride * (s.max_count + 1));
  s.max_count <- 0;
  Counter_tbl.reset s.counters;
  Obs.incr obs_resets;
  s.salt0

(* ---- wire format ----

   Record sizes are defined above the sender type.  Records are built in a
   fixed-size scratch [Bytes.t] and appended with one [Buffer.add_subbytes]
   — the old per-character [Buffer.add_char] loops paid a bounds check and
   a potential resize per byte.  The writers are unsafe because every call
   site writes a statically in-range span of its (private, fixed-size)
   scratch. *)

let[@inline] put_record_head b flag cipher stream_off =
  Bytes.unsafe_set b 0 flag;
  Bytes.unsafe_set b 1 (Char.unsafe_chr ((cipher lsr 32) land 0xff));
  Bytes.unsafe_set b 2 (Char.unsafe_chr ((cipher lsr 24) land 0xff));
  Bytes.unsafe_set b 3 (Char.unsafe_chr ((cipher lsr 16) land 0xff));
  Bytes.unsafe_set b 4 (Char.unsafe_chr ((cipher lsr 8) land 0xff));
  Bytes.unsafe_set b 5 (Char.unsafe_chr (cipher land 0xff));
  Bytes.unsafe_set b 6 (Char.unsafe_chr ((stream_off lsr 24) land 0xff));
  Bytes.unsafe_set b 7 (Char.unsafe_chr ((stream_off lsr 16) land 0xff));
  Bytes.unsafe_set b 8 (Char.unsafe_chr ((stream_off lsr 8) land 0xff));
  Bytes.unsafe_set b 9 (Char.unsafe_chr (stream_off land 0xff))

(* Streaming serialisation of one token slice: counter lookup, DPIEnc,
   wire bytes — no intermediate token or enc_token records, and (with the
   embed mask written in place by [embed_into]) no per-token heap
   allocation at all. *)
let encrypt_slice_into s ~k_ssl ~src ~off ~len ~stream_off buf =
  let entry = entry_for s src off len in
  let salt = next_salt s entry in
  let cipher = encrypt entry.tkey ~salt in
  let scratch = s.scratch in
  match k_ssl with
  | None ->
    put_record_head scratch '\000' cipher stream_off;
    Buffer.add_subbytes buf scratch 0 exact_record_bytes
  | Some k ->
    put_record_head scratch '\001' cipher stream_off;
    embed_into entry.tkey ~salt:(salt + 1) ~k_ssl:k ~dst:scratch ~dst_off:10;
    Buffer.add_subbytes buf scratch 0 probable_record_bytes

type tokenization = Window | Delimiter of { short_units : bool }

let sender_encrypt_into s ?k_ssl ?(base = 0) ?(tokenization = Window) payload buf =
  let k_ssl = check_k_ssl s k_ssl in
  let wire0 = Buffer.length buf in
  let f count ~off ~len =
    encrypt_slice_into s ~k_ssl ~src:payload ~off ~len ~stream_off:(base + off) buf;
    count + 1
  in
  let count =
    match tokenization with
    | Window -> Tokenizer.fold_window payload ~init:0 ~f
    | Delimiter { short_units } ->
      Tokenizer.fold_delimiter ~short_units payload ~init:0 ~f
  in
  Obs.add obs_bytes_in (String.length payload);
  Obs.add obs_wire_bytes (Buffer.length buf - wire0);
  Obs.add obs_tokens count;
  Obs.set_gauge obs_table_entries (Counter_tbl.length s.counters);
  Obs.set_gauge obs_max_count s.max_count;
  count

let encode_tokens toks =
  let per_token =
    match toks with
    | { embed = Some _; _ } :: _ -> probable_record_bytes
    | _ -> exact_record_bytes
  in
  let buf = Buffer.create (per_token * List.length toks) in
  let scratch = Bytes.create exact_record_bytes in
  List.iter
    (fun { cipher; embed; offset } ->
       put_record_head scratch (if embed = None then '\000' else '\001') cipher offset;
       Buffer.add_subbytes buf scratch 0 exact_record_bytes;
       match embed with None -> () | Some e -> Buffer.add_string buf e)
    toks;
  Buffer.contents buf

let[@inline] u8 s i = Char.code (String.unsafe_get s i)

(* Streaming decode: one callback per record, no list, no substrings.
   [embed_pos] is the byte position of the 16-byte embed inside [s], or
   [-1] when the record carries none.  The truncation check at the top of
   each iteration covers the whole 10-byte record head, so the field reads
   use unsafe indexing. *)
let decode_iter s ~f =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    let p = !pos in
    if p + exact_record_bytes > n then invalid_arg "Dpienc.decode_tokens: truncated";
    let has_embed = String.unsafe_get s p = '\001' in
    let cipher =
      (u8 s (p + 1) lsl 32) lor (u8 s (p + 2) lsl 24) lor (u8 s (p + 3) lsl 16)
      lor (u8 s (p + 4) lsl 8) lor u8 s (p + 5)
    in
    let offset =
      (u8 s (p + 6) lsl 24) lor (u8 s (p + 7) lsl 16) lor (u8 s (p + 8) lsl 8)
      lor u8 s (p + 9)
    in
    let p = p + exact_record_bytes in
    if has_embed then begin
      if p + 16 > n then invalid_arg "Dpienc.decode_tokens: truncated embed";
      f ~cipher ~offset ~embed_pos:p;
      pos := p + 16
    end
    else begin
      f ~cipher ~offset ~embed_pos:(-1);
      pos := p
    end
  done

let decode_tokens s =
  let acc = ref [] in
  decode_iter s ~f:(fun ~cipher ~offset ~embed_pos ->
      let embed = if embed_pos < 0 then None else Some (String.sub s embed_pos 16) in
      acc := { cipher; embed; offset } :: !acc);
  List.rev !acc

let wire_token_count s =
  let count = ref 0 in
  decode_iter s ~f:(fun ~cipher:_ ~offset:_ ~embed_pos:_ -> incr count);
  !count
