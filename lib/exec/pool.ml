module Obs = Bbx_obs.Obs
module Trace = Bbx_obs.Trace

(* Pool-level metrics use the delta gauge form: several pools may be live
   at once (the middlebox shard pool plus a rule-preparation pool), so
   their domain counts sum instead of clobbering. *)
let obs_tasks = Obs.counter "bbx_exec_tasks_total"
let obs_batches = Obs.counter "bbx_exec_batches_total"
let obs_domains = Obs.gauge "bbx_exec_domains"

(* Mailbox residency (enqueue -> batch splice), microseconds.  The
   timestamp rides in the message so it costs one clock read at push and
   one per drained batch; with both Obs and Trace disabled the sentinel
   [-1] skips the clock entirely. *)
let obs_queue_wait =
  Obs.histogram "bbx_exec_queue_wait_us"
    ~buckets:[| 1; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000;
                25000; 50000; 100000; 250000; 1000000 |]

let stamp_ns () =
  if Obs.enabled () || Trace.enabled () then Trace.now_ns () else -1

(* Everything a worker may be asked to do goes through its mailbox, in
   FIFO order.  That single rule is the whole concurrency story: a
   worker's state is only ever touched by the domain owning it (plus the
   front under {!quiesce}, while the worker provably holds no batch). *)
type ('s, 'r) msg =
  | Exec of { f : 's -> unit; enq_ns : int }
  | Ticketed of { seq : int; task : 's -> 'r option; enq_ns : int }

type ('s, 'r) worker = {
  state : 's;
  lock : Mutex.t;
  nonempty : Condition.t;          (* worker waits for work *)
  space : Condition.t;             (* front waits for mailbox capacity *)
  idle : Condition.t;              (* front waits for quiescence *)
  queue : ('s, 'r) msg Queue.t;
  mutable busy : bool;             (* worker is processing a batch *)
  mutable stopping : bool;
  mutable out : (int * 'r) list;   (* completed ticketed results, newest first *)
  mutable failed : exn option;     (* first worker-side exception, sticky *)
}

type ('s, 'r) t = {
  workers : ('s, 'r) worker array;
  threads : unit Domain.t array;
  capacity : int;
  mutable seq : int;               (* next submission ticket *)
  mutable pending : int;           (* tickets not yet drained *)
  mutable is_live : bool;
}

(* ---- worker ---- *)

let exec_msg state msg acc =
  match msg with
  | Exec { f; _ } -> f state
  | Ticketed { seq; task; _ } ->
    (match task state with
     | None -> ()
     | Some r -> acc := (seq, r) :: !acc)

let msg_enq_ns = function
  | Exec { enq_ns; _ } | Ticketed { enq_ns; _ } -> enq_ns

(* One domain per worker: splice out up to [batch_max] messages under the
   lock, process them without it, publish results, repeat.  Quiescence
   ([idle]) means "mailbox empty and no batch in flight" — the front uses
   it for [drain]/[quiesce] and all other reads of worker state. *)
let worker_loop batch_max w =
  let batch = Queue.create () in
  Mutex.lock w.lock;
  let rec loop () =
    if Queue.is_empty w.queue then begin
      w.busy <- false;
      Condition.broadcast w.idle;
      if w.stopping then Mutex.unlock w.lock
      else begin
        Condition.wait w.nonempty w.lock;
        loop ()
      end
    end
    else begin
      w.busy <- true;
      let n = ref 0 in
      while !n < batch_max && not (Queue.is_empty w.queue) do
        Queue.add (Queue.pop w.queue) batch;
        incr n
      done;
      Condition.broadcast w.space;
      Mutex.unlock w.lock;
      let acc = ref [] in
      (* one clock read covers the whole spliced batch: every message in
         it became runnable at the same moment *)
      let t_deq = ref (-1) in
      Queue.iter
        (fun msg ->
           let enq = msg_enq_ns msg in
           if enq >= 0 then begin
             if !t_deq < 0 then t_deq := Trace.now_ns ();
             Obs.observe obs_queue_wait ((!t_deq - enq) / 1000)
           end;
           try exec_msg w.state msg acc
           with e -> if w.failed = None then w.failed <- Some e)
        batch;
      Queue.clear batch;
      Obs.add obs_tasks !n;
      Obs.incr obs_batches;
      Mutex.lock w.lock;
      w.out <- !acc @ w.out;
      loop ()
    end
  in
  loop ()

(* ---- front ---- *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let create ?domains ?(capacity = 1024) ?(batch_max = 64) ~state () =
  let n = match domains with Some n -> n | None -> default_domains () in
  if n < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if capacity < 1 then invalid_arg "Pool.create: capacity must be >= 1";
  if batch_max < 1 then invalid_arg "Pool.create: batch_max must be >= 1";
  let workers =
    Array.init n (fun i ->
        { state = state i;
          lock = Mutex.create ();
          nonempty = Condition.create ();
          space = Condition.create ();
          idle = Condition.create ();
          queue = Queue.create ();
          busy = false;
          stopping = false;
          out = [];
          failed = None })
  in
  let threads = Array.map (fun w -> Domain.spawn (fun () -> worker_loop batch_max w)) workers in
  Obs.add_gauge obs_domains n;
  { workers; threads; capacity; seq = 0; pending = 0; is_live = true }

let domains t = Array.length t.workers

let live t = t.is_live

let check_live t op =
  if not t.is_live then invalid_arg (Printf.sprintf "Pool.%s: pool is shut down" op)

let worker_of t i op =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg (Printf.sprintf "Pool.%s: no worker %d" op i);
  t.workers.(i)

let push t w msg =
  Mutex.lock w.lock;
  while Queue.length w.queue >= t.capacity do Condition.wait w.space w.lock done;
  Queue.add msg w.queue;
  Condition.signal w.nonempty;
  Mutex.unlock w.lock

let exec t ~worker f =
  check_live t "exec";
  push t (worker_of t worker "exec") (Exec { f; enq_ns = stamp_ns () })

let submit t ~worker task =
  check_live t "submit";
  let w = worker_of t worker "submit" in
  let seq = t.seq in
  t.seq <- seq + 1;
  t.pending <- t.pending + 1;
  push t w (Ticketed { seq; task; enq_ns = stamp_ns () });
  seq

let pending t = t.pending

(* Block until the worker's mailbox is empty and its domain idle, then
   run [f] while still holding the lock: the mutex acquisition orders the
   worker's writes before the front's reads, so [f] may freely read the
   worker's state. *)
let quiesce_worker w f =
  Mutex.lock w.lock;
  while not (Queue.is_empty w.queue && not w.busy) do
    Condition.wait w.idle w.lock
  done;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) (fun () -> f ())

let quiesce t ~worker f =
  check_live t "quiesce";
  let w = worker_of t worker "quiesce" in
  quiesce_worker w (fun () -> f w.state)

let fold_workers t ~init ~f =
  check_live t "fold_workers";
  Array.fold_left (fun acc w -> quiesce_worker w (fun () -> f acc w.state)) init t.workers

let check_failed t =
  Array.iter (fun w -> match w.failed with Some e -> raise e | None -> ()) t.workers

let barrier t =
  check_live t "barrier";
  Array.iter (fun w -> quiesce_worker w (fun () -> ())) t.workers;
  check_failed t

let drain_list t =
  check_live t "drain";
  let results =
    Array.fold_left
      (fun acc w ->
         quiesce_worker w (fun () ->
             let out = w.out in
             w.out <- [];
             List.rev_append out acc))
      [] t.workers
  in
  check_failed t;
  t.pending <- 0;
  List.sort (fun (a, _) (b, _) -> compare a b) results

let drain t ~f = List.iter (fun (seq, r) -> f ~seq r) (drain_list t)

let map t ~n ~f =
  check_live t "map";
  if n = 0 then [||]
  else begin
    let slots = Array.make n None in
    let d = Array.length t.workers in
    for i = 0 to n - 1 do
      (* distinct slots from distinct domains: race-free by construction,
         and the barrier's mutex acquisitions publish the writes *)
      exec t ~worker:(i mod d) (fun s -> slots.(i) <- Some (f i s))
    done;
    barrier t;
    Array.map (function Some v -> v | None -> assert false) slots
  end

let shutdown t =
  if t.is_live then begin
    t.is_live <- false;
    Array.iter
      (fun w ->
         Mutex.lock w.lock;
         w.stopping <- true;
         Condition.signal w.nonempty;
         Mutex.unlock w.lock)
      t.workers;
    Array.iter Domain.join t.threads;
    Obs.add_gauge obs_domains (- Array.length t.workers)
  end

let with_pool ?domains ?capacity ?batch_max ~state f =
  let t = create ?domains ?capacity ?batch_max ~state () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
