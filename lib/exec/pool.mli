(** A reusable pool of worker domains with bounded, batched mailboxes.

    This is the generic half of the middlebox shard pool: [N] worker
    domains, each owning a private piece of mutable state ['s] that only
    it ever touches, fed through a per-worker bounded FIFO mailbox.  The
    concurrency contract is inherited wholesale from the shard pool
    (DESIGN.md §9):

    - every task sent to worker [i] runs on worker [i]'s domain, in the
      order it was enqueued (per-worker FIFO);
    - the front reads a worker's state only after {e quiescing} it —
      waiting under the worker's mutex until its mailbox is empty and no
      batch is in flight — so the mutex acquisition orders the worker's
      writes before the front's reads;
    - worker-side exceptions are sticky: the first one is kept and
      re-raised on the front at the next {!drain} or {!map} barrier.

    Two task flavours:

    - {!exec}: fire-and-forget state mutation (registration, resets,
      teardown in the shard pool);
    - {!submit}: ticketed work carrying a globally ordered sequence
      number; completed results are collected by {!drain} in submission
      order, so callers observe a deterministic serialisation no matter
      how the workers interleaved.

    {!map} layers a deterministic parallel array construction on top:
    independent per-index tasks are dealt round-robin across workers and
    the call returns only after every worker has quiesced.  The shard
    pool uses the mailbox surface; rule preparation
    ({!Blindbox.Ruleprep}) uses [map] for its embarrassingly parallel
    garbling stages.

    A pool holds OS threads: always {!shutdown} it (or use
    {!with_pool}). *)

(** A pool whose workers each own one ['s] and whose ticketed tasks
    produce ['r] results. *)
type ('s, 'r) t

(** [default_domains ()] — [recommended_domain_count - 1] (leaving a core
    for the submitting front), at least 1. *)
val default_domains : unit -> int

(** [create ?domains ?capacity ?batch_max ~state ()] spawns [domains]
    worker domains (default {!default_domains}), worker [i] owning
    [state i] — called on the front domain before the worker starts, so
    it may capture anything.  [capacity] bounds each mailbox (enqueueing
    past it blocks until the worker catches up); [batch_max] caps how
    many tasks a worker dequeues per lock acquisition. *)
val create :
  ?domains:int -> ?capacity:int -> ?batch_max:int -> state:(int -> 's) -> unit ->
  ('s, 'r) t

(** Number of worker domains. *)
val domains : ('s, 'r) t -> int

(** [live t] — [false] once {!shutdown} has run. *)
val live : ('s, 'r) t -> bool

(** [exec t ~worker f] enqueues the fire-and-forget task [f] on
    [worker]'s mailbox.  Raises [Invalid_argument] on a bad index or a
    shut-down pool. *)
val exec : ('s, 'r) t -> worker:int -> ('s -> unit) -> unit

(** [submit t ~worker task] enqueues a ticketed task and returns its
    ticket (a global sequence number, strictly increasing across the
    pool).  A task returning [Some r] surfaces [(seq, r)] at the next
    {!drain}; [None] means the task chose to drop its result (no drain
    callback — the shard pool uses this for deliveries to blocked
    connections). *)
val submit : ('s, 'r) t -> worker:int -> ('s -> 'r option) -> int

(** Tickets submitted and not yet drained. *)
val pending : ('s, 'r) t -> int

(** [drain t ~f] quiesces every worker, re-raises the first worker-side
    exception if any, then calls [f ~seq r] once per completed ticketed
    task in ticket order and resets {!pending} to 0. *)
val drain : ('s, 'r) t -> f:(seq:int -> 'r -> unit) -> unit

(** [drain_list t] — {!drain} into a ticket-ordered [(seq, result)]
    list. *)
val drain_list : ('s, 'r) t -> (int * 'r) list

(** [quiesce t ~worker f] waits until [worker]'s mailbox is empty and no
    batch is in flight, then runs [f state] on the {e front} domain while
    still holding the worker's mutex (so [f] may freely read — or, with
    care, write — the worker's state; keep it short, the worker is
    stalled meanwhile).  Does not re-raise sticky worker failures. *)
val quiesce : ('s, 'r) t -> worker:int -> ('s -> 'a) -> 'a

(** [fold_workers t ~init ~f] — {!quiesce}-protected left fold over every
    worker's state, in worker order. *)
val fold_workers : ('s, 'r) t -> init:'a -> f:('a -> 's -> 'a) -> 'a

(** [barrier t] waits for every worker to quiesce, then re-raises the
    first sticky worker-side exception, if any. *)
val barrier : ('s, 'r) t -> unit

(** [map t ~n ~f] builds [[| f 0 s; ...; f (n-1) s |]] with the calls
    dealt round-robin across the workers ([f i] runs on worker
    [i mod domains], against that worker's state), then {!barrier}s.
    Tasks must be independent — there is no ordering between distinct
    indices beyond per-worker FIFO.  If any task raised, the barrier
    re-raises it; the call also waits out (and runs after) whatever was
    already queued on the mailboxes. *)
val map : ('s, 'r) t -> n:int -> f:(int -> 's -> 'a) -> 'a array

(** [shutdown t] waits for the mailboxes to empty, stops and joins every
    worker domain.  Idempotent; the pool is unusable afterwards. *)
val shutdown : ('s, 'r) t -> unit

(** [with_pool ... f] — {!create}, run [f], always {!shutdown}. *)
val with_pool :
  ?domains:int -> ?capacity:int -> ?batch_max:int -> state:(int -> 's) ->
  (('s, 'r) t -> 'a) -> 'a
