(* Little-endian arrays of 31-bit limbs; the empty array is zero and no
   value has a leading (most-significant) zero limb.  31-bit limbs keep all
   intermediate products and accumulators within OCaml's 63-bit native [int]:
   (2^31-1)^2 + 2*(2^31-1) = 2^62 - 1 = max_int. *)

type t = int array

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let zero : t = [||]
let is_zero a = Array.length a = 0

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let one = of_int 1
let two = of_int 2

let to_int a =
  (* An OCaml int holds just over two limbs. *)
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl limb_bits))
  | 3 when a.(2) <= (max_int lsr (2 * limb_bits)) ->
    Some (a.(0) lor (a.(1) lsl limb_bits) lor (a.(2) lsl (2 * limb_bits)))
  | _ -> None

let is_even a = is_zero a || a.(0) land 1 = 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let acc = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- acc land mask;
        carry := acc lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize r
  end

let shift_left a k =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right a k =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land mask else 0 in
        r.(i) <- if bits = 0 then a.(i + limbs) else lo lor hi
      done;
      normalize r
    end
  end

let bit_length a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n = if n = 0 then 0 else 1 + width (n lsr 1) in
    (la - 1) * limb_bits + width top
  end

let testbit a i =
  let limb = i / limb_bits and bit = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr bit) land 1 = 1

(* Division.  Single-limb divisors take a fast path; the general case is
   Knuth's Algorithm D with the divisor normalized so its top limb is at
   least base/2, which bounds the trial quotient error at 2 before
   correction and 1 before the add-back step. *)

let divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, of_int !r)

let divmod a b =
  if is_zero b then raise Division_by_zero
  else if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then divmod_small a b.(0)
  else begin
    let shift =
      let rec go v = if v land (1 lsl (limb_bits - 1)) <> 0 then 0 else 1 + go (v lsl 1) in
      go b.(Array.length b - 1)
    in
    let v = shift_left b shift in
    let n = Array.length v in
    let u0 = shift_left a shift in
    let m = Array.length u0 - n in
    (* Working copy of the dividend with one extra top limb. *)
    let u = Array.make (Array.length u0 + 1) 0 in
    Array.blit u0 0 u 0 (Array.length u0);
    let q = Array.make (m + 1) 0 in
    let vn1 = v.(n - 1) and vn2 = v.(n - 2) in
    for j = m downto 0 do
      let top = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let qhat = ref (top / vn1) in
      let rhat = ref (top - (!qhat * vn1)) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := top - (!qhat * vn1)
      end;
      while !rhat < base && !qhat * vn2 > (!rhat lsl limb_bits) lor u.(j + n - 2) do
        decr qhat;
        rhat := !rhat + vn1
      done;
      (* Multiply-subtract [qhat * v] from [u] at offset [j]. *)
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !borrow in
        let d = u.(i + j) - (p land mask) in
        if d < 0 then begin u.(i + j) <- d + base; borrow := (p lsr limb_bits) + 1 end
        else begin u.(i + j) <- d; borrow := p lsr limb_bits end
      done;
      let d = u.(j + n) - !borrow in
      if d < 0 then begin
        (* qhat was one too large; add the divisor back. *)
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !carry in
          u.(i + j) <- s land mask;
          carry := s lsr limb_bits
        done;
        u.(j + n) <- (d + !carry) land mask;
        assert (d + !carry = 0)
      end else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let mod_pow ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  let b = rem b modulus in
  let nbits = bit_length exp in
  let acc = ref one and sq = ref b in
  for i = 0 to nbits - 1 do
    if testbit exp i then acc := rem (mul !acc !sq) modulus;
    if i < nbits - 1 then sq := rem (mul !sq !sq) modulus
  done;
  rem !acc modulus

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let mod_inv a m =
  (* Iterative extended Euclid keeping the Bezout coefficient for [a]
     reduced modulo [m], so all arithmetic stays in the naturals:
     x_new = x0 - q * x1 (mod m). *)
  if is_zero m then raise Division_by_zero;
  let a = rem a m in
  if is_zero a then raise Not_found;
  let mod_sub_mul x0 q x1 =
    (* x0 - q * x1 (mod m), operands already reduced mod m *)
    let p = rem (mul q x1) m in
    if compare x0 p >= 0 then sub x0 p else sub (add x0 m) p
  in
  let rec go r0 r1 x0 x1 =
    if is_zero r1 then
      if equal r0 one then x0 else raise Not_found
    else begin
      let q, r2 = divmod r0 r1 in
      go r1 r2 x1 (mod_sub_mul x0 q x1)
    end
  in
  go m a zero one

let of_bytes_be s =
  let r = ref zero in
  String.iter (fun c -> r := add (shift_left !r 8) (of_int (Char.code c))) s;
  !r

let to_bytes_be ?len a =
  let nbytes = (bit_length a + 7) / 8 in
  let out_len = match len with
    | None -> max nbytes 1
    | Some l ->
      if l < nbytes then invalid_arg "Nat.to_bytes_be: value too large for len";
      l
  in
  let buf = Bytes.make out_len '\000' in
  for i = 0 to nbytes - 1 do
    let byte = (shift_right a (8 * i)) in
    let v = if is_zero byte then 0 else byte.(0) land 0xff in
    Bytes.set buf (out_len - 1 - i) (Char.chr v)
  done;
  Bytes.to_string buf

let of_hex s =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Nat.of_hex: bad digit"
  in
  let r = ref zero in
  String.iter (fun c -> r := add (shift_left !r 4) (of_int (digit c))) s;
  !r

let to_hex a =
  if is_zero a then "0"
  else begin
    let nnib = (bit_length a + 3) / 4 in
    let buf = Buffer.create nnib in
    for i = nnib - 1 downto 0 do
      let nib = shift_right a (4 * i) in
      let v = if is_zero nib then 0 else nib.(0) land 0xf in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    Buffer.contents buf
  end

let of_string s =
  if s = "" then invalid_arg "Nat.of_string: empty";
  let ten = of_int 10 in
  let r = ref zero in
  String.iter
    (fun c ->
       match c with
       | '0' .. '9' -> r := add (mul !r ten) (of_int (Char.code c - Char.code '0'))
       | '_' -> ()
       | _ -> invalid_arg "Nat.of_string: bad digit")
    s;
  !r

let to_string a =
  if is_zero a then "0"
  else begin
    (* Peel nine decimal digits at a time through the small-divisor path. *)
    let chunk = 1_000_000_000 in
    let rec go a acc =
      if is_zero a then acc
      else begin
        let q, r = divmod_small a chunk in
        let r = match to_int r with Some v -> v | None -> assert false in
        if is_zero q then string_of_int r :: acc
        else go q (Printf.sprintf "%09d" r :: acc)
      end
    in
    String.concat "" (go a [])
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

let to_limbs a = Array.copy a
let of_limbs l = normalize (Array.copy l)
