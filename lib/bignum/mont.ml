(* Coarsely Integrated Operand Scanning (CIOS) Montgomery multiplication
   over the 31-bit limbs of {!Nat}.  For an n-limb odd modulus m and
   R = 2^(31n), mont_mul(a, b) = a*b*R^-1 mod m; values are kept in
   Montgomery form a*R mod m between multiplications. *)

let limb_bits = Nat.limb_bits
let base = 1 lsl limb_bits
let mask = base - 1

type ctx = {
  m : Nat.t;
  m_limbs : int array;   (* length n, unpadded modulus limbs *)
  n : int;
  m0' : int;             (* -m^-1 mod 2^31 *)
  r2 : int array;        (* R^2 mod m, as n limbs (Montgomery form of R) *)
  one_mont : int array;  (* R mod m = Montgomery form of 1 *)
}

(* inverse of an odd x modulo 2^31 by Newton iteration *)
let inv_mod_base x =
  let inv = ref x in
  (* each step doubles the number of correct low bits: 5 steps cover 31 *)
  for _ = 1 to 5 do
    inv := (!inv * (2 - (x * !inv))) land mask
  done;
  assert ((x * !inv) land mask = 1);
  !inv

let pad limbs n =
  let out = Array.make n 0 in
  Array.blit limbs 0 out 0 (Array.length limbs);
  out

let create m =
  if Nat.is_even m || Nat.compare m Nat.one <= 0 then
    invalid_arg "Mont.create: modulus must be odd and > 1";
  let m_limbs = Nat.to_limbs m in
  let n = Array.length m_limbs in
  let m0' = (base - inv_mod_base m_limbs.(0)) land mask in
  let r = Nat.shift_left Nat.one (limb_bits * n) in
  let r2 = Nat.rem (Nat.mul r r) m in
  let one_mont = Nat.rem r m in
  { m;
    m_limbs;
    n;
    m0';
    r2 = pad (Nat.to_limbs r2) n;
    one_mont = pad (Nat.to_limbs one_mont) n }

let modulus ctx = ctx.m

(* t <- a*b*R^-1 mod m; a, b, t are n-limb arrays (t may alias neither). *)
let mont_mul ctx a b t =
  let n = ctx.n and m = ctx.m_limbs and m0' = ctx.m0' in
  Array.fill t 0 n 0;
  let t_n = ref 0 and t_n1 = ref 0 in
  for i = 0 to n - 1 do
    (* t += a_i * b *)
    let ai = a.(i) in
    let c = ref 0 in
    for j = 0 to n - 1 do
      let s = t.(j) + (ai * b.(j)) + !c in
      t.(j) <- s land mask;
      c := s lsr limb_bits
    done;
    let s = !t_n + !c in
    t_n := s land mask;
    t_n1 := !t_n1 + (s lsr limb_bits);
    (* u = t_0 * m0' mod base; t += u * m; t >>= one limb *)
    let u = (t.(0) * m0') land mask in
    let s = t.(0) + (u * m.(0)) in
    let c = ref (s lsr limb_bits) in
    for j = 1 to n - 1 do
      let s = t.(j) + (u * m.(j)) + !c in
      t.(j - 1) <- s land mask;
      c := s lsr limb_bits
    done;
    let s = !t_n + !c in
    t.(n - 1) <- s land mask;
    t_n := !t_n1 + (s lsr limb_bits);
    t_n1 := 0
  done;
  (* conditional subtraction: result < 2m here *)
  if !t_n > 0
  || (let rec ge i =
        if i < 0 then true
        else if t.(i) <> m.(i) then t.(i) > m.(i)
        else ge (i - 1)
      in
      ge (n - 1))
  then begin
    let borrow = ref 0 in
    for j = 0 to n - 1 do
      let d = t.(j) - m.(j) - !borrow in
      if d < 0 then begin t.(j) <- d + base; borrow := 1 end
      else begin t.(j) <- d; borrow := 0 end
    done
  end

let mod_pow ctx ~base:b ~exp =
  let n = ctx.n in
  let b = Nat.rem b ctx.m in
  let b_limbs = pad (Nat.to_limbs b) n in
  (* convert to Montgomery form: b * R = mont_mul(b, R^2) *)
  let bm = Array.make n 0 in
  mont_mul ctx b_limbs ctx.r2 bm;
  let acc = Array.copy ctx.one_mont in
  let tmp = Array.make n 0 in
  let nbits = Nat.bit_length exp in
  for i = nbits - 1 downto 0 do
    mont_mul ctx acc acc tmp;
    Array.blit tmp 0 acc 0 n;
    if Nat.testbit exp i then begin
      mont_mul ctx acc bm tmp;
      Array.blit tmp 0 acc 0 n
    end
  done;
  (* convert out of Montgomery form: mont_mul(acc, 1) *)
  let one = Array.make n 0 in
  one.(0) <- 1;
  mont_mul ctx acc one tmp;
  Nat.of_limbs tmp

let mul ctx a b =
  let n = ctx.n in
  let a = pad (Nat.to_limbs (Nat.rem a ctx.m)) n in
  let b = pad (Nat.to_limbs (Nat.rem b ctx.m)) n in
  let am = Array.make n 0 and t = Array.make n 0 in
  mont_mul ctx a ctx.r2 am;      (* a*R *)
  mont_mul ctx am b t;           (* a*R * b * R^-1 = a*b *)
  Nat.of_limbs t
