let small_primes =
  (* Primes below 550: enough trial division to reject ~80% of candidates
     before the Miller-Rabin rounds. *)
  let sieve = Array.make 550 true in
  sieve.(0) <- false; sieve.(1) <- false;
  for i = 2 to 549 do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j < 550 do sieve.(!j) <- false; j := !j + i done
    end
  done;
  List.filter (fun i -> sieve.(i)) (List.init 550 Fun.id)

let random_below ~rand_bytes n =
  if Nat.is_zero n then invalid_arg "Prime.random_below: zero bound";
  let bits = Nat.bit_length n in
  let nbytes = (bits + 7) / 8 in
  let excess = nbytes * 8 - bits in
  let rec draw () =
    let candidate = Nat.shift_right (Nat.of_bytes_be (rand_bytes nbytes)) excess in
    if Nat.compare candidate n < 0 then candidate else draw ()
  in
  draw ()

let miller_rabin_round ~rand_bytes ctx n =
  (* n is odd and >= 5 here.  Write n - 1 = 2^s * d and test a random base. *)
  let n1 = Nat.sub n Nat.one in
  let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else (d, s) in
  let d, s = split n1 0 in
  let a = Nat.add Nat.two (random_below ~rand_bytes (Nat.sub n (Nat.of_int 4))) in
  let x = Mont.mod_pow ctx ~base:a ~exp:d in
  if Nat.equal x Nat.one || Nat.equal x n1 then true
  else begin
    let rec go x i =
      if i >= s - 1 then false
      else begin
        let x = Nat.rem (Nat.mul x x) n in
        if Nat.equal x n1 then true else go x (i + 1)
      end
    in
    go x 0
  end

let is_probable_prime ?(rounds = 24) ~rand_bytes n =
  match Nat.to_int n with
  | Some v when v < 550 -> List.mem v small_primes
  | _ ->
    if Nat.is_even n then false
    else if List.exists
        (fun p -> p <> 2 && Nat.is_zero (Nat.rem n (Nat.of_int p)))
        small_primes
    then false
    else begin
      let ctx = Mont.create n in
      let rec go i = i >= rounds || (miller_rabin_round ~rand_bytes ctx n && go (i + 1)) in
      go 0
    end

let gen_prime ~rand_bytes ~bits =
  if bits < 8 then invalid_arg "Prime.gen_prime: need at least 8 bits";
  let rec draw () =
    let nbytes = (bits + 7) / 8 in
    let raw = Nat.of_bytes_be (rand_bytes nbytes) in
    let excess = nbytes * 8 - bits in
    let candidate = Nat.shift_right raw excess in
    (* Force the top bit (exact width) and the bottom bit (odd). *)
    let top = Nat.shift_left Nat.one (bits - 1) in
    let candidate =
      let c = if Nat.testbit candidate (bits - 1) then candidate else Nat.add candidate top in
      if Nat.is_even c then Nat.add c Nat.one else c
    in
    if is_probable_prime ~rand_bytes candidate then candidate else draw ()
  in
  draw ()
