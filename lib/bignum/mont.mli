(** Montgomery-form modular exponentiation.

    Division-free modular multiplication (CIOS reduction) for odd moduli —
    the workhorse behind the Diffie–Hellman handshake, the base oblivious
    transfers, RSA rule signatures and the functional-encryption strawman,
    all of which exponentiate modulo fixed odd primes.  Verified against
    the division-based {!Nat.mod_pow} by the property tests. *)

type ctx

(** [create m] precomputes the Montgomery context for an odd modulus
    [m > 1].  Raises [Invalid_argument] otherwise. *)
val create : Nat.t -> ctx

(** [modulus ctx]. *)
val modulus : ctx -> Nat.t

(** [mod_pow ctx ~base ~exp] is [base^exp mod m]. *)
val mod_pow : ctx -> base:Nat.t -> exp:Nat.t -> Nat.t

(** [mul ctx a b] is [a * b mod m] (operands in ordinary representation;
    one conversion round-trip per call — prefer {!mod_pow} for chains). *)
val mul : ctx -> Nat.t -> Nat.t -> Nat.t
