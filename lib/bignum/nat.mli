(** Arbitrary-precision natural numbers.

    Little-endian arrays of 31-bit limbs, always normalized (no leading zero
    limb).  All operations are functional; no value is ever mutated after it
    is returned.  This module is the arithmetic substrate for oblivious
    transfer ({!Bbx_ot}) and rule signatures ({!Bbx_sig}). *)

type t

val zero : t
val one : t
val two : t

(** [of_int n] converts a non-negative [int].  Raises [Invalid_argument] on
    negative input. *)
val of_int : int -> t

(** [to_int t] is [Some n] when [t] fits in an OCaml [int]. *)
val to_int : t -> int option

val is_zero : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t

(** [sub a b] is [a - b].  Raises [Invalid_argument] if [b > a]. *)
val sub : t -> t -> t

val mul : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)].  Raises [Division_by_zero] when
    [b = 0]. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [pow b e] is [b]{^ [e]} for a small exponent. *)
val pow : t -> int -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** [bit_length t] is the position of the highest set bit plus one;
    [bit_length zero = 0]. *)
val bit_length : t -> int

(** [testbit t i] is bit [i] of [t] (little-endian bit order). *)
val testbit : t -> int -> bool

(** [mod_pow ~base ~exp ~modulus] is [base]{^ [exp]} [mod modulus]. *)
val mod_pow : base:t -> exp:t -> modulus:t -> t

(** [mod_inv a m] is the inverse of [a] modulo [m].  Raises [Not_found]
    when [gcd a m <> 1]. *)
val mod_inv : t -> t -> t

val gcd : t -> t -> t

(** Big-endian byte-string conversions.  [to_bytes_be ?len t] left-pads with
    zero bytes to [len] when given; raises [Invalid_argument] if [t] does not
    fit. *)
val of_bytes_be : string -> t
val to_bytes_be : ?len:int -> t -> string

(** Hexadecimal (lowercase, no prefix). *)
val of_hex : string -> t
val to_hex : t -> string

(** Decimal strings. *)
val of_string : string -> t
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(**/**)

(** Internal representation (little-endian 31-bit limbs, normalized); used
    by {!Mont} within this library.  Not part of the stable API. *)
val to_limbs : t -> int array
val of_limbs : int array -> t
val limb_bits : int
