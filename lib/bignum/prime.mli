(** Primality testing and prime generation.

    Randomness is supplied by the caller as a [rand_bytes] function (number
    of bytes -> uniformly random string) so that this library stays
    independent of {!Bbx_crypto} and callers can plug in a deterministic DRBG
    for reproducible tests. *)

(** [is_probable_prime ?rounds ~rand_bytes n] runs trial division by small
    primes followed by [rounds] (default 24) Miller–Rabin rounds with random
    bases. *)
val is_probable_prime : ?rounds:int -> rand_bytes:(int -> string) -> Nat.t -> bool

(** [random_below ~rand_bytes n] samples uniformly from [[0, n)] by
    rejection. *)
val random_below : rand_bytes:(int -> string) -> Nat.t -> Nat.t

(** [gen_prime ~rand_bytes ~bits] generates a random probable prime with
    exactly [bits] bits (top bit set, odd). *)
val gen_prime : rand_bytes:(int -> string) -> bits:int -> Nat.t

(** Small primes used for trial division (first 100 odd primes and 2). *)
val small_primes : int list
