(** SHA-256 (FIPS 180-4).

    Used for rule signatures, the TLS-like handshake transcript hash, and
    the IKNP OT-extension hash. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit

(** [final ctx] returns the 32-byte digest.  The context must not be used
    afterwards. *)
val final : ctx -> string

(** [digest s] is the 32-byte SHA-256 of [s]. *)
val digest : string -> string

(** [hexdigest s] is [digest s] in lowercase hex. *)
val hexdigest : string -> string
