(* AES-128, FIPS-197.  The state is a flat 16-entry int array indexed by
   [r + 4*c] (column-major), which coincides with the byte order of inputs,
   outputs and round keys, so no transposition is ever needed.

   The S-box is derived algebraically (GF(2^8) inversion + affine map) at
   module initialisation rather than pasted as a literal; the FIPS test
   vectors in the test suite pin it down. *)

let gf_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else begin
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = if a land 0x80 <> 0 then ((a lsl 1) lxor 0x11b) land 0xff else (a lsl 1) land 0xff in
      go a (b lsr 1) acc
    end
  in
  go a b 0

let gf_inv x =
  if x = 0 then 0
  else begin
    (* x^254 by square-and-multiply. *)
    let rec go acc sq e =
      if e = 0 then acc
      else begin
        let acc = if e land 1 = 1 then gf_mul acc sq else acc in
        go acc (gf_mul sq sq) (e lsr 1)
      end
    in
    go 1 x 254
  end

let sbox =
  let rotl8 v n = ((v lsl n) lor (v lsr (8 - n))) land 0xff in
  Array.init 256 (fun x ->
      let y = gf_inv x in
      y lxor rotl8 y 1 lxor rotl8 y 2 lxor rotl8 y 3 lxor rotl8 y 4 lxor 0x63)

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

let xtime = Array.init 256 (fun v -> gf_mul v 2)

(* InvMixColumns multiplier tables, hoisted like [xtime]: partially applying
   [gf_mul] inside the column loop would allocate four closures per column
   per block. *)
let m9 = Array.init 256 (fun v -> gf_mul v 9)
let m11 = Array.init 256 (fun v -> gf_mul v 11)
let m13 = Array.init 256 (fun v -> gf_mul v 13)
let m14 = Array.init 256 (fun v -> gf_mul v 14)

(* T-tables: the fused SubBytes+ShiftRows+MixColumns round as four table
   lookups per output column (the classic software-AES optimisation).
   Column c packs state bytes 4c..4c+3 little-endian; T_r[x] holds
   MixColumns applied to S[x] sitting in row r.  Defined ahead of
   [expand_key] because the key carries precomputed round-1 constants. *)
let t0 =
  Array.init 256 (fun x ->
      let s = sbox.(x) in
      gf_mul 2 s lor (s lsl 8) lor (s lsl 16) lor (gf_mul 3 s lsl 24))

let rotl32 v n = ((v lsl n) lor (v lsr (32 - n))) land 0xffffffff

let t1 = Array.map (fun v -> rotl32 v 8) t0
let t2 = Array.map (fun v -> rotl32 v 16) t0
let t3 = Array.map (fun v -> rotl32 v 24) t0

(* The round helpers live at top level (fully applied at every call site)
   so the encryption paths allocate nothing: per-call closures would cost
   one heap block per round, which dominates DPIEnc's per-token budget. *)
let[@inline] rk w round c =
  let o = (16 * round) + (4 * c) in
  w.(o) lor (w.(o + 1) lsl 8) lor (w.(o + 2) lsl 16) lor (w.(o + 3) lsl 24)

(* [wc] is the same schedule packed as 44 little-endian 32-bit column
   words, so the T-table rounds fetch a round-key column with one array
   load instead of four byte loads plus shifts — forty such fetches per
   block.

   [u0..u3] are the key-only parts of round 1 for DPIEnc's salt-block
   shape 0^8 || BE64(v) with v < 2^32: input columns 0-2 are then pure
   round-0 key material, so three of the four T-table terms of every
   round-1 output column fold into a per-key constant.  [encrypt_u64]
   finishes round 1 with the four lookups that depend on column 3. *)
type key = {
  (* 176-byte schedule in byte order; [||] until a reference/decrypt path
     asks for it (see [enc_schedule]) *)
  mutable enc : int array;
  wc : int array; (* 44 packed round-key column words *)
  u0 : int;
  u1 : int;
  u2 : int;
  u3 : int;
}

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let expand_key s =
  if String.length s <> 16 then invalid_arg "Aes.expand_key: key must be 16 bytes";
  let w = Array.make 176 0 in
  for i = 0 to 15 do w.(i) <- Char.code s.[i] done;
  for i = 4 to 43 do
    let base = 4 * i in
    let prev = base - 4 in
    if i mod 4 = 0 then begin
      (* rot_word + sub_word + rcon on the previous word *)
      w.(base) <- w.(base - 16) lxor sbox.(w.(prev + 1)) lxor rcon.(i / 4 - 1);
      w.(base + 1) <- w.(base - 15) lxor sbox.(w.(prev + 2));
      w.(base + 2) <- w.(base - 14) lxor sbox.(w.(prev + 3));
      w.(base + 3) <- w.(base - 13) lxor sbox.(w.(prev))
    end else
      for j = 0 to 3 do
        w.(base + j) <- w.(base - 16 + j) lxor w.(prev + j)
      done
  done;
  let wc = Array.init 44 (fun i -> rk w (i / 4) (i mod 4)) in
  (* Round-1 constants for the small-salt fast path: with the high half
     of the block zero, x0..x2 are round-0 key columns verbatim. *)
  let x0 = rk w 0 0 and x1 = rk w 0 1 and x2 = rk w 0 2 in
  {
    enc = [||];
    wc;
    u0 =
      t0.(x0 land 0xff) lxor t1.((x1 lsr 8) land 0xff)
      lxor t2.((x2 lsr 16) land 0xff)
      lxor rk w 1 0;
    u1 =
      t0.(x1 land 0xff) lxor t1.((x2 lsr 8) land 0xff)
      lxor t3.((x0 lsr 24) land 0xff)
      lxor rk w 1 1;
    u2 =
      t0.(x2 land 0xff) lxor t2.((x0 lsr 16) land 0xff)
      lxor t3.((x1 lsr 24) land 0xff)
      lxor rk w 1 2;
    u3 =
      t1.((x0 lsr 8) land 0xff)
      lxor t2.((x1 lsr 16) land 0xff)
      lxor t3.((x2 lsr 24) land 0xff)
      lxor rk w 1 3;
  }

(* The byte-order schedule is only read by the reference oracle, the
   decrypt path and [key_schedule]; the packed column words are
   authoritative.  DPIEnc expands one key per distinct token — tens of
   thousands per connection — and those keys only ever encrypt, so not
   materializing a 176-entry array per key keeps the key heap an order of
   magnitude smaller and the hot packed words cache-resident.  Unpacking
   is idempotent: a racing domain just writes an identical array. *)
let enc_schedule k =
  let e = k.enc in
  if Array.length e > 0 then e
  else begin
    let w = Array.make 176 0 in
    for i = 0 to 43 do
      let v = k.wc.(i) in
      let o = 4 * i in
      w.(o) <- v land 0xff;
      w.(o + 1) <- (v lsr 8) land 0xff;
      w.(o + 2) <- (v lsr 16) land 0xff;
      w.(o + 3) <- (v lsr 24) land 0xff
    done;
    k.enc <- w;
    w
  end

let add_round_key st w round =
  let off = 16 * round in
  for i = 0 to 15 do st.(i) <- st.(i) lxor w.(off + i) done

let sub_bytes st = for i = 0 to 15 do st.(i) <- sbox.(st.(i)) done
let inv_sub_bytes st = for i = 0 to 15 do st.(i) <- inv_sbox.(st.(i)) done

(* Row r of the state lives at indices r, r+4, r+8, r+12. *)
let shift_rows st =
  let t1 = st.(1) in
  st.(1) <- st.(5); st.(5) <- st.(9); st.(9) <- st.(13); st.(13) <- t1;
  let t2 = st.(2) and t6 = st.(6) in
  st.(2) <- st.(10); st.(10) <- t2; st.(6) <- st.(14); st.(14) <- t6;
  let t15 = st.(15) in
  st.(15) <- st.(11); st.(11) <- st.(7); st.(7) <- st.(3); st.(3) <- t15

let inv_shift_rows st =
  let t13 = st.(13) in
  st.(13) <- st.(9); st.(9) <- st.(5); st.(5) <- st.(1); st.(1) <- t13;
  let t2 = st.(2) and t6 = st.(6) in
  st.(2) <- st.(10); st.(10) <- t2; st.(6) <- st.(14); st.(14) <- t6;
  let t3 = st.(3) in
  st.(3) <- st.(7); st.(7) <- st.(11); st.(11) <- st.(15); st.(15) <- t3

let mix_columns st =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
    let all = a0 lxor a1 lxor a2 lxor a3 in
    st.(i) <- a0 lxor all lxor xtime.(a0 lxor a1);
    st.(i + 1) <- a1 lxor all lxor xtime.(a1 lxor a2);
    st.(i + 2) <- a2 lxor all lxor xtime.(a2 lxor a3);
    st.(i + 3) <- a3 lxor all lxor xtime.(a3 lxor a0)
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let i = 4 * c in
    let a0 = st.(i) and a1 = st.(i + 1) and a2 = st.(i + 2) and a3 = st.(i + 3) in
    st.(i) <- m14.(a0) lxor m11.(a1) lxor m13.(a2) lxor m9.(a3);
    st.(i + 1) <- m9.(a0) lxor m14.(a1) lxor m11.(a2) lxor m13.(a3);
    st.(i + 2) <- m13.(a0) lxor m9.(a1) lxor m14.(a2) lxor m11.(a3);
    st.(i + 3) <- m11.(a0) lxor m13.(a1) lxor m9.(a2) lxor m14.(a3)
  done

(* [w] is the packed-word schedule [wc]: the round-key column is one
   array load *)
let[@inline] tround w round c a b c' d =
  t0.(a land 0xff)
  lxor t1.((b lsr 8) land 0xff)
  lxor t2.((c' lsr 16) land 0xff)
  lxor t3.((d lsr 24) land 0xff)
  lxor Array.unsafe_get w ((4 * round) + c)

(* final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns *)
let[@inline] tfinal w c a b c' d =
  sbox.(a land 0xff)
  lor (sbox.((b lsr 8) land 0xff) lsl 8)
  lor (sbox.((c' lsr 16) land 0xff) lsl 16)
  lor (sbox.((d lsr 24) land 0xff) lsl 24)
  lxor Array.unsafe_get w (40 + c)

let[@inline] store_col st i v =
  st.(4 * i) <- v land 0xff;
  st.((4 * i) + 1) <- (v lsr 8) land 0xff;
  st.((4 * i) + 2) <- (v lsr 16) land 0xff;
  st.((4 * i) + 3) <- (v lsr 24) land 0xff

let encrypt_state { wc = w; _ } st =
  (* pack columns as 32-bit ints *)
  let col i =
    st.(4 * i) lor (st.((4 * i) + 1) lsl 8) lor (st.((4 * i) + 2) lsl 16)
    lor (st.((4 * i) + 3) lsl 24)
  in
  let x0 = ref (col 0 lxor w.(0)) and x1 = ref (col 1 lxor w.(1)) in
  let x2 = ref (col 2 lxor w.(2)) and x3 = ref (col 3 lxor w.(3)) in
  for round = 1 to 9 do
    let n0 = tround w round 0 !x0 !x1 !x2 !x3 in
    let n1 = tround w round 1 !x1 !x2 !x3 !x0 in
    let n2 = tround w round 2 !x2 !x3 !x0 !x1 in
    let n3 = tround w round 3 !x3 !x0 !x1 !x2 in
    x0 := n0; x1 := n1; x2 := n2; x3 := n3
  done;
  let n0 = tfinal w 0 !x0 !x1 !x2 !x3 in
  let n1 = tfinal w 1 !x1 !x2 !x3 !x0 in
  let n2 = tfinal w 2 !x2 !x3 !x0 !x1 in
  let n3 = tfinal w 3 !x3 !x0 !x1 !x2 in
  store_col st 0 n0; store_col st 1 n1; store_col st 2 n2; store_col st 3 n3

(* Reference byte-wise implementation, kept as the test oracle for the
   T-table path. *)
let encrypt_state_reference k st =
  let w = enc_schedule k in
  add_round_key st w 0;
  for round = 1 to 9 do
    sub_bytes st; shift_rows st; mix_columns st; add_round_key st w round
  done;
  sub_bytes st; shift_rows st; add_round_key st w 10

let decrypt_state k st =
  let w = enc_schedule k in
  add_round_key st w 10;
  for round = 9 downto 1 do
    inv_shift_rows st; inv_sub_bytes st; add_round_key st w round; inv_mix_columns st
  done;
  inv_shift_rows st; inv_sub_bytes st; add_round_key st w 0

let encrypt_block key src =
  if String.length src <> 16 then invalid_arg "Aes.encrypt_block: need 16 bytes";
  let st = Array.init 16 (fun i -> Char.code src.[i]) in
  encrypt_state key st;
  String.init 16 (fun i -> Char.chr st.(i))

let encrypt_block_reference key src =
  if String.length src <> 16 then invalid_arg "Aes.encrypt_block: need 16 bytes";
  let st = Array.init 16 (fun i -> Char.code src.[i]) in
  encrypt_state_reference key st;
  String.init 16 (fun i -> Char.chr st.(i))

let decrypt_block key src =
  if String.length src <> 16 then invalid_arg "Aes.decrypt_block: need 16 bytes";
  let st = Array.init 16 (fun i -> Char.code src.[i]) in
  decrypt_state key st;
  String.init 16 (fun i -> Char.chr st.(i))

(* Allocation-free block path: the state lives in four packed 32-bit
   columns threaded through a top-level tail recursion (like [u64_rounds]
   below, but storing all 16 output bytes).  Bounds are checked once per
   call; the per-byte accesses below are then in range by construction. *)
let[@inline] load_col src off =
  Char.code (Bytes.unsafe_get src off)
  lor (Char.code (Bytes.unsafe_get src (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get src (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get src (off + 3)) lsl 24)

external set_64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Two packed little-endian columns as one native (little-endian) 64-bit
   store: the output block costs two stores instead of sixteen. *)
let[@inline] store_cols2 dst off lo hi =
  set_64u dst off
    (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))

let rec block_rounds_into w round x0 x1 x2 x3 dst dst_off =
  if round > 9 then begin
    store_cols2 dst dst_off (tfinal w 0 x0 x1 x2 x3) (tfinal w 1 x1 x2 x3 x0);
    store_cols2 dst (dst_off + 8) (tfinal w 2 x2 x3 x0 x1) (tfinal w 3 x3 x0 x1 x2)
  end
  else
    block_rounds_into w (round + 1)
      (tround w round 0 x0 x1 x2 x3)
      (tround w round 1 x1 x2 x3 x0)
      (tround w round 2 x2 x3 x0 x1)
      (tround w round 3 x3 x0 x1 x2)
      dst dst_off

let encrypt_block_into { wc = w; _ } ~src ~src_off ~dst ~dst_off =
  if src_off < 0 || src_off + 16 > Bytes.length src
     || dst_off < 0 || dst_off + 16 > Bytes.length dst
  then invalid_arg "Aes.encrypt_block_into: out of bounds";
  block_rounds_into w 1
    (load_col src src_off lxor w.(0))
    (load_col src (src_off + 4) lxor w.(1))
    (load_col src (src_off + 8) lxor w.(2))
    (load_col src (src_off + 12) lxor w.(3))
    dst dst_off

let key_schedule k = Array.copy (enc_schedule k)

let ctr_transform key ~nonce data =
  if String.length nonce <> 16 then invalid_arg "Aes.ctr_transform: nonce must be 16 bytes";
  let len = String.length data in
  let out = Bytes.create len in
  let counter = Array.init 16 (fun i -> Char.code nonce.[i]) in
  let ks = Array.make 16 0 in
  let nblocks = (len + 15) / 16 in
  for b = 0 to nblocks - 1 do
    Array.blit counter 0 ks 0 16;
    encrypt_state key ks;
    let off = 16 * b in
    for i = 0 to min 15 (len - off - 1) do
      Bytes.set out (off + i) (Char.chr (Char.code data.[off + i] lxor ks.(i)))
    done;
    (* Increment the low 64 bits of the counter, big-endian. *)
    let rec bump i =
      if i >= 8 then begin
        counter.(i) <- (counter.(i) + 1) land 0xff;
        if counter.(i) = 0 then bump (i - 1)
      end
    in
    bump 15
  done;
  Bytes.to_string out

let[@inline] bswap32 v =
  ((v land 0xff) lsl 24) lor ((v land 0xff00) lsl 8)
  lor ((v lsr 8) land 0xff00) lor ((v lsr 24) land 0xff)

let rec u64_rounds w round x0 x1 x2 x3 =
  if round > 9 then
    (* Only the first 8 output bytes are read (columns 0 and 1, whose
       little-endian packing byte-swaps into the big-endian result). *)
    ((bswap32 (tfinal w 0 x0 x1 x2 x3) lsl 32)
     lor bswap32 (tfinal w 1 x1 x2 x3 x0))
    land ((1 lsl 62) - 1)
  else
    u64_rounds w (round + 1)
      (tround w round 0 x0 x1 x2 x3)
      (tround w round 1 x1 x2 x3 x0)
      (tround w round 2 x2 x3 x0 x1)
      (tround w round 3 x3 x0 x1 x2)

(* DPIEnc's per-token hot path: encrypt the block 0^8 || BE64(v) and keep
   the first 8 bytes.  The block is built directly in the four packed
   columns — no state array, no heap allocation. *)
let encrypt_u64 k v =
  let w = k.wc in
  if v >= 0 && v < 1 lsl 32 then begin
    (* Small-salt fast path: round 1 is the precomputed key constants
       plus the four lookups driven by column 3 (the only live column);
       rounds 2-9 are unrolled with literal schedule indices. *)
    let x3 = bswap32 v lxor Array.unsafe_get w 3 in
    let y0 = k.u0 lxor t3.((x3 lsr 24) land 0xff)
    and y1 = k.u1 lxor t2.((x3 lsr 16) land 0xff)
    and y2 = k.u2 lxor t1.((x3 lsr 8) land 0xff)
    and y3 = k.u3 lxor t0.(x3 land 0xff) in
    let z0 = tround w 2 0 y0 y1 y2 y3 and z1 = tround w 2 1 y1 y2 y3 y0
    and z2 = tround w 2 2 y2 y3 y0 y1 and z3 = tround w 2 3 y3 y0 y1 y2 in
    let y0 = tround w 3 0 z0 z1 z2 z3 and y1 = tround w 3 1 z1 z2 z3 z0
    and y2 = tround w 3 2 z2 z3 z0 z1 and y3 = tround w 3 3 z3 z0 z1 z2 in
    let z0 = tround w 4 0 y0 y1 y2 y3 and z1 = tround w 4 1 y1 y2 y3 y0
    and z2 = tround w 4 2 y2 y3 y0 y1 and z3 = tround w 4 3 y3 y0 y1 y2 in
    let y0 = tround w 5 0 z0 z1 z2 z3 and y1 = tround w 5 1 z1 z2 z3 z0
    and y2 = tround w 5 2 z2 z3 z0 z1 and y3 = tround w 5 3 z3 z0 z1 z2 in
    let z0 = tround w 6 0 y0 y1 y2 y3 and z1 = tround w 6 1 y1 y2 y3 y0
    and z2 = tround w 6 2 y2 y3 y0 y1 and z3 = tround w 6 3 y3 y0 y1 y2 in
    let y0 = tround w 7 0 z0 z1 z2 z3 and y1 = tround w 7 1 z1 z2 z3 z0
    and y2 = tround w 7 2 z2 z3 z0 z1 and y3 = tround w 7 3 z3 z0 z1 z2 in
    let z0 = tround w 8 0 y0 y1 y2 y3 and z1 = tround w 8 1 y1 y2 y3 y0
    and z2 = tround w 8 2 y2 y3 y0 y1 and z3 = tround w 8 3 y3 y0 y1 y2 in
    let y0 = tround w 9 0 z0 z1 z2 z3 and y1 = tround w 9 1 z1 z2 z3 z0
    and y2 = tround w 9 2 z2 z3 z0 z1 and y3 = tround w 9 3 z3 z0 z1 z2 in
    ((bswap32 (tfinal w 0 y0 y1 y2 y3) lsl 32)
     lor bswap32 (tfinal w 1 y1 y2 y3 y0))
    land ((1 lsl 62) - 1)
  end
  else
    u64_rounds w 1 w.(0) w.(1)
      (bswap32 ((v lsr 32) land 0xffffffff) lxor w.(2))
      (bswap32 (v land 0xffffffff) lxor w.(3))

(* Same input block as [encrypt_u64] — 0^8 || BE64(v) — but all 16 output
   bytes, written straight into [dst].  This is the Probable-mode embed
   mask AES_tkey(salt+1): the sender XORs k_ssl over it in place, so the
   per-token embed costs zero heap allocation. *)
let encrypt_u64_into k v ~dst ~dst_off =
  if dst_off < 0 || dst_off + 16 > Bytes.length dst then
    invalid_arg "Aes.encrypt_u64_into: out of bounds";
  let w = k.wc in
  if v >= 0 && v < 1 lsl 32 then
    let x3 = bswap32 v lxor Array.unsafe_get w 3 in
    block_rounds_into w 2
      (k.u0 lxor t3.((x3 lsr 24) land 0xff))
      (k.u1 lxor t2.((x3 lsr 16) land 0xff))
      (k.u2 lxor t1.((x3 lsr 8) land 0xff))
      (k.u3 lxor t0.(x3 land 0xff))
      dst dst_off
  else
    block_rounds_into w 1 w.(0) w.(1)
      (bswap32 ((v lsr 32) land 0xffffffff) lxor w.(2))
      (bswap32 (v land 0xffffffff) lxor w.(3))
      dst dst_off
