(** AES-128 block cipher (FIPS-197) and CTR mode.

    This is the workhorse of the whole system: DPIEnc keys AES with
    [AES_k(t)] and evaluates it on salts (§3.1 of the paper), the garbling
    scheme hashes with it, the DRBG expands seeds with it, and the TLS-like
    record layer encrypts with AES-CTR. *)

type key

(** [expand_key s] builds a key schedule from a 16-byte key string.
    Raises [Invalid_argument] on other lengths. *)
val expand_key : string -> key

(** [encrypt_block key src] encrypts one 16-byte block.  Raises
    [Invalid_argument] unless [String.length src = 16]. *)
val encrypt_block : key -> string -> string

(** [decrypt_block key src] inverts {!encrypt_block}. *)
val decrypt_block : key -> string -> string

(** [encrypt_block_reference] — the straightforward byte-wise
    implementation, kept as the differential-test oracle for the T-table
    fast path used by {!encrypt_block}. *)
val encrypt_block_reference : key -> string -> string

(** [encrypt_block_into key ~src ~src_off ~dst ~dst_off] is the
    allocation-free variant used on hot paths.  [src] and [dst] may not
    overlap. *)
val encrypt_block_into :
  key -> src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> unit

(** [ctr_transform key ~nonce data] encrypts or decrypts (the operation is
    its own inverse) with AES-CTR.  [nonce] is a 16-byte initial counter
    block; successive blocks increment its low 64 bits big-endian. *)
val ctr_transform : key -> nonce:string -> string -> string

(** [encrypt_u64 key v] encrypts the block holding big-endian [v] in its low
    8 bytes (zero-padded) and returns the first 8 bytes of the result as an
    unsigned 62-bit integer (top 2 bits dropped).  This is the
    [AES_{k'}(salt)] operation of DPIEnc specialised to integer salts; it
    performs no string allocation beyond one scratch block. *)
val encrypt_u64 : key -> int -> int

(** [encrypt_u64_into key v ~dst ~dst_off] encrypts the same block as
    {!encrypt_u64} but writes all 16 output bytes into [dst] at
    [dst_off], allocating nothing.  This is DPIEnc's Probable-mode embed
    mask [AES_tkey(salt+1)] produced straight into the sender's scratch
    buffer.  Raises [Invalid_argument] if the range is out of bounds. *)
val encrypt_u64_into : key -> int -> dst:Bytes.t -> dst_off:int -> unit

(** The forward S-box, exposed for the AES boolean circuit tests. *)
val sbox : int array

(** [key_schedule key] — the 176 expanded round-key bytes (11 round keys in
    byte order) as a fresh array.  The bitsliced kernel ({!Aes_bs}) spreads
    these into per-bit broadcast masks. *)
val key_schedule : key -> int array
