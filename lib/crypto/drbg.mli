(** Deterministic random byte generator (AES-128-CTR keystream).

    Both endpoints seed a DRBG with [k_rand] so they generate identical
    garbled circuits (paper §3.3: the middlebox checks the two copies are
    equal).  Also used to make every test and benchmark reproducible. *)

type t

(** [create seed] derives an AES key and starting counter from [seed] (any
    length). *)
val create : string -> t

(** [bytes t n] returns the next [n] bytes of the stream. *)
val bytes : t -> int -> string

(** [uniform t bound] samples uniformly from [[0, bound)] by rejection.
    [bound] must be positive. *)
val uniform : t -> int -> int

(** [bits t n] samples an [n]-bit non-negative integer, [n <= 62]. *)
val bits : t -> int -> int

(** [fork t label] derives an independent generator; two forks with
    different labels produce independent streams, and forking does not
    disturb [t]. *)
val fork : t -> string -> t
