type t = {
  key : Aes.key;
  seed : string;               (* retained for forking *)
  mutable counter : int;
  mutable pending : string;    (* unconsumed tail of the last block *)
  mutable pending_off : int;
}

let create seed =
  let km = Kdf.derive ~secret:seed ~label:"drbg-key" 16 in
  { key = Aes.expand_key km; seed; counter = 0; pending = ""; pending_off = 0 }

let refill t =
  let block = Util.u64_be 0 ^ Util.u64_be t.counter in
  t.counter <- t.counter + 1;
  t.pending <- Aes.encrypt_block t.key block;
  t.pending_off <- 0

let bytes t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    if t.pending_off >= String.length t.pending then refill t;
    let avail = String.length t.pending - t.pending_off in
    let take = min avail (n - Buffer.length buf) in
    Buffer.add_substring buf t.pending t.pending_off take;
    t.pending_off <- t.pending_off + take
  done;
  Buffer.contents buf

let bits t n =
  if n < 0 || n > 62 then invalid_arg "Drbg.bits: need 0 <= n <= 62";
  let nbytes = (n + 7) / 8 in
  let s = bytes t nbytes in
  let r = ref 0 in
  String.iter (fun c -> r := (!r lsl 8) lor Char.code c) s;
  !r land ((1 lsl n) - 1)

let uniform t bound =
  if bound <= 0 then invalid_arg "Drbg.uniform: bound must be positive";
  let nbits =
    let rec go b n = if b = 0 then n else go (b lsr 1) (n + 1) in
    go (bound - 1) 0
  in
  if nbits = 0 then 0
  else begin
    let rec draw () =
      let v = bits t nbits in
      if v < bound then v else draw ()
    in
    draw ()
  end

let fork t label = create (Kdf.derive ~secret:(t.seed ^ "/" ^ label) ~label:"drbg-fork" 32)
