(** Byte-string helpers shared across the crypto stack. *)

(** [xor a b] XORs two equal-length strings.  Raises [Invalid_argument] on
    length mismatch. *)
val xor : string -> string -> string

(** [ct_equal a b] compares in time dependent only on the lengths, not the
    contents (returns [false] immediately on length mismatch). *)
val ct_equal : string -> string -> bool

val to_hex : string -> string

(** [of_hex s] decodes lowercase or uppercase hex.  Raises
    [Invalid_argument] on odd length or bad digits. *)
val of_hex : string -> string

(** [u64_be v] is the 8-byte big-endian encoding of [v] (low 64 bits). *)
val u64_be : int -> string

(** [read_u64_be s off] reads 8 big-endian bytes as an int (top 2 bits
    dropped to stay non-negative). *)
val read_u64_be : string -> int -> int

(** [u32_be v] / [read_u32_be s off]: 4-byte big-endian encodings. *)
val u32_be : int -> string
val read_u32_be : string -> int -> int
