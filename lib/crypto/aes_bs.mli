(** Bitsliced AES-128: encrypt up to {!width} blocks per call under one
    key, one block per bit of a native int.

    SubBytes runs as a verified 149-gate boolean circuit over the
    GF(((2^2)^2)^2) tower (the same algebra as [Aes_circuit.sbox_tower]),
    ShiftRows/MixColumns as lane renamings and XORs, AddRoundKey as XORs
    with broadcast masks — so the whole batch costs one pass over 128
    bit-planes.  A batch shares a single key by construction: per-lane
    keys would require transposing 1408 bits of key material per sweep,
    which costs as much as the cipher itself (DESIGN.md, "Bitsliced AES
    kernel").  Callers with per-token keys (DPIEnc per-occurrence salts)
    keep those on the scalar path and batch only the same-key work:
    [AES_k(t)] token blocks on first sight, rule-prep chunk encryptions,
    and salt-window sweeps under one recovered tkey.

    Differentially pinned byte-for-byte against {!Aes.encrypt_block} at
    every occupancy by [test_aes_bs]. *)

(** Maximum blocks per batch (one per usable bit of a 63-bit int). *)
val width : int

(** Reusable scratch holding staged input blocks, the 128 bit-plane
    state, and output blocks.  Create once, refill per sweep — no
    allocation after creation. *)
type batch

val create_batch : unit -> batch

(** [reset b] empties the batch (O(1); lane clearing happens on
    encrypt). *)
val reset : batch -> unit

(** Number of occupied block slots. *)
val length : batch -> int

(** Bitsliced key: 11 x 128 broadcast round-key masks (~11 KiB).  Build
    once per session/rule key, reuse across sweeps. *)
type key

(** [key_of_aes k] spreads an expanded scalar key schedule into
    broadcast masks.  The scalar and bitsliced views of one key always
    agree; keep the [Aes.key] for the scalar fallback paths. *)
val key_of_aes : Aes.key -> key

(** [expand s] = [key_of_aes (Aes.expand_key s)]. *)
val expand : string -> key

(** [set_block b i src src_off] stages the 16-byte block at [src_off]
    into slot [i] (0-based).  Slots may be filled in any order; the
    occupancy becomes [max] of [i+1] and the previous occupancy.
    Raises [Invalid_argument] on bad slot or range. *)
val set_block : batch -> int -> string -> int -> unit

(** [set_token_block b i src ~off ~len] stages [src[off..off+len) ||
    0^(16-len)] — the zero-padded token block of DPIEnc's [AES_k(t)]. *)
val set_token_block : batch -> int -> string -> off:int -> len:int -> unit

(** [set_salt_block b i salt] stages [0^8 || BE64(salt)] — the PRF input
    of DPIEnc's [AES_tkey(salt)], matching {!Aes.encrypt_u64}. *)
val set_salt_block : batch -> int -> int -> unit

(** [encrypt_blocks_into k b] encrypts all staged blocks in place:
    transpose in, 10 rounds over bit-planes, transpose out.  Outputs are
    then read with the [get_*] drains.  Allocates nothing. *)
val encrypt_blocks_into : key -> batch -> unit

(** [get_block_into b i ~dst ~dst_off] copies slot [i]'s 16 ciphertext
    bytes out. *)
val get_block_into : batch -> int -> dst:Bytes.t -> dst_off:int -> unit

(** [get_block b i] allocates slot [i]'s ciphertext (tests/cold paths). *)
val get_block : batch -> int -> string

(** [get_cipher40 b i] — low 40 bits of the big-endian first 8 output
    bytes of slot [i]: DPIEnc's [AES_tkey(salt) mod 2^40], matching
    [Aes.encrypt_u64 k salt land (2^40 - 1)]. *)
val get_cipher40 : batch -> int -> int

(** [ctr_transform k b ~nonce data] — AES-CTR keystream XOR, byte-identical
    to {!Aes.ctr_transform} (16-byte initial counter block, low 64 bits
    bumped big-endian per block), generating keystream {!width} blocks per
    kernel call.  [b] is caller-owned scratch. *)
val ctr_transform : key -> batch -> nonce:string -> string -> string

(** The kernel knob threaded through config / CLI ([--aes-kernel]):
    [Scalar] is the T-table path (kept as the differential oracle),
    [Bitsliced] routes same-key batch work through this module. *)
type kernel = Scalar | Bitsliced

val kernel_to_string : kernel -> string

(** Parses ["scalar"] / ["bitsliced"]; [None] otherwise. *)
val kernel_of_string : string -> kernel option
