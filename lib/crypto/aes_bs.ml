(* Bitsliced AES-128: up to [width] = 63 blocks per call, one block per
   bit of a native int.  The state is 128 bit-plane "lanes" — lane
   [8*p + t] holds bit [t] of state byte [p] (bytes indexed [r + 4*c],
   column-major, matching [Aes]) for every block in the batch, one block
   per int bit.  SubBytes becomes a boolean circuit evaluated once on 8
   lanes per byte position (all 63 blocks in parallel); ShiftRows is a
   free renaming of byte positions folded into the MixColumns reads;
   MixColumns is XORs plus a 3-XOR bit-plane relabeling for xtime; and
   AddRoundKey XORs precomputed broadcast masks (0 or -1 per key bit) —
   which is also why a batch shares ONE key: per-lane key material would
   need a 1408-bit transpose per sweep, costing more than the cipher
   itself (see DESIGN.md).

   Blocks enter and leave through a staging buffer; the fill/drain
   transpose works on groups of 7 blocks with a multiply-gather trick:
   packing 7 same-position bytes little-endian into one word, the bits of
   plane [t] sit at positions [8k + t]; after [(w lsr t) land
   0x01010101010101], multiplying by [gather_mul] = sum of [2^(48-7k)]
   sums shifted copies so bits [48..54] of the product are exactly the 7
   plane bits, compacted.  No two partial products collide (8k1 - 7j1 =
   8k2 - 7j2 forces k1 = k2 over 0..6), so there are no carries and the
   trick is exact; [test_aes_bs] pins both directions bit-for-bit. *)

let width = 63

type batch = {
  staging : Bytes.t;       (* width * 16 input block bytes *)
  lanes : int array;       (* 128 bit-planes, one bit per block *)
  planes : int array;      (* SubBytes output, ping-pong with [lanes] *)
  out : Bytes.t;           (* width * 16 output block bytes *)
  mutable n : int;         (* occupied lanes, 0 <= n <= width *)
}

let create_batch () = {
  staging = Bytes.create (width * 16);
  lanes = Array.make 128 0;
  planes = Array.make 128 0;
  out = Bytes.create (width * 16);
  n = 0;
}

let reset b = b.n <- 0

let length b = b.n

(* A bitsliced key: 11 rounds x 128 broadcast masks, one per round-key
   bit — 0 or -1 (all lanes).  ~11 KiB per key, built once per session /
   rule key, never per sweep. *)
type key = { masks : int array }

let key_of_aes k =
  let sched = Aes.key_schedule k in
  let masks = Array.make (11 * 128) 0 in
  for r = 0 to 10 do
    for p = 0 to 15 do
      let v = sched.((r * 16) + p) in
      for t = 0 to 7 do
        if (v lsr t) land 1 = 1 then masks.((r * 128) + (p * 8) + t) <- -1
      done
    done
  done;
  { masks }

let expand s = key_of_aes (Aes.expand_key s)

(* ---- batch fill helpers (staging writes; the transpose happens once in
   [encrypt_blocks_into]) ---- *)

let[@inline] check_slot i =
  if i < 0 || i >= width then invalid_arg "Aes_bs: lane index out of range"

let set_block b i src src_off =
  check_slot i;
  if src_off < 0 || src_off + 16 > String.length src then
    invalid_arg "Aes_bs.set_block: out of bounds";
  Bytes.blit_string src src_off b.staging (i * 16) 16;
  if i >= b.n then b.n <- i + 1

(* Token block [t || 0^(16-len)]: the [AES_k(t)] input of DPIEnc token
   encryption, zero-padded exactly like [Dpienc.token_block]. *)
let set_token_block b i src ~off ~len =
  check_slot i;
  if len < 0 || len > 16 || off < 0 || off + len > String.length src then
    invalid_arg "Aes_bs.set_token_block: out of bounds";
  let base = i * 16 in
  Bytes.blit_string src off b.staging base len;
  Bytes.fill b.staging (base + len) (16 - len) '\000';
  if i >= b.n then b.n <- i + 1

(* Salt block [0^8 || BE64(salt)]: the [AES_tkey(salt)] input of the
   DPIEnc PRF, matching [Aes.encrypt_u64]. *)
let set_salt_block b i salt =
  check_slot i;
  let base = i * 16 in
  Bytes.fill b.staging base 8 '\000';
  for j = 0 to 7 do
    Bytes.unsafe_set b.staging (base + 8 + j)
      (Char.unsafe_chr ((salt lsr (8 * (7 - j))) land 0xff))
  done;
  if i >= b.n then b.n <- i + 1

(* ---- drain helpers ---- *)

let get_block_into b i ~dst ~dst_off =
  check_slot i;
  if dst_off < 0 || dst_off + 16 > Bytes.length dst then
    invalid_arg "Aes_bs.get_block_into: out of bounds";
  Bytes.blit b.out (i * 16) dst dst_off 16

let get_block b i =
  check_slot i;
  Bytes.sub_string b.out (i * 16) 16

(* Low 40 bits of the big-endian first 8 output bytes — the DPIEnc
   ciphertext [AES_tkey(salt) mod 2^40], matching
   [Aes.encrypt_u64 _ land (2^40 - 1)]. *)
let get_cipher40 b i =
  check_slot i;
  let base = i * 16 in
  let u8 j = Char.code (Bytes.unsafe_get b.out (base + j)) in
  (u8 3 lsl 32) lor (u8 4 lsl 24) lor (u8 5 lsl 16) lor (u8 6 lsl 8) lor u8 7

(* ---- the transpose ---- *)

let gather_mul =
  (1 lsl 48) lor (1 lsl 41) lor (1 lsl 34) lor (1 lsl 27)
  lor (1 lsl 20) lor (1 lsl 13) lor (1 lsl 6)

let spread_mul =
  (1 lsl 0) lor (1 lsl 7) lor (1 lsl 14) lor (1 lsl 21)
  lor (1 lsl 28) lor (1 lsl 35) lor (1 lsl 42)

let byte_mask7 = 0x01010101010101

let fill b =
  let n = b.n in
  let lanes = b.lanes and st = b.staging in
  Array.fill lanes 0 128 0;
  let g = ref 0 in
  while !g < n do
    let cnt = min 7 (n - !g) in
    let base_byte = !g * 16 in
    for p = 0 to 15 do
      let w = ref 0 in
      for j = 0 to cnt - 1 do
        w := !w lor (Char.code (Bytes.unsafe_get st (base_byte + (j * 16) + p)) lsl (8 * j))
      done;
      let w = !w in
      let lane_base = p * 8 in
      for t = 0 to 7 do
        let x = (w lsr t) land byte_mask7 in
        let bits = ((x * gather_mul) lsr 48) land 0x7f in
        Array.unsafe_set lanes (lane_base + t)
          (Array.unsafe_get lanes (lane_base + t) lor (bits lsl !g))
      done
    done;
    g := !g + 7
  done

let drain b =
  let n = b.n in
  let lanes = b.lanes and ob = b.out in
  let g = ref 0 in
  while !g < n do
    let cnt = min 7 (n - !g) in
    let base_byte = !g * 16 in
    for p = 0 to 15 do
      let lane_base = p * 8 in
      let acc = ref 0 in
      for t = 0 to 7 do
        let x = (Array.unsafe_get lanes (lane_base + t) lsr !g) land 0x7f in
        acc := !acc lor (((x * spread_mul) land byte_mask7) lsl t)
      done;
      let acc = !acc in
      for j = 0 to cnt - 1 do
        Bytes.unsafe_set ob (base_byte + (j * 16) + p)
          (Char.unsafe_chr ((acc lsr (8 * j)) land 0xff))
      done
    done;
    g := !g + 7
  done

(* SubBytes on one byte position: 8 bit-plane lanes in, 8 out.  This is a
   149-gate straight-line boolean circuit for the AES S-box over the nested
   tower GF(((2^2)^2)^2) — the same composite-field algebra as
   [Bbx_circuit.Aes_circuit.sbox_tower], taken one level deeper so the
   GF(2^4) inversion reduces to a free GF(2^2) squaring.  The concrete
   basis (GF(4) modulus N = y, GF(16) modulus v^2+v+N with the tower image
   of lambda = 8, and gamma = 0x60 as the root of the AES modulus defining
   the GF(256)->tower basis change) was chosen by exhaustive search over
   all valid (N, lambda, gamma) triples for minimum gate count after
   common-subexpression elimination and Paar-style greedy XOR factoring of
   the two basis-change matrices.  [test_aes_bs] re-derives the tower
   numerically and pins this circuit to [Aes.sbox] on all 256 inputs at
   every lane.  [m] is the all-ones lane (the affine constant 0x63). *)
let sbox_planes a ai b bi =
  let m = -1 in
  let x0 = Array.unsafe_get a (ai+0) in
  let x1 = Array.unsafe_get a (ai+1) in
  let x2 = Array.unsafe_get a (ai+2) in
  let x3 = Array.unsafe_get a (ai+3) in
  let x4 = Array.unsafe_get a (ai+4) in
  let x5 = Array.unsafe_get a (ai+5) in
  let x6 = Array.unsafe_get a (ai+6) in
  let x7 = Array.unsafe_get a (ai+7) in
  let t8 = x3 lxor x4 in
  let t9 = x6 lxor t8 in
  let t10 = x2 lxor t9 in
  let t16 = x7 lxor t10 in
  let t13 = x1 lxor x4 in
  let t15 = x6 lxor x7 in
  let t19 = t13 lxor t15 in
  let t58 = t16 lxor t19 in
  let t11 = x5 lxor x7 in
  let t17 = t9 lxor t11 in
  let t14 = x1 lxor x5 in
  let t18 = t10 lxor t14 in
  let t22 = t17 lxor t18 in
  let t23 = t8 lxor t11 in
  let t24 = t22 lxor t23 in
  let t25 = t8 lxor t17 in
  let t26 = t24 land t25 in
  let t27 = t17 land t22 in
  let t31 = t26 lxor t27 in
  let t12 = x0 lxor t10 in
  let t20 = t12 lxor t16 in
  let t35 = t12 land t20 in
  let t21 = x2 lxor t19 in
  let t36 = x2 land t21 in
  let t37 = t35 lxor t36 in
  let t53 = t31 lxor t37 in
  let t57 = t11 lxor t18 in
  let t59 = t11 lxor t57 in
  let t70 = t53 lxor t59 in
  let t40 = t20 lxor t22 in
  let t42 = t12 lxor t17 in
  let t47 = t40 land t42 in
  let t41 = t21 lxor t23 in
  let t43 = x2 lxor t8 in
  let t48 = t41 land t43 in
  let t49 = t47 lxor t48 in
  let t55 = t37 lxor t49 in
  let t61 = t19 lxor t59 in
  let t63 = t11 lxor t61 in
  let t72 = t55 lxor t63 in
  let t74 = t70 lxor t72 in
  let t32 = t20 lxor t21 in
  let t33 = x2 lxor t12 in
  let t34 = t32 land t33 in
  let t39 = t34 lxor t35 in
  let t44 = t40 lxor t41 in
  let t45 = t42 lxor t43 in
  let t46 = t44 land t45 in
  let t51 = t46 lxor t47 in
  let t56 = t39 lxor t51 in
  let t60 = t11 lxor t58 in
  let t67 = t60 lxor t61 in
  let t69 = t59 lxor t67 in
  let t73 = t56 lxor t69 in
  let t79 = t70 land t74 in
  let t28 = t8 land t23 in
  let t29 = t27 lxor t28 in
  let t52 = t29 lxor t31 in
  let t54 = t39 lxor t52 in
  let t68 = t11 lxor t59 in
  let t71 = t54 lxor t68 in
  let t75 = t71 lxor t73 in
  let t80 = t71 land t75 in
  let t81 = t79 lxor t80 in
  let t86 = t73 lxor t81 in
  let t76 = t74 lxor t75 in
  let t77 = t70 lxor t71 in
  let t78 = t76 land t77 in
  let t83 = t78 lxor t79 in
  let t84 = t72 lxor t73 in
  let t85 = t73 lxor t84 in
  let t87 = t83 lxor t85 in
  let t88 = t86 lxor t87 in
  let t91 = t74 land t88 in
  let t92 = t75 land t87 in
  let t93 = t91 lxor t92 in
  let t89 = t87 lxor t88 in
  let t90 = t76 land t89 in
  let t95 = t90 lxor t91 in
  let t109 = t93 lxor t95 in
  let t136 = t58 land t109 in
  let t137 = t16 land t93 in
  let t141 = t136 lxor t137 in
  let t97 = t72 land t88 in
  let t98 = t73 land t87 in
  let t99 = t97 lxor t98 in
  let t131 = t18 land t99 in
  let t96 = t84 land t89 in
  let t101 = t96 lxor t97 in
  let t132 = t11 land t101 in
  let t133 = t131 lxor t132 in
  let t102 = t99 lxor t101 in
  let t130 = t57 land t102 in
  let t135 = t130 lxor t131 in
  let t151 = t133 lxor t135 in
  let t153 = t141 lxor t151 in
  let t103 = t24 land t102 in
  let t104 = t22 land t99 in
  let t108 = t103 lxor t104 in
  let t111 = t20 land t93 in
  let t112 = t21 land t95 in
  let t113 = t111 lxor t112 in
  let t126 = t108 lxor t113 in
  let t138 = t19 land t95 in
  let t139 = t137 lxor t138 in
  let t116 = t93 lxor t99 in
  let t142 = t16 lxor t18 in
  let t146 = t116 land t142 in
  let t117 = t95 lxor t101 in
  let t143 = t11 lxor t19 in
  let t147 = t117 land t143 in
  let t148 = t146 lxor t147 in
  let t154 = t139 lxor t148 in
  let t156 = t126 lxor t154 in
  let t163 = t153 lxor t156 in
  let t169 = t163 lxor m in
  let t110 = t32 land t109 in
  let t115 = t110 lxor t111 in
  let t105 = t23 land t101 in
  let t106 = t104 lxor t105 in
  let t125 = t106 lxor t108 in
  let t127 = t115 lxor t125 in
  let t158 = t127 lxor t156 in
  let t118 = t116 lxor t117 in
  let t119 = t44 land t118 in
  let t120 = t40 land t116 in
  let t124 = t119 lxor t120 in
  let t129 = t115 lxor t124 in
  let t152 = t135 lxor t139 in
  let t160 = t129 lxor t152 in
  let t168 = t158 lxor t160 in
  let t170 = t168 lxor m in
  let t121 = t41 land t117 in
  let t122 = t120 lxor t121 in
  let t128 = t113 lxor t122 in
  let t157 = t128 lxor t129 in
  let t165 = t157 lxor t158 in
  let t159 = t126 lxor t153 in
  let t162 = t152 lxor t156 in
  let t166 = t157 lxor t162 in
  let t144 = t142 lxor t143 in
  let t145 = t118 land t144 in
  let t150 = t145 lxor t146 in
  let t155 = t141 lxor t150 in
  let t164 = t154 lxor t155 in
  let t167 = t157 lxor t164 in
  let t171 = t167 lxor m in
  let t161 = t152 lxor t155 in
  let t172 = t161 lxor m in
  let o0 = t169 in
  let o1 = t170 in
  let o2 = t165 in
  let o3 = t159 in
  let o4 = t166 in
  let o5 = t171 in
  let o6 = t172 in
  let o7 = t128 in
  Array.unsafe_set b (bi+0) o0;
  Array.unsafe_set b (bi+1) o1;
  Array.unsafe_set b (bi+2) o2;
  Array.unsafe_set b (bi+3) o3;
  Array.unsafe_set b (bi+4) o4;
  Array.unsafe_set b (bi+5) o5;
  Array.unsafe_set b (bi+6) o6;
  Array.unsafe_set b (bi+7) o7;
  ()

(* ShiftRows as a byte-position renaming: output position [r + 4c] reads
   input position [r + 4*((c + r) mod 4)]. *)
let sr_src =
  Array.init 16 (fun p ->
      let r = p land 3 and c = p lsr 2 in
      r + (4 * ((c + r) land 3)))


let encrypt_blocks_into (k : key) b =
  if b.n = 0 then ()
  else begin
    fill b;
    let a = b.lanes and t = b.planes in
    let km = k.masks in
    (* round 0: AddRoundKey *)
    for l = 0 to 127 do
      Array.unsafe_set a l (Array.unsafe_get a l lxor Array.unsafe_get km l)
    done;
    for r = 1 to 9 do
      for p = 0 to 15 do
        sbox_planes a (p * 8) t (p * 8)
      done;
      let kbase = r * 128 in
      (* ShiftRows + MixColumns + AddRoundKey, one column at a time.
         Per column with (shifted) input bytes a0..a3:
         out_r = a_r ^ (a0^a1^a2^a3) ^ xtime(a_r ^ a_{r+1}), and xtime on
         bit-planes is the relabeling y = [x7, x0^x7, x1, x2^x7, x3^x7,
         x4, x5, x6]. *)
      for c = 0 to 3 do
        let p0 = Array.unsafe_get sr_src (4 * c) * 8
        and p1 = Array.unsafe_get sr_src ((4 * c) + 1) * 8
        and p2 = Array.unsafe_get sr_src ((4 * c) + 2) * 8
        and p3 = Array.unsafe_get sr_src ((4 * c) + 3) * 8 in
        let a00 = Array.unsafe_get t p0 and a01 = Array.unsafe_get t (p0+1)
        and a02 = Array.unsafe_get t (p0+2) and a03 = Array.unsafe_get t (p0+3)
        and a04 = Array.unsafe_get t (p0+4) and a05 = Array.unsafe_get t (p0+5)
        and a06 = Array.unsafe_get t (p0+6) and a07 = Array.unsafe_get t (p0+7) in
        let a10 = Array.unsafe_get t p1 and a11 = Array.unsafe_get t (p1+1)
        and a12 = Array.unsafe_get t (p1+2) and a13 = Array.unsafe_get t (p1+3)
        and a14 = Array.unsafe_get t (p1+4) and a15 = Array.unsafe_get t (p1+5)
        and a16 = Array.unsafe_get t (p1+6) and a17 = Array.unsafe_get t (p1+7) in
        let a20 = Array.unsafe_get t p2 and a21 = Array.unsafe_get t (p2+1)
        and a22 = Array.unsafe_get t (p2+2) and a23 = Array.unsafe_get t (p2+3)
        and a24 = Array.unsafe_get t (p2+4) and a25 = Array.unsafe_get t (p2+5)
        and a26 = Array.unsafe_get t (p2+6) and a27 = Array.unsafe_get t (p2+7) in
        let a30 = Array.unsafe_get t p3 and a31 = Array.unsafe_get t (p3+1)
        and a32 = Array.unsafe_get t (p3+2) and a33 = Array.unsafe_get t (p3+3)
        and a34 = Array.unsafe_get t (p3+4) and a35 = Array.unsafe_get t (p3+5)
        and a36 = Array.unsafe_get t (p3+6) and a37 = Array.unsafe_get t (p3+7) in
        let s0 = a00 lxor a10 and s1 = a01 lxor a11 and s2 = a02 lxor a12
        and s3 = a03 lxor a13 and s4 = a04 lxor a14 and s5 = a05 lxor a15
        and s6 = a06 lxor a16 and s7 = a07 lxor a17 in
        let u0 = a20 lxor a30 and u1 = a21 lxor a31 and u2 = a22 lxor a32
        and u3 = a23 lxor a33 and u4 = a24 lxor a34 and u5 = a25 lxor a35
        and u6 = a26 lxor a36 and u7 = a27 lxor a37 in
        let l0 = s0 lxor u0 and l1 = s1 lxor u1 and l2 = s2 lxor u2
        and l3 = s3 lxor u3 and l4 = s4 lxor u4 and l5 = s5 lxor u5
        and l6 = s6 lxor u6 and l7 = s7 lxor u7 in
        let ob = 4 * c * 8 in
        let kb = kbase + ob in
        Array.unsafe_set a ob (s7 lxor a00 lxor l0 lxor Array.unsafe_get km kb);
        Array.unsafe_set a (ob+1) (s0 lxor s7 lxor a01 lxor l1 lxor Array.unsafe_get km (kb+1));
        Array.unsafe_set a (ob+2) (s1 lxor a02 lxor l2 lxor Array.unsafe_get km (kb+2));
        Array.unsafe_set a (ob+3) (s2 lxor s7 lxor a03 lxor l3 lxor Array.unsafe_get km (kb+3));
        Array.unsafe_set a (ob+4) (s3 lxor s7 lxor a04 lxor l4 lxor Array.unsafe_get km (kb+4));
        Array.unsafe_set a (ob+5) (s4 lxor a05 lxor l5 lxor Array.unsafe_get km (kb+5));
        Array.unsafe_set a (ob+6) (s5 lxor a06 lxor l6 lxor Array.unsafe_get km (kb+6));
        Array.unsafe_set a (ob+7) (s6 lxor a07 lxor l7 lxor Array.unsafe_get km (kb+7));
        let v0 = a10 lxor a20 and v1 = a11 lxor a21 and v2 = a12 lxor a22
        and v3 = a13 lxor a23 and v4 = a14 lxor a24 and v5 = a15 lxor a25
        and v6 = a16 lxor a26 and v7 = a17 lxor a27 in
        let ob1 = ob + 8 in
        let kb = kbase + ob1 in
        Array.unsafe_set a ob1 (v7 lxor a10 lxor l0 lxor Array.unsafe_get km kb);
        Array.unsafe_set a (ob1+1) (v0 lxor v7 lxor a11 lxor l1 lxor Array.unsafe_get km (kb+1));
        Array.unsafe_set a (ob1+2) (v1 lxor a12 lxor l2 lxor Array.unsafe_get km (kb+2));
        Array.unsafe_set a (ob1+3) (v2 lxor v7 lxor a13 lxor l3 lxor Array.unsafe_get km (kb+3));
        Array.unsafe_set a (ob1+4) (v3 lxor v7 lxor a14 lxor l4 lxor Array.unsafe_get km (kb+4));
        Array.unsafe_set a (ob1+5) (v4 lxor a15 lxor l5 lxor Array.unsafe_get km (kb+5));
        Array.unsafe_set a (ob1+6) (v5 lxor a16 lxor l6 lxor Array.unsafe_get km (kb+6));
        Array.unsafe_set a (ob1+7) (v6 lxor a17 lxor l7 lxor Array.unsafe_get km (kb+7));
        let ob2 = ob + 16 in
        let kb = kbase + ob2 in
        Array.unsafe_set a ob2 (u7 lxor a20 lxor l0 lxor Array.unsafe_get km kb);
        Array.unsafe_set a (ob2+1) (u0 lxor u7 lxor a21 lxor l1 lxor Array.unsafe_get km (kb+1));
        Array.unsafe_set a (ob2+2) (u1 lxor a22 lxor l2 lxor Array.unsafe_get km (kb+2));
        Array.unsafe_set a (ob2+3) (u2 lxor u7 lxor a23 lxor l3 lxor Array.unsafe_get km (kb+3));
        Array.unsafe_set a (ob2+4) (u3 lxor u7 lxor a24 lxor l4 lxor Array.unsafe_get km (kb+4));
        Array.unsafe_set a (ob2+5) (u4 lxor a25 lxor l5 lxor Array.unsafe_get km (kb+5));
        Array.unsafe_set a (ob2+6) (u5 lxor a26 lxor l6 lxor Array.unsafe_get km (kb+6));
        Array.unsafe_set a (ob2+7) (u6 lxor a27 lxor l7 lxor Array.unsafe_get km (kb+7));
        let w0 = a30 lxor a00 and w1 = a31 lxor a01 and w2 = a32 lxor a02
        and w3 = a33 lxor a03 and w4 = a34 lxor a04 and w5 = a35 lxor a05
        and w6 = a36 lxor a06 and w7 = a37 lxor a07 in
        let ob3 = ob + 24 in
        let kb = kbase + ob3 in
        Array.unsafe_set a ob3 (w7 lxor a30 lxor l0 lxor Array.unsafe_get km kb);
        Array.unsafe_set a (ob3+1) (w0 lxor w7 lxor a31 lxor l1 lxor Array.unsafe_get km (kb+1));
        Array.unsafe_set a (ob3+2) (w1 lxor a32 lxor l2 lxor Array.unsafe_get km (kb+2));
        Array.unsafe_set a (ob3+3) (w2 lxor w7 lxor a33 lxor l3 lxor Array.unsafe_get km (kb+3));
        Array.unsafe_set a (ob3+4) (w3 lxor w7 lxor a34 lxor l4 lxor Array.unsafe_get km (kb+4));
        Array.unsafe_set a (ob3+5) (w4 lxor a35 lxor l5 lxor Array.unsafe_get km (kb+5));
        Array.unsafe_set a (ob3+6) (w5 lxor a36 lxor l6 lxor Array.unsafe_get km (kb+6));
        Array.unsafe_set a (ob3+7) (w6 lxor a37 lxor l7 lxor Array.unsafe_get km (kb+7))
      done
    done;
    (* final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns *)
    for p = 0 to 15 do
      sbox_planes a (p * 8) t (p * 8)
    done;
    let kbase = 10 * 128 in
    for p = 0 to 15 do
      let src = Array.unsafe_get sr_src p * 8 and dst = p * 8 in
      for bit = 0 to 7 do
        Array.unsafe_set a (dst + bit)
          (Array.unsafe_get t (src + bit)
           lxor Array.unsafe_get km (kbase + dst + bit))
      done
    done;
    drain b
  end

(* ---- CTR mode ----

   The record layer encrypts every record of a stream under one key, and
   CTR keystream blocks are independent — the ideal same-key batch.  This
   mirrors [Aes.ctr_transform] exactly (low-64-bit big-endian counter
   bump), pinned by differential tests across batch boundaries. *)

let[@inline] bump_ctr ctr =
  let rec go i =
    if i >= 8 then begin
      let v = (Char.code (Bytes.unsafe_get ctr i) + 1) land 0xff in
      Bytes.unsafe_set ctr i (Char.unsafe_chr v);
      if v = 0 then go (i - 1)
    end
  in
  go 15

let ctr_transform k b ~nonce data =
  if String.length nonce <> 16 then
    invalid_arg "Aes_bs.ctr_transform: nonce must be 16 bytes";
  let len = String.length data in
  let out = Bytes.of_string data in
  let ctr = Bytes.of_string nonce in
  let nblocks = (len + 15) / 16 in
  let start = ref 0 in
  while !start < nblocks do
    let cnt = min width (nblocks - !start) in
    reset b;
    for i = 0 to cnt - 1 do
      (* [set_block] blits before the counter is bumped again, so the
         no-copy string view of [ctr] is safe *)
      set_block b i (Bytes.unsafe_to_string ctr) 0;
      bump_ctr ctr
    done;
    encrypt_blocks_into k b;
    for i = 0 to cnt - 1 do
      let off = (!start + i) * 16 in
      let n = min 16 (len - off) in
      let ks_base = i * 16 in
      for j = 0 to n - 1 do
        Bytes.unsafe_set out (off + j)
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get out (off + j))
              lxor Char.code (Bytes.unsafe_get b.out (ks_base + j))))
      done
    done;
    start := !start + cnt
  done;
  Bytes.unsafe_to_string out

(* ---- kernel selection ----

   The knob every batched call site threads through config/CLI
   ([--aes-kernel]): [Scalar] keeps the T-table path as the differential
   oracle, [Bitsliced] routes same-key batch work through this module. *)

type kernel = Scalar | Bitsliced

let kernel_to_string = function Scalar -> "scalar" | Bitsliced -> "bitsliced"

let kernel_of_string = function
  | "scalar" -> Some Scalar
  | "bitsliced" -> Some Bitsliced
  | _ -> None
