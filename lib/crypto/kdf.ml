let extract ~salt ikm = Hmac.mac ~key:salt ikm

let expand ~prk ~info len =
  if len > 255 * 32 then invalid_arg "Kdf.expand: output too long";
  let buf = Buffer.create len in
  let rec go t i =
    if Buffer.length buf < len then begin
      let t = Hmac.mac ~key:prk (t ^ info ^ String.make 1 (Char.chr i)) in
      Buffer.add_string buf t;
      go t (i + 1)
    end
  in
  go "" 1;
  String.sub (Buffer.contents buf) 0 len

let derive ~secret ~label len =
  let prk = extract ~salt:"blindbox-hkdf-salt-v1" secret in
  expand ~prk ~info:label len
