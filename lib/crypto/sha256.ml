(* FIPS 180-4.  Round constants and initial state are derived from the
   fractional parts of cube/square roots of the first primes rather than
   pasted as literals; the FIPS test vectors pin them down in the tests. *)

let mask32 = 0xffffffff

let first_primes n =
  let rec is_prime k d = d * d > k || (k mod d <> 0 && is_prime k (d + 1)) in
  let rec go k acc count =
    if count = n then List.rev acc
    else if is_prime k 2 then go (k + 1) (k :: acc) (count + 1)
    else go (k + 1) acc count
  in
  go 2 [] 0

let frac_bits f =
  let frac = f -. Float.of_int (int_of_float f) in
  int_of_float (frac *. 4294967296.0) land mask32

let h0 =
  Array.of_list (List.map (fun p -> frac_bits (sqrt (float_of_int p))) (first_primes 8))

let k =
  Array.of_list (List.map (fun p -> frac_bits (Float.cbrt (float_of_int p))) (first_primes 64))

type ctx = {
  h : int array;
  buf : Bytes.t;            (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int;      (* total bytes hashed *)
  w : int array;            (* per-block message schedule scratch; per-context
                               so hashing is safe from concurrent domains *)
}

let init () =
  { h = Array.copy h0; buf = Bytes.create 64; buf_len = 0; total = 0;
    w = Array.make 64 0 }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let compress ~w h block off =
  for t = 0 to 15 do
    let i = off + 4 * t in
    w.(t) <-
      (Char.code (Bytes.get block i) lsl 24)
      lor (Char.code (Bytes.get block (i + 1)) lsl 16)
      lor (Char.code (Bytes.get block (i + 2)) lsl 8)
      lor Char.code (Bytes.get block (i + 3))
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask32
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g; g := !f; f := !e;
    e := (!d + t1) land mask32;
    d := !c; c := !b; b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let update ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* Fill a partial buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ~w:ctx.w ctx.h ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= 64 do
    Bytes.blit_string s !pos ctx.buf 0 64;
    compress ~w:ctx.w ctx.h ctx.buf 0;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let final ctx =
  let total_bits = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod 64 in
    if rem = 0 then 1 + 8 else 1 + 8 + (64 - rem)
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len - 1 - i) (Char.chr ((total_bits lsr (8 * i)) land 0xff))
  done;
  update ctx (Bytes.to_string pad);
  assert (ctx.buf_len = 0);
  String.init 32 (fun i ->
      Char.chr ((ctx.h.(i / 4) lsr (24 - 8 * (i mod 4))) land 0xff))

let digest s =
  let ctx = init () in
  update ctx s;
  final ctx

let hexdigest s =
  let d = digest s in
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf
