(** HMAC-SHA-256 (RFC 2104). *)

(** [mac ~key data] is the 32-byte HMAC-SHA-256 tag. *)
val mac : key:string -> string -> string

(** [verify ~key ~tag data] checks [tag] in constant time. *)
val verify : key:string -> tag:string -> string -> bool
