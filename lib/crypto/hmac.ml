let block_size = 64

let mac ~key data =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let key = key ^ String.make (block_size - String.length key) '\000' in
  let pad byte = String.map (fun c -> Char.chr (Char.code c lxor byte)) key in
  let ipad = pad 0x36 and opad = pad 0x5c in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ data))

let verify ~key ~tag data = Util.ct_equal tag (mac ~key data)
