(** HKDF-style key derivation (RFC 5869 over HMAC-SHA-256).

    The BlindBox handshake derives three independent keys from the SSL
    master secret [k0] (paper §2.3): [k_ssl] for the record layer, [k] for
    DPIEnc, and [k_rand] as the shared randomness seed for deterministic
    garbling. *)

(** [extract ~salt ikm] is the HKDF extract step. *)
val extract : salt:string -> string -> string

(** [expand ~prk ~info len] is the HKDF expand step ([len <= 8160]). *)
val expand : prk:string -> info:string -> int -> string

(** [derive ~secret ~label len] = extract with a fixed salt then expand with
    [label]; convenience wrapper used by the handshake. *)
val derive : secret:string -> label:string -> int -> string
