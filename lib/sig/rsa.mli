(** RSA signatures (hash-then-pad-then-exponentiate, PKCS#1 v1.5-shaped).

    The rule generator RG signs every rule it ships (paper §2.3/§3.3) so the
    middlebox cannot have arbitrary strings encrypted during obfuscated rule
    encryption.  Key sizes here default to 512 bits: large enough to exercise
    the real arithmetic, small enough that generating fresh keys in tests is
    cheap.  See DESIGN.md §2 on the in-circuit-verification substitution. *)

type public_key = { n : Bbx_bignum.Nat.t; e : Bbx_bignum.Nat.t }
type private_key

type keypair = { public : public_key; private_ : private_key }

(** [generate ~rand_bytes ~bits] generates a fresh keypair with a [bits]-bit
    modulus (public exponent 65537). *)
val generate : rand_bytes:(int -> string) -> bits:int -> keypair

(** [sign key msg] signs SHA-256([msg]); the result is as long as the
    modulus. *)
val sign : private_key -> string -> string

(** [verify key ~signature msg] checks the signature. *)
val verify : public_key -> signature:string -> string -> bool

(** Serialisation of public keys (for shipping RG's key to endpoints). *)
val public_to_string : public_key -> string
val public_of_string : string -> public_key
