open Bbx_bignum

type public_key = { n : Nat.t; e : Nat.t }
type private_key = { pn : Nat.t; d : Nat.t }
type keypair = { public : public_key; private_ : private_key }

let e65537 = Nat.of_int 65537

let generate ~rand_bytes ~bits =
  if bits < 64 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec go () =
    let p = Prime.gen_prime ~rand_bytes ~bits:half in
    let q = Prime.gen_prime ~rand_bytes ~bits:(bits - half) in
    if Nat.equal p q then go ()
    else begin
      let n = Nat.mul p q in
      let p1 = Nat.sub p Nat.one and q1 = Nat.sub q Nat.one in
      let lambda = Nat.div (Nat.mul p1 q1) (Nat.gcd p1 q1) in
      match Nat.mod_inv e65537 lambda with
      | d -> { public = { n; e = e65537 }; private_ = { pn = n; d } }
      | exception Not_found -> go ()
    end
  in
  go ()

(* EMSA-PKCS1-v1.5 shape: 0x00 0x01 0xff.. 0x00 || SHA-256(msg), stretched to
   the modulus length. *)
let encode_digest ~len msg =
  let digest = Bbx_crypto.Sha256.digest msg in
  let pad_len = len - String.length digest - 3 in
  if pad_len < 1 then invalid_arg "Rsa: modulus too small for digest";
  "\x00\x01" ^ String.make pad_len '\xff' ^ "\x00" ^ digest

let sign { pn; d } msg =
  let len = (Nat.bit_length pn + 7) / 8 in
  let m = Nat.of_bytes_be (encode_digest ~len msg) in
  Nat.to_bytes_be ~len (Mont.mod_pow (Mont.create pn) ~base:m ~exp:d)

let verify { n; e } ~signature msg =
  let len = (Nat.bit_length n + 7) / 8 in
  String.length signature = len
  && begin
    let s = Nat.of_bytes_be signature in
    Nat.compare s n < 0
    && begin
      let m = Mont.mod_pow (Mont.create n) ~base:s ~exp:e in
      Bbx_crypto.Util.ct_equal (Nat.to_bytes_be ~len m) (encode_digest ~len msg)
    end
  end

let public_to_string { n; e } = Nat.to_hex n ^ ":" ^ Nat.to_hex e

let public_of_string s =
  match String.index_opt s ':' with
  | None -> invalid_arg "Rsa.public_of_string: missing separator"
  | Some i ->
    { n = Nat.of_hex (String.sub s 0 i);
      e = Nat.of_hex (String.sub s (i + 1) (String.length s - i - 1)) }
