(** Load generator for [blindboxd]: N concurrent senders over real
    sockets, each one monitored BlindBox connection.

    Setup runs through the blocking {!Client} (handshake, HELLO,
    RULE_SETUP) and pre-encrypts every TOKEN_STREAM frame, so the
    streaming phase measures the daemon, not the client's crypto.
    Streaming is a single non-blocking [select] loop: frames are paced
    to an aggregate target rate (or closed-loop when [rate = 0]) with at
    most [inflight] outstanding frames per connection; round-trip time
    is taken from the moment a frame is queued for write to the moment
    its VERDICT arrives, and every sample also lands in the
    [bbx_loadgen_rtt_us] {!Bbx_obs.Obs} histogram. *)

type cfg = {
  lg_endpoint : Daemon.endpoint;
  lg_conns : int;             (** concurrent connections *)
  lg_sends : int;             (** TOKEN_STREAM frames per connection *)
  lg_rate : float;            (** aggregate frames/s; [0.] = closed loop *)
  lg_inflight : int;          (** max outstanding frames per connection *)
  lg_payload_bytes : int;     (** plaintext bytes per frame *)
  lg_hit_rate : float;        (** fraction of frames carrying an
                                  alert-rule keyword *)
  lg_mode : Bbx_dpienc.Dpienc.mode;
  lg_seed : string;           (** drives payloads and handshakes *)
}

(** Defaults: 4 connections, 200 sends, closed loop, inflight 4, 1024-byte
    payloads, 2% hit rate, [Exact] mode, seed ["loadgen"]. *)
val cfg :
  ?conns:int ->
  ?sends:int ->
  ?rate:float ->
  ?inflight:int ->
  ?payload_bytes:int ->
  ?hit_rate:float ->
  ?mode:Bbx_dpienc.Dpienc.mode ->
  ?seed:string ->
  Daemon.endpoint ->
  cfg

type report = {
  rp_conns : int;
  rp_sends : int;             (** frames completed (all of them) *)
  rp_clean : int;             (** frames whose verdict was [Clean] *)
  rp_alert_frames : int;      (** frames whose verdict carried alerts *)
  rp_alerts : int;            (** individual alert verdicts *)
  rp_dropped : int;           (** frames dropped on blocked connections *)
  rp_tokens : int;            (** tokens in {e inspected} (non-dropped)
                                  frames — comparable to the daemon's
                                  [s_total_tokens] *)
  rp_elapsed_s : float;       (** streaming phase only *)
  rp_sends_per_s : float;
  rp_tokens_per_s : float;
  rp_rtt_p50_us : float;
  rp_rtt_p95_us : float;
  rp_rtt_p99_us : float;
  rp_rtt_mean_us : float;
  rp_rtt_max_us : float;
  rp_qwait_p50_us : float;    (** daemon-side mailbox wait for this run's
                                  interval, estimated from the
                                  [bbx_daemon_queue_wait_us] bucket delta
                                  fetched over [METRICS_REQ] (bucket
                                  upper bounds; [0.] when the daemon
                                  predates the message) *)
  rp_qwait_p95_us : float;
  rp_qwait_p99_us : float;
  rp_service_p50_us : float;  (** shard inspection time, same method
                                  ([bbx_shard_service_us]) *)
  rp_service_p95_us : float;
  rp_service_p99_us : float;
}

(** [run cfg] drives the full load and returns the report.  Connections
    are closed (BYE) on the way out, including on exceptions. *)
val run : cfg -> report

val report_json : report -> string

(** Pretty one-per-line rendering for the CLI. *)
val print_report : out_channel -> report -> unit
