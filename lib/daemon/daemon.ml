module Wire = Bbx_wire.Wire
module Sockio = Bbx_wire.Sockio
module Dpienc = Bbx_dpienc.Dpienc
module Shardpool = Bbx_mbox.Shardpool
module Engine = Bbx_mbox.Engine
module Rule = Bbx_rules.Rule
module Parser = Bbx_rules.Parser
module Obs = Bbx_obs.Obs
module Trace = Bbx_obs.Trace

let obs_conns = Obs.gauge "bbx_daemon_connections"
let obs_active = Obs.gauge "bbx_daemon_conns_active"
let obs_exports = Obs.counter "bbx_daemon_conn_exports_total"
let obs_imports = Obs.counter "bbx_daemon_conn_imports_total"
let obs_rebalanced = Obs.counter "bbx_daemon_rebalanced_total"
let obs_accepted = Obs.counter "bbx_daemon_accepted_total"
let obs_frames_in = Obs.counter "bbx_daemon_frames_in_total"
let obs_frames_out = Obs.counter "bbx_daemon_frames_out_total"
let obs_bytes_in = Obs.counter "bbx_daemon_bytes_in_total"
let obs_bytes_out = Obs.counter "bbx_daemon_bytes_out_total"
let obs_deliveries = Obs.counter "bbx_daemon_deliveries_total"
let obs_errors = Obs.counter "bbx_daemon_error_frames_total"
let obs_paused = Obs.counter "bbx_daemon_read_pauses_total"

(* Front-loop pipeline stages, microseconds.  Together with Shardpool's
   queue_wait/service pair these decompose a frame's daemon residency:
   read (decode) -> validate -> queue wait -> shard service -> write
   (output-queue residency incl. the socket write). *)
let us_buckets =
  [| 1; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000; 25000;
     50000; 100000; 250000; 1000000 |]

let obs_read_us = Obs.histogram "bbx_daemon_read_us" ~buckets:us_buckets
let obs_validate_us = Obs.histogram "bbx_daemon_validate_us" ~buckets:us_buckets
let obs_write_us = Obs.histogram "bbx_daemon_write_us" ~buckets:us_buckets

(* Event-loop health: the busy part of each iteration (select return to
   iteration end) plus a counter of iterations past the stall bound —
   a stalled front loop is invisible in per-frame latency but starves
   every connection at once. *)
let obs_loop_us = Obs.histogram "bbx_daemon_loop_us" ~buckets:us_buckets
let obs_loop_stalls = Obs.counter "bbx_daemon_loop_stalls_total"

let loop_stall_us = 100_000

let ph_read = Trace.phase "read"
let ph_validate = Trace.phase "validate"
let ph_write = Trace.phase "write"

let timing_on () = Obs.enabled () || Trace.enabled ()

type endpoint = Unix_path of string | Tcp of string * int

let endpoint_of_string s =
  if String.length s > 4 && String.sub s 0 4 = "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> invalid_arg "Daemon.endpoint_of_string: tcp:HOST:PORT"
    | Some i ->
      let host = String.sub rest 0 i in
      let port =
        match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
        | Some p when p > 0 && p < 65536 -> p
        | _ -> invalid_arg "Daemon.endpoint_of_string: bad port"
      in
      Tcp (host, port)
  end
  else Unix_path s

let endpoint_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type config = {
  endpoint : endpoint;
  mode : Dpienc.mode;
  rules : Rule.t list;
  domains : int option;
  index : Bbx_detect.Detect.index_backend;
  tier : Bbx_rules.Classify.protocol_class;
  budget : Engine.budget;
  kernel : Dpienc.aes_kernel;
  high_water : int;
  metrics : endpoint option;
  trace_out : string option;
  rebalance_every : float option;
}

let config ?(mode = Dpienc.Exact) ?domains ?(index = Bbx_detect.Detect.Hash)
    ?(tier = Bbx_rules.Classify.Protocol_III) ?(budget = Engine.default_budget)
    ?(kernel = Dpienc.Bitsliced) ?(high_water = 1 lsl 20) ?rebalance_every
    ?metrics ?trace_out ~endpoint ~rules () =
  { endpoint; mode; rules; domains; index; tier; budget; kernel; high_water;
    metrics; trace_out; rebalance_every }

(* ---------- per-connection state ---------- *)

type conn_state =
  | Awaiting_hello
  | Awaiting_setup of { salt0 : int }
  | Streaming
  | Drained     (* connection exported away; only control frames remain legal *)

type client = {
  fd : Unix.file_descr;
  framer : Wire.Framer.t;
  (* frames awaiting the socket, each with the frame id it answers (the
     wire seq; -1 for control replies) and its enqueue timestamp so the
     write phase covers output-queue residency plus the socket write *)
  outq : (string * int * int) Queue.t;
  mutable outq_head_off : int;   (* written prefix of the head frame *)
  mutable outq_bytes : int;
  mutable state : conn_state;
  mutable conn_id : int;         (* -1 until HELLO *)
  mutable features : int;        (* HELLO feature bits; 0 for old clients *)
  mutable registered : bool;     (* conn_id live in the shard pool *)
  mutable rules : Rule.t list;   (* this connection's current ruleset *)
  mutable closing : bool;        (* flush pending output, then close *)
  mutable closed : bool;
}

type t = {
  cfg : config;
  pool : Shardpool.t;
  listen_fd : Unix.file_descr;
  clients : (Unix.file_descr, client) Hashtbl.t;
  (* deliveries in flight: pool ticket -> reply routing, in submission
     order (drain replays completed tickets in this same order; tickets
     missing from the drain were dropped on a blocked connection) *)
  pending : (int * client * int) Queue.t;
  rules_text : string;
  needed_chunks : string array;  (* distinct chunks of the base ruleset *)
  mutable next_conn_id : int;
  mutable last_rebalance : float;
  scratch : Bytes.t;
  (* live scrape plane: a second listener speaking just enough HTTP/1.0
     for GET /metrics; requests buffer here until the blank line *)
  metrics_fd : Unix.file_descr option;
  http : (Unix.file_descr, Buffer.t) Hashtbl.t;
}

(* ---------- socket plumbing ---------- *)

let listen_socket endpoint =
  match endpoint with
  | Unix_path path ->
    if Sys.file_exists path then begin
      match (Unix.stat path).Unix.st_kind with
      | Unix.S_SOCK -> Unix.unlink path
      | _ -> failwith (Printf.sprintf "blindboxd: %s exists and is not a socket" path)
    end;
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 128
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd
  | Tcp (host, port) ->
    let addr =
      match Unix.inet_addr_of_string host with
      | a -> a
      | exception _ ->
        (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
         with Not_found -> failwith (Printf.sprintf "blindboxd: unknown host %s" host))
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port));
       Unix.listen fd 128
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd

(* Nagle would add up to an RTT of delay to every small frame; the
   protocol is request/response, so turn it off (no-op on Unix-domain
   sockets, where the option does not exist). *)
let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let connect endpoint =
  Sockio.ignore_sigpipe ();
  match endpoint with
  | Unix_path path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Sockio.retry (fun () -> Unix.connect fd (Unix.ADDR_UNIX path))
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd
  | Tcp (host, port) ->
    let addr =
      match Unix.inet_addr_of_string host with
      | a -> a
      | exception _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Sockio.retry (fun () -> Unix.connect fd (Unix.ADDR_INET (addr, port)));
       set_nodelay fd
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd

(* ---------- record-stream validation ----------

   TOKEN_STREAM bodies are inspected on worker domains, where an
   exception is sticky and would poison the pool; the front therefore
   rejects anything the workers' decoder might choke on — truncated
   records, unknown flag bytes, embeds inconsistent with the daemon's
   mode — before submitting. *)

let records_valid ~mode s =
  let exact = Dpienc.exact_record_bytes in
  let want_embed = mode = Dpienc.Probable in
  let n = String.length s in
  let pos = ref 0 and ok = ref true in
  while !ok && !pos < n do
    if !pos + exact > n then ok := false
    else
      match s.[!pos] with
      | '\000' when not want_embed -> pos := !pos + exact
      | '\001' when want_embed ->
        if !pos + exact + 16 > n then ok := false else pos := !pos + exact + 16
      | _ -> ok := false
  done;
  !ok

(* ---------- output ---------- *)

let enqueue ?(seq = -1) _t cl msg =
  if not (cl.closed || cl.closing) then begin
    let s = Wire.encode_frame_string msg in
    let enq_ns = if timing_on () then Trace.now_ns () else -1 in
    Queue.add (s, seq, enq_ns) cl.outq;
    cl.outq_bytes <- cl.outq_bytes + String.length s;
    Obs.incr obs_frames_out
  end

let close_client t cl =
  if not cl.closed then begin
    cl.closed <- true;
    Hashtbl.remove t.clients cl.fd;
    (try Unix.close cl.fd with Unix.Unix_error _ -> ());
    if cl.registered then begin
      cl.registered <- false;
      (* per-worker FIFO: deliveries submitted before this unregister
         still run first, so in-flight work is never orphaned mid-shard *)
      Shardpool.unregister t.pool ~conn_id:cl.conn_id;
      Obs.add_gauge obs_active (-1)
    end;
    Obs.add_gauge obs_conns (-1)
  end

let error_close t cl code fmt =
  Printf.ksprintf
    (fun message ->
       Obs.incr obs_errors;
       enqueue t cl (Wire.Error { code; message });
       cl.closing <- true)
    fmt

(* Flush as much queued output as the socket accepts; close on a dead
   peer.  Returns [true] while the client is still open. *)
let flush_out t cl =
  if cl.closed then false
  else begin
    let progress = ref true in
    (try
       while !progress && not (Queue.is_empty cl.outq) do
         let head, seq, enq_ns = Queue.peek cl.outq in
         let len = String.length head - cl.outq_head_off in
         let n =
           Sockio.retry (fun () ->
               Unix.write_substring cl.fd head cl.outq_head_off len)
         in
         Obs.add obs_bytes_out n;
         cl.outq_bytes <- cl.outq_bytes - n;
         if n = len then begin
           ignore (Queue.pop cl.outq : string * int * int);
           cl.outq_head_off <- 0;
           if enq_ns >= 0 then begin
             let now = Trace.now_ns () in
             Obs.observe obs_write_us ((now - enq_ns) / 1000);
             Trace.record ph_write ~id:seq ~conn:cl.conn_id ~start_ns:enq_ns
               ~dur_ns:(now - enq_ns)
           end
         end
         else begin
           cl.outq_head_off <- cl.outq_head_off + n;
           progress := false
         end
       done
     with
     | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
     | Unix.Unix_error _ -> close_client t cl);
    if (not cl.closed) && cl.closing && Queue.is_empty cl.outq then close_client t cl;
    not cl.closed
  end

(* ---------- frame handling ---------- *)

let verdicts_to_wire vs =
  List.map
    (fun v ->
       { Wire.v_sid = Option.value v.Engine.rule.Rule.sid ~default:0;
         v_via = v.Engine.via;
         v_detail = v.Engine.detail;
         v_msg = Option.value v.Engine.rule.Rule.msg ~default:"" })
    vs

let stats_to_wire (s : Bbx_mbox.Shard.stats) =
  { Wire.s_connections = s.Bbx_mbox.Shard.connections;
    s_total_tokens = s.Bbx_mbox.Shard.total_tokens;
    s_total_keyword_hits = s.Bbx_mbox.Shard.total_keyword_hits;
    s_alerts = s.Bbx_mbox.Shard.alerts;
    s_blocked = s.Bbx_mbox.Shard.blocked }

(* Drain the shard pool and turn completed deliveries into VERDICT
   frames; tickets the drain never mentions were dropped on a blocked
   connection.  Replaying [t.pending] in queue order preserves each
   connection's submission order. *)
let flush_pool t =
  if not (Queue.is_empty t.pending) then begin
    let results = Hashtbl.create (Queue.length t.pending) in
    Shardpool.drain t.pool ~f:(fun ~seq ~conn_id:_ verdicts ->
        Hashtbl.replace results seq verdicts);
    while not (Queue.is_empty t.pending) do
      let ticket, cl, seq = Queue.pop t.pending in
      if not cl.closed then begin
        (* clients that advertised the tiered extension get the explicit
           detail byte; everyone else keeps the legacy frame *)
        let verdict_msg ~status ~verdicts =
          if cl.features land Wire.feature_tiered <> 0 then
            Wire.Verdict_tiered { seq; status; verdicts }
          else Wire.Verdict { seq; status; verdicts }
        in
        match Hashtbl.find_opt results ticket with
        | Some [] ->
          enqueue ~seq t cl (verdict_msg ~status:Wire.Clean ~verdicts:[])
        | Some vs ->
          enqueue ~seq t cl
            (verdict_msg ~status:Wire.Alerts ~verdicts:(verdicts_to_wire vs))
        | None ->
          enqueue ~seq t cl (verdict_msg ~status:Wire.Dropped ~verdicts:[])
      end
    done
  end

(* Does [pairs] cover every chunk in [needed]?  Builds the lookup table
   the engine's [enc_chunk] oracle reads from. *)
let enc_table_for ~needed pairs =
  let tbl = Hashtbl.create (max 16 (Array.length pairs)) in
  Array.iter (fun (chunk, enc) -> Hashtbl.replace tbl chunk enc) pairs;
  let missing = Array.exists (fun c -> not (Hashtbl.mem tbl c)) needed in
  if missing then None else Some tbl

let handle_msg t cl msg =
  match (msg, cl.state) with
  | Wire.Hello { version; mode; salt0; features }, Awaiting_hello ->
    if version <> Wire.version then
      error_close t cl Wire.err_version "unsupported protocol version %d" version
    else if mode <> t.cfg.mode then
      error_close t cl Wire.err_version "mode mismatch: daemon runs %s"
        (match t.cfg.mode with Dpienc.Exact -> "exact" | Dpienc.Probable -> "probable")
    else if salt0 < 0 || (t.cfg.mode = Dpienc.Probable && salt0 land 1 = 1) then
      error_close t cl Wire.err_protocol "bad salt0 %d" salt0
    else begin
      cl.conn_id <- t.next_conn_id;
      t.next_conn_id <- t.next_conn_id + 1;
      cl.features <- features;
      cl.state <- Awaiting_setup { salt0 };
      enqueue t cl
        (Wire.Hello_ok { conn_id = cl.conn_id; mode = t.cfg.mode; rules_text = t.rules_text })
    end
  | Wire.Rule_setup { pairs }, Awaiting_setup { salt0 } -> begin
      match enc_table_for ~needed:t.needed_chunks pairs with
      | None ->
        error_close t cl Wire.err_setup
          "rule setup does not cover the ruleset's %d chunks"
          (Array.length t.needed_chunks)
      | Some tbl ->
        Shardpool.register t.pool ~conn_id:cl.conn_id ~salt0
          ~enc_chunk:(Hashtbl.find tbl);
        cl.registered <- true;
        cl.state <- Streaming;
        Obs.add_gauge obs_active 1;
        enqueue t cl Wire.Setup_ok
    end
  | Wire.Conn_import { state }, Awaiting_setup _ -> begin
      (* takes RULE_SETUP's place: the snapshot already carries the
         prepared rule encryptions and every counter (the HELLO salt0 is
         superseded by the snapshot's salt epoch) *)
      if cl.features land Wire.feature_migrate = 0 then
        error_close t cl Wire.err_protocol "CONN_IMPORT without feature_migrate"
      else
        match Shardpool.import_conn t.pool ~conn_id:cl.conn_id state with
        | () ->
          cl.registered <- true;
          cl.state <- Streaming;
          Obs.incr obs_imports;
          Obs.add_gauge obs_active 1;
          enqueue t cl Wire.Setup_ok
        | exception Invalid_argument m ->
          (* import validates front-side, so a corrupt blob is rejected
             here and never reaches a worker domain *)
          error_close t cl Wire.err_setup "%s" m
    end
  | Wire.Conn_export, Streaming ->
    if cl.features land Wire.feature_migrate = 0 then
      error_close t cl Wire.err_protocol "CONN_EXPORT without feature_migrate"
    else begin
      (* reply every still-pending verdict first, so the client holds a
         complete verdict history before the state frame; the export then
         drains the connection through its FIFO mailbox *)
      flush_pool t;
      let state = Shardpool.export_conn t.pool ~conn_id:cl.conn_id in
      cl.registered <- false;
      cl.state <- Drained;
      Obs.incr obs_exports;
      Obs.add_gauge obs_active (-1);
      enqueue t cl (Wire.Conn_state { state })
    end
  | Wire.Token_stream { seq; records }, Streaming ->
    let timing = timing_on () in
    let t0 = if timing then Trace.now_ns () else 0 in
    let valid = records_valid ~mode:t.cfg.mode records in
    if timing then begin
      let now = Trace.now_ns () in
      Obs.observe obs_validate_us ((now - t0) / 1000);
      Trace.record ph_validate ~id:seq ~conn:cl.conn_id ~start_ns:t0
        ~dur_ns:(now - t0)
    end;
    if not valid then
      error_close t cl Wire.err_malformed "unparseable token records"
    else begin
      (* a full shard mailbox blocks here: that is the backpressure *)
      let ticket = Shardpool.submit ~tag:seq t.pool ~conn_id:cl.conn_id records in
      Queue.add (ticket, cl, seq) t.pending;
      Obs.incr obs_deliveries
    end
  | Wire.Record_stream { seq = _; record }, Streaming ->
    (* no front-side validation needed: the record is opaque sealed bytes
       and the engine degrades (exhausts the flow) rather than raising on
       anything it cannot open, so workers cannot be poisoned.  Shares the
       connection's FIFO mailbox with TOKEN_STREAM, so records always
       reach the engine before the delivery that carries their tokens. *)
    Shardpool.record_stream t.pool ~conn_id:cl.conn_id record
  | Wire.Salt_reset { salt0 }, Streaming ->
    if salt0 < 0 || (t.cfg.mode = Dpienc.Probable && salt0 land 1 = 1) then
      error_close t cl Wire.err_protocol "bad salt0 %d" salt0
    else Shardpool.reset_conn t.pool ~conn_id:cl.conn_id ~salt0
  | Wire.Rule_update { remove_sids; add_text; pairs }, Streaming -> begin
      match Parser.parse_ruleset add_text with
      | exception Parser.Syntax_error m ->
        error_close t cl Wire.err_setup "rule update parse error: %s" m
      | add ->
        let keep r =
          match r.Rule.sid with
          | Some s -> not (List.mem s remove_sids)
          | None -> true
        in
        let new_rules = List.filter keep cl.rules @ add in
        (match enc_table_for ~needed:(Engine.distinct_chunks new_rules) pairs with
         | None ->
           error_close t cl Wire.err_setup
             "rule update does not cover the post-update chunk set"
         | Some tbl ->
           Shardpool.update_rules t.pool ~conn_id:cl.conn_id ~remove_sids ~add
             ~rules:new_rules ~enc_chunk:(Hashtbl.find tbl);
           cl.rules <- new_rules;
           enqueue t cl (Wire.Update_ok { added = List.length add }))
    end
  | Wire.Stats_req, _ ->
    (* honoured in any state so a monitoring client needs no handshake *)
    enqueue t cl (Wire.Stats (stats_to_wire (Shardpool.stats t.pool)))
  | Wire.Metrics_req { scope }, _ ->
    (* like STATS_REQ: any state, so monitoring needs no handshake.  The
       per-connection footprint gauge is refreshed on scrape (it requires
       quiescing the shards, too costly to keep continuously fresh). *)
    ignore (Shardpool.footprint_bytes t.pool : int);
    let body =
      match scope with
      | Wire.Prometheus -> Obs.render_prometheus ()
      | Wire.Jsonl -> Obs.dump_jsonl ()
      | Wire.Trace -> Trace.dump_chrome ()
    in
    enqueue t cl (Wire.Metrics { scope; body })
  | Wire.Bye, _ -> cl.closing <- true
  | ( Wire.(
        ( Hello _ | Hello_ok _ | Rule_setup _ | Setup_ok | Token_stream _
        | Verdict _ | Verdict_tiered _ | Salt_reset _ | Rule_update _
        | Update_ok _ | Stats _ | Error _ | Metrics _ | Record_stream _
        | Conn_export | Conn_state _ | Conn_import _ )),
      _ ) ->
    error_close t cl Wire.err_protocol "message illegal in this connection state"

let handle_readable t cl =
  match Sockio.retry (fun () -> Unix.read cl.fd t.scratch 0 (Bytes.length t.scratch)) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close_client t cl
  | 0 -> close_client t cl
  | n -> begin
      Obs.add obs_bytes_in n;
      match
        Wire.Framer.feed cl.framer t.scratch 0 n;
        let continue = ref true in
        while !continue && not (cl.closed || cl.closing) do
          match Wire.Framer.next cl.framer with
          | None -> continue := false
          | Some payload ->
            Obs.incr obs_frames_in;
            let timing = timing_on () in
            let t0 = if timing then Trace.now_ns () else 0 in
            let msg = Wire.decode payload in
            if timing then begin
              let id =
                match msg with Wire.Token_stream { seq; _ } -> seq | _ -> -1
              in
              let now = Trace.now_ns () in
              Obs.observe obs_read_us ((now - t0) / 1000);
              Trace.record ph_read ~id ~conn:cl.conn_id ~start_ns:t0
                ~dur_ns:(now - t0)
            end;
            handle_msg t cl msg
        done
      with
      | () -> ()
      | exception Wire.Malformed m -> error_close t cl Wire.err_malformed "%s" m
    end

(* ---------- HTTP scrape plane ----------

   Just enough HTTP/1.0 for a scraper: buffer until the request's blank
   line (or EOF, or an 8 KiB bound), answer one GET, close.  The response
   write is blocking — bodies are a few KiB going to a scraper that just
   asked for them, so the simplicity beats another write-side state
   machine on the hot loop. *)

let http_max_request = 8192

let http_request_path req =
  match String.index_opt req ' ' with
  | None -> ""
  | Some i ->
    (match String.index_from_opt req (i + 1) ' ' with
     | None -> ""
     | Some j -> String.sub req (i + 1) (j - i - 1))

let http_close t fd =
  Hashtbl.remove t.http fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let http_respond t fd req =
  let status, ctype, body =
    match http_request_path req with
    | "/metrics" ->
      ignore (Shardpool.footprint_bytes t.pool : int);
      ("200 OK", "text/plain; version=0.0.4", Obs.render_prometheus ())
    | "/metrics.json" | "/metrics.jsonl" -> ("200 OK", "application/json", Obs.dump_jsonl ())
    | "/trace" -> ("200 OK", "application/json", Trace.dump_chrome ())
    | p -> ("404 Not Found", "text/plain", Printf.sprintf "no route %s\n" p)
  in
  (try
     Unix.clear_nonblock fd;
     Sockio.write_string fd
       (Printf.sprintf
          "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
          status ctype (String.length body));
     Sockio.write_string fd body
   with Unix.Unix_error _ -> ());
  http_close t fd

let http_accept_ready t mfd =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true mfd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
    | fd, _addr ->
      Unix.set_nonblock fd;
      Hashtbl.replace t.http fd (Buffer.create 256)
  done

let http_readable t fd buf =
  match Sockio.retry (fun () -> Unix.read fd t.scratch 0 (Bytes.length t.scratch)) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> http_close t fd
  | 0 ->
    (* peer stopped sending before the blank line: answer what we have *)
    http_respond t fd (Buffer.contents buf)
  | n ->
    Buffer.add_subbytes buf t.scratch 0 n;
    let req = Buffer.contents buf in
    let complete =
      let len = String.length req in
      let rec go i = i + 4 <= len && (String.sub req i 4 = "\r\n\r\n" || go (i + 1)) in
      go 0
    in
    if complete || Buffer.length buf > http_max_request then http_respond t fd req

let accept_ready t =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
    | fd, _addr ->
      Unix.set_nonblock fd;
      set_nodelay fd;
      let cl =
        { fd;
          framer = Wire.Framer.create ();
          outq = Queue.create ();
          outq_head_off = 0;
          outq_bytes = 0;
          state = Awaiting_hello;
          conn_id = -1;
          features = 0;
          registered = false;
          rules = t.cfg.rules;
          closing = false;
          closed = false }
      in
      Hashtbl.replace t.clients fd cl;
      Obs.incr obs_accepted;
      Obs.add_gauge obs_conns 1
  done

let serve_loop t stop =
  while not (stop ()) do
    let reads = ref [ t.listen_fd ] and writes = ref [] in
    (match t.metrics_fd with Some fd -> reads := fd :: !reads | None -> ());
    Hashtbl.iter (fun fd _ -> reads := fd :: !reads) t.http;
    Hashtbl.iter
      (fun fd cl ->
         (* flow control: a reply backlog past the high-water mark pauses
            reads from this peer until it drains what we already owe it *)
         if not cl.closing then begin
           if cl.outq_bytes <= t.cfg.high_water then reads := fd :: !reads
           else Obs.incr obs_paused
         end;
         if not (Queue.is_empty cl.outq) then writes := fd :: !writes)
      t.clients;
    let readable, writable =
      match Unix.select !reads !writes [] 0.05 with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    (* the busy part of the iteration starts once select returns *)
    let timing = timing_on () in
    let t_busy = if timing then Trace.now_ns () else 0 in
    List.iter
      (fun fd ->
         if fd = t.listen_fd then accept_ready t
         else
           match Hashtbl.find_opt t.clients fd with
           | Some cl -> handle_readable t cl
           | None ->
             (match t.metrics_fd with
              | Some mfd when fd = mfd -> http_accept_ready t mfd
              | _ ->
                (match Hashtbl.find_opt t.http fd with
                 | Some buf -> http_readable t fd buf
                 | None -> ())))
      readable;
    flush_pool t;
    (match t.cfg.rebalance_every with
     | Some period ->
       let now = Unix.gettimeofday () in
       if now -. t.last_rebalance >= period then begin
         t.last_rebalance <- now;
         (* pending is empty (flush_pool just drained), so migration's
            quiesce-per-move cost hits no in-flight delivery *)
         let moved = Shardpool.rebalance t.pool in
         if moved > 0 then Obs.add obs_rebalanced moved
       end
     | None -> ());
    List.iter
      (fun fd ->
         match Hashtbl.find_opt t.clients fd with
         | Some cl -> ignore (flush_out t cl : bool)
         | None -> ())
      writable;
    (* error replies enqueued this round for clients that were not in the
       write set get a first flush attempt immediately *)
    Hashtbl.iter
      (fun _ cl ->
         if (cl.closing || not (Queue.is_empty cl.outq)) && not (List.mem cl.fd writable)
         then ignore (flush_out t cl : bool))
      (Hashtbl.copy t.clients);
    if timing then begin
      let busy_us = (Trace.now_ns () - t_busy) / 1000 in
      Obs.observe obs_loop_us busy_us;
      if busy_us > loop_stall_us then Obs.incr obs_loop_stalls
    end
  done

let init cfg =
  Sockio.ignore_sigpipe ();
  if cfg.trace_out <> None then Trace.set_enabled true;
  let pool =
    Shardpool.create ?domains:cfg.domains ~index:cfg.index ~tier:cfg.tier
      ~budget:cfg.budget ~kernel:cfg.kernel ~mode:cfg.mode ~rules:cfg.rules ()
  in
  let listen_fd =
    try listen_socket cfg.endpoint
    with e -> Shardpool.shutdown pool; raise e
  in
  Unix.set_nonblock listen_fd;
  let metrics_fd =
    match cfg.metrics with
    | None -> None
    | Some ep ->
      let fd =
        try listen_socket ep
        with e ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          Shardpool.shutdown pool;
          raise e
      in
      Unix.set_nonblock fd;
      Some fd
  in
  { cfg;
    pool;
    listen_fd;
    clients = Hashtbl.create 64;
    pending = Queue.create ();
    rules_text = String.concat "\n" (List.map Rule.to_string cfg.rules);
    needed_chunks = Engine.distinct_chunks cfg.rules;
    next_conn_id = 0;
    last_rebalance = Unix.gettimeofday ();
    scratch = Bytes.create 65536;
    metrics_fd;
    http = Hashtbl.create 8 }

let teardown t =
  Hashtbl.iter (fun _ cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ()) t.clients;
  Hashtbl.reset t.clients;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) t.http;
  Hashtbl.reset t.http;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.metrics_fd with
   | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  let unlink_unix = function
    | Unix_path path -> (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ()
  in
  unlink_unix t.cfg.endpoint;
  (match t.cfg.metrics with Some ep -> unlink_unix ep | None -> ());
  Shardpool.shutdown t.pool;
  (* dump the flight-recorder window after the pool joined: every worker's
     ring is quiescent, so the capture is exact *)
  (match t.cfg.trace_out with Some path -> Trace.save ~path | None -> ())

let run ?(stop = fun () -> false) cfg =
  let t = init cfg in
  Fun.protect ~finally:(fun () -> teardown t) (fun () -> serve_loop t stop)

type handle = {
  h_stop : bool Atomic.t;
  h_domain : unit Domain.t;
}

let start cfg =
  (* bind on the caller's domain so a client may connect the moment
     [start] returns — the backlog holds it until the loop first runs *)
  let t = init cfg in
  let h_stop = Atomic.make false in
  let h_domain =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () -> teardown t)
          (fun () -> serve_loop t (fun () -> Atomic.get h_stop)))
  in
  { h_stop; h_domain }

let stop h =
  Atomic.set h.h_stop true;
  Domain.join h.h_domain
