module Wire = Bbx_wire.Wire
module Sockio = Bbx_wire.Sockio
module Dpienc = Bbx_dpienc.Dpienc
module Engine = Bbx_mbox.Engine
module Rule = Bbx_rules.Rule
module Parser = Bbx_rules.Parser
module Handshake = Bbx_tls.Handshake
module Drbg = Bbx_crypto.Drbg

exception Server_error of { code : int; message : string }
exception Protocol_error of string

type t = {
  fd : Unix.file_descr;
  framer : Wire.Framer.t;
  scratch : Bytes.t;
  mutable open_ : bool;
}

let connect endpoint =
  { fd = Daemon.connect endpoint;
    framer = Wire.Framer.create ();
    scratch = Bytes.create 65536;
    open_ = true }

let send t msg = Sockio.write_string t.fd (Wire.encode_frame_string msg)

let rec recv t =
  match Wire.Framer.next t.framer with
  | Some payload -> begin
      match Wire.decode payload with
      | Wire.Error { code; message } -> raise (Server_error { code; message })
      | msg -> msg
    end
  | None ->
    let n = Sockio.read t.fd t.scratch 0 (Bytes.length t.scratch) in
    if n = 0 then raise End_of_file;
    Wire.Framer.feed t.framer t.scratch 0 n;
    recv t

let protocol_error what msg =
  raise
    (Protocol_error
       (Printf.sprintf "expected %s, got message type %d" what
          (match msg with
           | Wire.Hello _ -> 1
           | Wire.Hello_ok _ -> 2
           | Wire.Rule_setup _ -> 3
           | Wire.Setup_ok -> 4
           | Wire.Token_stream _ -> 5
           | Wire.Verdict _ -> 6
           | Wire.Salt_reset _ -> 7
           | Wire.Rule_update _ -> 8
           | Wire.Update_ok _ -> 9
           | Wire.Stats_req -> 10
           | Wire.Stats _ -> 11
           | Wire.Bye -> 12
           | Wire.Error _ -> 13
           | Wire.Metrics_req _ -> 14
           | Wire.Metrics _ -> 15
           | Wire.Record_stream _ -> 16
           | Wire.Verdict_tiered _ -> 17
           | Wire.Conn_export -> 18
           | Wire.Conn_state _ -> 19
           | Wire.Conn_import _ -> 20)))

let hello ?(features = 0) t ~mode ~salt0 =
  send t (Wire.Hello { version = Wire.version; mode; salt0; features });
  match recv t with
  | Wire.Hello_ok { conn_id; mode = mode'; rules_text } ->
    if mode' <> mode then raise (Protocol_error "daemon mode differs from HELLO");
    (conn_id, Parser.parse_ruleset rules_text)
  | msg -> protocol_error "HELLO_OK" msg

let rule_setup t ~pairs =
  send t (Wire.Rule_setup { pairs });
  match recv t with
  | Wire.Setup_ok -> ()
  | msg -> protocol_error "SETUP_OK" msg

let send_records t ~seq records = send t (Wire.Token_stream { seq; records })

let send_record t ~seq record = send t (Wire.Record_stream { seq; record })

(* VERDICT_TIERED is VERDICT plus the explicit detail byte; decoding the
   legacy frame already fills v_detail (inferred from via), so callers
   see one shape either way. *)
let recv_verdict t =
  match recv t with
  | Wire.Verdict { seq; status; verdicts }
  | Wire.Verdict_tiered { seq; status; verdicts } -> (seq, status, verdicts)
  | msg -> protocol_error "VERDICT" msg

let salt_reset t ~salt0 = send t (Wire.Salt_reset { salt0 })

let update_rules t ~remove_sids ~add ~pairs =
  send t
    (Wire.Rule_update
       { remove_sids; add_text = String.concat "\n" (List.map Rule.to_string add); pairs });
  (* verdicts for deliveries submitted before the update may land before
     the ack; hand them back rather than dropping them on the floor *)
  let rec await acc =
    match recv t with
    | Wire.Update_ok { added } -> (added, List.rev acc)
    | Wire.Verdict { seq; status; verdicts }
    | Wire.Verdict_tiered { seq; status; verdicts } ->
      await ((seq, status, verdicts) :: acc)
    | msg -> protocol_error "UPDATE_OK" msg
  in
  await []

(* Drain the connection off the daemon: verdicts still in flight arrive
   before the CONN_STATE frame (the daemon flushes its pool first), so
   the caller gets a complete verdict history plus the blob. *)
let export_conn t =
  send t Wire.Conn_export;
  let rec await acc =
    match recv t with
    | Wire.Conn_state { state } -> (state, List.rev acc)
    | Wire.Verdict { seq; status; verdicts }
    | Wire.Verdict_tiered { seq; status; verdicts } ->
      await ((seq, status, verdicts) :: acc)
    | msg -> protocol_error "CONN_STATE" msg
  in
  await []

let import_conn t ~state =
  send t (Wire.Conn_import { state });
  match recv t with
  | Wire.Setup_ok -> ()
  | msg -> protocol_error "SETUP_OK" msg

let stats t =
  send t Wire.Stats_req;
  match recv t with
  | Wire.Stats s -> s
  | msg -> protocol_error "STATS" msg

let metrics t scope =
  send t (Wire.Metrics_req { scope });
  match recv t with
  | Wire.Metrics { scope = scope'; body } ->
    if scope' <> scope then raise (Protocol_error "METRICS scope differs from request");
    body
  | msg -> protocol_error "METRICS" msg

let fd t = t.fd
let framer t = t.framer

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (try send t Wire.Bye with _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ---------- batteries-included setup ---------- *)

type session = {
  sc_client : t;
  sc_conn_id : int;
  sc_rules : Rule.t list;
  sc_key : Dpienc.key;
  sc_k_ssl : string;
  sc_features : int;
  sc_mode : Dpienc.mode;
}

(* Chunks are encrypted in bitsliced same-key sweeps ([token_enc_batch]
   produces exactly [Array.map (token_enc key)]) — rule setup is the
   per-connection cost at fleet scale, so it rides the batch kernel. *)
let pairs_for ~key rules =
  let chunks = Engine.distinct_chunks rules in
  let encs = Dpienc.token_enc_batch key chunks in
  Array.mapi (fun i c -> (c, encs.(i))) chunks

(* The S/R handshake runs between the two endpoints; the daemon plays
   only the middlebox, so for a synthetic client both ends live here. *)
let handshake seed =
  let st, client_share = Handshake.initiate (Drbg.create (seed ^ "/client")) in
  let keys_r, server_share =
    Handshake.respond (Drbg.create (seed ^ "/server")) ~peer_share:client_share
  in
  let keys = Handshake.complete st ~peer_share:server_share in
  assert (keys = keys_r);
  keys

let establish ?(features = 0) endpoint ~mode ~salt0 ~seed =
  let t = connect endpoint in
  match
    let conn_id, rules = hello ~features t ~mode ~salt0 in
    let keys = handshake seed in
    let key = Dpienc.key_of_secret keys.Handshake.k in
    rule_setup t ~pairs:(pairs_for ~key rules);
    { sc_client = t;
      sc_conn_id = conn_id;
      sc_rules = rules;
      sc_key = key;
      sc_k_ssl = keys.Handshake.k_ssl;
      sc_features = features;
      sc_mode = mode }
  with
  | session -> session
  | exception e -> close t; raise e

(* Live migration, client-driven: drain + serialise on the source daemon,
   close that socket, resume on [endpoint] by sending the blob where
   RULE_SETUP would go.  Sender-side state (keys, salt counters) is
   untouched — the engine snapshot already agrees with it — so the caller
   keeps streaming with the same {!Bbx_dpienc.Dpienc.sender}.  Returns
   the rebound session plus any verdicts that were still in flight on the
   source. *)
let migrate s endpoint =
  let state, pending = export_conn s.sc_client in
  close s.sc_client;
  let t = connect endpoint in
  match
    (* salt0 = 0 satisfies HELLO in either mode; the snapshot's salt
       epoch supersedes it *)
    let conn_id, rules = hello ~features:s.sc_features t ~mode:s.sc_mode ~salt0:0 in
    import_conn t ~state;
    ({ s with sc_client = t; sc_conn_id = conn_id; sc_rules = rules }, pending)
  with
  | r -> r
  | exception e -> close t; raise e
