(** A blocking [blindboxd] client: one socket, one monitored BlindBox
    connection, synchronous request/reply.

    This is the endpoint half of the protocol for callers that want
    simplicity over concurrency — tests, the CLI, and the load
    generator's setup phase ({!Loadgen} switches to its own non-blocking
    loop for the streaming phase).  {!establish} runs the whole
    connection preamble: local S/R handshake (the middlebox never sees a
    key), HELLO, per-connection rule encryption over the ruleset the
    daemon announced, RULE_SETUP. *)

(** Raised when the daemon answers with an [ERROR] frame. *)
exception Server_error of { code : int; message : string }

(** Raised on a reply that violates the protocol (wrong message type). *)
exception Protocol_error of string

type t

(** [connect endpoint] — raw transport, no handshake yet. *)
val connect : Daemon.endpoint -> t

(** [hello ?features t ~mode ~salt0] — returns the assigned connection id
    and the daemon's ruleset.  [features] (default [0]) are the HELLO
    feature bits; [0] encodes as the legacy body, so old daemons keep
    accepting it. *)
val hello :
  ?features:int -> t -> mode:Bbx_dpienc.Dpienc.mode -> salt0:int ->
  int * Bbx_rules.Rule.t list

(** [rule_setup t ~pairs] ships the [(chunk, enc)] table and waits for
    [SETUP_OK]. *)
val rule_setup : t -> pairs:(string * string) array -> unit

(** [send_records t ~seq records] frames one TOKEN_STREAM (does not wait
    for the verdict — pair with {!recv_verdict}). *)
val send_records : t -> seq:int -> string -> unit

(** [send_record t ~seq record] frames one RECORD_STREAM: one sealed SSL
    record of the connection's stream, shipped before the TOKEN_STREAM
    carrying the matching tokens (no reply; draws no verdict).  Only
    meaningful against a daemon in [Probable] mode with a tiered-aware
    client ({!Bbx_wire.Wire.feature_tiered}); an old daemon answers
    [ERROR{err_malformed}] like it does for [METRICS_REQ]. *)
val send_record : t -> seq:int -> string -> unit

(** [recv_verdict t] — next VERDICT or VERDICT_TIERED frame (both carry
    the same verdict record; the legacy frame's detail is inferred from
    its via). *)
val recv_verdict : t -> int * Bbx_wire.Wire.status * Bbx_wire.Wire.verdict list

(** [salt_reset t ~salt0] — fire-and-forget (FIFO with deliveries). *)
val salt_reset : t -> salt0:int -> unit

(** [update_rules t ~remove_sids ~add ~pairs] — ships a live rule update
    ([pairs] must cover the full post-update chunk set) and waits for
    [UPDATE_OK]; returns the added-rule count.  Outstanding verdicts are
    collected and returned too (they arrive before the ack). *)
val update_rules :
  t ->
  remove_sids:int list ->
  add:Bbx_rules.Rule.t list ->
  pairs:(string * string) array ->
  int * (int * Bbx_wire.Wire.status * Bbx_wire.Wire.verdict list) list

(** [export_conn t] sends [CONN_EXPORT] and collects the reply: the
    serialised connection blob, plus any verdicts that were still in
    flight (the daemon flushes them before the [CONN_STATE] frame).  The
    connection is gone from the daemon afterwards.  Requires
    {!Bbx_wire.Wire.feature_migrate} in the HELLO features. *)
val export_conn : t -> string * (int * Bbx_wire.Wire.status * Bbx_wire.Wire.verdict list) list

(** [import_conn t ~state] resumes an exported connection on this daemon,
    in place of {!rule_setup} (legal after HELLO); waits for [SETUP_OK]. *)
val import_conn : t -> state:string -> unit

(** [stats t] — works on a fresh connection without any handshake. *)
val stats : t -> Bbx_wire.Wire.stats

(** [metrics t scope] — the daemon's full metric registry (or trace
    window) in the requested rendering; like {!stats} it needs no
    handshake.  An old daemon that predates [METRICS_REQ] answers
    [ERROR{err_malformed}], surfaced as {!Server_error} — callers
    wanting graceful fallback catch it. *)
val metrics : t -> Bbx_wire.Wire.metrics_scope -> string

val close : t -> unit

(** {2 Low-level access}

    For non-blocking drivers ({!Loadgen}) that take over the socket
    after the blocking setup phase.  The framer may hold buffered bytes
    from earlier replies — keep using it, do not create a fresh one. *)

val fd : t -> Unix.file_descr

val framer : t -> Bbx_wire.Wire.Framer.t

(** {2 Batteries-included setup}

    [establish endpoint ~mode ~salt0 ~seed] connects, HELLOs, derives
    endpoint keys from a local S/R handshake (seeded deterministically
    from [seed]), direct-encrypts every distinct rule chunk of the
    daemon's ruleset, and completes RULE_SETUP.  Returns the session:
    its key material drives a {!Bbx_dpienc.Dpienc.sender} whose output
    the daemon's engine for this connection can match. *)

type session = {
  sc_client : t;
  sc_conn_id : int;
  sc_rules : Bbx_rules.Rule.t list;  (** ruleset announced by the daemon *)
  sc_key : Bbx_dpienc.Dpienc.key;    (** DPIEnc key (sender side) *)
  sc_k_ssl : string;                 (** record-layer key, 16 bytes *)
  sc_features : int;                 (** feature bits sent in HELLO *)
  sc_mode : Bbx_dpienc.Dpienc.mode;  (** mode agreed at HELLO *)
}

val establish :
  ?features:int ->
  Daemon.endpoint ->
  mode:Bbx_dpienc.Dpienc.mode ->
  salt0:int ->
  seed:string ->
  session

(** [migrate s endpoint] moves a live session to another daemon: drains
    and serialises the connection on the source ({!export_conn}), closes
    that socket, reconnects to [endpoint] and resumes via {!import_conn}.
    Sender-side key material and salt counters carry over unchanged — the
    snapshot agrees with them — so the caller keeps streaming with the
    same DPIEnc sender.  Returns the rebound session (fresh [sc_client]
    and [sc_conn_id]) and the verdicts still in flight on the source.
    Requires {!Bbx_wire.Wire.feature_migrate}. *)
val migrate :
  session ->
  Daemon.endpoint ->
  session * (int * Bbx_wire.Wire.status * Bbx_wire.Wire.verdict list) list

(** [pairs_for ~key rules] — the RULE_SETUP table for [rules] under
    [key]: every distinct chunk paired with its direct encryption
    ([AES_k(chunk)]).  Exposed for rule updates and tests. *)
val pairs_for :
  key:Bbx_dpienc.Dpienc.key -> Bbx_rules.Rule.t list -> (string * string) array
