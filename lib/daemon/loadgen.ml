module Wire = Bbx_wire.Wire
module Dpienc = Bbx_dpienc.Dpienc
module Rule = Bbx_rules.Rule
module Drbg = Bbx_crypto.Drbg
module Page = Bbx_net.Page
module Obs = Bbx_obs.Obs

type cfg = {
  lg_endpoint : Daemon.endpoint;
  lg_conns : int;
  lg_sends : int;
  lg_rate : float;
  lg_inflight : int;
  lg_payload_bytes : int;
  lg_hit_rate : float;
  lg_mode : Dpienc.mode;
  lg_seed : string;
}

let cfg ?(conns = 4) ?(sends = 200) ?(rate = 0.) ?(inflight = 4)
    ?(payload_bytes = 1024) ?(hit_rate = 0.02) ?(mode = Dpienc.Exact)
    ?(seed = "loadgen") endpoint =
  if conns < 1 then invalid_arg "Loadgen.cfg: conns must be >= 1";
  if sends < 1 then invalid_arg "Loadgen.cfg: sends must be >= 1";
  if inflight < 1 then invalid_arg "Loadgen.cfg: inflight must be >= 1";
  { lg_endpoint = endpoint;
    lg_conns = conns;
    lg_sends = sends;
    lg_rate = rate;
    lg_inflight = inflight;
    lg_payload_bytes = payload_bytes;
    lg_hit_rate = hit_rate;
    lg_mode = mode;
    lg_seed = seed }

type report = {
  rp_conns : int;
  rp_sends : int;
  rp_clean : int;
  rp_alert_frames : int;
  rp_alerts : int;
  rp_dropped : int;
  rp_tokens : int;
  rp_elapsed_s : float;
  rp_sends_per_s : float;
  rp_tokens_per_s : float;
  rp_rtt_p50_us : float;
  rp_rtt_p95_us : float;
  rp_rtt_p99_us : float;
  rp_rtt_mean_us : float;
  rp_rtt_max_us : float;
  rp_qwait_p50_us : float;
  rp_qwait_p95_us : float;
  rp_qwait_p99_us : float;
  rp_service_p50_us : float;
  rp_service_p95_us : float;
  rp_service_p99_us : float;
}

let rtt_hist =
  lazy
    (Obs.histogram "bbx_loadgen_rtt_us"
       ~buckets:
         [| 50; 100; 250; 500; 1000; 2500; 5000; 10000; 25000; 50000;
            100000; 250000; 1000000 |])

(* ---------- per-connection state ---------- *)

type conn = {
  c_client : Client.t;
  c_fd : Unix.file_descr;
  c_framer : Wire.Framer.t;
  c_frames : string array;      (* pre-encoded TOKEN_STREAM frames *)
  c_tokens : int array;         (* tokens per frame *)
  c_t_send : float array;       (* queued-for-write timestamp per seq *)
  mutable c_sent : int;         (* frames handed to the out queue *)
  mutable c_recvd : int;        (* verdicts received *)
  mutable c_outstanding : int;
  c_outq : string Queue.t;
  mutable c_out_off : int;      (* write offset into the queue head *)
}

(* Keywords that are safe to inject: Alert rules raise verdicts without
   blocking the connection, so every frame still gets inspected. *)
let alert_keywords rules =
  List.concat_map
    (fun r -> if r.Rule.action = Rule.Alert then Rule.keywords r else [])
    rules

(* Frame [j] is a hit iff adding it keeps hits <= hit_rate * frames —
   exact proportions, deterministic, spread across the run. *)
let is_hit ~hit_rate ~hits j =
  hit_rate > 0. && float_of_int (hits + 1) <= hit_rate *. float_of_int (j + 1)

let payloads cfg ~kws drbg =
  let kw_cursor = ref 0 in
  let hits = ref 0 in
  Array.init cfg.lg_sends (fun j ->
      let benign = Page.gen_html drbg ~bytes:cfg.lg_payload_bytes in
      if kws = [||] || not (is_hit ~hit_rate:cfg.lg_hit_rate ~hits:!hits j)
      then benign
      else begin
        incr hits;
        let kw = kws.(!kw_cursor mod Array.length kws) in
        incr kw_cursor;
        let cut = min (String.length benign / 2) (String.length benign) in
        String.sub benign 0 cut ^ kw
        ^ String.sub benign cut (String.length benign - cut)
      end)

let setup_conn cfg ~idx =
  let session =
    Client.establish cfg.lg_endpoint ~mode:cfg.lg_mode ~salt0:0
      ~seed:(Printf.sprintf "%s/conn%d" cfg.lg_seed idx)
  in
  let kws = Array.of_list (alert_keywords session.Client.sc_rules) in
  let drbg = Drbg.create (Printf.sprintf "%s/payload%d" cfg.lg_seed idx) in
  let pays = payloads cfg ~kws drbg in
  let sender =
    Dpienc.sender_create cfg.lg_mode session.Client.sc_key ~salt0:0
  in
  let k_ssl =
    match cfg.lg_mode with
    | Dpienc.Probable -> Some session.Client.sc_k_ssl
    | Dpienc.Exact -> None
  in
  let buf = Buffer.create (4 * cfg.lg_payload_bytes) in
  let tokens = Array.make cfg.lg_sends 0 in
  let frames =
    Array.mapi
      (fun j payload ->
        Buffer.clear buf;
        tokens.(j) <- Dpienc.sender_encrypt_into sender ?k_ssl payload buf;
        Wire.encode_frame_string
          (Wire.Token_stream { seq = j; records = Buffer.contents buf }))
      pays
  in
  { c_client = session.Client.sc_client;
    c_fd = Client.fd session.Client.sc_client;
    c_framer = Client.framer session.Client.sc_client;
    c_frames = frames;
    c_tokens = tokens;
    c_t_send = Array.make cfg.lg_sends 0.;
    c_sent = 0;
    c_recvd = 0;
    c_outstanding = 0;
    c_outq = Queue.create ();
    c_out_off = 0 }

(* ---------- streaming phase ---------- *)

let flush_out c =
  let progress = ref true in
  while !progress && not (Queue.is_empty c.c_outq) do
    let head = Queue.peek c.c_outq in
    let len = String.length head - c.c_out_off in
    match
      Unix.write_substring c.c_fd head c.c_out_off len
    with
    | 0 -> progress := false
    | n ->
      if n = len then begin
        ignore (Queue.pop c.c_outq);
        c.c_out_off <- 0
      end
      else begin
        c.c_out_off <- c.c_out_off + n;
        progress := false
      end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      progress := false
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

type totals = {
  mutable t_clean : int;
  mutable t_alert_frames : int;
  mutable t_alerts : int;
  mutable t_dropped : int;
  mutable t_tokens : int;
  mutable t_done : int;
}

let handle_frame totals rtts c payload =
  match Wire.decode payload with
  | Wire.Verdict { seq; status; verdicts } ->
    if seq < 0 || seq >= Array.length c.c_t_send || c.c_t_send.(seq) = 0.
    then failwith "loadgen: verdict for an unsent frame";
    let rtt_us = (Unix.gettimeofday () -. c.c_t_send.(seq)) *. 1e6 in
    rtts := rtt_us :: !rtts;
    Obs.observe (Lazy.force rtt_hist) (int_of_float rtt_us);
    (match status with
     | Wire.Clean ->
       totals.t_clean <- totals.t_clean + 1;
       totals.t_tokens <- totals.t_tokens + c.c_tokens.(seq)
     | Wire.Alerts ->
       totals.t_alert_frames <- totals.t_alert_frames + 1;
       totals.t_alerts <- totals.t_alerts + List.length verdicts;
       totals.t_tokens <- totals.t_tokens + c.c_tokens.(seq)
     | Wire.Dropped -> totals.t_dropped <- totals.t_dropped + 1);
    c.c_recvd <- c.c_recvd + 1;
    c.c_outstanding <- c.c_outstanding - 1;
    totals.t_done <- totals.t_done + 1
  | Wire.Error { code; message } ->
    failwith (Printf.sprintf "loadgen: daemon error %d: %s" code message)
  | _ -> failwith "loadgen: unexpected message during streaming"

let stream cfg conns =
  let totals =
    { t_clean = 0; t_alert_frames = 0; t_alerts = 0; t_dropped = 0;
      t_tokens = 0; t_done = 0 }
  in
  let rtts = ref [] in
  let total = cfg.lg_conns * cfg.lg_sends in
  let scratch = Bytes.create 65536 in
  Array.iter (fun c -> Unix.set_nonblock c.c_fd) conns;
  let t0 = Unix.gettimeofday () in
  let next_at = ref t0 in
  let cursor = ref 0 in
  (* Start every frame the pacing and the inflight windows allow. *)
  let pump now =
    let continue = ref true in
    while !continue do
      if cfg.lg_rate > 0. && now < !next_at then continue := false
      else begin
        (* round-robin scan for a connection with send capacity *)
        let picked = ref None in
        let i = ref 0 in
        while !picked = None && !i < Array.length conns do
          let c = conns.((!cursor + !i) mod Array.length conns) in
          if c.c_sent < cfg.lg_sends && c.c_outstanding < cfg.lg_inflight
          then picked := Some c;
          incr i
        done;
        cursor := (!cursor + !i) mod Array.length conns;
        match !picked with
        | None -> continue := false
        | Some c ->
          c.c_t_send.(c.c_sent) <- now;
          Queue.push c.c_frames.(c.c_sent) c.c_outq;
          c.c_sent <- c.c_sent + 1;
          c.c_outstanding <- c.c_outstanding + 1;
          if cfg.lg_rate > 0. then begin
            (* don't bank unbounded catch-up credit after a stall *)
            if !next_at < now -. 0.1 then next_at := now;
            next_at := !next_at +. (1. /. cfg.lg_rate)
          end
      end
    done
  in
  while totals.t_done < total do
    let now = Unix.gettimeofday () in
    pump now;
    Array.iter flush_out conns;
    let rd =
      Array.to_list conns
      |> List.filter_map (fun c ->
             if c.c_recvd < cfg.lg_sends then Some c.c_fd else None)
    in
    let wr =
      Array.to_list conns
      |> List.filter_map (fun c ->
             if not (Queue.is_empty c.c_outq) then Some c.c_fd else None)
    in
    let timeout =
      if cfg.lg_rate > 0. && !next_at > now then
        Float.min 0.05 (!next_at -. now)
      else 0.05
    in
    let rd_ready, wr_ready, _ =
      try Unix.select rd wr [] timeout
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    Array.iter
      (fun c ->
        if List.memq c.c_fd wr_ready then flush_out c;
        if List.memq c.c_fd rd_ready then begin
          match Unix.read c.c_fd scratch 0 (Bytes.length scratch) with
          | 0 -> failwith "loadgen: daemon closed the connection"
          | n ->
            Wire.Framer.feed c.c_framer scratch 0 n;
            let rec drain () =
              match Wire.Framer.next c.c_framer with
              | Some payload -> handle_frame totals rtts c payload; drain ()
              | None -> ()
            in
            drain ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
            -> ()
        end)
      conns
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.iter (fun c -> Unix.clear_nonblock c.c_fd) conns;
  (totals, !rtts, elapsed)

(* ---------- daemon-side phase breakdown ----------

   The daemon exposes bbx_daemon_queue_wait_us / bbx_shard_service_us over
   METRICS_REQ.  Snapshot both histograms before and after the streaming
   phase and diff the bucket counts: the registry is cumulative (and, for
   in-process daemons, shared with our own metrics), so only the interval
   delta describes this run.  Parsing is a hand-rolled scanner keyed to
   Obs.dump_jsonl's exact emitter — no JSON dependency. *)

let parse_int_at s pos =
  let n = String.length s in
  let j = ref pos in
  while !j < n && (match s.[!j] with '0' .. '9' | '-' -> true | _ -> false) do
    Stdlib.incr j
  done;
  if !j = pos then None
  else Some (int_of_string (String.sub s pos (!j - pos)), !j)

let find_sub s pat from =
  let n = String.length s and pl = String.length pat in
  let rec go i =
    if i + pl > n then None
    else if String.sub s i pl = pat then Some (i + pl)
    else go (i + 1)
  in
  go from

(* [(finite bounds, all counts incl. +Inf)] for one histogram line. *)
let hist_snapshot body name =
  let prefix = Printf.sprintf {|{"metric":"%s","type":"histogram"|} name in
  match
    List.find_opt
      (fun l -> String.length l >= String.length prefix
                && String.sub l 0 (String.length prefix) = prefix)
      (String.split_on_char '\n' body)
  with
  | None -> None
  | Some line ->
    let bounds = ref [] and counts = ref [] in
    let rec loop from =
      match find_sub line {|{"le":|} from with
      | None -> ()
      | Some p ->
        let bound =
          if p < String.length line && line.[p] = '"' then None (* "+Inf" *)
          else Option.map fst (parse_int_at line p)
        in
        (match find_sub line {|"count":|} p with
         | None -> ()
         | Some q ->
           (match parse_int_at line q with
            | None -> ()
            | Some (c, q') ->
              (match bound with Some b -> bounds := b :: !bounds | None -> ());
              counts := c :: !counts;
              loop q'))
    in
    loop 0;
    if !counts = [] then None
    else
      Some (Array.of_list (List.rev !bounds), Array.of_list (List.rev !counts))

(* A dedicated monitoring connection (like STATS_REQ, no handshake
   needed): an old daemon answers ERROR and closes it, which costs us the
   breakdown — zeros in the report — but never touches a streaming
   connection. *)
let fetch_phase_snaps endpoint =
  match Client.connect endpoint with
  | exception (Unix.Unix_error _ | Failure _) -> None
  | mon ->
    Fun.protect
      ~finally:(fun () -> Client.close mon)
      (fun () ->
         match Client.metrics mon Wire.Jsonl with
         | body -> begin
             match
               ( hist_snapshot body "bbx_daemon_queue_wait_us",
                 hist_snapshot body "bbx_shard_service_us" )
             with
             | Some q, Some s -> Some (q, s)
             | _ -> None
           end
         | exception (Client.Server_error _ | Client.Protocol_error _) -> None
         | exception (End_of_file | Unix.Unix_error _ | Wire.Malformed _) -> None)

let diff_counts before after =
  if Array.length before <> Array.length after then after
  else Array.mapi (fun i a -> max 0 (a - before.(i))) after

(* ---------- reporting ---------- *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let run cfg =
  let conns = Array.init cfg.lg_conns (fun idx -> setup_conn cfg ~idx) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun c -> Client.close c.c_client) conns)
    (fun () ->
      let snaps_before = fetch_phase_snaps cfg.lg_endpoint in
      let totals, rtts, elapsed = stream cfg conns in
      let snaps_after = fetch_phase_snaps cfg.lg_endpoint in
      let phase_pct which q =
        match (snaps_before, snaps_after) with
        | Some (qb, sb), Some (qa, sa) ->
          let (bounds, cb), (_, ca) =
            match which with `Queue -> (qb, qa) | `Service -> (sb, sa)
          in
          Obs.percentile_of_counts ~bounds ~counts:(diff_counts cb ca) q
        | _ -> 0.0
      in
      let samples = Array.of_list rtts in
      Array.sort compare samples;
      let sum = Array.fold_left ( +. ) 0. samples in
      let n = Array.length samples in
      let elapsed = Float.max elapsed 1e-9 in
      { rp_conns = cfg.lg_conns;
        rp_sends = totals.t_done;
        rp_clean = totals.t_clean;
        rp_alert_frames = totals.t_alert_frames;
        rp_alerts = totals.t_alerts;
        rp_dropped = totals.t_dropped;
        rp_tokens = totals.t_tokens;
        rp_elapsed_s = elapsed;
        rp_sends_per_s = float_of_int totals.t_done /. elapsed;
        rp_tokens_per_s = float_of_int totals.t_tokens /. elapsed;
        rp_rtt_p50_us = percentile samples 0.50;
        rp_rtt_p95_us = percentile samples 0.95;
        rp_rtt_p99_us = percentile samples 0.99;
        rp_rtt_mean_us = (if n = 0 then 0. else sum /. float_of_int n);
        rp_rtt_max_us = (if n = 0 then 0. else samples.(n - 1));
        rp_qwait_p50_us = phase_pct `Queue 0.50;
        rp_qwait_p95_us = phase_pct `Queue 0.95;
        rp_qwait_p99_us = phase_pct `Queue 0.99;
        rp_service_p50_us = phase_pct `Service 0.50;
        rp_service_p95_us = phase_pct `Service 0.95;
        rp_service_p99_us = phase_pct `Service 0.99 })

let report_json r =
  Printf.sprintf
    {|{"conns": %d, "sends": %d, "clean": %d, "alert_frames": %d, "alerts": %d, "dropped": %d, "tokens": %d, "elapsed_s": %.6f, "sends_per_s": %.1f, "tokens_per_s": %.1f, "rtt_p50_us": %.1f, "rtt_p95_us": %.1f, "rtt_p99_us": %.1f, "rtt_mean_us": %.1f, "rtt_max_us": %.1f, "qwait_p50_us": %.1f, "qwait_p95_us": %.1f, "qwait_p99_us": %.1f, "service_p50_us": %.1f, "service_p95_us": %.1f, "service_p99_us": %.1f}|}
    r.rp_conns r.rp_sends r.rp_clean r.rp_alert_frames r.rp_alerts
    r.rp_dropped r.rp_tokens r.rp_elapsed_s r.rp_sends_per_s
    r.rp_tokens_per_s r.rp_rtt_p50_us r.rp_rtt_p95_us r.rp_rtt_p99_us
    r.rp_rtt_mean_us r.rp_rtt_max_us r.rp_qwait_p50_us r.rp_qwait_p95_us
    r.rp_qwait_p99_us r.rp_service_p50_us r.rp_service_p95_us
    r.rp_service_p99_us

let print_report oc r =
  Printf.fprintf oc "connections        %d\n" r.rp_conns;
  Printf.fprintf oc "frames             %d (%d clean, %d with alerts, %d dropped)\n"
    r.rp_sends r.rp_clean r.rp_alert_frames r.rp_dropped;
  Printf.fprintf oc "alert verdicts     %d\n" r.rp_alerts;
  Printf.fprintf oc "tokens inspected   %d\n" r.rp_tokens;
  Printf.fprintf oc "elapsed            %.3f s\n" r.rp_elapsed_s;
  Printf.fprintf oc "throughput         %.1f frames/s, %.1f tokens/s\n"
    r.rp_sends_per_s r.rp_tokens_per_s;
  Printf.fprintf oc "rtt p50/p95/p99    %.0f / %.0f / %.0f us\n"
    r.rp_rtt_p50_us r.rp_rtt_p95_us r.rp_rtt_p99_us;
  Printf.fprintf oc "rtt mean/max       %.0f / %.0f us\n"
    r.rp_rtt_mean_us r.rp_rtt_max_us;
  if r.rp_qwait_p50_us > 0. || r.rp_service_p50_us > 0. then begin
    Printf.fprintf oc "queue wait p50/p95/p99  %.0f / %.0f / %.0f us (daemon-side, bucket upper bounds)\n"
      r.rp_qwait_p50_us r.rp_qwait_p95_us r.rp_qwait_p99_us;
    Printf.fprintf oc "shard service p50/p95/p99  %.0f / %.0f / %.0f us\n"
      r.rp_service_p50_us r.rp_service_p95_us r.rp_service_p99_us
  end
