(** [blindboxd]: the BlindBox middlebox as a standalone network daemon.

    One process, one ruleset, one {!Bbx_mbox.Shardpool}; many client
    connections multiplexed onto it over a Unix-domain socket (or TCP)
    speaking the {!Bbx_wire.Wire} framing.  Each accepted socket carries
    exactly one monitored BlindBox connection: the client runs the
    endpoint half (handshake between S and R happens {e off-box} — the
    middlebox never sees a key), ships its per-connection obfuscated rule
    encryptions in [RULE_SETUP], then streams {!Bbx_dpienc.Dpienc}
    records in [TOKEN_STREAM] frames and reads [VERDICT] replies.
    Clients that advertise {!Bbx_wire.Wire.feature_tiered} in [HELLO]
    may additionally ship their sealed SSL stream in [RECORD_STREAM]
    frames — fuel for Protocol III probable-cause escalation on the
    daemon's engines — and get their verdicts as [VERDICT_TIERED],
    which carries the per-verdict tier detail byte; everyone else keeps
    legacy [VERDICT] frames.

    {b Event loop.}  A single front domain owns every socket: a
    [select]-based loop accepts, reads frames, routes control messages,
    and submits deliveries to the shard pool (worker domains do the
    actual detection).  After each read sweep the loop drains the pool
    and turns completed deliveries into [VERDICT] frames in global
    submission order — per-connection reply order therefore matches
    per-connection submission order.

    {b Backpressure.}  Two bounded buffers flow-control a connection:
    the pool's per-worker mailboxes block the submitting front when a
    shard falls behind, and a per-connection output buffer beyond
    [high_water] bytes pauses {e reads} from that socket until the peer
    has drained its replies — a slow reader throttles itself, never the
    daemon's memory.

    {b Isolation.}  A malformed frame, an illegal message for the
    connection's state, or an unparseable token stream answers with an
    [ERROR] frame and closes that one connection; other connections and
    the daemon itself are unaffected.

    {b Observability.}  Every frame is timed through five pipeline
    stages — decode ([bbx_daemon_read_us]), record validation
    ([bbx_daemon_validate_us]), mailbox wait ([bbx_daemon_queue_wait_us]),
    shard inspection ([bbx_shard_service_us]) and output-queue residency
    including the socket write ([bbx_daemon_write_us]) — plus an
    event-loop busy histogram ([bbx_daemon_loop_us]) with a stall counter.
    With {!Bbx_obs.Trace} recording (enable via [trace_out], the
    [BLINDBOX_TRACE] env var, or [Trace.set_enabled]) each stage also
    lands in the flight recorder keyed by [(conn_id, seq)], so a dump
    decomposes one frame's round trip stage by stage.  Live scraping:
    [METRICS_REQ] over the wire (any connection state), or plain HTTP/1.0
    on the optional [metrics] endpoint — [GET /metrics] (Prometheus),
    [/metrics.jsonl] (JSONL), [/trace] (Chrome trace JSON). *)

(** Where the daemon listens / the client connects. *)
type endpoint =
  | Unix_path of string        (** Unix-domain socket path *)
  | Tcp of string * int        (** host, port *)

(** ["tcp:HOST:PORT"] becomes {!Tcp}; anything else is a {!Unix_path}. *)
val endpoint_of_string : string -> endpoint

val endpoint_to_string : endpoint -> string

type config = {
  endpoint : endpoint;
  mode : Bbx_dpienc.Dpienc.mode;
  rules : Bbx_rules.Rule.t list;
  domains : int option;           (** shard-pool workers (None = default) *)
  index : Bbx_detect.Detect.index_backend;
  tier : Bbx_rules.Classify.protocol_class;
  (** highest BlindBox protocol the engines execute (default
      [Protocol_III]; see {!Bbx_mbox.Engine.create}) *)
  budget : Bbx_mbox.Engine.budget;
  (** per-flow Protocol III escalation budget *)
  kernel : Bbx_dpienc.Dpienc.aes_kernel;
  (** AES path for tier-3 record decryption in every shard (default
      [Bitsliced]; [Scalar] is the reference path) *)
  high_water : int;               (** per-connection output-buffer bytes
                                      before reads from it pause *)
  metrics : endpoint option;      (** HTTP/1.0 [GET /metrics] listener *)
  trace_out : string option;      (** enable the flight recorder and dump
                                      it here on teardown ([.jsonl] =
                                      JSONL, else Chrome trace JSON) *)
  rebalance_every : float option; (** seconds between shard rebalances
                                      ({!Bbx_mbox.Shardpool.rebalance});
                                      [None] (default) disables *)
}

(** [config ~endpoint ~rules ()] with [Exact] mode, default domains,
    [Hash] index, [Protocol_III] tier under the default escalation budget,
    a 1 MiB high-water mark, and no metrics/trace plane. *)
val config :
  ?mode:Bbx_dpienc.Dpienc.mode ->
  ?domains:int ->
  ?index:Bbx_detect.Detect.index_backend ->
  ?tier:Bbx_rules.Classify.protocol_class ->
  ?budget:Bbx_mbox.Engine.budget ->
  ?kernel:Bbx_dpienc.Dpienc.aes_kernel ->
  ?high_water:int ->
  ?rebalance_every:float ->
  ?metrics:endpoint ->
  ?trace_out:string ->
  endpoint:endpoint ->
  rules:Bbx_rules.Rule.t list ->
  unit ->
  config

(** [connect endpoint] — a blocking client socket to a daemon (used by
    {!Client} and {!Loadgen}); sets [TCP_NODELAY] on TCP and turns
    SIGPIPE off process-wide. *)
val connect : endpoint -> Unix.file_descr

(** [run ?stop cfg] binds the endpoint and serves until [stop ()] turns
    true (checked a few times a second; default: serve forever).  Always
    shuts the shard pool down, closes every socket and unlinks a
    Unix-domain path on the way out, including on exceptions. *)
val run : ?stop:(unit -> bool) -> config -> unit

(** In-process daemon for tests, benches and examples: {!start} binds
    the endpoint synchronously (a client may connect as soon as it
    returns) and runs the event loop on a fresh domain; {!stop} signals
    it and joins. *)
type handle

val start : config -> handle

val stop : handle -> unit
