module Obs = Bbx_obs.Obs

(* Emission accounting per tokenizer kind.  Counts are accumulated in the
   fold's own accumulator walk and added once per fold call, so the
   per-token cost of instrumentation is zero. *)
let obs_window_tokens = Obs.counter {|bbx_tokenizer_tokens_total{kind="window"}|}
let obs_delim_tokens = Obs.counter {|bbx_tokenizer_tokens_total{kind="delimiter"}|}
let obs_short_tokens = Obs.counter {|bbx_tokenizer_tokens_total{kind="short_unit"}|}
let obs_bytes = Obs.counter "bbx_tokenizer_payload_bytes_total"

type token = { content : string; offset : int }

let token_len = 8
let max_keyword_len = 32

let is_delimiter c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> false
  | c when Char.code c >= 0x80 -> false (* binary / multi-byte data *)
  | _ -> true

(* ---- streaming visitors ----

   The folds below are the primitive tokenizers: they hand the consumer
   [(off, len)] slices of the payload instead of materialising one string
   per token.  [len = token_len] for ordinary tokens; [len < token_len]
   marks a short delimiter-bounded unit whose logical token is the slice
   zero-padded to [token_len].  The list API is a shim over these. *)

let fold_window s ~init ~f =
  let n = String.length s in
  let acc = ref init in
  for off = 0 to n - token_len do
    acc := f !acc ~off ~len:token_len
  done;
  Obs.add obs_window_tokens (max 0 (n - token_len + 1));
  Obs.add obs_bytes n;
  !acc

(* For callers that scan windows themselves (the packed DPIEnc sender
   rolls the window bytes instead of re-reading them): keep the obs
   accounting identical to [fold_window]. *)
let note_window_scan s =
  let n = String.length s in
  Obs.add obs_window_tokens (max 0 (n - token_len + 1));
  Obs.add obs_bytes n

let window s =
  List.rev
    (fold_window s ~init:[] ~f:(fun acc ~off ~len:_ ->
         { content = String.sub s off token_len; offset = off } :: acc))

let window_count s = max 0 (String.length s - token_len + 1)

let pad_short s =
  let n = String.length s in
  if n = 0 || n > token_len then invalid_arg "Tokenizer.pad_short: bad length";
  s ^ String.make (token_len - n) '\000'

(* forward declaration resolved below: keyword chunking consults the
   delimiter tokenizer's emission plan so that every chunk the middlebox
   searches for is actually emitted when the keyword appears on a
   boundary. *)

(* Keyword boundary positions: the start/end of the stream and every
   position adjacent to a delimiter character (a keyword may itself contain
   or consist of delimiters, e.g. "?user=", so positions of delimiters count
   as boundaries too). *)
let boundaries s =
  let n = String.length s in
  let mark = Array.make (n + 1) false in
  mark.(0) <- true;
  mark.(n) <- true;
  for i = 0 to n - 1 do
    if is_delimiter s.[i] then begin
      mark.(i) <- true;
      mark.(i + 1) <- true
    end
  done;
  mark

(* The delimiter tokenizer's emission plan: which full-token offsets get a
   token, and which short delimiter-bounded units get a padded one (the
   latter only when [short_units] is set: the paper's tokenizer detects
   keywords of 8+ bytes only, so padded short tokens are an extension). *)
let delimiter_plan ~short_units s =
  let n = String.length s in
  let mark = boundaries s in
  let emit = Array.make (max 0 (n - token_len + 1)) false in
  (* One chunk at every start boundary... *)
  for i = 0 to n - 1 do
    if mark.(i) && i + token_len <= n then emit.(i) <- true
  done;
  (* ...continuation chunks at stride [token_len] inside long
     non-delimiter runs (covering keywords longer than one token)... *)
  let shorts = ref [] in
  let run_start = ref 0 in
  for i = 0 to n do
    if i = n || is_delimiter s.[i] then begin
      let a = !run_start in
      let rec go off =
        if off + token_len <= i && off - a < max_keyword_len then begin
          emit.(off) <- true;
          go (off + token_len)
        end
      in
      if i - a > token_len then go (a + token_len);
      (* short delimiter-bounded units are emitted zero-padded *)
      if short_units && i - a > 0 && i - a < token_len then shorts := (a, i - a) :: !shorts;
      run_start := i + 1
    end
  done;
  (* ...plus end-aligned tails for every end boundary. *)
  for j = token_len to n do
    if mark.(j) then emit.(j - token_len) <- true
  done;
  (emit, List.rev !shorts)

(* Emission order (full tokens ascending, then short units ascending) is
   part of the wire contract: the streaming and list paths must serialize
   identically for the receiver's §3.4 validation to compare bytes. *)
let fold_delimiter ?(short_units = false) s ~init ~f =
  let emit, shorts = delimiter_plan ~short_units s in
  let acc = ref init in
  let full = ref 0 in
  for off = 0 to Array.length emit - 1 do
    if emit.(off) then begin
      incr full;
      acc := f !acc ~off ~len:token_len
    end
  done;
  List.iter (fun (off, len) -> acc := f !acc ~off ~len) shorts;
  Obs.add obs_delim_tokens !full;
  Obs.add obs_short_tokens (List.length shorts);
  Obs.add obs_bytes (String.length s);
  !acc

let slice_token s ~off ~len =
  if len = token_len then { content = String.sub s off token_len; offset = off }
  else { content = pad_short (String.sub s off len); offset = off }

let delimiter ?short_units s =
  List.rev
    (fold_delimiter ?short_units s ~init:[] ~f:(fun acc ~off ~len ->
         slice_token s ~off ~len :: acc))

let delimiter_count ?short_units s =
  fold_delimiter ?short_units s ~init:0 ~f:(fun acc ~off:_ ~len:_ -> acc + 1)

(* Split a rule keyword into chunks the middlebox will search for.  Chunk
   offsets are picked from the delimiter tokenizer's own emission plan for
   the keyword (a keyword sitting between delimiters in traffic is emitted
   at exactly these relative offsets, plus possibly more from context), so
   delimiter tokenization covers every chunk of a boundary-aligned keyword.
   Window tokenization emits every offset and covers them trivially.

   A greedy cover walks the emittable offsets: at each step take the
   right-most emittable chunk still overlapping the covered prefix.  Gaps
   (only possible for keywords longer than [max_keyword_len]) are jumped,
   trading a little match evidence for detectability. *)
let keyword_chunks kw =
  let n = String.length kw in
  if n = 0 then []
  else if n <= token_len then [ (pad_short kw, 0) ]
  else begin
    let emit, _ = delimiter_plan ~short_units:false kw in
    let offsets = ref [] in
    for i = Array.length emit - 1 downto 0 do
      if emit.(i) then offsets := i :: !offsets
    done;
    let emittable = !offsets in (* sorted ascending; contains 0 and n - token_len *)
    let rec cover frontier acc =
      if frontier >= n then List.rev acc
      else begin
        let overlapping =
          List.filter (fun e -> e <= frontier && e + token_len > frontier) emittable
        in
        match List.fold_left (fun best e -> max best e) (-1) overlapping with
        | -1 ->
          (* gap: jump to the next emittable offset *)
          (match List.find_opt (fun e -> e > frontier) emittable with
           | Some e -> cover (e + token_len) (e :: acc)
           | None -> List.rev acc)
        | e -> cover (e + token_len) (e :: acc)
      end
    in
    let picks = cover 0 [] in
    (* always include the end-aligned tail so matches anchor the keyword end *)
    let picks = if List.mem (n - token_len) picks then picks else picks @ [ n - token_len ] in
    List.map (fun i -> (String.sub kw i token_len, i)) (List.sort_uniq compare picks)
  end
