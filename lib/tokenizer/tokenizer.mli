(** Traffic tokenization (paper §3).

    The sender splits the plaintext byte stream into fixed-size tokens which
    are then encrypted under DPIEnc.  Two strategies are implemented:

    - {b window}: one token at every byte offset (the paper's sliding
      window).  Complete — detects keywords at any alignment — but emits one
      token per payload byte.
    - {b delimiter}: tokens only at offsets where a rule keyword could start
      or end, i.e. adjacent to punctuation/whitespace/special symbols.  Far
      fewer tokens; misses the rare keyword that starts mid-word (the paper
      measures 97.1% keyword recall on ICTF).

    Keywords longer than one token are split by {!keyword_chunks} exactly as
    the middlebox splits rule keywords: consecutive chunks plus an
    end-aligned tail (the paper's "maliciou"/"iciously" example).  Keywords
    shorter than one token are zero-padded; the delimiter tokenizer emits
    padded tokens for short delimiter-bounded units so they remain
    detectable. *)

type token = {
  content : string;  (** exactly [token_len] bytes (short units zero-padded) *)
  offset : int;      (** byte offset in the stream *)
}

(** Token length in bytes (8, as in the paper's implementation). *)
val token_len : int

(** Longest keyword coverable by delimiter tokenization (32 bytes = 4
    chunks from any starting boundary; window tokenization has no limit). *)
val max_keyword_len : int

(** [is_delimiter c] — punctuation, whitespace and special symbols. *)
val is_delimiter : char -> bool

(** {2 Streaming visitors}

    The folds are the primitive tokenizers: they visit [(off, len)] slices
    of the payload in emission order without allocating a string per token.
    [len = token_len] for ordinary tokens; [len < token_len] (delimiter
    tokenizer with [short_units] only) marks a short delimiter-bounded unit
    whose logical token is [s.[off..off+len-1]] zero-padded to
    {!token_len}.  The list API below is a shim over these, and both emit
    in the identical order (the wire contract the receiver's validation
    depends on). *)

(** [fold_window s ~init ~f] folds [f] over every window offset. *)
val fold_window : string -> init:'a -> f:('a -> off:int -> len:int -> 'a) -> 'a

(** [note_window_scan s] records the observability counters that
    [fold_window s] would, for callers that scan the windows themselves
    (the packed DPIEnc sender rolls the window bytes instead of
    re-reading them). *)
val note_window_scan : string -> unit

(** [fold_delimiter ?short_units s ~init ~f] folds [f] over the delimiter
    tokenizer's emission plan: full tokens in ascending offset order, then
    (with [short_units]) padded short units in ascending offset order. *)
val fold_delimiter :
  ?short_units:bool -> string -> init:'a -> f:('a -> off:int -> len:int -> 'a) -> 'a

(** [slice_token s ~off ~len] materialises the token a fold visited — the
    bridge from the streaming API back to {!token} records. *)
val slice_token : string -> off:int -> len:int -> token

(** [window s] emits one token per offset ([String.length s - token_len + 1]
    tokens; none if the payload is shorter than a token). *)
val window : string -> token list

(** [delimiter ?short_units s] emits tokens only at keyword-boundary
    offsets.  With [short_units] (default false — the paper detects
    keywords of 8+ bytes only), delimiter-bounded units shorter than a
    token are additionally emitted zero-padded so short keywords become
    detectable, at a bandwidth cost. *)
val delimiter : ?short_units:bool -> string -> token list

(** [keyword_chunks kw] splits a rule keyword into [(chunk, relative
    offset)] pairs: stride-[token_len] chunks plus an end-aligned tail.
    A short keyword yields a single zero-padded chunk at offset 0. *)
val keyword_chunks : string -> (string * int) list

(** [pad_short s] zero-pads [s] to [token_len].  Raises [Invalid_argument]
    if [s] is longer than a token or empty. *)
val pad_short : string -> string

(** [window_count s] / [delimiter_count s]: number of tokens the respective
    tokenizer would emit, without materialising them — the bandwidth
    experiments (Figs. 5-6) sweep megabytes of page text. *)
val window_count : string -> int
val delimiter_count : ?short_units:bool -> string -> int
