type action = Alert | Drop | Pass | Log

type proto = Tcp | Udp | Icmp | Ip

type direction = To_dst | Bidirectional

type endpoint = { net : string; port : string }

type content = {
  pattern : string;
  nocase : bool;
  offset : int option;
  depth : int option;
  distance : int option;
  within : int option;
}

type t = {
  action : action;
  proto : proto;
  src : endpoint;
  dst : endpoint;
  direction : direction;
  msg : string option;
  contents : content list;
  pcre : string option;
  flow : string option;
  sid : int option;
  rev : int option;
}

let make_content ?(nocase = false) ?offset ?depth ?distance ?within pattern =
  if pattern = "" then invalid_arg "Rule.make_content: empty pattern";
  { pattern; nocase; offset; depth; distance; within }

let make ?(action = Alert) ?(proto = Tcp) ?msg ?pcre ?sid contents =
  { action; proto;
    src = { net = "$EXTERNAL_NET"; port = "any" };
    dst = { net = "$HOME_NET"; port = "any" };
    direction = To_dst;
    msg; contents; pcre; flow = None; sid; rev = None }

let keywords t = List.map (fun c -> c.pattern) t.contents

let flow_direction t =
  match t.flow with
  | None -> `Any
  | Some f ->
    let has needle =
      List.exists (fun part -> String.trim part = needle) (String.split_on_char ',' f)
    in
    if has "from_server" || has "to_client" then `From_server
    else if has "from_client" || has "to_server" then `From_client
    else `Any

let action_to_string = function
  | Alert -> "alert" | Drop -> "drop" | Pass -> "pass" | Log -> "log"

let proto_to_string = function
  | Tcp -> "tcp" | Udp -> "udp" | Icmp -> "icmp" | Ip -> "ip"

let is_printable c = c >= ' ' && c <= '~' && c <> '|' && c <> '"' && c <> ';' && c <> '\\'

(* Snort content escaping: printable chars verbatim, everything else as a
   |hex| run. *)
let escape_content s =
  let buf = Buffer.create (String.length s + 8) in
  let in_hex = ref false in
  String.iter
    (fun c ->
       if is_printable c then begin
         if !in_hex then begin Buffer.add_char buf '|'; in_hex := false end;
         Buffer.add_char buf c
       end
       else begin
         if not !in_hex then begin Buffer.add_char buf '|'; in_hex := true end
         else Buffer.add_char buf ' ';
         Buffer.add_string buf (Printf.sprintf "%02X" (Char.code c))
       end)
    s;
  if !in_hex then Buffer.add_char buf '|';
  Buffer.contents buf

let content_to_string c =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "content:\"%s\";" (escape_content c.pattern));
  if c.nocase then Buffer.add_string buf " nocase;";
  let opt name = function
    | None -> ()
    | Some v -> Buffer.add_string buf (Printf.sprintf " %s:%d;" name v)
  in
  opt "offset" c.offset;
  opt "depth" c.depth;
  opt "distance" c.distance;
  opt "within" c.within;
  Buffer.contents buf

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s %s %s %s %s %s %s ("
       (action_to_string t.action) (proto_to_string t.proto)
       t.src.net t.src.port
       (match t.direction with To_dst -> "->" | Bidirectional -> "<>")
       t.dst.net t.dst.port);
  (match t.msg with
   | Some m -> Buffer.add_string buf (Printf.sprintf "msg:\"%s\"; " m)
   | None -> ());
  (match t.flow with
   | Some f -> Buffer.add_string buf (Printf.sprintf "flow:%s; " f)
   | None -> ());
  List.iter (fun c -> Buffer.add_string buf (content_to_string c ^ " ")) t.contents;
  (match t.pcre with
   | Some p -> Buffer.add_string buf (Printf.sprintf "pcre:\"%s\"; " p)
   | None -> ());
  (match t.sid with
   | Some s -> Buffer.add_string buf (Printf.sprintf "sid:%d; " s)
   | None -> ());
  (match t.rev with
   | Some r -> Buffer.add_string buf (Printf.sprintf "rev:%d; " r)
   | None -> ());
  (* trim trailing space before the closing paren *)
  let s = Buffer.contents buf in
  let s = if String.length s > 0 && s.[String.length s - 1] = ' '
    then String.sub s 0 (String.length s - 1) else s in
  s ^ ")"

let pp fmt t = Format.pp_print_string fmt (to_string t)
