(** Rule classification into BlindBox protocols (paper §2.4 / Table 1) and a
    reference plaintext evaluator (the "Snort" semantics BlindBox is compared
    against). *)

type protocol_class =
  | Protocol_I    (** one exact-match keyword, no position constraints *)
  | Protocol_II   (** multiple keywords and/or offset information *)
  | Protocol_III  (** needs regular expressions (probable cause) *)

val classify : Rule.t -> protocol_class

(** [rank cls] — 1/2/3; the tier order ([Protocol_I] weakest). *)
val rank : protocol_class -> int

(** [of_rank n] — inverse of {!rank} ([None] outside 1..3). *)
val of_rank : int -> protocol_class option

(** Short stable name per tier: ["exact"], ["composite"], ["decrypt"]. *)
val class_name : protocol_class -> string

(** [supported_by cls rule]: can a middlebox running protocol [cls]
    implement [rule]?  (III supports everything, II supports I and II...) *)
val supported_by : protocol_class -> Rule.t -> bool

(** A ruleset routed into its three executable tiers, each rule tagged
    with its original list index (the engine's verdict [rule_idx]
    space): exact-match-only (Protocol I, stays on the encrypted token
    path), keyword-gated composite (Protocol II, the
    {!contents_satisfiable} solver over encrypted keyword events) and
    decrypt-required (Protocol III, regex over the probable-cause
    recovered stream). *)
type tiers = {
  exact : (int * Rule.t) list;
  composite : (int * Rule.t) list;
  decrypt : (int * Rule.t) list;
}

val partition : Rule.t list -> tiers

(** [fractions rules] is the Table 1 row for a ruleset: fraction of rules
    supported by Protocols I, II and III. *)
val fractions : Rule.t list -> float * float * float

(** [matches_plaintext rule payload] — reference evaluation on cleartext:
    contents in order with Snort-style [offset]/[depth] (absolute) and
    [distance]/[within] (relative to the previous match, with backtracking
    over candidate positions), then the [pcre] if present. *)
val matches_plaintext : Rule.t -> string -> bool

(** [keyword_match_positions ~nocase pattern payload] — all match start
    offsets, exposed for the accuracy experiments. *)
val keyword_match_positions : nocase:bool -> string -> string -> int list

(** [contents_satisfiable ~candidates contents] — the constraint engine
    behind {!matches_plaintext} with caller-supplied candidate match
    positions per content, so the middlebox can run identical semantics on
    encrypted-side keyword events. *)
val contents_satisfiable :
  candidates:(Rule.content -> int list) -> Rule.content list -> bool
