open Bbx_crypto

type t =
  | Watermarking
  | Parental
  | Snort_community
  | Emerging_threats
  | Mcafee_stonesoft
  | Lastline

let all =
  [ Watermarking; Parental; Snort_community; Emerging_threats; Mcafee_stonesoft; Lastline ]

let name = function
  | Watermarking -> "Document watermarking"
  | Parental -> "Parental filtering"
  | Snort_community -> "Snort Community (HTTP)"
  | Emerging_threats -> "Snort Emerging Threats (HTTP)"
  | Mcafee_stonesoft -> "McAfee Stonesoft IDS"
  | Lastline -> "Lastline"

let paper_fractions = function
  | Watermarking -> (1.0, 1.0, 1.0)
  | Parental -> (1.0, 1.0, 1.0)
  | Snort_community -> (0.03, 0.67, 1.0)
  | Emerging_threats -> (0.016, 0.42, 1.0)
  | Mcafee_stonesoft -> (0.05, 0.40, 1.0)
  | Lastline -> (0.0, 0.291, 1.0)

(* Class mix per dataset: fraction of rules in class I, class II-only; the
   rest carry a pcre (class III-only).  Chosen so the cumulative fractions
   measured by Classify.fractions land on the paper's Table 1 row. *)
let class_mix = function
  | Watermarking | Parental -> (1.0, 0.0)
  | Snort_community -> (0.03, 0.64)
  | Emerging_threats -> (0.016, 0.404)
  | Mcafee_stonesoft -> (0.05, 0.35)
  | Lastline -> (0.0, 0.291)

(* ---------- keyword vocabulary ---------- *)

let http_fragments =
  [| "cmd.exe"; "powershell"; "/etc/passwd"; "wp-admin"; "base64_decode";
     "union+select"; "<script>"; "document.cookie"; "eval("; "shell_exec";
     "/bin/sh"; "xp_cmdshell"; "../../"; "User-Agent|3a|"; "Content-Type|3a|";
     "X-Forwarded-For"; "login.php"; "?id="; "admin.cgi"; "setup.php";
     "download.exe"; "update.bin"; "botnet"; "beacon"; "exfil";
     "Server|3a| nginx/0."; "GET /"; "POST /upload"; "multipart/form-data";
     ".hta"; "ActiveXObject"; "CreateObject"; "fromCharCode"; "%u9090";
     "onmouseover"; "javascript|3a|"; "data|3a|text/html" |]

let pcre_templates =
  [| "/union.+select/i"; "/eval\\(.{0,30}base64/i"; "/\\.exe$/";
     "/cmd\\.exe/i"; "/[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}/";
     "/passwd|shadow/"; "/%u[0-9a-f]{4}/i"; "/(script|iframe|object)/i";
     "/user-agent[^\\n]{0,10}(bot|crawl)/i"; "/id=[0-9]+('|%27)/" |]

let alnum drbg n =
  String.init n (fun _ ->
      let i = Drbg.uniform drbg 36 in
      if i < 26 then Char.chr (Char.code 'a' + i) else Char.chr (Char.code '0' + i - 26))

(* Decode |hex| notation in vocabulary entries via the rule parser's content
   decoder (so generated keywords are raw bytes, same as parsed ones). *)
let decode = Parser.decode_content

let keyword drbg =
  (* A fragment with a random suffix: distinct across rules, realistic in
     shape, and at least 8 bytes so a single DPIEnc token can carry it. *)
  let frag = decode http_fragments.(Drbg.uniform drbg (Array.length http_fragments)) in
  let suffix_len = 2 + Drbg.uniform drbg 6 in
  let kw = frag ^ alnum drbg suffix_len in
  if String.length kw >= 8 then kw else kw ^ alnum drbg (8 - String.length kw)

let watermark drbg =
  (* CMU-style confidentiality watermark: long high-entropy tag. *)
  "WM-" ^ Util.to_hex (Drbg.bytes drbg (8 + Drbg.uniform drbg 8))

let domain drbg =
  Printf.sprintf "blocked-site-%s.example" (alnum drbg 6)

let class_i_rule ds drbg sid =
  let kw =
    match ds with
    | Watermarking -> watermark drbg
    | Parental -> domain drbg
    | _ -> keyword drbg
  in
  Rule.make ~msg:(Printf.sprintf "%s sig %d" (name ds) sid) ~sid [ Rule.make_content kw ]

let class_ii_rule ds drbg sid =
  (* Average three keywords per rule (paper §4/§7.2.2): 2-4 contents with
     positional modifiers on some. *)
  let n_contents = 2 + Drbg.uniform drbg 3 in
  let contents =
    List.init n_contents (fun i ->
        let kw = keyword drbg in
        if i = 0 && Drbg.uniform drbg 2 = 0 then
          Rule.make_content ~offset:(Drbg.uniform drbg 20)
            ~depth:(String.length kw + 2 + Drbg.uniform drbg 10) kw
        else if i > 0 && Drbg.uniform drbg 3 = 0 then
          Rule.make_content ~distance:(Drbg.uniform drbg 10)
            ~within:(String.length kw + 5 + Drbg.uniform drbg 40) kw
        else Rule.make_content kw)
  in
  Rule.make ~msg:(Printf.sprintf "%s sig %d" (name ds) sid) ~sid contents

let class_iii_rule ds drbg sid =
  let base = class_ii_rule ds drbg sid in
  let pcre = pcre_templates.(Drbg.uniform drbg (Array.length pcre_templates)) in
  { base with Rule.pcre = Some pcre }

let generate ?(seed = "blindbox-dataset") ds ~n =
  let drbg = Drbg.create (seed ^ "/" ^ name ds) in
  let f1, f2 = class_mix ds in
  List.init n (fun i ->
      let sid = 1_000_000 + i in
      (* Deterministic stratified assignment keeps measured fractions exact
         even for small n. *)
      let u = (float_of_int i +. 0.5) /. float_of_int n in
      if u < f1 then class_i_rule ds drbg sid
      else if u < f1 +. f2 then class_ii_rule ds drbg sid
      else class_iii_rule ds drbg sid)

let distinct_keywords rules =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun r -> List.iter (fun kw -> Hashtbl.replace tbl kw ()) (Rule.keywords r))
    rules;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
