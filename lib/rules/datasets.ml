open Bbx_crypto

type t =
  | Watermarking
  | Parental
  | Snort_community
  | Emerging_threats
  | Mcafee_stonesoft
  | Lastline

let all =
  [ Watermarking; Parental; Snort_community; Emerging_threats; Mcafee_stonesoft; Lastline ]

let name = function
  | Watermarking -> "Document watermarking"
  | Parental -> "Parental filtering"
  | Snort_community -> "Snort Community (HTTP)"
  | Emerging_threats -> "Snort Emerging Threats (HTTP)"
  | Mcafee_stonesoft -> "McAfee Stonesoft IDS"
  | Lastline -> "Lastline"

let paper_fractions = function
  | Watermarking -> (1.0, 1.0, 1.0)
  | Parental -> (1.0, 1.0, 1.0)
  | Snort_community -> (0.03, 0.67, 1.0)
  | Emerging_threats -> (0.016, 0.42, 1.0)
  | Mcafee_stonesoft -> (0.05, 0.40, 1.0)
  | Lastline -> (0.0, 0.291, 1.0)

(* Class mix per dataset: fraction of rules in class I, class II-only; the
   rest carry a pcre (class III-only).  Chosen so the cumulative fractions
   measured by Classify.fractions land on the paper's Table 1 row. *)
let class_mix = function
  | Watermarking | Parental -> (1.0, 0.0)
  | Snort_community -> (0.03, 0.64)
  | Emerging_threats -> (0.016, 0.404)
  | Mcafee_stonesoft -> (0.05, 0.35)
  | Lastline -> (0.0, 0.291)

(* ---------- keyword vocabulary ---------- *)

let http_fragments =
  [| "cmd.exe"; "powershell"; "/etc/passwd"; "wp-admin"; "base64_decode";
     "union+select"; "<script>"; "document.cookie"; "eval("; "shell_exec";
     "/bin/sh"; "xp_cmdshell"; "../../"; "User-Agent|3a|"; "Content-Type|3a|";
     "X-Forwarded-For"; "login.php"; "?id="; "admin.cgi"; "setup.php";
     "download.exe"; "update.bin"; "botnet"; "beacon"; "exfil";
     "Server|3a| nginx/0."; "GET /"; "POST /upload"; "multipart/form-data";
     ".hta"; "ActiveXObject"; "CreateObject"; "fromCharCode"; "%u9090";
     "onmouseover"; "javascript|3a|"; "data|3a|text/html" |]

let pcre_templates =
  [| "/union.+select/i"; "/eval\\(.{0,30}base64/i"; "/\\.exe$/";
     "/cmd\\.exe/i"; "/[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}/";
     "/passwd|shadow/"; "/%u[0-9a-f]{4}/i"; "/(script|iframe|object)/i";
     "/user-agent[^\\n]{0,10}(bot|crawl)/i"; "/id=[0-9]+('|%27)/" |]

let alnum drbg n =
  String.init n (fun _ ->
      let i = Drbg.uniform drbg 36 in
      if i < 26 then Char.chr (Char.code 'a' + i) else Char.chr (Char.code '0' + i - 26))

(* Decode |hex| notation in vocabulary entries via the rule parser's content
   decoder (so generated keywords are raw bytes, same as parsed ones). *)
let decode = Parser.decode_content

let keyword drbg =
  (* A fragment with a random suffix: distinct across rules, realistic in
     shape, and at least 8 bytes so a single DPIEnc token can carry it. *)
  let frag = decode http_fragments.(Drbg.uniform drbg (Array.length http_fragments)) in
  let suffix_len = 2 + Drbg.uniform drbg 6 in
  let kw = frag ^ alnum drbg suffix_len in
  if String.length kw >= 8 then kw else kw ^ alnum drbg (8 - String.length kw)

let watermark drbg =
  (* CMU-style confidentiality watermark: long high-entropy tag. *)
  "WM-" ^ Util.to_hex (Drbg.bytes drbg (8 + Drbg.uniform drbg 8))

let domain drbg =
  Printf.sprintf "blocked-site-%s.example" (alnum drbg 6)

let class_i_rule ds drbg sid =
  let kw =
    match ds with
    | Watermarking -> watermark drbg
    | Parental -> domain drbg
    | _ -> keyword drbg
  in
  Rule.make ~msg:(Printf.sprintf "%s sig %d" (name ds) sid) ~sid [ Rule.make_content kw ]

let class_ii_rule ds drbg sid =
  (* Average three keywords per rule (paper §4/§7.2.2): 2-4 contents with
     positional modifiers on some. *)
  let n_contents = 2 + Drbg.uniform drbg 3 in
  let contents =
    List.init n_contents (fun i ->
        let kw = keyword drbg in
        if i = 0 && Drbg.uniform drbg 2 = 0 then
          Rule.make_content ~offset:(Drbg.uniform drbg 20)
            ~depth:(String.length kw + 2 + Drbg.uniform drbg 10) kw
        else if i > 0 && Drbg.uniform drbg 3 = 0 then
          Rule.make_content ~distance:(Drbg.uniform drbg 10)
            ~within:(String.length kw + 5 + Drbg.uniform drbg 40) kw
        else Rule.make_content kw)
  in
  Rule.make ~msg:(Printf.sprintf "%s sig %d" (name ds) sid) ~sid contents

let class_iii_rule ds drbg sid =
  let base = class_ii_rule ds drbg sid in
  let pcre = pcre_templates.(Drbg.uniform drbg (Array.length pcre_templates)) in
  { base with Rule.pcre = Some pcre }

(* ---------- real-shape mixed ruleset (tiered-engine corpus) ----------

   Unlike the per-dataset generators above (whose class mix pins a Table 1
   row), [real_shape] produces one ruleset mixing all three protocol
   classes with nocase contents and pcre options, shaped like a small
   production IDS set.  Every pcre it emits has a known witness string
   ([pcre_witness]) so corpus generators can plant a match without
   solving the regex. *)

let real_shape_mix = (0.20, 0.50)  (* class I, class II-only; rest carry a pcre *)

let pcre_witnessed =
  [| ("/union.+select/i", "union all select");
     ("/cmd\\.exe/i", "cmd.exe");
     ("/[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}/", "10.22.33.44");
     ("/passwd|shadow/", "passwd");
     ("/%u[0-9a-f]{4}/i", "%u9090");
     ("/(script|iframe|object)/i", "iframe");
     ("/user-agent[^\\n]{0,10}(bot|crawl)/i", "user-agent: bot");
     ("/id=[0-9]+('|%27)/", "id=123'");
     ("/eval\\(.{0,30}base64/i", "eval(b64 base64") |]

let pcre_witness p =
  Array.fold_left
    (fun acc (tpl, w) -> if tpl = p then Some w else acc)
    None pcre_witnessed

(* A content with the same positional-modifier shape as [class_ii_rule]
   (first content may be offset/depth-anchored, later ones
   distance/within-chained) plus a nocase flag on roughly a quarter. *)
let real_shape_content drbg i =
  let kw = keyword drbg in
  let nocase = Drbg.uniform drbg 4 = 0 in
  if i = 0 && Drbg.uniform drbg 2 = 0 then
    Rule.make_content ~nocase ~offset:(Drbg.uniform drbg 20)
      ~depth:(String.length kw + 2 + Drbg.uniform drbg 10) kw
  else if i > 0 && Drbg.uniform drbg 3 = 0 then
    Rule.make_content ~nocase ~distance:(Drbg.uniform drbg 10)
      ~within:(String.length kw + 5 + Drbg.uniform drbg 40) kw
  else Rule.make_content ~nocase kw

let real_shape ?(seed = "blindbox-real-shape") ~n () =
  let drbg = Drbg.create seed in
  let f1, f2 = real_shape_mix in
  List.init n (fun i ->
      let sid = 2_000_000 + i in
      let u = (float_of_int i +. 0.5) /. float_of_int n in
      if u < f1 then
        Rule.make ~msg:(Printf.sprintf "real-shape exact sig %d" sid) ~sid
          [ Rule.make_content (keyword drbg) ]
      else if u < f1 +. f2 then begin
        let n_contents = 2 + Drbg.uniform drbg 3 in
        Rule.make ~msg:(Printf.sprintf "real-shape composite sig %d" sid) ~sid
          (List.init n_contents (real_shape_content drbg))
      end
      else begin
        let n_contents = 1 + Drbg.uniform drbg 3 in
        let pcre, _ = pcre_witnessed.(Drbg.uniform drbg (Array.length pcre_witnessed)) in
        let base =
          Rule.make ~msg:(Printf.sprintf "real-shape decrypt sig %d" sid) ~sid
            (List.init n_contents (real_shape_content drbg))
        in
        { base with Rule.pcre = Some pcre }
      end)

let generate ?(seed = "blindbox-dataset") ds ~n =
  let drbg = Drbg.create (seed ^ "/" ^ name ds) in
  let f1, f2 = class_mix ds in
  List.init n (fun i ->
      let sid = 1_000_000 + i in
      (* Deterministic stratified assignment keeps measured fractions exact
         even for small n. *)
      let u = (float_of_int i +. 0.5) /. float_of_int n in
      if u < f1 then class_i_rule ds drbg sid
      else if u < f1 +. f2 then class_ii_rule ds drbg sid
      else class_iii_rule ds drbg sid)

let distinct_keywords rules =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun r -> List.iter (fun kw -> Hashtbl.replace tbl kw ()) (Rule.keywords r))
    rules;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
