type protocol_class = Protocol_I | Protocol_II | Protocol_III

let classify (r : Rule.t) =
  if r.Rule.pcre <> None then Protocol_III
  else begin
    match r.Rule.contents with
    | [ c ] when c.Rule.offset = None && c.Rule.depth = None
              && c.Rule.distance = None && c.Rule.within = None -> Protocol_I
    | _ -> Protocol_II
  end

let rank = function Protocol_I -> 1 | Protocol_II -> 2 | Protocol_III -> 3

let of_rank = function
  | 1 -> Some Protocol_I
  | 2 -> Some Protocol_II
  | 3 -> Some Protocol_III
  | _ -> None

let class_name = function
  | Protocol_I -> "exact"
  | Protocol_II -> "composite"
  | Protocol_III -> "decrypt"

let supported_by cls r = rank (classify r) <= rank cls

type tiers = {
  exact : (int * Rule.t) list;
  composite : (int * Rule.t) list;
  decrypt : (int * Rule.t) list;
}

(* Route a parsed ruleset into its three executable tiers, keeping each
   rule's original index (the engine's verdict [rule_idx] space). *)
let partition rules =
  let exact = ref [] and composite = ref [] and decrypt = ref [] in
  List.iteri
    (fun i r ->
       let cell =
         match classify r with
         | Protocol_I -> exact
         | Protocol_II -> composite
         | Protocol_III -> decrypt
       in
       cell := (i, r) :: !cell)
    rules;
  { exact = List.rev !exact;
    composite = List.rev !composite;
    decrypt = List.rev !decrypt }

let fractions rules =
  let n = float_of_int (max 1 (List.length rules)) in
  let count cls = float_of_int (List.length (List.filter (supported_by cls) rules)) in
  (count Protocol_I /. n, count Protocol_II /. n, count Protocol_III /. n)

let lower = String.lowercase_ascii

let keyword_match_positions ~nocase pattern payload =
  let pattern = if nocase then lower pattern else pattern in
  let payload = if nocase then lower payload else payload in
  let np = String.length pattern and nh = String.length payload in
  let hits = ref [] in
  for q = nh - np downto 0 do
    if String.sub payload q np = pattern then hits := q :: !hits
  done;
  !hits

(* Sequential content evaluation with backtracking over candidate
   positions.  [offset]/[depth] are absolute (depth measured from offset per
   Snort); [distance]/[within] are relative to the end of the previous
   match: the match must start at >= prev_end + distance and end at
   <= prev_end + distance + within when within is given.

   The candidate positions per content are supplied by the caller, so the
   same constraint semantics serve both the plaintext reference (substring
   scan) and the middlebox's encrypted-side evaluation (DPIEnc keyword
   events). *)
let contents_satisfiable ~candidates contents =
  let rec go contents prev_end =
    match contents with
    | [] -> true
    | (c : Rule.content) :: rest ->
      let len = String.length c.Rule.pattern in
      let base = prev_end in
      let dist = Option.value c.Rule.distance ~default:0 in
      let ok q =
        (match c.Rule.offset with None -> true | Some o -> q >= o)
        && (match c.Rule.depth with
            | None -> true
            | Some d -> q + len <= Option.value c.Rule.offset ~default:0 + d)
        && (match (c.Rule.distance, c.Rule.within, base) with
            | None, None, _ -> true
            | _, _, None -> true (* relative modifier on the first content: no anchor *)
            | _, w, Some pe ->
              q >= pe + dist
              && (match w with None -> true | Some w -> q + len <= pe + dist + w))
      in
      List.exists (fun q -> ok q && go rest (Some (q + len))) (candidates c)
  in
  go contents None

let matches_plaintext (r : Rule.t) payload =
  contents_satisfiable r.Rule.contents
    ~candidates:(fun c -> keyword_match_positions ~nocase:c.Rule.nocase c.Rule.pattern payload)
  && (match r.Rule.pcre with
      | None -> true
      | Some p -> Bbx_regex.Regex.matches (Bbx_regex.Regex.parse_pcre p) payload)
