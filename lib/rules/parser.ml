exception Syntax_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

(* Decode a Snort content string: |3A 4F| hex runs and backslash escapes. *)
let decode_content s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      match s.[i] with
      | '|' ->
        (* hex run until the next '|' *)
        let close =
          match String.index_from_opt s (i + 1) '|' with
          | Some j -> j
          | None -> fail "unterminated |hex| escape in content"
        in
        let hex = String.sub s (i + 1) (close - i - 1) in
        let digits = String.concat "" (String.split_on_char ' ' hex) in
        if String.length digits mod 2 <> 0 then fail "odd hex run %S" hex;
        String.iteri
          (fun k _ ->
             if k mod 2 = 0 then begin
               let d c =
                 match c with
                 | '0' .. '9' -> Char.code c - Char.code '0'
                 | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                 | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                 | _ -> fail "bad hex digit %c" c
               in
               Buffer.add_char buf (Char.chr ((d digits.[k] lsl 4) lor d digits.[k + 1]))
             end)
          digits;
        go (close + 1)
      | '\\' when i + 1 < n ->
        Buffer.add_char buf s.[i + 1];
        go (i + 2)
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

(* Split the option body on ';' outside double quotes. *)
let split_options body =
  let opts = ref [] in
  let buf = Buffer.create 64 in
  let in_quotes = ref false in
  let flush () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then opts := s :: !opts
  in
  String.iteri
    (fun i c ->
       match c with
       | '"' when i = 0 || body.[i - 1] <> '\\' ->
         in_quotes := not !in_quotes;
         Buffer.add_char buf c
       | ';' when not !in_quotes -> flush ()
       | c -> Buffer.add_char buf c)
    body;
  flush ();
  List.rev !opts

let unquote s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else fail "expected quoted value, got %S" s

let parse_int_opt name v =
  match int_of_string_opt (String.trim v) with
  | Some i -> i
  | None -> fail "option %s expects an integer, got %S" name v

let parse_rule line =
  let line = String.trim line in
  let open_paren =
    match String.index_opt line '(' with
    | Some i -> i
    | None -> fail "missing '(' in rule"
  in
  if line.[String.length line - 1] <> ')' then fail "missing ')' at end of rule";
  let header = String.trim (String.sub line 0 open_paren) in
  let body = String.sub line (open_paren + 1) (String.length line - open_paren - 2) in
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' header)
  in
  let action, proto, src_net, src_port, dir, dst_net, dst_port =
    match fields with
    | [ a; p; sn; sp; d; dn; dp ] -> (a, p, sn, sp, d, dn, dp)
    | _ -> fail "header must have 7 fields, got %d" (List.length fields)
  in
  let action =
    match action with
    | "alert" -> Rule.Alert | "drop" -> Rule.Drop | "pass" -> Rule.Pass | "log" -> Rule.Log
    | a -> fail "unknown action %S" a
  in
  let proto =
    match proto with
    | "tcp" -> Rule.Tcp | "udp" -> Rule.Udp | "icmp" -> Rule.Icmp | "ip" -> Rule.Ip
    | p -> fail "unknown protocol %S" p
  in
  let direction =
    match dir with
    | "->" -> Rule.To_dst
    | "<>" -> Rule.Bidirectional
    | d -> fail "unknown direction %S" d
  in
  (* Options: per-content modifiers attach to the most recent content. *)
  let msg = ref None and pcre = ref None and flow = ref None in
  let sid = ref None and rev = ref None in
  let contents = ref [] in
  let with_last f =
    match !contents with
    | [] -> fail "content modifier before any content"
    | c :: rest -> contents := f c :: rest
  in
  List.iter
    (fun opt ->
       let name, value =
         match String.index_opt opt ':' with
         | Some i ->
           (String.trim (String.sub opt 0 i),
            Some (String.sub opt (i + 1) (String.length opt - i - 1)))
         | None -> (String.trim opt, None)
       in
       match (name, value) with
       | "msg", Some v -> msg := Some (unquote v)
       | "content", Some v -> contents := Rule.make_content (decode_content (unquote v)) :: !contents
       | "nocase", None -> with_last (fun c -> { c with Rule.nocase = true })
       | "offset", Some v -> with_last (fun c -> { c with Rule.offset = Some (parse_int_opt "offset" v) })
       | "depth", Some v -> with_last (fun c -> { c with Rule.depth = Some (parse_int_opt "depth" v) })
       | "distance", Some v -> with_last (fun c -> { c with Rule.distance = Some (parse_int_opt "distance" v) })
       | "within", Some v -> with_last (fun c -> { c with Rule.within = Some (parse_int_opt "within" v) })
       | "pcre", Some v -> pcre := Some (unquote v)
       | "flow", Some v -> flow := Some (String.trim v)
       | "sid", Some v -> sid := Some (parse_int_opt "sid" v)
       | "rev", Some v -> rev := Some (parse_int_opt "rev" v)
       | _ -> () (* classtype, reference, metadata, ... carried semantically nowhere *))
    (split_options body);
  { Rule.action; proto;
    src = { Rule.net = src_net; port = src_port };
    dst = { Rule.net = dst_net; port = dst_port };
    direction;
    msg = !msg;
    contents = List.rev !contents;
    pcre = !pcre;
    flow = !flow;
    sid = !sid;
    rev = !rev }

let parse_ruleset text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None else Some (parse_rule line))
