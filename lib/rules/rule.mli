(** The rule language: a dialect of Snort's (paper §4 shows rule 2003296
    from Emerging Threats in exactly this syntax).

    A rule has a header ([action proto src_net src_port -> dst_net
    dst_port]) and a body of options.  The options BlindBox cares about are
    [content] (a keyword, with [|hex|] escapes and positional modifiers
    [offset]/[depth]/[distance]/[within] and [nocase]) and [pcre]; the rest
    ([msg], [sid], [rev], [flow], ...) are carried through for fidelity. *)

type action = Alert | Drop | Pass | Log

type proto = Tcp | Udp | Icmp | Ip

type direction = To_dst | Bidirectional

(** Network/port specs are kept textual ("$HOME_NET", "any", "1025:5000"):
    BlindBox inspects payloads, not headers. *)
type endpoint = { net : string; port : string }

type content = {
  pattern : string;        (** decoded bytes, [|3a|] hex escapes resolved *)
  nocase : bool;
  offset : int option;     (** absolute: match starts at >= offset *)
  depth : int option;      (** absolute: match must end within [offset+depth] *)
  distance : int option;   (** relative to previous content match *)
  within : int option;     (** relative window for this content *)
}

type t = {
  action : action;
  proto : proto;
  src : endpoint;
  dst : endpoint;
  direction : direction;
  msg : string option;
  contents : content list;
  pcre : string option;    (** raw "/pattern/flags" *)
  flow : string option;
  sid : int option;
  rev : int option;
}

val make_content :
  ?nocase:bool -> ?offset:int -> ?depth:int -> ?distance:int -> ?within:int ->
  string -> content

(** [make keyword] builds a minimal alert-tcp rule around keywords. *)
val make :
  ?action:action -> ?proto:proto -> ?msg:string -> ?pcre:string -> ?sid:int ->
  content list -> t

(** [keywords t] returns the content patterns in order. *)
val keywords : t -> string list

(** [flow_direction t] interprets the [flow] option: which traffic
    direction the rule applies to ([`Any] when unspecified). *)
val flow_direction : t -> [ `From_client | `From_server | `Any ]

(** [to_string t] renders in Snort syntax (parseable back by {!Parser}). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
