(** Ruleset generators reproducing the statistics of the six datasets in the
    paper's Table 1.

    The real datasets (Snort Community / Emerging Threats 2015 snapshots,
    the University of Toulouse blacklists, the CMU watermarking report, and
    the proprietary McAfee Stonesoft and Lastline rulesets) are not
    redistributable, so each generator produces rules with the published
    class mix — the fraction implementable with Protocols I/II/III — and
    the published shape (about three keywords per multi-keyword rule).
    Table 1 is then {e measured} by running {!Classify.fractions} over the
    generated rules, not asserted. *)

type t =
  | Watermarking      (** document watermarks: one long keyword per rule *)
  | Parental          (** URL blacklist: one keyword per rule *)
  | Snort_community   (** HTTP subset: 3% / 67% / 100% *)
  | Emerging_threats  (** HTTP subset: 1.6% / 42% / 100% *)
  | Mcafee_stonesoft  (** industrial: 5% / 40% / 100% *)
  | Lastline          (** industrial: 0% / 29.1% / 100% *)

val all : t list

val name : t -> string

(** The paper's Table 1 row: expected fractions for Protocols I, II, III. *)
val paper_fractions : t -> float * float * float

(** [generate ?seed t ~n] produces [n] rules with the dataset's class mix.
    Deterministic in [seed]. *)
val generate : ?seed:string -> t -> n:int -> Rule.t list

(** [distinct_keywords rules] — all distinct content patterns (the paper's
    "a typical 3000 rule IDS rule set contains between 9-10k keywords"). *)
val distinct_keywords : Rule.t list -> string list

(** [real_shape ?seed ~n ()] — one mixed ruleset shaped like a small
    production IDS set rather than a single Table 1 row: 20% Protocol I
    (single unconstrained content), 50% Protocol II (2-4 contents with
    offset/depth/distance/within and nocase sprinkled in), 30% Protocol
    III (contents plus a pcre).  Every pcre emitted has a known witness
    (see {!pcre_witness}), so corpus generators can plant a regex match
    without solving the pattern.  Deterministic in [seed]; does not
    perturb {!generate}'s DRBG streams. *)
val real_shape : ?seed:string -> n:int -> unit -> Rule.t list

(** The Protocol I / Protocol II-only fractions {!real_shape} is built
    to, in {!Classify.fractions} terms (the rest carry a pcre). *)
val real_shape_mix : float * float

(** [pcre_witness p] — a string matching pcre template [p] anywhere
    mid-stream, for the templates {!real_shape} draws from ([None] for
    unknown templates). *)
val pcre_witness : string -> string option
