(** Parser for the Snort-dialect rule syntax produced by {!Rule.to_string}
    and used by real rulesets (content with [|hex|] escapes, per-content
    modifiers, pcre, etc.). *)

exception Syntax_error of string

(** [parse_rule line] parses one rule.  Raises {!Syntax_error}. *)
val parse_rule : string -> Rule.t

(** [decode_content s] resolves [|hex|] runs and backslash escapes in a
    content string ("Server|3a| nginx" -> "Server: nginx"). *)
val decode_content : string -> string

(** [parse_ruleset text] parses one rule per non-empty, non-comment ([#])
    line. *)
val parse_ruleset : string -> Rule.t list
