open Bbx_circuit
open Bbx_crypto

type label = string

type scheme = Classic | Half_gates

type garbled = {
  scheme : scheme;
  tables : string array; (* per AND gate: 4 rows (Classic) or 2 (Half_gates) *)
  decode : bool array;   (* colour bit of k^0 for each output wire *)
}

type secrets = {
  input_zero : string array;
  r : string;
}

let zero16 = String.make 16 '\000'

let xor16 a b =
  String.init 16 (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

(* Colour bit: LSB of the last byte. *)
let color l = Char.code l.[15] land 1 = 1

let with_color l bit =
  let v = Char.code l.[15] in
  let v = if bit then v lor 1 else v land 0xfe in
  String.init 16 (fun i -> if i = 15 then Char.chr v else l.[i])

(* Doubling in GF(2^128) with the x^128 + x^7 + x^2 + x + 1 modulus,
   big-endian bit order. *)
let double l =
  let carry = Char.code l.[0] land 0x80 <> 0 in
  String.init 16 (fun i ->
      let v = (Char.code l.[i] lsl 1) land 0xff in
      let v = if i < 15 && Char.code l.[i + 1] land 0x80 <> 0 then v lor 1 else v in
      let v = if i = 15 && carry then v lxor 0x87 else v in
      Char.chr v)

(* JustGarble-style fixed-key hashes.  Two-input (classic rows):
   H(a,b,t) = AES(x) XOR x with x = 2a XOR 4b XOR t; single-input
   (half-gates): H(a,t) = AES(x) XOR x with x = 2a XOR t. *)
let fixed_key = Aes.expand_key (Sha256.digest "blindbox-garble-fixed-key" |> fun d -> String.sub d 0 16)

let tweak gid = String.make 8 '\000' ^ Util.u64_be gid

let hash2 a b gid =
  let x = xor16 (double a) (xor16 (double (double b)) (tweak gid)) in
  xor16 (Aes.encrypt_block fixed_key x) x

let hash1 a gid =
  let x = xor16 (double a) (tweak gid) in
  xor16 (Aes.encrypt_block fixed_key x) x

let rows_per_and = function Classic -> 4 | Half_gates -> 2

let garble ?(scheme = Half_gates) drbg (c : Circuit.t) =
  (* The global offset must have colour 1 so that paired labels always have
     opposite colours. *)
  let r = with_color (Drbg.bytes drbg 16) true in
  let zero = Array.make c.Circuit.n_wires "" in
  for i = 0 to c.Circuit.n_inputs - 1 do
    zero.(i) <- Drbg.bytes drbg 16
  done;
  let tables = ref [] in
  let n_and = ref 0 in
  let if_r cond = if cond then r else zero16 in
  Array.iteri
    (fun gid { Circuit.op; a; b; out } ->
       match op with
       | Circuit.Xor -> zero.(out) <- xor16 zero.(a) zero.(b)
       | Circuit.Not -> zero.(out) <- xor16 zero.(a) r
       | Circuit.And ->
         incr n_and;
         (match scheme with
          | Classic ->
            let k0 = Drbg.bytes drbg 16 in
            zero.(out) <- k0;
            let rows = Array.make 4 "" in
            for va = 0 to 1 do
              for vb = 0 to 1 do
                let la = if va = 1 then xor16 zero.(a) r else zero.(a) in
                let lb = if vb = 1 then xor16 zero.(b) r else zero.(b) in
                let out_label = if va land vb = 1 then xor16 k0 r else k0 in
                let idx = (if color la then 2 else 0) + if color lb then 1 else 0 in
                rows.(idx) <- xor16 (hash2 la lb gid) out_label
              done
            done;
            tables := rows :: !tables
          | Half_gates ->
            (* Zahur-Rosulek-Evans: a garbler half-gate keyed by wire a and
               an evaluator half-gate keyed by wire b; two ciphertexts. *)
            let a0 = zero.(a) and b0 = zero.(b) in
            let pa = color a0 and pb = color b0 in
            let h_a0 = hash1 a0 (2 * gid) and h_a1 = hash1 (xor16 a0 r) (2 * gid) in
            let h_b0 = hash1 b0 ((2 * gid) + 1) and h_b1 = hash1 (xor16 b0 r) ((2 * gid) + 1) in
            let t_g = xor16 (xor16 h_a0 h_a1) (if_r pb) in
            let w_g0 = if pa then xor16 h_a0 t_g else h_a0 in
            let t_e = xor16 (xor16 h_b0 h_b1) a0 in
            let w_e0 = if pb then xor16 h_b0 (xor16 t_e a0) else h_b0 in
            zero.(out) <- xor16 w_g0 w_e0;
            tables := [| t_g; t_e |] :: !tables))
    c.Circuit.gates;
  let width = rows_per_and scheme in
  let tables =
    let flat = Array.make (width * !n_and) "" in
    List.iteri
      (fun i rows ->
         let base = width * (!n_and - 1 - i) in
         Array.blit rows 0 flat base width)
      !tables;
    flat
  in
  let decode = Array.map (fun w -> color zero.(w)) c.Circuit.outputs in
  let input_zero = Array.sub zero 0 c.Circuit.n_inputs in
  ({ scheme; tables; decode }, { input_zero; r })

let encode_input s ~wire bit =
  if bit then xor16 s.input_zero.(wire) s.r else s.input_zero.(wire)

let encode_inputs s bits = Array.mapi (fun wire bit -> encode_input s ~wire bit) bits

let input_label_pair s ~wire = (s.input_zero.(wire), xor16 s.input_zero.(wire) s.r)

let eval (c : Circuit.t) g labels =
  if Array.length labels <> c.Circuit.n_inputs then
    invalid_arg "Garble.eval: wrong number of input labels";
  let values = Array.make c.Circuit.n_wires "" in
  Array.blit labels 0 values 0 c.Circuit.n_inputs;
  let and_idx = ref 0 in
  let width = rows_per_and g.scheme in
  Array.iteri
    (fun gid { Circuit.op; a; b; out } ->
       match op with
       | Circuit.Xor -> values.(out) <- xor16 values.(a) values.(b)
       | Circuit.Not -> values.(out) <- values.(a)
       | Circuit.And ->
         let la = values.(a) and lb = values.(b) in
         let base = width * !and_idx in
         incr and_idx;
         (match g.scheme with
          | Classic ->
            let idx = (if color la then 2 else 0) + if color lb then 1 else 0 in
            values.(out) <- xor16 (hash2 la lb gid) g.tables.(base + idx)
          | Half_gates ->
            let t_g = g.tables.(base) and t_e = g.tables.(base + 1) in
            let w_g = if color la then xor16 (hash1 la (2 * gid)) t_g else hash1 la (2 * gid) in
            let w_e =
              if color lb then xor16 (hash1 lb ((2 * gid) + 1)) (xor16 t_e la)
              else hash1 lb ((2 * gid) + 1)
            in
            values.(out) <- xor16 w_g w_e))
    c.Circuit.gates;
  Array.mapi (fun i w -> color values.(w) <> g.decode.(i)) c.Circuit.outputs

let size_bytes g = (16 * Array.length g.tables) + ((Array.length g.decode + 7) / 8)

let equal a b = a.scheme = b.scheme && a.tables = b.tables && a.decode = b.decode

let scheme_byte = function Classic -> '\000' | Half_gates -> '\001'

let to_string g =
  let buf = Buffer.create (size_bytes g + 16) in
  Buffer.add_char buf (scheme_byte g.scheme);
  Buffer.add_string buf (Util.u32_be (Array.length g.tables));
  Buffer.add_string buf (Util.u32_be (Array.length g.decode));
  Array.iter (Buffer.add_string buf) g.tables;
  Array.iter (fun b -> Buffer.add_char buf (if b then '\001' else '\000')) g.decode;
  Buffer.contents buf

let of_string s =
  if String.length s < 9 then invalid_arg "Garble.of_string: truncated";
  let scheme =
    match s.[0] with
    | '\000' -> Classic
    | '\001' -> Half_gates
    | _ -> invalid_arg "Garble.of_string: bad scheme byte"
  in
  let n_tables = Util.read_u32_be s 1 in
  let n_decode = Util.read_u32_be s 5 in
  if String.length s <> 9 + (16 * n_tables) + n_decode then
    invalid_arg "Garble.of_string: length mismatch";
  let tables = Array.init n_tables (fun i -> String.sub s (9 + (16 * i)) 16) in
  let decode = Array.init n_decode (fun i -> s.[9 + (16 * n_tables) + i] = '\001') in
  { scheme; tables; decode }
