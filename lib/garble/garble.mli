(** Yao garbled circuits with free-XOR and point-and-permute.

    This implements the "obfuscation" of the paper's §3.3: the endpoints
    garble the AES circuit with the session key [k] hard-coded (as garbler
    input labels), ship the garbled circuit to the middlebox, which evaluates
    it on rule keywords whose input labels it fetched by oblivious transfer.

    Technique summary:
    - every wire [w] has two 128-bit labels [k_w^0] and [k_w^1 = k_w^0 XOR R]
      for a circuit-global secret offset [R] whose colour bit is 1 (free-XOR);
    - XOR gates are free ([k_out^0 = k_a^0 XOR k_b^0]), NOT gates are free
      ([k_out^0 = k_a^0 XOR R], evaluation is a pass-through);
    - AND gates cost four ciphertext rows ordered by the labels' colour
      bits ([Classic]) or two half-gate ciphertexts ([Half_gates]);
    - the row cipher is the JustGarble-style fixed-key AES hash
      [H(x) = AES(x) XOR x] over tweaked, doubled labels (doubling in
      GF(2^128)).

    Garbling is deterministic in the supplied {!Bbx_crypto.Drbg}: both
    endpoints seed it from [k_rand] and produce byte-identical circuits,
    which is exactly the equality check the middlebox performs (§3.3). *)

type label = string (* 16 bytes *)

(** AND-gate garbling scheme: [Classic] is the textbook four-row
    point-and-permute table; [Half_gates] (Zahur-Rosulek-Evans, the
    default) costs two ciphertexts and two evaluator hashes per AND. *)
type scheme = Classic | Half_gates

(** What is shipped to the evaluator (middlebox). *)
type garbled

(** What the garbler (endpoint) keeps: zero-labels of the input wires and
    the global offset. *)
type secrets

(** [garble ?scheme drbg circuit] garbles; all randomness comes from
    [drbg]. *)
val garble : ?scheme:scheme -> Bbx_crypto.Drbg.t -> Bbx_circuit.Circuit.t -> garbled * secrets

(** [encode_input secrets ~wire bit] is the label the evaluator must use for
    input [wire] carrying [bit]. *)
val encode_input : secrets -> wire:int -> bool -> label

(** [encode_inputs secrets bits] encodes a full input assignment. *)
val encode_inputs : secrets -> bool array -> label array

(** [input_label_pair secrets ~wire] is [(label for 0, label for 1)] — the
    two OT sender messages for an evaluator-chosen input wire. *)
val input_label_pair : secrets -> wire:int -> label * label

(** [eval circuit garbled labels] evaluates with one label per input wire
    and decodes the outputs.  Raises [Invalid_argument] on a label count
    mismatch. *)
val eval : Bbx_circuit.Circuit.t -> garbled -> label array -> bool array

(** Wire size of the garbled circuit in bytes (tables + decode bits), the
    quantity the paper reports as 599 KB per circuit. *)
val size_bytes : garbled -> int

(** Byte-exact equality — the middlebox's check that sender and receiver
    garbled honestly. *)
val equal : garbled -> garbled -> bool

(** Serialisation (for shipping between endpoints and middlebox). *)
val to_string : garbled -> string
val of_string : string -> garbled
