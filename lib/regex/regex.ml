exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ---------- AST ---------- *)

type charset = bool array (* 256 entries *)

type node =
  | Empty
  | Lit of charset
  | Concat of node * node
  | Alt of node * node
  | Star of node
  | Plus of node
  | Opt of node
  | Repeat of node * int * int option
  | Bol
  | Eol

let max_repeat = 256

(* ---------- charset helpers ---------- *)

let cs_none () = Array.make 256 false

let cs_of_char c =
  let cs = cs_none () in
  cs.(Char.code c) <- true;
  cs

let cs_union a b = Array.init 256 (fun i -> a.(i) || b.(i))

let cs_negate a = Array.map not a

let cs_range lo hi =
  if lo > hi then fail "bad class range %c-%c" (Char.chr lo) (Char.chr hi);
  Array.init 256 (fun i -> i >= lo && i <= hi)

let cs_digit = cs_range (Char.code '0') (Char.code '9')
let cs_word =
  cs_union cs_digit
    (cs_union (cs_range (Char.code 'a') (Char.code 'z'))
       (cs_union (cs_range (Char.code 'A') (Char.code 'Z')) (cs_of_char '_')))
let cs_space =
  List.fold_left (fun acc c -> cs_union acc (cs_of_char c)) (cs_none ())
    [ ' '; '\t'; '\n'; '\r'; '\012'; '\011' ]

let cs_caseless cs =
  Array.init 256 (fun i ->
      cs.(i)
      || (i >= Char.code 'a' && i <= Char.code 'z' && cs.(i - 32))
      || (i >= Char.code 'A' && i <= Char.code 'Z' && cs.(i + 32)))

(* ---------- parser ---------- *)

type parser_state = { pat : string; mutable pos : int; caseless : bool; dotall : bool }

let peek p = if p.pos < String.length p.pat then Some p.pat.[p.pos] else None
let advance p = p.pos <- p.pos + 1
let eat p c =
  match peek p with
  | Some x when x = c -> advance p
  | _ -> fail "expected '%c' at %d" c p.pos

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail "bad hex digit '%c'" c

(* Parse one escape sequence (after the backslash); returns a charset. *)
let parse_escape p =
  match peek p with
  | None -> fail "trailing backslash"
  | Some c ->
    advance p;
    (match c with
     | 'd' -> cs_digit
     | 'D' -> cs_negate cs_digit
     | 'w' -> cs_word
     | 'W' -> cs_negate cs_word
     | 's' -> cs_space
     | 'S' -> cs_negate cs_space
     | 'n' -> cs_of_char '\n'
     | 'r' -> cs_of_char '\r'
     | 't' -> cs_of_char '\t'
     | '0' -> cs_of_char '\000'
     | 'x' ->
       (match (peek p, (if p.pos + 1 < String.length p.pat then Some p.pat.[p.pos + 1] else None)) with
        | Some h, Some l ->
          advance p; advance p;
          cs_of_char (Char.chr ((hex_digit h lsl 4) lor hex_digit l))
        | _ -> fail "truncated \\x escape")
     | c -> cs_of_char c)

let parse_class p =
  eat p '[';
  let negated = peek p = Some '^' in
  if negated then advance p;
  let acc = ref (cs_none ()) in
  let rec item first =
    match peek p with
    | None -> fail "unterminated character class"
    | Some ']' when not first -> advance p
    | Some c ->
      let lo_set =
        if c = '\\' then begin advance p; parse_escape p end
        else begin advance p; cs_of_char c end
      in
      (* range only when the left side is a single character *)
      let is_single = Array.fold_left (fun n b -> if b then n + 1 else n) 0 lo_set = 1 in
      (match (peek p, is_single) with
       | Some '-', true when p.pos + 1 < String.length p.pat && p.pat.[p.pos + 1] <> ']' ->
         advance p;
         let hi =
           match peek p with
           | Some '\\' ->
             advance p;
             let hs = parse_escape p in
             let idx = ref (-1) in
             Array.iteri (fun i b -> if b && !idx < 0 then idx := i) hs;
             !idx
           | Some c -> advance p; Char.code c
           | None -> fail "unterminated character class"
         in
         let lo = ref (-1) in
         Array.iteri (fun i b -> if b && !lo < 0 then lo := i) lo_set;
         acc := cs_union !acc (cs_range !lo hi)
       | _ -> acc := cs_union !acc lo_set);
      item false
  in
  item true;
  let cs = if negated then cs_negate !acc else !acc in
  if p.caseless then cs_caseless cs else cs

let parse_int p =
  let start = p.pos in
  while (match peek p with Some ('0' .. '9') -> true | _ -> false) do advance p done;
  if p.pos = start then fail "expected number at %d" start;
  int_of_string (String.sub p.pat start (p.pos - start))

let rec parse_alt p =
  let left = parse_concat p in
  match peek p with
  | Some '|' ->
    advance p;
    Alt (left, parse_alt p)
  | _ -> left

and parse_concat p =
  let rec go acc =
    match peek p with
    | None | Some '|' | Some ')' -> acc
    | _ ->
      let atom = parse_repeat p in
      go (if acc = Empty then atom else Concat (acc, atom))
  in
  go Empty

and parse_repeat p =
  let atom = parse_atom p in
  let rec postfix node =
    match peek p with
    | Some '*' -> advance p; postfix (Star node)
    | Some '+' -> advance p; postfix (Plus node)
    | Some '?' -> advance p; postfix (Opt node)
    | Some '{' ->
      advance p;
      let min = parse_int p in
      let max =
        match peek p with
        | Some ',' ->
          advance p;
          (match peek p with
           | Some '}' -> None
           | _ -> Some (parse_int p))
        | _ -> Some min
      in
      eat p '}';
      if min > max_repeat || (match max with Some m -> m > max_repeat || m < min | None -> false)
      then fail "repeat bound too large or inverted";
      postfix (Repeat (node, min, max))
    | _ -> node
  in
  postfix atom

and parse_atom p =
  match peek p with
  | None -> fail "expected atom at end of pattern"
  | Some '(' ->
    advance p;
    (* Non-capturing group prefix (?:...) is accepted and ignored. *)
    if peek p = Some '?' then begin
      advance p;
      match peek p with
      | Some ':' -> advance p
      | _ -> fail "unsupported group modifier"
    end;
    let inner = parse_alt p in
    eat p ')';
    inner
  | Some '[' -> Lit (parse_class p)
  | Some '.' ->
    advance p;
    let cs = if p.dotall then Array.make 256 true else cs_negate (cs_of_char '\n') in
    Lit cs
  | Some '^' -> advance p; Bol
  | Some '$' -> advance p; Eol
  | Some '\\' ->
    advance p;
    let cs = parse_escape p in
    Lit (if p.caseless then cs_caseless cs else cs)
  | Some ('*' | '+' | '?') -> fail "quantifier with nothing to repeat at %d" p.pos
  | Some ')' -> fail "unbalanced ')' at %d" p.pos
  | Some c ->
    advance p;
    let cs = cs_of_char c in
    Lit (if p.caseless then cs_caseless cs else cs)

(* ---------- compilation to a Pike VM program ---------- *)

type inst =
  | IChar of charset
  | IMatch
  | IJmp of int
  | ISplit of int * int
  | IBol
  | IEol

type t = { prog : inst array; source : string }

let compile_node node =
  let insts = ref [] in
  let n = ref 0 in
  let emit i =
    insts := i :: !insts;
    incr n;
    !n - 1
  in
  let patch pc i =
    insts := List.mapi (fun j x -> if j = !n - 1 - pc then i else x) !insts
  in
  let rec go = function
    | Empty -> ()
    | Lit cs -> ignore (emit (IChar cs))
    | Bol -> ignore (emit IBol)
    | Eol -> ignore (emit IEol)
    | Concat (a, b) -> go a; go b
    | Alt (a, b) ->
      let split = emit (ISplit (0, 0)) in
      go a;
      let jmp = emit (IJmp 0) in
      let b_start = !n in
      go b;
      patch split (ISplit (split + 1, b_start));
      patch jmp (IJmp !n)
    | Star node ->
      let split = emit (ISplit (0, 0)) in
      go node;
      ignore (emit (IJmp split));
      patch split (ISplit (split + 1, !n))
    | Plus node ->
      let start = !n in
      go node;
      let split = emit (ISplit (0, 0)) in
      patch split (ISplit (start, split + 1))
    | Opt node ->
      let split = emit (ISplit (0, 0)) in
      go node;
      patch split (ISplit (split + 1, !n))
    | Repeat (node, min, max) ->
      for _ = 1 to min do go node done;
      (match max with
       | None -> go (Star node)
       | Some m -> for _ = 1 to m - min do go (Opt node) done)
  in
  go node;
  ignore (emit IMatch);
  Array.of_list (List.rev !insts)

let compile ?(caseless = false) ?(dotall = false) pattern =
  let p = { pat = pattern; pos = 0; caseless; dotall } in
  let ast = parse_alt p in
  if p.pos <> String.length pattern then fail "unexpected '%c' at %d" pattern.[p.pos] p.pos;
  { prog = compile_node ast; source = pattern }

let parse_pcre s =
  let len = String.length s in
  if len < 2 || s.[0] <> '/' then fail "pcre must look like /pattern/flags";
  match String.rindex_opt s '/' with
  | None | Some 0 -> fail "pcre missing closing '/'"
  | Some close ->
    let pattern = String.sub s 1 (close - 1) in
    let flags = String.sub s (close + 1) (len - close - 1) in
    let caseless = ref false and dotall = ref false in
    String.iter
      (function
        | 'i' -> caseless := true
        | 's' -> dotall := true
        | 'm' | 'x' | 'U' | 'R' | 'B' | 'P' | 'H' | 'D' | 'M' | 'C' | 'K' | 'S' | 'Y' ->
          () (* snort content modifiers / multiline: no-op for our matcher *)
        | c -> fail "unsupported pcre flag '%c'" c)
      flags;
    compile ~caseless:!caseless ~dotall:!dotall pattern

let pattern t = t.source

(* ---------- Pike VM ---------- *)

(* Epsilon-closure insertion of pc into the thread list. *)
let rec add_thread prog list on_list ~pos ~len pc =
  if not on_list.(pc) then begin
    on_list.(pc) <- true;
    match prog.(pc) with
    | IJmp target -> add_thread prog list on_list ~pos ~len target
    | ISplit (a, b) ->
      add_thread prog list on_list ~pos ~len a;
      add_thread prog list on_list ~pos ~len b
    | IBol -> if pos = 0 then add_thread prog list on_list ~pos ~len (pc + 1)
    | IEol -> if pos = len then add_thread prog list on_list ~pos ~len (pc + 1)
    | IChar _ | IMatch -> list := pc :: !list
  end

(* Unanchored multi-start simulation: O(|prog| * |input|). *)
let matches t s =
  let prog = t.prog in
  let len = String.length s in
  let nprog = Array.length prog in
  let current = ref [] in
  let exception Found in
  try
    for pos = 0 to len do
      let on_list = Array.make nprog false in
      let next = ref [] in
      (* new attempt starting at every position (leftmost-anywhere match) *)
      add_thread prog next on_list ~pos ~len 0;
      List.iter (fun pc -> add_thread prog next on_list ~pos ~len pc) !current;
      if List.exists (fun pc -> prog.(pc) = IMatch) !next then raise Found;
      if pos < len then begin
        let c = Char.code s.[pos] in
        let stepped = ref [] in
        let on2 = Array.make nprog false in
        List.iter
          (fun pc ->
             match prog.(pc) with
             | IChar cs when cs.(c) ->
               add_thread prog stepped on2 ~pos:(pos + 1) ~len (pc + 1)
             | _ -> ())
          !next;
        current := !stepped
      end
    done;
    false
  with Found -> true

(* Anchored-at-[start] run returning the longest match end. *)
let run_at t s start =
  let prog = t.prog in
  let len = String.length s in
  let nprog = Array.length prog in
  let best = ref None in
  let current = ref [] in
  let on_list = Array.make nprog false in
  add_thread prog current on_list ~pos:start ~len 0;
  let pos = ref start in
  let threads = ref !current in
  let check l p = if List.exists (fun pc -> prog.(pc) = IMatch) l then best := Some p in
  check !threads !pos;
  while !threads <> [] && !pos < len do
    let c = Char.code s.[!pos] in
    let next = ref [] in
    let on2 = Array.make nprog false in
    List.iter
      (fun pc ->
         match prog.(pc) with
         | IChar cs when cs.(c) -> add_thread prog next on2 ~pos:(!pos + 1) ~len (pc + 1)
         | _ -> ())
      !threads;
    incr pos;
    threads := !next;
    check !threads !pos
  done;
  !best

let search t s =
  let len = String.length s in
  let rec go start =
    if start > len then None
    else begin
      match run_at t s start with
      | Some e -> Some (start, e)
      | None -> go (start + 1)
    end
  in
  go 0
