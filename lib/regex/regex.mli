(** Regular-expression engine (PCRE subset) for Protocol III.

    Once probable cause lets the middlebox decrypt a flow (paper §5), the
    decrypted payload is run through the full rule including its [pcre]
    field.  Snort's pcre options use a modest subset of PCRE which this
    engine covers:

    - literals, [.], escapes [\d \D \w \W \s \S \n \r \t \xHH] and escaped
      metacharacters;
    - character classes [[a-z0-9_]] and negated classes [[^...]];
    - grouping [(...)], alternation [|];
    - quantifiers [* + ? {m} {m,} {m,n}] (greedy; matching is by the Pike VM
      so greediness only affects which match is reported, not whether one is
      found);
    - anchors [^] and [$];
    - flags [i] (caseless) and [s] (dot matches newline) via {!parse_pcre}.

    Matching is worst-case linear in [pattern size * input size] (Thompson
    NFA simulated by a Pike VM) — no catastrophic backtracking, which
    matters for an IDS exposed to adversarial inputs. *)

type t

exception Parse_error of string

(** [compile ?caseless ?dotall pattern] compiles a pattern.
    Raises {!Parse_error} on malformed patterns. *)
val compile : ?caseless:bool -> ?dotall:bool -> string -> t

(** [parse_pcre s] parses Snort's ["/pattern/flags"] syntax. *)
val parse_pcre : string -> t

(** [matches t s] — does [t] match anywhere in [s]?  (Unanchored unless the
    pattern is anchored.) *)
val matches : t -> string -> bool

(** [search t s] returns the leftmost match as [(start, end_)] byte offsets
    ([end_] exclusive), if any. *)
val search : t -> string -> (int * int) option

(** Source pattern (for pretty-printing rules). *)
val pattern : t -> string
