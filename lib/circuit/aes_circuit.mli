(** AES-128 as a boolean circuit.

    This is the function garbled during obfuscated rule encryption (paper
    §3.3): the endpoints garble [AES_k(.)] with the session key [k] as the
    garbler's input and the middlebox's rule keyword as the evaluator's
    input.

    The S-box is computed algebraically — GF(2^8) inversion as x^254 via an
    addition chain of free squarings and four Karatsuba carry-less
    multiplications (27 AND gates each) — so the circuit costs 108 ANDs per
    S-box and 21 600 ANDs in total; everything else (ShiftRows, MixColumns,
    AddRoundKey, the affine map) is XOR/NOT and therefore free to garble. *)

(** [build ()] constructs the AES-128 circuit.  Inputs: wires [0..127] are
    the key bits, wires [128..255] the plaintext bits, both in
    {!Circuit.bits_of_string} order.  Outputs: the 128 ciphertext bits. *)
val build : unit -> Circuit.t

(** [build_tower ()] — the same function with the S-box computed in the
    tower field GF((2^4)^2): inversion costs five GF(2^4) multiplications
    (9 ANDs each by Karatsuba) = 45 ANDs per S-box and 9 000 ANDs total,
    the circuit family behind the paper's 599 KB garbled circuits.  The
    field isomorphism GF(2^8) -> GF(2^4)[y]/(y^2+y+lambda) is derived at
    build time (root search + Gaussian elimination), not hard-coded. *)
val build_tower : unit -> Circuit.t

(** [key_input_range] and [msg_input_range] give [(first, count)] for the
    two input halves. *)
val key_input_range : int * int
val msg_input_range : int * int
