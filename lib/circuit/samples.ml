open Circuit

let adder n =
  let b = Builder.create () in
  let xs = Builder.inputs b n in
  let ys = Builder.inputs b n in
  let outs = Array.make (n + 1) 0 in
  let carry = ref None in
  for i = 0 to n - 1 do
    let x = xs.(i) and y = ys.(i) in
    let x_xor_y = Builder.bxor b x y in
    match !carry with
    | None ->
      outs.(i) <- x_xor_y;
      carry := Some (Builder.band b x y)
    | Some c ->
      outs.(i) <- Builder.bxor b x_xor_y c;
      (* carry' = (x AND y) XOR (c AND (x XOR y)) *)
      let t = Builder.band b c x_xor_y in
      carry := Some (Builder.bxor b (Builder.band b x y) t)
  done;
  outs.(n) <- (match !carry with Some c -> c | None -> assert false);
  Builder.finish b outs

let equality n =
  let b = Builder.create () in
  let xs = Builder.inputs b n in
  let ys = Builder.inputs b n in
  let diffs = Array.init n (fun i -> Builder.bnot b (Builder.bxor b xs.(i) ys.(i))) in
  let all = Array.fold_left (fun acc w -> Builder.band b acc w) diffs.(0) (Array.sub diffs 1 (n - 1)) in
  Builder.finish b [| all |]

let mux n =
  let b = Builder.create () in
  let xs = Builder.inputs b n in
  let ys = Builder.inputs b n in
  let s = (Builder.inputs b 1).(0) in
  (* out = a XOR (s AND (a XOR b)) *)
  let outs =
    Array.init n (fun i ->
        Builder.bxor b xs.(i) (Builder.band b s (Builder.bxor b xs.(i) ys.(i))))
  in
  Builder.finish b outs
