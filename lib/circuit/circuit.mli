(** Boolean circuits over AND / XOR / NOT gates.

    Circuits are built once with {!Builder}, then either evaluated in the
    clear (the test oracle) or garbled by {!Bbx_garble}.  The gate basis is
    chosen for garbling: XOR and NOT are free under the free-XOR technique,
    so only AND gates cost ciphertexts. *)

type wire = int

type op = And | Xor | Not

type gate = { op : op; a : wire; b : wire (* = a for Not *); out : wire }

type t = private {
  n_inputs : int;      (** wires [0 .. n_inputs-1] are inputs *)
  n_wires : int;
  gates : gate array;  (** topologically ordered; gate [i] defines wire [n_inputs + i] *)
  outputs : wire array;
}

(** Number of AND gates — the only gates that cost garbled-table rows. *)
val and_count : t -> int

val gate_count : t -> int

(** Circuit construction.  A builder is single-use: build inputs and gates,
    then {!Builder.finish} with the output wires. *)
module Builder : sig
  type b

  val create : unit -> b

  (** [inputs b n] allocates the next [n] input wires.  All inputs must be
      allocated before any gate is added. *)
  val inputs : b -> int -> wire array

  val band : b -> wire -> wire -> wire
  val bxor : b -> wire -> wire -> wire
  val bnot : b -> wire -> wire

  (** [finish b outputs] freezes the circuit. *)
  val finish : b -> wire array -> t
end

(** [eval t inputs] evaluates in the clear.  Raises [Invalid_argument] if
    [Array.length inputs <> t.n_inputs]. *)
val eval : t -> bool array -> bool array

(** Byte/bit conversions, MSB-first within each byte: bit [8*i + j] of the
    array is bit [7-j] of byte [i]. *)
val bits_of_string : string -> bool array
val string_of_bits : bool array -> string
