type wire = int

type op = And | Xor | Not

type gate = { op : op; a : wire; b : wire; out : wire }

type t = {
  n_inputs : int;
  n_wires : int;
  gates : gate array;
  outputs : wire array;
}

let and_count t =
  Array.fold_left (fun acc g -> if g.op = And then acc + 1 else acc) 0 t.gates

let gate_count t = Array.length t.gates

module Builder = struct
  type b = {
    mutable n_inputs : int;
    mutable next_wire : int;
    mutable gates_rev : gate list;
    mutable n_gates : int;
    mutable sealed : bool; (* inputs frozen once the first gate is added *)
  }

  let create () =
    { n_inputs = 0; next_wire = 0; gates_rev = []; n_gates = 0; sealed = false }

  let inputs b n =
    if b.sealed then invalid_arg "Circuit.Builder.inputs: gates already added";
    if n < 0 then invalid_arg "Circuit.Builder.inputs: negative count";
    let first = b.next_wire in
    b.next_wire <- b.next_wire + n;
    b.n_inputs <- b.n_inputs + n;
    Array.init n (fun i -> first + i)

  let add b op x y =
    if x >= b.next_wire || y >= b.next_wire || x < 0 || y < 0 then
      invalid_arg "Circuit.Builder: undefined wire";
    b.sealed <- true;
    let out = b.next_wire in
    b.next_wire <- out + 1;
    b.gates_rev <- { op; a = x; b = y; out } :: b.gates_rev;
    b.n_gates <- b.n_gates + 1;
    out

  let band b x y = add b And x y
  let bxor b x y = add b Xor x y
  let bnot b x = add b Not x x

  let finish b outputs =
    Array.iter
      (fun w ->
         if w < 0 || w >= b.next_wire then
           invalid_arg "Circuit.Builder.finish: undefined output wire")
      outputs;
    { n_inputs = b.n_inputs;
      n_wires = b.next_wire;
      gates = Array.of_list (List.rev b.gates_rev);
      outputs = Array.copy outputs }
end

let eval t inputs =
  if Array.length inputs <> t.n_inputs then
    invalid_arg "Circuit.eval: wrong number of inputs";
  let values = Array.make t.n_wires false in
  Array.blit inputs 0 values 0 t.n_inputs;
  Array.iter
    (fun { op; a; b; out } ->
       values.(out) <-
         (match op with
          | And -> values.(a) && values.(b)
          | Xor -> values.(a) <> values.(b)
          | Not -> not values.(a)))
    t.gates;
  Array.map (fun w -> values.(w)) t.outputs

let bits_of_string s =
  Array.init (8 * String.length s) (fun i ->
      let byte = Char.code s.[i / 8] in
      (byte lsr (7 - (i mod 8))) land 1 = 1)

let string_of_bits bits =
  if Array.length bits mod 8 <> 0 then invalid_arg "Circuit.string_of_bits: ragged";
  String.init (Array.length bits / 8) (fun i ->
      let v = ref 0 in
      for j = 0 to 7 do
        v := (!v lsl 1) lor (if bits.((8 * i) + j) then 1 else 0)
      done;
      Char.chr !v)
