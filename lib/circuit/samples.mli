(** Small reference circuits used by the garbling tests and benches. *)

(** [adder n] adds two [n]-bit unsigned integers (LSB-first inputs: wires
    [0..n-1] = a, [n..2n-1] = b); outputs [n+1] bits LSB-first. *)
val adder : int -> Circuit.t

(** [equality n] compares two [n]-bit strings; one output bit (1 = equal). *)
val equality : int -> Circuit.t

(** [mux n] selects between two [n]-bit inputs with one select bit: inputs
    are [a (n) ; b (n) ; s (1)], output is [a] when [s = 0] else [b]. *)
val mux : int -> Circuit.t
