open Circuit

(* Bytes are wire arrays of length 8 in *degree* order: index i holds the
   coefficient of x^i (LSB first).  The circuit interface uses
   [Circuit.bits_of_string] order (MSB first), so bytes are flipped on the
   way in and out. *)

let key_input_range = (0, 128)
let msg_input_range = (128, 128)

let byte_xor b x y = Array.init 8 (fun i -> Builder.bxor b x.(i) y.(i))

let xor_const b x c =
  Array.init 8 (fun i ->
      if (c lsr i) land 1 = 1 then Builder.bnot b x.(i) else x.(i))

(* Karatsuba carry-less multiplication of two degree-(n-1) polynomials
   (n a power of two); returns the 2n-1 product coefficients.  Uses
   3^log2(n) AND gates: 27 for n = 8. *)
let rec clmul b x y =
  let n = Array.length x in
  if n = 1 then [| Builder.band b x.(0) y.(0) |]
  else begin
    let h = n / 2 in
    let xl = Array.sub x 0 h and xh = Array.sub x h h in
    let yl = Array.sub y 0 h and yh = Array.sub y h h in
    let pll = clmul b xl yl in
    let phh = clmul b xh yh in
    let xs = Array.init h (fun i -> Builder.bxor b xl.(i) xh.(i)) in
    let ys = Array.init h (fun i -> Builder.bxor b yl.(i) yh.(i)) in
    let pss = clmul b xs ys in
    let pmid =
      Array.init (2 * h - 1) (fun i ->
          Builder.bxor b (Builder.bxor b pss.(i) pll.(i)) phh.(i))
    in
    let acc = Array.make (2 * n - 1) None in
    let add i w =
      acc.(i) <- (match acc.(i) with None -> Some w | Some v -> Some (Builder.bxor b v w))
    in
    Array.iteri (fun i w -> add i w) pll;
    Array.iteri (fun i w -> add (i + h) w) pmid;
    Array.iteri (fun i w -> add (i + n) w) phh;
    Array.map (function Some w -> w | None -> assert false) acc
  end

(* Reduce a polynomial of degree < 15 modulo x^8 + x^4 + x^3 + x + 1. *)
let reduce b (poly : wire option array) =
  let poly = Array.append poly (Array.make (max 0 (15 - Array.length poly)) None) in
  let fold_into d t =
    match poly.(d) with
    | None -> ()
    | Some w ->
      poly.(t) <- (match poly.(t) with None -> Some w | Some v -> Some (Builder.bxor b v w))
  in
  for d = 14 downto 8 do
    fold_into d (d - 4);
    fold_into d (d - 5);
    fold_into d (d - 7);
    fold_into d (d - 8);
    poly.(d) <- None
  done;
  (* A GF(2^8) element must have all 8 coefficient wires; synthesise a zero
     wire only if some coefficient never appeared (cannot happen for the
     multiplications below, which always populate degrees 0..7). *)
  Array.init 8 (fun i -> match poly.(i) with Some w -> w | None -> assert false)

let gf_mul b x y = reduce b (Array.map Option.some (clmul b x y))

(* Squaring is linear over GF(2): coefficients spread to even degrees and
   reduce with XORs only. *)
let gf_square b x =
  let poly = Array.make 15 None in
  Array.iteri (fun i w -> poly.(2 * i) <- Some w) x;
  reduce b poly

(* x^254 by the addition chain 2, 3, 12, 15, 240, 252, 254: four
   multiplications, the rest free squarings. *)
let gf_inv b x =
  let x2 = gf_square b x in
  let x3 = gf_mul b x2 x in
  let x12 = gf_square b (gf_square b x3) in
  let x15 = gf_mul b x12 x3 in
  let x240 = gf_square b (gf_square b (gf_square b (gf_square b x15))) in
  let x252 = gf_mul b x240 x12 in
  gf_mul b x252 x2

(* The AES affine map applied after inversion (either inversion circuit). *)
let affine b y =
  let rot n = Array.init 8 (fun i -> y.((i - n + 8) mod 8)) in
  let r1 = rot 1 and r2 = rot 2 and r3 = rot 3 and r4 = rot 4 in
  let acc =
    Array.init 8 (fun i ->
        let w = Builder.bxor b y.(i) r1.(i) in
        let w = Builder.bxor b w r2.(i) in
        let w = Builder.bxor b w r3.(i) in
        Builder.bxor b w r4.(i))
  in
  xor_const b acc 0x63

let sbox_algebraic b x = affine b (gf_inv b x)

(* ---------- tower-field S-box: GF(2^8) ~ GF(2^4)[y]/(y^2 + y + lambda) --

   All constants of the decomposition — lambda, the isomorphism matrix M
   (mapping the AES representation to the tower) and its inverse — are
   derived here numerically; nothing is pasted from tables. *)

(* GF(2^4) with modulus x^4 + x + 1 *)
let gf16_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else begin
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = let a = a lsl 1 in if a land 0x10 <> 0 then (a lxor 0x13) land 0xf else a in
      go a (b lsr 1) acc
    end
  in
  go a b 0

(* smallest lambda making y^2 + y + lambda irreducible over GF(2^4) *)
let lambda =
  let has_root l =
    List.exists (fun t -> gf16_mul t t lxor t lxor l = 0) (List.init 16 Fun.id)
  in
  let rec find l = if has_root l then find (l + 1) else l in
  find 1

(* composite-field element w = a*16 + b  <->  a*y + b *)
let cmul w1 w2 =
  let a = w1 lsr 4 and b = w1 land 0xf and c = w2 lsr 4 and d = w2 land 0xf in
  let ac = gf16_mul a c in
  let hi = gf16_mul a d lxor gf16_mul b c lxor ac in
  let lo = gf16_mul b d lxor gf16_mul ac lambda in
  (hi lsl 4) lor lo

let cpow w n =
  let rec go acc base n =
    if n = 0 then acc
    else go (if n land 1 = 1 then cmul acc base else acc) (cmul base base) (n lsr 1)
  in
  go 0x01 w n

(* gamma: a root of the AES modulus z^8 + z^4 + z^3 + z + 1 in the tower,
   making (1, gamma, gamma^2, ...) the image of the polynomial basis *)
let gamma =
  let m w = cpow w 8 lxor cpow w 4 lxor cpow w 3 lxor w lxor 0x01 in
  let rec find w = if w > 255 then failwith "no root" else if m w = 0 then w else find (w + 1) in
  find 2

(* M as row masks: output bit j = XOR of input bits i with row.(j) bit i *)
let matrix_of_columns cols =
  Array.init 8 (fun j ->
      snd
        (Array.fold_left
           (fun (i, mask) col ->
              (i + 1, if (col lsr j) land 1 = 1 then mask lor (1 lsl i) else mask))
           (0, 0) cols))

let tower_matrix = matrix_of_columns (Array.init 8 (fun i -> cpow gamma i))

(* Gauss-Jordan inversion over GF(2) of an 8x8 row-mask matrix. *)
let invert_matrix rows =
  let n = 8 in
  let aug = Array.mapi (fun j row -> row lor (1 lsl (n + j))) rows in
  for col = 0 to n - 1 do
    let pivot = ref (-1) in
    for j = col to n - 1 do
      if !pivot = -1 && (aug.(j) lsr col) land 1 = 1 then pivot := j
    done;
    if !pivot = -1 then failwith "singular matrix";
    let tmp = aug.(col) in
    aug.(col) <- aug.(!pivot);
    aug.(!pivot) <- tmp;
    for j = 0 to n - 1 do
      if j <> col && (aug.(j) lsr col) land 1 = 1 then aug.(j) <- aug.(j) lxor aug.(col)
    done
  done;
  Array.map (fun row -> row lsr n) aug

let tower_matrix_inv = invert_matrix tower_matrix

(* circuit-side linear map: wires (LSB-first) through a row-mask matrix *)
let apply_matrix b rows wires =
  Array.map
    (fun row ->
       let acc = ref None in
       Array.iteri
         (fun i w ->
            if (row lsr i) land 1 = 1 then
              acc := (match !acc with None -> Some w | Some v -> Some (Builder.bxor b v w)))
         wires;
       match !acc with Some w -> w | None -> failwith "zero matrix row")
    rows

(* GF(2^4) circuit arithmetic on 4-wire (degree-indexed) arrays *)
let reduce16 b poly =
  let poly = Array.append poly (Array.make (max 0 (7 - Array.length poly)) None) in
  let fold_into d t =
    match poly.(d) with
    | None -> ()
    | Some w ->
      poly.(t) <- (match poly.(t) with None -> Some w | Some v -> Some (Builder.bxor b v w))
  in
  for d = 6 downto 4 do
    (* x^4 = x + 1: x^d = x^(d-3) + x^(d-4) *)
    fold_into d (d - 3);
    fold_into d (d - 4);
    poly.(d) <- None
  done;
  Array.init 4 (fun i -> match poly.(i) with Some w -> w | None -> assert false)

let g16_mul b x y = reduce16 b (Array.map Option.some (clmul b x y))

let g16_sq b x =
  let poly = Array.make 7 None in
  Array.iteri (fun i w -> poly.(2 * i) <- Some w) x;
  reduce16 b poly

let g16_xor b x y = Array.init 4 (fun i -> Builder.bxor b x.(i) y.(i))

(* multiplication by the constant lambda: a linear map *)
let g16_mul_lambda =
  let rows =
    Array.init 4 (fun j ->
        snd
          (List.fold_left
             (fun (i, mask) v ->
                (i + 1, if (v lsr j) land 1 = 1 then mask lor (1 lsl i) else mask))
             (0, 0)
             (List.init 4 (fun i -> gf16_mul lambda (1 lsl i)))))
  in
  fun b x -> apply_matrix b rows x

(* GF(2^4) inversion = x^14: two multiplications, free squarings *)
let g16_inv b x =
  let x2 = g16_sq b x in
  let x3 = g16_mul b x2 x in
  let x12 = g16_sq b (g16_sq b x3) in
  g16_mul b x12 x2

let sbox_tower b x =
  let w = apply_matrix b tower_matrix x in
  let lo = Array.sub w 0 4 and hi = Array.sub w 4 4 in
  (* inverse of a*y + b: delta = a^2 lambda + ab + b^2;
     (a*y + b)^-1 = (a delta^-1) y + (a + b) delta^-1 *)
  let a = hi and bb = lo in
  let delta =
    g16_xor b
      (g16_mul_lambda b (g16_sq b a))
      (g16_xor b (g16_mul b a bb) (g16_sq b bb))
  in
  let di = g16_inv b delta in
  let c = g16_mul b a di in
  let d = g16_mul b (g16_xor b a bb) di in
  let inv_composite = Array.append d c in
  affine b (apply_matrix b tower_matrix_inv inv_composite)

let xtime b x =
  [| x.(7);
     Builder.bxor b x.(0) x.(7);
     x.(1);
     Builder.bxor b x.(2) x.(7);
     Builder.bxor b x.(3) x.(7);
     x.(4);
     x.(5);
     x.(6) |]

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let build_with sbox () =
  let b = Builder.create () in
  let key_bits = Builder.inputs b 128 in
  let msg_bits = Builder.inputs b 128 in
  let to_bytes bits =
    Array.init 16 (fun byte -> Array.init 8 (fun i -> bits.((8 * byte) + 7 - i)))
  in
  (* Key schedule: 44 words of 4 bytes. *)
  let key_bytes = to_bytes key_bits in
  let w = Array.make 44 [||] in
  for i = 0 to 3 do
    w.(i) <- Array.init 4 (fun j -> key_bytes.((4 * i) + j))
  done;
  for i = 4 to 43 do
    if i mod 4 = 0 then begin
      let p = w.(i - 1) in
      let t = [| sbox b p.(1); sbox b p.(2); sbox b p.(3); sbox b p.(0) |] in
      t.(0) <- xor_const b t.(0) rcon.((i / 4) - 1);
      w.(i) <- Array.init 4 (fun j -> byte_xor b w.(i - 4).(j) t.(j))
    end else
      w.(i) <- Array.init 4 (fun j -> byte_xor b w.(i - 4).(j) w.(i - 1).(j))
  done;
  let state = ref (to_bytes msg_bits) in
  let add_round_key round =
    state := Array.init 16 (fun i -> byte_xor b !state.(i) w.((4 * round) + (i / 4)).(i mod 4))
  in
  let sub_bytes () = state := Array.map (sbox b) !state in
  let shift_rows () =
    let s = !state in
    (* index = row + 4*col; row r rotates left by r *)
    state := Array.init 16 (fun i ->
        let r = i mod 4 and c = i / 4 in
        s.(r + (4 * ((c + r) mod 4))))
  in
  let mix_columns () =
    let s = !state in
    state :=
      Array.init 16 (fun i ->
          let c = i / 4 and r = i mod 4 in
          let a j = s.((4 * c) + j) in
          let all = byte_xor b (byte_xor b (a 0) (a 1)) (byte_xor b (a 2) (a 3)) in
          let cur = a r and next = a ((r + 1) mod 4) in
          byte_xor b (byte_xor b cur all) (xtime b (byte_xor b cur next)))
  in
  add_round_key 0;
  for round = 1 to 9 do
    sub_bytes (); shift_rows (); mix_columns (); add_round_key round
  done;
  sub_bytes (); shift_rows (); add_round_key 10;
  let out_bits =
    Array.concat
      (List.init 16 (fun byte -> Array.init 8 (fun i -> !state.(byte).(7 - i))))
  in
  Builder.finish b out_bits

let build = build_with sbox_algebraic
let build_tower = build_with sbox_tower
