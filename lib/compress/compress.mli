(** LZ77 + canonical-Huffman compressor (DEFLATE-shaped).

    Fig. 6 of the paper compares BlindBox's token overhead against pages
    served with gzip.  This module provides that baseline: a real
    dictionary compressor whose ratios on text/HTML sit in gzip's band
    (~3-4x).  The format is self-describing but deliberately not
    byte-compatible with RFC 1951; see DESIGN.md §2 on substitutions.

    Format: 1 flag byte (0 = stored, 1 = compressed), then either the raw
    bytes or a 257-entry code-length table followed by a bit stream of
    flagged literals (Huffman-coded, with an end-of-block symbol) and
    matches (8-bit length-3, 15-bit distance). *)

val compress : string -> string

(** [decompress s] inverts {!compress}.  Raises [Invalid_argument] on
    malformed input. *)
val decompress : string -> string

(** [compressed_size s] = [String.length (compress s)]. *)
val compressed_size : string -> int

(** [ratio s] is [original / compressed] (>= ~0.99 thanks to the stored
    fallback). *)
val ratio : string -> float
