(* ---------- bit I/O ---------- *)

module Bitwriter = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable nbits : int }

  let create () = { buf = Buffer.create 1024; acc = 0; nbits = 0 }

  (* LSB-first bit packing. *)
  let put t value width =
    t.acc <- t.acc lor (value lsl t.nbits);
    t.nbits <- t.nbits + width;
    while t.nbits >= 8 do
      Buffer.add_char t.buf (Char.chr (t.acc land 0xff));
      t.acc <- t.acc lsr 8;
      t.nbits <- t.nbits - 8
    done

  let finish t =
    if t.nbits > 0 then Buffer.add_char t.buf (Char.chr (t.acc land 0xff));
    Buffer.contents t.buf
end

module Bitreader = struct
  type t = { src : string; mutable pos : int; mutable acc : int; mutable nbits : int }

  let create src pos = { src; pos; acc = 0; nbits = 0 }

  let get t width =
    while t.nbits < width do
      if t.pos >= String.length t.src then invalid_arg "Compress: truncated stream";
      t.acc <- t.acc lor (Char.code t.src.[t.pos] lsl t.nbits);
      t.pos <- t.pos + 1;
      t.nbits <- t.nbits + 8
    done;
    let v = t.acc land ((1 lsl width) - 1) in
    t.acc <- t.acc lsr width;
    t.nbits <- t.nbits - width;
    v
end

(* ---------- canonical Huffman ---------- *)

let n_symbols = 257 (* 256 literals + end-of-block *)
let eob = 256

(* Code lengths by repeated pairing of the two lightest subtrees (a simple
   array-based selection is fine at 257 symbols). *)
let huffman_lengths freqs =
  let n = Array.length freqs in
  (* weight, depth-propagation via parent pointers *)
  let weights = Array.to_list (Array.mapi (fun i f -> (f, i)) freqs) in
  let alive = List.filter (fun (f, _) -> f > 0) weights in
  match alive with
  | [] -> Array.make n 0
  | [ (_, only) ] ->
    let l = Array.make n 0 in
    l.(only) <- 1;
    l
  | _ ->
    (* nodes: 0..n-1 leaves, then internal *)
    let max_nodes = 2 * n in
    let weight = Array.make max_nodes 0 in
    let parent = Array.make max_nodes (-1) in
    let in_use = Array.make max_nodes false in
    List.iter (fun (f, i) -> weight.(i) <- f; in_use.(i) <- true) alive;
    let next = ref n in
    let pick_two () =
      let best = ref (-1) and second = ref (-1) in
      for i = 0 to !next - 1 do
        if in_use.(i) then begin
          if !best = -1 || weight.(i) < weight.(!best) then begin
            second := !best; best := i
          end
          else if !second = -1 || weight.(i) < weight.(!second) then second := i
        end
      done;
      (!best, !second)
    in
    let remaining = ref (List.length alive) in
    while !remaining > 1 do
      let a, b = pick_two () in
      in_use.(a) <- false;
      in_use.(b) <- false;
      weight.(!next) <- weight.(a) + weight.(b);
      parent.(a) <- !next;
      parent.(b) <- !next;
      in_use.(!next) <- true;
      incr next;
      decr remaining
    done;
    let lengths = Array.make n 0 in
    List.iter
      (fun (_, i) ->
         let rec depth j = if parent.(j) = -1 then 0 else 1 + depth parent.(j) in
         lengths.(i) <- depth i)
      alive;
    lengths

(* Canonical code assignment: sort by (length, symbol). *)
let canonical_codes lengths =
  let max_len = Array.fold_left max 0 lengths in
  let codes = Array.make (Array.length lengths) 0 in
  let code = ref 0 in
  for len = 1 to max_len do
    Array.iteri
      (fun sym l ->
         if l = len then begin
           codes.(sym) <- !code;
           incr code
         end)
      lengths;
    code := !code lsl 1
  done;
  codes

(* Write a Huffman code MSB-first so canonical decoding works. *)
let put_code bw code len =
  for i = len - 1 downto 0 do
    Bitwriter.put bw ((code lsr i) land 1) 1
  done

(* ---------- LZ77 ---------- *)

let window_size = 32768
let min_match = 4
let max_match = 258
let max_chain = 64

type symbol = Lit of char | Match of int * int (* length, distance *)

let lz77 s =
  let n = String.length s in
  let hash_bits = 15 in
  let head = Array.make (1 lsl hash_bits) (-1) in
  let prev = Array.make (max n 1) (-1) in
  let hash i =
    ((Char.code s.[i] lsl 10) lxor (Char.code s.[i + 1] lsl 5) lxor Char.code s.[i + 2])
    land ((1 lsl hash_bits) - 1)
  in
  let syms = ref [] in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n then begin
      let h = hash !i in
      let cand = ref head.(h) in
      let chain = ref 0 in
      while !cand >= 0 && !chain < max_chain && !i - !cand <= window_size do
        let cap = min max_match (n - !i) in
        let len = ref 0 in
        while !len < cap && s.[!cand + !len] = s.[!i + !len] do incr len done;
        if !len > !best_len then begin
          best_len := !len;
          best_dist := !i - !cand
        end;
        cand := prev.(!cand);
        incr chain
      done
    end;
    if !best_len >= min_match then begin
      syms := Match (!best_len, !best_dist) :: !syms;
      (* insert hash entries for every position we skip *)
      let stop = min (!i + !best_len) (n - min_match + 1) in
      let j = ref !i in
      while !j < stop do
        let h = hash !j in
        prev.(!j) <- head.(h);
        head.(h) <- !j;
        incr j
      done;
      i := !i + !best_len
    end
    else begin
      if !i + min_match <= n then begin
        let h = hash !i in
        prev.(!i) <- head.(h);
        head.(h) <- !i
      end;
      syms := Lit s.[!i] :: !syms;
      incr i
    end
  done;
  List.rev !syms

(* ---------- container ---------- *)

let compress s =
  let syms = lz77 s in
  let freqs = Array.make n_symbols 0 in
  List.iter (function Lit c -> freqs.(Char.code c) <- freqs.(Char.code c) + 1 | Match _ -> ()) syms;
  freqs.(eob) <- 1;
  let lengths = huffman_lengths freqs in
  let codes = canonical_codes lengths in
  let bw = Bitwriter.create () in
  List.iter
    (function
      | Lit c ->
        Bitwriter.put bw 0 1;
        put_code bw codes.(Char.code c) lengths.(Char.code c)
      | Match (len, dist) ->
        Bitwriter.put bw 1 1;
        Bitwriter.put bw (len - min_match) 8;
        Bitwriter.put bw dist 15)
    syms;
  Bitwriter.put bw 0 1;
  put_code bw codes.(eob) lengths.(eob);
  let body = Bitwriter.finish bw in
  let header = String.init n_symbols (fun i -> Char.chr lengths.(i)) in
  let packed = "\001" ^ header ^ body in
  if String.length packed >= String.length s + 1 then "\000" ^ s else packed

let decompress s =
  if String.length s = 0 then invalid_arg "Compress.decompress: empty";
  match s.[0] with
  | '\000' -> String.sub s 1 (String.length s - 1)
  | '\001' ->
    if String.length s < 1 + n_symbols then invalid_arg "Compress.decompress: truncated header";
    let lengths = Array.init n_symbols (fun i -> Char.code s.[1 + i]) in
    let codes = canonical_codes lengths in
    (* decoding table: (length, code) -> symbol *)
    let table = Hashtbl.create 512 in
    Array.iteri (fun sym l -> if l > 0 then Hashtbl.replace table (l, codes.(sym)) sym) lengths;
    let max_len = Array.fold_left max 0 lengths in
    let br = Bitreader.create s (1 + n_symbols) in
    let read_symbol () =
      let rec go code len =
        if len > max_len then invalid_arg "Compress.decompress: bad code";
        let code = (code lsl 1) lor Bitreader.get br 1 in
        match Hashtbl.find_opt table (len + 1, code) with
        | Some sym -> sym
        | None -> go code (len + 1)
      in
      go 0 0
    in
    let out = Buffer.create (4 * String.length s) in
    let rec loop () =
      let flag = Bitreader.get br 1 in
      if flag = 1 then begin
        let len = Bitreader.get br 8 + min_match in
        let dist = Bitreader.get br 15 in
        let start = Buffer.length out - dist in
        if dist = 0 || start < 0 then invalid_arg "Compress.decompress: bad distance";
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done;
        loop ()
      end
      else begin
        let sym = read_symbol () in
        if sym <> eob then begin
          Buffer.add_char out (Char.chr sym);
          loop ()
        end
      end
    in
    loop ();
    Buffer.contents out
  | _ -> invalid_arg "Compress.decompress: bad flag byte"

let compressed_size s = String.length (compress s)

let ratio s =
  if s = "" then 1.0
  else float_of_int (String.length s) /. float_of_int (compressed_size s)
