(* Minimal binary codec for middlebox-internal connection snapshots
   (Engine.snapshot / Shard.export_conn).  Deliberately separate from
   Bbx_wire: lib/mbox must not depend on the network protocol layer, and
   snapshot blobs are opaque payloads to the wire anyway.  Big-endian,
   length-prefixed strings, no framing — the enclosing transport frames. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Codec.put_u32: out of range";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_i64 b v =
  let v = Int64.of_int v in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_str32 b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

type cursor = { data : string; mutable pos : int }

let cursor data = { data; pos = 0 }

let need cur n =
  if cur.pos + n > String.length cur.data then corrupt "truncated snapshot"

let get_u8 cur =
  need cur 1;
  let v = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let get_u32 cur =
  need cur 4;
  let b i = Char.code cur.data.[cur.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  cur.pos <- cur.pos + 4;
  v

let get_i64 cur =
  need cur 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code cur.data.[cur.pos + i]))
  done;
  cur.pos <- cur.pos + 8;
  let v = !v in
  if Int64.compare v (Int64.of_int max_int) > 0
     || Int64.compare v (Int64.of_int min_int) < 0
  then corrupt "i64 out of native int range";
  Int64.to_int v

let get_bool cur = get_u8 cur <> 0

let get_str32 cur =
  let len = get_u32 cur in
  need cur len;
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let finish cur =
  if cur.pos <> String.length cur.data then corrupt "trailing bytes in snapshot"
