type conn_id = int

type stats = {
  connections : int;
  total_tokens : int;
  total_keyword_hits : int;
  alerts : int;
  blocked : int;
}

type conn = {
  engine : Engine.t;
  mutable conn_blocked : bool;
  mutable reported : int list;
}

type t = {
  mode : Bbx_dpienc.Dpienc.mode;
  rules : Bbx_rules.Rule.t list;
  conns : (conn_id, conn) Hashtbl.t;
  mutable total_tokens : int;
  mutable total_keyword_hits : int;
  mutable alerts : int;
  mutable blocked_count : int;
}

let create ~mode ~rules =
  { mode; rules; conns = Hashtbl.create 64;
    total_tokens = 0; total_keyword_hits = 0; alerts = 0; blocked_count = 0 }

let register t ~conn_id ~salt0 ~enc_chunk =
  if Hashtbl.mem t.conns conn_id then
    invalid_arg (Printf.sprintf "Middlebox.register: connection %d exists" conn_id);
  let engine = Engine.create ~mode:t.mode ~salt0 ~rules:t.rules ~enc_chunk in
  Hashtbl.add t.conns conn_id { engine; conn_blocked = false; reported = [] }

let get t conn_id =
  match Hashtbl.find_opt t.conns conn_id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Middlebox: unknown connection %d" conn_id)

(* [inject] runs the engine over this delivery's tokens and returns how
   many there were — the list and wire entry points only differ here. *)
let process_common t ~conn_id inject =
  let c = get t conn_id in
  if c.conn_blocked then
    invalid_arg (Printf.sprintf "Middlebox.process: connection %d is blocked" conn_id);
  let hits_before = List.length (Engine.keyword_hits c.engine) in
  t.total_tokens <- t.total_tokens + inject c.engine;
  t.total_keyword_hits <-
    t.total_keyword_hits + List.length (Engine.keyword_hits c.engine) - hits_before;
  let all = Engine.verdicts c.engine in
  let fresh = List.filter (fun v -> not (List.mem v.Engine.rule_idx c.reported)) all in
  c.reported <- List.map (fun v -> v.Engine.rule_idx) fresh @ c.reported;
  t.alerts <- t.alerts + List.length fresh;
  if List.exists
      (fun v -> v.Engine.rule.Bbx_rules.Rule.action = Bbx_rules.Rule.Drop)
      fresh
  then begin
    c.conn_blocked <- true;
    t.blocked_count <- t.blocked_count + 1
  end;
  fresh

let process t ~conn_id tokens =
  process_common t ~conn_id (fun engine ->
      Engine.process engine tokens;
      List.length tokens)

let process_wire t ~conn_id wire =
  process_common t ~conn_id (fun engine -> Engine.process_wire engine wire)

let is_blocked t ~conn_id = (get t conn_id).conn_blocked

let unregister t ~conn_id = Hashtbl.remove t.conns conn_id

let engine t ~conn_id = (get t conn_id).engine

let stats t =
  { connections = Hashtbl.length t.conns;
    total_tokens = t.total_tokens;
    total_keyword_hits = t.total_keyword_hits;
    alerts = t.alerts;
    blocked = t.blocked_count }
