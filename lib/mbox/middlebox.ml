(* The historical sequential middlebox API: exactly one {!Shard}, owned
   by the caller.  All detection logic lives in [Shard]; keeping this
   front a pure delegation is what guarantees the sequential path stays
   byte-identical to pre-shardpool behaviour (differential-tested against
   [Shardpool] in test/test_shardpool.ml). *)

type conn_id = Shard.conn_id

type stats = Shard.stats = {
  connections : int;
  total_tokens : int;
  total_keyword_hits : int;
  alerts : int;
  blocked : int;
}

type flow_stats = Shard.flow_stats = {
  flow_tokens : int;
  flow_hits : int;
  flow_verdicts : int;
  flow_blocked : bool;
}

type t = Shard.t

let create = Shard.create
let register = Shard.register
let record_stream = Shard.record_stream
let process = Shard.process
let process_wire = Shard.process_wire
let is_blocked = Shard.is_blocked
let unregister = Shard.unregister
let engine = Shard.engine
let stats = Shard.stats
let flow_stats = Shard.flow_stats
let fold_flows = Shard.fold_flows
let export_conn = Shard.export_conn

let import_conn t ~conn_id blob =
  (* validate before install; a duplicate id is a caller error, same as
     [register] *)
  let c = Shard.parse_export ~mode:(Shard.mode t) blob in
  (match Shard.flow_stats t ~conn_id with
   | _ ->
     invalid_arg (Printf.sprintf "Middlebox.import_conn: connection %d exists" conn_id)
   | exception Invalid_argument _ -> ());
  Shard.adopt t ~conn_id c

let footprint_bytes = Shard.footprint_bytes
