(* The historical sequential middlebox API: exactly one {!Shard}, owned
   by the caller.  All detection logic lives in [Shard]; keeping this
   front a pure delegation is what guarantees the sequential path stays
   byte-identical to pre-shardpool behaviour (differential-tested against
   [Shardpool] in test/test_shardpool.ml). *)

type conn_id = Shard.conn_id

type stats = Shard.stats = {
  connections : int;
  total_tokens : int;
  total_keyword_hits : int;
  alerts : int;
  blocked : int;
}

type flow_stats = Shard.flow_stats = {
  flow_tokens : int;
  flow_hits : int;
  flow_verdicts : int;
  flow_blocked : bool;
}

type t = Shard.t

let create = Shard.create
let register = Shard.register
let record_stream = Shard.record_stream
let process = Shard.process
let process_wire = Shard.process_wire
let is_blocked = Shard.is_blocked
let unregister = Shard.unregister
let engine = Shard.engine
let stats = Shard.stats
let flow_stats = Shard.flow_stats
let fold_flows = Shard.fold_flows
