module Obs = Bbx_obs.Obs

(* Aggregate middlebox accounting, mirrored into the process-wide obs
   registry so `blindbox stats` / bench snapshots see middlebox activity
   without holding a reference to the box.  The connection gauge is
   maintained by deltas ([add_gauge]) so shards on different domains sum
   into one aggregate instead of clobbering each other. *)
let obs_tokens = Obs.counter "bbx_mbox_tokens_total"
let obs_hits = Obs.counter "bbx_mbox_keyword_hits_total"
let obs_alerts = Obs.counter "bbx_mbox_alerts_total"
let obs_blocked = Obs.counter "bbx_mbox_blocked_total"
let obs_deliveries = Obs.counter "bbx_mbox_deliveries_total"
let obs_connections = Obs.gauge "bbx_mbox_connections"

type conn_id = int

type stats = {
  connections : int;
  total_tokens : int;
  total_keyword_hits : int;
  alerts : int;
  blocked : int;
}

type flow_stats = {
  flow_tokens : int;
  flow_hits : int;
  flow_verdicts : int;
  flow_blocked : bool;
}

type conn = {
  engine : Engine.t;
  mutable conn_blocked : bool;
  mutable reported : Bitset.t;        (* rule indices already reported *)
  mutable conn_tokens : int;
  mutable conn_verdicts : int;
}

type t = {
  mode : Bbx_dpienc.Dpienc.mode;
  index : Bbx_detect.Detect.index_backend;  (* cipher-index backend for new engines *)
  tier : Bbx_rules.Classify.protocol_class; (* highest protocol new engines run *)
  budget : Engine.budget;                   (* Protocol III escalation budget *)
  kernel : Bbx_dpienc.Dpienc.aes_kernel;    (* AES path for new engines *)
  mutable rules : Bbx_rules.Rule.t list;   (* current ruleset for new registrations *)
  conns : (conn_id, conn) Hashtbl.t;
  mutable total_tokens : int;
  mutable total_keyword_hits : int;
  mutable alerts : int;
  mutable blocked_count : int;
}

let create ?(index = Bbx_detect.Detect.Hash) ?(tier = Bbx_rules.Classify.Protocol_III)
    ?(budget = Engine.default_budget) ?(kernel = Bbx_dpienc.Dpienc.Scalar)
    ~mode ~rules () =
  { mode; index; tier; budget; kernel; rules; conns = Hashtbl.create 64;
    total_tokens = 0; total_keyword_hits = 0; alerts = 0; blocked_count = 0 }

let mode t = t.mode

let register ?direction ?prepared ?keys ?prefilter t ~conn_id ~salt0 ~enc_chunk =
  if Hashtbl.mem t.conns conn_id then
    invalid_arg (Printf.sprintf "Middlebox.register: connection %d exists" conn_id);
  let engine =
    Engine.create ~index:t.index ~tier:t.tier ~budget:t.budget ?direction
      ~kernel:t.kernel ?prepared ?keys ?prefilter ~mode:t.mode ~salt0
      ~rules:t.rules ~enc_chunk ()
  in
  Hashtbl.add t.conns conn_id
    { engine; conn_blocked = false; reported = Bitset.create (List.length t.rules);
      conn_tokens = 0; conn_verdicts = 0 };
  Obs.add_gauge obs_connections 1

let get t conn_id =
  match Hashtbl.find_opt t.conns conn_id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Middlebox: unknown connection %d" conn_id)

(* [inject] runs the engine over this delivery's tokens and returns how
   many there were — the list and wire entry points only differ here.
   Keyword-hit accounting uses [Engine.hit_count] deltas: the old
   [List.length (Engine.keyword_hits ...)] bracketing folded and sorted
   the whole hit history twice per delivery, turning long-lived noisy
   connections O(hits^2).  The reported-rule set is a bitset for the
   same reason (and for footprint: one bit per rule instead of ~6 words
   per reported entry): a [List.mem] scan per verdict was O(alerts^2) on
   long-lived connections. *)
let process_common t ~conn_id inject =
  let c = get t conn_id in
  if c.conn_blocked then
    invalid_arg (Printf.sprintf "Middlebox.process: connection %d is blocked" conn_id);
  let hits_before = Engine.hit_count c.engine in
  let tokens = inject c.engine in
  t.total_tokens <- t.total_tokens + tokens;
  c.conn_tokens <- c.conn_tokens + tokens;
  let new_hits = Engine.hit_count c.engine - hits_before in
  t.total_keyword_hits <- t.total_keyword_hits + new_hits;
  let all = Engine.verdicts c.engine in
  let fresh = List.filter (fun v -> not (Bitset.mem c.reported v.Engine.rule_idx)) all in
  List.iter (fun v -> Bitset.add c.reported v.Engine.rule_idx) fresh;
  let n_fresh = List.length fresh in
  t.alerts <- t.alerts + n_fresh;
  c.conn_verdicts <- c.conn_verdicts + n_fresh;
  Obs.incr obs_deliveries;
  Obs.add obs_tokens tokens;
  Obs.add obs_hits new_hits;
  Obs.add obs_alerts n_fresh;
  (* A budget-exceeded verdict is a flag, not a match: it must never tear
     the connection down, even under a drop rule. *)
  if List.exists
      (fun v ->
         v.Engine.rule.Bbx_rules.Rule.action = Bbx_rules.Rule.Drop
         && v.Engine.detail <> `Budget_exceeded)
      fresh
  then begin
    c.conn_blocked <- true;
    t.blocked_count <- t.blocked_count + 1;
    Obs.incr obs_blocked
  end;
  fresh

let process t ~conn_id tokens =
  process_common t ~conn_id (fun engine ->
      Engine.process engine tokens;
      List.length tokens)

let process_wire t ~conn_id wire =
  process_common t ~conn_id (fun engine -> Engine.process_wire engine wire)

(* Retain one sealed record of the inspected stream for probable-cause
   decryption.  Blocked connections carry no further traffic; records for
   them are silently ignored (the flow is already torn down). *)
let record_stream t ~conn_id record =
  let c = get t conn_id in
  if not c.conn_blocked then Engine.record_stream c.engine record

let is_blocked t ~conn_id = (get t conn_id).conn_blocked

let unregister t ~conn_id =
  if Hashtbl.mem t.conns conn_id then begin
    Hashtbl.remove t.conns conn_id;
    Obs.add_gauge obs_connections (-1)
  end

let engine t ~conn_id = (get t conn_id).engine

let reset_conn t ~conn_id ~salt0 = Engine.reset (get t conn_id).engine ~salt0

(* Rule update for one connection: retire [remove_sids], extend with
   [add], and adopt [rules] (the full post-update ruleset) for future
   registrations.  The engine's index remap is applied to the
   reported-rule set so "report each rule once" survives the rule_idx
   shift that removal causes. *)
let update_rules ?prefilter t ~conn_id ~remove_sids ~add ~rules ~enc_chunk =
  let c = get t conn_id in
  let _orphans, remap = Engine.remove_rules c.engine ~sids:remove_sids in
  if remove_sids <> [] then
    c.reported <- Bitset.remap c.reported remap ~size:(Array.length remap);
  ignore (Engine.add_rules c.engine ~rules:add ~enc_chunk : int);
  (* the update rebuilt an engine-owned prefilter; swap the shared
     next-generation prep back in so fleets stay flat *)
  Option.iter (Engine.set_prefilter c.engine) prefilter;
  t.rules <- rules

let stats t =
  { connections = Hashtbl.length t.conns;
    total_tokens = t.total_tokens;
    total_keyword_hits = t.total_keyword_hits;
    alerts = t.alerts;
    blocked = t.blocked_count }

let merge_stats a b =
  { connections = a.connections + b.connections;
    total_tokens = a.total_tokens + b.total_tokens;
    total_keyword_hits = a.total_keyword_hits + b.total_keyword_hits;
    alerts = a.alerts + b.alerts;
    blocked = a.blocked + b.blocked }

let empty_stats =
  { connections = 0; total_tokens = 0; total_keyword_hits = 0; alerts = 0; blocked = 0 }

let flow_stats_of c =
  { flow_tokens = c.conn_tokens;
    flow_hits = Engine.hit_count c.engine;
    flow_verdicts = c.conn_verdicts;
    flow_blocked = c.conn_blocked }

let flow_stats t ~conn_id = flow_stats_of (get t conn_id)

let fold_flows t ~init ~f =
  Hashtbl.fold (fun conn_id c acc -> f acc conn_id (flow_stats_of c)) t.conns init

(* ---------- connection export / import (migration) -------------------- *)

(* A shard-level export carries the engine snapshot plus the wrapper
   state {!Shardpool} and the daemon cannot reconstruct: the blocked
   flag, the reported-rule bitset (so a migrated connection never
   re-reports a verdict), and the flow counters.  Aggregate shard totals
   deliberately stay where they accrued — migrating a connection moves
   its future accounting, not its history, so summed stats across shards
   match an unmigrated run. *)

let export_version = 1

type imported = conn

let export_conn t ~conn_id =
  let c = get t conn_id in
  let b = Buffer.create 4096 in
  Codec.put_u8 b export_version;
  Codec.put_str32 b (Engine.snapshot c.engine);
  Codec.put_bool b c.conn_blocked;
  Codec.put_str32 b (Bitset.to_string c.reported);
  Codec.put_i64 b c.conn_tokens;
  Codec.put_i64 b c.conn_verdicts;
  Hashtbl.remove t.conns conn_id;
  Obs.add_gauge obs_connections (-1);
  Buffer.contents b

let parse_export ?mode ?kernel blob =
  match
    let cur = Codec.cursor blob in
    let version = Codec.get_u8 cur in
    if version <> export_version then
      invalid_arg (Printf.sprintf "Shard.parse_export: unknown version %d" version);
    let engine = Engine.restore ?kernel (Codec.get_str32 cur) in
    (match mode with
     | Some m when Engine.mode engine <> m ->
       invalid_arg "Shard.parse_export: mode mismatch"
     | _ -> ());
    let conn_blocked = Codec.get_bool cur in
    let reported = Bitset.of_string (Codec.get_str32 cur) in
    let conn_tokens = Codec.get_i64 cur in
    let conn_verdicts = Codec.get_i64 cur in
    if conn_tokens < 0 || conn_verdicts < 0 then
      invalid_arg "Shard.parse_export: negative flow counter";
    Codec.finish cur;
    { engine; conn_blocked; reported; conn_tokens; conn_verdicts }
  with
  | c -> c
  | exception Codec.Corrupt msg ->
    invalid_arg ("Shard.parse_export: " ^ msg)

(* Infallible by design: validation happened in {!parse_export} on the
   front side, so adopting on a worker domain cannot poison it.  The
   shard's ruleset is not consulted — the imported engine carries its
   own (possibly older-generation) ruleset until the next rule update. *)
let adopt t ~conn_id c =
  Hashtbl.replace t.conns conn_id c;
  Obs.add_gauge obs_connections 1

(* ---------- footprint accounting -------------------------------------- *)

let conn_count t = Hashtbl.length t.conns

let footprint_bytes t =
  Hashtbl.fold
    (fun _ c acc ->
       acc + Engine.footprint_bytes c.engine
       + Bitset.footprint_bytes c.reported
       + 8 * (Sys.word_size / 8))
    t.conns 0
