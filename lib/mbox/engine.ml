open Bbx_dpienc
open Bbx_rules
open Bbx_tokenizer
module Obs = Bbx_obs.Obs

let obs_hits = Obs.counter "bbx_engine_keyword_hits_total"
let obs_recoveries = Obs.counter "bbx_engine_key_recoveries_total"
let obs_escalations = Obs.counter "bbx_tier_escalations_total"
let obs_plain_bytes = Obs.counter "bbx_tier_plain_bytes_total"
let obs_confirms = Obs.counter "bbx_tier_regex_confirms_total"
let obs_exhausted = Obs.counter "bbx_tier_budget_exhausted_total"
let obs_flagged = Obs.counter "bbx_tier_flagged_total"
let obs_dropped = Obs.counter "bbx_tier_records_dropped_total"

type detail = [ `Exact_hit | `Composite_match | `Regex_match | `Budget_exceeded ]

let detail_name = function
  | `Exact_hit -> "exact-hit"
  | `Composite_match -> "composite-match"
  | `Regex_match -> "regex-match"
  | `Budget_exceeded -> "budget-exceeded"

type verdict = {
  rule_idx : int;
  rule : Rule.t;
  via : [ `Exact_match | `Probable_cause ];
  detail : detail;
}

type budget = { max_plain_bytes : int; max_scan_ms : int }

let default_budget = { max_plain_bytes = 1 lsl 22; max_scan_ms = 0 }

(* Per-chunk hit evidence, kept in two shapes: the offset list (newest
   first) feeds [keyword_hits]'s ordered report, the hash-set gives
   [content_candidates] O(1) membership instead of a [List.mem] scan that
   was quadratic in hit count for multi-chunk content rules. *)
type hit_set = {
  mutable offsets : int list;
  seen : (int, unit) Hashtbl.t;
}

(* The Aho-Corasick prefilter over the recovered plaintext: one automaton
   for all distinct (lowercased) content patterns of decrypt-tier rules.
   A Protocol III rule only pays a [Classify.matches_plaintext] confirm
   once every one of its patterns has appeared somewhere in the stream —
   a necessary condition for the full rule to match, so the filter can
   never suppress a true verdict. *)
type prefilter = {
  ac : Bbx_ac.Aho_corasick.t;
  maxlen : int;                       (* longest pattern, for scan overlap *)
  seen_pat : Bytes.t;                 (* pattern id -> seen in stream? *)
}

type t = {
  mode : Dpienc.mode;
  index : Bbx_detect.Detect.index_backend;         (* backend for every
                                                      detect (re)build *)
  tier : Classify.protocol_class;              (* highest protocol executed *)
  budget : budget;
  direction : string;                          (* record-layer direction of
                                                  the inspected stream *)
  mutable rules : Rule.t array;
  mutable classes : Classify.protocol_class array; (* rule_idx -> class *)
  mutable chunks : string array;               (* chunk_id -> chunk bytes *)
  mutable encs : string array;                 (* chunk_id -> AES_k(chunk), kept for
                                                  tree rebuilds on rule removal *)
  chunk_ids : (string, int) Hashtbl.t;         (* chunk bytes -> chunk_id *)
  mutable detect : Bbx_detect.Detect.t;
  mutable salt0 : int;                         (* current salt epoch *)
  hits : (int, hit_set) Hashtbl.t;             (* chunk_id -> stream offsets *)
  mutable hit_count : int;                     (* monotonic, survives [reset] *)
  mutable recovered : string option;
  (* --- escalation state (all of it survives [reset]: probable cause and
     everything derived from it are connection-lifetime facts) --- *)
  decided : (int, detail) Hashtbl.t;           (* rule_idx -> final verdict *)
  gate_seen : (int, unit) Hashtbl.t;           (* rule_idx -> keyword gate
                                                  passed at some point *)
  mutable pending : string list;               (* sealed records, newest first,
                                                  awaiting key recovery *)
  mutable pending_est : int;                   (* estimated plaintext bytes in
                                                  [pending] *)
  mutable reader : Bbx_tls.Record.t option;    (* record-layer state, created
                                                  at recovery *)
  plain : Buffer.t;                            (* recovered plaintext so far *)
  mutable plain_cache : string option;
  mutable prefilter : prefilter option;
  mutable rule_needs : int list array;         (* rule_idx -> prefilter pattern
                                                  ids it must see ([] = none) *)
  mutable ac_scanned : int;                    (* [plain] prefix already swept *)
  mutable scan_ns : int;                       (* cumulative confirm time *)
  mutable exhausted : bool;                    (* sticky: budget blown or
                                                  record stream undecryptable *)
}

let distinct_chunks rules =
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun r ->
       List.iter
         (fun kw ->
            List.iter
              (fun (chunk, _) ->
                 if not (Hashtbl.mem seen chunk) then begin
                   Hashtbl.add seen chunk (Hashtbl.length seen);
                   order := chunk :: !order
                 end)
              (Tokenizer.keyword_chunks kw))
         (Rule.keywords r))
    rules;
  Array.of_list (List.rev !order)

(* (Re)build the Protocol III prefilter from the current rule array.
   Resets the scan cursor so the next pump re-sweeps the whole stream
   against the new automaton. *)
let rebuild_prefilter t =
  t.classes <- Array.map Classify.classify t.rules;
  let pat_ids = Hashtbl.create 64 in
  let pats = ref [] in
  let id_of p =
    let p = String.lowercase_ascii p in
    match Hashtbl.find_opt pat_ids p with
    | Some id -> id
    | None ->
      let id = Hashtbl.length pat_ids in
      Hashtbl.replace pat_ids p id;
      pats := p :: !pats;
      id
  in
  t.rule_needs <-
    Array.mapi
      (fun i r ->
         if t.classes.(i) <> Classify.Protocol_III then []
         else
           List.sort_uniq compare
             (List.map (fun (c : Rule.content) -> id_of c.Rule.pattern) r.Rule.contents))
      t.rules;
  let pats = Array.of_list (List.rev !pats) in
  t.prefilter <-
    (if Array.length pats = 0 then None
     else
       Some
         { ac = Bbx_ac.Aho_corasick.build pats;
           maxlen = Array.fold_left (fun m p -> max m (String.length p)) 0 pats;
           seen_pat = Bytes.make (Array.length pats) '\000' });
  t.ac_scanned <- 0

let create ?(index = Bbx_detect.Detect.Hash) ?(tier = Classify.Protocol_III)
    ?(budget = default_budget) ?(direction = "client->server") ~mode ~salt0
    ~rules ~enc_chunk () =
  let chunks = distinct_chunks rules in
  let encs = Array.map enc_chunk chunks in
  let chunk_ids = Hashtbl.create (max 16 (Array.length chunks)) in
  Array.iteri (fun i c -> Hashtbl.replace chunk_ids c i) chunks;
  let t =
    { mode;
      index;
      tier;
      budget;
      direction;
      rules = Array.of_list rules;
      classes = [||];
      chunks;
      encs;
      chunk_ids;
      detect = Bbx_detect.Detect.create ~index ~mode ~salt0 encs;
      salt0;
      hits = Hashtbl.create 256;
      hit_count = 0;
      recovered = None;
      decided = Hashtbl.create 16;
      gate_seen = Hashtbl.create 16;
      pending = [];
      pending_est = 0;
      reader = None;
      plain = Buffer.create 256;
      plain_cache = None;
      prefilter = None;
      rule_needs = [||];
      ac_scanned = 0;
      scan_ns = 0;
      exhausted = false }
  in
  rebuild_prefilter t;
  t

let tier t = t.tier

let mark_exhausted t =
  if not t.exhausted then begin
    t.exhausted <- true;
    Obs.incr obs_exhausted
  end

let record_hit t chunk_id offset =
  t.hit_count <- t.hit_count + 1;
  Obs.incr obs_hits;
  match Hashtbl.find_opt t.hits chunk_id with
  | Some hs ->
    hs.offsets <- offset :: hs.offsets;
    Hashtbl.replace hs.seen offset ()
  | None ->
    let hs = { offsets = [ offset ]; seen = Hashtbl.create 16 } in
    Hashtbl.replace hs.seen offset ();
    Hashtbl.add t.hits chunk_id hs

let handle_event t ev ~embed =
  record_hit t ev.Bbx_detect.Detect.kw_id ev.Bbx_detect.Detect.offset;
  if t.mode = Dpienc.Probable && t.recovered = None then begin
    match embed with
    | Some embed ->
      t.recovered <- Some (Bbx_detect.Detect.recover_key t.detect ~event:ev ~embed);
      Obs.incr obs_recoveries
    | None -> ()
  end

let process t tokens =
  List.iter
    (fun tok ->
       match Bbx_detect.Detect.process t.detect tok with
       | None -> ()
       | Some ev -> handle_event t ev ~embed:tok.Dpienc.embed)
    tokens

(* Streaming entry point: decode + detect in one pass over the wire bytes;
   the (rare) matching record's embed is the only substring materialised. *)
let process_wire t wire =
  Bbx_detect.Detect.process_stream t.detect wire ~f:(fun ev ~embed_pos ->
      let embed = if embed_pos < 0 then None else Some (String.sub wire embed_pos 16) in
      handle_event t ev ~embed)

let keyword_hits t =
  Hashtbl.fold
    (fun chunk_id hs acc ->
       List.fold_left (fun acc off -> (t.chunks.(chunk_id), off) :: acc) acc hs.offsets)
    t.hits []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

(* Monotonic count of keyword hits ever recorded (not reset by [reset]):
   callers track deltas across deliveries without folding the history. *)
let hit_count t = t.hit_count

let recovered_key t = t.recovered

(* ---------- Protocol III escalation: record retention + decryption ---- *)

let wants_records t =
  t.mode = Dpienc.Probable && Classify.rank t.tier >= 3

let record_stream t record =
  if wants_records t then begin
    if t.exhausted then Obs.incr obs_dropped
    else begin
      (* Conservative plaintext estimate: record minus framing/MAC and the
         1-byte frame tag.  The byte budget applies to retained-but-sealed
         records too, or a never-escalating flow would buffer unboundedly. *)
      let est = max 0 (String.length record - Bbx_tls.Record.overhead - 1) in
      if t.budget.max_plain_bytes > 0
      && Buffer.length t.plain + t.pending_est + est > t.budget.max_plain_bytes
      then begin
        (* Dropping a sealed record breaks the strict record-layer ordering
           for everything after it, so exhaustion is final. *)
        mark_exhausted t;
        Obs.incr obs_dropped
      end
      else begin
        t.pending <- record :: t.pending;
        t.pending_est <- t.pending_est + est
      end
    end
  end

let plain_str t =
  match t.plain_cache with
  | Some s -> s
  | None ->
    let s = Buffer.contents t.plain in
    t.plain_cache <- Some s;
    s

(* Sweep the not-yet-scanned suffix of [plain] through the prefilter
   automaton, with maxlen-1 bytes of overlap so matches spanning the old
   boundary are still seen (double counting is harmless: [seen_pat] is a
   bitmap). *)
let prefilter_scan t =
  match t.prefilter with
  | None -> ()
  | Some pf ->
    let total = Buffer.length t.plain in
    if t.ac_scanned < total then begin
      let start = max 0 (t.ac_scanned - (pf.maxlen - 1)) in
      let seg = String.lowercase_ascii (Buffer.sub t.plain start (total - start)) in
      List.iter
        (fun (pid, _) -> Bytes.set pf.seen_pat pid '\001')
        (Bbx_ac.Aho_corasick.search pf.ac seg);
      t.ac_scanned <- total
    end

let prefilter_candidate t rule_idx =
  match t.rule_needs.(rule_idx) with
  | [] -> true
  | ids ->
    (match t.prefilter with
     | None -> true
     | Some pf -> List.for_all (fun id -> Bytes.get pf.seen_pat id = '\001') ids)

(* Decrypt everything retained once [k_ssl] is recovered.  Record-layer
   decryption is strictly in-order from sequence 0, so any failure
   (tampering, a gap) makes the rest of the stream unrecoverable: degrade
   to exhausted — "flagged, not matched" — instead of raising on what may
   be a worker domain. *)
let pump t =
  if wants_records t && t.recovered <> None && t.pending <> [] then begin
    let reader =
      match t.reader with
      | Some r -> r
      | None ->
        let key = Option.get t.recovered in
        let r = Bbx_tls.Record.create ~key ~direction:t.direction in
        t.reader <- Some r;
        Obs.incr obs_escalations;
        r
    in
    let batch = List.rev t.pending in
    t.pending <- [];
    t.pending_est <- 0;
    List.iter
      (fun sealed ->
         if t.exhausted then Obs.incr obs_dropped
         else
           match Bbx_tls.Record.open_ reader sealed with
           | exception _ -> mark_exhausted t
           | pt ->
             (* strip the sender's 1-byte frame tag *)
             let body =
               if String.length pt > 0 then String.sub pt 1 (String.length pt - 1)
               else ""
             in
             Buffer.add_string t.plain body;
             t.plain_cache <- None;
             Obs.add obs_plain_bytes (String.length body);
             if t.budget.max_plain_bytes > 0
             && Buffer.length t.plain > t.budget.max_plain_bytes
             then mark_exhausted t)
      batch;
    prefilter_scan t
  end

let decrypted_stream t =
  pump t;
  if t.recovered = None || not (wants_records t) then None else Some (plain_str t)

let escalation t =
  if t.exhausted then `Exhausted
  else if t.recovered <> None then `Unlocked
  else if t.hit_count > 0 then `Gated
  else `Idle

(* Run the full-rule reference evaluation over the recovered stream,
   charging the time against the scan budget when one is configured. *)
let confirm t rule =
  Obs.incr obs_confirms;
  if t.budget.max_scan_ms <= 0 then Classify.matches_plaintext rule (plain_str t)
  else begin
    let t0 = Bbx_obs.Trace.now_ns () in
    let r = Classify.matches_plaintext rule (plain_str t) in
    t.scan_ns <- t.scan_ns + (Bbx_obs.Trace.now_ns () - t0);
    if t.scan_ns > t.budget.max_scan_ms * 1_000_000 then mark_exhausted t;
    r
  end

(* Candidate start positions for a content pattern: stream offsets where
   every one of its chunks matched at the right relative position.
   Membership tests go through each chunk's offset hash-set, so a rule
   with [r] extra chunks costs O(starts * r) lookups, not a scan of the
   full hit history per start.  The chunk->id table lives on [t]
   (maintained by [create]/[add_rules]) instead of being rebuilt on every
   [verdicts] call. *)
let content_candidates t =
  let hit_set chunk =
    match Hashtbl.find_opt t.chunk_ids chunk with
    | None -> None
    | Some id -> Hashtbl.find_opt t.hits id
  in
  let hit_at chunk off =
    match hit_set chunk with
    | None -> false
    | Some hs -> Hashtbl.mem hs.seen off
  in
  fun (c : Rule.content) ->
    match Tokenizer.keyword_chunks c.Rule.pattern with
    | [] -> []
    | (first_chunk, first_rel) :: rest ->
      (match hit_set first_chunk with
       | None -> []
       | Some hs ->
         let starts = List.map (fun off -> off - first_rel) hs.offsets in
         let starts = List.sort_uniq compare starts in
         List.filter
           (fun q ->
              q >= 0
              && List.for_all (fun (chunk, rel) -> hit_at chunk (q + rel)) rest)
           starts)

let verdicts ?plaintext t =
  pump t;
  let candidates = content_candidates t in
  let tier_rank = Classify.rank t.tier in
  let out = ref [] in
  let emit rule_idx rule detail =
    let via =
      match detail with
      | `Exact_hit | `Composite_match -> `Exact_match
      | `Regex_match | `Budget_exceeded -> `Probable_cause
    in
    out := { rule_idx; rule; via; detail } :: !out
  in
  let decide rule_idx rule detail =
    Hashtbl.replace t.decided rule_idx detail;
    emit rule_idx rule detail
  in
  Array.iteri
    (fun rule_idx rule ->
       let cls = t.classes.(rule_idx) in
       if Classify.rank cls <= tier_rank then begin
         match Hashtbl.find_opt t.decided rule_idx with
         | Some detail -> emit rule_idx rule detail
         | None ->
           match cls with
           | Classify.Protocol_I ->
             if rule.Rule.contents <> []
             && Classify.contents_satisfiable ~candidates rule.Rule.contents
             then decide rule_idx rule `Exact_hit
           | Classify.Protocol_II ->
             if rule.Rule.contents <> []
             && Classify.contents_satisfiable ~candidates rule.Rule.contents
             then decide rule_idx rule `Composite_match
           | Classify.Protocol_III ->
             (* Sticky keyword gate: the encrypted-side evidence that makes
                this rule worth escalating — its contents seen in order on
                the token stream, or (for pure-pcre rules) any probable
                cause on the flow. *)
             if not (Hashtbl.mem t.gate_seen rule_idx) then begin
               let gated =
                 if rule.Rule.contents = [] then t.recovered <> None
                 else Classify.contents_satisfiable ~candidates rule.Rule.contents
               in
               if gated then Hashtbl.replace t.gate_seen rule_idx ()
             end;
             (match plaintext with
              | Some payload ->
                (* Legacy caller-supplied plaintext takes precedence over
                   the recovered stream. *)
                if Classify.matches_plaintext rule payload then
                  decide rule_idx rule `Regex_match
              | None ->
                if t.recovered <> None && not t.exhausted
                && prefilter_candidate t rule_idx && confirm t rule
                then decide rule_idx rule `Regex_match
                else if t.exhausted && Hashtbl.mem t.gate_seen rule_idx then begin
                  Obs.incr obs_flagged;
                  decide rule_idx rule `Budget_exceeded
                end)
       end)
    t.rules;
  List.rev !out

(* Rule update on a live connection: only chunks not already covered go
   through (the caller's) rule preparation. *)
let add_rules t ~rules ~enc_chunk =
  let fresh =
    Array.to_list (distinct_chunks rules)
    |> List.filter (fun c -> not (Hashtbl.mem t.chunk_ids c))
  in
  let fresh_encs =
    List.mapi
      (fun i chunk ->
         let enc = enc_chunk chunk in
         let id = Bbx_detect.Detect.add_keyword t.detect enc in
         assert (id = Array.length t.chunks + i);
         Hashtbl.replace t.chunk_ids chunk id;
         enc)
      fresh
  in
  (* one append for the whole batch, not one O(n) copy per chunk *)
  t.chunks <- Array.append t.chunks (Array.of_list fresh);
  t.encs <- Array.append t.encs (Array.of_list fresh_encs);
  t.rules <- Array.append t.rules (Array.of_list rules);
  rebuild_prefilter t;
  List.length fresh

(* Removing rules shifts [verdict.rule_idx] values, so callers keeping
   per-rule state (the reported-rule hash sets) remap through the returned
   index map.  Chunks no longer needed by any retained rule leave the
   detection tree entirely — the tree is rebuilt from the kept encryptions
   under the current salt epoch, which restarts the retained keywords'
   salt counters; callers must follow with a sender-synchronised salt
   reset (Session/Fleet force one after every rule update anyway). *)
let remove_rules t ~sids =
  if sids = [] then ([], [||])
  else begin
    let drop = Hashtbl.create (List.length sids) in
    List.iter (fun s -> Hashtbl.replace drop s ()) sids;
    let keep_rule r =
      match r.Rule.sid with Some s -> not (Hashtbl.mem drop s) | None -> true
    in
    let remap = Array.make (Array.length t.rules) (-1) in
    let kept = ref [] and next = ref 0 in
    Array.iteri
      (fun i r ->
         if keep_rule r then begin
           remap.(i) <- !next;
           incr next;
           kept := r :: !kept
         end)
      t.rules;
    let kept = Array.of_list (List.rev !kept) in
    let needed = Hashtbl.create 64 in
    Array.iter (fun c -> Hashtbl.replace needed c ()) (distinct_chunks (Array.to_list kept));
    let removed = ref [] and kept_chunks = ref [] and kept_encs = ref [] in
    Array.iteri
      (fun i c ->
         if Hashtbl.mem needed c then begin
           kept_chunks := c :: !kept_chunks;
           kept_encs := t.encs.(i) :: !kept_encs
         end
         else removed := c :: !removed)
      t.chunks;
    t.rules <- kept;
    t.chunks <- Array.of_list (List.rev !kept_chunks);
    t.encs <- Array.of_list (List.rev !kept_encs);
    Hashtbl.reset t.chunk_ids;
    Array.iteri (fun i c -> Hashtbl.replace t.chunk_ids c i) t.chunks;
    t.detect <- Bbx_detect.Detect.create ~index:t.index ~mode:t.mode ~salt0:t.salt0 t.encs;
    Hashtbl.reset t.hits;
    (* Escalation state is keyed by rule index: rewrite it through the
       remap (dropped rules lose their entries). *)
    let rekey tbl =
      let moved = Hashtbl.fold (fun i v acc -> (i, v) :: acc) tbl [] in
      Hashtbl.reset tbl;
      List.iter
        (fun (i, v) ->
           if i < Array.length remap && remap.(i) >= 0 then
             Hashtbl.replace tbl remap.(i) v)
        moved
    in
    rekey t.decided;
    rekey t.gate_seen;
    rebuild_prefilter t;
    (List.rev !removed, remap)
  end

(* A salt reset rotates the token encryption only.  Per-chunk hit
   evidence is cleared (post-reset offsets would be incomparable with
   pre-reset ones anyway), but the escalation state deliberately
   survives: [recovered] — probable cause is a connection-lifetime fact;
   once the middlebox has lawfully recovered [k_ssl] a salt rotation does
   not un-recover it — plus everything downstream of it ([decided]
   verdicts, the sticky keyword gates, the retained/decrypted stream and
   the budget accounting) and [hit_count], the monotonic obs-visible hit
   accounting that callers delta across deliveries. *)
let reset t ~salt0 =
  t.salt0 <- salt0;
  Bbx_detect.Detect.reset t.detect ~salt0;
  Hashtbl.reset t.hits

let chunk_count t = Bbx_detect.Detect.size t.detect
