open Bbx_dpienc
open Bbx_rules
open Bbx_tokenizer

type verdict = {
  rule_idx : int;
  rule : Rule.t;
  via : [ `Exact_match | `Probable_cause ];
}

type t = {
  mode : Dpienc.mode;
  mutable rules : Rule.t array;
  mutable chunks : string array;               (* chunk_id -> chunk bytes *)
  detect : Bbx_detect.Detect.t;
  hits : (int, int list ref) Hashtbl.t;        (* chunk_id -> stream offsets *)
  mutable recovered : string option;
}

let distinct_chunks rules =
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun r ->
       List.iter
         (fun kw ->
            List.iter
              (fun (chunk, _) ->
                 if not (Hashtbl.mem seen chunk) then begin
                   Hashtbl.add seen chunk (Hashtbl.length seen);
                   order := chunk :: !order
                 end)
              (Tokenizer.keyword_chunks kw))
         (Rule.keywords r))
    rules;
  Array.of_list (List.rev !order)

let create ~mode ~salt0 ~rules ~enc_chunk =
  let chunks = distinct_chunks rules in
  let encs = Array.map enc_chunk chunks in
  { mode;
    rules = Array.of_list rules;
    chunks;
    detect = Bbx_detect.Detect.create ~mode ~salt0 encs;
    hits = Hashtbl.create 256;
    recovered = None }

let record_hit t chunk_id offset =
  match Hashtbl.find_opt t.hits chunk_id with
  | Some l -> l := offset :: !l
  | None -> Hashtbl.add t.hits chunk_id (ref [ offset ])

let handle_event t ev ~embed =
  record_hit t ev.Bbx_detect.Detect.kw_id ev.Bbx_detect.Detect.offset;
  if t.mode = Dpienc.Probable && t.recovered = None then begin
    match embed with
    | Some embed ->
      t.recovered <- Some (Bbx_detect.Detect.recover_key t.detect ~event:ev ~embed)
    | None -> ()
  end

let process t tokens =
  List.iter
    (fun tok ->
       match Bbx_detect.Detect.process t.detect tok with
       | None -> ()
       | Some ev -> handle_event t ev ~embed:tok.Dpienc.embed)
    tokens

(* Streaming entry point: decode + detect in one pass over the wire bytes;
   the (rare) matching record's embed is the only substring materialised. *)
let process_wire t wire =
  Bbx_detect.Detect.process_stream t.detect wire ~f:(fun ev ~embed_pos ->
      let embed = if embed_pos < 0 then None else Some (String.sub wire embed_pos 16) in
      handle_event t ev ~embed)

let keyword_hits t =
  Hashtbl.fold
    (fun chunk_id offsets acc ->
       List.fold_left (fun acc off -> (t.chunks.(chunk_id), off) :: acc) acc !offsets)
    t.hits []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let recovered_key t = t.recovered

(* Candidate start positions for a content pattern: stream offsets where
   every one of its chunks matched at the right relative position. *)
let content_candidates t =
  let chunk_id =
    let tbl = Hashtbl.create (Array.length t.chunks) in
    Array.iteri (fun i c -> Hashtbl.replace tbl c i) t.chunks;
    fun c -> Hashtbl.find_opt tbl c
  in
  let offsets_of chunk =
    match chunk_id chunk with
    | None -> []
    | Some id ->
      (match Hashtbl.find_opt t.hits id with Some l -> !l | None -> [])
  in
  fun (c : Rule.content) ->
    match Tokenizer.keyword_chunks c.Rule.pattern with
    | [] -> []
    | (first_chunk, first_rel) :: rest ->
      let starts = List.map (fun off -> off - first_rel) (offsets_of first_chunk) in
      let starts = List.sort_uniq compare starts in
      List.filter
        (fun q ->
           q >= 0
           && List.for_all (fun (chunk, rel) -> List.mem (q + rel) (offsets_of chunk)) rest)
        starts

let verdicts ?plaintext t =
  let candidates = content_candidates t in
  let out = ref [] in
  Array.iteri
    (fun rule_idx rule ->
       match rule.Rule.pcre with
       | None ->
         if rule.Rule.contents <> []
         && Classify.contents_satisfiable ~candidates rule.Rule.contents then
           out := { rule_idx; rule; via = `Exact_match } :: !out
       | Some _ ->
         (* Protocol III rule: needs the decrypted stream. *)
         (match plaintext with
          | Some payload when Classify.matches_plaintext rule payload ->
            out := { rule_idx; rule; via = `Probable_cause } :: !out
          | _ -> ()))
    t.rules;
  List.rev !out

(* Rule update on a live connection: only chunks not already covered go
   through (the caller's) rule preparation. *)
let add_rules t ~rules ~enc_chunk =
  let known = Hashtbl.create (Array.length t.chunks) in
  Array.iter (fun c -> Hashtbl.replace known c ()) t.chunks;
  let fresh =
    Array.to_list (distinct_chunks rules)
    |> List.filter (fun c -> not (Hashtbl.mem known c))
  in
  List.iteri
    (fun i chunk ->
       let id = Bbx_detect.Detect.add_keyword t.detect (enc_chunk chunk) in
       assert (id = Array.length t.chunks + i))
    fresh;
  (* one append for the whole batch, not one O(n) copy per chunk *)
  t.chunks <- Array.append t.chunks (Array.of_list fresh);
  t.rules <- Array.append t.rules (Array.of_list rules);
  List.length fresh

let reset t ~salt0 =
  Bbx_detect.Detect.reset t.detect ~salt0;
  Hashtbl.reset t.hits

let chunk_count t = Bbx_detect.Detect.size t.detect
