open Bbx_dpienc
open Bbx_rules
open Bbx_tokenizer
module Obs = Bbx_obs.Obs

let obs_hits = Obs.counter "bbx_engine_keyword_hits_total"
let obs_recoveries = Obs.counter "bbx_engine_key_recoveries_total"

type verdict = {
  rule_idx : int;
  rule : Rule.t;
  via : [ `Exact_match | `Probable_cause ];
}

(* Per-chunk hit evidence, kept in two shapes: the offset list (newest
   first) feeds [keyword_hits]'s ordered report, the hash-set gives
   [content_candidates] O(1) membership instead of a [List.mem] scan that
   was quadratic in hit count for multi-chunk content rules. *)
type hit_set = {
  mutable offsets : int list;
  seen : (int, unit) Hashtbl.t;
}

type t = {
  mode : Dpienc.mode;
  index : Bbx_detect.Detect.index_backend;         (* backend for every
                                                      detect (re)build *)
  mutable rules : Rule.t array;
  mutable chunks : string array;               (* chunk_id -> chunk bytes *)
  mutable encs : string array;                 (* chunk_id -> AES_k(chunk), kept for
                                                  tree rebuilds on rule removal *)
  chunk_ids : (string, int) Hashtbl.t;         (* chunk bytes -> chunk_id *)
  mutable detect : Bbx_detect.Detect.t;
  mutable salt0 : int;                         (* current salt epoch *)
  hits : (int, hit_set) Hashtbl.t;             (* chunk_id -> stream offsets *)
  mutable hit_count : int;                     (* monotonic, survives [reset] *)
  mutable recovered : string option;
}

let distinct_chunks rules =
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun r ->
       List.iter
         (fun kw ->
            List.iter
              (fun (chunk, _) ->
                 if not (Hashtbl.mem seen chunk) then begin
                   Hashtbl.add seen chunk (Hashtbl.length seen);
                   order := chunk :: !order
                 end)
              (Tokenizer.keyword_chunks kw))
         (Rule.keywords r))
    rules;
  Array.of_list (List.rev !order)

let create ?(index = Bbx_detect.Detect.Hash) ~mode ~salt0 ~rules ~enc_chunk () =
  let chunks = distinct_chunks rules in
  let encs = Array.map enc_chunk chunks in
  let chunk_ids = Hashtbl.create (max 16 (Array.length chunks)) in
  Array.iteri (fun i c -> Hashtbl.replace chunk_ids c i) chunks;
  { mode;
    index;
    rules = Array.of_list rules;
    chunks;
    encs;
    chunk_ids;
    detect = Bbx_detect.Detect.create ~index ~mode ~salt0 encs;
    salt0;
    hits = Hashtbl.create 256;
    hit_count = 0;
    recovered = None }

let record_hit t chunk_id offset =
  t.hit_count <- t.hit_count + 1;
  Obs.incr obs_hits;
  match Hashtbl.find_opt t.hits chunk_id with
  | Some hs ->
    hs.offsets <- offset :: hs.offsets;
    Hashtbl.replace hs.seen offset ()
  | None ->
    let hs = { offsets = [ offset ]; seen = Hashtbl.create 16 } in
    Hashtbl.replace hs.seen offset ();
    Hashtbl.add t.hits chunk_id hs

let handle_event t ev ~embed =
  record_hit t ev.Bbx_detect.Detect.kw_id ev.Bbx_detect.Detect.offset;
  if t.mode = Dpienc.Probable && t.recovered = None then begin
    match embed with
    | Some embed ->
      t.recovered <- Some (Bbx_detect.Detect.recover_key t.detect ~event:ev ~embed);
      Obs.incr obs_recoveries
    | None -> ()
  end

let process t tokens =
  List.iter
    (fun tok ->
       match Bbx_detect.Detect.process t.detect tok with
       | None -> ()
       | Some ev -> handle_event t ev ~embed:tok.Dpienc.embed)
    tokens

(* Streaming entry point: decode + detect in one pass over the wire bytes;
   the (rare) matching record's embed is the only substring materialised. *)
let process_wire t wire =
  Bbx_detect.Detect.process_stream t.detect wire ~f:(fun ev ~embed_pos ->
      let embed = if embed_pos < 0 then None else Some (String.sub wire embed_pos 16) in
      handle_event t ev ~embed)

let keyword_hits t =
  Hashtbl.fold
    (fun chunk_id hs acc ->
       List.fold_left (fun acc off -> (t.chunks.(chunk_id), off) :: acc) acc hs.offsets)
    t.hits []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

(* Monotonic count of keyword hits ever recorded (not reset by [reset]):
   callers track deltas across deliveries without folding the history. *)
let hit_count t = t.hit_count

let recovered_key t = t.recovered

(* Candidate start positions for a content pattern: stream offsets where
   every one of its chunks matched at the right relative position.
   Membership tests go through each chunk's offset hash-set, so a rule
   with [r] extra chunks costs O(starts * r) lookups, not a scan of the
   full hit history per start.  The chunk->id table lives on [t]
   (maintained by [create]/[add_rules]) instead of being rebuilt on every
   [verdicts] call. *)
let content_candidates t =
  let hit_set chunk =
    match Hashtbl.find_opt t.chunk_ids chunk with
    | None -> None
    | Some id -> Hashtbl.find_opt t.hits id
  in
  let hit_at chunk off =
    match hit_set chunk with
    | None -> false
    | Some hs -> Hashtbl.mem hs.seen off
  in
  fun (c : Rule.content) ->
    match Tokenizer.keyword_chunks c.Rule.pattern with
    | [] -> []
    | (first_chunk, first_rel) :: rest ->
      (match hit_set first_chunk with
       | None -> []
       | Some hs ->
         let starts = List.map (fun off -> off - first_rel) hs.offsets in
         let starts = List.sort_uniq compare starts in
         List.filter
           (fun q ->
              q >= 0
              && List.for_all (fun (chunk, rel) -> hit_at chunk (q + rel)) rest)
           starts)

let verdicts ?plaintext t =
  let candidates = content_candidates t in
  let out = ref [] in
  Array.iteri
    (fun rule_idx rule ->
       match rule.Rule.pcre with
       | None ->
         if rule.Rule.contents <> []
         && Classify.contents_satisfiable ~candidates rule.Rule.contents then
           out := { rule_idx; rule; via = `Exact_match } :: !out
       | Some _ ->
         (* Protocol III rule: needs the decrypted stream. *)
         (match plaintext with
          | Some payload when Classify.matches_plaintext rule payload ->
            out := { rule_idx; rule; via = `Probable_cause } :: !out
          | _ -> ()))
    t.rules;
  List.rev !out

(* Rule update on a live connection: only chunks not already covered go
   through (the caller's) rule preparation. *)
let add_rules t ~rules ~enc_chunk =
  let fresh =
    Array.to_list (distinct_chunks rules)
    |> List.filter (fun c -> not (Hashtbl.mem t.chunk_ids c))
  in
  let fresh_encs =
    List.mapi
      (fun i chunk ->
         let enc = enc_chunk chunk in
         let id = Bbx_detect.Detect.add_keyword t.detect enc in
         assert (id = Array.length t.chunks + i);
         Hashtbl.replace t.chunk_ids chunk id;
         enc)
      fresh
  in
  (* one append for the whole batch, not one O(n) copy per chunk *)
  t.chunks <- Array.append t.chunks (Array.of_list fresh);
  t.encs <- Array.append t.encs (Array.of_list fresh_encs);
  t.rules <- Array.append t.rules (Array.of_list rules);
  List.length fresh

(* Removing rules shifts [verdict.rule_idx] values, so callers keeping
   per-rule state (the reported-rule hash sets) remap through the returned
   index map.  Chunks no longer needed by any retained rule leave the
   detection tree entirely — the tree is rebuilt from the kept encryptions
   under the current salt epoch, which restarts the retained keywords'
   salt counters; callers must follow with a sender-synchronised salt
   reset (Session/Fleet force one after every rule update anyway). *)
let remove_rules t ~sids =
  if sids = [] then ([], [||])
  else begin
    let drop = Hashtbl.create (List.length sids) in
    List.iter (fun s -> Hashtbl.replace drop s ()) sids;
    let keep_rule r =
      match r.Rule.sid with Some s -> not (Hashtbl.mem drop s) | None -> true
    in
    let remap = Array.make (Array.length t.rules) (-1) in
    let kept = ref [] and next = ref 0 in
    Array.iteri
      (fun i r ->
         if keep_rule r then begin
           remap.(i) <- !next;
           incr next;
           kept := r :: !kept
         end)
      t.rules;
    let kept = Array.of_list (List.rev !kept) in
    let needed = Hashtbl.create 64 in
    Array.iter (fun c -> Hashtbl.replace needed c ()) (distinct_chunks (Array.to_list kept));
    let removed = ref [] and kept_chunks = ref [] and kept_encs = ref [] in
    Array.iteri
      (fun i c ->
         if Hashtbl.mem needed c then begin
           kept_chunks := c :: !kept_chunks;
           kept_encs := t.encs.(i) :: !kept_encs
         end
         else removed := c :: !removed)
      t.chunks;
    t.rules <- kept;
    t.chunks <- Array.of_list (List.rev !kept_chunks);
    t.encs <- Array.of_list (List.rev !kept_encs);
    Hashtbl.reset t.chunk_ids;
    Array.iteri (fun i c -> Hashtbl.replace t.chunk_ids c i) t.chunks;
    t.detect <- Bbx_detect.Detect.create ~index:t.index ~mode:t.mode ~salt0:t.salt0 t.encs;
    Hashtbl.reset t.hits;
    (List.rev !removed, remap)
  end

(* A salt reset rotates the token encryption only.  Per-chunk hit
   evidence is cleared (post-reset offsets would be incomparable with
   pre-reset ones anyway), but two pieces of state deliberately survive:
   [recovered] — probable cause is a connection-lifetime fact; once the
   middlebox has lawfully recovered [k_ssl] a salt rotation does not
   un-recover it — and [hit_count], the monotonic obs-visible hit
   accounting that callers delta across deliveries. *)
let reset t ~salt0 =
  t.salt0 <- salt0;
  Bbx_detect.Detect.reset t.detect ~salt0;
  Hashtbl.reset t.hits

let chunk_count t = Bbx_detect.Detect.size t.detect
