open Bbx_dpienc
open Bbx_rules
open Bbx_tokenizer
module Obs = Bbx_obs.Obs

let obs_hits = Obs.counter "bbx_engine_keyword_hits_total"
let obs_recoveries = Obs.counter "bbx_engine_key_recoveries_total"
let obs_escalations = Obs.counter "bbx_tier_escalations_total"
let obs_plain_bytes = Obs.counter "bbx_tier_plain_bytes_total"
let obs_confirms = Obs.counter "bbx_tier_regex_confirms_total"
let obs_exhausted = Obs.counter "bbx_tier_budget_exhausted_total"
let obs_flagged = Obs.counter "bbx_tier_flagged_total"
let obs_dropped = Obs.counter "bbx_tier_records_dropped_total"

type detail = [ `Exact_hit | `Composite_match | `Regex_match | `Budget_exceeded ]

let detail_name = function
  | `Exact_hit -> "exact-hit"
  | `Composite_match -> "composite-match"
  | `Regex_match -> "regex-match"
  | `Budget_exceeded -> "budget-exceeded"

type verdict = {
  rule_idx : int;
  rule : Rule.t;
  via : [ `Exact_match | `Probable_cause ];
  detail : detail;
}

type budget = { max_plain_bytes : int; max_scan_ms : int }

let default_budget = { max_plain_bytes = 1 lsl 22; max_scan_ms = 0 }

(* Per-chunk hit evidence: a growable int array of stream offsets in
   arrival order.  Arrival order is ascending on any well-formed stream,
   so membership ([content_candidates]) is a binary search; a client
   sending non-monotonic offsets merely clears [sorted] and degrades that
   chunk to a linear scan.  Replaces the previous offsets-list +
   per-offset hash-set pair (~10 words per hit) with 1 word per hit. *)
type hitvec = {
  mutable ha : int array;
  mutable hn : int;
  mutable sorted : bool;
}

let hitvec () = { ha = [||]; hn = 0; sorted = true }

let hitvec_push hv off =
  if hv.hn = Array.length hv.ha then begin
    let grown = Array.make (max 8 (2 * hv.hn)) 0 in
    Array.blit hv.ha 0 grown 0 hv.hn;
    hv.ha <- grown
  end;
  if hv.hn > 0 && off < hv.ha.(hv.hn - 1) then hv.sorted <- false;
  hv.ha.(hv.hn) <- off;
  hv.hn <- hv.hn + 1

let hitvec_mem hv off =
  if hv.sorted then begin
    let lo = ref 0 and hi = ref hv.hn in
    while !hi - !lo > 0 do
      let mid = (!lo + !hi) / 2 in
      if hv.ha.(mid) < off then lo := mid + 1 else hi := mid
    done;
    !lo < hv.hn && hv.ha.(!lo) = off
  end
  else begin
    let found = ref false in
    for i = 0 to hv.hn - 1 do
      if hv.ha.(i) = off then found := true
    done;
    !found
  end

(* The Aho-Corasick prefilter over the recovered plaintext: one automaton
   for all distinct (lowercased) content patterns of decrypt-tier rules.
   A Protocol III rule only pays a [Classify.matches_plaintext] confirm
   once every one of its patterns has appeared somewhere in the stream —
   a necessary condition for the full rule to match, so the filter can
   never suppress a true verdict. *)
type prefilter = {
  ac : Bbx_ac.Aho_corasick.t;
  maxlen : int;                       (* longest pattern, for scan overlap *)
  seen_pat : Bytes.t;                 (* pattern id -> seen in stream? *)
}

(* Everything the prefilter derives from the ruleset alone: protocol
   classes, the automaton over Protocol III content patterns, and each
   rule's pattern-id needs.  Immutable after construction — the search
   loop never writes the automaton and the arrays are replaced wholesale,
   never element-written — so one prep serves a whole fleet of engines
   (the automaton's dense transition tables are ~2 KiB per trie node,
   by far the largest per-connection structure when not shared). *)
type prefilter_prep = {
  pp_nrules : int;                            (* ruleset length, for validation *)
  pp_classes : Classify.protocol_class array; (* rule_idx -> class *)
  pp_rule_needs : int list array;             (* rule_idx -> pattern ids *)
  pp_ac : (Bbx_ac.Aho_corasick.t * int) option;  (* automaton, longest pattern *)
  pp_npats : int;
}

(* Per-rule escalation state is two byte tables indexed by rule_idx
   (previously two hashtables): [decided] holds 0 for undecided or
   [detail_byte + 1]; [gates] holds 0/1 for the sticky keyword gate. *)
let detail_byte = function
  | `Exact_hit -> 0
  | `Composite_match -> 1
  | `Regex_match -> 2
  | `Budget_exceeded -> 3

let detail_of_byte = function
  | 0 -> `Exact_hit
  | 1 -> `Composite_match
  | 2 -> `Regex_match
  | 3 -> `Budget_exceeded
  | b -> invalid_arg (Printf.sprintf "Engine: bad detail byte %d" b)

type t = {
  mode : Dpienc.mode;
  index : Bbx_detect.Detect.index_backend;         (* backend for every
                                                      detect (re)build *)
  tier : Classify.protocol_class;              (* highest protocol executed *)
  budget : budget;
  direction : string;                          (* record-layer direction of
                                                  the inspected stream *)
  kernel : Dpienc.aes_kernel;                  (* AES path for tier-3 record
                                                  decryption (CTR keystream) *)
  mutable rules : Rule.t array;
  mutable classes : Classify.protocol_class array; (* rule_idx -> class *)
  mutable chunks : string array;               (* chunk_id -> chunk bytes *)
  mutable encs : string array;                 (* chunk_id -> AES_k(chunk), kept for
                                                  tree rebuilds on rule removal *)
  chunk_ids : (string, int) Hashtbl.t;         (* chunk bytes -> chunk_id *)
  mutable detect : Bbx_detect.Detect.t;
  mutable salt0 : int;                         (* current salt epoch *)
  mutable hits : hitvec array;                 (* chunk_id -> stream offsets *)
  mutable hit_count : int;                     (* monotonic, survives [reset] *)
  mutable recovered : string option;
  (* --- escalation state (all of it survives [reset]: probable cause and
     everything derived from it are connection-lifetime facts) --- *)
  mutable decided : Bytes.t;                   (* rule_idx -> 0 | detail + 1 *)
  mutable gates : Bytes.t;                     (* rule_idx -> keyword gate
                                                  passed at some point *)
  mutable pending : string list;               (* sealed records, newest first,
                                                  awaiting key recovery *)
  mutable pending_est : int;                   (* estimated plaintext bytes in
                                                  [pending] *)
  mutable reader : Bbx_tls.Record.t option;    (* record-layer state, created
                                                  at recovery *)
  plain : Buffer.t;                            (* recovered plaintext so far *)
  mutable plain_cache : string option;
  mutable prefilter : prefilter option;
  mutable pf_shared : bool;                    (* automaton borrowed from a
                                                  fleet-shared prep? *)
  mutable rule_needs : int list array;         (* rule_idx -> prefilter pattern
                                                  ids it must see ([] = none) *)
  mutable ac_scanned : int;                    (* [plain] prefix already swept *)
  mutable scan_ns : int;                       (* cumulative confirm time *)
  mutable exhausted : bool;                    (* sticky: budget blown or
                                                  record stream undecryptable *)
}

let distinct_chunks rules =
  let seen = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun r ->
       List.iter
         (fun kw ->
            List.iter
              (fun (chunk, _) ->
                 if not (Hashtbl.mem seen chunk) then begin
                   Hashtbl.add seen chunk (Hashtbl.length seen);
                   order := chunk :: !order
                 end)
              (Tokenizer.keyword_chunks kw))
         (Rule.keywords r))
    rules;
  Array.of_list (List.rev !order)

(* Compute the Protocol III prefilter prep from a rule array.  Pure:
   the result is installable into any engine running this ruleset. *)
let prepare_prefilter_arr rules =
  let classes = Array.map Classify.classify rules in
  let pat_ids = Hashtbl.create 64 in
  let pats = ref [] in
  let id_of p =
    let p = String.lowercase_ascii p in
    match Hashtbl.find_opt pat_ids p with
    | Some id -> id
    | None ->
      let id = Hashtbl.length pat_ids in
      Hashtbl.replace pat_ids p id;
      pats := p :: !pats;
      id
  in
  let rule_needs =
    Array.mapi
      (fun i r ->
         if classes.(i) <> Classify.Protocol_III then []
         else
           List.sort_uniq compare
             (List.map (fun (c : Rule.content) -> id_of c.Rule.pattern) r.Rule.contents))
      rules
  in
  let pats = Array.of_list (List.rev !pats) in
  { pp_nrules = Array.length rules;
    pp_classes = classes;
    pp_rule_needs = rule_needs;
    pp_ac =
      (if Array.length pats = 0 then None
       else
         Some
           ( Bbx_ac.Aho_corasick.build pats,
             Array.fold_left (fun m p -> max m (String.length p)) 0 pats ));
    pp_npats = Array.length pats }

let prepare_prefilter rules = prepare_prefilter_arr (Array.of_list rules)

(* Install a prep into this engine.  [shared] records whether the
   automaton is borrowed (fleet-owned) or this engine's own, which only
   affects footprint accounting.  The [seen_pat] bitmap is always fresh
   per connection.  Resets the scan cursor so the next pump re-sweeps the
   whole stream against the new automaton. *)
let install_prefilter t ~shared pp =
  t.classes <- pp.pp_classes;
  t.rule_needs <- pp.pp_rule_needs;
  t.prefilter <-
    (match pp.pp_ac with
     | None -> None
     | Some (ac, maxlen) ->
       Some { ac; maxlen; seen_pat = Bytes.make pp.pp_npats '\000' });
  t.pf_shared <- shared;
  t.ac_scanned <- 0

(* (Re)build the prefilter from the current rule array (rule updates,
   restore): the engine owns the result. *)
let rebuild_prefilter t =
  install_prefilter t ~shared:false (prepare_prefilter_arr t.rules)

let create ?(index = Bbx_detect.Detect.Hash) ?(tier = Classify.Protocol_III)
    ?(budget = default_budget) ?(direction = "client->server")
    ?(kernel = Dpienc.Scalar) ?prepared ?keys ?prefilter ~mode ~salt0 ~rules
    ~enc_chunk () =
  let chunks, encs =
    match prepared with
    | Some (chunks, encs) ->
      (* shared prep: the caller guarantees [chunks = distinct_chunks rules]
         and [encs.(i) = enc_chunk chunks.(i)] — both arrays are borrowed
         read-only, so a fleet pays for them once, not per connection *)
      if Array.length chunks <> Array.length encs then
        invalid_arg "Engine.create: prepared chunk/enc length mismatch";
      (chunks, encs)
    | None ->
      let chunks = distinct_chunks rules in
      (chunks, Array.map enc_chunk chunks)
  in
  let chunk_ids = Hashtbl.create (max 16 (Array.length chunks)) in
  Array.iteri (fun i c -> Hashtbl.replace chunk_ids c i) chunks;
  let rules = Array.of_list rules in
  let t =
    { mode;
      index;
      tier;
      budget;
      direction;
      kernel;
      rules;
      classes = [||];
      chunks;
      encs;
      chunk_ids;
      detect = Bbx_detect.Detect.create ~index ?keys ~mode ~salt0 encs;
      salt0;
      hits = Array.init (Array.length chunks) (fun _ -> hitvec ());
      hit_count = 0;
      recovered = None;
      decided = Bytes.make (Array.length rules) '\000';
      gates = Bytes.make (Array.length rules) '\000';
      pending = [];
      pending_est = 0;
      reader = None;
      plain = Buffer.create 256;
      plain_cache = None;
      prefilter = None;
      pf_shared = false;
      rule_needs = [||];
      ac_scanned = 0;
      scan_ns = 0;
      exhausted = false }
  in
  (match prefilter with
   | Some pp ->
     if pp.pp_nrules <> Array.length rules then
       invalid_arg "Engine.create: shared prefilter rule count mismatch";
     install_prefilter t ~shared:true pp
   | None -> rebuild_prefilter t);
  t

let tier t = t.tier
let mode t = t.mode

let mark_exhausted t =
  if not t.exhausted then begin
    t.exhausted <- true;
    Obs.incr obs_exhausted
  end

let record_hit t chunk_id offset =
  t.hit_count <- t.hit_count + 1;
  Obs.incr obs_hits;
  hitvec_push t.hits.(chunk_id) offset

let handle_event t ev ~embed =
  record_hit t ev.Bbx_detect.Detect.kw_id ev.Bbx_detect.Detect.offset;
  if t.mode = Dpienc.Probable && t.recovered = None then begin
    match embed with
    | Some embed ->
      t.recovered <- Some (Bbx_detect.Detect.recover_key t.detect ~event:ev ~embed);
      Obs.incr obs_recoveries
    | None -> ()
  end

let process t tokens =
  List.iter
    (fun tok ->
       match Bbx_detect.Detect.process t.detect tok with
       | None -> ()
       | Some ev -> handle_event t ev ~embed:tok.Dpienc.embed)
    tokens

(* Streaming entry point: decode + detect in one pass over the wire bytes;
   the (rare) matching record's embed is the only substring materialised. *)
let process_wire t wire =
  Bbx_detect.Detect.process_stream t.detect wire ~f:(fun ev ~embed_pos ->
      let embed = if embed_pos < 0 then None else Some (String.sub wire embed_pos 16) in
      handle_event t ev ~embed)

let keyword_hits t =
  let acc = ref [] in
  for chunk_id = Array.length t.hits - 1 downto 0 do
    let hv = t.hits.(chunk_id) in
    for i = hv.hn - 1 downto 0 do
      acc := (t.chunks.(chunk_id), hv.ha.(i)) :: !acc
    done
  done;
  List.sort (fun (_, a) (_, b) -> compare a b) !acc

(* Monotonic count of keyword hits ever recorded (not reset by [reset]):
   callers track deltas across deliveries without folding the history. *)
let hit_count t = t.hit_count

let recovered_key t = t.recovered

(* ---------- Protocol III escalation: record retention + decryption ---- *)

let wants_records t =
  t.mode = Dpienc.Probable && Classify.rank t.tier >= 3

let record_stream t record =
  if wants_records t then begin
    if t.exhausted then Obs.incr obs_dropped
    else begin
      (* Conservative plaintext estimate: record minus framing/MAC and the
         1-byte frame tag.  The byte budget applies to retained-but-sealed
         records too, or a never-escalating flow would buffer unboundedly. *)
      let est = max 0 (String.length record - Bbx_tls.Record.overhead - 1) in
      if t.budget.max_plain_bytes > 0
      && Buffer.length t.plain + t.pending_est + est > t.budget.max_plain_bytes
      then begin
        (* Dropping a sealed record breaks the strict record-layer ordering
           for everything after it, so exhaustion is final. *)
        mark_exhausted t;
        Obs.incr obs_dropped
      end
      else begin
        t.pending <- record :: t.pending;
        t.pending_est <- t.pending_est + est
      end
    end
  end

let plain_str t =
  match t.plain_cache with
  | Some s -> s
  | None ->
    let s = Buffer.contents t.plain in
    t.plain_cache <- Some s;
    s

(* Sweep the not-yet-scanned suffix of [plain] through the prefilter
   automaton, with maxlen-1 bytes of overlap so matches spanning the old
   boundary are still seen (double counting is harmless: [seen_pat] is a
   bitmap). *)
let prefilter_scan t =
  match t.prefilter with
  | None -> ()
  | Some pf ->
    let total = Buffer.length t.plain in
    if t.ac_scanned < total then begin
      let start = max 0 (t.ac_scanned - (pf.maxlen - 1)) in
      let seg = String.lowercase_ascii (Buffer.sub t.plain start (total - start)) in
      List.iter
        (fun (pid, _) -> Bytes.set pf.seen_pat pid '\001')
        (Bbx_ac.Aho_corasick.search pf.ac seg);
      t.ac_scanned <- total
    end

let prefilter_candidate t rule_idx =
  match t.rule_needs.(rule_idx) with
  | [] -> true
  | ids ->
    (match t.prefilter with
     | None -> true
     | Some pf -> List.for_all (fun id -> Bytes.get pf.seen_pat id = '\001') ids)

(* Decrypt everything retained once [k_ssl] is recovered.  Record-layer
   decryption is strictly in-order from sequence 0, so any failure
   (tampering, a gap) makes the rest of the stream unrecoverable: degrade
   to exhausted — "flagged, not matched" — instead of raising on what may
   be a worker domain. *)
let pump t =
  if wants_records t && t.recovered <> None && t.pending <> [] then begin
    let reader =
      match t.reader with
      | Some r -> r
      | None ->
        let key = Option.get t.recovered in
        let r =
          Bbx_tls.Record.create ~kernel:t.kernel ~key ~direction:t.direction ()
        in
        t.reader <- Some r;
        Obs.incr obs_escalations;
        r
    in
    let batch = List.rev t.pending in
    t.pending <- [];
    t.pending_est <- 0;
    List.iter
      (fun sealed ->
         if t.exhausted then Obs.incr obs_dropped
         else
           match Bbx_tls.Record.open_ reader sealed with
           | exception _ -> mark_exhausted t
           | pt ->
             (* strip the sender's 1-byte frame tag *)
             let body =
               if String.length pt > 0 then String.sub pt 1 (String.length pt - 1)
               else ""
             in
             Buffer.add_string t.plain body;
             t.plain_cache <- None;
             Obs.add obs_plain_bytes (String.length body);
             if t.budget.max_plain_bytes > 0
             && Buffer.length t.plain > t.budget.max_plain_bytes
             then mark_exhausted t)
      batch;
    prefilter_scan t
  end

let decrypted_stream t =
  pump t;
  if t.recovered = None || not (wants_records t) then None else Some (plain_str t)

let escalation t =
  if t.exhausted then `Exhausted
  else if t.recovered <> None then `Unlocked
  else if t.hit_count > 0 then `Gated
  else `Idle

(* Run the full-rule reference evaluation over the recovered stream,
   charging the time against the scan budget when one is configured. *)
let confirm t rule =
  Obs.incr obs_confirms;
  if t.budget.max_scan_ms <= 0 then Classify.matches_plaintext rule (plain_str t)
  else begin
    let t0 = Bbx_obs.Trace.now_ns () in
    let r = Classify.matches_plaintext rule (plain_str t) in
    t.scan_ns <- t.scan_ns + (Bbx_obs.Trace.now_ns () - t0);
    if t.scan_ns > t.budget.max_scan_ms * 1_000_000 then mark_exhausted t;
    r
  end

(* Candidate start positions for a content pattern: stream offsets where
   every one of its chunks matched at the right relative position.
   Membership tests binary-search each chunk's sorted offset vector, so a
   rule with [r] extra chunks costs O(starts * r * log hits) — no per-hit
   hash-set needed.  The chunk->id table lives on [t] (maintained by
   [create]/[add_rules]) instead of being rebuilt on every [verdicts]
   call. *)
let content_candidates t =
  let hit_vec chunk =
    match Hashtbl.find_opt t.chunk_ids chunk with
    | None -> None
    | Some id ->
      let hv = t.hits.(id) in
      if hv.hn = 0 then None else Some hv
  in
  let hit_at chunk off =
    match hit_vec chunk with
    | None -> false
    | Some hv -> hitvec_mem hv off
  in
  fun (c : Rule.content) ->
    match Tokenizer.keyword_chunks c.Rule.pattern with
    | [] -> []
    | (first_chunk, first_rel) :: rest ->
      (match hit_vec first_chunk with
       | None -> []
       | Some hv ->
         let starts = ref [] in
         for i = hv.hn - 1 downto 0 do
           starts := (hv.ha.(i) - first_rel) :: !starts
         done;
         let starts = List.sort_uniq compare !starts in
         List.filter
           (fun q ->
              q >= 0
              && List.for_all (fun (chunk, rel) -> hit_at chunk (q + rel)) rest)
           starts)

let verdicts ?plaintext t =
  pump t;
  let candidates = content_candidates t in
  let tier_rank = Classify.rank t.tier in
  let out = ref [] in
  let emit rule_idx rule detail =
    let via =
      match detail with
      | `Exact_hit | `Composite_match -> `Exact_match
      | `Regex_match | `Budget_exceeded -> `Probable_cause
    in
    out := { rule_idx; rule; via; detail } :: !out
  in
  let decide rule_idx rule detail =
    Bytes.set t.decided rule_idx (Char.chr (detail_byte detail + 1));
    emit rule_idx rule detail
  in
  Array.iteri
    (fun rule_idx rule ->
       let cls = t.classes.(rule_idx) in
       if Classify.rank cls <= tier_rank then begin
         match Char.code (Bytes.get t.decided rule_idx) with
         | b when b > 0 -> emit rule_idx rule (detail_of_byte (b - 1))
         | _ ->
           match cls with
           | Classify.Protocol_I ->
             if rule.Rule.contents <> []
             && Classify.contents_satisfiable ~candidates rule.Rule.contents
             then decide rule_idx rule `Exact_hit
           | Classify.Protocol_II ->
             if rule.Rule.contents <> []
             && Classify.contents_satisfiable ~candidates rule.Rule.contents
             then decide rule_idx rule `Composite_match
           | Classify.Protocol_III ->
             (* Sticky keyword gate: the encrypted-side evidence that makes
                this rule worth escalating — its contents seen in order on
                the token stream, or (for pure-pcre rules) any probable
                cause on the flow. *)
             if Bytes.get t.gates rule_idx = '\000' then begin
               let gated =
                 if rule.Rule.contents = [] then t.recovered <> None
                 else Classify.contents_satisfiable ~candidates rule.Rule.contents
               in
               if gated then Bytes.set t.gates rule_idx '\001'
             end;
             (match plaintext with
              | Some payload ->
                (* Legacy caller-supplied plaintext takes precedence over
                   the recovered stream. *)
                if Classify.matches_plaintext rule payload then
                  decide rule_idx rule `Regex_match
              | None ->
                if t.recovered <> None && not t.exhausted
                && prefilter_candidate t rule_idx && confirm t rule
                then decide rule_idx rule `Regex_match
                else if t.exhausted && Bytes.get t.gates rule_idx = '\001' then begin
                  Obs.incr obs_flagged;
                  decide rule_idx rule `Budget_exceeded
                end)
       end)
    t.rules;
  List.rev !out

(* Extend a byte table with zeroed slots for freshly appended rules. *)
let extend_bytes b n =
  if n <= Bytes.length b then b
  else begin
    let grown = Bytes.make n '\000' in
    Bytes.blit b 0 grown 0 (Bytes.length b);
    grown
  end

(* Rule update on a live connection: only chunks not already covered go
   through (the caller's) rule preparation. *)
let add_rules t ~rules ~enc_chunk =
  let fresh =
    Array.to_list (distinct_chunks rules)
    |> List.filter (fun c -> not (Hashtbl.mem t.chunk_ids c))
  in
  let fresh_encs =
    List.mapi
      (fun i chunk ->
         let enc = enc_chunk chunk in
         let id = Bbx_detect.Detect.add_keyword t.detect enc in
         assert (id = Array.length t.chunks + i);
         Hashtbl.replace t.chunk_ids chunk id;
         enc)
      fresh
  in
  (* one append for the whole batch, not one O(n) copy per chunk *)
  t.chunks <- Array.append t.chunks (Array.of_list fresh);
  t.encs <- Array.append t.encs (Array.of_list fresh_encs);
  t.hits <-
    Array.append t.hits
      (Array.init (List.length fresh) (fun _ -> hitvec ()));
  t.rules <- Array.append t.rules (Array.of_list rules);
  t.decided <- extend_bytes t.decided (Array.length t.rules);
  t.gates <- extend_bytes t.gates (Array.length t.rules);
  rebuild_prefilter t;
  List.length fresh

(* Removing rules shifts [verdict.rule_idx] values, so callers keeping
   per-rule state (the reported-rule bitsets) remap through the returned
   index map.  Chunks no longer needed by any retained rule leave the
   detection tree entirely — the tree is rebuilt from the kept encryptions
   under the current salt epoch, which restarts the retained keywords'
   salt counters; callers must follow with a sender-synchronised salt
   reset (Session/Fleet force one after every rule update anyway). *)
let remove_rules t ~sids =
  if sids = [] then ([], [||])
  else begin
    let drop = Hashtbl.create (List.length sids) in
    List.iter (fun s -> Hashtbl.replace drop s ()) sids;
    let keep_rule r =
      match r.Rule.sid with Some s -> not (Hashtbl.mem drop s) | None -> true
    in
    let remap = Array.make (Array.length t.rules) (-1) in
    let kept = ref [] and next = ref 0 in
    Array.iteri
      (fun i r ->
         if keep_rule r then begin
           remap.(i) <- !next;
           incr next;
           kept := r :: !kept
         end)
      t.rules;
    let kept = Array.of_list (List.rev !kept) in
    let needed = Hashtbl.create 64 in
    Array.iter (fun c -> Hashtbl.replace needed c ()) (distinct_chunks (Array.to_list kept));
    let removed = ref [] and kept_chunks = ref [] and kept_encs = ref [] in
    Array.iteri
      (fun i c ->
         if Hashtbl.mem needed c then begin
           kept_chunks := c :: !kept_chunks;
           kept_encs := t.encs.(i) :: !kept_encs
         end
         else removed := c :: !removed)
      t.chunks;
    let old_rules = Array.length t.rules in
    t.rules <- kept;
    t.chunks <- Array.of_list (List.rev !kept_chunks);
    t.encs <- Array.of_list (List.rev !kept_encs);
    Hashtbl.reset t.chunk_ids;
    Array.iteri (fun i c -> Hashtbl.replace t.chunk_ids c i) t.chunks;
    t.detect <- Bbx_detect.Detect.create ~index:t.index ~mode:t.mode ~salt0:t.salt0 t.encs;
    t.hits <- Array.init (Array.length t.chunks) (fun _ -> hitvec ());
    (* Escalation state is keyed by rule index: rewrite it through the
       remap (dropped rules lose their entries). *)
    let rekey b =
      let b' = Bytes.make (Array.length kept) '\000' in
      for i = 0 to old_rules - 1 do
        if remap.(i) >= 0 then Bytes.set b' remap.(i) (Bytes.get b i)
      done;
      b'
    in
    t.decided <- rekey t.decided;
    t.gates <- rekey t.gates;
    rebuild_prefilter t;
    (List.rev !removed, remap)
  end

(* Swap in a shared prep after a rule update (the update itself rebuilt
   an engine-owned one).  The sweep restart install_prefilter forces is
   harmless here: every caller follows a rule update with a salt reset,
   and [seen_pat] evidence is re-derived from the retained stream. *)
let set_prefilter t pp =
  if pp.pp_nrules <> Array.length t.rules then
    invalid_arg "Engine.set_prefilter: shared prefilter rule count mismatch";
  install_prefilter t ~shared:true pp

(* A salt reset rotates the token encryption only.  Per-chunk hit
   evidence is cleared (post-reset offsets would be incomparable with
   pre-reset ones anyway), but the escalation state deliberately
   survives: [recovered] — probable cause is a connection-lifetime fact;
   once the middlebox has lawfully recovered [k_ssl] a salt rotation does
   not un-recover it — plus everything downstream of it ([decided]
   verdicts, the sticky keyword gates, the retained/decrypted stream and
   the budget accounting) and [hit_count], the monotonic obs-visible hit
   accounting that callers delta across deliveries. *)
let reset t ~salt0 =
  t.salt0 <- salt0;
  Bbx_detect.Detect.reset t.detect ~salt0;
  Array.iter (fun hv -> hv.hn <- 0; hv.sorted <- true) t.hits

let chunk_count t = Bbx_detect.Detect.size t.detect

(* ---------- footprint accounting -------------------------------------- *)

let word = Sys.word_size / 8

(* Approximate resident bytes of this connection's engine state.  Shared,
   per-(tenant, generation) structures — a borrowed [?prepared] chunk/enc
   pair, a shared detect keyset — are charged to their owner; everything
   reported here is freed when the connection is removed.  String bytes
   are rounded up to whole words + 1 header word. *)
let str_bytes s = ((String.length s + word) / word + 1) * word

let footprint_bytes t =
  let hits =
    Array.fold_left (fun a hv -> a + (Array.length hv.ha + 4) * word) 0 t.hits
  in
  let pending = List.fold_left (fun a r -> a + str_bytes r) 0 t.pending in
  let tables =
    Bytes.length t.decided + Bytes.length t.gates
    + (Array.length t.classes + Array.length t.rule_needs + 2) * word
  in
  let chunk_ids = Hashtbl.length t.chunk_ids * 6 * word in
  Bbx_detect.Detect.footprint_bytes t.detect
  + hits + pending + tables + chunk_ids
  + Buffer.length t.plain
  + (match t.recovered with None -> 0 | Some k -> str_bytes k)
  + (match t.prefilter with
     | None -> 0
     | Some pf ->
       Bytes.length pf.seen_pat
       (* a borrowed automaton is charged to the fleet that owns it *)
       + (if t.pf_shared then 0 else Bbx_ac.Aho_corasick.footprint_bytes pf.ac))
  + 32 * word

(* ---------- snapshot / restore ---------------------------------------- *)

(* Binary connection snapshot (format v1), self-contained: rules travel as
   their text form (the same [Rule.to_string]/[Parser.parse_ruleset]
   roundtrip the daemon already relies on), chunks and their encryptions
   travel verbatim so restore needs no enc-chunk oracle, and every piece
   of escalation state — salt counters, hit evidence, sticky decisions and
   gates, recovered [k_ssl], sealed pending records, record-layer
   sequence, recovered plaintext, prefilter progress, budget accounting —
   is carried so a restored engine is observably identical to the
   original.  [restore] raises [Invalid_argument] on any malformed or
   inconsistent blob (callers validate front-side before handing state to
   a worker domain). *)

let snapshot_version = 1

let snapshot t =
  let b = Buffer.create 4096 in
  Codec.put_u8 b snapshot_version;
  Codec.put_u8 b (match t.mode with Dpienc.Exact -> 0 | Dpienc.Probable -> 1);
  Codec.put_u8 b (match t.index with Bbx_detect.Detect.Hash -> 0 | Bbx_detect.Detect.Avl -> 1);
  Codec.put_u8 b (Classify.rank t.tier);
  Codec.put_i64 b t.budget.max_plain_bytes;
  Codec.put_i64 b t.budget.max_scan_ms;
  Codec.put_str32 b t.direction;
  Codec.put_i64 b t.salt0;
  Codec.put_str32 b
    (String.concat "\n" (Array.to_list (Array.map Rule.to_string t.rules)));
  Codec.put_u32 b (Array.length t.chunks);
  Array.iteri
    (fun i c ->
       Codec.put_str32 b c;
       Codec.put_str32 b t.encs.(i))
    t.chunks;
  let counts = Bbx_detect.Detect.salt_counts t.detect in
  Codec.put_u32 b (Array.length counts);
  Array.iter (Codec.put_i64 b) counts;
  Codec.put_u32 b (Array.length t.hits);
  Array.iter
    (fun hv ->
       Codec.put_u32 b hv.hn;
       for i = 0 to hv.hn - 1 do Codec.put_i64 b hv.ha.(i) done)
    t.hits;
  Codec.put_i64 b t.hit_count;
  (match t.recovered with
   | None -> Codec.put_bool b false
   | Some k -> Codec.put_bool b true; Codec.put_str32 b k);
  Codec.put_str32 b (Bytes.to_string t.decided);
  Codec.put_str32 b (Bytes.to_string t.gates);
  let pending = List.rev t.pending in
  Codec.put_u32 b (List.length pending);
  List.iter (Codec.put_str32 b) pending;
  Codec.put_i64 b t.pending_est;
  (match t.reader with
   | None -> Codec.put_bool b false
   | Some r -> Codec.put_bool b true; Codec.put_i64 b (Bbx_tls.Record.seq r));
  Codec.put_str32 b (plain_str t);
  (match t.prefilter with
   | None -> Codec.put_bool b false
   | Some pf -> Codec.put_bool b true; Codec.put_str32 b (Bytes.to_string pf.seen_pat));
  Codec.put_i64 b t.ac_scanned;
  Codec.put_i64 b t.scan_ns;
  Codec.put_bool b t.exhausted;
  Buffer.contents b

let fail fmt = Printf.ksprintf invalid_arg ("Engine.restore: " ^^ fmt)

let restore ?(kernel = Dpienc.Scalar) blob =
  match
    let cur = Codec.cursor blob in
    let version = Codec.get_u8 cur in
    if version <> snapshot_version then fail "unknown snapshot version %d" version;
    let mode =
      match Codec.get_u8 cur with
      | 0 -> Dpienc.Exact
      | 1 -> Dpienc.Probable
      | m -> fail "bad mode %d" m
    in
    let index =
      match Codec.get_u8 cur with
      | 0 -> Bbx_detect.Detect.Hash
      | 1 -> Bbx_detect.Detect.Avl
      | i -> fail "bad index backend %d" i
    in
    let tier =
      match Classify.of_rank (Codec.get_u8 cur) with
      | Some c -> c
      | None -> fail "bad tier"
    in
    let max_plain_bytes = Codec.get_i64 cur in
    let max_scan_ms = Codec.get_i64 cur in
    let direction = Codec.get_str32 cur in
    let salt0 = Codec.get_i64 cur in
    let rules_text = Codec.get_str32 cur in
    let rules =
      try Parser.parse_ruleset rules_text
      with Parser.Syntax_error msg -> fail "bad ruleset (%s)" msg
    in
    (* every counted element consumes at least [per] encoded bytes, so a
       forged count beyond the blob's remainder is rejected before the
       allocation it sizes *)
    let guard_count n per =
      if n * per > String.length blob - cur.Codec.pos then fail "count exceeds blob"
    in
    let n_chunks = Codec.get_u32 cur in
    guard_count n_chunks 8;
    let chunks = Array.make n_chunks "" in
    let encs = Array.make n_chunks "" in
    for i = 0 to n_chunks - 1 do
      chunks.(i) <- Codec.get_str32 cur;
      let e = Codec.get_str32 cur in
      if String.length e <> 16 then fail "chunk encryption must be 16 bytes";
      encs.(i) <- e
    done;
    let n_counts = Codec.get_u32 cur in
    if n_counts <> n_chunks then fail "salt count table size mismatch";
    (* explicit ascending loops: the cursor is stateful, and
       [Array.init]/[List.init] do not guarantee evaluation order *)
    guard_count n_counts 8;
    let counts = Array.make n_counts 0 in
    for i = 0 to n_counts - 1 do counts.(i) <- Codec.get_i64 cur done;
    let n_hits = Codec.get_u32 cur in
    if n_hits <> n_chunks then fail "hit table size mismatch";
    let hits = Array.make n_hits (hitvec ()) in
    for i = 0 to n_hits - 1 do
      let k = Codec.get_u32 cur in
      guard_count k 8;
      let hv = { ha = Array.make k 0; hn = k; sorted = true } in
      for j = 0 to k - 1 do
        hv.ha.(j) <- Codec.get_i64 cur;
        if j > 0 && hv.ha.(j) < hv.ha.(j - 1) then hv.sorted <- false
      done;
      hits.(i) <- hv
    done;
    let hit_count = Codec.get_i64 cur in
    if hit_count < 0 then fail "negative hit count";
    let recovered =
      if Codec.get_bool cur then begin
        let k = Codec.get_str32 cur in
        if String.length k <> 16 then fail "recovered key must be 16 bytes";
        if mode <> Dpienc.Probable then fail "recovered key in exact mode";
        Some k
      end
      else None
    in
    let decided = Bytes.of_string (Codec.get_str32 cur) in
    let gates = Bytes.of_string (Codec.get_str32 cur) in
    let n_rules = List.length rules in
    if Bytes.length decided <> n_rules || Bytes.length gates <> n_rules then
      fail "per-rule table size mismatch";
    Bytes.iter
      (fun c -> if Char.code c > 4 then fail "bad decided byte") decided;
    Bytes.iter
      (fun c -> if Char.code c > 1 then fail "bad gate byte") gates;
    let n_pending = Codec.get_u32 cur in
    guard_count n_pending 4;
    let pending = ref [] in
    for _ = 1 to n_pending do pending := Codec.get_str32 cur :: !pending done;
    let pending = List.rev !pending in
    let pending_est = Codec.get_i64 cur in
    if pending_est < 0 then fail "negative pending estimate";
    let reader_seq = if Codec.get_bool cur then Some (Codec.get_i64 cur) else None in
    (match reader_seq with
     | Some s when s < 0 -> fail "negative record sequence"
     | Some _ when recovered = None -> fail "record reader without recovered key"
     | _ -> ());
    let plain = Codec.get_str32 cur in
    let seen_pat = if Codec.get_bool cur then Some (Codec.get_str32 cur) else None in
    let ac_scanned = Codec.get_i64 cur in
    if ac_scanned < 0 || ac_scanned > String.length plain then
      fail "scan cursor out of range";
    let scan_ns = Codec.get_i64 cur in
    if scan_ns < 0 then fail "negative scan time";
    let exhausted = Codec.get_bool cur in
    Codec.finish cur;
    let budget = { max_plain_bytes; max_scan_ms } in
    let t =
      create ~index ~tier ~budget ~direction ~kernel ~prepared:(chunks, encs)
        ~mode ~salt0:(if mode = Dpienc.Probable then salt0 land lnot 1 else salt0)
        ~rules ~enc_chunk:(fun _ -> assert false) ()
    in
    (* [create] built the detector at a parity-safe salt; now install the
       real per-connection counters (validates parity and table size). *)
    Bbx_detect.Detect.restore_counts t.detect ~salt0 counts;
    t.salt0 <- salt0;
    t.hits <- hits;
    t.hit_count <- hit_count;
    t.recovered <- recovered;
    t.decided <- decided;
    t.gates <- gates;
    t.pending <- List.rev pending;
    t.pending_est <- pending_est;
    (match reader_seq with
     | None -> ()
     | Some seq ->
       let r =
         Bbx_tls.Record.create ~kernel ~key:(Option.get recovered) ~direction ()
       in
       Bbx_tls.Record.set_seq r seq;
       t.reader <- Some r);
    Buffer.add_string t.plain plain;
    t.plain_cache <- None;
    (match seen_pat, t.prefilter with
     | Some sp, Some pf ->
       if String.length sp <> Bytes.length pf.seen_pat then
         fail "prefilter bitmap size mismatch";
       Bytes.blit_string sp 0 pf.seen_pat 0 (String.length sp)
     | Some _, None -> fail "prefilter bitmap without prefilter rules"
     | None, _ -> ());
    t.ac_scanned <- min ac_scanned (Buffer.length t.plain);
    t.scan_ns <- scan_ns;
    t.exhausted <- exhausted;
    t
  with
  | t -> t
  | exception Codec.Corrupt msg -> fail "%s" msg
