module Obs = Bbx_obs.Obs
module Trace = Bbx_obs.Trace
module Pool = Bbx_exec.Pool

let obs_submitted = Obs.counter "bbx_shardpool_submitted_total"
let obs_dropped = Obs.counter "bbx_shardpool_dropped_total"
let obs_domains = Obs.gauge "bbx_shardpool_domains"
let obs_conn_bytes = Obs.gauge "bbx_conn_bytes"
let obs_migrations = Obs.counter "bbx_conn_migrations_total"

(* Per-delivery pipeline stages, microseconds: submit -> worker dequeue
   (queue wait) and the Shard inspection itself (service).  These are the
   daemon-facing names the ROADMAP's queue-wait-vs-service question needs;
   the generic mailbox residency is bbx_exec_queue_wait_us in Pool. *)
let us_buckets =
  [| 1; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000; 25000;
     50000; 100000; 250000; 1000000 |]

let obs_queue_wait = Obs.histogram "bbx_daemon_queue_wait_us" ~buckets:us_buckets
let obs_service = Obs.histogram "bbx_shard_service_us" ~buckets:us_buckets

let ph_queue = Trace.phase "queue_wait"
let ph_service = Trace.phase "service"

type conn_id = Shard.conn_id

type stats = Shard.stats

type result = {
  r_conn : conn_id;
  r_verdicts : Engine.verdict list;
}

(* The shard pool is a thin routing layer over the generic domain pool
   ({!Bbx_exec.Pool}): worker [i] owns one {!Shard}, every message for a
   connection goes to worker [conn_id mod domains], and the pool's
   per-worker FIFO mailboxes guarantee a connection's deliveries (and
   salt resets, registrations, rule updates) execute in submission order
   on one domain — so its per-token salt counters stay in lock-step with
   the sender. *)
type t = {
  pool : (Shard.t, result) Pool.t;
  mode : Bbx_dpienc.Dpienc.mode;           (* for validating imported state *)
  kernel : Bbx_dpienc.Dpienc.aes_kernel;   (* AES path for imported engines *)
  registered : (conn_id, int) Hashtbl.t;   (* front-side pin table:
                                              conn_id -> owning shard (also
                                              the duplicate/unknown guard) *)
}

(* Default placement: dense conn ids spread perfectly evenly (important
   for scaling), arbitrary ids still land deterministically.  Migration
   can re-pin a connection to any shard afterwards — routing always goes
   through the pin table. *)
let default_shard t conn_id = (conn_id land max_int) mod Pool.domains t.pool

(* The owning shard of a registered connection. *)
let shard_of t conn_id op =
  match Hashtbl.find_opt t.registered conn_id with
  | Some w -> w
  | None ->
    invalid_arg (Printf.sprintf "Shardpool.%s: unknown connection %d" op conn_id)

let default_domains = Pool.default_domains

let create ?domains ?capacity ?batch_max ?index ?tier ?budget
    ?(kernel = Bbx_dpienc.Dpienc.Scalar) ~mode ~rules () =
  let n = match domains with Some n -> n | None -> default_domains () in
  if n < 1 then invalid_arg "Shardpool.create: domains must be >= 1";
  let pool =
    Pool.create ~domains:n ?capacity ?batch_max
      ~state:(fun _ -> Shard.create ?index ?tier ?budget ~kernel ~mode ~rules ())
      ()
  in
  Obs.set_gauge obs_domains n;
  { pool; mode; kernel; registered = Hashtbl.create 64 }

let domains t = Pool.domains t.pool

let check_live t op =
  if not (Pool.live t.pool) then
    invalid_arg (Printf.sprintf "Shardpool.%s: pool is shut down" op)

let register ?direction ?prepared ?keys ?prefilter t ~conn_id ~salt0 ~enc_chunk =
  check_live t "register";
  if Hashtbl.mem t.registered conn_id then
    invalid_arg (Printf.sprintf "Shardpool.register: connection %d exists" conn_id);
  let worker = default_shard t conn_id in
  Hashtbl.add t.registered conn_id worker;
  Pool.exec t.pool ~worker (fun core ->
      Shard.register ?direction ?prepared ?keys ?prefilter core ~conn_id ~salt0 ~enc_chunk)


(* Record retention rides the same per-worker FIFO mailbox as deliveries,
   so a record frame submitted before its token frames is guaranteed to
   reach the engine first — ordering matters because the record layer
   decrypts strictly in sequence. *)
let record_stream t ~conn_id record =
  check_live t "record_stream";
  Pool.exec t.pool ~worker:(shard_of t conn_id "record_stream") (fun core ->
      Shard.record_stream core ~conn_id record)

let submit ?(tag = -1) t ~conn_id wire =
  check_live t "submit";
  let worker = shard_of t conn_id "submit" in
  (* [timing] is decided at submit time and captured by the closure, so a
     worker never reads the Obs/Trace switches mid-batch; [tag] is the
     caller's frame id (the wire seq for daemon deliveries) and keys the
     per-frame trace events together with [conn_id]. *)
  let timing = Obs.enabled () || Trace.enabled () in
  let t_sub = if timing then Trace.now_ns () else -1 in
  let seq =
    Pool.submit t.pool ~worker (fun core ->
        let t_deq = if timing then Trace.now_ns () else -1 in
        if timing then begin
          Obs.observe obs_queue_wait ((t_deq - t_sub) / 1000);
          Trace.record ph_queue ~id:tag ~conn:conn_id ~start_ns:t_sub
            ~dur_ns:(t_deq - t_sub)
        end;
        let r =
          if Shard.is_blocked core ~conn_id then begin
            Obs.incr obs_dropped;
            None
          end
          else
            Some { r_conn = conn_id; r_verdicts = Shard.process_wire core ~conn_id wire }
        in
        if timing then begin
          let t_done = Trace.now_ns () in
          Obs.observe obs_service ((t_done - t_deq) / 1000);
          Trace.record ph_service ~id:tag ~conn:conn_id ~start_ns:t_deq
            ~dur_ns:(t_done - t_deq)
        end;
        r)
  in
  Obs.incr obs_submitted;
  seq

let reset_conn t ~conn_id ~salt0 =
  check_live t "reset_conn";
  Pool.exec t.pool ~worker:(shard_of t conn_id "reset_conn") (fun core ->
      Shard.reset_conn core ~conn_id ~salt0)

let update_rules ?prefilter t ~conn_id ~remove_sids ~add ~rules ~enc_chunk =
  check_live t "update_rules";
  Pool.exec t.pool ~worker:(shard_of t conn_id "update_rules") (fun core ->
      Shard.update_rules ?prefilter core ~conn_id ~remove_sids ~add ~rules ~enc_chunk)

let unregister t ~conn_id =
  check_live t "unregister";
  match Hashtbl.find_opt t.registered conn_id with
  | None -> ()
  | Some worker ->
    Hashtbl.remove t.registered conn_id;
    Pool.exec t.pool ~worker (fun core -> Shard.unregister core ~conn_id)

let drain t ~f =
  check_live t "drain";
  Pool.drain t.pool ~f:(fun ~seq r -> f ~seq ~conn_id:r.r_conn r.r_verdicts)

let process_wire t ~conn_id wire =
  check_live t "process_wire";
  if Pool.pending t.pool > 0 then
    invalid_arg "Shardpool.process_wire: async submissions pending (drain first)";
  let seq = submit t ~conn_id wire in
  match List.assoc_opt seq (Pool.drain_list t.pool) with
  | Some r -> r.r_verdicts
  | None ->
    (* the worker dropped the delivery: connection already blocked *)
    invalid_arg (Printf.sprintf "Middlebox.process: connection %d is blocked" conn_id)

let is_blocked t ~conn_id =
  check_live t "is_blocked";
  Pool.quiesce t.pool ~worker:(shard_of t conn_id "is_blocked") (fun core ->
      Shard.is_blocked core ~conn_id)

let stats t =
  check_live t "stats";
  Pool.fold_workers t.pool ~init:Shard.empty_stats ~f:(fun acc core ->
      Shard.merge_stats acc (Shard.stats core))

let flow_stats t ~conn_id =
  check_live t "flow_stats";
  Pool.quiesce t.pool ~worker:(shard_of t conn_id "flow_stats") (fun core ->
      Shard.flow_stats core ~conn_id)

let fold_flows t ~init ~f =
  check_live t "fold_flows";
  Pool.fold_workers t.pool ~init ~f:(fun acc core -> Shard.fold_flows core ~init:acc ~f)

(* ---------- connection migration -------------------------------------- *)

let conn_shard t ~conn_id =
  check_live t "conn_shard";
  shard_of t conn_id "conn_shard"

let conns_per_shard t =
  let counts = Array.make (Pool.domains t.pool) 0 in
  Hashtbl.iter (fun _ w -> counts.(w) <- counts.(w) + 1) t.registered;
  counts

(* Draining through the FIFO mailbox: [Pool.quiesce] runs the export on
   the owning worker only after every message submitted before it —
   deliveries, record frames, salt resets — has executed, so the snapshot
   reflects exactly the traffic submitted so far.  Results of those
   deliveries stay in the pool's completion buffer and are still returned
   by the next {!drain}. *)
let export_conn t ~conn_id =
  check_live t "export_conn";
  let worker = shard_of t conn_id "export_conn" in
  let blob =
    Pool.quiesce t.pool ~worker (fun core -> Shard.export_conn core ~conn_id)
  in
  Hashtbl.remove t.registered conn_id;
  blob

let import_conn ?shard t ~conn_id blob =
  check_live t "import_conn";
  if Hashtbl.mem t.registered conn_id then
    invalid_arg (Printf.sprintf "Shardpool.import_conn: connection %d exists" conn_id);
  let worker = match shard with Some s -> s | None -> default_shard t conn_id in
  if worker < 0 || worker >= Pool.domains t.pool then
    invalid_arg (Printf.sprintf "Shardpool.import_conn: no shard %d" worker);
  (* Parse and validate on the front side: a malformed blob raises here,
     where the caller can reject it, never on a worker domain (a worker
     exception poisons the pool). *)
  let c = Shard.parse_export ~mode:t.mode ~kernel:t.kernel blob in
  Hashtbl.add t.registered conn_id worker;
  Pool.exec t.pool ~worker (fun core -> Shard.adopt core ~conn_id c);
  Obs.incr obs_migrations

let migrate t ~conn_id ~shard =
  check_live t "migrate";
  if shard < 0 || shard >= Pool.domains t.pool then
    invalid_arg (Printf.sprintf "Shardpool.migrate: no shard %d" shard);
  if shard_of t conn_id "migrate" <> shard then begin
    let blob = export_conn t ~conn_id in
    import_conn ~shard t ~conn_id blob
  end

(* Even out the pin table: move connections from shards above the ceiling
   target to shards below it.  Placement-only — verdicts, stats and wire
   behaviour are invariant under migration (differential-tested), so
   rebalancing is safe to run at any quiet moment.  Returns how many
   connections moved. *)
let rebalance t =
  check_live t "rebalance";
  let d = Pool.domains t.pool in
  let counts = conns_per_shard t in
  let total = Hashtbl.length t.registered in
  let target = (total + d - 1) / d in
  let moves = ref [] in
  Hashtbl.iter
    (fun conn_id w -> if counts.(w) > target then begin
         counts.(w) <- counts.(w) - 1;
         moves := conn_id :: !moves
       end)
    t.registered;
  let moved = ref 0 in
  List.iter
    (fun conn_id ->
       (* cheapest destination each time; [d] is small *)
       let dest = ref 0 in
       for w = 1 to d - 1 do
         if counts.(w) < counts.(!dest) then dest := w
       done;
       if counts.(!dest) < target then begin
         counts.(!dest) <- counts.(!dest) + 1;
         migrate t ~conn_id ~shard:!dest;
         incr moved
       end)
    !moves;
  !moved

(* ---------- footprint accounting -------------------------------------- *)

(* Quiesces every worker; refreshes the [bbx_conn_bytes] gauge. *)
let footprint_bytes t =
  check_live t "footprint_bytes";
  let bytes =
    Pool.fold_workers t.pool ~init:0 ~f:(fun acc core ->
        acc + Shard.footprint_bytes core)
  in
  Obs.set_gauge obs_conn_bytes bytes;
  bytes

let shutdown t =
  if Pool.live t.pool then begin
    Pool.shutdown t.pool;
    Obs.set_gauge obs_domains 0
  end

let with_pool ?domains ?capacity ?batch_max ?index ?tier ?budget ?kernel ~mode
    ~rules f =
  let t =
    create ?domains ?capacity ?batch_max ?index ?tier ?budget ?kernel ~mode
      ~rules ()
  in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
